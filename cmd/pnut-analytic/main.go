// pnut-analytic is the analytical performance evaluator the paper's
// conclusion mentions ("Other tools support analytical (as opposed to
// simulation) performance evaluation"): for a bounded net with constant
// delays it computes exact steady-state place utilizations and
// transition throughputs from the timed reachability graph [RP84] — no
// simulation run, no confidence intervals.
//
//	pnut-analytic -net testdata/pipeline.pn -place Bus_busy -trans Issue
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analytic"
	"repro/internal/ptl"
	"repro/internal/reach"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ", ") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	maxStates := flag.Int("max-states", 500_000, "timed state-space cap")
	all := flag.Bool("all", false, "report every place and transition")
	var places, transitions repeated
	flag.Var(&places, "place", "place whose utilization to report (repeatable)")
	flag.Var(&transitions, "trans", "transition whose throughput to report (repeatable)")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-analytic: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	r, err := analytic.Evaluate(context.Background(), net, reach.Options{MaxStates: *maxStates})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("analytic steady state of %q: %d timed states, mean sojourn %.6f\n",
		net.Name, r.States, r.MeanSojourn)
	if *all {
		for _, p := range net.Places {
			places = append(places, p.Name)
		}
		for i := range net.Trans {
			transitions = append(transitions, net.Trans[i].Name)
		}
	}
	for _, p := range places {
		u, err := r.Utilization(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("place %-32s avg tokens %.6f\n", p, u)
	}
	for _, t := range transitions {
		th, err := r.Throughput(t)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trans %-32s throughput %.6f\n", t, th)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-analytic:", err)
	os.Exit(1)
}
