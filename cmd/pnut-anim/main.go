// pnut-anim is the animator of Section 4.3: a visual discrete event
// simulation of a trace read from stdin, with token flow animated over
// the arcs. With -step it single-steps (press enter between frames),
// which is the paper's trace-stepping mode.
//
//	pnut-sim -net pipeline.pn -horizon 60 | pnut-anim -net pipeline.pn -hide-idle
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/anim"
	"repro/internal/petri"
	"repro/internal/ptl"
	"repro/internal/trace"
)

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required for arc layout)")
	steps := flag.Int("flow-steps", 3, "intermediate frames per token movement")
	hideIdle := flag.Bool("hide-idle", false, "omit empty places from the state panel")
	maxFrames := flag.Int("max-frames", 0, "stop after this many frames (0 = all)")
	step := flag.Bool("step", false, "single-step: wait for enter between frames")
	format := flag.String("trace-format", trace.FormatAuto, "input trace encoding: auto (sniff), text or col")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-anim: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opt := anim.Options{
		FlowSteps: *steps,
		HideIdle:  *hideIdle,
		MaxFrames: *maxFrames,
	}
	in := io.Reader(os.Stdin)
	if *step {
		// In step mode stdin is the keyboard, so the trace must come
		// from a file argument.
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-step mode needs the trace as a file argument (stdin is the keyboard)"))
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		stdin := bufio.NewReader(os.Stdin)
		opt.StepFunc = func() error {
			_, err := stdin.ReadString('\n')
			return err
		}
	}
	runFrom(in, net, opt, *format)
}

func runFrom(in io.Reader, net *petri.Net, opt anim.Options, format string) {
	a := anim.New(net, os.Stdout, opt)
	r, _, err := trace.OpenReader(in, format)
	if err != nil {
		fatal(err)
	}
	if _, err := r.Header(); err != nil {
		fatal(err)
	}
	if _, err := trace.Copy(r, a); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-anim: %d frames\n", a.Frames())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-anim:", err)
	os.Exit(1)
}
