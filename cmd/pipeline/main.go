// pipeline is the headline reproduction binary: it runs the paper's
// Section 2 experiment end to end — the 3-stage pipelined
// microprocessor simulated for 10 000 cycles — and prints the Figure 5
// statistics report, the Figure 7 Tracertool timing analysis and the
// Section 4.4 verification queries.
//
//	pipeline                          # Figure 5 report, default parameters
//	pipeline -tracer -queries         # add Figure 7 and the queries
//	pipeline -model interpreted       # the Section 3 table-driven variant
//	pipeline -model cached            # the probabilistic-cache extension
//	pipeline -model sequential        # the non-pipelined baseline
//	pipeline -memory 8 -buffer 4      # parameter studies
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/analytic"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracer"
)

func main() {
	model := flag.String("model", "base", "base | interpreted | cached | sequential")
	cycles := flag.Int64("cycles", 10_000, "simulation length in processor cycles")
	seed := flag.Int64("seed", 1988, "random seed")
	memory := flag.Int64("memory", 5, "memory access time in cycles")
	buffer := flag.Int("buffer", 6, "instruction buffer size in words")
	ihit := flag.Float64("ihit", 0.9, "instruction-cache hit ratio (cached model)")
	dhit := flag.Float64("dhit", 0.85, "data-cache hit ratio (cached model)")
	doTracer := flag.Bool("tracer", false, "print the Figure 7 timing analysis")
	doQueries := flag.Bool("queries", false, "run the Section 4.4 verification queries")
	doAnalytic := flag.Bool("analytic", false, "also solve the model analytically (exact steady state)")
	doBottlenecks := flag.Bool("bottlenecks", false, "print the token-residence bottleneck analysis")
	window := flag.Int64("window", 400, "tracer window length in cycles")
	flag.Parse()

	p := pipeline.DefaultParams()
	p.MemoryCycles = *memory
	p.BufferWords = *buffer

	var (
		net *petri.Net
		err error
	)
	switch *model {
	case "base":
		net, err = pipeline.Processor(p)
	case "interpreted":
		net, err = pipeline.InterpretedProcessor(p, pipeline.DefaultInstructionSet())
	case "cached":
		c := pipeline.DefaultCacheParams()
		c.IHitRatio = *ihit
		c.DHitRatio = *dhit
		net, err = pipeline.CacheProcessor(p, c)
	case "sequential":
		net, err = pipeline.SequentialProcessor(p)
	default:
		err = fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		fatal(err)
	}

	h := trace.HeaderOf(net)
	s := stats.New(h)
	obs := trace.Tee{s}
	var qb *query.Builder
	if *doTracer || *doQueries {
		qb = query.NewBuilder(h)
		obs = append(obs, qb)
	}
	res, err := sim.Run(context.Background(), net, obs, sim.Options{Horizon: *cycles, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %q (%d places, %d transitions), %d cycles, seed %d\n\n",
		net.Name, net.NumPlaces(), net.NumTrans(), res.Clock, *seed)
	if err := s.Report(os.Stdout); err != nil {
		fatal(err)
	}

	issue, _ := s.Throughput("Issue")
	bus, _ := s.Utilization("Bus_busy")
	fmt.Printf("\nderived: instruction rate %.4f instr/cycle, bus utilization %.4f\n", issue, bus)
	if a, err := pipeline.Analyze(s); err == nil {
		fmt.Println()
		if err := a.Report(os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *doBottlenecks {
		fmt.Println()
		if err := s.BottleneckReport(net, os.Stdout); err != nil {
			fatal(err)
		}
	}

	if *doAnalytic {
		r, err := analytic.Evaluate(context.Background(), net, reach.Options{MaxStates: 500_000})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: analytic solve skipped: %v\n", err)
		} else {
			aBus, _ := r.Utilization("Bus_busy")
			aIssue, _ := r.Throughput("Issue")
			fmt.Printf("\nanalytic (exact, %d timed states): instruction rate %.4f, bus utilization %.4f\n",
				r.States, aIssue, aBus)
		}
	}

	if *doTracer {
		tr, err := tracer.Figure7(qb.Seq())
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipeline: tracer skipped: %v\n", err)
		} else {
			if _, err := tr.MarkWhen("O", "Bus_busy > 0", 0); err == nil {
				if _, err := tr.MarkWhen("X", "storing > 0", 0); err != nil {
					fmt.Fprintf(os.Stderr, "pipeline: no store in window: %v\n", err)
				}
			}
			fmt.Printf("\nFigure 7 — Tracertool timing analysis (first %d cycles):\n", *window)
			fmt.Print(tr.Render(tracer.RenderOptions{From: 0, To: *window, Width: 96}))
		}
	}

	if *doQueries {
		seq := qb.Seq()
		guard := *cycles - 2**memory
		checks := []string{
			"forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]",
			"forall s in S [ inev(s, Bus_busy(C) + Bus_free(C) == 1) ]",
			"exists s in (S - {#0}) [ Empty_I_buffers(s) == 6 ]",
			"exists s in S [ exec_type_5(s) > 0 ]",
			fmt.Sprintf("forall s in {s2 in S | Bus_busy(s2) && time(s2) < %d} [ inev(s, Bus_free(C), true) ]", guard),
		}
		if *model == "interpreted" {
			checks[3] = "exists s in S [ execute(s) > 0 ]"
		}
		if *model == "sequential" {
			checks[2] = "exists s in (S - {#0}) [ CPU_ready(s) == 1 ]"
		}
		fmt.Printf("\nSection 4.4 — verification queries:\n")
		for _, c := range checks {
			res, err := query.Check(seq, c)
			if err != nil {
				fmt.Printf("ERROR  %s: %v\n", c, err)
				continue
			}
			verdict := "HOLDS"
			if !res.Holds {
				verdict = "FAILS"
			}
			fmt.Printf("%s  %s", verdict, c)
			if res.Witness >= 0 {
				fmt.Printf("   (witness #%d at t=%d)", res.Witness, seq.States[res.Witness].Time)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pipeline:", err)
	os.Exit(1)
}
