// pnut-trace converts and inspects stored traces, bridging the two
// codecs: the line-oriented text format (the debuggable interchange)
// and the columnar binary format (the compact analysis store).
//
//	pnut-trace convert -to col  < run.trace  > run.ctrace
//	pnut-trace convert -to text < run.ctrace > run.trace
//	pnut-trace inspect < run.ctrace
//
// convert is lossless in both directions: text -> col -> text is
// byte-identical, which CI enforces on every push. inspect prints the
// header, record counts by kind, the time span, and — for columnar
// input — block-level structure.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/petri"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		convert(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pnut-trace: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  pnut-trace convert [-to text|col] [-from auto|text|col] [file]   re-encode a trace (stdin/stdout by default)
  pnut-trace inspect [-from auto|text|col] [file]                  summarize a trace and its block structure
`)
	os.Exit(2)
}

// open resolves the optional positional file argument (default stdin)
// and wraps it in the right reader.
func open(fs *flag.FlagSet, from string) (trace.RecordReader, string, func()) {
	in := io.Reader(os.Stdin)
	closeFn := func() {}
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		in = f
		closeFn = func() { f.Close() }
	default:
		usage()
	}
	r, format, err := trace.OpenReader(in, from)
	if err != nil {
		fatal(err)
	}
	return r, format, closeFn
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", trace.FormatCol, "output encoding: text or col")
	from := fs.String("from", trace.FormatAuto, "input encoding: auto (sniff), text or col")
	fs.Parse(args)

	r, inFormat, closeFn := open(fs, *from)
	defer closeFn()
	h, err := r.Header()
	if err != nil {
		fatal(err)
	}
	out := bufio.NewWriterSize(os.Stdout, 256*1024)
	w, err := trace.NewFormatWriter(out, h, *to, false)
	if err != nil {
		fatal(err)
	}
	n, err := trace.Copy(r, w)
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-trace: converted %d records %s -> %s\n", n, inFormat, *to)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	from := fs.String("from", trace.FormatAuto, "input encoding: auto (sniff), text or col")
	fs.Parse(args)

	r, format, closeFn := open(fs, *from)
	defer closeFn()
	h, err := r.Header()
	if err != nil {
		fatal(err)
	}
	var (
		counts              = map[trace.Kind]int64{}
		total, deltas       int64
		firstTime, lastTime petri.Time
		starts, ends        int64
		sawFirst, sawFinal  bool
	)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if !sawFirst {
			firstTime, sawFirst = rec.Time, true
		}
		lastTime = rec.Time
		counts[rec.Kind]++
		total++
		deltas += int64(len(rec.Deltas))
		if rec.Kind == trace.Final {
			starts, ends, sawFinal = rec.Starts, rec.Ends, true
		}
	}
	fmt.Printf("format:      %s\n", format)
	fmt.Printf("net:         %s (%d places, %d transitions)\n", h.Net, len(h.Places), len(h.Trans))
	fmt.Printf("records:     %d (initial %d, start %d, end %d, final %d)\n",
		total, counts[trace.Initial], counts[trace.Start], counts[trace.End], counts[trace.Final])
	fmt.Printf("deltas:      %d\n", deltas)
	if sawFirst {
		fmt.Printf("time span:   %d .. %d\n", firstTime, lastTime)
	}
	if sawFinal {
		fmt.Printf("final:       starts=%d ends=%d\n", starts, ends)
	}
	if cr, ok := r.(*trace.ColReader); ok {
		s := cr.Stats()
		fmt.Printf("blocks:      %d decoded", s.Blocks)
		if s.Blocks > 0 {
			fmt.Printf(" (%.1f records/block)", float64(s.Records)/float64(s.Blocks))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-trace:", err)
	os.Exit(1)
}
