// pnut-dot exports a net — or its reachability graph — as Graphviz dot
// text, the modern stand-in for the paper's graphical net editor views
// (Figures 1-4) and reachability displays.
//
//	pnut-dot -net testdata/pipeline.pn > pipeline.dot
//	pnut-dot -net testdata/mutex.pn -reach > mutex_reach.dot
//	pnut-dot -net testdata/mutex.pn -reach -timed > mutex_treach.dot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/petri"
	"repro/internal/ptl"
	"repro/internal/reach"
)

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	doReach := flag.Bool("reach", false, "export the reachability graph instead of the net")
	timed := flag.Bool("timed", false, "with -reach: export the timed graph")
	maxStates := flag.Int("max-states", 10_000, "state cap for -reach")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-dot: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	switch {
	case !*doReach:
		fmt.Print(petri.DOT(net))
	case *timed:
		g, err := reach.BuildTimed(context.Background(), net, reach.Options{MaxStates: *maxStates})
		if err != nil {
			fatal(err)
		}
		fmt.Print(g.DOT())
	default:
		g, err := reach.Build(context.Background(), net, reach.Options{MaxStates: *maxStates})
		if err != nil {
			fatal(err)
		}
		fmt.Print(g.DOT())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-dot:", err)
	os.Exit(1)
}
