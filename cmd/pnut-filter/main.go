// pnut-filter reduces a trace to the places and transitions of interest
// (Section 4.1: "usually only a handful of places and transitions are of
// interest in performing a particular analysis"). It reads a trace on
// stdin and writes the filtered trace on stdout.
//
//	pnut-sim -net pipeline.pn | pnut-filter -places Bus_busy | pnut-stat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	places := flag.String("places", "", "comma-separated places to keep")
	transitions := flag.String("trans", "", "comma-separated transitions to keep")
	format := flag.String("trace-format", trace.FormatAuto, "output trace encoding: auto (match the input), text or col; the input is always sniffed")
	flag.Parse()

	r, inFormat, err := trace.OpenReader(os.Stdin, trace.FormatAuto)
	if err != nil {
		fatal(err)
	}
	h, err := r.Header()
	if err != nil {
		fatal(err)
	}
	outFormat := *format
	if outFormat == trace.FormatAuto || outFormat == "" {
		outFormat = inFormat
	}
	w, err := trace.NewFormatWriter(os.Stdout, h, outFormat, false)
	if err != nil {
		fatal(err)
	}
	f, err := trace.NewFilter(h, w, split(*places), split(*transitions))
	if err != nil {
		fatal(err)
	}
	// On columnar input the reader can skip whole blocks that hold
	// nothing the filter keeps, without decoding them.
	if cr, ok := r.(*trace.ColReader); ok {
		cr.Skip(f.Keep())
	}
	n, err := trace.Copy(r, f)
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-filter: %d records read\n", n)
	if cr, ok := r.(*trace.ColReader); ok {
		if s := cr.Stats(); s.SkippedBlocks > 0 {
			fmt.Fprintf(os.Stderr, "pnut-filter: skipped %d/%d blocks (%d bytes) without decoding\n",
				s.SkippedBlocks, s.SkippedBlocks+s.Blocks, s.SkippedBytes)
		}
	}
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-filter:", err)
	os.Exit(1)
}
