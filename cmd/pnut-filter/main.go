// pnut-filter reduces a trace to the places and transitions of interest
// (Section 4.1: "usually only a handful of places and transitions are of
// interest in performing a particular analysis"). It reads a trace on
// stdin and writes the filtered trace on stdout.
//
//	pnut-sim -net pipeline.pn | pnut-filter -places Bus_busy | pnut-stat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	places := flag.String("places", "", "comma-separated places to keep")
	transitions := flag.String("trans", "", "comma-separated transitions to keep")
	flag.Parse()

	r := trace.NewReader(os.Stdin)
	h, err := r.Header()
	if err != nil {
		fatal(err)
	}
	w := trace.NewWriter(os.Stdout, h, false)
	f, err := trace.NewFilter(h, w, split(*places), split(*transitions))
	if err != nil {
		fatal(err)
	}
	n, err := trace.Copy(r, f)
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-filter: %d records read\n", n)
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-filter:", err)
	os.Exit(1)
}
