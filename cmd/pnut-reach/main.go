// pnut-reach is the reachability graph analyzer: it builds the untimed
// (default) or timed (-timed) reachability graph of a net and checks
// branching-time temporal-logic formulas against it, in the manner of
// [MR87]. Coverability (-coverability) gives a definite unboundedness
// answer for nets without inhibitor arcs.
//
// The state-space flags are the shared sweepcli group: -max-states,
// -bound-cap, -explore-shards, and the spill-store knobs -store,
// -spill-budget, -spill-dir, which let an exploration larger than RAM
// complete by spilling marking blocks to a temp file. Ctrl-C cancels a
// running build cleanly at the next level barrier.
//
//	pnut-reach -net mutex.pn -check 'AG({crit_a + crit_b <= 1})' \
//	           -invariant 'lock=1,crit_a=1,crit_b=1'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/ptl"
	"repro/internal/reach"
	"repro/internal/sweepcli"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ", ") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	timed := flag.Bool("timed", false, "build the timed reachability graph (constant delays only)")
	coverability := flag.Bool("coverability", false, "run Karp-Miller coverability (no inhibitor arcs)")
	var ef sweepcli.EngineFlags
	ef.RegisterState(flag.CommandLine)
	var checks, invariants repeated
	flag.Var(&checks, "check", "temporal-logic formula, e.g. 'AG({p + q == 1})' (repeatable)")
	flag.Var(&invariants, "invariant", "P-invariant 'place=weight,place=weight' (repeatable)")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-reach: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opt := ef.ReachOptions()
	if err := opt.CheckStore(); err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *coverability {
		unbounded, err := reach.Coverability(ctx, net, opt)
		if err != nil {
			fatal(err)
		}
		if len(unbounded) == 0 {
			fmt.Println("coverability: all places bounded")
		} else {
			fmt.Printf("coverability: unbounded places: %s\n", strings.Join(unbounded, ", "))
		}
	}

	cleanup := func() {}
	var sg reach.StateGraph
	if *timed {
		g, err := reach.BuildTimed(ctx, net, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("timed reachability graph of %q: %d states, %d deadlocks\n",
			net.Name, len(g.Nodes), len(g.Deadlocks()))
		if g.Truncated {
			fmt.Println("  (truncated: results are lower bounds)")
		}
		sg = g
	} else {
		g, err := reach.Build(ctx, net, opt)
		if err != nil {
			fatal(err)
		}
		cleanup = func() { g.Close() }
		if opt.StoreName() == reach.StoreSpill {
			fmt.Fprintf(os.Stderr, "pnut-reach: store spill: %d bytes encoded, %d spilled to disk\n",
				g.StoreBytes(), g.SpilledBytes())
		}
		fmt.Print(g.Summary())
		for _, inv := range invariants {
			weights, err := parseInvariant(inv)
			if err != nil {
				fatal(err)
			}
			v, err := g.CheckInvariant(weights)
			if err != nil {
				fmt.Printf("INVARIANT FAILS  %s: %v\n", inv, err)
				continue
			}
			fmt.Printf("INVARIANT HOLDS  %s = %d\n", inv, v)
		}
		sg = g
	}

	failed := false
	for _, c := range checks {
		f, err := reach.ParseFormula(c)
		if err != nil {
			fatal(err)
		}
		if reach.Holds(sg, f) {
			fmt.Printf("HOLDS  %s\n", c)
		} else {
			fmt.Printf("FAILS  %s\n", c)
			failed = true
		}
	}
	cleanup()
	if failed {
		os.Exit(1)
	}
}

func parseInvariant(s string) (map[string]int, error) {
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("pnut-reach: invariant terms are place=weight, got %q", part)
		}
		weight, err := strconv.Atoi(strings.TrimSpace(w))
		if err != nil {
			return nil, fmt.Errorf("pnut-reach: bad weight in %q", part)
		}
		out[strings.TrimSpace(name)] = weight
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-reach:", err)
	os.Exit(1)
}
