// pnut-sweep is the parameter-sweep driver: the production face of the
// paper's central workflow — sweep a design parameter (cache hit ratio,
// memory speed, ...) across a grid of simulation experiments and
// compare the resulting performance curves.
//
// Axes are given as -axis Name=v1,v2,... or -axis Name=lo:hi:step;
// their cartesian product is the grid. Each grid point runs -reps
// independent replications, and all (point, replication) cells fan
// through one shared worker pool. Cell (p, r) always runs with seed
// -seed + p*reps + r, so the output is bit-for-bit reproducible for any
// -parallel value — the worker count only changes wall-clock time.
//
// Two model sources are supported:
//
//   - The built-in pipeline models (-model pipeline or -model cache),
//     where axis names are pipeline parameters such as MemoryCycles,
//     StoreProb, DHitRatio (see -h for the full list). This reproduces
//     the paper's cache and memory-speed studies directly:
//
//     pnut-sweep -model cache -axis DHitRatio=0,0.5,0.9,1 \
//     -reps 8 -throughput Issue -utilization Bus_busy
//
//   - A textual net (-net model.pn), where axis names are the net's
//     var declarations, overridden per point.
//
// Beyond simulation, -engine selects the grid engine: -engine reach
// runs exhaustive state-space analysis per grid point (graph size,
// deadlocks, dead transitions, truncation, plus -bound and -ctl
// selections), -engine analytic solves each point's timed reachability
// graph exactly as a semi-Markov process, and -engine sim+analytic
// runs both and cross-validates the simulated means against the exact
// values within -xtol, failing the run on disagreement. The
// deterministic engines collapse to one replication per point; axes,
// shard partitions, journals and the server cache work unchanged.
//
// Instead of a fixed -reps, -adaptive metric:relci switches each grid
// point to CI-targeted sequential stopping: -min-reps replications
// first, then batches of -batch more until the metric's 95% CI
// half-width is within relci of |mean| or -max-reps is reached. Cell
// (p, r) then runs with seed -seed + p*max-reps + r, the stopping
// decision is taken only from replication-order summaries between
// rounds, and the table/CSV gain an "n" column — output stays
// bit-for-bit reproducible for any -parallel value:
//
//	pnut-sweep -model cache -axis DHitRatio=0:1:0.1 \
//	  -adaptive 'throughput(Issue):0.02' -min-reps 4 -max-reps 64 \
//	  -throughput Issue
//
// Results print as an aligned table (one row per point, mean ±95% CI
// per metric) or as CSV with -format csv; run-shape and timing lines go
// to stderr, so stdout is stable interchange.
//
// pnut-sweep is also the worker of the distributed driver (see
// pnut-grid): with -emit cells it executes only its share of the grid —
// -shard i/n (1-based) or an explicit cell span -cells lo:hi — and
// streams one self-describing JSONL cell record per finished cell on
// stdout. Any shard partition reassembles byte-identically to a single
// in-process run.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/sweepcli"
)

func main() {
	var cfg sweepcli.Config
	cfg.Register(flag.CommandLine)
	format := flag.String("format", "table", "output format: table or csv")
	progress := flag.Bool("progress", false, "log per-cell progress lines to stderr (deterministic cell order)")
	shard := flag.String("shard", "", "with -emit cells: run shard i/n (1-based) of the cell grid")
	cells := flag.String("cells", "", "with -emit cells: run only cells lo:hi (0-based, half-open)")
	emit := flag.String("emit", "", `set to "cells" to stream per-cell JSONL records instead of a merged table`)
	xtol := flag.Float64("xtol", 0.05, "with -engine sim+analytic: relative tolerance per metric; any grid\npoint whose simulated mean strays further from the exact value fails\nthe run")
	flag.Parse()

	if cfg.Engine == "sim+analytic" {
		if *emit != "" || *shard != "" || *cells != "" {
			fatal(fmt.Errorf("-engine sim+analytic drives two full sweeps and cannot shard or emit cells"))
		}
		if err := crossValidate(&cfg, *format, *xtol); err != nil {
			fatal(err)
		}
		return
	}

	opt, name, err := cfg.Options()
	if err != nil {
		fatal(err)
	}

	if *emit != "" && *emit != "cells" {
		fatal(fmt.Errorf("unknown -emit %q (want cells)", *emit))
	}
	if *emit == "cells" {
		if err := emitCells(opt, name, *shard, *cells, cfg.Parallel); err != nil {
			fatal(err)
		}
		return
	}
	if *shard != "" || *cells != "" {
		fatal(fmt.Errorf("-shard/-cells select a partial grid and require -emit cells"))
	}

	if *progress {
		// The same OnCell hook the simulation server's SSE feed uses:
		// cells are reported serialized and in deterministic grid order,
		// and the hook cannot change a result byte.
		total, done := opt.NumCells(), 0
		opt.OnCell = func(pt experiment.Point, rep int) {
			done++
			fmt.Fprintf(os.Stderr, "pnut-sweep: cell %d/%d  %s  rep %d\n", done, total, pt.String(), rep)
		}
	}

	r, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	switch *format {
	case "table":
		if r.Adaptive != nil {
			fmt.Fprintf(os.Stderr, "pnut-sweep: sweep %s: %d points, adaptive %s:%g reps %d..%d (%d total), base seed %d, %d workers\n",
				name, len(r.Points), r.Adaptive.Metric, r.Adaptive.RelCI,
				r.Adaptive.MinReps, r.Adaptive.MaxReps, r.TotalReps, cfg.Seed, r.Workers)
		} else if cfg.Engine != "" && cfg.Engine != "sim" {
			fmt.Fprintf(os.Stderr, "pnut-sweep: sweep %s: %d points, engine %s (deterministic), %d workers\n",
				name, len(r.Points), cfg.Engine, r.Workers)
		} else {
			fmt.Fprintf(os.Stderr, "pnut-sweep: sweep %s: %d points x %d replications, base seed %d, %d workers\n",
				name, len(r.Points), r.Reps, cfg.Seed, r.Workers)
		}
		err = r.WriteTable(out)
	case "csv":
		err = r.WriteCSV(out)
	default:
		err = fmt.Errorf("unknown -format %q (want table or csv)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-sweep: %s: points=%d total_reps=%d workers=%d elapsed=%s (%.0f events/s)\n",
		name, len(r.Points), r.TotalReps, r.Workers, r.Elapsed.Round(time.Microsecond),
		float64(r.Events)/r.Elapsed.Seconds())
}

// crossValidate is the -engine sim+analytic mode: run the stochastic
// sweep and the exact sweep over the same grid, diff them point by
// point, and fail (exit 1) when any metric strays past the tolerance.
func crossValidate(cfg *sweepcli.Config, format string, tol float64) error {
	simOpt, anaOpt, name, err := cfg.CrossOptions()
	if err != nil {
		return err
	}
	simRes, err := experiment.Sweep(context.Background(), simOpt)
	if err != nil {
		return fmt.Errorf("sim half: %w", err)
	}
	anaRes, err := experiment.Sweep(context.Background(), anaOpt)
	if err != nil {
		return fmt.Errorf("analytic half: %w", err)
	}
	rep, err := sweepcli.CrossValidate(simRes, anaRes, tol)
	if err != nil {
		return err
	}
	out := bufio.NewWriter(os.Stdout)
	switch format {
	case "table":
		err = rep.WriteTable(out)
	case "csv":
		err = rep.WriteCSV(out)
	default:
		err = fmt.Errorf("unknown -format %q (want table or csv)", format)
	}
	if err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pnut-sweep: cross-validation %s: %d points, %d metrics, tol %g, %d total sim reps\n",
		name, len(rep.Rows), len(rep.Rows[0].Cols), tol, simRes.TotalReps)
	if rep.Disagreements > 0 {
		return fmt.Errorf("cross-validation: %d metric values disagree beyond tol %g (see the relerr columns)", rep.Disagreements, tol)
	}
	return nil
}

// emitCells is worker mode: run one span of the grid, stream cell
// records on stdout.
func emitCells(opt experiment.SweepOptions, name, shard, cells string, parallel int) error {
	if err := opt.Validate(); err != nil {
		return err
	}
	span, err := pickSpan(opt.NumCells(), shard, cells)
	if err != nil {
		return err
	}
	cw, err := experiment.NewCellWriter(os.Stdout, experiment.MetaOf(opt, name))
	if err != nil {
		return err
	}
	start := time.Now()
	if span.Size() > 0 {
		if _, err := experiment.RunCellsContext(context.Background(), opt, span.Lo, span.Hi, cw.Write); err != nil {
			return err
		}
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pnut-sweep: %s: cells %s of %d, workers=%d elapsed=%s\n",
		name, span, opt.NumCells(), parallel, time.Since(start).Round(time.Microsecond))
	return nil
}

// pickSpan resolves the worker's share of the grid: an explicit -cells
// span, a -shard i/n slot of the canonical plan, or the whole grid. A
// shard index past the plan (more shards than cells) is an empty span:
// the worker emits a valid stream with zero records.
func pickSpan(numCells int, shard, cells string) (dist.Span, error) {
	switch {
	case shard != "" && cells != "":
		return dist.Span{}, fmt.Errorf("-shard and -cells are mutually exclusive")
	case cells != "":
		lo, hi, err := splitInts(cells, ":")
		if err != nil {
			return dist.Span{}, fmt.Errorf("-cells %q is not lo:hi", cells)
		}
		if lo < 0 || hi > numCells || lo >= hi {
			return dist.Span{}, fmt.Errorf("-cells %d:%d outside grid of %d cells", lo, hi, numCells)
		}
		return dist.Span{Lo: lo, Hi: hi}, nil
	case shard != "":
		i, n, err := splitInts(shard, "/")
		if err != nil {
			return dist.Span{}, fmt.Errorf("-shard %q is not i/n", shard)
		}
		if n < 1 || i < 1 || i > n {
			return dist.Span{}, fmt.Errorf("-shard %d/%d: want 1 <= i <= n", i, n)
		}
		plan := dist.PlanShards(numCells, n)
		if i > len(plan) {
			return dist.Span{}, nil // more shards than cells: this one is empty
		}
		return plan[i-1], nil
	default:
		return dist.Span{Lo: 0, Hi: numCells}, nil
	}
}

// splitInts parses exactly "a<sep>b" with no trailing garbage.
func splitInts(s, sep string) (int, int, error) {
	as, bs, ok := strings.Cut(s, sep)
	if !ok {
		return 0, 0, fmt.Errorf("missing %q", sep)
	}
	a, err := strconv.Atoi(as)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(bs)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-sweep:", err)
	os.Exit(1)
}
