// pnut-sweep is the parameter-sweep driver: the production face of the
// paper's central workflow — sweep a design parameter (cache hit ratio,
// memory speed, ...) across a grid of simulation experiments and
// compare the resulting performance curves.
//
// Axes are given as -axis Name=v1,v2,...; their cartesian product is
// the grid. Each grid point runs -reps independent replications, and
// all (point, replication) cells fan through one shared worker pool.
// Cell (p, r) always runs with seed -seed + p*reps + r, so the output
// is bit-for-bit reproducible for any -parallel value — the worker
// count only changes wall-clock time.
//
// Two model sources are supported:
//
//   - The built-in pipeline models (-model pipeline or -model cache),
//     where axis names are pipeline parameters such as MemoryCycles,
//     StoreProb, DHitRatio (see -h for the full list). This reproduces
//     the paper's cache and memory-speed studies directly:
//
//     pnut-sweep -model cache -axis DHitRatio=0,0.5,0.9,1 \
//     -reps 8 -throughput Issue -utilization Bus_busy
//
//   - A textual net (-net model.pn), where axis names are the net's
//     var declarations, overridden per point.
//
// Results print as an aligned table (one row per point, mean ±95% CI
// per metric) or as CSV with -format csv.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/ptl"
	"repro/internal/sim"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ", ") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	model := flag.String("model", "pipeline", "built-in model: pipeline or cache; axis names are parameters\n"+
		strings.Join(pipeline.ParamNames(), ", "))
	netPath := flag.String("net", "", "path to a .pn net (overrides -model; axis names are net vars)")
	horizon := flag.Int64("horizon", 10_000, "simulation length in clock ticks per replication")
	maxStarts := flag.Int64("max-starts", 0, "stop each replication after this many firings (0 = horizon only)")
	seed := flag.Int64("seed", 1, "base seed; cell (point p, rep r) uses seed + p*reps + r")
	reps := flag.Int("reps", 5, "independent replications per grid point")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS; never affects results)")
	format := flag.String("format", "table", "output format: table or csv")
	var axes, throughputs, utilizations repeated
	flag.Var(&axes, "axis", "swept parameter as Name=v1,v2,... (repeatable; product of axes is the grid)")
	flag.Var(&throughputs, "throughput", "transition whose completion rate to summarize (repeatable)")
	flag.Var(&utilizations, "utilization", "place whose mean token count to summarize (repeatable)")
	flag.Parse()

	var parsed []experiment.Axis
	for _, a := range axes {
		ax, err := experiment.ParseAxis(a)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, ax)
	}

	var metrics []experiment.Metric
	for _, tr := range throughputs {
		metrics = append(metrics, experiment.Throughput(tr))
	}
	for _, p := range utilizations {
		metrics = append(metrics, experiment.Utilization(p))
	}
	if len(metrics) == 0 {
		fmt.Fprintln(os.Stderr, "pnut-sweep: at least one -throughput or -utilization metric is required")
		flag.Usage()
		os.Exit(2)
	}

	build, name, err := buildHook(*netPath, *model)
	if err != nil {
		fatal(err)
	}

	r, err := experiment.Sweep(experiment.SweepOptions{
		Axes:     parsed,
		Reps:     *reps,
		Workers:  *parallel,
		BaseSeed: *seed,
		Sim: sim.Options{
			Horizon:   *horizon,
			MaxStarts: *maxStarts,
		},
		Metrics: metrics,
		Build:   build,
	})
	if err != nil {
		fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	switch *format {
	case "table":
		fmt.Fprintf(out, "sweep %s: %d points x %d replications, base seed %d, %d workers\n",
			name, len(r.Points), r.Reps, *seed, r.Workers)
		err = r.WriteTable(out)
	case "csv":
		err = r.WriteCSV(out)
	default:
		err = fmt.Errorf("unknown -format %q (want table or csv)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-sweep: %s: points=%d reps=%d workers=%d elapsed=%s (%.0f events/s)\n",
		name, len(r.Points), r.Reps, r.Workers, r.Elapsed.Round(time.Microsecond),
		float64(r.Events)/r.Elapsed.Seconds())
}

// buildHook returns the per-point net builder: either the built-in
// pipeline models parameterized by name, or a .pn net with per-point
// var overrides.
func buildHook(netPath, model string) (func(experiment.Point) (*petri.Net, error), string, error) {
	if netPath != "" {
		src, err := os.ReadFile(netPath)
		if err != nil {
			return nil, "", err
		}
		base, err := ptl.Parse(string(src))
		if err != nil {
			return nil, "", err
		}
		return func(pt experiment.Point) (*petri.Net, error) {
			over := make(map[string]int64, len(pt.Names))
			for i, n := range pt.Names {
				v := pt.Values[i]
				if v != float64(int64(v)) {
					return nil, fmt.Errorf("net var %s wants an integer, got %g", n, v)
				}
				over[n] = int64(v)
			}
			return base.WithVars(over)
		}, base.Name, nil
	}
	switch model {
	case "pipeline", "cache":
		cached := model == "cache"
		name := "pipeline"
		if cached {
			name = "pipeline_cached"
		}
		return func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(cached, pt.Names, pt.Values)
		}, name, nil
	}
	return nil, "", fmt.Errorf("unknown -model %q (want pipeline or cache)", model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-sweep:", err)
	os.Exit(1)
}
