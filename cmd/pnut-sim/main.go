// pnut-sim is the P-NUT simulation engine as a command: it reads a
// textual Petri net (.pn), simulates it, and writes the trace to stdout,
// where it can be stored or piped straight into pnut-stat, pnut-filter,
// pnut-tracer or pnut-anim — the decoupling Section 4.1 of the paper
// describes.
//
//	pnut-sim -net pipeline.pn -horizon 10000 -seed 1 | pnut-stat
//
// With -reps N (N > 1) the tool switches to replication mode: it runs N
// independent replications seeded -seed, -seed+1, ..., fanned out over
// -parallel workers, and writes the pooled statistics report instead of
// a trace. The report is bit-for-bit identical for every -parallel
// value; see cmd/pnut-exp for the full experiment driver.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiment"
	"repro/internal/ptl"
	"repro/internal/sim"
	"repro/internal/sweepcli"
	"repro/internal/trace"
)

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	var run sweepcli.RunFlags
	run.Register(flag.CommandLine, "random seed (equal seeds give equal traces)")
	flush := flag.Bool("flush", false, "flush after every record (for live piping)")
	format := sweepcli.TraceFormat(flag.CommandLine, trace.FormatText)
	reps := flag.Int("reps", 1, "independent replications; >1 emits a pooled statistics report instead of a trace")
	parallel := flag.Int("parallel", 0, "worker goroutines for -reps mode (0 = GOMAXPROCS; never affects results)")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-sim: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	opt := run.SimOptions()

	if *reps > 1 {
		r, err := experiment.Run(context.Background(), net, experiment.Options{
			Reps:     *reps,
			Workers:  *parallel,
			BaseSeed: run.Seed,
			Sim:      opt,
		})
		if err != nil {
			fatal(err)
		}
		out := bufio.NewWriter(os.Stdout)
		if err := r.Pooled.Report(out); err != nil {
			fatal(err)
		}
		if err := out.Flush(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pnut-sim: %s: reps=%d workers=%d events=%d elapsed=%s\n",
			net.Name, r.Reps, r.Workers, r.Events, r.Elapsed.Round(time.Microsecond))
		return
	}

	w, err := trace.NewFormatWriter(os.Stdout, trace.HeaderOf(net), *format, *flush)
	if err != nil {
		fatal(err)
	}
	res, err := sim.Run(context.Background(), net, w, opt)
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-sim: %s: clock=%d starts=%d ends=%d quiescent=%v\n",
		net.Name, res.Clock, res.Starts, res.Ends, res.Quiescent)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-sim:", err)
	os.Exit(1)
}
