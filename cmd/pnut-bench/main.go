// pnut-bench is the engine's checked-in perf trajectory: it times the
// indexed event scheduler on fixed members of the modelgen families and
// emits a JSON report (events/sec, ns/event, allocs/event per net
// size), plus a reach_build scenario timing the sharded state-space
// exploration in states/sec. The repository commits one such report as
// BENCH_sim.json;
// CI regenerates it and gates with -baseline, so a change that slows
// the hot loop or puts an allocation back on the firing path fails the
// build instead of landing silently.
//
// Raw events/sec is machine-bound, so the gate normalizes by a
// calibration score — a fixed integer-mixing loop timed on the same
// machine in the same process — before comparing against the baseline:
// only the machine-independent ratio events_per_sec/calibration must
// stay within -tolerance. allocs/event is compared absolutely (its
// budget is zero on any machine).
//
//	pnut-bench -out BENCH_sim.json                      # regenerate
//	pnut-bench -baseline BENCH_sim.json -tolerance 0.1  # gate
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/modelgen"
	"repro/internal/petri"
	"repro/internal/reach"
	"repro/internal/server"
	"repro/internal/sim"
)

// benchCase is one fixed workload of the trajectory. Shapes and seeds
// are frozen: editing them invalidates every committed baseline.
type benchCase struct {
	Name    string `json:"name"`
	Family  string `json:"family"`
	Stages  int    `json:"stages,omitempty"` // deep_pipeline
	Width   int    `json:"width,omitempty"`  // fork_join
	Depth   int    `json:"depth,omitempty"`  // fork_join
	Tokens  int    `json:"tokens,omitempty"`
	Horizon int64  `json:"horizon"`
	// Store/SpillBudget select the reach cases' marking store (empty =
	// in-memory). The spill case times the same exploration with the
	// store forced to disk, so the trajectory tracks the cost of
	// exceeding the memory budget.
	Store       string `json:"store,omitempty"`
	SpillBudget int64  `json:"spill_budget,omitempty"`
}

func (c benchCase) build() *petri.Net {
	switch c.Family {
	case "deep_pipeline":
		return modelgen.DeepPipeline(c.Stages, c.Tokens, 1)
	case "fork_join":
		return modelgen.ForkJoin(c.Width, c.Depth, 1)
	}
	panic("unknown family " + c.Family)
}

var cases = []benchCase{
	{Name: "deep_pipeline_64", Family: "deep_pipeline", Stages: 64, Tokens: 8, Horizon: 40_000},
	{Name: "deep_pipeline_256", Family: "deep_pipeline", Stages: 256, Tokens: 32, Horizon: 20_000},
	{Name: "deep_pipeline_1024", Family: "deep_pipeline", Stages: 1024, Tokens: 64, Horizon: 8_000},
	{Name: "fork_join_32x8", Family: "fork_join", Width: 32, Depth: 8, Horizon: 60_000},
}

// reachCases are the exhaustive-exploration workloads: a full untimed
// reach.Build per case, measured in states/sec. Shapes are frozen like
// the engine cases; Horizon is unused (the build is exhaustive).
var reachCases = []benchCase{
	{Name: "reach_fork_join_7x4", Family: "fork_join", Width: 7, Depth: 4},
	// The same state space with a tiny in-memory budget: nearly every
	// sealed marking block round-trips through the spill file, pricing
	// the disk path relative to reach_fork_join_7x4 above.
	{Name: "reach_build_spill", Family: "fork_join", Width: 7, Depth: 4, Store: "spill", SpillBudget: 64 << 10},
}

// measurement is one case's results.
type measurement struct {
	benchCase
	Events        int64   `json:"events"`
	NsPerEvent    float64 `json:"ns_per_event"`
	EventsPerSec  float64 `json:"events_per_sec"`
	AllocsPerEvnt float64 `json:"allocs_per_event"`
	BytesPerEvent float64 `json:"bytes_per_event"`
	// Normalized is the best events-per-second-to-calibration ratio
	// over the paired runs — the machine-portable figure the baseline
	// gate compares. Calibration is the pairing run's score.
	Normalized  float64 `json:"normalized"`
	Calibration float64 `json:"calibration_score"`
}

// reachMeasurement is one reach_build result: how fast the sharded
// frontier search enumerates a fixed state space. The state count is
// part of the record — it is exact and must never move between runs.
type reachMeasurement struct {
	Name         string  `json:"name"`
	Family       string  `json:"family"`
	Width        int     `json:"width,omitempty"`
	Depth        int     `json:"depth,omitempty"`
	States       int     `json:"states"`
	StatesPerSec float64 `json:"states_per_sec"`
	Normalized   float64 `json:"normalized"`
	Calibration  float64 `json:"calibration_score"`
}

// serverMeasurement is one simulation-service scenario: jobs/sec
// through the full HTTP admission + queue + runner + render stack.
// The cold case simulates every job (distinct seeds); the warm case
// resubmits one job so every response is served from the
// content-addressed result cache. The cold/warm spread is the point:
// it records what the cache is worth end to end.
type serverMeasurement struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Normalized  float64 `json:"normalized"`
	Calibration float64 `json:"calibration_score"`
}

// report is the BENCH_sim.json schema.
type report struct {
	GoOS   string        `json:"goos"`
	GoArch string        `json:"goarch"`
	NumCPU int           `json:"num_cpu"`
	Cases  []measurement `json:"cases"`
	// Reach holds the state-space exploration scenarios; gated on the
	// normalized states/sec figure like the engine cases.
	Reach []reachMeasurement `json:"reach,omitempty"`
	// Server holds the service scenarios; compared informationally (the
	// HTTP path is scheduler-noisy, so it records trajectory rather than
	// gating the build).
	Server []serverMeasurement `json:"server,omitempty"`
}

// calibrate times a fixed splitmix64-style mixing loop and returns
// iterations per second: a proxy for single-core integer speed, so
// reports from different machines compare on Normalized rather than
// raw throughput. Each timed engine run is paired with its own
// calibration taken immediately before it, so load and CPU-frequency
// swings during the benchmark cancel out of the normalized figure.
func calibrate() float64 {
	const iters = 1 << 23
	x := uint64(0x9e3779b97f4a7c15)
	start := time.Now()
	for i := 0; i < iters; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x ^= z >> 31
	}
	el := time.Since(start).Seconds()
	if x == 0 { // defeat dead-code elimination
		fmt.Fprintln(os.Stderr)
	}
	return iters / el
}

// measure runs one case repeat times on a warm engine and keeps the
// fastest run (least-noise estimator for a deterministic workload).
func measure(c benchCase, repeat int) (measurement, error) {
	net := c.build()
	eng := sim.NewEngine(net)
	opt := sim.Options{Seed: 1, Horizon: c.Horizon}
	// Warm-up grows the engine's buffers and faults the code in.
	res, err := eng.Run(context.Background(), nil, opt)
	if err != nil {
		return measurement{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	if res.Ends == 0 {
		return measurement{}, fmt.Errorf("%s: no events simulated", c.Name)
	}
	var (
		bestNs, bestNorm, bestCal float64
		allocs, bytes             uint64
		before, after             runtime.MemStats
	)
	for r := 0; r < repeat; r++ {
		cal := calibrate()
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err = eng.Run(context.Background(), nil, opt)
		el := time.Since(start)
		if err != nil {
			return measurement{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		runtime.ReadMemStats(&after)
		ns := float64(el.Nanoseconds()) / float64(res.Ends)
		if r == 0 || ns < bestNs {
			bestNs = ns
			allocs = after.Mallocs - before.Mallocs
			bytes = after.TotalAlloc - before.TotalAlloc
		}
		if norm := (1e9 / ns) / cal; norm > bestNorm {
			bestNorm, bestCal = norm, cal
		}
	}
	return measurement{
		benchCase:     c,
		Events:        res.Ends,
		NsPerEvent:    bestNs,
		EventsPerSec:  1e9 / bestNs,
		AllocsPerEvnt: float64(allocs) / float64(res.Ends),
		BytesPerEvent: float64(bytes) / float64(res.Ends),
		Normalized:    bestNorm,
		Calibration:   bestCal,
	}, nil
}

// measureReach runs one exhaustive build repeat times and keeps the
// fastest run. Shards stays 0 (GOMAXPROCS) — the production default —
// and never changes the graph, so States doubles as a sanity pin. A
// spill case must actually spill, or the measurement is vacuous.
func measureReach(c benchCase, repeat int) (reachMeasurement, error) {
	ctx := context.Background()
	net := c.build()
	opt := reach.Options{MaxStates: 1_000_000, Store: c.Store, SpillBudget: c.SpillBudget}
	g, err := reach.Build(ctx, net, opt) // warm-up
	if err != nil {
		return reachMeasurement{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	if g.Truncated {
		g.Close()
		return reachMeasurement{}, fmt.Errorf("%s: truncated at %d states", c.Name, len(g.Nodes))
	}
	if c.Store == reach.StoreSpill && g.SpilledBytes() == 0 {
		g.Close()
		return reachMeasurement{}, fmt.Errorf("%s: spill store never spilled (budget %d, %d store bytes)",
			c.Name, c.SpillBudget, g.StoreBytes())
	}
	g.Close()
	var best reachMeasurement
	for r := 0; r < repeat; r++ {
		cal := calibrate()
		start := time.Now()
		g, err = reach.Build(ctx, net, opt)
		el := time.Since(start).Seconds()
		if err != nil {
			return reachMeasurement{}, fmt.Errorf("%s: %w", c.Name, err)
		}
		sps := float64(len(g.Nodes)) / el
		if norm := sps / cal; norm > best.Normalized {
			best = reachMeasurement{
				Name: c.Name, Family: c.Family, Width: c.Width, Depth: c.Depth,
				States: len(g.Nodes), StatesPerSec: sps,
				Normalized: norm, Calibration: cal,
			}
		}
		g.Close()
	}
	return best, nil
}

// measureServer drives the simulation service in-process: a real
// Server behind httptest, real HTTP round-trips, ?wait=1 submissions.
// Cold jobs use a fresh seed each (every one simulates); warm jobs
// resubmit the first cold spec (every one is a cache hit).
func measureServer(repeat int) ([]serverMeasurement, error) {
	srv := server.New(server.Config{QueueDepth: 64, CacheBytes: 64 << 20})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()

	specFor := func(seed int64) []byte {
		return []byte(fmt.Sprintf(
			`{"model":"cache","axes":["DHitRatio=0.5,0.9"],"reps":2,"seed":%d,"horizon":300,"format":"csv","throughput":["Issue"]}`,
			seed))
	}
	submit := func(body []byte) error {
		resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("server scenario: job status %d", resp.StatusCode)
		}
		return nil
	}

	// Warm-up: fault the whole path in (and seed the warm-case entry).
	warmSpec := specFor(1)
	if err := submit(warmSpec); err != nil {
		return nil, err
	}

	const coldJobs, warmJobs = 8, 400
	seed := int64(2)
	var out []serverMeasurement
	for _, sc := range []struct {
		name string
		jobs int
		body func(i int) []byte
	}{
		{"server_cold", coldJobs, func(int) []byte { seed++; return specFor(seed) }},
		{"server_warm_cache", warmJobs, func(int) []byte { return warmSpec }},
	} {
		var best serverMeasurement
		for r := 0; r < repeat; r++ {
			cal := calibrate()
			start := time.Now()
			for i := 0; i < sc.jobs; i++ {
				if err := submit(sc.body(i)); err != nil {
					return nil, err
				}
			}
			el := time.Since(start).Seconds()
			jps := float64(sc.jobs) / el
			if norm := jps / cal; norm > best.Normalized {
				best = serverMeasurement{
					Name: sc.name, Jobs: sc.jobs,
					JobsPerSec: jps, Normalized: norm, Calibration: cal,
				}
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// compare gates rep against the baseline: each case's Normalized score
// must be within tol of the baseline's, and allocs/event must not grow
// past the zero budget. Returns the number of failures.
func compare(rep, base *report, tol float64) int {
	byName := make(map[string]measurement, len(base.Cases))
	for _, m := range base.Cases {
		byName[m.Name] = m
	}
	failures := 0
	for _, m := range rep.Cases {
		b, ok := byName[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s not in baseline (informational)\n", m.Name)
			continue
		}
		floor := b.Normalized * (1 - tol)
		status := "ok"
		if m.Normalized < floor {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %10.0f events/s (normalized %.3g, baseline %.3g, floor %.3g) %s\n",
			m.Name, m.EventsPerSec, m.Normalized, b.Normalized, floor, status)
		// The allocation budget is absolute: the firing path allocates
		// nothing, so allow only per-run noise.
		if m.AllocsPerEvnt > 0.01 {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %.4f allocs/event exceeds the zero budget\n", m.Name, m.AllocsPerEvnt)
			failures++
		}
	}
	// Exploration cases gate like the engine cases, on the normalized
	// states/sec ratio; the state count is exact and must not move.
	byReach := make(map[string]reachMeasurement, len(base.Reach))
	for _, m := range base.Reach {
		byReach[m.Name] = m
	}
	for _, m := range rep.Reach {
		b, ok := byReach[m.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s not in baseline (informational)\n", m.Name)
			continue
		}
		floor := b.Normalized * (1 - tol)
		status := "ok"
		if m.Normalized < floor {
			status = "REGRESSION"
			failures++
		}
		fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %10.0f states/s (normalized %.3g, baseline %.3g, floor %.3g) %s\n",
			m.Name, m.StatesPerSec, m.Normalized, b.Normalized, floor, status)
		if m.States != b.States {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s explored %d states, baseline %d — the graph itself changed\n",
				m.Name, m.States, b.States)
			failures++
		}
	}
	// Server scenarios are trajectory, not a gate: the HTTP path's
	// latency is dominated by the network stack and scheduler, too noisy
	// for a build-failing floor.
	byServer := make(map[string]serverMeasurement, len(base.Server))
	for _, m := range base.Server {
		byServer[m.Name] = m
	}
	for _, m := range rep.Server {
		if b, ok := byServer[m.Name]; ok {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %10.0f jobs/s (normalized %.3g, baseline %.3g, informational)\n",
				m.Name, m.JobsPerSec, m.Normalized, b.Normalized)
		} else {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %10.0f jobs/s (not in baseline, informational)\n",
				m.Name, m.JobsPerSec)
		}
	}
	return failures
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	baseline := flag.String("baseline", "", "committed BENCH_sim.json to gate against")
	tol := flag.Float64("tolerance", 0.10, "allowed fractional drop of normalized events/sec vs -baseline")
	repeat := flag.Int("repeat", 3, "timed runs per case (fastest wins)")
	noServer := flag.Bool("no-server", false, "skip the simulation-service scenarios")
	flag.Parse()

	rep := &report{
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
	}
	for _, c := range cases {
		m, err := measure(c, *repeat)
		if err != nil {
			fatal(err)
		}
		rep.Cases = append(rep.Cases, m)
		fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %8d events  %7.1f ns/event  %10.0f events/s  %.4f allocs/event\n",
			m.Name, m.Events, m.NsPerEvent, m.EventsPerSec, m.AllocsPerEvnt)
	}
	for _, c := range reachCases {
		m, err := measureReach(c, *repeat)
		if err != nil {
			fatal(err)
		}
		rep.Reach = append(rep.Reach, m)
		fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %8d states  %10.0f states/s\n",
			m.Name, m.States, m.StatesPerSec)
	}
	if !*noServer {
		sm, err := measureServer(*repeat)
		if err != nil {
			fatal(err)
		}
		rep.Server = sm
		for _, m := range sm {
			fmt.Fprintf(os.Stderr, "pnut-bench: %-20s %8d jobs    %10.0f jobs/s\n", m.Name, m.Jobs, m.JobsPerSec)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}

	if *baseline != "" {
		src, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base report
		if err := json.Unmarshal(src, &base); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
		}
		if n := compare(rep, &base, *tol); n > 0 {
			fatal(fmt.Errorf("%d case(s) regressed beyond %.0f%% of the committed baseline", n, *tol*100))
		}
		fmt.Fprintln(os.Stderr, "pnut-bench: within baseline tolerance")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-bench:", err)
	os.Exit(1)
}
