// pnut-exp is the replicated-experiment driver: the production face of
// the paper's "run many simulation experiments" workflow. It reads a
// textual Petri net (.pn), runs N independent replications fanned out
// over a pool of workers (one simulation engine and one statistics
// accumulator per worker), and reports each requested metric with its
// 95% confidence interval plus, optionally, the pooled Figure-5 style
// statistics report.
//
// Replication i always runs with seed -seed+i, so results are
// bit-for-bit reproducible for any -parallel value — the worker count
// only changes wall-clock time.
//
//	pnut-exp -net pipeline.pn -horizon 10000 -reps 32 \
//	         -throughput Issue -utilization Bus_busy
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/ptl"
	"repro/internal/sweepcli"
	"repro/internal/trace"
)

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	var run sweepcli.RunFlags
	run.Register(flag.CommandLine, "base seed; replication i uses seed+i")
	reps := flag.Int("reps", 10, "number of independent replications")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS; never affects results)")
	report := flag.Bool("report", false, "also print the pooled statistics report")
	traceDir := flag.String("trace-dir", "", "write every replication's full trace into this directory (rep-NNNN.trace)")
	traceFormat := sweepcli.TraceFormat(flag.CommandLine, trace.FormatCol)
	var sel sweepcli.MetricFlags
	sel.Register(flag.CommandLine)
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-exp: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	metrics := sel.Metrics()
	so := run.SimOptions()
	so.Seed = 0 // the driver seeds each replication from BaseSeed
	opt := experiment.Options{
		Reps:     *reps,
		Workers:  *parallel,
		BaseSeed: run.Seed,
		Sim:      so,
		Metrics:  metrics,
	}

	// With -trace-dir every replication also streams its full trace to
	// a file; the columnar default keeps production-size experiments on
	// disk cheap, -trace-format text keeps them greppable.
	var traceCount atomic.Int64
	if *traceDir != "" {
		if _, err := trace.NewFormatWriter(io.Discard, trace.Header{}, *traceFormat, false); err != nil {
			fatal(err) // reject a bad -trace-format before running anything
		}
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fatal(err)
		}
		h := trace.HeaderOf(net)
		opt.Observe = func(rep int) trace.Observer {
			// Each replication's file is closed on its Final record, so
			// the open-fd count tracks the worker pool, not -reps.
			f, err := os.Create(filepath.Join(*traceDir, fmt.Sprintf("rep-%04d.trace", rep)))
			if err != nil {
				return trace.ObserverFunc(func(*trace.Record) error { return err })
			}
			w, _ := trace.NewFormatWriter(f, h, *traceFormat, false)
			return trace.ObserverFunc(func(rec *trace.Record) error {
				if err := w.Record(rec); err != nil {
					f.Close()
					return err
				}
				if rec.Kind != trace.Final {
					return nil
				}
				if err := w.Flush(); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("closing %s: %w", f.Name(), err)
				}
				traceCount.Add(1)
				return nil
			})
		}
	}

	r, err := experiment.Run(context.Background(), net, opt)
	if err != nil {
		fatal(err)
	}
	if *traceDir != "" {
		fmt.Fprintf(os.Stderr, "pnut-exp: wrote %d %s traces to %s\n", traceCount.Load(), *traceFormat, *traceDir)
	}

	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "experiment %s: %d replications, base seed %d, %d workers\n",
		net.Name, r.Reps, run.Seed, r.Workers)
	fmt.Fprintf(out, "simulated %d ticks total, %d events\n", r.Pooled.Duration(), r.Events)
	for i, m := range metrics {
		fmt.Fprintf(out, "%-32s %s\n", m.Name, r.Summaries[i])
	}
	if *report {
		fmt.Fprintln(out)
		if err := r.Pooled.Report(out); err != nil {
			fatal(err)
		}
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-exp: %s: reps=%d workers=%d elapsed=%s (%.0f events/s)\n",
		net.Name, r.Reps, r.Workers, r.Elapsed.Round(time.Microsecond),
		float64(r.Events)/r.Elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-exp:", err)
	os.Exit(1)
}
