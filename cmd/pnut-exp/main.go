// pnut-exp is the replicated-experiment driver: the production face of
// the paper's "run many simulation experiments" workflow. It reads a
// textual Petri net (.pn), runs N independent replications fanned out
// over a pool of workers (one simulation engine and one statistics
// accumulator per worker), and reports each requested metric with its
// 95% confidence interval plus, optionally, the pooled Figure-5 style
// statistics report.
//
// Replication i always runs with seed -seed+i, so results are
// bit-for-bit reproducible for any -parallel value — the worker count
// only changes wall-clock time.
//
//	pnut-exp -net pipeline.pn -horizon 10000 -reps 32 \
//	         -throughput Issue -utilization Bus_busy
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/ptl"
	"repro/internal/sim"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ", ") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	netPath := flag.String("net", "", "path to the .pn net description (required)")
	horizon := flag.Int64("horizon", 10_000, "simulation length in clock ticks per replication")
	maxStarts := flag.Int64("max-starts", 0, "stop each replication after this many firings (0 = horizon only)")
	seed := flag.Int64("seed", 1, "base seed; replication i uses seed+i")
	reps := flag.Int("reps", 10, "number of independent replications")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS; never affects results)")
	report := flag.Bool("report", false, "also print the pooled statistics report")
	var throughputs, utilizations repeated
	flag.Var(&throughputs, "throughput", "transition whose completion rate to summarize (repeatable)")
	flag.Var(&utilizations, "utilization", "place whose mean token count to summarize (repeatable)")
	flag.Parse()

	if *netPath == "" {
		fmt.Fprintln(os.Stderr, "pnut-exp: -net is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*netPath)
	if err != nil {
		fatal(err)
	}
	net, err := ptl.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	var metrics []experiment.Metric
	for _, tr := range throughputs {
		metrics = append(metrics, experiment.Throughput(tr))
	}
	for _, p := range utilizations {
		metrics = append(metrics, experiment.Utilization(p))
	}

	r, err := experiment.Run(net, experiment.Options{
		Reps:     *reps,
		Workers:  *parallel,
		BaseSeed: *seed,
		Sim: sim.Options{
			Horizon:   *horizon,
			MaxStarts: *maxStarts,
		},
		Metrics: metrics,
	})
	if err != nil {
		fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(out, "experiment %s: %d replications, base seed %d, %d workers\n",
		net.Name, r.Reps, *seed, r.Workers)
	fmt.Fprintf(out, "simulated %d ticks total, %d events\n", r.Pooled.Duration(), r.Events)
	for i, m := range metrics {
		fmt.Fprintf(out, "%-32s %s\n", m.Name, r.Summaries[i])
	}
	if *report {
		fmt.Fprintln(out)
		if err := r.Pooled.Report(out); err != nil {
			fatal(err)
		}
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-exp: %s: reps=%d workers=%d elapsed=%s (%.0f events/s)\n",
		net.Name, r.Reps, r.Workers, r.Elapsed.Round(time.Microsecond),
		float64(r.Events)/r.Elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-exp:", err)
	os.Exit(1)
}
