// pnut-tracer is Tracertool (Section 4.4) as a command: a software logic
// state analyzer over a trace read from stdin, plus the verification
// front end.
//
// Probes are chosen with -place, -trans and -func (all repeatable); the
// window and resolution with -from/-to/-width. Markers are placed at
// absolute times (-mark O=120) or at trigger conditions
// (-trigger X=storing>0). Verification queries run with -check:
//
//	pnut-sim -net pipeline.pn | pnut-tracer \
//	    -place Bus_busy -place pre_fetching -place fetching -place storing \
//	    -func 'sum_exec=exec_type_1+exec_type_2+exec_type_3+exec_type_4+exec_type_5' \
//	    -trigger 'O=Bus_busy > 0' -trigger 'X=storing > 0' \
//	    -check 'forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/query"
	"repro/internal/trace"
	"repro/internal/tracer"
)

type repeated []string

func (r *repeated) String() string { return strings.Join(*r, ", ") }

func (r *repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var places, transitions, funcs, marks, triggers, checks repeated
	flag.Var(&places, "place", "place to probe (repeatable)")
	flag.Var(&transitions, "trans", "transition to probe (repeatable)")
	flag.Var(&funcs, "func", "user-defined function probe, label=expr (repeatable)")
	flag.Var(&marks, "mark", "marker at a time, name=ticks (repeatable)")
	flag.Var(&triggers, "trigger", "marker at first state satisfying expr, name=expr (repeatable)")
	flag.Var(&checks, "check", "verification query (repeatable)")
	from := flag.Int64("from", 0, "window start")
	to := flag.Int64("to", 0, "window end (0 = end of run)")
	width := flag.Int("width", 96, "plot width in columns")
	unicode := flag.Bool("unicode", false, "use block-character waveforms")
	figure7 := flag.Bool("figure7", false, "use the paper's Figure 7 probe set (pipeline traces)")
	vcd := flag.String("vcd", "", "also write the probes as a VCD waveform file")
	format := flag.String("trace-format", trace.FormatAuto, "input trace encoding: auto (sniff), text or col")
	flag.Parse()

	r, _, err := trace.OpenReader(os.Stdin, *format)
	if err != nil {
		fatal(err)
	}
	seq, err := query.SeqFromReader(r)
	if err != nil {
		fatal(err)
	}
	var tr *tracer.Tracer
	if *figure7 {
		tr, err = tracer.Figure7(seq)
		if err != nil {
			fatal(err)
		}
	} else {
		tr = tracer.New(seq)
	}
	for _, p := range places {
		if err := tr.AddPlace(p); err != nil {
			fatal(err)
		}
	}
	for _, t := range transitions {
		if err := tr.AddTransition(t); err != nil {
			fatal(err)
		}
	}
	for _, f := range funcs {
		label, src, ok := strings.Cut(f, "=")
		if !ok {
			fatal(fmt.Errorf("-func wants label=expr, got %q", f))
		}
		if err := tr.AddFunc(label, src); err != nil {
			fatal(err)
		}
	}
	for _, m := range marks {
		name, at, ok := strings.Cut(m, "=")
		if !ok {
			fatal(fmt.Errorf("-mark wants name=ticks, got %q", m))
		}
		tm, err := strconv.ParseInt(at, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("-mark %q: %v", m, err))
		}
		tr.MarkAt(name, tm)
	}
	for _, tg := range triggers {
		name, src, ok := strings.Cut(tg, "=")
		if !ok {
			fatal(fmt.Errorf("-trigger wants name=expr, got %q", tg))
		}
		if _, err := tr.MarkWhen(name, src, *from); err != nil {
			fatal(err)
		}
	}
	if len(tr.Signals()) > 0 {
		fmt.Print(tr.Render(tracer.RenderOptions{
			From: *from, To: *to, Width: *width, Unicode: *unicode,
		}))
	}
	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteVCD(f, ""); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pnut-tracer: wrote %s\n", *vcd)
	}
	failed := false
	for _, c := range checks {
		res, err := tr.Verify(c)
		if err != nil {
			fatal(err)
		}
		verdict := "HOLDS"
		if !res.Holds {
			verdict = "FAILS"
			failed = true
		}
		fmt.Printf("%s  %s", verdict, c)
		if res.Witness >= 0 {
			st := &seq.States[res.Witness]
			fmt.Printf("   (witness state #%d at t=%d)", res.Witness, st.Time)
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-tracer:", err)
	os.Exit(1)
}
