// pnut-server is the simulation service daemon: it exposes the sweep
// engine over HTTP so experiments can be submitted, monitored and
// fetched remotely instead of through pnut-sweep runs on a shared box.
//
// A job is the same declarative spec the CLIs speak (model or inline
// .pn source, axes, seeds, stopping rule, metrics), POSTed as JSON:
//
//	curl -s -X POST localhost:8080/v1/jobs?wait=1 -d '{
//	  "model": "cache",
//	  "axes": ["DHitRatio=0.5,0.9", "MemoryCycles=1,5"],
//	  "reps": 3, "seed": 11, "horizon": 1000,
//	  "format": "csv",
//	  "throughput": ["Issue"], "utilization": ["Bus_busy"]
//	}'
//
// Determinism makes the service more than a job runner: results are
// content-addressed (normalized model + expanded grid + seed layout +
// stopping rule + metrics + format), so a repeated submission — even
// spelled differently — is served from the result cache without
// simulating anything, marked X-Pnut-Cache: hit.
//
// Operational behavior: a bounded job queue with per-client rate
// limiting (429 + Retry-After), job cancellation, SSE progress
// streams, /healthz + /metrics, and graceful drain — on SIGTERM (or
// SIGINT) the server stops admitting, lets running jobs finish (up to
// -drain-timeout), closes the listener and exits 0.
//
// With -worker-cmd, jobs fan out over worker processes through the
// fault-tolerant distributed coordinator instead of running in-process:
//
//	pnut-server -worker-cmd ./pnut-sweep -procs 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	queue := flag.Int("queue", 16, "job queue depth (admitted but not yet running)")
	jobs := flag.Int("jobs", 1, "jobs simulated concurrently")
	parallel := flag.Int("parallel", 0, "default worker goroutines per job (0 = all CPUs); a job's own parallel field wins")
	rate := flag.Float64("rate", 0, "per-client admissions per second (0 = unlimited)")
	burst := flag.Float64("burst", 4, "per-client admission burst")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (0 disables caching)")
	workerCmd := flag.String("worker-cmd", "", "run jobs via worker processes: command prefix for the distributed coordinator (e.g. ./pnut-sweep)")
	procs := flag.Int("procs", 4, "worker processes per job with -worker-cmd")
	maxBody := flag.Int64("max-body", 1<<20, "largest accepted job spec in bytes")
	maxCells := flag.Int("max-cells", 1_000_000, "largest accepted grid in (point, replication) cells")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a drain waits for running jobs before canceling them")
	verbose := flag.Bool("v", false, "log job lifecycle and coordinator progress to stderr")
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	srv := server.New(server.Config{
		QueueDepth: *queue,
		RunJobs:    *jobs,
		Workers:    *parallel,
		RatePerSec: *rate,
		Burst:      *burst,
		CacheBytes: *cacheBytes,
		WorkerCmd:  *workerCmd,
		Procs:      *procs,
		MaxBody:    *maxBody,
		MaxCells:   *maxCells,
		Log:        logw,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "pnut-server: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pnut-server: %s, draining\n", sig)
	}

	// Graceful exit: stop admitting and finish running jobs first (the
	// listener stays up so waiting clients receive their results), then
	// close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	if drainErr != nil {
		fatal(fmt.Errorf("drain: %w", drainErr))
	}
	fmt.Fprintln(os.Stderr, "pnut-server: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-server:", err)
	os.Exit(1)
}
