// pnut-stat is the statistical analysis tool of Section 4.2: it reads a
// trace on stdin and prints the RUN / EVENT / PLACE statistics report of
// Figure 5.
//
//	pnut-sim -net pipeline.pn -horizon 10000 | pnut-stat
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	format := flag.String("trace-format", trace.FormatAuto, "input trace encoding: auto (sniff), text or col")
	flag.Parse()

	r, _, err := trace.OpenReader(os.Stdin, *format)
	if err != nil {
		fatal(err)
	}
	h, err := r.Header()
	if err != nil {
		fatal(err)
	}
	s := stats.New(h)
	if _, err := trace.Copy(r, s); err != nil {
		fatal(err)
	}
	if err := s.Report(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-stat:", err)
	os.Exit(1)
}
