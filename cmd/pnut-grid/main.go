// pnut-grid is the distributed sweep coordinator: it executes the same
// parameter grid as pnut-sweep, but across worker OS processes instead
// of goroutines — and produces bit-for-bit the same stdout.
//
// The grid's (point, replication) cells are partitioned into -procs
// contiguous point-major shards; each shard is dispatched as a worker
// process
//
//	<worker-cmd> <sweep flags> -cells lo:hi -emit cells
//
// whose stdout streams one JSONL cell record per finished cell (see
// pnut-sweep -emit cells). The worker command is a template: the
// default spawns pnut-sweep locally (found on $PATH or next to
// pnut-grid), and a prefix like
//
//	pnut-grid -worker-cmd 'ssh build2 pnut-sweep' ...
//
// runs shards on another machine — the JSONL stream on stdout is the
// only interchange, exactly the compose-small-tools-over-pipes
// philosophy of the suite.
//
// With -adaptive metric:relci (plus -min-reps/-max-reps/-batch, see
// pnut-sweep), the coordinator runs CI-targeted stopping rounds: each
// round's unconverged points get another batch of replications, planned
// into shards over the pending cells exactly like a resumed grid. The
// stopping decision is taken only from replication-order summaries
// between rounds, so the output is still byte-identical to the
// in-process pnut-sweep run for any -procs value.
//
// With -retries, a dying worker no longer fails the run: the dead
// shard's undelivered cells are re-planned and retried (after
// -backoff, doubling per attempt), a worker slot that keeps dying is
// quarantined and its spans redistributed across the survivors, and
// -speculate lets idle slots re-dispatch the longest-running span.
// Determinism makes duplicate deliveries byte-identical, so the first
// write wins and output never changes.
//
// With -journal, completed cells are checkpointed as they arrive. If
// the run does fail (retry budget exhausted), the journal survives;
// re-running the same command re-dispatches only the missing cells and
// emits output identical to a run that never failed. Workers, shard
// counts, goroutine counts, retries and speculation never change a
// result byte: cell c always runs with seed -seed + c, and the
// coordinator merges complete grids in cell order.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/sweepcli"
)

func main() {
	var cfg sweepcli.Config
	cfg.Register(flag.CommandLine)
	var fault sweepcli.FaultFlags
	fault.Register(flag.CommandLine)
	format := flag.String("format", "table", "output format: table or csv")
	procs := flag.Int("procs", 2, "worker processes (shards); results never depend on it")
	workerCmd := flag.String("worker-cmd", "pnut-sweep",
		"worker command template (whitespace-split; sweep flags and -cells/-emit are appended)")
	journal := flag.String("journal", "", "checkpoint file: cells are journaled as they arrive; an existing journal resumes")
	verbose := flag.Bool("v", false, "log dispatch progress to stderr")
	flag.Parse()

	opt, name, err := cfg.Options()
	if err != nil {
		fatal(err)
	}

	argv := strings.Fields(*workerCmd)
	if len(argv) == 0 {
		fatal(fmt.Errorf("empty -worker-cmd"))
	}
	if resolved, err := resolveWorker(argv[0]); err != nil {
		fatal(err)
	} else {
		argv[0] = resolved
	}
	argv = append(argv, cfg.WorkerArgs(cfg.Parallel)...)

	meta := experiment.MetaOf(opt, name)
	runner, err := dist.NewExecRunner(argv, &meta, os.Stderr)
	if err != nil {
		fatal(err)
	}
	copt := dist.Options{
		Shards:  *procs,
		Runner:  runner,
		Journal: *journal,
		Meta:    &meta,
	}
	fault.Apply(&copt)
	if *verbose {
		copt.Log = os.Stderr
	}

	r, err := dist.Execute(context.Background(), opt, copt)
	if err != nil {
		fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	switch *format {
	case "table":
		if r.Adaptive != nil {
			fmt.Fprintf(os.Stderr, "pnut-grid: sweep %s: %d points, adaptive %s:%g reps %d..%d (%d total), base seed %d, %d worker processes\n",
				name, len(r.Points), r.Adaptive.Metric, r.Adaptive.RelCI,
				r.Adaptive.MinReps, r.Adaptive.MaxReps, r.TotalReps, cfg.Seed, *procs)
		} else {
			fmt.Fprintf(os.Stderr, "pnut-grid: sweep %s: %d points x %d replications, base seed %d, %d worker processes\n",
				name, len(r.Points), r.Reps, cfg.Seed, *procs)
		}
		err = r.WriteTable(out)
	case "csv":
		err = r.WriteCSV(out)
	default:
		err = fmt.Errorf("unknown -format %q (want table or csv)", *format)
	}
	if err != nil {
		fatal(err)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pnut-grid: %s: points=%d total_reps=%d procs=%d elapsed=%s (%.0f events/s)\n",
		name, len(r.Points), r.TotalReps, *procs, r.Elapsed.Round(time.Microsecond),
		float64(r.Events)/r.Elapsed.Seconds())
}

// resolveWorker finds the worker binary: $PATH first, then — for the
// plain default — next to the pnut-grid executable, so a freshly built
// tool directory works without PATH surgery.
func resolveWorker(cmd string) (string, error) {
	if strings.ContainsRune(cmd, os.PathSeparator) {
		return cmd, nil // explicit path: use as-is
	}
	if p, err := exec.LookPath(cmd); err == nil {
		return p, nil
	}
	self, err := os.Executable()
	if err == nil {
		sibling := filepath.Join(filepath.Dir(self), cmd)
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	return "", fmt.Errorf("worker command %q not found on $PATH or next to pnut-grid", cmd)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pnut-grid:", err)
	os.Exit(1)
}
