//go:build ignore

// Command gen regenerates the .pn fixtures in this directory from the
// programmatic models, so the textual nets can never drift from the Go
// constructors the tests compare them against:
//
//	go run testdata/gen.go
//
// Outputs:
//
//	pipeline.pn              — the full Section 2 pipelined processor
//	pipeline_interpreted.pn  — the Section 3 table-driven variant
//	mutex.pn                 — a timed mutual-exclusion net used by the
//	                           reachability and analytic CLI tests
//	gen_pipeline.pn          — a small modelgen.DeepPipeline member
//	gen_forkjoin.pn          — a small modelgen.ForkJoin member
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/modelgen"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/ptl"
)

func main() {
	dir := "testdata"
	if _, err := os.Stat(dir); err != nil {
		dir = "." // run from inside testdata/
	}

	pipe, err := pipeline.Processor(pipeline.DefaultParams())
	check(err)
	write(dir, "pipeline.pn", pipe)

	interp, err := pipeline.InterpretedProcessor(pipeline.DefaultParams(), pipeline.DefaultInstructionSet())
	check(err)
	write(dir, "pipeline_interpreted.pn", interp)

	write(dir, "mutex.pn", mutex())

	// Small members of the modelgen benchmark families, checked in so
	// CLI-level tests can exercise the same shapes the scheduler
	// benchmarks and oracle property tests generate in-process.
	write(dir, "gen_pipeline.pn", modelgen.DeepPipeline(12, 3, 1))
	write(dir, "gen_forkjoin.pn", modelgen.ForkJoin(4, 3, 2))
}

// mutex builds a timed mutual-exclusion net: two processes cycle
// idle -> want -> crit -> idle around a single lock token. All delays
// are constants and the net never deadlocks, so it satisfies both the
// untimed analyzer (P-invariant lock + crit_a + crit_b = 1) and the
// analytic evaluator (live semi-Markov steady state).
func mutex() *petri.Net {
	b := petri.NewBuilder("mutex")
	b.Place("lock", 1)
	b.Place("idle_a", 1)
	b.Place("idle_b", 1)
	b.Places("want_a", "want_b", "crit_a", "crit_b")
	b.Trans("request_a").In("idle_a").Out("want_a").EnablingConst(2)
	b.Trans("request_b").In("idle_b").Out("want_b").EnablingConst(3)
	b.Trans("enter_a").In("want_a").In("lock").Out("crit_a")
	b.Trans("enter_b").In("want_b").In("lock").Out("crit_b")
	b.Trans("exit_a").In("crit_a").Out("idle_a").Out("lock").EnablingConst(4)
	b.Trans("exit_b").In("crit_b").Out("idle_b").Out("lock").EnablingConst(5)
	return b.MustBuild()
}

func write(dir, name string, net *petri.Net) {
	src := ptl.Format(net)
	// Round-trip check: the emitted text must parse back.
	if _, err := ptl.Parse(src); err != nil {
		check(fmt.Errorf("%s does not round-trip: %w", name, err))
	}
	check(os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644))
	fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, name), len(src))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gen:", err)
		os.Exit(1)
	}
}
