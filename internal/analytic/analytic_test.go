package analytic

import (
	"context"
	"math"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// station: arrivals every 4 ticks, deterministic service 2 ticks.
// Utilization of the server is exactly 0.5, throughput exactly 0.25.
func stationNet(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("station")
	b.Place("idle", 1)
	b.Place("busy", 0)
	b.Place("queue", 0)
	b.Place("src", 1)
	b.Trans("arrive").In("src").Out("src").Out("queue").EnablingConst(4)
	b.Trans("begin").In("queue").In("idle").Out("busy")
	b.Trans("finish").In("busy").Out("idle").EnablingConst(2)
	return b.MustBuild()
}

func TestStationExact(t *testing.T) {
	r, err := Evaluate(context.Background(), stationNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	u, err := r.Utilization("busy")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-9 {
		t.Errorf("analytic utilization = %.12f, want exactly 0.5", u)
	}
	th, err := r.Throughput("finish")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-0.25) > 1e-9 {
		t.Errorf("analytic throughput = %.12f, want exactly 0.25", th)
	}
	p, err := r.ProbMarked("busy", 1)
	if err != nil || math.Abs(p-0.5) > 1e-9 {
		t.Errorf("ProbMarked = %.12f, %v", p, err)
	}
}

// probabilistic service: 1 tick with weight 3, 3 ticks with weight 1.
// The worst-case service (3) stays below the interarrival time (4), so
// the queue — and with it the timed state space — stays bounded. Every
// arrival is served: total throughput 0.25, split 3:1 across classes.
func TestProbabilisticBranching(t *testing.T) {
	b := petri.NewBuilder("probstation")
	b.Place("idle", 1)
	b.Place("queue", 0)
	b.Place("busy_fast", 0)
	b.Place("busy_slow", 0)
	b.Place("src", 1)
	b.Trans("arrive").In("src").Out("src").Out("queue").EnablingConst(4)
	b.Trans("begin_fast").In("queue").In("idle").Out("busy_fast").Freq(3)
	b.Trans("begin_slow").In("queue").In("idle").Out("busy_slow").Freq(1)
	b.Trans("finish_fast").In("busy_fast").Out("idle").EnablingConst(1)
	b.Trans("finish_slow").In("busy_slow").Out("idle").EnablingConst(3)
	net := b.MustBuild()

	r, err := Evaluate(context.Background(), net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Class split: 3:1.
	fast, _ := r.Throughput("finish_fast")
	slow, _ := r.Throughput("finish_slow")
	if math.Abs(fast/slow-3) > 1e-6 {
		t.Errorf("class split = %.6f, want 3", fast/slow)
	}
	if math.Abs(fast+slow-0.25) > 1e-9 {
		t.Errorf("total throughput = %.12f, want 0.25", fast+slow)
	}
	// Cross-validate against a long simulation.
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 400_000, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	simFast, _ := s.Throughput("finish_fast")
	if math.Abs(simFast-fast) > 0.005 {
		t.Errorf("simulation %.5f vs analytic %.5f diverge", simFast, fast)
	}
	aBusy, _ := r.ProbMarked("busy_fast", 1)
	sBusy, _ := s.Utilization("busy_fast")
	if math.Abs(aBusy-sBusy) > 0.01 {
		t.Errorf("busy_fast: analytic %.5f vs simulated %.5f", aBusy, sBusy)
	}
}

func TestDeadlockRejected(t *testing.T) {
	b := petri.NewBuilder("dead")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("t").In("a").Out("b").EnablingConst(1)
	if _, err := Evaluate(context.Background(), b.MustBuild(), Options{}); err == nil {
		t.Error("deadlocking net accepted")
	}
}

func TestUntimedRejected(t *testing.T) {
	// A purely instantaneous cycle has zero mean sojourn.
	b := petri.NewBuilder("zeno")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("ab").In("a").Out("b")
	b.Trans("ba").In("b").Out("a")
	if _, err := Evaluate(context.Background(), b.MustBuild(), Options{}); err == nil {
		t.Error("untimed net accepted (zero sojourn)")
	}
}

func TestRandomDelaysRejected(t *testing.T) {
	b := petri.NewBuilder("rand")
	b.Place("a", 1)
	b.Trans("t").In("a").Out("a").Enabling(petri.Uniform{Lo: 1, Hi: 2})
	if _, err := Evaluate(context.Background(), b.MustBuild(), Options{}); err == nil {
		t.Error("random-delay net accepted")
	}
}

func TestUnknownNames(t *testing.T) {
	r, err := Evaluate(context.Background(), stationNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Utilization("ghost"); err == nil {
		t.Error("unknown place accepted")
	}
	if _, err := r.Throughput("ghost"); err == nil {
		t.Error("unknown transition accepted")
	}
	if _, err := r.ProbMarked("ghost", 1); err == nil {
		t.Error("unknown place accepted by ProbMarked")
	}
}

// TestPipelineAnalyticMatchesSimulation is the RP84-style validation on
// the paper's own model: the analytic bus utilization and instruction
// rate of the full pipeline net must agree with long-run simulation.
func TestPipelineAnalyticMatchesSimulation(t *testing.T) {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Evaluate(context.Background(), net, Options{MaxStates: 500_000})
	if err != nil {
		t.Skipf("pipeline timed state space not solvable: %v", err)
	}
	aBus, err := r.Utilization("Bus_busy")
	if err != nil {
		t.Fatal(err)
	}
	aIssue, err := r.Throughput("Issue")
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 400_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	sBus, _ := s.Utilization("Bus_busy")
	sIssue, _ := s.Throughput("Issue")
	t.Logf("bus: analytic %.4f vs simulated %.4f; issue: analytic %.4f vs simulated %.4f (states=%d)",
		aBus, sBus, aIssue, sIssue, r.States)
	if math.Abs(aBus-sBus) > 0.02 {
		t.Errorf("bus utilization: analytic %.4f vs simulated %.4f", aBus, sBus)
	}
	if math.Abs(aIssue-sIssue) > 0.01 {
		t.Errorf("issue rate: analytic %.4f vs simulated %.4f", aIssue, sIssue)
	}
}
