// Package analytic implements the analytical (as opposed to
// simulation) performance evaluation the paper's conclusion refers to,
// in the manner of [RP84] (Razouk & Phelps, "Performance analysis
// using timed Petri nets"): the timed reachability graph of a
// deterministic-delay net is interpreted as a semi-Markov process —
// probabilistic branching at conflict states (probabilities
// proportional to relative firing frequencies, exactly as the
// simulator resolves races), deterministic sojourn times on
// time-advance edges — and its stationary distribution yields *exact*
// place utilizations and transition throughputs, no simulation run and
// no confidence intervals needed.
//
// Requirements are those of reach.BuildTimed (constant delays, no
// predicates/actions) plus a live steady state: a reachable deadlock
// means no stationary behaviour and is reported as an error.
package analytic

import (
	"context"
	"fmt"
	"math"

	"repro/internal/petri"
	"repro/internal/reach"
)

// Result holds the analytic steady-state solution.
type Result struct {
	// States is the number of timed states.
	States int
	// MeanSojourn is the expected time per embedded-chain step (the
	// normalization constant Σ π·h).
	MeanSojourn float64

	net       *petri.Net
	graph     *reach.TimedGraph
	pi        []float64 // embedded-chain stationary distribution
	timeShare []float64 // time-stationary distribution (π·h normalized)
}

// Options re-exports the state-space controls.
type Options = reach.Options

// Evaluate builds the timed reachability graph of net and solves the
// embedded Markov chain. ctx cancels the graph construction (the
// parallel reach.BuildTimed checks it at every level barrier).
func Evaluate(ctx context.Context, net *petri.Net, opt Options) (*Result, error) {
	g, err := reach.BuildTimed(ctx, net, opt)
	if err != nil {
		return nil, err
	}
	if g.Truncated {
		cap := opt.MaxStates
		if cap <= 0 {
			cap = 100_000
		}
		return nil, fmt.Errorf("analytic: timed state space exceeds %d states (is the net bounded?)", cap)
	}
	if dl := g.Deadlocks(); len(dl) > 0 {
		return nil, fmt.Errorf("analytic: net deadlocks (e.g. state %d: %s); no steady state",
			dl[0], g.Nodes[dl[0]].Marking.Format(net))
	}
	n := len(g.Nodes)
	// Transition probabilities and sojourn times.
	type edge struct {
		to int
		p  float64
	}
	edges := make([][]edge, n)
	sojourn := make([]float64, n)
	for i, node := range g.Nodes {
		if len(node.Out) == 1 && node.Out[0].Trans == reach.TimeAdvance {
			sojourn[i] = float64(node.Out[0].Delta)
			edges[i] = []edge{{to: node.Out[0].To, p: 1}}
			continue
		}
		// Conflict state: the simulator picks among ripe transitions
		// with probability proportional to frequency; the timed graph
		// has one start edge per ripe transition.
		total := 0.0
		for _, e := range node.Out {
			total += net.Trans[e.Trans].EffFreq()
		}
		if total <= 0 {
			return nil, fmt.Errorf("analytic: state %d has no weighted successors", i)
		}
		for _, e := range node.Out {
			edges[i] = append(edges[i], edge{to: e.To, p: net.Trans[e.Trans].EffFreq() / total})
		}
	}
	// Stationary distribution of the embedded chain by power iteration
	// with Cesàro averaging (deterministic nets are periodic; plain
	// power iteration would oscillate).
	pi := make([]float64, n)
	next := make([]float64, n)
	avg := make([]float64, n)
	prevAvg := make([]float64, n)
	pi[0] = 1
	const maxIter = 200_000
	const tol = 1e-12
	steps := 0.0
	for iter := 1; iter <= maxIter; iter++ {
		for i := range next {
			next[i] = 0
		}
		for i, p := range pi {
			if p == 0 {
				continue
			}
			for _, e := range edges[i] {
				next[e.to] += p * e.p
			}
		}
		pi, next = next, pi
		steps++
		for i := range avg {
			avg[i] += (pi[i] - avg[i]) / steps
		}
		if iter%64 == 0 {
			d := 0.0
			for i := range avg {
				d += math.Abs(avg[i] - prevAvg[i])
			}
			copy(prevAvg, avg)
			if d < tol && iter > 256 {
				break
			}
		}
	}
	// Time-stationary distribution.
	r := &Result{States: n, net: net, graph: g, pi: avg}
	var norm float64
	r.timeShare = make([]float64, n)
	for i := range avg {
		r.timeShare[i] = avg[i] * sojourn[i]
		norm += r.timeShare[i]
	}
	if norm <= 0 {
		return nil, fmt.Errorf("analytic: zero mean sojourn (net is untimed?)")
	}
	for i := range r.timeShare {
		r.timeShare[i] /= norm
	}
	r.MeanSojourn = norm
	return r, nil
}

// Utilization returns the time-stationary expected token count of a
// place — the analytic counterpart of the stat tool's "avg tokens".
func (r *Result) Utilization(place string) (float64, error) {
	id, ok := r.net.PlaceID(place)
	if !ok {
		return 0, fmt.Errorf("analytic: unknown place %q", place)
	}
	u := 0.0
	for i, share := range r.timeShare {
		u += share * float64(r.graph.Nodes[i].Marking[id])
	}
	return u, nil
}

// Throughput returns the steady-state firing rate of a transition per
// unit time — the analytic counterpart of the stat tool's throughput.
func (r *Result) Throughput(transition string) (float64, error) {
	id, ok := r.net.TransIDByName(transition)
	if !ok {
		return 0, fmt.Errorf("analytic: unknown transition %q", transition)
	}
	// Expected number of firings of id per embedded step, divided by
	// the expected time per step.
	starts := 0.0
	for i, node := range r.graph.Nodes {
		if r.pi[i] == 0 || len(node.Out) == 0 {
			continue
		}
		if node.Out[0].Trans == reach.TimeAdvance {
			continue
		}
		total := 0.0
		for _, e := range node.Out {
			total += r.net.Trans[e.Trans].EffFreq()
		}
		for _, e := range node.Out {
			if e.Trans == id {
				starts += r.pi[i] * r.net.Trans[e.Trans].EffFreq() / total
			}
		}
	}
	return starts / r.MeanSojourn, nil
}

// ProbMarked returns the time-stationary probability that a place holds
// at least min tokens (e.g. the fraction of time the bus is busy).
func (r *Result) ProbMarked(place string, min int) (float64, error) {
	id, ok := r.net.PlaceID(place)
	if !ok {
		return 0, fmt.Errorf("analytic: unknown place %q", place)
	}
	p := 0.0
	for i, share := range r.timeShare {
		if r.graph.Nodes[i].Marking[id] >= min {
			p += share
		}
	}
	return p, nil
}
