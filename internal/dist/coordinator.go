package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"slices"
	"sync"
	"time"

	"repro/internal/experiment"
)

// A Runner executes one contiguous span of grid cells and hands every
// completed cell to emit. LocalRunner runs spans in this process;
// NewExecRunner spawns worker processes. emit may be called from the
// runner's goroutine only; the coordinator serializes across runners.
type Runner func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error

// Options configure a distributed sweep execution.
type Options struct {
	// Shards is the number of dispatch partitions and the cap on
	// concurrently running spans (one worker process each); < 1 means 1.
	Shards int
	// Runner executes one span. Required.
	Runner Runner
	// Journal, if non-empty, is the checkpoint file: completed cells are
	// appended as they arrive, and an existing journal's cells are
	// skipped and only the missing ones re-dispatched — with final
	// output identical to an uninterrupted run.
	Journal string
	// Meta identifies the grid in streams and journals. Zero value:
	// derived from the sweep options with an empty net name.
	Meta *experiment.CellMeta
	// Log, if non-nil, receives progress lines (resumed cells, dispatch
	// plan, shard completions, retries and quarantines).
	Log io.Writer
	// Retries is the per-span re-dispatch budget of one round: a failed
	// span is re-planned over only its undelivered cells (delivered
	// cells are already journaled and never re-executed) and retried up
	// to Retries times before the round fails. 0 fails on the first
	// worker death, as the coordinator always used to.
	Retries int
	// Backoff is the base delay before a failed span is re-dispatched;
	// attempt k waits Backoff << (k-1), capped at 30s. 0 retries
	// immediately.
	Backoff time.Duration
	// Speculate lets an idle worker slot re-dispatch the
	// longest-running in-flight span (straggler mitigation). The
	// duplicate deliveries are byte-identical by determinism and the
	// first write wins, so output never changes.
	Speculate bool
	// Quarantine is the consecutive-failure count at which a worker
	// slot is taken out of rotation and its spans redistributed across
	// the surviving slots — without charging the spans' retry budgets.
	// 0 means DefaultQuarantine; negative disables quarantining.
	Quarantine int
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, "dist: "+format+"\n", args...)
	}
}

// Execute runs opt's sweep grid across shards via copt.Runner and
// reassembles the exact in-process SweepResult: for any shard count and
// any per-worker parallelism, the result — and every byte of its table,
// CSV and pooled reports — is identical to experiment.Sweep(context.Background(), opt).
//
// A runner error no longer has to kill the round: with copt.Retries
// set, the failed span's undelivered cells are re-planned and retried
// (with exponential backoff), persistently dying worker slots are
// quarantined and their work redistributed, and — with copt.Speculate —
// idle slots re-dispatch stragglers. Only when a span exhausts its
// budget does the round fail; cells that completed before the failure
// are already journaled, so a re-run with the same journal only pays
// for the rest. None of this changes a single output byte.
func Execute(ctx context.Context, opt experiment.SweepOptions, copt Options) (*experiment.SweepResult, error) {
	if copt.Runner == nil {
		return nil, fmt.Errorf("dist: Options.Runner is required")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	cells := opt.NumCells()
	shards := copt.Shards
	if shards < 1 {
		shards = 1
	}
	meta := experiment.MetaOf(opt, "")
	if copt.Meta != nil {
		meta = *copt.Meta
	}

	byCell := make([]*experiment.CellRecord, cells)
	have := 0
	var jn *journal
	if copt.Journal != "" {
		recs, err := loadJournal(copt.Journal, meta)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			rec := recs[i]
			if rec.Cell < 0 || rec.Cell >= cells {
				return nil, fmt.Errorf("dist: journal %s holds cell %d outside the %d-cell grid", copt.Journal, rec.Cell, cells)
			}
			byCell[rec.Cell] = &rec
			have++
		}
		if have > 0 {
			copt.logf("resumed %d/%d cells from %s", have, cells, copt.Journal)
		}
		jn, err = createJournal(copt.Journal, meta, recs)
		if err != nil {
			return nil, err
		}
		defer jn.close()
	}

	rec := &recorder{byCell: byCell, jn: jn}

	// dispatch drains one batch of pending spans through the
	// fault-tolerant scheduler (see retry.go): up to shards concurrent
	// runner invocations, records journaled as they arrive, failed
	// spans salvaged and retried per the Options budgets.
	dispatch := func(spans []Span) error {
		units := planUnits(spans, shards)
		if len(units) == 0 {
			return nil
		}
		todo := 0
		for _, s := range spans {
			todo += s.Size()
		}
		copt.logf("dispatching %d cells as %d shards (max %d concurrent)", todo, len(units), shards)

		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		if err := newDispatcher(runCtx, cancel, &copt, rec, shards).run(units); err != nil {
			if jn != nil {
				return fmt.Errorf("%w (completed cells are journaled in %s; re-run to resume)", err, copt.Journal)
			}
			return err
		}
		return nil
	}

	haveCell := func(c int) bool { return byCell[c] != nil }
	if opt.Adaptive != nil {
		// Adaptive rounds: the controller replays any journaled rounds
		// (recomputing convergence from the records), then each round's
		// pending cells are planned into shards exactly like a resumed
		// fixed grid. The stopping decisions are taken by the same
		// controller the in-process Sweep uses, so the two paths cannot
		// drift.
		ctrl, err := experiment.NewAdaptiveController(&opt)
		if err != nil {
			return nil, err
		}
		round := 0
		err = experiment.AdaptiveRounds(ctrl, haveCell,
			func(c int) float64 { return byCell[c].Values[ctrl.MetricIndex()] },
			func(spans []Span) error {
				round++
				counts := ctrl.RepCounts()
				copt.logf("adaptive round %d: %d points at %d..%d reps", round, opt.NumPoints(),
					slices.Min(counts), slices.Max(counts))
				if err := dispatch(spans); err != nil {
					return err
				}
				// The controller is about to read every dispatched cell;
				// a runner that returned success without delivering its
				// span must be a clean error, not a nil dereference.
				for _, s := range spans {
					for c := s.Lo; c < s.Hi; c++ {
						if byCell[c] == nil {
							return fmt.Errorf("dist: shard runners returned without delivering cell %d", c)
						}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		if round == 0 {
			copt.logf("journal already complete, nothing to dispatch")
		}
	} else {
		missing := MissingSpans(cells, haveCell)
		if len(missing) == 0 {
			copt.logf("journal already complete, nothing to dispatch")
		} else if err := dispatch(missing); err != nil {
			return nil, err
		}
		for c := 0; c < cells; c++ {
			if byCell[c] == nil {
				return nil, fmt.Errorf("dist: shard runners returned without delivering cell %d", c)
			}
		}
	}

	recs := make([]experiment.CellRecord, 0, cells)
	for c := 0; c < cells; c++ {
		if byCell[c] != nil {
			recs = append(recs, *byCell[c])
		}
	}
	r, err := experiment.AssembleSweep(opt, recs)
	if err != nil {
		return nil, err
	}
	r.Workers = shards
	r.Elapsed = time.Since(start)
	return r, nil
}

// recorder is the round-crossing delivery state: the byCell table, the
// journal and the duplicate policy. Salvage retries and speculative
// re-dispatch can deliver a cell more than once; determinism makes
// honest duplicates byte-identical, so the first write wins (the cell
// is journaled exactly once) and a mismatching duplicate is reported
// as corruption.
type recorder struct {
	mu     sync.Mutex
	byCell []*experiment.CellRecord
	jn     *journal
}

// have reports whether cell has been delivered.
func (r *recorder) have(cell int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byCell[cell] != nil
}

// deliver accepts one completed cell, journaling first writes and
// dropping byte-identical duplicates.
func (r *recorder) deliver(rec experiment.CellRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev := r.byCell[rec.Cell]; prev != nil {
		same, err := sameRecord(prev, &rec)
		if err != nil {
			return permanent(err)
		}
		if same {
			return nil // duplicate delivery of identical bytes: first write wins
		}
		return permanent(fmt.Errorf("cell %d delivered twice with different content", rec.Cell))
	}
	if r.jn != nil {
		if err := r.jn.append(rec); err != nil {
			return permanent(err)
		}
	}
	c := rec
	r.byCell[rec.Cell] = &c
	return nil
}

// sameRecord compares two cell records through the canonical JSONL
// encoding — the same bytes a worker streams and the journal stores.
func sameRecord(a, b *experiment.CellRecord) (bool, error) {
	ea, err := experiment.EncodeCell(*a)
	if err != nil {
		return false, err
	}
	eb, err := experiment.EncodeCell(*b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ea, eb), nil
}

// LocalRunner returns a Runner that executes spans in this process
// through the shared shard runner, round-tripping every record through
// the JSONL codec — the in-process path exercises exactly the bytes a
// worker process would ship.
func LocalRunner(opt experiment.SweepOptions) Runner {
	return func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		_, err := experiment.RunCellsContext(ctx, opt, span.Lo, span.Hi, func(rec experiment.CellRecord) error {
			line, err := experiment.EncodeCell(rec)
			if err != nil {
				return err
			}
			dec, err := experiment.DecodeCell(line)
			if err != nil {
				return err
			}
			return emit(dec)
		})
		return err
	}
}
