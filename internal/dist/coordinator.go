package dist

import (
	"context"
	"fmt"
	"io"
	"slices"
	"sync"
	"time"

	"repro/internal/experiment"
)

// A Runner executes one contiguous span of grid cells and hands every
// completed cell to emit. LocalRunner runs spans in this process;
// NewExecRunner spawns worker processes. emit may be called from the
// runner's goroutine only; the coordinator serializes across runners.
type Runner func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error

// Options configure a distributed sweep execution.
type Options struct {
	// Shards is the number of dispatch partitions and the cap on
	// concurrently running spans (one worker process each); < 1 means 1.
	Shards int
	// Runner executes one span. Required.
	Runner Runner
	// Journal, if non-empty, is the checkpoint file: completed cells are
	// appended as they arrive, and an existing journal's cells are
	// skipped and only the missing ones re-dispatched — with final
	// output identical to an uninterrupted run.
	Journal string
	// Meta identifies the grid in streams and journals. Zero value:
	// derived from the sweep options with an empty net name.
	Meta *experiment.CellMeta
	// Log, if non-nil, receives progress lines (resumed cells, dispatch
	// plan, shard completions).
	Log io.Writer
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, "dist: "+format+"\n", args...)
	}
}

// Execute runs opt's sweep grid across shards via copt.Runner and
// reassembles the exact in-process SweepResult: for any shard count and
// any per-worker parallelism, the result — and every byte of its table,
// CSV and pooled reports — is identical to experiment.Sweep(context.Background(), opt).
//
// On a runner error the remaining spans are cancelled and the error
// returned; cells that completed before the failure are already
// journaled, so a re-run with the same journal only pays for the rest.
func Execute(ctx context.Context, opt experiment.SweepOptions, copt Options) (*experiment.SweepResult, error) {
	if copt.Runner == nil {
		return nil, fmt.Errorf("dist: Options.Runner is required")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	cells := opt.NumCells()
	shards := copt.Shards
	if shards < 1 {
		shards = 1
	}
	meta := experiment.MetaOf(opt, "")
	if copt.Meta != nil {
		meta = *copt.Meta
	}

	byCell := make([]*experiment.CellRecord, cells)
	have := 0
	var jn *journal
	if copt.Journal != "" {
		recs, err := loadJournal(copt.Journal, meta)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			rec := recs[i]
			if rec.Cell < 0 || rec.Cell >= cells {
				return nil, fmt.Errorf("dist: journal %s holds cell %d outside the %d-cell grid", copt.Journal, rec.Cell, cells)
			}
			byCell[rec.Cell] = &rec
			have++
		}
		if have > 0 {
			copt.logf("resumed %d/%d cells from %s", have, cells, copt.Journal)
		}
		jn, err = createJournal(copt.Journal, meta, recs)
		if err != nil {
			return nil, err
		}
		defer jn.close()
	}

	// dispatch fans one batch of pending spans out across up to shards
	// concurrent runner invocations, journaling records as they arrive.
	dispatch := func(spans []Span) error {
		units := planUnits(spans, shards)
		if len(units) == 0 {
			return nil
		}
		todo := 0
		for _, s := range spans {
			todo += s.Size()
		}
		copt.logf("dispatching %d cells as %d shards (max %d concurrent)", todo, len(units), shards)

		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		var (
			mu      sync.Mutex // guards byCell and the journal ordering
			wg      sync.WaitGroup
			errOnce sync.Once
			firstE  error
		)
		fail := func(err error) {
			errOnce.Do(func() { firstE = err })
			cancel()
		}
		sem := make(chan struct{}, shards)
		for _, unit := range units {
			unit := unit
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-runCtx.Done():
					return
				}
				emit := func(rec experiment.CellRecord) error {
					if rec.Cell < unit.Lo || rec.Cell >= unit.Hi {
						return fmt.Errorf("cell %d outside shard %s", rec.Cell, unit)
					}
					mu.Lock()
					defer mu.Unlock()
					if byCell[rec.Cell] != nil {
						return fmt.Errorf("cell %d delivered twice", rec.Cell)
					}
					if jn != nil {
						if err := jn.append(rec); err != nil {
							return err
						}
					}
					r := rec
					byCell[rec.Cell] = &r
					return nil
				}
				if err := copt.Runner(runCtx, unit, emit); err != nil {
					fail(fmt.Errorf("dist: shard %s: %w", unit, err))
					return
				}
				copt.logf("shard %s done", unit)
			}()
		}
		wg.Wait()
		if firstE != nil {
			if jn != nil {
				return fmt.Errorf("%w (completed cells are journaled in %s; re-run to resume)", firstE, copt.Journal)
			}
			return firstE
		}
		return nil
	}

	haveCell := func(c int) bool { return byCell[c] != nil }
	if opt.Adaptive != nil {
		// Adaptive rounds: the controller replays any journaled rounds
		// (recomputing convergence from the records), then each round's
		// pending cells are planned into shards exactly like a resumed
		// fixed grid. The stopping decisions are taken by the same
		// controller the in-process Sweep uses, so the two paths cannot
		// drift.
		ctrl, err := experiment.NewAdaptiveController(&opt)
		if err != nil {
			return nil, err
		}
		round := 0
		err = experiment.AdaptiveRounds(ctrl, haveCell,
			func(c int) float64 { return byCell[c].Values[ctrl.MetricIndex()] },
			func(spans []Span) error {
				round++
				counts := ctrl.RepCounts()
				copt.logf("adaptive round %d: %d points at %d..%d reps", round, opt.NumPoints(),
					slices.Min(counts), slices.Max(counts))
				if err := dispatch(spans); err != nil {
					return err
				}
				// The controller is about to read every dispatched cell;
				// a runner that returned success without delivering its
				// span must be a clean error, not a nil dereference.
				for _, s := range spans {
					for c := s.Lo; c < s.Hi; c++ {
						if byCell[c] == nil {
							return fmt.Errorf("dist: shard runners returned without delivering cell %d", c)
						}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		if round == 0 {
			copt.logf("journal already complete, nothing to dispatch")
		}
	} else {
		missing := MissingSpans(cells, haveCell)
		if len(missing) == 0 {
			copt.logf("journal already complete, nothing to dispatch")
		} else if err := dispatch(missing); err != nil {
			return nil, err
		}
		for c := 0; c < cells; c++ {
			if byCell[c] == nil {
				return nil, fmt.Errorf("dist: shard runners returned without delivering cell %d", c)
			}
		}
	}

	recs := make([]experiment.CellRecord, 0, cells)
	for c := 0; c < cells; c++ {
		if byCell[c] != nil {
			recs = append(recs, *byCell[c])
		}
	}
	r, err := experiment.AssembleSweep(opt, recs)
	if err != nil {
		return nil, err
	}
	r.Workers = shards
	r.Elapsed = time.Since(start)
	return r, nil
}

// LocalRunner returns a Runner that executes spans in this process
// through the shared shard runner, round-tripping every record through
// the JSONL codec — the in-process path exercises exactly the bytes a
// worker process would ship.
func LocalRunner(opt experiment.SweepOptions) Runner {
	return func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		_, err := experiment.RunCellsContext(ctx, opt, span.Lo, span.Hi, func(rec experiment.CellRecord) error {
			line, err := experiment.EncodeCell(rec)
			if err != nil {
				return err
			}
			dec, err := experiment.DecodeCell(line)
			if err != nil {
				return err
			}
			return emit(dec)
		})
		return err
	}
}
