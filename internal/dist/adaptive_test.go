package dist

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sim"
)

// adaptiveGridOptions mirrors the experiment package's mixed-variance
// reference grid: points converge at different replication counts, so
// the coordinator really runs multiple rounds.
func adaptiveGridOptions(workers int) experiment.SweepOptions {
	opt := gridOptions(1, workers)
	opt.Axes = []experiment.Axis{{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}}}
	opt.Reps = 0
	opt.Adaptive = &experiment.AdaptiveOptions{
		Metric:  "throughput(Issue)",
		RelCI:   0.05,
		MinReps: 3,
		MaxReps: 32,
		Batch:   2,
	}
	opt.BaseSeed = 7
	opt.Sim = sim.Options{Horizon: 2_000}
	return opt
}

// TestAdaptiveExecuteMatchesSweep extends the tentpole identity to
// adaptive sweeps: for any shard count x any per-worker goroutine
// count, round-based distributed execution is byte-identical to the
// in-process adaptive Sweep.
func TestAdaptiveExecuteMatchesSweep(t *testing.T) {
	opt := adaptiveGridOptions(0)
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if want.TotalReps >= len(want.Points)*opt.Adaptive.MaxReps {
		t.Fatalf("reference grid is not mixed-variance: %d total reps", want.TotalReps)
	}
	wantEnc := encode(t, want)
	for _, shards := range []int{1, 2, 3} {
		for _, perWorker := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			workerOpt := opt
			workerOpt.Workers = perWorker
			got, err := Execute(context.Background(), opt, Options{
				Shards: shards,
				Runner: LocalRunner(workerOpt),
			})
			if err != nil {
				t.Fatalf("shards=%d perWorker=%d: %v", shards, perWorker, err)
			}
			if encode(t, got) != wantEnc {
				t.Errorf("shards=%d perWorker=%d: distributed adaptive result differs from Sweep", shards, perWorker)
			}
		}
	}
}

// TestAdaptiveKillAndResume: a worker that dies in a later adaptive
// round fails the run but keeps the journal; resuming replays the
// completed rounds from the journal (recomputing convergence),
// re-dispatches only the missing cells, and ends byte-identical to an
// uninterrupted run.
func TestAdaptiveKillAndResume(t *testing.T) {
	opt := adaptiveGridOptions(1)
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a victim cell from a round after the first: point 0's fourth
	// replication (rep 3 > MinReps-1) is only dispatched once round 1
	// left point 0 unconverged.
	victim := 0*opt.RepStride() + 3
	if want.Points[0].Reps <= 3 {
		t.Fatalf("point 0 converged at %d reps; victim cell %d never runs", want.Points[0].Reps, victim)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	_, err = Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  flakyRunner(LocalRunner(opt), victim),
		Journal: journal,
	})
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("killed at cell %d", victim)) {
		t.Fatalf("sabotaged run error = %v", err)
	}

	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[int]bool)
	for _, rec := range recs {
		if rec.Cell == victim {
			t.Error("journal holds the killed cell")
		}
		done[rec.Cell] = true
	}
	if len(done) < len(want.Points)*opt.Adaptive.MinReps {
		t.Fatalf("journal holds %d cells, want at least the first round", len(done))
	}

	// Resume: journaled cells must never be re-dispatched.
	var mu sync.Mutex
	reran := make(map[int]bool)
	counting := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		mu.Lock()
		for c := span.Lo; c < span.Hi; c++ {
			if done[c] {
				t.Errorf("resume re-dispatched journaled cell %d", c)
			}
			reran[c] = true
		}
		mu.Unlock()
		return LocalRunner(opt)(ctx, span, emit)
	}
	got, err := Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  counting,
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reran[victim] {
		t.Error("resume did not re-run the killed cell")
	}
	if len(reran) != got.TotalReps-len(done) {
		t.Errorf("resume ran %d cells, want %d", len(reran), got.TotalReps-len(done))
	}
	if encode(t, got) != encode(t, want) {
		t.Error("resumed adaptive run differs from an uninterrupted Sweep")
	}

	// A complete journal replays every round without dispatching.
	again, err := Execute(context.Background(), opt, Options{
		Shards: 2,
		Runner: func(context.Context, Span, func(experiment.CellRecord) error) error {
			t.Error("complete adaptive journal still dispatched a shard")
			return nil
		},
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, again) != encode(t, want) {
		t.Error("replay from a complete adaptive journal differs from Sweep")
	}
}

// TestAdaptiveJournalRejectsRuleDrift: resuming a journal under a
// changed stopping rule would silently reshape the grid, so it is
// rejected like any other sweep drift.
func TestAdaptiveJournalRejectsRuleDrift(t *testing.T) {
	opt := adaptiveGridOptions(1)
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := Execute(context.Background(), opt, Options{
		Shards: 1, Runner: LocalRunner(opt), Journal: journal,
	}); err != nil {
		t.Fatal(err)
	}
	drift := func(mutate func(*experiment.AdaptiveOptions)) experiment.SweepOptions {
		changed := opt
		a := *opt.Adaptive
		mutate(&a)
		changed.Adaptive = &a
		return changed
	}
	for name, changed := range map[string]experiment.SweepOptions{
		"relci": drift(func(a *experiment.AdaptiveOptions) { a.RelCI = 0.1 }),
		"min":   drift(func(a *experiment.AdaptiveOptions) { a.MinReps = 4 }),
		"batch": drift(func(a *experiment.AdaptiveOptions) { a.Batch = 5 }),
		"fixed": func() experiment.SweepOptions {
			changed := opt
			changed.Adaptive = nil
			changed.Reps = 32 // same cell capacity, different semantics
			return changed
		}(),
	} {
		_, err := Execute(context.Background(), changed, Options{
			Shards: 1, Runner: LocalRunner(changed), Journal: journal,
		})
		if err == nil || !strings.Contains(err.Error(), "different sweep") {
			t.Errorf("%s drift error = %v", name, err)
		}
	}
}

// TestJournalCorruptFinalLine: a decode failure on the final line is
// only forgiven when the file is actually truncated (no trailing
// newline). A corrupt but fully-written record is an error — silently
// re-running it would mask real corruption.
func TestJournalCorruptFinalLine(t *testing.T) {
	opt := gridOptions(2, 1) // 8 cells
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := Execute(context.Background(), opt, Options{
		Shards: 1, Runner: LocalRunner(opt), Journal: journal,
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}

	// Chop into the final record but keep the trailing newline: the line
	// was fully written, so the journal is corrupt, not truncated.
	corrupt := append(append([]byte(nil), raw[:len(raw)-40]...), '\n')
	if err := os.WriteFile(journal, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadJournal(journal, experiment.MetaOf(opt, "")); err == nil {
		t.Error("corrupt final line (with trailing newline) loaded without error")
	}

	// The same bytes without the newline are a truncated tail: the final
	// cell is dropped and re-run.
	if err := os.WriteFile(journal, raw[:len(raw)-40], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != opt.NumCells()-1 {
		t.Errorf("truncated journal loaded %d cells, want %d", len(recs), opt.NumCells()-1)
	}
}

// TestAdaptiveRetryCompletesInOneCall: a worker death in a later
// adaptive round is absorbed by the round's retry budget — the whole
// sweep completes in a single Execute call (no journal re-run), the
// journal holds every cell exactly once, and the output is
// byte-identical to the in-process Sweep.
func TestAdaptiveRetryCompletesInOneCall(t *testing.T) {
	opt := adaptiveGridOptions(1)
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	victim := 0*opt.RepStride() + 3 // dispatched in round 2 only
	if want.Points[0].Reps <= 3 {
		t.Fatalf("point 0 converged at %d reps; victim cell %d never runs", want.Points[0].Reps, victim)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	var tripped atomic.Bool
	base := LocalRunner(opt)
	runner := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		if victim >= span.Lo && victim < span.Hi && !tripped.Load() {
			return base(ctx, span, func(rec experiment.CellRecord) error {
				if rec.Cell == victim && tripped.CompareAndSwap(false, true) {
					return fmt.Errorf("worker killed at cell %d", victim)
				}
				return emit(rec)
			})
		}
		return base(ctx, span, emit)
	}
	var log strings.Builder
	got, err := Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  runner,
		Journal: journal,
		Retries: 1,
		Log:     &log,
	})
	if err != nil {
		t.Fatalf("retried adaptive run failed: %v\nlog:\n%s", err, log.String())
	}
	if !tripped.Load() {
		t.Fatal("victim cell was never dispatched")
	}
	if !strings.Contains(log.String(), "retrying") {
		t.Errorf("log does not mention the retry:\n%s", log.String())
	}
	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != got.TotalReps {
		t.Errorf("journal holds %d cells, want %d", len(recs), got.TotalReps)
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("\n")); n != got.TotalReps+1 {
		t.Errorf("journal holds %d lines, want meta + %d cells: every cell exactly once", n, got.TotalReps)
	}
	if encode(t, got) != encode(t, want) {
		t.Error("retried adaptive run differs from an uninterrupted Sweep")
	}
}
