// The fault-tolerant dispatch scheduler.
//
// A dispatch round used to be a fire-and-forget fan-out: every span ran
// exactly once and the first runner error cancelled the whole round.
// The dispatcher replaces that with a work queue drained by
// Options.Shards worker slots, where a failed span is salvaged instead
// of fatal:
//
//   - Only the span's undelivered cells are re-planned (MissingSpans
//     over the span), so cells a dying worker already streamed — and
//     the coordinator already journaled — are never re-executed.
//   - Each re-dispatch consumes one unit of the span's retry budget
//     (Options.Retries) after an exponential backoff; the round fails
//     only once a span exhausts its budget.
//   - Failures are also charged to the slot that ran them: a slot that
//     keeps dying is quarantined (see health.go) and its work
//     redistributed across the survivors without charging the span.
//   - Optionally (Options.Speculate) an idle slot re-dispatches the
//     longest-running in-flight span; determinism makes the duplicate
//     deliveries byte-identical, so first-write-wins is safe.
//
// None of this changes a single output byte: which cells run, with
// which seeds, is fixed by the grid; retries and speculation change
// only when and where they run.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiment"
)

// permanentError marks an error no retry budget may absorb: emit
// validation failures and journal write errors abort the round even
// when retries remain.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err} }

func isPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// task is one queued unit of work: a span plus the retry budget its
// cells have already consumed.
type task struct {
	span    Span
	retries int  // re-dispatches already consumed by this span's cells
	spec    bool // speculative duplicate of an in-flight attempt
}

// flight is an in-flight attempt. seq is the dispatch order — the
// lowest live seq is the longest-running attempt, which is what an
// idle slot speculates on.
type flight struct {
	task
	seq        int
	speculated bool // a speculative duplicate has been issued
}

// dispatcher drains one round's spans across the worker slots,
// retrying, redistributing and speculating per Options.
type dispatcher struct {
	ctx    context.Context
	cancel context.CancelFunc
	opt    *Options
	rec    *recorder
	health *healthTracker
	shards int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []task
	backoffs int             // failed tasks waiting out their backoff
	inflight map[int]*flight // seq -> attempt
	seq      int
	err      error // first fatal error; set at most once, cancels the round
}

func newDispatcher(ctx context.Context, cancel context.CancelFunc, opt *Options, rec *recorder, shards int) *dispatcher {
	d := &dispatcher{
		ctx:      ctx,
		cancel:   cancel,
		opt:      opt,
		rec:      rec,
		health:   newHealthTracker(shards, opt.Quarantine),
		shards:   shards,
		inflight: make(map[int]*flight),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// run drains units (plus any retries they spawn) across the slots and
// returns the first fatal error — or the context error if the round
// was cancelled from outside.
func (d *dispatcher) run(units []Span) error {
	d.queue = append(d.queue, make([]task, len(units))...)
	for i, u := range units {
		d.queue[i] = task{span: u}
	}
	var wg sync.WaitGroup
	for s := 0; s < d.shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.slot(s)
		}()
	}
	wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	return d.ctx.Err()
}

// drainGrace bounds how long a failing round waits for its surviving
// in-flight attempts: long enough that healthy workers finish streaming
// (their cells are journaled and make the resume cheaper), short enough
// that a wedged sibling cannot hold a doomed round hostage.
const drainGrace = 30 * time.Second

// fail records the round's fatal error (first one wins). New work stops
// immediately, but in-flight attempts keep streaming: every cell they
// deliver is one the resume will not re-run. Attempts that outlive the
// drain grace are cancelled. Callers hold d.mu.
func (d *dispatcher) fail(err error) {
	if d.err == nil {
		d.err = err
		time.AfterFunc(drainGrace, d.cancel)
	}
	d.cond.Broadcast()
}

// slot is one worker slot's drain loop: take a task (or speculate on a
// straggler), run it, and on failure salvage the undelivered cells.
func (d *dispatcher) slot(slot int) {
	for {
		d.mu.Lock()
		var t task
		for {
			if d.err != nil || d.ctx.Err() != nil || d.health.quarantined(slot) {
				d.mu.Unlock()
				return
			}
			if len(d.queue) > 0 {
				t = d.queue[0]
				d.queue = d.queue[1:]
				break
			}
			if d.backoffs == 0 && len(d.inflight) == 0 {
				d.mu.Unlock()
				return // round drained
			}
			if st := d.straggler(); st != nil {
				t = task{span: st.span, retries: st.retries, spec: true}
				st.speculated = true
				d.opt.logf("slot %d speculatively re-dispatching straggler %s", slot, t.span)
				break
			}
			d.cond.Wait()
		}
		d.seq++
		fl := &flight{task: t, seq: d.seq}
		d.inflight[fl.seq] = fl
		d.mu.Unlock()

		err := d.opt.Runner(d.ctx, t.span, d.emitInto(t.span))

		d.mu.Lock()
		delete(d.inflight, fl.seq)
		if err == nil {
			d.health.ok(slot)
			if !t.spec {
				d.opt.logf("shard %s done", t.span)
			}
		} else {
			d.onFailure(slot, fl, err)
		}
		quarantined := d.health.quarantined(slot)
		d.cond.Broadcast()
		d.mu.Unlock()
		if quarantined {
			return
		}
	}
}

// emitInto bounds a runner's emit callback to its span and hands
// records to the shared recorder.
func (d *dispatcher) emitInto(span Span) func(rec experiment.CellRecord) error {
	return func(rec experiment.CellRecord) error {
		if rec.Cell < span.Lo || rec.Cell >= span.Hi {
			return permanent(fmt.Errorf("cell %d outside shard %s", rec.Cell, span))
		}
		return d.rec.deliver(rec)
	}
}

// onFailure settles a failed attempt: charge the slot's health, charge
// the span's budget (unless the slot was just quarantined), and
// requeue the salvageable remainder. Callers hold d.mu.
func (d *dispatcher) onFailure(slot int, fl *flight, err error) {
	if d.ctx.Err() != nil || d.err != nil {
		// The round is already being torn down; a shard cancelled (or
		// failing during the drain) is nobody's fault and charges no
		// budget.
		return
	}
	err = fmt.Errorf("dist: shard %s: %w", fl.span, err)
	if isPermanent(err) {
		d.fail(err)
		return
	}
	quarantinedNow := d.health.fail(slot)
	if quarantinedNow {
		d.opt.logf("slot %d quarantined after repeated failures; redistributing its work (%d slots remain)",
			slot, d.health.activeSlots())
		if d.health.activeSlots() == 0 {
			d.fail(fmt.Errorf("all %d worker slots quarantined: %w", d.shards, err))
			return
		}
	}
	salvage := d.salvage(fl.span)
	if len(salvage) == 0 {
		// Every undelivered cell of the span is owned by another
		// in-flight attempt (its twin, after speculation): that attempt
		// will deliver them or be charged instead.
		return
	}
	retries := fl.retries
	if !quarantinedNow {
		// The failure that trips a quarantine blames the slot, not the
		// span: redistribution is free, a retry costs budget.
		retries++
	}
	if retries > d.opt.Retries {
		if d.opt.Retries > 0 {
			err = fmt.Errorf("%w (retry budget of %d exhausted)", err, d.opt.Retries)
		}
		d.fail(err)
		return
	}
	salvaged := 0
	for _, s := range salvage {
		salvaged += s.Size()
	}
	delay := backoffDelay(d.opt.Backoff, retries)
	d.opt.logf("shard %s failed; retrying %d undelivered cells in %s (attempt %d/%d): %v",
		fl.span, salvaged, delay, retries, d.opt.Retries, err)
	d.requeue(salvage, retries, delay)
}

// straggler picks the longest-running in-flight attempt that is
// neither speculative itself nor already speculated on.
func (d *dispatcher) straggler() *flight {
	if !d.opt.Speculate {
		return nil
	}
	var best *flight
	for _, fl := range d.inflight {
		if fl.spec || fl.speculated {
			continue
		}
		if best == nil || fl.seq < best.seq {
			best = fl
		}
	}
	return best
}

// salvage plans the retry of a failed attempt: the span's cells that
// are neither delivered nor owned by another in-flight attempt.
func (d *dispatcher) salvage(span Span) []Span {
	return missingWithin(span, func(c int) bool {
		if d.rec.have(c) {
			return true
		}
		for _, fl := range d.inflight {
			if fl.span.Lo <= c && c < fl.span.Hi {
				return true
			}
		}
		return false
	})
}

// requeue returns salvaged spans to the queue after delay, keeping the
// round alive (backoffs > 0) while the timer runs.
func (d *dispatcher) requeue(spans []Span, retries int, delay time.Duration) {
	tasks := make([]task, len(spans))
	for i, s := range spans {
		tasks[i] = task{span: s, retries: retries}
	}
	if delay <= 0 {
		d.queue = append(d.queue, tasks...)
		return
	}
	d.backoffs++
	go func() {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-d.ctx.Done():
		}
		d.mu.Lock()
		d.backoffs--
		d.queue = append(d.queue, tasks...)
		d.cond.Broadcast()
		d.mu.Unlock()
	}()
}

// backoffDelay is the exponential backoff before a re-dispatch:
// attempt k (1-based) waits base << (k-1), capped at 30s.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	const maxDelay = 30 * time.Second
	d := base
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d
}
