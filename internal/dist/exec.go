package dist

import (
	"context"
	"fmt"
	"io"
	"os/exec"

	"repro/internal/experiment"
)

// NewExecRunner returns a Runner that spawns one worker process per
// span: the template command (argv[0] plus its fixed arguments — model,
// axes, seed, metrics, ...) is extended with
//
//	-cells lo:hi -emit cells
//
// and must write a cell-record stream on stdout. Because the template
// is ordinary argv, "machines" need no special support: an ssh or
// container prefix in the template distributes the shard off-host, the
// JSONL stream on stdout is the only interchange.
//
// meta, if non-nil, is checked against each worker's stream meta, so a
// worker launched with drifted flags (different axes, seed or metrics)
// is rejected instead of silently corrupting the grid. stderr, if
// non-nil, receives the workers' stderr (timing lines).
func NewExecRunner(argv []string, meta *experiment.CellMeta, stderr io.Writer) (Runner, error) {
	if len(argv) == 0 || argv[0] == "" {
		return nil, fmt.Errorf("dist: empty worker command")
	}
	return func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		args := append(append([]string(nil), argv[1:]...),
			"-cells", span.String(), "-emit", "cells")
		cmd := exec.CommandContext(ctx, argv[0], args...)
		isolateWorker(cmd)
		cmd.Cancel = func() error { return killWorker(cmd) }
		cmd.Stderr = stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting worker %q: %w", argv[0], err)
		}
		// Decode the stream as it arrives. On any decode/emit error,
		// kill the worker before draining — a wedged-but-alive worker
		// would hold the pipe open and block the drain forever — then
		// reap it, so no process leaks past the coordinator.
		streamErr := decodeStream(stdout, span, meta, emit)
		if streamErr != nil {
			killWorker(cmd)
			io.Copy(io.Discard, stdout)
		}
		waitErr := cmd.Wait()
		if ctx.Err() != nil {
			// A cancelled shard dies with "signal: killed" from Wait;
			// report the cancellation itself so the scheduler never
			// charges a cancelled span against a retry budget.
			return ctx.Err()
		}
		if streamErr != nil {
			// The stream error outranks the exit status: after a
			// decode or emit failure the kill above makes Wait report
			// our own signal, not the worker's fault.
			return streamErr
		}
		if waitErr != nil {
			return fmt.Errorf("worker %q: %w", argv[0], waitErr)
		}
		return nil
	}, nil
}

func decodeStream(r io.Reader, span Span, meta *experiment.CellMeta, emit func(experiment.CellRecord) error) error {
	cr, err := experiment.NewCellReader(r)
	if err != nil {
		return err
	}
	if meta != nil {
		got := cr.Meta()
		if !got.SameGrid(meta) {
			return fmt.Errorf("worker stream describes a different sweep (axes/reps/seed/metrics drifted)")
		}
	}
	n := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := emit(rec); err != nil {
			return err
		}
		n++
	}
	if n != span.Size() {
		return fmt.Errorf("worker delivered %d of %d cells", n, span.Size())
	}
	return nil
}
