package dist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/experiment"
)

// A journal is the coordinator's checkpoint: the cell-record JSONL
// stream (meta line + one line per completed cell) appended as records
// arrive. It doubles as the resume state — loading it back yields the
// cells a crashed or killed run already paid for.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// loadJournal reads an existing journal, validating that it belongs to
// the same grid. A truncated final line (the typical residue of a
// killed coordinator) is dropped — but only when the file really is
// truncated, i.e. lacks its trailing newline. The journal writes one
// whole '\n'-terminated line per record, so a record that decodes badly
// despite being fully written is corruption and is reported, not
// silently re-run. Corruption anywhere else is an error too, as is a
// journal whose meta describes a different sweep. A missing file
// returns no records and no error.
func loadJournal(path string, want experiment.CellMeta) ([]experiment.CellRecord, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	truncated := len(raw) > 0 && raw[len(raw)-1] != '\n'
	lines := bytes.Split(raw, []byte("\n"))
	// Find the last non-empty line: only that one may be a truncated
	// tail, and only in a file without a final newline.
	last := -1
	for i, ln := range lines {
		if len(bytes.TrimSpace(ln)) > 0 {
			last = i
		}
	}
	if last < 0 {
		return nil, nil // empty file: treat as a fresh journal
	}

	cr, err := experiment.NewCellReader(bytes.NewReader(lines[0]))
	if err != nil {
		return nil, fmt.Errorf("dist: journal %s: %w", path, err)
	}
	meta := cr.Meta()
	if !meta.SameGrid(&want) {
		return nil, fmt.Errorf("dist: journal %s belongs to a different sweep (axes/reps/seed/metrics changed); delete it or pass a fresh -journal", path)
	}

	var recs []experiment.CellRecord
	seen := make(map[int]bool)
	for i := 1; i <= last; i++ {
		ln := bytes.TrimSpace(lines[i])
		if len(ln) == 0 {
			continue
		}
		rec, err := experiment.DecodeCell(ln)
		if err != nil {
			if i == last && truncated {
				break // truncated tail from a kill mid-write: re-run the cell
			}
			return nil, fmt.Errorf("dist: journal %s line %d: %w", path, i+1, err)
		}
		if seen[rec.Cell] {
			continue // same cell journaled twice: records are identical by construction
		}
		seen[rec.Cell] = true
		recs = append(recs, rec)
	}
	return recs, nil
}

// createJournal (re)writes the journal atomically with the meta line
// and the already-completed records, then leaves it open for appends.
// Rewriting on resume heals truncated tails and duplicate lines before
// new records land behind them.
func createJournal(path string, meta experiment.CellMeta, recs []experiment.CellRecord) (*journal, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	cw, err := experiment.NewCellWriter(tmp, meta)
	if err == nil {
		for _, rec := range recs {
			if err = cw.Write(rec); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = cw.Flush()
	}
	if err == nil {
		err = tmp.Close()
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("dist: writing journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

// append writes one completed cell, one whole line per write, so a
// concurrent kill leaves at most one truncated tail.
func (j *journal) append(rec experiment.CellRecord) error {
	line, err := experiment.EncodeCell(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(append(line, '\n'))
	return err
}

func (j *journal) close() error { return j.f.Close() }
