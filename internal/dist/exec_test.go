package dist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiment"
)

// shimRunner writes script as an executable worker shim and returns an
// exec Runner over it.
func shimRunner(t *testing.T, script string) Runner {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("worker shims are shell scripts")
	}
	shim := filepath.Join(t.TempDir(), "worker.sh")
	if err := os.WriteFile(shim, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	runner, err := NewExecRunner([]string{shim}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return runner
}

func discardEmit(experiment.CellRecord) error { return nil }

// TestExecRunnerReportsCancellation: a shard killed by context
// cancellation must surface ctx.Err(), not the "signal: killed" exit
// status — a cancelled span is nobody's failure and must never be
// charged against a retry budget.
func TestExecRunnerReportsCancellation(t *testing.T) {
	runner := shimRunner(t, "#!/bin/sh\nsleep 60\n")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- runner(ctx, Span{Lo: 0, Hi: 4}, discardEmit) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled worker error = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled worker never reaped")
	}
}

// TestExecRunnerKillsWedgedWorker: a worker that writes a garbage
// stream but stays alive used to hang the coordinator in the
// post-error drain (io.Copy on an open pipe). The runner must kill it
// and return the decode error promptly.
func TestExecRunnerKillsWedgedWorker(t *testing.T) {
	runner := shimRunner(t, "#!/bin/sh\necho not-a-cell-stream\nsleep 300\n")
	done := make(chan error, 1)
	go func() { done <- runner(context.Background(), Span{Lo: 0, Hi: 4}, discardEmit) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("garbage stream from a wedged worker accepted")
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("wedged worker misattributed to cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wedged worker hung the runner: the drain was not preceded by a kill")
	}
}

// TestExecRunnerWorkerExitError: a worker that dies without streaming
// is still a worker failure — reported as such, never as cancellation.
func TestExecRunnerWorkerExitError(t *testing.T) {
	runner := shimRunner(t, "#!/bin/sh\nexit 7\n")
	err := runner(context.Background(), Span{Lo: 0, Hi: 4}, discardEmit)
	if err == nil {
		t.Fatal("dead worker reported success")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("worker exit misattributed to cancellation: %v", err)
	}
}
