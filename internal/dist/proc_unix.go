//go:build unix

package dist

import (
	"os/exec"
	"syscall"
)

// isolateWorker puts the worker in its own process group, so
// killWorker can take down the whole worker tree — a shell wrapper's
// children, an ssh prefix's local helpers — and not just the immediate
// child. Killing only the child would leave grandchildren holding the
// stdout pipe open, wedging the coordinator's stream drain.
func isolateWorker(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killWorker kills the worker's whole process group, falling back to
// the immediate child if the group is already gone.
func killWorker(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		return cmd.Process.Kill()
	}
	return nil
}
