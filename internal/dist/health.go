// Per-slot worker health accounting.
//
// A dispatch round runs on a fixed set of worker slots (one concurrent
// runner invocation each). A transient failure is paid for by the
// failed span's retry budget, but a persistently dying slot — a worker
// host that is down, out of memory or misconfigured — would burn every
// retried span's budget on the same dead machine. The tracker counts
// consecutive failures per slot and quarantines a slot that keeps
// dying: the slot stops taking work, its spans are redistributed
// across the survivors, and the failure that trips the quarantine is
// charged to the slot, not the span.
package dist

// DefaultQuarantine is the consecutive-failure threshold at which a
// worker slot is quarantined when Options.Quarantine is zero.
const DefaultQuarantine = 3

type slotHealth struct {
	consec      int // consecutive failures; any success resets
	quarantined bool
}

// healthTracker holds one round's health state for every worker slot.
// Callers serialize access (the dispatcher holds its own lock).
type healthTracker struct {
	slots     []slotHealth
	threshold int // consecutive failures before quarantine; <= 0 disables
	active    int // slots still taking work
}

func newHealthTracker(slots, quarantine int) *healthTracker {
	if quarantine == 0 {
		quarantine = DefaultQuarantine
	}
	return &healthTracker{
		slots:     make([]slotHealth, slots),
		threshold: quarantine,
		active:    slots,
	}
}

// ok records a successful span on slot, resetting its failure streak.
func (h *healthTracker) ok(slot int) { h.slots[slot].consec = 0 }

// fail records a failed span on slot and reports whether this failure
// pushed the slot into quarantine.
func (h *healthTracker) fail(slot int) (quarantinedNow bool) {
	s := &h.slots[slot]
	s.consec++
	if h.threshold > 0 && !s.quarantined && s.consec >= h.threshold {
		s.quarantined = true
		h.active--
		return true
	}
	return false
}

// quarantined reports whether slot has been taken out of rotation.
func (h *healthTracker) quarantined(slot int) bool { return h.slots[slot].quarantined }

// activeSlots is the number of slots still taking work.
func (h *healthTracker) activeSlots() int { return h.active }
