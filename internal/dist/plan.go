// Package dist executes a parameter sweep across OS processes with the
// same bit-for-bit determinism guarantee the in-process driver gives
// for any goroutine count.
//
// The unit of distribution is the sweep's flat (point, replication)
// cell grid (see experiment.RunCellsContext): a shard is a contiguous,
// point-major span of cells, so a shard typically owns whole points and
// reuses one engine per point, exactly like the in-process pool. Cell
// c always runs with seed BaseSeed + c in whichever process executes
// it, and the coordinator reassembles complete record sets in cell
// order — so shard count, worker processes per machine and goroutines
// per worker all change wall-clock time only, never a single output
// byte.
//
// Workers are plain commands ("pnut-sweep -cells lo:hi -emit cells")
// writing the versioned JSONL cell-record stream on stdout; the
// command template is configurable, so a "machine" is just an ssh or
// container prefix. The coordinator journals records as they arrive,
// and a re-run against the same journal re-dispatches only the missing
// cells — with output identical to a run that never failed.
package dist

import "repro/internal/experiment"

// Span is a contiguous range of grid cells [Lo, Hi). It is the
// experiment package's CellSpan: shard plans, adaptive pending sets and
// worker spans are all the same currency.
type Span = experiment.CellSpan

// PlanShards partitions a grid of cells into at most shards contiguous
// point-major spans of near-equal size (sizes differ by at most one
// cell). Fewer spans are returned when there are fewer cells than
// shards; shards < 1 is treated as 1.
func PlanShards(cells, shards int) []Span {
	if cells <= 0 {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > cells {
		shards = cells
	}
	spans := make([]Span, shards)
	for i := 0; i < shards; i++ {
		spans[i] = Span{Lo: i * cells / shards, Hi: (i + 1) * cells / shards}
	}
	return spans
}

// MissingSpans collects the maximal contiguous spans of cells for which
// have reports false — the re-dispatch set of a resumed run. It is the
// same scan an adaptive round uses for its pending set (see
// experiment.MissingCellSpans).
func MissingSpans(cells int, have func(cell int) bool) []Span {
	return experiment.MissingCellSpans(cells, have)
}

// missingWithin collects the undelivered sub-spans of s — the salvage
// set of a failed dispatch attempt. Cells outside s are never
// reported, so a retry can only shrink toward the cells the dying
// worker actually owed.
func missingWithin(s Span, have func(cell int) bool) []Span {
	return MissingSpans(s.Hi, func(c int) bool { return c < s.Lo || have(c) })
}

// planUnits subdivides the missing spans into dispatch units so that
// roughly shards workers get balanced work: each span is split
// proportionally to its share of the missing cells. A fresh run (one
// span covering the whole grid) degenerates to exactly
// PlanShards(cells, shards).
func planUnits(spans []Span, shards int) []Span {
	if shards < 1 {
		shards = 1
	}
	total := 0
	for _, s := range spans {
		total += s.Size()
	}
	if total == 0 {
		return nil
	}
	var units []Span
	for _, s := range spans {
		n := (s.Size()*shards + total/2) / total // proportional share, rounded
		if n < 1 {
			n = 1
		}
		for _, sub := range PlanShards(s.Size(), n) {
			units = append(units, Span{Lo: s.Lo + sub.Lo, Hi: s.Lo + sub.Hi})
		}
	}
	return units
}
