//go:build !unix

package dist

import "os/exec"

// isolateWorker is a no-op where process groups are unavailable; only
// the immediate child can be killed.
func isolateWorker(cmd *exec.Cmd) {}

// killWorker kills the immediate worker process.
func killWorker(cmd *exec.Cmd) error {
	if cmd.Process == nil {
		return nil
	}
	return cmd.Process.Kill()
}
