package dist

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

func gridOptions(reps, workers int) experiment.SweepOptions {
	return experiment.SweepOptions{
		Axes: []experiment.Axis{
			{Name: "DHitRatio", Values: []float64{0.5, 0.9}},
			{Name: "MemoryCycles", Values: []float64{1, 5}},
		},
		Reps:     reps,
		Workers:  workers,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: 1_500},
		Metrics: []experiment.Metric{
			experiment.Throughput("Issue"),
			experiment.Utilization("Bus_busy"),
		},
		Build: func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(true, pt.Names, pt.Values)
		},
	}
}

// encode renders every deterministic artifact of a sweep — the CSV
// (full-precision floats) and each point's pooled report — the same
// byte-comparison the PR-2 determinism harness uses.
func encode(t *testing.T, r *experiment.SweepResult) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if err := pt.Pooled.Report(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestExecuteMatchesSweep is the tentpole property: for any shard count
// x any per-worker goroutine count, the distributed execution is
// byte-identical to the in-process Sweep.
func TestExecuteMatchesSweep(t *testing.T) {
	for _, reps := range []int{1, 3} {
		opt := gridOptions(reps, 0)
		want, err := experiment.Sweep(context.Background(), opt)
		if err != nil {
			t.Fatal(err)
		}
		wantEnc := encode(t, want)
		for _, shards := range []int{1, 2, 3, 4} {
			for _, perWorker := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				workerOpt := opt
				workerOpt.Workers = perWorker
				got, err := Execute(context.Background(), opt, Options{
					Shards: shards,
					Runner: LocalRunner(workerOpt),
				})
				if err != nil {
					t.Fatalf("reps=%d shards=%d perWorker=%d: %v", reps, shards, perWorker, err)
				}
				if encode(t, got) != wantEnc {
					t.Errorf("reps=%d shards=%d perWorker=%d: distributed result differs from Sweep",
						reps, shards, perWorker)
				}
			}
		}
	}
}

// flakyRunner wraps a Runner and kills the span containing victim after
// it has emitted a few cells — a worker process dying mid-stream.
func flakyRunner(inner Runner, victim int) Runner {
	return func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		if victim < span.Lo || victim >= span.Hi {
			return inner(ctx, span, emit)
		}
		err := inner(ctx, span, func(rec experiment.CellRecord) error {
			if rec.Cell == victim {
				return fmt.Errorf("worker killed at cell %d", victim)
			}
			return emit(rec)
		})
		return err
	}
}

// TestKillOneWorkerAndResume is the resume contract: a run whose worker
// dies mid-shard fails but journals its completed cells; re-running
// with the same journal re-dispatches only the missing cells and ends
// byte-identical to a run that never failed.
func TestKillOneWorkerAndResume(t *testing.T) {
	opt := gridOptions(3, 2) // 12 cells
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	// First run: the shard holding cell 8 dies after cell 7.
	_, err = Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  flakyRunner(LocalRunner(opt), 8),
		Journal: journal,
	})
	if err == nil || !strings.Contains(err.Error(), "killed at cell 8") {
		t.Fatalf("sabotaged run error = %v", err)
	}
	if !strings.Contains(err.Error(), "re-run to resume") {
		t.Errorf("error does not point at the journal: %v", err)
	}

	// The journal holds only completed cells — and at least the healthy
	// shard's.
	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[int]bool)
	for _, rec := range recs {
		if rec.Cell == 8 {
			t.Error("journal holds the killed cell")
		}
		done[rec.Cell] = true
	}
	if len(done) == 0 || len(done) >= opt.NumCells() {
		t.Fatalf("journal holds %d cells, want partial coverage", len(done))
	}

	// Resume with a healthy runner: only missing cells may run again.
	var reran atomic.Int64
	counting := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		for c := span.Lo; c < span.Hi; c++ {
			if done[c] {
				t.Errorf("resume re-dispatched journaled cell %d", c)
			}
		}
		reran.Add(int64(span.Size()))
		return LocalRunner(opt)(ctx, span, emit)
	}
	got, err := Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  counting,
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(reran.Load()) != opt.NumCells()-len(done) {
		t.Errorf("resume ran %d cells, want %d", reran.Load(), opt.NumCells()-len(done))
	}
	if encode(t, got) != encode(t, want) {
		t.Error("resumed run differs from an uninterrupted Sweep")
	}

	// Third run: journal is complete, nothing dispatches, output holds.
	again, err := Execute(context.Background(), opt, Options{
		Shards: 2,
		Runner: func(context.Context, Span, func(experiment.CellRecord) error) error {
			t.Error("complete journal still dispatched a shard")
			return nil
		},
		Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, again) != encode(t, want) {
		t.Error("replay from a complete journal differs from Sweep")
	}
}

// TestJournalTruncatedTail: a kill mid-append leaves a half-written
// line; loading drops it and the cell re-runs.
func TestJournalTruncatedTail(t *testing.T) {
	opt := gridOptions(2, 1) // 8 cells
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := Execute(context.Background(), opt, Options{
		Shards: 1, Runner: LocalRunner(opt), Journal: journal,
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	cut := raw[:len(raw)-37] // chop into the last record's JSON
	if err := os.WriteFile(journal, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != opt.NumCells()-1 {
		t.Errorf("truncated journal loaded %d cells, want %d", len(recs), opt.NumCells()-1)
	}

	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(context.Background(), opt, Options{
		Shards: 2, Runner: LocalRunner(opt), Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, got) != encode(t, want) {
		t.Error("resume after truncation differs from Sweep")
	}
}

// TestJournalGridMismatch: a journal from different sweep options is
// rejected, not silently merged.
func TestJournalGridMismatch(t *testing.T) {
	opt := gridOptions(2, 1)
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := Execute(context.Background(), opt, Options{
		Shards: 1, Runner: LocalRunner(opt), Journal: journal,
	}); err != nil {
		t.Fatal(err)
	}
	seedDrift := opt
	seedDrift.BaseSeed++
	horizonDrift := opt
	horizonDrift.Sim.Horizon++
	for name, changed := range map[string]experiment.SweepOptions{
		"seed": seedDrift, "horizon": horizonDrift,
	} {
		_, err := Execute(context.Background(), changed, Options{
			Shards: 1, Runner: LocalRunner(changed), Journal: journal,
		})
		if err == nil || !strings.Contains(err.Error(), "different sweep") {
			t.Errorf("%s drift error = %v", name, err)
		}
	}
}

// TestExecuteValidation covers the coordinator's own option errors.
func TestExecuteValidation(t *testing.T) {
	opt := gridOptions(2, 1)
	if _, err := Execute(context.Background(), opt, Options{}); err == nil ||
		!strings.Contains(err.Error(), "Runner") {
		t.Errorf("missing runner error = %v", err)
	}
	bad := opt
	bad.Reps = 0
	if _, err := Execute(context.Background(), bad, Options{Runner: LocalRunner(bad)}); err == nil ||
		!strings.Contains(err.Error(), "Reps") {
		t.Errorf("bad sweep options error = %v", err)
	}
}

// TestRetrySalvagesPartialSpan is the tentpole contract: a worker that
// dies mid-stream no longer kills the round. The cells it delivered
// before dying are journaled exactly once and never re-executed; only
// the undelivered remainder is re-planned and retried, and the single
// Execute call completes byte-identical to the in-process Sweep — no
// manual journal resume.
func TestRetrySalvagesPartialSpan(t *testing.T) {
	opt := gridOptions(3, 2) // 12 cells; units 0:6 and 6:12
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	// The span holding cell 8 dies at cell 8 the first two times it is
	// dispatched, having streamed the cells before it; the third
	// attempt is healthy.
	var failures atomic.Int32
	var mu sync.Mutex
	delivered := make(map[int]int)
	base := LocalRunner(opt)
	runner := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		count := func(rec experiment.CellRecord) error {
			mu.Lock()
			delivered[rec.Cell]++
			mu.Unlock()
			return emit(rec)
		}
		if span.Lo <= 8 && 8 < span.Hi && failures.Load() < 2 {
			return base(ctx, span, func(rec experiment.CellRecord) error {
				if rec.Cell == 8 {
					failures.Add(1)
					return fmt.Errorf("worker killed at cell 8")
				}
				return count(rec)
			})
		}
		return base(ctx, span, count)
	}

	var log strings.Builder
	got, err := Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  runner,
		Journal: journal,
		Retries: 2,
		Log:     &log,
	})
	if err != nil {
		t.Fatalf("retried run failed: %v\nlog:\n%s", err, log.String())
	}
	if failures.Load() != 2 {
		t.Errorf("flaky span failed %d times, want 2", failures.Load())
	}
	if !strings.Contains(log.String(), "retrying") {
		t.Errorf("log does not mention the retry:\n%s", log.String())
	}
	for c := 0; c < opt.NumCells(); c++ {
		if delivered[c] != 1 {
			t.Errorf("cell %d delivered %d times, want exactly once", c, delivered[c])
		}
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("\n")); n != opt.NumCells()+1 {
		t.Errorf("journal holds %d lines, want meta + %d cells", n, opt.NumCells())
	}
	recs, err := loadJournal(journal, experiment.MetaOf(opt, ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != opt.NumCells() {
		t.Errorf("journal loaded %d cells, want %d", len(recs), opt.NumCells())
	}
	if encode(t, got) != encode(t, want) {
		t.Error("retried run differs from an uninterrupted Sweep")
	}
}

// TestRetryBudgetExhausted: a span that dies on every dispatch drains
// its budget and then fails the round with an error naming both the
// cause and the exhausted budget.
func TestRetryBudgetExhausted(t *testing.T) {
	opt := gridOptions(3, 2)
	_, err := Execute(context.Background(), opt, Options{
		Shards:  2,
		Runner:  flakyRunner(LocalRunner(opt), 8),
		Retries: 2,
		Backoff: time.Millisecond, // exercise the backoff timer path
	})
	if err == nil || !strings.Contains(err.Error(), "killed at cell 8") {
		t.Fatalf("exhausted run error = %v", err)
	}
	if !strings.Contains(err.Error(), "retry budget of 2 exhausted") {
		t.Errorf("error does not name the exhausted budget: %v", err)
	}
}

// TestQuarantineRedistributes: a failure that quarantines its worker
// slot is charged to the slot, not the span — the work is picked up by
// the surviving slots with zero retry budget, and the round completes.
func TestQuarantineRedistributes(t *testing.T) {
	opt := gridOptions(3, 2)
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var tripped atomic.Bool
	runner := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		if tripped.CompareAndSwap(false, true) {
			return fmt.Errorf("host down")
		}
		return LocalRunner(opt)(ctx, span, emit)
	}
	var log strings.Builder
	got, err := Execute(context.Background(), opt, Options{
		Shards:     2,
		Runner:     runner,
		Retries:    0, // redistribution must not need any budget
		Quarantine: 1,
		Log:        &log,
	})
	if err != nil {
		t.Fatalf("quarantined run failed: %v\nlog:\n%s", err, log.String())
	}
	if !strings.Contains(log.String(), "quarantined") {
		t.Errorf("log does not mention the quarantine:\n%s", log.String())
	}
	if encode(t, got) != encode(t, want) {
		t.Error("run with a quarantined slot differs from Sweep")
	}
}

// TestAllSlotsQuarantined: when every slot has been quarantined there
// is nobody left to run the queue, and the round fails with a clear
// diagnosis instead of hanging.
func TestAllSlotsQuarantined(t *testing.T) {
	opt := gridOptions(3, 2)
	always := func(context.Context, Span, func(experiment.CellRecord) error) error {
		return fmt.Errorf("host down")
	}
	_, err := Execute(context.Background(), opt, Options{
		Shards:     2,
		Runner:     always,
		Retries:    5,
		Quarantine: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("all-slots-dead error = %v", err)
	}
}

// TestSpeculateStragglerRedispatch: with Speculate, an idle slot
// re-dispatches the longest-running in-flight span. The duplicate
// deliveries are byte-identical and deduplicated first-write-wins, so
// the journal holds every cell exactly once and the output is
// unchanged.
func TestSpeculateStragglerRedispatch(t *testing.T) {
	opt := gridOptions(3, 2) // 12 cells; units 0:6 and 6:12
	want, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")

	// The first attempt on span 0:6 stalls until its speculative twin
	// has delivered the whole span, then runs anyway — every one of its
	// deliveries is a duplicate.
	specDone := make(chan struct{})
	var stalled atomic.Bool
	var mu sync.Mutex
	delivered := make(map[int]int)
	base := LocalRunner(opt)
	runner := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		count := func(rec experiment.CellRecord) error {
			mu.Lock()
			delivered[rec.Cell]++
			mu.Unlock()
			return emit(rec)
		}
		if span.Lo == 0 && stalled.CompareAndSwap(false, true) {
			select {
			case <-specDone:
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return fmt.Errorf("no speculative re-dispatch happened")
			}
			return base(ctx, span, count)
		}
		err := base(ctx, span, count)
		if span.Lo == 0 && err == nil {
			close(specDone)
		}
		return err
	}

	var log strings.Builder
	got, err := Execute(context.Background(), opt, Options{
		Shards:    2,
		Runner:    runner,
		Journal:   journal,
		Speculate: true,
		Log:       &log,
	})
	if err != nil {
		t.Fatalf("speculative run failed: %v\nlog:\n%s", err, log.String())
	}
	if !strings.Contains(log.String(), "speculatively") {
		t.Errorf("log does not mention speculation:\n%s", log.String())
	}
	dups := 0
	for _, n := range delivered {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no duplicate deliveries: the straggler was never speculated on")
	}
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("\n")); n != opt.NumCells()+1 {
		t.Errorf("journal holds %d lines, want meta + %d cells: duplicates must not be journaled", n, opt.NumCells())
	}
	if encode(t, got) != encode(t, want) {
		t.Error("speculative run differs from Sweep")
	}
}

// TestMismatchedDuplicateRejected: first-write-wins only covers honest
// byte-identical duplicates; a duplicate with different content is
// corruption and must abort the round permanently, retries or not.
func TestMismatchedDuplicateRejected(t *testing.T) {
	opt := gridOptions(3, 1) // one shard owns the whole grid
	base := LocalRunner(opt)
	runner := func(ctx context.Context, span Span, emit func(experiment.CellRecord) error) error {
		return base(ctx, span, func(rec experiment.CellRecord) error {
			if err := emit(rec); err != nil {
				return err
			}
			if rec.Cell == 3 {
				evil := rec
				evil.Seed++ // same cell, different bytes
				return emit(evil)
			}
			return nil
		})
	}
	_, err := Execute(context.Background(), opt, Options{
		Shards:  1,
		Runner:  runner,
		Retries: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "delivered twice with different content") {
		t.Fatalf("mismatched duplicate error = %v", err)
	}
}
