package dist

import "testing"

// TestPlanShardsProperties: every plan covers the grid exactly once
// with contiguous near-equal spans, for a sweep of grid and shard
// sizes including the degenerate edges.
func TestPlanShardsProperties(t *testing.T) {
	for _, cells := range []int{1, 2, 3, 7, 12, 16, 97, 1000} {
		for _, shards := range []int{-1, 0, 1, 2, 3, 4, 7, 16, 1500} {
			spans := PlanShards(cells, shards)
			if len(spans) == 0 {
				t.Fatalf("cells=%d shards=%d: empty plan", cells, shards)
			}
			want := shards
			if want < 1 {
				want = 1
			}
			if want > cells {
				want = cells
			}
			if len(spans) != want {
				t.Errorf("cells=%d shards=%d: %d spans, want %d", cells, shards, len(spans), want)
			}
			next, min, max := 0, cells, 0
			for _, s := range spans {
				if s.Lo != next || s.Hi <= s.Lo {
					t.Fatalf("cells=%d shards=%d: span %s not contiguous from %d", cells, shards, s, next)
				}
				next = s.Hi
				if s.Size() < min {
					min = s.Size()
				}
				if s.Size() > max {
					max = s.Size()
				}
			}
			if next != cells {
				t.Errorf("cells=%d shards=%d: plan ends at %d", cells, shards, next)
			}
			if max-min > 1 {
				t.Errorf("cells=%d shards=%d: unbalanced spans (min %d, max %d)", cells, shards, min, max)
			}
		}
	}
	if got := PlanShards(0, 4); got != nil {
		t.Errorf("empty grid plan = %v", got)
	}
}

// TestMissingSpans: gaps group into maximal contiguous spans.
func TestMissingSpans(t *testing.T) {
	have := map[int]bool{0: true, 1: true, 4: true, 7: true}
	got := MissingSpans(9, func(c int) bool { return have[c] })
	want := []Span{{Lo: 2, Hi: 4}, {Lo: 5, Hi: 7}, {Lo: 8, Hi: 9}}
	if len(got) != len(want) {
		t.Fatalf("MissingSpans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MissingSpans[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := MissingSpans(4, func(int) bool { return true }); len(got) != 0 {
		t.Errorf("complete grid missing spans = %v", got)
	}
	if got := MissingSpans(4, func(int) bool { return false }); len(got) != 1 || got[0] != (Span{Lo: 0, Hi: 4}) {
		t.Errorf("empty grid missing spans = %v", got)
	}
}

// TestPlanUnitsFreshRunMatchesPlanShards: a fresh run's dispatch plan
// is exactly the shard plan.
func TestPlanUnitsFreshRunMatchesPlanShards(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		units := planUnits([]Span{{Lo: 0, Hi: 12}}, shards)
		want := PlanShards(12, shards)
		if len(units) != len(want) {
			t.Fatalf("shards=%d: units %v, want %v", shards, units, want)
		}
		for i := range want {
			if units[i] != want[i] {
				t.Errorf("shards=%d: unit[%d] = %v, want %v", shards, i, units[i], want[i])
			}
		}
	}
}

// TestPlanUnitsCoversMissing: dispatch units tile the missing spans
// exactly, whatever the shard count.
func TestPlanUnitsCoversMissing(t *testing.T) {
	missing := []Span{{Lo: 2, Hi: 4}, {Lo: 6, Hi: 13}, {Lo: 20, Hi: 21}}
	for _, shards := range []int{1, 2, 4, 9} {
		units := planUnits(missing, shards)
		covered := make(map[int]int)
		for _, u := range units {
			if u.Size() <= 0 {
				t.Fatalf("shards=%d: empty unit %v", shards, u)
			}
			for c := u.Lo; c < u.Hi; c++ {
				covered[c]++
			}
		}
		total := 0
		for _, s := range missing {
			for c := s.Lo; c < s.Hi; c++ {
				if covered[c] != 1 {
					t.Errorf("shards=%d: cell %d covered %d times", shards, c, covered[c])
				}
				total++
			}
		}
		if len(covered) != total {
			t.Errorf("shards=%d: units cover %d cells outside the missing spans", shards, len(covered)-total)
		}
	}
}
