// Package server is the simulation service: an HTTP daemon that
// accepts sweep jobs (a model plus the declarative sweepcli.Spec),
// runs them on the deterministic experiment engine — in-process, or
// fanned out over worker processes when a worker command is configured
// — and serves the rendered results.
//
// Production concerns live here, not in the engine: a bounded FIFO job
// queue with per-client token-bucket rate limiting and admission
// control (429 + Retry-After when saturated, 503 while draining), a
// content-addressed result cache (see the cache subpackage) that
// serves a resubmitted sweep without re-running it, job cancellation,
// SSE progress streams, and graceful drain — stop admitting, finish
// what's running, then shut the listener down.
//
// API:
//
//	POST   /v1/jobs            submit a spec (JSON body); ?wait=1 blocks
//	                           and responds with the result body itself
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        job status JSON
//	DELETE /v1/jobs/{id}        cancel (queued: immediate; running: ctx)
//	GET    /v1/jobs/{id}/result rendered result; ?wait=1 blocks
//	GET    /v1/jobs/{id}/events SSE progress/state stream
//	GET    /healthz             200 ok / 503 draining
//	GET    /metrics             counters + gauges JSON
//
// Every submission response carries X-Pnut-Job (the job ID) and
// X-Pnut-Cache: hit (served from the result cache), join (attached to
// an identical job already in flight) or miss.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/server/cache"
	"repro/internal/sweepcli"
)

// Config shapes a Server. Zero values take the documented defaults.
type Config struct {
	// QueueDepth bounds the admitted-but-not-running FIFO (default 16).
	QueueDepth int
	// RunJobs is the number of jobs simulated concurrently (default 1:
	// one sweep at a time, each using Workers goroutines).
	RunJobs int
	// Workers caps a job's worker goroutines when its spec doesn't set
	// parallel; 0 means the engine default (GOMAXPROCS).
	Workers int
	// RatePerSec and Burst shape the per-client token bucket; a rate of
	// 0 disables rate limiting.
	RatePerSec float64
	Burst      float64
	// CacheBytes bounds the content-addressed result cache; 0 disables
	// caching.
	CacheBytes int64
	// WorkerCmd, when non-empty, runs jobs through the distributed
	// coordinator with this command (plus the job's sweep flags) as the
	// per-shard worker; Procs is the shard count.
	WorkerCmd string
	Procs     int
	// MaxBody bounds a submission body (default 1 MiB); MaxCells bounds
	// a job's grid (default 1_000_000 cells).
	MaxBody  int64
	MaxCells int
	// Log, when non-nil, receives server and coordinator progress lines.
	Log io.Writer
}

// Server runs sweep jobs behind the HTTP API. Create with New, start
// the runner pool with Start, serve Handler, stop with Drain.
type Server struct {
	cfg     Config
	store   *jobStore
	queue   *jobQueue
	limiter *rateLimiter
	cache   *cache.Cache
	ctr     counters
	started time.Time
	mux     *http.ServeMux

	// inflight dedups identical submissions: cache key -> the job that
	// is computing it (queued or running).
	mu       sync.Mutex
	inflight map[string]*Job

	draining   atomic.Bool
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	// runFn computes one job; tests inject stubs to script lifecycle
	// timing without running simulations.
	runFn func(ctx context.Context, j *Job) (body []byte, contentType string, events int64, err error)
}

// New builds a Server; call Start before serving traffic.
func New(cfg Config) *Server {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.RunJobs < 1 {
		cfg.RunJobs = 1
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.MaxCells < 1 {
		cfg.MaxCells = 1_000_000
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      newJobStore(),
		queue:      newJobQueue(cfg.QueueDepth),
		limiter:    newRateLimiter(cfg.RatePerSec, cfg.Burst),
		cache:      cache.New(cfg.CacheBytes),
		started:    time.Now(),
		mux:        http.NewServeMux(),
		inflight:   make(map[string]*Job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.runFn = s.runSweep
	s.mux.HandleFunc("/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Start launches the runner pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.RunJobs; i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully stops the server: admission is closed (new
// submissions get 503), already-admitted jobs run to completion, and
// Drain returns when the runner pool is idle. If ctx expires first the
// remaining jobs are canceled and ctx's error returned; the pool is
// fully stopped either way.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	s.logf("server: draining (%d queued)", s.queue.depth())
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("server: drain complete")
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		s.logf("server: drain deadline hit, in-flight jobs canceled")
		return ctx.Err()
	}
}

// runner is one slot of the job pool: it claims queued jobs in FIFO
// order and finalizes their state. It exits when the queue is closed
// and drained.
func (s *Server) runner() {
	defer s.wg.Done()
	for j := range s.queue.jobs() {
		ctx, cancel := context.WithCancel(s.baseCtx)
		if !j.claimRunning(cancel) {
			// Canceled while queued; the slot is already free.
			cancel()
			continue
		}
		s.logf("server: job %s running (%s, %d cells)", j.ID, j.Model.Name, j.cellsTotal)
		body, contentType, events, err := s.runFn(ctx, j)
		canceled := ctx.Err() != nil
		cancel()
		s.ctr.simEvents.Add(events)
		switch {
		case err == nil:
			s.cache.Put(j.Key, contentType, body)
			if j.finish(StateDone, body, contentType, "", events) {
				s.ctr.completed.Add(1)
			}
			s.logf("server: job %s done (%d events)", j.ID, events)
		case canceled:
			if j.finish(StateCanceled, nil, "", "canceled", events) {
				s.ctr.canceled.Add(1)
			}
			s.logf("server: job %s canceled", j.ID)
		default:
			if j.finish(StateFailed, nil, "", err.Error(), events) {
				s.ctr.failed.Add(1)
			}
			s.logf("server: job %s failed: %v", j.ID, err)
		}
		s.inflightRemove(j)
	}
}

// runSweep is the production runFn: the in-process deterministic sweep,
// or the distributed coordinator when a worker command is configured.
// Progress flows through the engine's OnCell hook (in-process) or the
// coordinator's emit stream (distributed) into the job's SSE broker.
func (s *Server) runSweep(ctx context.Context, j *Job) ([]byte, string, int64, error) {
	opt := j.opt
	if opt.Workers == 0 {
		opt.Workers = s.cfg.Workers
	}
	total := j.cellsTotal
	var n atomic.Int64
	onCell := func() {
		s.ctr.cellsDone.Add(1)
		j.progress(int(n.Add(1)), total)
	}
	var (
		r   *experiment.SweepResult
		err error
	)
	if s.cfg.WorkerCmd != "" {
		r, err = s.runDist(ctx, j, opt, onCell)
	} else {
		opt.OnCell = func(experiment.Point, int) { onCell() }
		r, err = experiment.Sweep(ctx, opt)
	}
	if err != nil {
		return nil, "", 0, err
	}
	body, contentType, err := renderResult(r, j.Format)
	if err != nil {
		return nil, "", r.Events, err
	}
	return body, contentType, r.Events, nil
}

// runDist executes the job through the distributed coordinator. The
// worker command gets the job's own sweep flags (the same rendering
// Resolve parsed), plus a temp -net file when the model was inline
// source; the coordinator appends the per-span -cells/-emit flags.
func (s *Server) runDist(ctx context.Context, j *Job, opt experiment.SweepOptions, onCell func()) (*experiment.SweepResult, error) {
	argv := append(strings.Fields(s.cfg.WorkerCmd), j.Spec.Flags()...)
	if j.Spec.Net != "" {
		f, err := os.CreateTemp("", "pnut-server-*.pn")
		if err != nil {
			return nil, fmt.Errorf("staging inline net: %w", err)
		}
		if _, err := f.WriteString(j.Spec.Net); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, fmt.Errorf("staging inline net: %w", err)
		}
		f.Close()
		defer os.Remove(f.Name())
		argv = append(argv, "-net", f.Name())
	}
	meta := j.meta
	base, err := dist.NewExecRunner(argv, &meta, s.cfg.Log)
	if err != nil {
		return nil, err
	}
	counting := func(ctx context.Context, span dist.Span, emit func(experiment.CellRecord) error) error {
		return base(ctx, span, func(rec experiment.CellRecord) error {
			if err := emit(rec); err != nil {
				return err
			}
			onCell()
			return nil
		})
	}
	return dist.Execute(ctx, opt, dist.Options{
		Shards: s.cfg.Procs,
		Runner: counting,
		Meta:   &meta,
		Log:    s.cfg.Log,
	})
}

// ---- HTTP handlers ----

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		jobs := s.store.list()
		views := make([]JobView, 0, len(jobs))
		for _, j := range jobs {
			views = append(views, j.View())
		}
		writeJSON(w, http.StatusOK, views)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
	}
}

// handleSubmit is the admission path: draining gate, per-client rate
// limit, spec validation, cache lookup, in-flight dedup, queue bound —
// in that order, so a saturated server sheds load before any work.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.ctr.rejectedDraining.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if ok, wait := s.limiter.allow(clientKey(r)); !ok {
		s.ctr.rejectedRate.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wait.Seconds()))))
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec sweepcli.Spec
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("spec body over %d bytes", s.cfg.MaxBody))
			return
		}
		httpError(w, http.StatusBadRequest, "bad spec: "+err.Error())
		return
	}
	format, err := normalizeFormat(spec.Format)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec.Format = format
	opt, info, err := spec.Resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cells := opt.NumCells(); cells > s.cfg.MaxCells {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("grid of %d cells exceeds the server cap of %d", cells, s.cfg.MaxCells))
		return
	}
	meta := experiment.MetaOf(opt, info.Name)
	key := cache.Key(info.Digest, meta, format)

	if ent, ok := s.cache.Get(key); ok {
		j := s.store.add(spec, format, opt, meta, info, key)
		j.fulfillFromCache(ent.ContentType, ent.Body)
		s.ctr.submitted.Add(1)
		s.ctr.cacheServed.Add(1)
		s.ctr.completed.Add(1)
		s.respondSubmitted(w, r, j, "hit")
		return
	}

	s.mu.Lock()
	if existing := s.inflight[key]; existing != nil {
		s.mu.Unlock()
		s.ctr.joined.Add(1)
		s.respondSubmitted(w, r, existing, "join")
		return
	}
	j := s.store.add(spec, format, opt, meta, info, key)
	s.inflight[key] = j
	s.mu.Unlock()

	if err := s.queue.enqueue(j); err != nil {
		s.inflightRemove(j)
		s.store.remove(j.ID)
		if errors.Is(err, errQueueClosed) {
			s.ctr.rejectedDraining.Add(1)
			httpError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.ctr.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(1+s.queue.depth()))
		httpError(w, http.StatusTooManyRequests, "job queue full")
		return
	}
	s.ctr.submitted.Add(1)
	s.respondSubmitted(w, r, j, "miss")
}

// respondSubmitted answers a submission: job JSON (202 while pending,
// 200 once done), or — with ?wait=1 — the result body itself once the
// job finishes.
func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, j *Job, cacheStatus string) {
	w.Header().Set("X-Pnut-Job", j.ID)
	w.Header().Set("X-Pnut-Cache", cacheStatus)
	if wantWait(r) {
		select {
		case <-j.Done():
			s.writeResult(w, j)
		case <-r.Context().Done():
		}
		return
	}
	status := http.StatusAccepted
	if j.State() != StateQueued && j.State() != StateRunning {
		status = http.StatusOK
	}
	writeJSON(w, status, j.View())
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"), "/")
	j, ok := s.store.get(parts[0])
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	switch {
	case len(parts) == 1:
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, j.View())
		case http.MethodDelete:
			s.cancelJob(j)
			writeJSON(w, http.StatusOK, j.View())
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET for status or DELETE to cancel")
		}
	case len(parts) == 2 && parts[1] == "result" && r.Method == http.MethodGet:
		if wantWait(r) {
			select {
			case <-j.Done():
			case <-r.Context().Done():
				return
			}
		}
		s.writeResult(w, j)
	case len(parts) == 2 && parts[1] == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, j)
	default:
		httpError(w, http.StatusNotFound, "unknown job endpoint")
	}
}

// cancelJob cancels j and maintains the server-side bookkeeping for
// the queued case (the runner path handles the running case).
func (s *Server) cancelJob(j *Job) {
	terminal, _ := j.requestCancel()
	if terminal {
		s.ctr.canceled.Add(1)
		s.inflightRemove(j)
	}
}

// writeResult serves a job's terminal result body.
func (s *Server) writeResult(w http.ResponseWriter, j *Job) {
	body, contentType, cacheHit, ok := j.Result()
	if !ok {
		switch j.State() {
		case StateFailed:
			httpError(w, http.StatusInternalServerError, "job failed: "+j.View().Error)
		case StateCanceled:
			httpError(w, http.StatusGone, "job canceled")
		default:
			httpError(w, http.StatusConflict, "job not finished; poll status, stream /events or use ?wait=1")
		}
		return
	}
	if cacheHit {
		w.Header().Set("X-Pnut-Cache", "hit")
	}
	w.Header().Set("Content-Type", contentType)
	w.Write(body)
}

// handleEvents streams the job's progress as Server-Sent Events: a
// "state" snapshot immediately, "progress" per completed cell, and a
// final "state" event when the job reaches a terminal state.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	emit := func(ev sseEvent) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		fl.Flush()
	}
	ch, closed := j.sse.subscribe()
	emit(sseEvent{name: "state", data: mustJSON(j.View())})
	if closed {
		return
	}
	defer j.sse.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, live := <-ch:
			if !live {
				emit(sseEvent{name: "state", data: mustJSON(j.View())})
				return
			}
			emit(ev)
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var m metricsView
	m.UptimeSeconds = time.Since(s.started).Seconds()
	m.Draining = s.draining.Load()
	m.Queue.Depth = s.queue.depth()
	m.Queue.Capacity = s.queue.capacity()
	states := s.store.countByState()
	m.Jobs.Queued = states[StateQueued]
	m.Jobs.Running = states[StateRunning]
	m.Jobs.Done = states[StateDone]
	m.Jobs.Failed = states[StateFailed]
	m.Jobs.Canceled = states[StateCanceled]
	m.Jobs.Submitted = s.ctr.submitted.Load()
	m.Jobs.Completed = s.ctr.completed.Load()
	m.Jobs.Joined = s.ctr.joined.Load()
	hits, misses, entries, bytes := s.cache.Stats()
	m.Cache.Hits, m.Cache.Misses = hits, misses
	if total := hits + misses; total > 0 {
		m.Cache.HitRate = float64(hits) / float64(total)
	}
	m.Cache.Entries, m.Cache.Bytes = entries, bytes
	m.Cache.Served = s.ctr.cacheServed.Load()
	m.Rejected.RateLimit = s.ctr.rejectedRate.Load()
	m.Rejected.QueueFull = s.ctr.rejectedQueue.Load()
	m.Rejected.Draining = s.ctr.rejectedDraining.Load()
	m.Sim.Events = s.ctr.simEvents.Load()
	if up := m.UptimeSeconds; up > 0 {
		m.Sim.EventsPerSec = float64(m.Sim.Events) / up
	}
	m.Sim.Cells = s.ctr.cellsDone.Load()
	writeJSON(w, http.StatusOK, m)
}

// ---- helpers ----

func (s *Server) inflightRemove(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// clientKey identifies the submitting client for rate limiting: the
// X-Pnut-Client header when present (proxies, tests), else the remote
// host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Pnut-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v != "" && v != "0"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
