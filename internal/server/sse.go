package server

import (
	"encoding/json"
	"sync"
)

// sseEvent is one Server-Sent Event: `event: name` + `data: ...`.
type sseEvent struct {
	name string
	data string
}

// broker fans a job's event stream out to its SSE subscribers. Publish
// never blocks the simulation: a subscriber that cannot keep up has
// events dropped (each event carries full cumulative progress, so a
// drop only lowers the reporting resolution). Closing the broker closes
// every subscriber channel, which the handlers read as "job reached a
// terminal state".
type broker struct {
	mu     sync.Mutex
	subs   map[chan sseEvent]struct{}
	closed bool
}

func newBroker() *broker {
	return &broker{subs: make(map[chan sseEvent]struct{})}
}

// subscribe registers a new listener; closed is true when the stream
// already ended (the caller emits the terminal snapshot itself).
func (b *broker) subscribe() (ch chan sseEvent, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, true
	}
	ch = make(chan sseEvent, 64)
	b.subs[ch] = struct{}{}
	return ch, false
}

// unsubscribe detaches a listener (client went away mid-stream).
func (b *broker) unsubscribe(ch chan sseEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
}

// publish delivers ev to every subscriber that has buffer room.
func (b *broker) publish(ev sseEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// close ends the stream for all subscribers.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
}

// mustJSON marshals API-owned structs, which cannot fail.
func mustJSON(v any) string {
	blob, err := json.Marshal(v)
	if err != nil {
		panic("server: marshalling event: " + err.Error())
	}
	return string(blob)
}
