package server

import (
	"errors"
	"sync"
)

var (
	errQueueFull   = errors.New("job queue full")
	errQueueClosed = errors.New("server draining")
)

// jobQueue is the bounded FIFO between admission and the runner pool.
// Closing it (drain) makes further enqueues fail while the runners
// keep draining what was already admitted.
type jobQueue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	if depth < 1 {
		depth = 1
	}
	return &jobQueue{ch: make(chan *Job, depth)}
}

// enqueue admits a job or reports why it cannot: errQueueFull when the
// bound is hit (admission control surfaces this as 429), errQueueClosed
// once draining has begun (503).
func (q *jobQueue) enqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close stops admission; already-queued jobs still drain.
func (q *jobQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// jobs is the runner-side receive channel; it ends after close once
// the backlog is drained.
func (q *jobQueue) jobs() <-chan *Job { return q.ch }

// depth reports how many jobs are waiting (not yet claimed by a runner).
func (q *jobQueue) depth() int { return len(q.ch) }

// capacity reports the queue bound.
func (q *jobQueue) capacity() int { return cap(q.ch) }
