package server

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/experiment"
)

// Result formats the server can render. "" means FormatCSV.
const (
	FormatCSV   = "csv"
	FormatTable = "table"
	FormatJSON  = "json"
)

// normalizeFormat validates a spec's format field and applies the
// default. The format is part of the cache key, so "" and "csv" must
// normalize to the same string before keying.
func normalizeFormat(f string) (string, error) {
	switch f {
	case "", FormatCSV:
		return FormatCSV, nil
	case FormatTable, FormatJSON:
		return f, nil
	default:
		return "", fmt.Errorf("unknown format %q (csv, table or json)", f)
	}
}

// jsonSummary is one metric's cross-replication summary in the JSON
// rendering, mirroring the CSV's mean/ci95/sd columns.
type jsonSummary struct {
	Metric string  `json:"metric"`
	Mean   float64 `json:"mean"`
	CI95   float64 `json:"ci95"`
	StdDev float64 `json:"sd"`
}

type jsonPoint struct {
	Values  []float64     `json:"values"`
	Reps    int           `json:"reps"`
	Metrics []jsonSummary `json:"metrics"`
}

type jsonResult struct {
	Axes      []experiment.Axis `json:"axes"`
	Metrics   []string          `json:"metrics"`
	Adaptive  bool              `json:"adaptive,omitempty"`
	TotalReps int               `json:"totalReps"`
	Events    int64             `json:"events"`
	Points    []jsonPoint       `json:"points"`
}

// renderResult serializes a finished sweep in the requested format.
// CSV and table reuse the SweepResult writers byte-for-byte, so a body
// fetched over HTTP diffs clean against pnut-sweep's file output; the
// JSON form adds the machine-readable shape the CLIs don't have.
//
// Note Events/Elapsed are run facts, not result values: Events is
// deterministic and included in JSON, Elapsed is wall-clock and is
// deliberately left out of every rendering the cache stores.
func renderResult(r *experiment.SweepResult, format string) (body []byte, contentType string, err error) {
	var buf bytes.Buffer
	switch format {
	case FormatCSV:
		if err := r.WriteCSV(&buf); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "text/csv; charset=utf-8", nil
	case FormatTable:
		if err := r.WriteTable(&buf); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "text/plain; charset=utf-8", nil
	case FormatJSON:
		out := jsonResult{
			Axes:      r.Axes,
			Metrics:   r.MetricNames(),
			Adaptive:  r.Adaptive != nil,
			TotalReps: r.TotalReps,
			Events:    r.Events,
			Points:    make([]jsonPoint, 0, len(r.Points)),
		}
		names := r.MetricNames()
		for _, pt := range r.Points {
			jp := jsonPoint{Values: pt.Point.Values, Reps: pt.Reps}
			for i, s := range pt.Summaries {
				jp.Metrics = append(jp.Metrics, jsonSummary{
					Metric: names[i], Mean: s.Mean, CI95: s.CI95, StdDev: s.StdDev,
				})
			}
			out.Points = append(out.Points, jp)
		}
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return nil, "", err
		}
		return buf.Bytes(), "application/json", nil
	default:
		return nil, "", fmt.Errorf("unknown format %q", format)
	}
}
