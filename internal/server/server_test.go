package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/sweepcli"
)

// testSpec is a small real sweep used across tests.
func testSpec(seed int64) sweepcli.Spec {
	return sweepcli.Spec{
		Model:      "cache",
		Axes:       []string{"DHitRatio=0.5,0.9"},
		Reps:       2,
		Seed:       seed,
		Horizon:    200,
		Throughput: []string{"Issue"},
	}
}

// newTestServer starts a server (runner pool + HTTP) and registers
// cleanup that drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// blockingRun installs a scripted runFn: each run announces itself on
// started and blocks until release is closed (or its context ends).
func blockingRun(s *Server) (started chan *Job, release chan struct{}) {
	started = make(chan *Job, 16)
	release = make(chan struct{})
	s.runFn = func(ctx context.Context, j *Job) ([]byte, string, int64, error) {
		started <- j
		select {
		case <-release:
			return []byte("fake-body\n"), "text/plain", 7, nil
		case <-ctx.Done():
			return nil, "", 0, ctx.Err()
		}
	}
	return started, release
}

func submit(t *testing.T, ts *httptest.Server, spec sweepcli.Spec, query string, hdr map[string]string) *http.Response {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs"+query, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitState(t *testing.T, j *Job, want string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if j.State() == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestServeSweepByteIdentical is the end-to-end acceptance path: a
// sweep submitted over HTTP returns byte-for-byte what the engine (and
// so pnut-sweep) writes for the same grid, and resubmitting is served
// from the result cache without re-running.
func TestServeSweepByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: 1 << 20, Workers: 2})

	spec := testSpec(11)
	opt, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiment.Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	resp := submit(t, ts, spec, "?wait=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Pnut-Cache"); got != "miss" {
		t.Fatalf("cold submit X-Pnut-Cache = %q, want miss", got)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("served CSV differs from direct sweep:\nserved:\n%s\ndirect:\n%s", got.String(), want.String())
	}

	// Resubmit: served from cache, byte-identical.
	resp2 := submit(t, ts, spec, "?wait=1", nil)
	if got := resp2.Header.Get("X-Pnut-Cache"); got != "hit" {
		t.Fatalf("warm submit X-Pnut-Cache = %q, want hit", got)
	}
	var warm bytes.Buffer
	warm.ReadFrom(resp2.Body)
	resp2.Body.Close()
	if !bytes.Equal(warm.Bytes(), want.Bytes()) {
		t.Fatal("cached body differs from cold body")
	}
	if served := s.ctr.cacheServed.Load(); served != 1 {
		t.Fatalf("cacheServed = %d, want 1", served)
	}

	// An equivalent spelling of the same grid (range axis) also hits.
	alt := spec
	alt.Axes = []string{"DHitRatio=0.5:0.9:0.4"}
	resp3 := submit(t, ts, alt, "?wait=1", nil)
	if got := resp3.Header.Get("X-Pnut-Cache"); got != "hit" {
		t.Fatalf("equivalent-grid submit X-Pnut-Cache = %q, want hit", got)
	}
	resp3.Body.Close()

	// A different seed is a different address: misses, runs.
	other := testSpec(12)
	resp4 := submit(t, ts, other, "?wait=1", nil)
	if got := resp4.Header.Get("X-Pnut-Cache"); got != "miss" {
		t.Fatalf("different-seed submit X-Pnut-Cache = %q, want miss", got)
	}
	resp4.Body.Close()
}

// TestCancelQueuedFreesSlot: canceling a queued job releases its queue
// slot, and canceling the running job lets the next one start.
func TestCancelQueuedFreesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{RunJobs: 1, QueueDepth: 2})
	started, release := blockingRun(s)
	defer close(release)

	rA := decodeJob(t, submit(t, ts, testSpec(1), "", nil))
	jA := <-started
	if jA.ID != rA.ID {
		t.Fatalf("running job %s, submitted %s", jA.ID, rA.ID)
	}
	rB := decodeJob(t, submit(t, ts, testSpec(2), "", nil))
	jB, _ := s.store.get(rB.ID)

	// Cancel the queued job: it goes terminal immediately.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+rB.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeJob(t, resp); v.State != StateCanceled {
		t.Fatalf("canceled queued job state %q", v.State)
	}
	select {
	case <-jB.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("canceled queued job never reached a terminal state")
	}

	// Its slot is free: a third job can be queued even though B never ran.
	rC := decodeJob(t, submit(t, ts, testSpec(3), "", nil))

	// Cancel the running job: the runner observes its context and moves
	// on to C.
	req, _ = http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+rA.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	waitState(t, jA, StateCanceled)
	jC := <-started
	if jC.ID != rC.ID {
		t.Fatalf("runner picked %s after cancel, want %s", jC.ID, rC.ID)
	}
	// B must never have started.
	if jB.State() != StateCanceled {
		t.Fatalf("queued-then-canceled job state %q", jB.State())
	}
}

// TestDrain: once draining, new submissions get 503 while the running
// job completes; Drain returns only after it does.
func TestDrain(t *testing.T) {
	s := New(Config{RunJobs: 1, QueueDepth: 2})
	started, release := blockingRun(s)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rA := decodeJob(t, submit(t, ts, testSpec(1), "", nil))
	jA, _ := s.store.get(rA.ID)
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining.
	resp := submit(t, ts, testSpec(2), "", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hz.StatusCode)
	}
	hz.Body.Close()

	// Drain has not returned: the admitted job is still running.
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the running job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if jA.State() != StateDone {
		t.Fatalf("job after drain: %q, want done", jA.State())
	}
}

// TestRateLimiterIsolatesClients: one client exhausting its bucket
// does not affect another, and the denial carries Retry-After.
func TestRateLimiterIsolatesClients(t *testing.T) {
	s, ts := newTestServer(t, Config{RatePerSec: 0.001, Burst: 2, QueueDepth: 16})
	started, release := blockingRun(s)
	defer close(release)
	go func() {
		for range started {
		}
	}()

	alice := map[string]string{"X-Pnut-Client": "alice"}
	bob := map[string]string{"X-Pnut-Client": "bob"}
	for i := 0; i < 2; i++ {
		resp := submit(t, ts, testSpec(int64(10+i)), "", alice)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("alice submit %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := submit(t, ts, testSpec(20), "", alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over budget: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	bobResp := submit(t, ts, testSpec(30), "", bob)
	if bobResp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob (fresh client) got %d, want 202", bobResp.StatusCode)
	}
	bobResp.Close = true
	bobResp.Body.Close()
}

// TestQueueFull: the bounded queue rejects with 429 + Retry-After once
// runner slots and queue slots are taken.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{RunJobs: 1, QueueDepth: 1})
	started, release := blockingRun(s)
	defer close(release)

	submit(t, ts, testSpec(1), "", nil).Body.Close() // running
	<-started
	submit(t, ts, testSpec(2), "", nil).Body.Close() // queued
	resp := submit(t, ts, testSpec(3), "", nil)      // no room
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full rejection has no Retry-After")
	}
	resp.Body.Close()
	// The rejected job left no trace in the listing.
	listResp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []JobView
	if err := json.NewDecoder(listResp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(views) != 2 {
		t.Fatalf("listing has %d jobs, want 2", len(views))
	}
}

// TestJoinInflight: an identical submission while the first is still
// computing attaches to the same job instead of queueing a duplicate.
func TestJoinInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{RunJobs: 1, QueueDepth: 4, CacheBytes: 1 << 20})
	started, release := blockingRun(s)

	first := submit(t, ts, testSpec(1), "", nil)
	firstView := decodeJob(t, first)
	<-started
	second := submit(t, ts, testSpec(1), "", nil)
	if got := second.Header.Get("X-Pnut-Cache"); got != "join" {
		t.Fatalf("duplicate submit X-Pnut-Cache = %q, want join", got)
	}
	secondView := decodeJob(t, second)
	if secondView.ID != firstView.ID {
		t.Fatalf("duplicate got its own job %s, want %s", secondView.ID, firstView.ID)
	}
	close(release)
	j, _ := s.store.get(firstView.ID)
	waitState(t, j, StateDone)
}

// TestSSEEvents: the event stream carries a state snapshot and the
// terminal transition.
func TestSSEEvents(t *testing.T) {
	s, ts := newTestServer(t, Config{RunJobs: 1, QueueDepth: 4})
	started, release := blockingRun(s)

	view := decodeJob(t, submit(t, ts, testSpec(1), "", nil))
	<-started

	resp, err := http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"done"`) {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("SSE stream ended without a done state event")
	}
}

// TestSubmitValidation: admission rejects malformed and oversized work
// before any simulation runs.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBody: 512, MaxCells: 8})

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := map[string]struct {
		body string
		want int
	}{
		"not json":      {"pnut", http.StatusBadRequest},
		"unknown field": {`{"modle":"cache"}`, http.StatusBadRequest},
		"bad model":     {`{"model":"nope","throughput":["Issue"]}`, http.StatusBadRequest},
		"no metrics":    {`{"model":"cache"}`, http.StatusBadRequest},
		"bad format":    {`{"model":"cache","throughput":["Issue"],"format":"xml"}`, http.StatusBadRequest},
		"grid too big": {`{"model":"cache","axes":["DHitRatio=0:1:0.1"],"reps":3,"throughput":["Issue"]}`,
			http.StatusBadRequest},
		"body too big": {fmt.Sprintf(`{"net":%q,"throughput":["Issue"]}`, strings.Repeat("x", 600)),
			http.StatusRequestEntityTooLarge},
	}
	for name, tc := range cases {
		resp := post(tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
		resp.Body.Close()
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestMetricsEndpoint: counters and gauges reflect a served job.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20, Workers: 2})
	submit(t, ts, testSpec(5), "?wait=1", nil).Body.Close()
	submit(t, ts, testSpec(5), "?wait=1", nil).Body.Close() // cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Jobs.Submitted != 2 || m.Jobs.Done != 2 {
		t.Fatalf("jobs submitted=%d done=%d, want 2/2", m.Jobs.Submitted, m.Jobs.Done)
	}
	if m.Cache.Hits != 1 || m.Cache.Served != 1 {
		t.Fatalf("cache hits=%d served=%d, want 1/1", m.Cache.Hits, m.Cache.Served)
	}
	if m.Sim.Events <= 0 || m.Sim.Cells != 4 {
		t.Fatalf("sim events=%d cells=%d, want >0 and 4", m.Sim.Events, m.Sim.Cells)
	}
	if m.Queue.Capacity < 1 {
		t.Fatalf("queue capacity %d", m.Queue.Capacity)
	}
}

// TestCancelInterruptsReachBuild: DELETE on a running reach job
// interrupts the state-space construction mid-build — the job context
// threads through the engine into reach.Build, which observes it at
// the next level barrier. The net grows without bound and MaxStates is
// far beyond what the test could ever explore, so only cancellation
// can end the job; the spill store's temp file must be gone afterwards.
func TestCancelInterruptsReachBuild(t *testing.T) {
	s, ts := newTestServer(t, Config{RunJobs: 1, QueueDepth: 1, Workers: 1})
	spillDir := t.TempDir()
	spec := sweepcli.Spec{
		Net: `net unbounded_branch
place src init 1
place a
place b
trans grow_a
  in src
  out src, a
trans grow_b
  in src
  out src, b
`,
		Engine:      "reach",
		MaxStates:   30_000_000,
		Store:       "spill",
		SpillBudget: 1 << 16,
		SpillDir:    spillDir,
	}
	r := decodeJob(t, submit(t, ts, spec, "", nil))
	j, ok := s.store.get(r.ID)
	if !ok {
		t.Fatalf("submitted job %s not in store", r.ID)
	}
	waitState(t, j, StateRunning)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+r.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, j, StateCanceled)

	// The interrupted build closed its store: no spill file survives.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Drain(ctx)
	ents, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("canceled reach job left %d spill files", len(ents))
	}
}
