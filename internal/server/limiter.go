package server

import (
	"math"
	"sync"
	"time"
)

// maxBuckets bounds the per-client state so an attacker rotating client
// identities cannot grow memory without bound; full (idle) buckets are
// pruned first since dropping one restores exactly the state a fresh
// client would get anyway.
const maxBuckets = 4096

// rateLimiter is a per-client token bucket: each client identity gets
// `burst` tokens refilled at `rate` tokens/second, and one admission
// costs one token. rate <= 0 disables limiting. The clock is injectable
// so tests drive refill deterministically.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token for client if available. When denied it
// returns how long until the next token accrues — the Retry-After the
// admission path sends with the 429.
func (l *rateLimiter) allow(client string) (bool, time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[client]
	if !ok {
		l.pruneLocked()
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// pruneLocked evicts idle (full) buckets when the map is at its bound;
// if every bucket is active it clears the oldest-touched half.
func (l *rateLimiter) pruneLocked() {
	if len(l.buckets) < maxBuckets {
		return
	}
	for k, b := range l.buckets {
		if b.tokens >= l.burst {
			delete(l.buckets, k)
		}
	}
	for k := range l.buckets {
		if len(l.buckets) < maxBuckets/2 {
			break
		}
		delete(l.buckets, k)
	}
}
