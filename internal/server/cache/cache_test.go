package cache

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/sweepcli"
)

func metaFor(t *testing.T, spec sweepcli.Spec) (experiment.CellMeta, string) {
	t.Helper()
	opt, info, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return experiment.MetaOf(opt, info.Name), info.Digest
}

// TestKeyNormalization: equivalent spellings of the same request key
// equal; every semantic difference keys different.
func TestKeyNormalization(t *testing.T) {
	base := sweepcli.Spec{
		Model:      "cache",
		Axes:       []string{"DHitRatio=0:1:0.5"},
		Reps:       3,
		Seed:       7,
		Horizon:    1000,
		Throughput: []string{"Issue"},
	}
	meta, digest := metaFor(t, base)
	key := Key(digest, meta, "csv")

	// The range axis and its explicit expansion are the same grid.
	listAxes := base
	listAxes.Axes = []string{"DHitRatio=0,0.5,1"}
	m2, d2 := metaFor(t, listAxes)
	if got := Key(d2, m2, "csv"); got != key {
		t.Errorf("range vs list axis spelling changed the key: %s vs %s", got, key)
	}

	// The net name is informational: a different meta.Net must not key
	// different (SameGrid ignores it too).
	renamed := meta
	renamed.Net = "other"
	if got := Key(digest, renamed, "csv"); got != key {
		t.Error("informational net name entered the key")
	}

	variants := map[string]func() string{
		"different seed": func() string {
			s := base
			s.Seed = 8
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"different reps": func() string {
			s := base
			s.Reps = 4
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"different horizon": func() string {
			s := base
			s.Horizon = 2000
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"different axis values": func() string {
			s := base
			s.Axes = []string{"DHitRatio=0,0.5"}
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"extra metric": func() string {
			s := base
			s.Utilization = []string{"Bus_busy"}
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"adaptive rule": func() string {
			s := base
			s.Reps = 0
			s.Adaptive = "throughput(Issue):0.05"
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"different model": func() string {
			s := base
			s.Model = "pipeline"
			m, d := metaFor(t, s)
			return Key(d, m, "csv")
		},
		"different format": func() string { return Key(digest, meta, "table") },
	}
	seen := map[string]string{key: "base"}
	for name, mk := range variants {
		k := mk()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: key collides with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestKeyStopRuleSensitivity: every field of the adaptive stopping
// rule is part of the address.
func TestKeyStopRuleSensitivity(t *testing.T) {
	mk := func(relci string, minReps int) string {
		s := sweepcli.Spec{
			Model:      "cache",
			Axes:       []string{"DHitRatio=0.5,0.9"},
			Adaptive:   "throughput(Issue):" + relci,
			MinReps:    minReps,
			Throughput: []string{"Issue"},
		}
		m, d := metaFor(t, s)
		return Key(d, m, "csv")
	}
	a, b, c := mk("0.05", 3), mk("0.02", 3), mk("0.05", 4)
	if a == b || a == c || b == c {
		t.Fatalf("stopping-rule edits did not all change the key: %s %s %s", a, b, c)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(100)
	body := func(n int) []byte { return make([]byte, n) }
	c.Put("a", "text/plain", body(40))
	c.Put("b", "text/plain", body(40))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a is now most recently used; inserting c evicts b.
	c.Put("c", "text/plain", body(40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	// Oversized bodies are not stored at all.
	c.Put("huge", "text/plain", body(101))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized body was stored")
	}
	hits, misses, entries, bytes := c.Stats()
	if entries != 2 || bytes != 80 {
		t.Fatalf("stats: %d entries %d bytes, want 2/80", entries, bytes)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("stats: hits=%d misses=%d, want both nonzero", hits, misses)
	}
}

func TestCacheZeroBudget(t *testing.T) {
	c := New(0)
	c.Put("k", "text/plain", []byte("body"))
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-budget cache stored a body")
	}
}

func TestCacheBodySharing(t *testing.T) {
	c := New(1 << 20)
	c.Put("k", "text/csv", []byte("a,b\n1,2\n"))
	e1, ok1 := c.Get("k")
	e2, ok2 := c.Get("k")
	if !ok1 || !ok2 {
		t.Fatal("entry missing")
	}
	if string(e1.Body) != string(e2.Body) || e1.ContentType != "text/csv" {
		t.Fatal("entries differ")
	}
}

// TestKeyIsStable pins the key derivation: a change to the canonical
// encoding must be deliberate (bump the key version string) because it
// silently invalidates — or worse, aliases — every deployed cache.
func TestKeyIsStable(t *testing.T) {
	lit := experiment.CellMeta{
		Axes:     []experiment.Axis{{Name: "x", Values: []float64{1, 2}}},
		Reps:     2,
		BaseSeed: 5,
		Horizon:  100,
		Metrics:  []string{"throughput(t)"},
		Cells:    4,
	}
	got := Key("builtin:demo", lit, "csv")
	const want = "8808b1e47c3ac95bbc5e784f71565a0c28c1107c00e51dffde25f921c34d57c9"
	if got != want {
		t.Fatalf("key derivation changed: got %s (update the pin only with a deliberate version bump)", got)
	}
}
