// Package cache is the simulation server's content-addressed result
// store: finished sweep bodies keyed by a canonical SHA-256 of what
// they were computed from — the normalized model digest, the expanded
// grid (axes, replication/seed layout, per-run horizon), the stopping
// rule, the metric set and the rendering format. Determinism makes
// this sound: two submissions with equal keys would run cell-for-cell
// identical simulations and render byte-identical bodies, so the
// second one is served from memory and costs nothing.
//
// The key reuses experiment.CellMeta as the grid normalization — the
// exact structure the distributed journal uses to decide "same sweep"
// (CellMeta.SameGrid) — so the cache can never conflate grids the
// coordinator would distinguish, and an axis written 0:1:0.5 keys
// equal to the same axis written 0,0.5,1 (both expand before hashing).
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"repro/internal/experiment"
)

// Key derives the content address of one sweep result. modelDigest
// identifies the normalized model (see sweepcli.ModelInfo: the net's
// canonical hash, or the built-in family name); meta pins the expanded
// grid, seed layout, stopping rule and metric set; format names the
// rendering. The meta's informational fields (Net name, format tag,
// version) are excluded, exactly as SameGrid ignores them.
func Key(modelDigest string, meta experiment.CellMeta, format string) string {
	meta.Format, meta.Net = "", ""
	meta.Version = 0
	blob, err := json.Marshal(struct {
		V     string              `json:"v"`
		Model string              `json:"model"`
		Grid  experiment.CellMeta `json:"grid"`
		Fmt   string              `json:"format"`
	}{V: "pnut-result-key-v1", Model: modelDigest, Grid: meta, Fmt: format})
	if err != nil {
		// CellMeta is plain data; marshalling cannot fail.
		panic("cache: marshalling result key: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Entry is one cached result body.
type Entry struct {
	ContentType string
	Body        []byte
}

type node struct {
	key   string
	entry Entry
}

// Cache is a bounded, thread-safe LRU of result bodies. A zero byte
// budget disables storage (every Get misses), which keeps the server
// code unconditional.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits, misses int64
}

// New returns a cache bounded to maxBytes of stored bodies.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the entry stored under key. The returned body is shared;
// callers must not modify it.
func (c *Cache) Get(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*node).entry, true
}

// Put stores body under key, evicting least-recently-used entries to
// fit the byte budget. A body larger than the whole budget is not
// stored. The cache takes ownership of body.
func (c *Cache) Put(key, contentType string, body []byte) {
	size := int64(len(body))
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Determinism means a re-put body is identical; just refresh.
		c.order.MoveToFront(el)
		return
	}
	for c.curBytes+size > c.maxBytes {
		back := c.order.Back()
		if back == nil {
			break
		}
		n := back.Value.(*node)
		c.curBytes -= int64(len(n.entry.Body))
		delete(c.entries, n.key)
		c.order.Remove(back)
	}
	c.entries[key] = c.order.PushFront(&node{key: key, entry: Entry{ContentType: contentType, Body: body}})
	c.curBytes += size
}

// Stats reports hit/miss counters and current occupancy.
func (c *Cache) Stats() (hits, misses int64, entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries), c.curBytes
}
