package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/sweepcli"
)

// Job states. A job moves queued -> running -> done|failed|canceled;
// cache hits are born done.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one admitted sweep. The immutable identity fields are set at
// creation; everything else is guarded by mu. The done channel closes
// exactly once, when the job reaches a terminal state — result waiters
// and the drain path block on it.
type Job struct {
	ID     string
	Key    string
	Spec   sweepcli.Spec
	Format string
	Model  sweepcli.ModelInfo

	// opt is the resolved sweep (shared by the runner and the dist
	// path); meta pins the expanded grid for worker dispatch.
	opt  experiment.SweepOptions
	meta experiment.CellMeta

	mu          sync.Mutex
	state       string
	err         string
	body        []byte
	contentType string
	cacheHit    bool
	created     time.Time
	started     time.Time
	finished    time.Time
	cellsDone   int
	cellsTotal  int
	events      int64
	cancel      context.CancelFunc

	done chan struct{}
	sse  *broker
}

// JobView is the JSON shape of a job in API responses.
type JobView struct {
	ID         string `json:"id"`
	State      string `json:"state"`
	Model      string `json:"model,omitempty"`
	Format     string `json:"format"`
	Cache      string `json:"cache"`
	CellsDone  int    `json:"cellsDone"`
	CellsTotal int    `json:"cellsTotal"`
	Events     int64  `json:"events,omitempty"`
	Error      string `json:"error,omitempty"`
	Created    string `json:"created,omitempty"`
	Started    string `json:"started,omitempty"`
	Finished   string `json:"finished,omitempty"`
}

// View snapshots the job for JSON rendering.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.ID,
		State:      j.state,
		Model:      j.Model.Name,
		Format:     j.Format,
		Cache:      "miss",
		CellsDone:  j.cellsDone,
		CellsTotal: j.cellsTotal,
		Events:     j.events,
		Error:      j.err,
	}
	if j.cacheHit {
		v.Cache = "hit"
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.Created, v.Started, v.Finished = stamp(j.created), stamp(j.started), stamp(j.finished)
	return v
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done exposes the terminal-state channel.
func (j *Job) Done() <-chan struct{} { return j.done }

// claimRunning transitions queued -> running; false if the job was
// canceled while waiting in the queue (its slot is simply skipped).
func (j *Job) claimRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	j.sse.publish(sseEvent{name: "state", data: mustJSON(j.viewLocked())})
	return true
}

// progress records one completed cell and feeds the SSE stream.
func (j *Job) progress(done, total int) {
	j.mu.Lock()
	j.cellsDone, j.cellsTotal = done, total
	j.mu.Unlock()
	j.sse.publish(sseEvent{name: "progress", data: fmt.Sprintf(`{"cellsDone":%d,"cellsTotal":%d}`, done, total)})
}

// terminalLocked reports whether the job has reached a final state.
func (j *Job) terminalLocked() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// completeLocked records the terminal transition (j.mu held, state not
// yet terminal) and returns the SSE event to publish after unlocking.
func (j *Job) completeLocked(state string, body []byte, contentType, errMsg string, events int64) sseEvent {
	j.state = state
	j.body, j.contentType = body, contentType
	j.err = errMsg
	j.events += events
	j.finished = time.Now()
	return sseEvent{name: "state", data: mustJSON(j.viewLocked())}
}

// seal publishes the terminal event and wakes all waiters. Must be
// called exactly once, after completeLocked, outside j.mu.
func (j *Job) seal(ev sseEvent) {
	j.sse.publish(ev)
	j.sse.close()
	close(j.done)
}

// finish moves the job to a terminal state exactly once and wakes all
// waiters. body/contentType are only meaningful for StateDone.
func (j *Job) finish(state string, body []byte, contentType, errMsg string, events int64) bool {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return false
	}
	ev := j.completeLocked(state, body, contentType, errMsg, events)
	j.mu.Unlock()
	j.seal(ev)
	return true
}

// requestCancel cancels the job. A still-queued job goes terminal here
// — its queue slot is skipped when the runner reaches it — while a
// running job has its context canceled and the runner finalizes the
// state asynchronously. The two branches and claimRunning all race
// under j.mu, so a job can never be marked canceled after a runner
// claimed it without its context being canceled too.
func (j *Job) requestCancel() (terminal, signaled bool) {
	j.mu.Lock()
	if j.state == StateQueued {
		ev := j.completeLocked(StateCanceled, nil, "", "canceled before start", 0)
		j.mu.Unlock()
		j.seal(ev)
		return true, true
	}
	cancel, running := j.cancel, j.state == StateRunning
	j.mu.Unlock()
	if running && cancel != nil {
		cancel()
		return false, true
	}
	return false, false
}

// fulfillFromCache completes a freshly-created job with a cached body.
func (j *Job) fulfillFromCache(contentType string, body []byte) {
	j.mu.Lock()
	j.cacheHit = true
	ev := j.completeLocked(StateDone, body, contentType, "", 0)
	j.mu.Unlock()
	j.seal(ev)
}

// viewLocked is View with j.mu already held.
func (j *Job) viewLocked() JobView {
	v := JobView{
		ID: j.ID, State: j.state, Model: j.Model.Name, Format: j.Format,
		Cache: "miss", CellsDone: j.cellsDone, CellsTotal: j.cellsTotal,
		Events: j.events, Error: j.err,
	}
	if j.cacheHit {
		v.Cache = "hit"
	}
	return v
}

// Result returns the terminal body; ok is false until the job is done.
func (j *Job) Result() (body []byte, contentType string, cacheHit bool, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, "", false, false
	}
	return j.body, j.contentType, j.cacheHit, true
}

// jobStore tracks jobs by ID in admission order.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	ids  []string
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// add creates and registers a job in the given initial state.
func (st *jobStore) add(spec sweepcli.Spec, format string, opt experiment.SweepOptions, meta experiment.CellMeta, info sweepcli.ModelInfo, key string) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &Job{
		ID:         fmt.Sprintf("j%06d", st.seq),
		Key:        key,
		Spec:       spec,
		Format:     format,
		Model:      info,
		opt:        opt,
		meta:       meta,
		state:      StateQueued,
		created:    time.Now(),
		cellsTotal: opt.NumCells(),
		done:       make(chan struct{}),
		sse:        newBroker(),
	}
	st.jobs[j.ID] = j
	st.ids = append(st.ids, j.ID)
	return j
}

// remove forgets a job that was never admitted (queue rejection after
// creation), so rejected submissions don't appear in listings.
func (st *jobStore) remove(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, id)
	for i, x := range st.ids {
		if x == id {
			st.ids = append(st.ids[:i], st.ids[i+1:]...)
			break
		}
	}
}

// get looks a job up by ID.
func (st *jobStore) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list snapshots all jobs in admission order.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.ids))
	for _, id := range st.ids {
		out = append(out, st.jobs[id])
	}
	return out
}

// countByState tallies job states for /metrics.
func (st *jobStore) countByState() map[string]int {
	counts := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
	}
	for _, j := range st.list() {
		counts[j.State()]++
	}
	return counts
}
