package server

import "sync/atomic"

// counters are the server's cumulative (expvar-style) counters. Gauges
// like queue depth and jobs-by-state are derived live in the /metrics
// handler instead of being tracked here, so they can never drift from
// the structures they describe.
type counters struct {
	submitted        atomic.Int64 // admitted jobs (cache hits included)
	completed        atomic.Int64 // jobs finished done
	failed           atomic.Int64 // jobs finished failed
	canceled         atomic.Int64 // jobs finished canceled
	cacheServed      atomic.Int64 // submissions answered from the result cache
	joined           atomic.Int64 // submissions attached to an identical in-flight job
	rejectedRate     atomic.Int64 // 429: client over its token bucket
	rejectedQueue    atomic.Int64 // 429: queue at capacity
	rejectedDraining atomic.Int64 // 503: submitted during drain
	simEvents        atomic.Int64 // transition firings across all completed jobs
	cellsDone        atomic.Int64 // sweep cells completed across all jobs
}

// metricsView is the JSON shape of GET /metrics.
type metricsView struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Draining      bool    `json:"draining"`

	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`

	Jobs struct {
		Queued    int   `json:"queued"`
		Running   int   `json:"running"`
		Done      int   `json:"done"`
		Failed    int   `json:"failed"`
		Canceled  int   `json:"canceled"`
		Submitted int64 `json:"submitted"`
		Completed int64 `json:"completed"`
		Joined    int64 `json:"joined"`
	} `json:"jobs"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hitRate"`
		Entries int     `json:"entries"`
		Bytes   int64   `json:"bytes"`
		Served  int64   `json:"served"`
	} `json:"cache"`

	Rejected struct {
		RateLimit int64 `json:"rateLimit"`
		QueueFull int64 `json:"queueFull"`
		Draining  int64 `json:"draining"`
	} `json:"rejected"`

	Sim struct {
		Events       int64   `json:"events"`
		EventsPerSec float64 `json:"eventsPerSec"`
		Cells        int64   `json:"cells"`
	} `json:"sim"`
}
