package petri

import (
	"fmt"
	"sort"

	"repro/internal/expr"
)

// Builder assembles a Net. Place and transition declarations refer to
// places by name; Build resolves names, validates the net and returns an
// immutable Net. All errors (duplicate names, unknown places, bad
// weights) are accumulated and reported together by Build.
type Builder struct {
	name   string
	places []Place
	trans  []*TransBuilder
	vars   map[string]int64
	tables map[string][]int64
	errs   []error
}

// NewBuilder starts a net named name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		vars:   make(map[string]int64),
		tables: make(map[string][]int64),
	}
}

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Place declares a place with an initial token count.
func (b *Builder) Place(name string, initial int) *Builder {
	if name == "" {
		b.errorf("petri: empty place name")
		return b
	}
	if initial < 0 {
		b.errorf("petri: place %q has negative initial marking %d", name, initial)
	}
	b.places = append(b.places, Place{Name: name, Initial: initial})
	return b
}

// Places declares several empty places at once.
func (b *Builder) Places(names ...string) *Builder {
	for _, n := range names {
		b.Place(n, 0)
	}
	return b
}

// Var declares an environment variable for interpreted nets.
func (b *Builder) Var(name string, v int64) *Builder {
	b.vars[name] = v
	return b
}

// Table declares an environment table for interpreted nets.
func (b *Builder) Table(name string, vals ...int64) *Builder {
	b.tables[name] = append([]int64(nil), vals...)
	return b
}

// namedArc is an arc by place name, resolved at Build time.
type namedArc struct {
	place  string
	weight int
}

// TransBuilder accumulates one transition declaration.
type TransBuilder struct {
	b        *Builder
	name     string
	in       []namedArc
	out      []namedArc
	inhib    []namedArc
	firing   Delay
	enabling Delay
	freq     float64
	freqSet  bool
	servers  int
	pred     expr.Expr
	action   *expr.Program
}

// Trans starts a transition declaration.
func (b *Builder) Trans(name string) *TransBuilder {
	tb := &TransBuilder{b: b, name: name}
	if name == "" {
		b.errorf("petri: empty transition name")
	}
	b.trans = append(b.trans, tb)
	return tb
}

func arcWeight(weight []int) int {
	if len(weight) == 0 {
		return 1
	}
	return weight[0]
}

// In adds an input arc from place (default weight 1).
func (tb *TransBuilder) In(place string, weight ...int) *TransBuilder {
	tb.in = append(tb.in, namedArc{place, arcWeight(weight)})
	return tb
}

// Out adds an output arc to place (default weight 1).
func (tb *TransBuilder) Out(place string, weight ...int) *TransBuilder {
	tb.out = append(tb.out, namedArc{place, arcWeight(weight)})
	return tb
}

// Inhib adds an inhibitor arc: the transition is enabled only while place
// holds fewer than weight tokens (default: zero tokens).
func (tb *TransBuilder) Inhib(place string, weight ...int) *TransBuilder {
	tb.inhib = append(tb.inhib, namedArc{place, arcWeight(weight)})
	return tb
}

// Firing sets the firing-time distribution.
func (tb *TransBuilder) Firing(d Delay) *TransBuilder { tb.firing = d; return tb }

// FiringConst sets a constant firing time.
func (tb *TransBuilder) FiringConst(t Time) *TransBuilder { tb.firing = Constant(t); return tb }

// Enabling sets the enabling-time distribution.
func (tb *TransBuilder) Enabling(d Delay) *TransBuilder { tb.enabling = d; return tb }

// EnablingConst sets a constant enabling time.
func (tb *TransBuilder) EnablingConst(t Time) *TransBuilder { tb.enabling = Constant(t); return tb }

// Freq sets the relative firing frequency (conflict weight). A frequency
// of exactly 0 means the transition never fires (useful for degenerate
// parameter choices such as a hit ratio of 1); unset defaults to 1.
func (tb *TransBuilder) Freq(f float64) *TransBuilder { tb.freq = f; tb.freqSet = true; return tb }

// Servers caps simultaneous firings (0 = unlimited).
func (tb *TransBuilder) Servers(n int) *TransBuilder { tb.servers = n; return tb }

// Pred attaches a predicate given as expr source.
func (tb *TransBuilder) Pred(src string) *TransBuilder {
	e, err := expr.ParseExpr(src)
	if err != nil {
		tb.b.errorf("petri: transition %q predicate: %v", tb.name, err)
		return tb
	}
	tb.pred = e
	return tb
}

// Action attaches an action given as expr source.
func (tb *TransBuilder) Action(src string) *TransBuilder {
	p, err := expr.Parse(src)
	if err != nil {
		tb.b.errorf("petri: transition %q action: %v", tb.name, err)
		return tb
	}
	tb.action = p
	return tb
}

// Done returns the parent builder, for chaining.
func (tb *TransBuilder) Done() *Builder { return tb.b }

// Build validates and assembles the net.
func (b *Builder) Build() (*Net, error) {
	n := &Net{
		Name:     b.name,
		Vars:     b.vars,
		Tables:   b.tables,
		placeIdx: make(map[string]PlaceID, len(b.places)),
		transIdx: make(map[string]TransID, len(b.trans)),
	}
	errs := append([]error(nil), b.errs...)
	for _, p := range b.places {
		if _, dup := n.placeIdx[p.Name]; dup {
			errs = append(errs, fmt.Errorf("petri: duplicate place %q", p.Name))
			continue
		}
		n.placeIdx[p.Name] = PlaceID(len(n.Places))
		n.Places = append(n.Places, p)
	}
	resolve := func(trans string, arcs []namedArc, kind string) []Arc {
		out := make([]Arc, 0, len(arcs))
		for _, a := range arcs {
			id, ok := n.placeIdx[a.place]
			if !ok {
				errs = append(errs, fmt.Errorf("petri: transition %q %s arc refers to unknown place %q", trans, kind, a.place))
				continue
			}
			if a.weight < 1 {
				errs = append(errs, fmt.Errorf("petri: transition %q %s arc to %q has weight %d (must be >= 1)", trans, kind, a.place, a.weight))
				continue
			}
			out = append(out, Arc{Place: id, Weight: a.weight})
		}
		return out
	}
	for _, tb := range b.trans {
		if _, dup := n.transIdx[tb.name]; dup {
			errs = append(errs, fmt.Errorf("petri: duplicate transition %q", tb.name))
			continue
		}
		if _, clash := n.placeIdx[tb.name]; clash {
			errs = append(errs, fmt.Errorf("petri: transition %q has the same name as a place", tb.name))
		}
		if tb.freq < 0 {
			errs = append(errs, fmt.Errorf("petri: transition %q has negative frequency %g", tb.name, tb.freq))
		}
		if !tb.freqSet {
			tb.freq = 1
		}
		if tb.servers < 0 {
			errs = append(errs, fmt.Errorf("petri: transition %q has negative server count %d", tb.name, tb.servers))
		}
		tr := Transition{
			Name:      tb.name,
			In:        resolve(tb.name, tb.in, "input"),
			Out:       resolve(tb.name, tb.out, "output"),
			Inhib:     resolve(tb.name, tb.inhib, "inhibitor"),
			Firing:    tb.firing,
			Enabling:  tb.enabling,
			Freq:      tb.freq,
			Servers:   tb.servers,
			Predicate: tb.pred,
			Action:    tb.action,
		}
		n.transIdx[tb.name] = TransID(len(n.Trans))
		n.Trans = append(n.Trans, tr)
	}
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("petri: net %q has %d error(s):\n  %s", b.name, len(errs), joinLines(msgs))
	}
	n.buildIndexes()
	return n, nil
}

// MustBuild is Build that panics on error; for statically known models.
func (b *Builder) MustBuild() *Net {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

func joinLines(lines []string) string {
	s := ""
	for i, l := range lines {
		if i > 0 {
			s += "\n  "
		}
		s += l
	}
	return s
}

func (n *Net) buildIndexes() {
	// Collect the place→transition pairs (deduplicated: a place may feed
	// a transition through both an input and an inhibitor arc), counting
	// per place first so the adjacency flattens into one CSR index: a
	// shared id slice plus per-place offsets. Transitions are visited in
	// ascending id, so each place's list is sorted by construction.
	counts := make([]int32, len(n.Places)+1)
	seen := make(map[[2]int]bool)
	visit := func(emit func(p PlaceID, t TransID)) {
		for k := range seen {
			delete(seen, k)
		}
		for ti := range n.Trans {
			tr := &n.Trans[ti]
			for _, a := range tr.In {
				if k := [2]int{int(a.Place), ti}; !seen[k] {
					seen[k] = true
					emit(a.Place, TransID(ti))
				}
			}
			for _, a := range tr.Inhib {
				if k := [2]int{int(a.Place), ti}; !seen[k] {
					seen[k] = true
					emit(a.Place, TransID(ti))
				}
			}
		}
	}
	total := 0
	visit(func(p PlaceID, t TransID) {
		counts[p+1]++
		total++
	})
	n.affOff = counts
	for p := 1; p < len(n.affOff); p++ {
		n.affOff[p] += n.affOff[p-1]
	}
	n.affList = make([]TransID, total)
	next := make([]int32, len(n.Places))
	copy(next, n.affOff[:len(n.Places)])
	visit(func(p PlaceID, t TransID) {
		n.affList[next[p]] = t
		next[p]++
	})
	for ti := range n.Trans {
		if n.Trans[ti].Predicate != nil {
			n.predicated = append(n.predicated, TransID(ti))
		}
	}
}
