package petri

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// prefetchNet builds the Figure 1 subnet: 6 buffer words fetched
// two-at-a-time, bus mutual exclusion, inhibitors for pending operand
// fetches and result stores.
func prefetchNet(t *testing.T) *Net {
	t.Helper()
	b := NewBuilder("prefetch")
	b.Place("Empty_I_buffers", 6)
	b.Place("Full_I_buffers", 0)
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("pre_fetching", 0)
	b.Place("Operand_fetch_pending", 0)
	b.Place("Result_store_pending", 0)
	b.Place("Decoder_ready", 1)
	b.Place("Decoded_instruction", 0)
	b.Trans("Start_prefetch").
		In("Empty_I_buffers", 2).In("Bus_free").
		Inhib("Operand_fetch_pending").Inhib("Result_store_pending").
		Out("pre_fetching").Out("Bus_busy")
	b.Trans("End_prefetch").
		In("pre_fetching").In("Bus_busy").
		Out("Full_I_buffers", 2).Out("Bus_free").
		EnablingConst(5)
	b.Trans("Decode").
		In("Full_I_buffers").In("Decoder_ready").
		Out("Decoded_instruction").Out("Empty_I_buffers").
		FiringConst(1)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildLookups(t *testing.T) {
	n := prefetchNet(t)
	if n.NumPlaces() != 9 || n.NumTrans() != 3 {
		t.Fatalf("got %d places, %d transitions", n.NumPlaces(), n.NumTrans())
	}
	if id, ok := n.PlaceID("Bus_free"); !ok || n.Places[id].Name != "Bus_free" {
		t.Errorf("PlaceID lookup failed")
	}
	if _, ok := n.PlaceID("nope"); ok {
		t.Errorf("unknown place resolved")
	}
	if id, ok := n.TransIDByName("Decode"); !ok || n.Trans[id].Name != "Decode" {
		t.Errorf("TransIDByName lookup failed")
	}
	if !n.Timed() {
		t.Error("net should be timed")
	}
	if n.Interpreted() {
		t.Error("net should not be interpreted")
	}
}

func TestInitialMarkingIsCopy(t *testing.T) {
	n := prefetchNet(t)
	m := n.InitialMarking()
	m[0] = 99
	if n.InitialMarking()[0] != 6 {
		t.Error("InitialMarking aliases net state")
	}
}

func TestEnablementWeightsAndInhibitors(t *testing.T) {
	n := prefetchNet(t)
	m := n.InitialMarking()
	start := n.MustTrans("Start_prefetch")

	ok, err := n.Enabled(start, m, nil)
	if err != nil || !ok {
		t.Fatalf("Start_prefetch should be enabled initially: %v %v", ok, err)
	}
	// Weight 2: a single empty buffer word is not enough.
	m[n.MustPlace("Empty_I_buffers")] = 1
	if ok, _ := n.Enabled(start, m, nil); ok {
		t.Error("enabled with only 1 empty buffer word (needs 2)")
	}
	m[n.MustPlace("Empty_I_buffers")] = 2
	if ok, _ := n.Enabled(start, m, nil); !ok {
		t.Error("not enabled with exactly 2 empty buffer words")
	}
	// Inhibitor: a pending operand fetch blocks prefetching.
	m[n.MustPlace("Operand_fetch_pending")] = 1
	if ok, _ := n.Enabled(start, m, nil); ok {
		t.Error("enabled despite pending operand fetch (inhibitor)")
	}
	m[n.MustPlace("Operand_fetch_pending")] = 0
	// Bus taken.
	m[n.MustPlace("Bus_free")] = 0
	if ok, _ := n.Enabled(start, m, nil); ok {
		t.Error("enabled without the bus")
	}
}

func TestConsumeProduce(t *testing.T) {
	n := prefetchNet(t)
	m := n.InitialMarking()
	start := n.MustTrans("Start_prefetch")
	n.Consume(start, m)
	if m[n.MustPlace("Empty_I_buffers")] != 4 {
		t.Errorf("Empty_I_buffers = %d after consume, want 4", m[n.MustPlace("Empty_I_buffers")])
	}
	if m[n.MustPlace("Bus_free")] != 0 {
		t.Error("Bus_free not consumed")
	}
	n.Produce(start, m)
	if m[n.MustPlace("pre_fetching")] != 1 || m[n.MustPlace("Bus_busy")] != 1 {
		t.Error("outputs not produced")
	}
}

func TestPredicateEnablement(t *testing.T) {
	b := NewBuilder("interp")
	b.Place("p", 1)
	b.Place("q", 0)
	b.Var("nops", 2)
	b.Trans("fetch").In("p").Out("p").Pred("nops > 0").Action("nops = nops - 1")
	b.Trans("done").In("p").Out("q").Pred("nops == 0")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := n.NewEnv(rand.New(rand.NewSource(1)))
	m := n.InitialMarking()
	fetch, done := n.MustTrans("fetch"), n.MustTrans("done")
	if ok, _ := n.Enabled(fetch, m, env); !ok {
		t.Error("fetch should be enabled (nops=2)")
	}
	if ok, _ := n.Enabled(done, m, env); ok {
		t.Error("done should be disabled (nops=2)")
	}
	env.Set("nops", 0)
	if ok, _ := n.Enabled(fetch, m, env); ok {
		t.Error("fetch should be disabled (nops=0)")
	}
	if ok, _ := n.Enabled(done, m, env); !ok {
		t.Error("done should be enabled (nops=0)")
	}
	// Predicate without environment is an error.
	if _, err := n.Enabled(fetch, m, nil); err == nil {
		t.Error("predicate evaluation without env should fail")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  string
	}{
		{"dup place", func(b *Builder) { b.Place("p", 0).Place("p", 0) }, "duplicate place"},
		{"dup trans", func(b *Builder) { b.Place("p", 0); b.Trans("t").In("p"); b.Trans("t").In("p") }, "duplicate transition"},
		{"unknown place", func(b *Builder) { b.Trans("t").In("ghost") }, "unknown place"},
		{"bad weight", func(b *Builder) { b.Place("p", 0); b.Trans("t").In("p", 0) }, "weight 0"},
		{"neg initial", func(b *Builder) { b.Place("p", -1) }, "negative initial"},
		{"neg freq", func(b *Builder) { b.Place("p", 0); b.Trans("t").In("p").Freq(-2) }, "negative frequency"},
		{"bad pred", func(b *Builder) { b.Place("p", 0); b.Trans("t").In("p").Pred("1 +") }, "predicate"},
		{"bad action", func(b *Builder) { b.Place("p", 0); b.Trans("t").In("p").Action("x = ") }, "action"},
		{"name clash", func(b *Builder) { b.Place("x", 0); b.Trans("x").In("x") }, "same name"},
	}
	for _, c := range cases {
		b := NewBuilder("bad")
		c.build(b)
		_, err := b.Build()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestDelays(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	if v, err := Constant(5).Sample(r, nil); err != nil || v != 5 {
		t.Errorf("Constant: %d %v", v, err)
	}
	if v, ok := Constant(5).Const(); !ok || v != 5 {
		t.Errorf("Constant.Const: %d %v", v, ok)
	}
	u := Uniform{Lo: 3, Hi: 7}
	for i := 0; i < 200; i++ {
		v, err := u.Sample(r, nil)
		if err != nil || v < 3 || v > 7 {
			t.Fatalf("Uniform sample %d: %v", v, err)
		}
	}
	if _, ok := u.Const(); ok {
		t.Error("Uniform{3,7}.Const should be false")
	}
	if v, ok := (Uniform{Lo: 4, Hi: 4}).Const(); !ok || v != 4 {
		t.Error("degenerate Uniform should be const")
	}
	ch := Choice{Durations: []Time{1, 50}, Weights: []float64{0.95, 0.05}}
	counts := map[Time]int{}
	for i := 0; i < 2000; i++ {
		v, err := ch.Sample(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts[v]++
	}
	if counts[1] < 1700 || counts[50] < 30 {
		t.Errorf("Choice sampling skewed: %v", counts)
	}
	if _, err := (Choice{}).Sample(r, nil); err == nil {
		t.Error("empty Choice should fail")
	}
	if _, err := (Uniform{Lo: 5, Hi: 1}).Sample(r, nil); err == nil {
		t.Error("inverted Uniform should fail")
	}
}

func TestExprDelay(t *testing.T) {
	b := NewBuilder("n")
	b.Place("p", 1)
	b.Var("cycles", 9)
	b.Trans("t").In("p").Firing(ExprDelay{E: mustExpr(t, "cycles * 2")})
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := n.NewEnv(rand.New(rand.NewSource(1)))
	v, err := n.Trans[0].Firing.Sample(nil, env)
	if err != nil || v != 18 {
		t.Errorf("expr delay = %d, %v", v, err)
	}
	// Negative durations are rejected.
	d := ExprDelay{E: mustExpr(t, "0 - 4")}
	if _, err := d.Sample(nil, env); err == nil {
		t.Error("negative expr delay should fail")
	}
	// Missing env is rejected.
	if _, err := d.Sample(nil, nil); err == nil {
		t.Error("expr delay without env should fail")
	}
}

func mustExpr(t *testing.T, src string) expr.Expr {
	t.Helper()
	e, err := expr.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMarkingHelpers(t *testing.T) {
	m := Marking{1, 0, 3}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Error("Clone aliases")
	}
	if !m.Equal(Marking{1, 0, 3}) || m.Equal(Marking{1, 0}) || m.Equal(Marking{1, 1, 3}) {
		t.Error("Equal wrong")
	}
	if m.Total() != 4 {
		t.Error("Total wrong")
	}
	if m.Key() != "1,0,3" {
		t.Errorf("Key = %q", m.Key())
	}
	p, err := ParseMarking("1,0,3")
	if err != nil || !p.Equal(m) {
		t.Errorf("ParseMarking: %v %v", p, err)
	}
	if _, err := ParseMarking("1,x"); err == nil {
		t.Error("bad marking should fail to parse")
	}
	if !(Marking{2, 1}).Covers(Marking{1, 1}) || (Marking{0, 1}).Covers(Marking{1, 1}) {
		t.Error("Covers wrong")
	}
}

func TestDescribeMentionsEverything(t *testing.T) {
	n := prefetchNet(t)
	d := n.Describe()
	for _, want := range []string{
		"net prefetch", "place Empty_I_buffers init 6", "trans Start_prefetch",
		"Empty_I_buffers*2", "inhib Operand_fetch_pending", "enabling 5", "firing 1",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestEncodeFiringAsEnabling(t *testing.T) {
	n := prefetchNet(t)
	enc, err := EncodeFiringAsEnabling(n)
	if err != nil {
		t.Fatal(err)
	}
	// Decode (firing 1) must be split; End_prefetch (enabling) untouched.
	if _, ok := enc.TransIDByName("Decode__start"); !ok {
		t.Error("missing Decode__start")
	}
	if _, ok := enc.TransIDByName("Decode__end"); !ok {
		t.Error("missing Decode__end")
	}
	if _, ok := enc.PlaceID("Decode__busy"); !ok {
		t.Error("missing Decode__busy place")
	}
	if _, ok := enc.TransIDByName("End_prefetch"); !ok {
		t.Error("End_prefetch should be preserved")
	}
	endID := enc.MustTrans("Decode__end")
	if _, ok := enc.Trans[endID].Enabling.Const(); !ok {
		t.Error("Decode__end should have constant enabling time")
	}
	// A transition with both time kinds is rejected.
	b := NewBuilder("both")
	b.Place("p", 1)
	b.Trans("t").In("p").FiringConst(1).EnablingConst(1)
	bn, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeFiringAsEnabling(bn); err == nil {
		t.Error("both-times transition should be rejected")
	}
}

func TestEncodePreservesFrequencies(t *testing.T) {
	// Regression: the encoder must copy frequencies through the
	// builder's setter; writing the field directly let Build reset every
	// frequency to the default, silently flattening a 70-20-10 mix.
	b := NewBuilder("mix")
	b.Place("p", 1)
	b.Place("q", 0)
	b.Trans("common").In("p").Out("q").Freq(70).FiringConst(1)
	b.Trans("rare").In("p").Out("q").Freq(10)
	b.Trans("plain").In("p").Out("q")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeFiringAsEnabling(n)
	if err != nil {
		t.Fatal(err)
	}
	if f := enc.Trans[enc.MustTrans("common__start")].Freq; f != 70 {
		t.Errorf("common__start freq = %g, want 70", f)
	}
	if f := enc.Trans[enc.MustTrans("rare")].Freq; f != 10 {
		t.Errorf("rare freq = %g, want 10", f)
	}
	if f := enc.Trans[enc.MustTrans("plain")].Freq; f != 1 {
		t.Errorf("plain freq = %g, want 1", f)
	}
}

func TestEncodePreservesServers(t *testing.T) {
	b := NewBuilder("srv")
	b.Place("in", 5)
	b.Place("out", 0)
	b.Trans("t").In("in").Out("out").FiringConst(3).Servers(2)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := EncodeFiringAsEnabling(n)
	if err != nil {
		t.Fatal(err)
	}
	idle, ok := enc.PlaceID("t__idle")
	if !ok {
		t.Fatal("missing t__idle place")
	}
	if enc.Places[idle].Initial != 2 {
		t.Errorf("t__idle initial = %d, want 2", enc.Places[idle].Initial)
	}
}

func TestAffectedIndex(t *testing.T) {
	n := prefetchNet(t)
	aff := n.Affected(n.MustPlace("Bus_free"))
	found := false
	for _, tid := range aff {
		if n.Trans[tid].Name == "Start_prefetch" {
			found = true
		}
	}
	if !found {
		t.Error("Start_prefetch not in Affected(Bus_free)")
	}
	// Output-only places affect nothing.
	if len(n.Affected(n.MustPlace("Decoded_instruction"))) != 0 {
		t.Error("Decoded_instruction should affect no transitions")
	}
	// Inhibitor arcs count as affecting.
	aff = n.Affected(n.MustPlace("Operand_fetch_pending"))
	if len(aff) != 1 || n.Trans[aff[0]].Name != "Start_prefetch" {
		t.Error("inhibitor place should affect Start_prefetch")
	}
}

func TestDOT(t *testing.T) {
	n := prefetchNet(t)
	dot := DOT(n)
	for _, want := range []string{
		"digraph", "shape=circle", "shape=box",
		"Start_prefetch", "Empty_I_buffers",
		"arrowhead=odot", // inhibitor arcs
		`[label="2"]`,    // weighted arc
		"E=5",            // enabling time annotation
		"F=1",            // firing time annotation
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

// Property: Consume followed by Produce conserves tokens exactly when
// input and output weight sums are equal.
func TestQuickConsumeProduceConservation(t *testing.T) {
	f := func(w8 uint8, init uint8) bool {
		w := int(w8%5) + 1
		b := NewBuilder("q")
		b.Place("a", int(init%50)+w)
		b.Place("b", 0)
		b.Trans("t").In("a", w).Out("b", w)
		n, err := b.Build()
		if err != nil {
			return false
		}
		m := n.InitialMarking()
		before := m.Total()
		n.Consume(0, m)
		n.Produce(0, m)
		return m.Total() == before && m[1] == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: enablement is monotone in added tokens for nets without
// inhibitor arcs.
func TestQuickEnablementMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		bd := NewBuilder("q")
		bd.Place("p", int(a%10))
		bd.Place("q", int(b%10))
		bd.Trans("t").In("p", 3).In("q", 2)
		n, err := bd.Build()
		if err != nil {
			return false
		}
		m := n.InitialMarking()
		en1, _ := n.Enabled(0, m, nil)
		m[0]++
		m[1]++
		en2, _ := n.Enabled(0, m, nil)
		return !en1 || en2 // en1 => en2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
