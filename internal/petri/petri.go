// Package petri implements the extended Timed Petri Net model of Razouk's
// P-NUT system (Section 1 of the paper):
//
//   - weighted input/output arcs (e.g. pre-fetching two buffer words at a
//     time is an input arc of weight 2);
//   - inhibitor arcs (pre-conditions of the form "no operand fetch is
//     pending");
//   - firing times: while a transition fires, its tokens are "neither on
//     the inputs nor on the outputs";
//   - enabling times: a transition must be continuously enabled for its
//     enabling delay before it may fire — the natural model for memory
//     latencies and protocol timeouts;
//   - relative firing frequencies, from which firing probabilities among
//     simultaneously ripe transitions are computed dynamically [WPS86];
//   - predicates and actions (interpreted nets, Section 3), written in the
//     expr language, which let one table-driven transition replace a
//     subnet per instruction type.
//
// A Net is immutable once built (see Builder); simulation state lives in
// package sim, markings in the Marking type.
package petri

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Time is a point or duration on the model's discrete clock. The paper's
// models count processor cycles.
type Time = int64

// PlaceID indexes a place within its Net.
type PlaceID int

// TransID indexes a transition within its Net.
type TransID int

// Place is a condition holder. Tokens on a place represent the condition
// being true (or, with several tokens, a count such as free buffer words).
type Place struct {
	Name    string
	Initial int
}

// Arc connects a place to a transition (input or inhibitor) or a
// transition to a place (output) with a multiplicity.
type Arc struct {
	Place  PlaceID
	Weight int
}

// Transition is an event. Its pre-conditions are the In arcs (tokens
// required), Inhib arcs (tokens forbidden) and the Predicate; its
// post-conditions are the Out arcs and the Action.
type Transition struct {
	Name  string
	In    []Arc
	Out   []Arc
	Inhib []Arc

	// Firing is the firing-time distribution; nil means instantaneous.
	Firing Delay
	// Enabling is the enabling-time distribution; nil means none. The
	// transition must be continuously enabled this long before it may fire.
	Enabling Delay

	// Freq is the relative firing frequency used to resolve conflicts
	// probabilistically. Zero is treated as 1.
	Freq float64

	// Servers caps the number of simultaneous firings; 0 means unlimited
	// (a queueing-network server pool). A physical unit is Servers=1.
	Servers int

	// Predicate, if non-nil, is an additional data-dependent
	// pre-condition evaluated against the net's variable environment.
	Predicate expr.Expr

	// Action, if non-nil, runs when a firing completes (when the
	// post-conditions become true).
	Action *expr.Program
}

// EffFreq returns the conflict-resolution weight. The Builder defaults
// unset frequencies to 1; an explicit 0 means the transition never fires
// and the simulator excludes it from selection.
func (t *Transition) EffFreq() float64 {
	if t.Freq < 0 {
		return 0
	}
	return t.Freq
}

// Timeless reports whether the transition has neither firing nor enabling
// delay (it can occur in zero time once enabled).
func (t *Transition) Timeless() bool { return t.Firing == nil && t.Enabling == nil }

// Net is an immutable extended Timed Petri Net.
type Net struct {
	Name   string
	Places []Place
	Trans  []Transition

	// Vars and Tables seed the variable environment of interpreted nets
	// (e.g. the operands table of Figure 4).
	Vars   map[string]int64
	Tables map[string][]int64

	placeIdx map[string]PlaceID
	transIdx map[string]TransID

	// The place→transition adjacency ("which transitions must be
	// rechecked when this place's marking changes": p appears among
	// their In or Inhib arcs) is stored flattened in CSR form — one
	// shared id slice plus per-place offsets — so the simulator's
	// per-event refresh walks contiguous memory instead of chasing one
	// heap-allocated slice per place. affOff has NumPlaces+1 entries;
	// place p's transitions are affList[affOff[p]:affOff[p+1]], in
	// ascending transition id.
	affOff  []int32
	affList []TransID
	// predicated lists transitions carrying predicates; their enablement
	// can change whenever the environment changes.
	predicated []TransID
}

// NumPlaces returns the number of places.
func (n *Net) NumPlaces() int { return len(n.Places) }

// NumTrans returns the number of transitions.
func (n *Net) NumTrans() int { return len(n.Trans) }

// PlaceID resolves a place name. The second result is false if the name
// is unknown.
func (n *Net) PlaceID(name string) (PlaceID, bool) {
	id, ok := n.placeIdx[name]
	return id, ok
}

// TransIDByName resolves a transition name.
func (n *Net) TransIDByName(name string) (TransID, bool) {
	id, ok := n.transIdx[name]
	return id, ok
}

// MustPlace resolves a place name, panicking on unknown names. Intended
// for statically known model code and tests.
func (n *Net) MustPlace(name string) PlaceID {
	id, ok := n.placeIdx[name]
	if !ok {
		panic(fmt.Sprintf("petri: unknown place %q in net %q", name, n.Name))
	}
	return id
}

// MustTrans resolves a transition name, panicking on unknown names.
func (n *Net) MustTrans(name string) TransID {
	id, ok := n.transIdx[name]
	if !ok {
		panic(fmt.Sprintf("petri: unknown transition %q in net %q", name, n.Name))
	}
	return id
}

// Affected returns the transitions whose enablement may change when the
// marking of p changes, in ascending transition id. The returned slice
// is a view into the net's shared adjacency index; callers must not
// modify it.
func (n *Net) Affected(p PlaceID) []TransID { return n.affList[n.affOff[p]:n.affOff[p+1]] }

// Predicated returns the transitions that carry predicates.
func (n *Net) Predicated() []TransID { return n.predicated }

// InitialMarking returns a fresh copy of the net's initial marking.
func (n *Net) InitialMarking() Marking {
	return n.InitialMarkingInto(nil)
}

// InitialMarkingInto copies the initial marking into dst, reusing its
// storage when it is large enough, and returns the result. Replication
// drivers reset a marking between runs this way without allocating.
func (n *Net) InitialMarkingInto(dst Marking) Marking {
	if cap(dst) < len(n.Places) {
		dst = make(Marking, len(n.Places))
	}
	dst = dst[:len(n.Places)]
	for i, p := range n.Places {
		dst[i] = p.Initial
	}
	return dst
}

// NewEnv returns a fresh variable environment seeded with the net's
// declared variables and tables. r may be nil for analyses that must be
// deterministic (irand then fails).
func (n *Net) NewEnv(r randSource) *expr.Env {
	env := expr.NewEnv(nil)
	env.Rand = r
	for k, v := range n.Vars {
		env.Set(k, v)
	}
	for k, v := range n.Tables {
		env.SetTable(k, v)
	}
	return env
}

// Interpreted reports whether any transition carries a predicate or
// action (i.e. the net has a data part).
func (n *Net) Interpreted() bool {
	for i := range n.Trans {
		if n.Trans[i].Predicate != nil || n.Trans[i].Action != nil {
			return true
		}
	}
	return false
}

// Timed reports whether any transition carries a firing or enabling delay.
func (n *Net) Timed() bool {
	for i := range n.Trans {
		if !n.Trans[i].Timeless() {
			return true
		}
	}
	return false
}

// Enabled reports whether transition t is enabled in marking m under
// environment env: every input place holds at least the arc weight, every
// inhibitor place holds fewer than the arc weight, and the predicate (if
// any) is true. env may be nil when the net is not interpreted.
func (n *Net) Enabled(t TransID, m Marking, env *expr.Env) (bool, error) {
	tr := &n.Trans[t]
	for _, a := range tr.In {
		if m[a.Place] < a.Weight {
			return false, nil
		}
	}
	for _, a := range tr.Inhib {
		if m[a.Place] >= a.Weight {
			return false, nil
		}
	}
	if tr.Predicate != nil {
		if env == nil {
			return false, fmt.Errorf("petri: transition %q has a predicate but no environment was supplied", tr.Name)
		}
		ok, err := expr.EvalBool(tr.Predicate, env)
		if err != nil {
			return false, fmt.Errorf("petri: predicate of %q: %w", tr.Name, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Consume removes transition t's input tokens from m. The caller must
// have established enablement.
func (n *Net) Consume(t TransID, m Marking) {
	for _, a := range n.Trans[t].In {
		m[a.Place] -= a.Weight
	}
}

// Produce adds transition t's output tokens to m.
func (n *Net) Produce(t TransID, m Marking) {
	for _, a := range n.Trans[t].Out {
		m[a.Place] += a.Weight
	}
}

// String returns a one-line summary.
func (n *Net) String() string {
	return fmt.Sprintf("net %q: %d places, %d transitions", n.Name, len(n.Places), len(n.Trans))
}

// Describe returns a multi-line human-readable description of the net:
// the textual form the paper says fits in "roughly 25 lines" for the
// pipeline model.
func (n *Net) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net %s\n", n.Name)
	for _, p := range n.Places {
		if p.Initial != 0 {
			fmt.Fprintf(&b, "place %s init %d\n", p.Name, p.Initial)
		} else {
			fmt.Fprintf(&b, "place %s\n", p.Name)
		}
	}
	arcList := func(arcs []Arc) string {
		parts := make([]string, len(arcs))
		for i, a := range arcs {
			if a.Weight != 1 {
				parts[i] = fmt.Sprintf("%s*%d", n.Places[a.Place].Name, a.Weight)
			} else {
				parts[i] = n.Places[a.Place].Name
			}
		}
		return strings.Join(parts, ", ")
	}
	for i := range n.Trans {
		tr := &n.Trans[i]
		fmt.Fprintf(&b, "trans %s\n", tr.Name)
		if len(tr.In) > 0 {
			fmt.Fprintf(&b, "  in %s\n", arcList(tr.In))
		}
		if len(tr.Out) > 0 {
			fmt.Fprintf(&b, "  out %s\n", arcList(tr.Out))
		}
		if len(tr.Inhib) > 0 {
			fmt.Fprintf(&b, "  inhib %s\n", arcList(tr.Inhib))
		}
		if tr.Firing != nil {
			fmt.Fprintf(&b, "  firing %s\n", tr.Firing)
		}
		if tr.Enabling != nil {
			fmt.Fprintf(&b, "  enabling %s\n", tr.Enabling)
		}
		if tr.Freq > 0 && tr.Freq != 1 {
			fmt.Fprintf(&b, "  freq %g\n", tr.Freq)
		}
		if tr.Servers > 0 {
			fmt.Fprintf(&b, "  servers %d\n", tr.Servers)
		}
		if tr.Predicate != nil {
			fmt.Fprintf(&b, "  pred { %s }\n", tr.Predicate)
		}
		if tr.Action != nil {
			fmt.Fprintf(&b, "  action { %s }\n", tr.Action)
		}
	}
	return b.String()
}
