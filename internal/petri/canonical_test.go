package petri_test

// Canonical-hash property tests: perturbations of the same .pn source
// that do not change the model (formatting, declaration order, arc
// order, explicit defaults, net name) must hash equal, and every
// semantic edit must hash different. The external test package lets us
// drive the hash through the real parser.

import (
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/ptl"
)

const canonicalBase = `
net demo
var latency 5
table exec 1 2 5
place A init 2
place B
place C init 1
trans t1
  in A*2, C
  out B
  inhib B
  firing uniform(1, 3)
  freq 2
trans t2
  in B
  out A*2
  enabling expr{ latency }
  servers 1
  pred { latency > 0 }
  action { latency = latency - 1; }
`

func mustParse(t *testing.T, src string) *petri.Net {
	t.Helper()
	n, err := ptl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return n
}

func TestCanonicalHashFormattingInvariance(t *testing.T) {
	base := mustParse(t, canonicalBase).CanonicalHashString()

	equivalents := map[string]string{
		"comments and blank lines": `
# a comment
net demo

var latency 5
table exec 1 2 5
place A init 2
# another comment
place B
place C init 1
trans t1
  in A*2, C
  out B
  inhib B
  firing uniform(1, 3)
  freq 2

trans t2
  in B
  out A*2
  enabling expr{ latency }
  servers 1
  pred { latency > 0 }
  action { latency = latency - 1; }
`,
		"reordered declarations": `
net demo
place C init 1
place B
place A init 2
table exec 1 2 5
var latency 5
trans t2
  in B
  out A*2
  enabling expr{ latency }
  servers 1
  pred { latency > 0 }
  action { latency = latency - 1; }
trans t1
  in C, A*2
  inhib B
  out B
  firing uniform(1, 3)
  freq 2
`,
		"renamed net, explicit default freq": `
net renamed
var latency 5
table exec 1 2 5
place A init 2
place B
place C init 1
trans t1
  in A*2, C
  out B
  inhib B
  firing uniform(1, 3)
  freq 2
trans t2
  in B
  out A*2
  enabling expr{ latency }
  freq 1
  servers 1
  pred { latency > 0 }
  action { latency = latency - 1; }
`,
	}
	for name, src := range equivalents {
		if got := mustParse(t, src).CanonicalHashString(); got != base {
			t.Errorf("%s: hash %s != base %s (same model must hash equal)", name, got, base)
		}
	}
}

func TestCanonicalHashSemanticSensitivity(t *testing.T) {
	base := mustParse(t, canonicalBase).CanonicalHashString()

	edits := map[string][2]string{
		"initial marking":   {"place A init 2", "place A init 3"},
		"arc weight":        {"in A*2, C", "in A*3, C"},
		"dropped inhibitor": {"  inhib B\n", ""},
		"firing delay":      {"firing uniform(1, 3)", "firing uniform(1, 4)"},
		"enabling delay":    {"enabling expr{ latency }", "enabling expr{ latency + 1 }"},
		"frequency":         {"freq 2", "freq 3"},
		"server cap":        {"servers 1", "servers 2"},
		"predicate":         {"pred { latency > 0 }", "pred { latency > 1 }"},
		"action":            {"action { latency = latency - 1; }", "action { latency = latency - 2; }"},
		"var value":         {"var latency 5", "var latency 6"},
		"table value":       {"table exec 1 2 5", "table exec 1 2 6"},
		// Names are semantic (metrics and observers select by them), so a
		// consistent rename — declaration and every arc reference — is an
		// edit, not alpha-equivalence. "B" appears only as the place name.
		"place rename":      {"B", "BX"},
		"transition rename": {"trans t2", "trans t9"},
	}
	seen := map[string]string{base: "base"}
	for name, ed := range edits {
		src := strings.Replace(canonicalBase, ed[0], ed[1], -1)
		if src == canonicalBase {
			t.Fatalf("%s: edit %q not found in source", name, ed[0])
		}
		got := mustParse(t, src).CanonicalHashString()
		if got == base {
			t.Errorf("%s: semantic edit did not change the hash", name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: hash collides with %s", name, prev)
		}
		seen[got] = name
	}
}

func TestCanonicalHashWithVars(t *testing.T) {
	n := mustParse(t, canonicalBase)
	over, err := n.WithVars(map[string]int64{"latency": 9})
	if err != nil {
		t.Fatal(err)
	}
	if over.CanonicalHashString() == n.CanonicalHashString() {
		t.Fatal("WithVars override must change the hash (vars are resolved values)")
	}
	same, err := n.WithVars(map[string]int64{"latency": 5})
	if err != nil {
		t.Fatal(err)
	}
	if same.CanonicalHashString() != n.CanonicalHashString() {
		t.Fatal("WithVars to the same value must not change the hash")
	}
}

func TestCanonicalHashFixtureStability(t *testing.T) {
	// The fixture nets must keep hashing without error and stay
	// distinct from one another.
	srcs := map[string]string{"pipeline": canonicalBase}
	hashes := map[string]string{}
	for name, src := range srcs {
		hashes[name] = mustParse(t, src).CanonicalHashString()
	}
	if len(hashes) != len(srcs) {
		t.Fatalf("hash count %d != source count %d", len(hashes), len(srcs))
	}
	for name, h := range hashes {
		if len(h) != 64 {
			t.Errorf("%s: hash %q is not 64 hex chars", name, h)
		}
	}
}
