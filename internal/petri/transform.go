package petri

import "fmt"

// EncodeFiringAsEnabling returns a new net in which every transition with
// a firing time is replaced by the paper's enabling-time encoding:
//
//	t (firing F)   becomes   t__start : inputs -> t__busy   (instantaneous)
//	                         t__end   : t__busy -> outputs  (enabling F)
//
// The paper observes that "firing times can be easily simulated using
// enabling times but the opposite is not true" — this is the mechanical
// simulation. The encoding preserves event timing exactly for
// single-server transitions but differs observably in the statistics:
// during the delay the in-flight tokens sit on the visible t__busy place
// instead of vanishing into the firing transition, and the transition's
// concurrent-firings statistic moves to the token count of t__busy. The
// ablation bench (BenchmarkAblationTimeEncoding) quantifies this.
//
// A Servers cap is preserved with an idle-tokens place t__idle holding
// Servers tokens. Frequencies stay on t__start (the competing event);
// actions move to t__end (they run when post-conditions become true);
// predicates stay on t__start.
func EncodeFiringAsEnabling(n *Net) (*Net, error) {
	b := NewBuilder(n.Name + "__enc")
	for _, p := range n.Places {
		b.Place(p.Name, p.Initial)
	}
	for k, v := range n.Vars {
		b.Var(k, v)
	}
	for k, v := range n.Tables {
		b.Table(k, v...)
	}
	pname := func(id PlaceID) string { return n.Places[id].Name }
	for ti := range n.Trans {
		tr := &n.Trans[ti]
		if tr.Firing == nil {
			tb := b.Trans(tr.Name)
			copyArcs(tb, n, tr)
			tb.firing = nil
			tb.enabling = tr.Enabling
			tb.Freq(tr.Freq)
			tb.servers = tr.Servers
			tb.pred = tr.Predicate
			tb.action = tr.Action
			continue
		}
		if tr.Enabling != nil {
			return nil, fmt.Errorf("petri: transition %q has both firing and enabling times; encode manually", tr.Name)
		}
		busy := tr.Name + "__busy"
		b.Place(busy, 0)
		start := b.Trans(tr.Name + "__start")
		for _, a := range tr.In {
			start.In(pname(a.Place), a.Weight)
		}
		for _, a := range tr.Inhib {
			start.Inhib(pname(a.Place), a.Weight)
		}
		start.Out(busy)
		start.Freq(tr.Freq)
		start.pred = tr.Predicate
		if tr.Servers > 0 {
			idle := tr.Name + "__idle"
			b.Place(idle, tr.Servers)
			start.In(idle)
		}
		end := b.Trans(tr.Name + "__end")
		end.In(busy)
		for _, a := range tr.Out {
			end.Out(pname(a.Place), a.Weight)
		}
		end.enabling = tr.Firing
		end.action = tr.Action
		if tr.Servers > 0 {
			end.Out(tr.Name + "__idle")
		}
	}
	return b.Build()
}

func copyArcs(tb *TransBuilder, n *Net, tr *Transition) {
	for _, a := range tr.In {
		tb.In(n.Places[a.Place].Name, a.Weight)
	}
	for _, a := range tr.Out {
		tb.Out(n.Places[a.Place].Name, a.Weight)
	}
	for _, a := range tr.Inhib {
		tb.Inhib(n.Places[a.Place].Name, a.Weight)
	}
}

// WithVars returns a copy of the net whose variable environment has the
// given overrides applied. Every override must name an existing var —
// a sweep over net variables should catch typos, not silently add
// unused ones. The structural part of the net is shared with the
// original (it is immutable); only the Vars map is fresh, which is
// exactly what Net.NewEnv reads when a run starts.
func (n *Net) WithVars(over map[string]int64) (*Net, error) {
	clone := *n
	clone.Vars = make(map[string]int64, len(n.Vars))
	for k, v := range n.Vars {
		clone.Vars[k] = v
	}
	for k, v := range over {
		if _, ok := clone.Vars[k]; !ok {
			return nil, fmt.Errorf("petri: net %s has no var %q", n.Name, k)
		}
		clone.Vars[k] = v
	}
	return &clone, nil
}
