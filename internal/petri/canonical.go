// Canonical hashing gives a net a content address: two nets that are
// the same model — regardless of declaration order, formatting of the
// source they were parsed from, or the name they carry — hash to the
// same SHA-256, and any semantic edit (a weight, a delay, an initial
// marking, a var value) changes it. The simulation service keys its
// result cache on this digest, so a million submissions of the same
// design cost one simulation.
package petri

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// canonicalVersion tags the encoding; bump it if the canonical form
// ever changes meaning, so old cache keys cannot alias new ones.
const canonicalVersion = "pnut-net-canonical-v1"

// CanonicalHash returns a deterministic SHA-256 over a canonical
// encoding of the net's structure and data:
//
//   - places sorted by name, with initial markings;
//   - transitions sorted by name, each with its input/output/inhibitor
//     arcs sorted by place name, delay distributions, frequency,
//     server cap, predicate and action (rendered in source form);
//   - vars and tables sorted by name, with their resolved values
//     (a net produced by WithVars hashes by the overridden values).
//
// The net's Name is informational and excluded, exactly as the
// cell-stream grid comparison (experiment.CellMeta.SameGrid) treats
// it. Builder and parser normalizations apply before hashing: an
// unset frequency is stored as 1, so "freq 1" and no freq line hash
// equal — they are the same model.
func (n *Net) CanonicalHash() [32]byte {
	h := sha256.New()
	n.writeCanonical(h)
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// CanonicalHashString returns CanonicalHash hex-encoded.
func (n *Net) CanonicalHashString() string {
	sum := n.CanonicalHash()
	return hex.EncodeToString(sum[:])
}

// writeCanonical streams the canonical encoding. Every field is
// length-delimited by construction (newline-terminated records with
// fixed tags), so distinct structures cannot collide by concatenation.
func (n *Net) writeCanonical(w io.Writer) {
	fmt.Fprintf(w, "%s\n", canonicalVersion)

	places := make([]int, len(n.Places))
	for i := range places {
		places[i] = i
	}
	sort.Slice(places, func(a, b int) bool { return n.Places[places[a]].Name < n.Places[places[b]].Name })
	for _, i := range places {
		p := &n.Places[i]
		fmt.Fprintf(w, "place %q %d\n", p.Name, p.Initial)
	}

	trans := make([]int, len(n.Trans))
	for i := range trans {
		trans[i] = i
	}
	sort.Slice(trans, func(a, b int) bool { return n.Trans[trans[a]].Name < n.Trans[trans[b]].Name })
	for _, i := range trans {
		t := &n.Trans[i]
		fmt.Fprintf(w, "trans %q\n", t.Name)
		n.writeArcs(w, "in", t.In)
		n.writeArcs(w, "out", t.Out)
		n.writeArcs(w, "inhib", t.Inhib)
		if t.Firing != nil {
			fmt.Fprintf(w, " firing %s\n", t.Firing)
		}
		if t.Enabling != nil {
			fmt.Fprintf(w, " enabling %s\n", t.Enabling)
		}
		// The Builder stores unset frequencies as 1; encode the stored
		// value so an explicit freq 1 and the default are one model.
		fmt.Fprintf(w, " freq %s\n", strconv.FormatFloat(t.Freq, 'g', -1, 64))
		fmt.Fprintf(w, " servers %d\n", t.Servers)
		if t.Predicate != nil {
			fmt.Fprintf(w, " pred %s\n", t.Predicate)
		}
		if t.Action != nil {
			fmt.Fprintf(w, " action %s\n", t.Action)
		}
	}

	vars := make([]string, 0, len(n.Vars))
	for k := range n.Vars {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	for _, k := range vars {
		fmt.Fprintf(w, "var %q %d\n", k, n.Vars[k])
	}

	tables := make([]string, 0, len(n.Tables))
	for k := range n.Tables {
		tables = append(tables, k)
	}
	sort.Strings(tables)
	for _, k := range tables {
		fmt.Fprintf(w, "table %q", k)
		for _, v := range n.Tables[k] {
			fmt.Fprintf(w, " %d", v)
		}
		fmt.Fprintln(w)
	}
}

// writeArcs encodes one arc list sorted by place name. Arc order in
// the source is presentation, not semantics: firing consumes and
// produces atomically, so [a, b] and [b, a] are the same transition.
func (n *Net) writeArcs(w io.Writer, tag string, arcs []Arc) {
	if len(arcs) == 0 {
		return
	}
	sorted := make([]Arc, len(arcs))
	copy(sorted, arcs)
	sort.Slice(sorted, func(a, b int) bool {
		return n.Places[sorted[a].Place].Name < n.Places[sorted[b].Place].Name
	})
	fmt.Fprintf(w, " %s", tag)
	for _, a := range sorted {
		fmt.Fprintf(w, " %q*%d", n.Places[a.Place].Name, a.Weight)
	}
	fmt.Fprintln(w)
}
