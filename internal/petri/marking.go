package petri

import (
	"fmt"
	"strconv"
	"strings"
)

// Marking is a token count per place, indexed by PlaceID.
type Marking []int

// Clone returns an independent copy.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether two markings hold identical counts.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Total returns the total number of tokens.
func (m Marking) Total() int {
	t := 0
	for _, c := range m {
		t += c
	}
	return t
}

// Key returns a compact string usable as a map key.
func (m Marking) Key() string {
	var b strings.Builder
	for i, c := range m {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// ParseMarking parses the Key format back into a Marking.
func ParseMarking(s string) (Marking, error) {
	if s == "" {
		return Marking{}, nil
	}
	parts := strings.Split(s, ",")
	m := make(Marking, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("petri: bad marking component %q: %w", p, err)
		}
		m[i] = v
	}
	return m, nil
}

// Format renders the marking with place names, skipping empty places:
// "Bus_free=1 Empty_I_buffers=6".
func (m Marking) Format(n *Net) string {
	var parts []string
	for i, c := range m {
		if c != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", n.Places[i].Name, c))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// Covers reports whether m >= o componentwise (used by the coverability
// construction in package reach).
func (m Marking) Covers(o Marking) bool {
	for i := range m {
		if m[i] < o[i] {
			return false
		}
	}
	return true
}
