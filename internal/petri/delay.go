package petri

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/expr"
)

// randSource is the random source threaded through delay sampling and
// conflict resolution. It is *rand.Rand everywhere; the alias keeps the
// public signatures readable.
type randSource = *rand.Rand

// Delay is a firing-time or enabling-time distribution. Implementations
// must be immutable.
type Delay interface {
	// Sample draws a duration. env carries the interpreted net's data
	// state for table-driven delays; it may be nil for data-independent
	// distributions.
	Sample(r randSource, env *expr.Env) (Time, error)
	// Const returns the duration and true if the distribution is a single
	// constant; the timed reachability analyzer requires constant delays.
	Const() (Time, bool)
	// String renders the distribution in .pn surface syntax.
	String() string
}

// Constant is a fixed delay of N ticks.
type Constant Time

// Sample implements Delay.
func (c Constant) Sample(randSource, *expr.Env) (Time, error) { return Time(c), nil }

// Const implements Delay.
func (c Constant) Const() (Time, bool) { return Time(c), true }

func (c Constant) String() string { return fmt.Sprintf("%d", Time(c)) }

// Uniform is an integer-uniform delay on [Lo, Hi], inclusive.
type Uniform struct {
	Lo, Hi Time
}

// Sample implements Delay.
func (u Uniform) Sample(r randSource, _ *expr.Env) (Time, error) {
	if u.Lo > u.Hi {
		return 0, fmt.Errorf("petri: uniform delay with empty range [%d,%d]", u.Lo, u.Hi)
	}
	if u.Lo == u.Hi {
		return u.Lo, nil
	}
	if r == nil {
		return 0, fmt.Errorf("petri: uniform delay sampled without a random source")
	}
	return u.Lo + r.Int63n(u.Hi-u.Lo+1), nil
}

// Const implements Delay.
func (u Uniform) Const() (Time, bool) { return u.Lo, u.Lo == u.Hi }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%d, %d)", u.Lo, u.Hi) }

// Choice draws one of Durations with probability proportional to the
// corresponding weight. It models distributions such as the paper's
// execution times 1,2,5,10,50 with probabilities .5,.3,.1,.05,.05 when a
// single transition (rather than five competing ones) is preferred.
type Choice struct {
	Durations []Time
	Weights   []float64
}

// Sample implements Delay.
func (c Choice) Sample(r randSource, _ *expr.Env) (Time, error) {
	if len(c.Durations) == 0 || len(c.Durations) != len(c.Weights) {
		return 0, fmt.Errorf("petri: choice delay with %d durations, %d weights", len(c.Durations), len(c.Weights))
	}
	var total float64
	for _, w := range c.Weights {
		if w < 0 {
			return 0, fmt.Errorf("petri: choice delay with negative weight %g", w)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("petri: choice delay with zero total weight")
	}
	if r == nil {
		return 0, fmt.Errorf("petri: choice delay sampled without a random source")
	}
	x := r.Float64() * total
	for i, w := range c.Weights {
		x -= w
		if x < 0 {
			return c.Durations[i], nil
		}
	}
	return c.Durations[len(c.Durations)-1], nil
}

// Const implements Delay.
func (c Choice) Const() (Time, bool) {
	if len(c.Durations) == 1 {
		return c.Durations[0], true
	}
	return 0, false
}

func (c Choice) String() string {
	parts := make([]string, len(c.Durations))
	for i, d := range c.Durations {
		parts[i] = fmt.Sprintf("%d:%g", d, c.Weights[i])
	}
	return "choice(" + strings.Join(parts, ", ") + ")"
}

// ExprDelay evaluates an expression against the interpreted net's
// environment each time it is sampled: the table-driven delays of
// Section 3 ("calculate firing times, enabling times and the number of
// times to iterate through loops" from the instruction type).
type ExprDelay struct {
	E expr.Expr
}

// Sample implements Delay.
func (d ExprDelay) Sample(r randSource, env *expr.Env) (Time, error) {
	if env == nil {
		return 0, fmt.Errorf("petri: expression delay %q sampled without an environment", d.E)
	}
	v, err := d.E.Eval(env)
	if err != nil {
		return 0, fmt.Errorf("petri: expression delay: %w", err)
	}
	if v < 0 {
		return 0, fmt.Errorf("petri: expression delay %q produced negative duration %d", d.E, v)
	}
	return v, nil
}

// Const implements Delay.
func (d ExprDelay) Const() (Time, bool) {
	if lit, ok := d.E.(*expr.IntLit); ok {
		return lit.Val, true
	}
	return 0, false
}

func (d ExprDelay) String() string { return "expr{" + d.E.String() + "}" }
