package petri

import (
	"reflect"
	"testing"
)

// FuzzParseMarking hardens the marking codec used by trace records:
// any input either errors or yields a marking whose Key re-parses to
// an equal marking (Key/ParseMarking are inverse up to canonical
// integer form).
func FuzzParseMarking(f *testing.F) {
	for _, seed := range []string{"", "0", "1,2,3", "-1,007", "6,0,1,0,0,0,0,0,0,1,0,0,0,0,1,0,0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMarking(src)
		if err != nil {
			return
		}
		m2, err := ParseMarking(m.Key())
		if err != nil {
			t.Fatalf("Key output does not re-parse: %v\ninput: %q\nkey: %q", err, src, m.Key())
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("Key round-trip changed the marking: %v -> %v", m, m2)
		}
	})
}
