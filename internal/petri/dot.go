package petri

import (
	"fmt"
	"strings"
)

// DOT renders the net in Graphviz dot syntax: places as circles (with
// their initial marking), transitions as boxes (annotated with times
// and frequencies), inhibitor arcs with dot arrowheads — the standard
// graphical conventions the paper draws its figures with.
func DOT(n *Net) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, p := range n.Places {
		label := p.Name
		if p.Initial > 0 {
			label = fmt.Sprintf("%s\\n%d", p.Name, p.Initial)
		}
		fmt.Fprintf(&b, "  %q [shape=circle label=%q];\n", "p_"+p.Name, label)
	}
	for i := range n.Trans {
		tr := &n.Trans[i]
		var notes []string
		if tr.Firing != nil {
			notes = append(notes, "F="+tr.Firing.String())
		}
		if tr.Enabling != nil {
			notes = append(notes, "E="+tr.Enabling.String())
		}
		if tr.Freq != 1 && tr.Freq != 0 {
			notes = append(notes, fmt.Sprintf("f=%g", tr.Freq))
		}
		label := tr.Name
		if len(notes) > 0 {
			label += "\\n" + strings.Join(notes, " ")
		}
		fmt.Fprintf(&b, "  %q [shape=box label=%q];\n", "t_"+tr.Name, label)
		for _, a := range tr.In {
			attr := ""
			if a.Weight != 1 {
				attr = fmt.Sprintf(" [label=\"%d\"]", a.Weight)
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", "p_"+n.Places[a.Place].Name, "t_"+tr.Name, attr)
		}
		for _, a := range tr.Out {
			attr := ""
			if a.Weight != 1 {
				attr = fmt.Sprintf(" [label=\"%d\"]", a.Weight)
			}
			fmt.Fprintf(&b, "  %q -> %q%s;\n", "t_"+tr.Name, "p_"+n.Places[a.Place].Name, attr)
		}
		for _, a := range tr.Inhib {
			fmt.Fprintf(&b, "  %q -> %q [arrowhead=odot];\n", "p_"+n.Places[a.Place].Name, "t_"+tr.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
