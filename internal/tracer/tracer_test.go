package tracer

import (
	"context"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/trace"
)

// squareWaveSeq builds a net whose place "on" toggles 0->1 at t=5,10,15...
func squareWaveSeq(t *testing.T) *query.Seq {
	t.Helper()
	b := petri.NewBuilder("wave")
	b.Place("on", 0)
	b.Place("off", 1)
	b.Trans("rise").In("off").Out("on").EnablingConst(5)
	b.Trans("fall").In("on").Out("off").EnablingConst(5)
	net := b.MustBuild()
	qb := query.NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: 40}); err != nil {
		t.Fatal(err)
	}
	return qb.Seq()
}

func pipelineSeq(t *testing.T) *query.Seq {
	t.Helper()
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	qb := query.NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: 2_000, Seed: 1988}); err != nil {
		t.Fatal(err)
	}
	return qb.Seq()
}

func TestAddPlaceSignalValues(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddPlace("on"); err != nil {
		t.Fatal(err)
	}
	s := tr.Signals()[0]
	if s.Label != "on" || s.max != 1 {
		t.Errorf("signal: %+v", s)
	}
	if err := tr.AddPlace("nope"); err == nil {
		t.Error("unknown place accepted")
	}
}

func TestAddTransitionSignal(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddTransition("rise"); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddTransition("nope"); err == nil {
		t.Error("unknown transition accepted")
	}
}

func TestAddFuncSignal(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddFunc("both", "on + off"); err != nil {
		t.Fatal(err)
	}
	s := tr.Signals()[0]
	// on + off is 1 in every settled state and 0 in the in-limbo state
	// between the Start and End records of a toggle; never anything else.
	if s.values[0] != 1 {
		t.Fatalf("initial on+off = %d", s.values[0])
	}
	for i, v := range s.values {
		if v != 0 && v != 1 {
			t.Fatalf("state %d: on+off = %d", i, v)
		}
	}
	if err := tr.AddFunc("bad", "on + ghost"); err == nil {
		t.Error("function with unknown name accepted")
	}
	if err := tr.AddFunc("bad", "on +"); err == nil {
		t.Error("unparsable function accepted")
	}
}

func TestMarkersAndMeasure(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	tr.MarkAt("O", 5)
	tr.MarkAt("X", 25)
	d, err := tr.Measure("O", "X")
	if err != nil || d != 20 {
		t.Errorf("Measure = %d, %v", d, err)
	}
	if _, err := tr.Measure("O", "?"); err == nil {
		t.Error("unknown marker accepted")
	}
	if len(tr.Markers()) != 2 {
		t.Errorf("markers: %v", tr.Markers())
	}
}

func TestMarkWhenTrigger(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	// First rise is at t=5.
	m, err := tr.MarkWhen("T", "on > 0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Time != 5 {
		t.Errorf("trigger at t=%d, want 5", m.Time)
	}
	// Same trigger from t=6 finds the second rise at t=15.
	m2, err := tr.MarkWhen("U", "on > 0", 11)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Time != 15 {
		t.Errorf("second trigger at t=%d, want 15", m2.Time)
	}
	if _, err := tr.MarkWhen("V", "on > 99", 0); err == nil {
		t.Error("impossible trigger should error")
	}
	if _, err := tr.MarkWhen("W", "on >", 0); err == nil {
		t.Error("unparsable trigger should error")
	}
}

func TestRenderSquareWave(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddPlace("on"); err != nil {
		t.Fatal(err)
	}
	tr.MarkAt("O", 5)
	tr.MarkAt("X", 15)
	out := tr.Render(RenderOptions{From: 0, To: 40, Width: 40})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, markers, signal, axis, measurement.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	sig := lines[2]
	// One column per tick: low for [0,5), high for [5,10), ...
	wave := sig[strings.IndexByte(sig, '|')+1 : strings.LastIndexByte(sig, '|')]
	if len(wave) != 40 {
		t.Fatalf("wave width %d: %q", len(wave), wave)
	}
	if wave[2] != '_' || wave[7] != '#' || wave[12] != '_' || wave[17] != '#' {
		t.Errorf("wave shape wrong: %q", wave)
	}
	if !strings.Contains(out, "O <-> X  10") {
		t.Errorf("measurement missing:\n%s", out)
	}
	// Marker row has O at column 5 and X at column 15.
	markerRow := lines[1]
	mr := markerRow[strings.IndexByte(markerRow, '|')+1 : strings.LastIndexByte(markerRow, '|')]
	if mr[5] != 'O' || mr[15] != 'X' {
		t.Errorf("marker row wrong: %q", mr)
	}
}

func TestRenderMultiLevelAndUnicode(t *testing.T) {
	b := petri.NewBuilder("multi")
	b.Place("lvl", 0)
	b.Place("src", 12)
	b.Trans("up").In("src").Out("lvl").EnablingConst(2)
	net := b.MustBuild()
	qb := query.NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: 30}); err != nil {
		t.Fatal(err)
	}
	tr := New(qb.Seq())
	if err := tr.AddPlace("lvl"); err != nil {
		t.Fatal(err)
	}
	out := tr.Render(RenderOptions{From: 0, To: 30, Width: 30})
	// Levels climb 1,2,3...; digits then letters appear.
	if !strings.Contains(out, "1") || !strings.Contains(out, "9") || !strings.Contains(out, "a") {
		t.Errorf("multi-level rendering missing digits:\n%s", out)
	}
	uni := tr.Render(RenderOptions{From: 0, To: 30, Width: 30, Unicode: true})
	if !strings.ContainsRune(uni, '█') {
		t.Errorf("unicode rendering missing full block:\n%s", uni)
	}
}

func TestRenderDefaultsAndWindow(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddPlace("on"); err != nil {
		t.Fatal(err)
	}
	out := tr.Render(RenderOptions{})
	if !strings.Contains(out, "window [0, 40]") {
		t.Errorf("default window wrong:\n%s", out)
	}
	out = tr.Render(RenderOptions{From: 10, To: 20, Width: 10})
	if !strings.Contains(out, "window [10, 20]") {
		t.Errorf("explicit window wrong:\n%s", out)
	}
}

func TestFigure7OnPipeline(t *testing.T) {
	seq := pipelineSeq(t)
	tr, err := Figure7(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Signals()) != 11 {
		t.Fatalf("Figure 7 probe count = %d, want 11", len(tr.Signals()))
	}
	// Place the paper's two cursors on bus events and render.
	if _, err := tr.MarkWhen("O", "Bus_busy > 0", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.MarkWhen("X", "storing > 0", 0); err != nil {
		t.Fatal(err)
	}
	out := tr.Render(RenderOptions{From: 0, To: 400, Width: 100})
	for _, want := range []string{"Bus_busy", "pre_fetching", "fetching", "storing",
		"exec_type_1", "exec_type_5", "sum_exec", "Empty_I_buffers", "O <-> X"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 7 rendering missing %q", want)
		}
	}
	// The sum function must dominate each individual exec line at every
	// state — verify via the stored signal values.
	var sum *Signal
	var execs []*Signal
	for _, s := range tr.Signals() {
		if s.Label == "sum_exec" {
			sum = s
		}
		if strings.HasPrefix(s.Label, "exec_type_") {
			execs = append(execs, s)
		}
	}
	for i := range sum.values {
		var total int64
		for _, e := range execs {
			total += e.values[i]
		}
		if sum.values[i] != total {
			t.Fatalf("sum_exec mismatch at state %d: %d != %d", i, sum.values[i], total)
		}
	}
	// Figure7 on a non-pipeline trace errors cleanly.
	if _, err := Figure7(squareWaveSeq(t)); err == nil {
		t.Error("Figure7 should reject non-pipeline traces")
	}
}

func TestVerifyDelegates(t *testing.T) {
	seq := pipelineSeq(t)
	tr := New(seq)
	res, err := tr.Verify("exists s in S [ exec_type_1(s) > 0 ]")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("exec_type_1 should have fired")
	}
	if _, err := tr.Verify("not a query"); err == nil {
		t.Error("bad query accepted")
	}
}
