// Package tracer is the P-NUT Tracertool (Section 4.4): a software
// logic state analyzer for simulation traces, plus the trace
// verification front end.
//
// As with a hardware logic state analyzer, the user selects "probes" —
// places, transitions, or arbitrary user-defined functions of them — and
// gets their values plotted over time. Markers can be positioned in the
// trace (at a given time, or at the first state satisfying a trigger
// expression, like an analyzer's trigger condition) and the tool
// measures the time between markers.
//
// Figure 7 of the paper shows the canonical use: Bus_busy on the first
// line, broken down into pre-fetching / fetching / storing on the next
// three, the five execution transitions, a user-defined function summing
// them, and the number of empty instruction-buffer slots over time.
//
// Verification queries (forall/exists/inev) are delegated to package
// query; Verify is a thin convenience wrapper.
package tracer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/petri"
	"repro/internal/query"
)

// Signal is one plotted probe.
type Signal struct {
	Label string
	// values per state index (parallel to the Seq).
	values []int64
	max    int64
}

// Marker is a named position in the trace.
type Marker struct {
	Name  string
	Time  petri.Time
	State int // index of the state at or after Time; -1 if past the end
}

// Tracer plots signals from a state sequence.
type Tracer struct {
	seq     *query.Seq
	signals []*Signal
	markers []Marker
}

// New returns a tracer over seq.
func New(seq *query.Seq) *Tracer {
	return &Tracer{seq: seq}
}

// Seq returns the underlying state sequence.
func (t *Tracer) Seq() *query.Seq { return t.seq }

// AddPlace probes the token count of a place.
func (t *Tracer) AddPlace(name string) error {
	id, ok := t.seq.Header.PlaceID(name)
	if !ok {
		return fmt.Errorf("tracer: unknown place %q", name)
	}
	s := &Signal{Label: name}
	s.values = make([]int64, len(t.seq.States))
	for i := range t.seq.States {
		s.values[i] = int64(t.seq.States[i].Marking[id])
	}
	t.finish(s)
	return nil
}

// AddTransition probes the concurrent-firing count of a transition.
func (t *Tracer) AddTransition(name string) error {
	id, ok := t.seq.Header.TransID(name)
	if !ok {
		return fmt.Errorf("tracer: unknown transition %q", name)
	}
	s := &Signal{Label: name}
	s.values = make([]int64, len(t.seq.States))
	for i := range t.seq.States {
		s.values[i] = int64(t.seq.States[i].Active[id])
	}
	t.finish(s)
	return nil
}

// AddFunc probes a user-defined function: an expression over place and
// transition names, evaluated in every state. This is the paper's
// "arbitrary functions (using a simple programming language) on places
// and transitions" — e.g.
//
//	exec_type_1 + exec_type_2 + exec_type_3 + exec_type_4 + exec_type_5
func (t *Tracer) AddFunc(label, src string) error {
	e, err := expr.ParseExpr(src)
	if err != nil {
		return fmt.Errorf("tracer: function %q: %w", label, err)
	}
	// Validate names eagerly so typos fail loudly.
	for _, n := range expr.Names(e) {
		if !t.seq.KnownName(n) {
			return fmt.Errorf("tracer: function %q refers to unknown name %q", label, n)
		}
	}
	s := &Signal{Label: label}
	s.values = make([]int64, len(t.seq.States))
	env := expr.NewEnv(nil)
	for i := range t.seq.States {
		st := &t.seq.States[i]
		env.External = func(name string) (int64, bool) {
			return t.seq.Value(name, st)
		}
		v, err := e.Eval(env)
		if err != nil {
			return fmt.Errorf("tracer: function %q at state %d: %w", label, i, err)
		}
		s.values[i] = v
	}
	t.finish(s)
	return nil
}

func (t *Tracer) finish(s *Signal) {
	for _, v := range s.values {
		if v > s.max {
			s.max = v
		}
	}
	t.signals = append(t.signals, s)
}

// Signals returns the probes added so far.
func (t *Tracer) Signals() []*Signal { return t.signals }

// stateAt returns the index of the last state entered at or before time
// tm (the value visible at tm), or -1 before the first state.
func (t *Tracer) stateAt(tm petri.Time) int {
	states := t.seq.States
	// First state with Time > tm, minus one.
	i := sort.Search(len(states), func(i int) bool { return states[i].Time > tm })
	return i - 1
}

// MarkAt places a named marker at an absolute time.
func (t *Tracer) MarkAt(name string, tm petri.Time) {
	t.markers = append(t.markers, Marker{Name: name, Time: tm, State: t.stateAt(tm)})
}

// MarkWhen places a marker at the first state (at or after time from)
// satisfying the trigger expression — the analyzer's trigger condition.
// It returns the marker, or an error if the trigger never fires.
func (t *Tracer) MarkWhen(name, src string, from petri.Time) (Marker, error) {
	e, err := expr.ParseExpr(src)
	if err != nil {
		return Marker{}, fmt.Errorf("tracer: trigger %q: %w", src, err)
	}
	env := expr.NewEnv(nil)
	for i := range t.seq.States {
		st := &t.seq.States[i]
		if st.Time < from {
			continue
		}
		env.External = func(name string) (int64, bool) {
			return t.seq.Value(name, st)
		}
		v, err := e.Eval(env)
		if err != nil {
			return Marker{}, fmt.Errorf("tracer: trigger %q at state %d: %w", src, i, err)
		}
		if v != 0 {
			m := Marker{Name: name, Time: st.Time, State: i}
			t.markers = append(t.markers, m)
			return m, nil
		}
	}
	return Marker{}, fmt.Errorf("tracer: trigger %q never fired", src)
}

// Markers returns the markers placed so far.
func (t *Tracer) Markers() []Marker { return t.markers }

// Measure returns the time between two named markers (b - a), the
// analyzer's cursor-delta readout ("O <-> X  48" in Figure 7).
func (t *Tracer) Measure(a, b string) (petri.Time, error) {
	var ma, mb *Marker
	for i := range t.markers {
		switch t.markers[i].Name {
		case a:
			ma = &t.markers[i]
		case b:
			mb = &t.markers[i]
		}
	}
	if ma == nil {
		return 0, fmt.Errorf("tracer: unknown marker %q", a)
	}
	if mb == nil {
		return 0, fmt.Errorf("tracer: unknown marker %q", b)
	}
	return mb.Time - ma.Time, nil
}

// Verify parses and evaluates a Section 4.4 query against the trace.
func (t *Tracer) Verify(src string) (query.Result, error) {
	return query.Check(t.seq, src)
}

// RenderOptions control the timing diagram.
type RenderOptions struct {
	// From and To bound the plotted window; To=0 means the end of the
	// run.
	From, To petri.Time
	// Width is the number of plot columns (default 72).
	Width int
	// Unicode selects block-character waveforms; the default uses pure
	// ASCII (digits for levels, '_' for zero).
	Unicode bool
}

const asciiLevels = "_123456789abcdef"

var unicodeLevels = []rune{'▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'}

// Render draws every signal over the window as one row per signal, with
// a time axis and a marker row, in the manner of Figure 7.
func (t *Tracer) Render(o RenderOptions) string {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.To <= o.From {
		o.To = t.seq.FinalTime
		if o.To <= o.From {
			o.To = o.From + 1
		}
	}
	span := o.To - o.From
	colTime := func(c int) petri.Time {
		return o.From + petri.Time(float64(c)*float64(span)/float64(o.Width))
	}
	labelW := 10
	for _, s := range t.signals {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tracertool: %s  window [%d, %d]  width %d\n", t.seq.Header.Net, o.From, o.To, o.Width)

	// Marker row.
	if len(t.markers) > 0 {
		row := make([]byte, o.Width)
		for i := range row {
			row[i] = ' '
		}
		for _, m := range t.markers {
			if m.Time < o.From || m.Time > o.To {
				continue
			}
			c := int(float64(m.Time-o.From) * float64(o.Width) / float64(span))
			if c >= o.Width {
				c = o.Width - 1
			}
			row[c] = m.Name[0]
		}
		fmt.Fprintf(&b, "%*s |%s|\n", labelW, "markers", string(row))
	}

	for _, s := range t.signals {
		fmt.Fprintf(&b, "%*s |", labelW, s.Label)
		si := 0
		states := t.seq.States
		for c := 0; c < o.Width; c++ {
			tm := colTime(c)
			for si < len(states)-1 && states[si+1].Time <= tm {
				si++
			}
			var v int64
			if si >= 0 && states[si].Time <= tm {
				v = s.values[si]
			}
			b.WriteString(levelChar(v, s.max, o.Unicode))
		}
		b.WriteString("|\n")
	}

	// Time axis.
	fmt.Fprintf(&b, "%*s |", labelW, "t")
	step := o.Width / 6
	if step < 1 {
		step = 1
	}
	axis := make([]byte, 0, o.Width)
	for c := 0; c < o.Width; {
		if c%step == 0 {
			lbl := fmt.Sprintf("%d", colTime(c))
			if c+len(lbl) <= o.Width {
				axis = append(axis, lbl...)
				c += len(lbl)
				continue
			}
		}
		axis = append(axis, ' ')
		c++
	}
	b.Write(axis)
	b.WriteString("|\n")

	// Cursor measurements for every marker pair, in placement order.
	for i := 0; i+1 < len(t.markers); i++ {
		a, z := t.markers[i], t.markers[i+1]
		fmt.Fprintf(&b, "%s <-> %s  %d\n", a.Name, z.Name, z.Time-a.Time)
	}
	return b.String()
}

func levelChar(v, max int64, unicode bool) string {
	if v <= 0 {
		if unicode {
			return " "
		}
		return "_"
	}
	if unicode {
		idx := int((v*int64(len(unicodeLevels)) - 1) / maxInt64(max, 1))
		if idx >= len(unicodeLevels) {
			idx = len(unicodeLevels) - 1
		}
		if idx < 0 {
			idx = 0
		}
		return string(unicodeLevels[idx])
	}
	if max <= 1 {
		return "#"
	}
	if v < int64(len(asciiLevels)) {
		return string(asciiLevels[v])
	}
	return "+"
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Figure7 builds the paper's standard probe set over a pipeline trace:
// Bus_busy, its three-way activity breakdown, the five execution
// transitions, their sum as a user-defined function, and the free
// instruction-buffer slots. It returns an error if the trace is not of
// the pipeline model (missing names).
func Figure7(seq *query.Seq) (*Tracer, error) {
	t := New(seq)
	if err := t.AddPlace("Bus_busy"); err != nil {
		return nil, err
	}
	for _, p := range []string{"pre_fetching", "fetching", "storing"} {
		if err := t.AddPlace(p); err != nil {
			return nil, err
		}
	}
	var sum []string
	for i := 1; i <= 5; i++ {
		name := fmt.Sprintf("exec_type_%d", i)
		if err := t.AddTransition(name); err != nil {
			return nil, err
		}
		sum = append(sum, name)
	}
	if err := t.AddFunc("sum_exec", strings.Join(sum, " + ")); err != nil {
		return nil, err
	}
	if err := t.AddPlace("Empty_I_buffers"); err != nil {
		return nil, err
	}
	return t, nil
}
