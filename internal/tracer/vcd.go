package tracer

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteVCD dumps the tracer's signals as a Value Change Dump — the
// standard EDA waveform format — so traces can be inspected in any
// modern wave viewer (GTKWave etc.). This is the natural descendant of
// the paper's logic-state-analyzer display: each probe becomes a VCD
// variable, each state change a timestamped value change.
//
// Values are emitted as binary vectors wide enough for the largest
// value the signal reaches. Markers are emitted as $comment records in
// the header.
func (t *Tracer) WriteVCD(w io.Writer, timescale string) error {
	if len(t.signals) == 0 {
		return fmt.Errorf("tracer: no signals to dump")
	}
	if timescale == "" {
		timescale = "1ns"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "$comment pnut-go trace of net %s $end\n", t.seq.Header.Net)
	for _, m := range t.markers {
		fmt.Fprintf(&b, "$comment marker %s at %d $end\n", m.Name, m.Time)
	}
	fmt.Fprintf(&b, "$timescale %s $end\n", timescale)
	fmt.Fprintf(&b, "$scope module %s $end\n", vcdIdent(t.seq.Header.Net))
	ids := make([]string, len(t.signals))
	widths := make([]int, len(t.signals))
	for i, s := range t.signals {
		ids[i] = vcdID(i)
		widths[i] = bitsFor(s.max)
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", widths[i], ids[i], vcdIdent(s.Label))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	b.WriteString("$dumpvars\n")
	last := make([]int64, len(t.signals))
	for i, s := range t.signals {
		v := int64(0)
		if len(s.values) > 0 {
			v = s.values[0]
		}
		last[i] = v
		writeChange(&b, v, widths[i], ids[i])
	}
	b.WriteString("$end\n")

	// Emit the final value each signal holds at every distinct time.
	states := t.seq.States
	for si := 0; si < len(states); {
		tm := states[si].Time
		end := si
		for end < len(states) && states[end].Time == tm {
			end++
		}
		lastIdx := end - 1
		wrote := false
		for i, s := range t.signals {
			v := s.values[lastIdx]
			if v != last[i] {
				if !wrote {
					fmt.Fprintf(&b, "#%d\n", tm)
					wrote = true
				}
				writeChange(&b, v, widths[i], ids[i])
				last[i] = v
			}
		}
		si = end
	}
	fmt.Fprintf(&b, "#%d\n", t.seq.FinalTime)
	_, err := io.WriteString(w, b.String())
	return err
}

func writeChange(b *strings.Builder, v int64, width int, id string) {
	if v < 0 {
		v = 0
	}
	if width == 1 {
		fmt.Fprintf(b, "%d%s\n", v&1, id)
		return
	}
	fmt.Fprintf(b, "b%s %s\n", strconv.FormatInt(v, 2), id)
}

// vcdID yields the compact printable identifier for variable i.
func vcdID(i int) string {
	const first, span = 33, 94 // '!' .. '~'
	s := ""
	for {
		s += string(rune(first + i%span))
		i /= span
		if i == 0 {
			return s
		}
		i--
	}
}

// vcdIdent sanitizes a name for VCD identifiers (no whitespace).
func vcdIdent(s string) string {
	s = strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, s)
	if s == "" {
		return "_"
	}
	return s
}

func bitsFor(max int64) int {
	bits := 1
	for max > 1 {
		max >>= 1
		bits++
	}
	return bits
}
