package tracer

import (
	"strings"
	"testing"
)

func TestWriteVCDSquareWave(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	if err := tr.AddPlace("on"); err != nil {
		t.Fatal(err)
	}
	tr.MarkAt("O", 5)
	var b strings.Builder
	if err := tr.WriteVCD(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module wave $end",
		"$var wire 1 ! on $end",
		"$enddefinitions $end",
		"$dumpvars",
		"$comment marker O at 5 $end",
		"#5", "#10",
		"1!", "0!",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The wave toggles at 5, 10, 15, ... — value changes alternate.
	lines := strings.Split(out, "\n")
	var changes []string
	for _, l := range lines {
		if l == "0!" || l == "1!" {
			changes = append(changes, l)
		}
	}
	if len(changes) < 5 {
		t.Fatalf("too few value changes: %v", changes)
	}
	for i := 1; i < len(changes); i++ {
		if changes[i] == changes[i-1] {
			t.Fatalf("consecutive identical changes: %v", changes)
		}
	}
}

func TestWriteVCDMultiBit(t *testing.T) {
	seq := pipelineSeq(t)
	tr := New(seq)
	if err := tr.AddPlace("Empty_I_buffers"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tr.WriteVCD(&b, "1us"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "$var wire 3 ! Empty_I_buffers $end") {
		t.Errorf("expected a 3-bit vector for a 0..6 signal:\n%s",
			out[:min(400, len(out))])
	}
	if !strings.Contains(out, "$timescale 1us $end") {
		t.Error("custom timescale ignored")
	}
	if !strings.Contains(out, "b110 !") {
		t.Error("initial value 6 (b110) missing")
	}
}

func TestWriteVCDNoSignals(t *testing.T) {
	seq := squareWaveSeq(t)
	tr := New(seq)
	var b strings.Builder
	if err := tr.WriteVCD(&b, ""); err == nil {
		t.Error("empty probe set accepted")
	}
}

func TestVCDIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("non-printable id rune %q", r)
			}
		}
	}
	if vcdID(0) != "!" {
		t.Errorf("vcdID(0) = %q", vcdID(0))
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 6: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for v, want := range cases {
		if got := bitsFor(v); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", v, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
