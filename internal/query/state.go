// Package query implements the trace-verification language of Section
// 4.4: first-order queries over the states of a simulation trace
// ("forall s in S [...]", "exists s in (S - {#0}) [...]") with the
// temporal operator inev, as used by Tracertool and inspired by the
// reachability-graph analyzer of [MR87].
//
// Example queries, straight from the paper (hyphens written as
// underscores):
//
//	forall s in S [ Bus_busy(s) + Bus_free(s) == 1 ]
//	exists s in (S - {#0}) [ Empty_I_buffers(s) == 6 ]
//	exists s in S [ exec_type_5(s) > 0 ]
//	forall s in {s2 in S | Bus_busy(s2) > 0} [ inev(s, Bus_free(C) > 0, true) ]
//
// A name applied to a state variable denotes the token count of the
// place (or the number of concurrent firings of the transition) with
// that name in that state. Inside inev, C denotes the state being
// examined along the future of the bound state. The paper writes bare
// condition names where we require explicit comparisons ("Bus_busy(s)"
// as a boolean); both are accepted — a bare application in boolean
// position means "> 0".
package query

import (
	"fmt"
	"io"

	"repro/internal/petri"
	"repro/internal/trace"
)

// State is one state of a trace: the marking and the concurrent-firing
// counts after applying some prefix of the trace records.
type State struct {
	// Index is the state number; #0 is the initial state.
	Index int
	// Time is the simulation clock at which the state was entered.
	Time petri.Time
	// Marking holds tokens per place.
	Marking petri.Marking
	// Active holds concurrent firings per transition.
	Active []int
}

// Seq is the full state sequence of a trace, as consumed by queries and
// by Tracertool.
type Seq struct {
	Header trace.Header
	States []State
	// FinalTime is the clock at the end of the run (from the Final
	// record), which may exceed the time of the last state.
	FinalTime petri.Time
}

// Len returns the number of states.
func (q *Seq) Len() int { return len(q.States) }

// Value resolves name in state st: place token count or transition
// concurrent-firing count.
func (q *Seq) Value(name string, st *State) (int64, bool) {
	if id, ok := q.Header.PlaceID(name); ok {
		return int64(st.Marking[id]), true
	}
	if id, ok := q.Header.TransID(name); ok {
		return int64(st.Active[id]), true
	}
	return 0, false
}

// KnownName reports whether name denotes a place or transition.
func (q *Seq) KnownName(name string) bool {
	if _, ok := q.Header.PlaceID(name); ok {
		return true
	}
	_, ok := q.Header.TransID(name)
	return ok
}

// Builder accumulates a Seq from a record stream; it implements
// trace.Observer so it can be driven directly by the simulator or by
// trace.Copy from a stored trace.
type Builder struct {
	seq     Seq
	marking petri.Marking
	active  []int
	started bool
}

// NewBuilder returns a sequence builder for traces described by h.
func NewBuilder(h trace.Header) *Builder {
	return &Builder{
		seq:    Seq{Header: h},
		active: make([]int, len(h.Trans)),
	}
}

// Record implements trace.Observer.
func (b *Builder) Record(rec *trace.Record) error {
	switch rec.Kind {
	case trace.Initial:
		if len(rec.Marking) != len(b.seq.Header.Places) {
			return fmt.Errorf("query: initial marking has %d places, header has %d",
				len(rec.Marking), len(b.seq.Header.Places))
		}
		b.marking = rec.Marking.Clone()
		b.started = true
		b.push(rec.Time)
	case trace.Start, trace.End:
		if !b.started {
			return fmt.Errorf("query: trace event before initial state")
		}
		for _, d := range rec.Deltas {
			if int(d.Place) >= len(b.marking) {
				return fmt.Errorf("query: delta for unknown place %d", d.Place)
			}
			b.marking[d.Place] += d.Change
		}
		if int(rec.Trans) >= len(b.active) {
			return fmt.Errorf("query: event for unknown transition %d", rec.Trans)
		}
		if rec.Kind == trace.Start {
			b.active[rec.Trans]++
		} else {
			b.active[rec.Trans]--
		}
		b.push(rec.Time)
	case trace.Final:
		b.seq.FinalTime = rec.Time
	default:
		return fmt.Errorf("query: unknown record kind %q", rec.Kind)
	}
	return nil
}

func (b *Builder) push(t petri.Time) {
	st := State{
		Index:   len(b.seq.States),
		Time:    t,
		Marking: b.marking.Clone(),
		Active:  append([]int(nil), b.active...),
	}
	b.seq.States = append(b.seq.States, st)
}

// Seq returns the accumulated sequence.
func (b *Builder) Seq() *Seq {
	if b.seq.FinalTime == 0 && len(b.seq.States) > 0 {
		b.seq.FinalTime = b.seq.States[len(b.seq.States)-1].Time
	}
	return &b.seq
}

// SeqFromReader drains a stored trace into a Seq. It accepts either
// codec's reader (or anything else that streams records).
func SeqFromReader(r trace.RecordReader) (*Seq, error) {
	h, err := r.Header()
	if err != nil {
		return nil, err
	}
	b := NewBuilder(h)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return b.Seq(), nil
		}
		if err != nil {
			return nil, err
		}
		if err := b.Record(&rec); err != nil {
			return nil, err
		}
	}
}
