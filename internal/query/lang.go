package query

import (
	"fmt"
	"strconv"
)

// --- lexer -----------------------------------------------------------

type tokKind int

const (
	tEOF tokKind = iota
	tInt
	tIdent
	tHash   // #
	tLParen // (
	tRParen // )
	tLBrack // [
	tRBrack // ]
	tLBrace // {
	tRBrace // }
	tComma
	tPipe // |
	tPlus
	tMinus
	tStar
	tSlash
	tBang
	tLT
	tLE
	tGT
	tGE
	tEQ
	tNE
	tAnd // &&
	tOr  // ||
)

type token struct {
	kind tokKind
	text string
	val  int64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tInt, tIdent:
		return fmt.Sprintf("%q", t.text)
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k tokKind, text string) {
		toks = append(toks, token{kind: k, text: text, pos: i})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
			continue
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad integer %q", src[i:j])
			}
			toks = append(toks, token{kind: tInt, text: src[i:j], val: v, pos: i})
			i = j
			continue
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{kind: tIdent, text: src[i:j], pos: i})
			i = j
			continue
		}
		two := func(k tokKind, text string) { toks = append(toks, token{kind: k, text: text, pos: i}); i += 2 }
		one := func(k tokKind) { emit(k, string(c)); i++ }
		var peek byte
		if i+1 < len(src) {
			peek = src[i+1]
		}
		switch c {
		case '#':
			one(tHash)
		case '(':
			one(tLParen)
		case ')':
			one(tRParen)
		case '[':
			one(tLBrack)
		case ']':
			one(tRBrack)
		case '{':
			one(tLBrace)
		case '}':
			one(tRBrace)
		case ',':
			one(tComma)
		case '+':
			one(tPlus)
		case '-':
			one(tMinus)
		case '*':
			one(tStar)
		case '/':
			one(tSlash)
		case '|':
			if peek == '|' {
				two(tOr, "||")
			} else {
				one(tPipe)
			}
		case '&':
			if peek == '&' {
				two(tAnd, "&&")
			} else {
				return nil, fmt.Errorf("query: stray '&' at offset %d", i)
			}
		case '!':
			if peek == '=' {
				two(tNE, "!=")
			} else {
				one(tBang)
			}
		case '<':
			if peek == '=' {
				two(tLE, "<=")
			} else {
				one(tLT)
			}
		case '>':
			if peek == '=' {
				two(tGE, ">=")
			} else {
				one(tGT)
			}
		case '=':
			if peek == '=' {
				two(tEQ, "==")
			} else {
				// The paper writes single '=' for equality; accept it.
				emit(tEQ, "=")
				i++
			}
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", string(c), i)
		}
	}
	toks = append(toks, token{kind: tEOF, pos: len(src)})
	return toks, nil
}

// --- AST --------------------------------------------------------------

// Quant is the quantifier of a query.
type Quant int

// Quantifiers.
const (
	Forall Quant = iota
	Exists
)

func (q Quant) String() string {
	if q == Forall {
		return "forall"
	}
	return "exists"
}

// setExpr denotes a set of states.
type setExpr interface{ isSet() }

// setAll is S, the set of all states in the trace.
type setAll struct{}

// setDiff removes explicitly numbered states (#0, #7, ...).
type setDiff struct {
	base setExpr
	refs []int
}

// setComp is the comprehension {v in base | pred}.
type setComp struct {
	v    string
	base setExpr
	pred pexpr
}

func (setAll) isSet()  {}
func (setDiff) isSet() {}
func (setComp) isSet() {}

// pexpr is a predicate/value expression; everything evaluates to int64
// with nonzero meaning true.
type pexpr interface{ isPexpr() }

type pInt struct{ v int64 }

// pApply is name(statevar): the value of a place or transition in the
// state bound to statevar (or C inside inev).
type pApply struct {
	name string
	sv   string
}

// pTime is time(statevar).
type pTime struct{ sv string }

// pIndex is index(statevar) — the state number, handy in tests.
type pIndex struct{ sv string }

// pDur is dur(statevar): how long the state persisted — the time until
// the next state (or the end of the run for the last state). A logic
// analyzer's "pulse width"; zero for states that are passed through
// instantaneously.
type pDur struct{ sv string }

// pInev is inev(statevar, f) or inev(statevar, f, g): along the trace
// from the bound state, f eventually holds, with g holding at every
// state before that (g defaults to true).
type pInev struct {
	sv   string
	f, g pexpr
}

type pUnary struct {
	op tokKind // tMinus or tBang
	x  pexpr
}

type pBinary struct {
	op   tokKind
	l, r pexpr
}

func (pInt) isPexpr()    {}
func (pApply) isPexpr()  {}
func (pTime) isPexpr()   {}
func (pIndex) isPexpr()  {}
func (pDur) isPexpr()    {}
func (pInev) isPexpr()   {}
func (pUnary) isPexpr()  {}
func (pBinary) isPexpr() {}

// Query is a parsed verification query.
type Query struct {
	Quant Quant
	Var   string
	src   string
	set   setExpr
	body  pexpr
}

// String returns the original source of the query.
func (q *Query) String() string { return q.src }

// --- parser -----------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return token{}, fmt.Errorf("query: expected %s, found %s at offset %d", what, t, t.pos)
	}
	return p.advance(), nil
}

// Parse parses a query such as
//
//	forall s in S [ Bus_busy(s) + Bus_free(s) == 1 ]
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{src: src}
	kw, err := p.expect(tIdent, "forall or exists")
	if err != nil {
		return nil, err
	}
	switch kw.text {
	case "forall":
		q.Quant = Forall
	case "exists", "Exists":
		q.Quant = Exists
	default:
		return nil, fmt.Errorf("query: expected forall or exists, found %q", kw.text)
	}
	v, err := p.expect(tIdent, "a state variable")
	if err != nil {
		return nil, err
	}
	q.Var = v.text
	if in, err := p.expect(tIdent, "'in'"); err != nil || in.text != "in" {
		return nil, fmt.Errorf("query: expected 'in' after state variable")
	}
	q.set, err = p.parseSet()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrack, "'['"); err != nil {
		return nil, err
	}
	q.body, err = p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRBrack, "']'"); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tEOF {
		return nil, fmt.Errorf("query: unexpected %s after query", t)
	}
	return q, nil
}

func (p *parser) parseSet() (setExpr, error) {
	base, err := p.parseSetPrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tMinus {
		p.advance()
		if _, err := p.expect(tLBrace, "'{' after '-'"); err != nil {
			return nil, err
		}
		var refs []int
		for {
			if _, err := p.expect(tHash, "'#'"); err != nil {
				return nil, err
			}
			n, err := p.expect(tInt, "a state number")
			if err != nil {
				return nil, err
			}
			refs = append(refs, int(n.val))
			if p.peek().kind != tComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tRBrace, "'}'"); err != nil {
			return nil, err
		}
		base = setDiff{base: base, refs: refs}
	}
	return base, nil
}

func (p *parser) parseSetPrimary() (setExpr, error) {
	switch t := p.peek(); t.kind {
	case tIdent:
		if t.text == "S" {
			p.advance()
			return setAll{}, nil
		}
		return nil, fmt.Errorf("query: unknown set %q (only S is defined)", t.text)
	case tLParen:
		p.advance()
		s, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return s, nil
	case tLBrace:
		p.advance()
		v, err := p.expect(tIdent, "a state variable")
		if err != nil {
			return nil, err
		}
		if in, err := p.expect(tIdent, "'in'"); err != nil || in.text != "in" {
			return nil, fmt.Errorf("query: expected 'in' in set comprehension")
		}
		base, err := p.parseSet()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPipe, "'|'"); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBrace, "'}'"); err != nil {
			return nil, err
		}
		return setComp{v: v.text, base: base, pred: pred}, nil
	}
	return nil, fmt.Errorf("query: expected a set, found %s", p.peek())
}

func (p *parser) parseOr() (pexpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tOr {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = pBinary{op: tOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (pexpr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tAnd {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = pBinary{op: tAnd, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (pexpr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	switch k := p.peek().kind; k {
	case tEQ, tNE, tLT, tLE, tGT, tGE:
		p.advance()
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return pBinary{op: k, l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parseSum() (pexpr, error) {
	l, err := p.parseProd()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tPlus && k != tMinus {
			return l, nil
		}
		p.advance()
		r, err := p.parseProd()
		if err != nil {
			return nil, err
		}
		l = pBinary{op: k, l: l, r: r}
	}
}

func (p *parser) parseProd() (pexpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		if k != tStar && k != tSlash {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = pBinary{op: k, l: l, r: r}
	}
}

func (p *parser) parseUnary() (pexpr, error) {
	switch p.peek().kind {
	case tBang:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return pUnary{op: tBang, x: x}, nil
	case tMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return pUnary{op: tMinus, x: x}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (pexpr, error) {
	t := p.peek()
	switch t.kind {
	case tInt:
		p.advance()
		return pInt{v: t.val}, nil
	case tLParen:
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tIdent:
		p.advance()
		switch t.text {
		case "true":
			return pInt{v: 1}, nil
		case "false":
			return pInt{v: 0}, nil
		case "inev":
			if _, err := p.expect(tLParen, "'('"); err != nil {
				return nil, err
			}
			sv, err := p.expect(tIdent, "a state variable")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tComma, "','"); err != nil {
				return nil, err
			}
			f, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			var g pexpr = pInt{v: 1}
			if p.peek().kind == tComma {
				p.advance()
				g, err = p.parseOr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return nil, err
			}
			return pInev{sv: sv.text, f: f, g: g}, nil
		case "time", "index", "dur":
			if _, err := p.expect(tLParen, "'('"); err != nil {
				return nil, err
			}
			sv, err := p.expect(tIdent, "a state variable")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return nil, err
			}
			switch t.text {
			case "time":
				return pTime{sv: sv.text}, nil
			case "dur":
				return pDur{sv: sv.text}, nil
			}
			return pIndex{sv: sv.text}, nil
		}
		// name(statevar): place or transition applied to a state.
		if _, err := p.expect(tLParen, "'(' (state application)"); err != nil {
			return nil, err
		}
		sv, err := p.expect(tIdent, "a state variable")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return pApply{name: t.text, sv: sv.text}, nil
	}
	return nil, fmt.Errorf("query: expected an expression, found %s", t)
}
