package query

import (
	"strings"
	"testing"
)

func TestLexerTokens(t *testing.T) {
	toks, err := lex("forall s in (S - {#0, #2}) [ a(s) >= 1 && !b(s) || c(s) != 2 * 3 / 1 ]")
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tEOF {
		t.Error("missing EOF token")
	}
	var kinds []tokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	// Spot-check a few positions.
	if kinds[0] != tIdent || kinds[3] != tLParen || kinds[5] != tMinus || kinds[6] != tLBrace {
		t.Errorf("token stream: %v", kinds)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"$", "a & b", "`", "99999999999999999999"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex %q should fail", src)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, err := lex("abc 42 <=")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(toks[0].String(), "abc") {
		t.Errorf("ident token string: %s", toks[0])
	}
	if !strings.Contains(toks[1].String(), "42") {
		t.Errorf("int token string: %s", toks[1])
	}
	eof := toks[len(toks)-1]
	if eof.String() != "end of query" {
		t.Errorf("eof token string: %s", eof)
	}
}

func TestParseSetForms(t *testing.T) {
	good := []string{
		"forall s in S [ 1 ]",
		"forall s in (S) [ 1 ]",
		"forall s in ((S - {#1}) - {#2, #3}) [ 1 ]",
		"forall s in {x in S | 1} [ 1 ]",
		"forall s in {x in {y in S | 1} | 1} [ 1 ]",
		"Exists s in S [ 0 ]",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
	bad := []string{
		"forall s in {x S | 1} [ 1 ]",
		"forall s in {x in S 1} [ 1 ]",
		"forall s in (S - {#}) [ 1 ]",
		"forall s in (S - 0) [ 1 ]",
		"forall s in S - {#0 [ 1 ]",
		"forall s in S [ time(3) ]",
		"forall s in S [ inev(s, 1, 1, 1) ]",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q should fail", src)
		}
	}
}

func TestOutOfRangeStateRefsIgnored(t *testing.T) {
	seq := &Seq{}
	seq.Header.Places = []string{"p"}
	seq.Header.Trans = []string{"t"}
	// Two states.
	for i := 0; i < 2; i++ {
		seq.States = append(seq.States, State{Index: i, Marking: []int{i}, Active: []int{0}})
	}
	// Excluding #99 is harmless.
	res, err := Check(seq, "exists s in (S - {#99}) [ p(s) == 1 ]")
	if err != nil || !res.Holds {
		t.Errorf("res=%+v err=%v", res, err)
	}
}

func TestArithmeticInQueries(t *testing.T) {
	seq := &Seq{}
	seq.Header.Places = []string{"p", "q"}
	seq.Header.Trans = []string{"t"}
	seq.States = []State{{Index: 0, Marking: []int{6, 2}, Active: []int{1}}}
	cases := []struct {
		src  string
		want bool
	}{
		{"exists s in S [ p(s) - q(s) == 4 ]", true},
		{"exists s in S [ p(s) * q(s) == 12 ]", true},
		{"exists s in S [ p(s) / q(s) == 3 ]", true},
		{"exists s in S [ -q(s) == -2 ]", true},
		{"exists s in S [ !t(s) ]", false},
		{"exists s in S [ t(s) == 1 && (p(s) > 5 || q(s) > 5) ]", true},
		{"forall s in S [ index(s) == 0 ]", true},
	}
	for _, c := range cases {
		res, err := Check(seq, c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if res.Holds != c.want {
			t.Errorf("%q = %v, want %v", c.src, res.Holds, c.want)
		}
	}
}

func TestUnboundVariableInComprehension(t *testing.T) {
	seq := &Seq{}
	seq.Header.Places = []string{"p"}
	seq.Header.Trans = []string{"t"}
	seq.States = []State{{Index: 0, Marking: []int{1}, Active: []int{0}}}
	// The comprehension variable goes out of scope in the body.
	if _, err := Check(seq, "forall s in {x in S | p(x) > 0} [ p(x) > 0 ]"); err == nil {
		t.Error("out-of-scope variable accepted")
	}
}
