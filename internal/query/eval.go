package query

import "fmt"

// Result reports the verdict of a query over a trace.
type Result struct {
	// Holds is the truth value of the query.
	Holds bool
	// Witness is the index of the decisive state: for a failed forall,
	// the first violating state; for a successful exists, the first
	// satisfying state. -1 when no single state is decisive.
	Witness int
	// Checked counts the states the quantifier ranged over.
	Checked int
}

// env binds state variables to state indices during evaluation.
type env struct {
	seq  *Seq
	vars map[string]int
}

func (e *env) bind(name string, idx int) func() {
	old, had := e.vars[name]
	e.vars[name] = idx
	return func() {
		if had {
			e.vars[name] = old
		} else {
			delete(e.vars, name)
		}
	}
}

func (e *env) lookup(name string) (int, error) {
	idx, ok := e.vars[name]
	if !ok {
		return 0, fmt.Errorf("query: unbound state variable %q", name)
	}
	return idx, nil
}

// Eval runs the query against a state sequence.
func (q *Query) Eval(seq *Seq) (Result, error) {
	e := &env{seq: seq, vars: make(map[string]int)}
	include, err := evalSet(q.set, e)
	if err != nil {
		return Result{}, err
	}
	res := Result{Witness: -1}
	for i := range seq.States {
		if !include[i] {
			continue
		}
		res.Checked++
		undo := e.bind(q.Var, i)
		v, err := evalPexpr(q.body, e)
		undo()
		if err != nil {
			return Result{}, err
		}
		holds := v != 0
		if q.Quant == Forall && !holds {
			res.Holds = false
			res.Witness = i
			return res, nil
		}
		if q.Quant == Exists && holds {
			res.Holds = true
			res.Witness = i
			return res, nil
		}
	}
	res.Holds = q.Quant == Forall
	return res, nil
}

// evalSet computes the membership vector of a set expression.
func evalSet(s setExpr, e *env) ([]bool, error) {
	n := len(e.seq.States)
	switch s := s.(type) {
	case setAll:
		inc := make([]bool, n)
		for i := range inc {
			inc[i] = true
		}
		return inc, nil
	case setDiff:
		inc, err := evalSet(s.base, e)
		if err != nil {
			return nil, err
		}
		for _, r := range s.refs {
			if r >= 0 && r < n {
				inc[r] = false
			}
		}
		return inc, nil
	case setComp:
		inc, err := evalSet(s.base, e)
		if err != nil {
			return nil, err
		}
		for i := range inc {
			if !inc[i] {
				continue
			}
			undo := e.bind(s.v, i)
			v, err := evalPexpr(s.pred, e)
			undo()
			if err != nil {
				return nil, err
			}
			inc[i] = v != 0
		}
		return inc, nil
	}
	return nil, fmt.Errorf("query: unknown set expression %T", s)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func evalPexpr(p pexpr, e *env) (int64, error) {
	switch p := p.(type) {
	case pInt:
		return p.v, nil
	case pApply:
		idx, err := e.lookup(p.sv)
		if err != nil {
			return 0, err
		}
		v, ok := e.seq.Value(p.name, &e.seq.States[idx])
		if !ok {
			return 0, fmt.Errorf("query: %q is neither a place nor a transition", p.name)
		}
		return v, nil
	case pTime:
		idx, err := e.lookup(p.sv)
		if err != nil {
			return 0, err
		}
		return int64(e.seq.States[idx].Time), nil
	case pIndex:
		idx, err := e.lookup(p.sv)
		if err != nil {
			return 0, err
		}
		return int64(e.seq.States[idx].Index), nil
	case pDur:
		idx, err := e.lookup(p.sv)
		if err != nil {
			return 0, err
		}
		cur := e.seq.States[idx].Time
		if idx+1 < len(e.seq.States) {
			return int64(e.seq.States[idx+1].Time - cur), nil
		}
		return int64(e.seq.FinalTime - cur), nil
	case pInev:
		return evalInev(p, e)
	case pUnary:
		v, err := evalPexpr(p.x, e)
		if err != nil {
			return 0, err
		}
		if p.op == tBang {
			return b2i(v == 0), nil
		}
		return -v, nil
	case pBinary:
		l, err := evalPexpr(p.l, e)
		if err != nil {
			return 0, err
		}
		switch p.op {
		case tAnd:
			if l == 0 {
				return 0, nil
			}
			r, err := evalPexpr(p.r, e)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		case tOr:
			if l != 0 {
				return 1, nil
			}
			r, err := evalPexpr(p.r, e)
			if err != nil {
				return 0, err
			}
			return b2i(r != 0), nil
		}
		r, err := evalPexpr(p.r, e)
		if err != nil {
			return 0, err
		}
		switch p.op {
		case tPlus:
			return l + r, nil
		case tMinus:
			return l - r, nil
		case tStar:
			return l * r, nil
		case tSlash:
			if r == 0 {
				return 0, fmt.Errorf("query: division by zero")
			}
			return l / r, nil
		case tEQ:
			return b2i(l == r), nil
		case tNE:
			return b2i(l != r), nil
		case tLT:
			return b2i(l < r), nil
		case tLE:
			return b2i(l <= r), nil
		case tGT:
			return b2i(l > r), nil
		case tGE:
			return b2i(l >= r), nil
		}
	}
	return 0, fmt.Errorf("query: unknown expression %T", p)
}

// evalInev implements the linear-trace reading of the paper's temporal
// operator: from the state bound to p.sv, scanning forward (inclusive),
// f must eventually hold, with g holding at every earlier scanned state.
// Within f and g the variable C names the scanned state.
func evalInev(p pInev, e *env) (int64, error) {
	start, err := e.lookup(p.sv)
	if err != nil {
		return 0, err
	}
	for j := start; j < len(e.seq.States); j++ {
		undo := e.bind("C", j)
		fv, err := evalPexpr(p.f, e)
		if err != nil {
			undo()
			return 0, err
		}
		if fv != 0 {
			undo()
			return 1, nil
		}
		gv, err := evalPexpr(p.g, e)
		undo()
		if err != nil {
			return 0, err
		}
		if gv == 0 {
			return 0, nil
		}
	}
	return 0, nil
}

// Check is a convenience that parses and evaluates src in one call.
func Check(seq *Seq, src string) (Result, error) {
	q, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	return q.Eval(seq)
}
