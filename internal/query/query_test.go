package query

import (
	"context"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
)

// busSeq builds a tiny bus-handoff net and returns its state sequence.
func busSeq(t *testing.T) *Seq {
	t.Helper()
	b := petri.NewBuilder("bus")
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("want", 3)
	b.Place("done", 0)
	b.Trans("take").In("want").In("Bus_free").Out("Bus_busy")
	b.Trans("release").In("Bus_busy").Out("Bus_free").Out("done").EnablingConst(4)
	net := b.MustBuild()
	qb := NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: 100}); err != nil {
		t.Fatal(err)
	}
	return qb.Seq()
}

func mustCheck(t *testing.T, seq *Seq, src string) Result {
	t.Helper()
	res, err := Check(seq, src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func TestSeqBuilding(t *testing.T) {
	seq := busSeq(t)
	if seq.Len() < 7 {
		t.Fatalf("expected at least 7 states, got %d", seq.Len())
	}
	if seq.States[0].Index != 0 || seq.States[0].Time != 0 {
		t.Errorf("state 0 wrong: %+v", seq.States[0])
	}
	// Initial marking visible in state 0.
	v, ok := seq.Value("Bus_free", &seq.States[0])
	if !ok || v != 1 {
		t.Errorf("Bus_free in #0 = %d, %v", v, ok)
	}
	if seq.FinalTime != 100 {
		t.Errorf("final time = %d", seq.FinalTime)
	}
}

func TestForallInvariantHolds(t *testing.T) {
	seq := busSeq(t)
	// Between settled states the invariant can transiently be 0 (token
	// in limbo during the zero-time take), so express it as <= 1 and
	// >= 0 — and the strong form over settled end states.
	res := mustCheck(t, seq, "forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]")
	if !res.Holds {
		t.Errorf("invariant failed at state %d", res.Witness)
	}
	if res.Checked != seq.Len() {
		t.Errorf("checked %d of %d states", res.Checked, seq.Len())
	}
}

func TestForallFindsViolation(t *testing.T) {
	seq := busSeq(t)
	res := mustCheck(t, seq, "forall s in S [ done(s) == 0 ]")
	if res.Holds {
		t.Fatal("expected a violation (done does fill up)")
	}
	if res.Witness < 0 {
		t.Fatal("no witness returned")
	}
	// The witness really violates.
	if v, _ := seq.Value("done", &seq.States[res.Witness]); v == 0 {
		t.Errorf("witness state %d does not violate", res.Witness)
	}
}

func TestExistsAndSetDifference(t *testing.T) {
	seq := busSeq(t)
	// The paper's "did the buffer ever empty again" pattern: want(s)==3
	// holds only in #0, so excluding #0 the query is false.
	res := mustCheck(t, seq, "exists s in S [ want(s) == 3 ]")
	if !res.Holds || res.Witness != 0 {
		t.Errorf("exists over S: %+v", res)
	}
	res = mustCheck(t, seq, "exists s in (S - {#0}) [ want(s) == 3 ]")
	if res.Holds {
		t.Errorf("excluding #0 should make it false: %+v", res)
	}
	if res.Checked != seq.Len()-1 {
		t.Errorf("checked %d, want %d", res.Checked, seq.Len()-1)
	}
}

func TestTransitionApplication(t *testing.T) {
	seq := busSeq(t)
	// A zero-time firing is still two records (Start then End), so the
	// in-between state shows the transition as momentarily active —
	// that is how the paper's "exists s in S [exec_type_5(s) > 0]"
	// pattern observes even instantaneous events.
	res := mustCheck(t, seq, "exists s in S [ release(s) > 0 ]")
	if !res.Holds {
		t.Errorf("release firings should be visible mid-record: %+v", res)
	}
	// And never more than one at a time here.
	res = mustCheck(t, seq, "forall s in S [ release(s) <= 1 ]")
	if !res.Holds {
		t.Errorf("release concurrency exceeded 1: %+v", res)
	}
	res = mustCheck(t, seq, "exists s in S [ done(s) >= 3 ]")
	if !res.Holds {
		t.Errorf("three releases should have accumulated: %+v", res)
	}
}

func TestSetComprehensionAndInev(t *testing.T) {
	seq := busSeq(t)
	// The paper's temporal query: from every state where the bus is
	// busy, inevitably the bus is free again.
	res := mustCheck(t, seq,
		"forall s in {s2 in S | Bus_busy(s2) > 0} [ inev(s, Bus_free(C) > 0, true) ]")
	if !res.Holds {
		t.Errorf("bus should always be freed: %+v", res)
	}
	// Bare applications in boolean position mean "> 0".
	res = mustCheck(t, seq,
		"forall s in {s2 in S | Bus_busy(s2)} [ inev(s, Bus_free(C), true) ]")
	if !res.Holds {
		t.Errorf("bare-name form: %+v", res)
	}
}

func TestInevUntilCondition(t *testing.T) {
	seq := busSeq(t)
	// With an until-condition that is immediately false, inev fails
	// unless f holds at the starting state itself.
	res := mustCheck(t, seq,
		"forall s in {s2 in S | Bus_busy(s2)} [ inev(s, Bus_free(C), false) ]")
	if res.Holds {
		t.Errorf("until=false should break inev: %+v", res)
	}
}

func TestInevNeverSatisfied(t *testing.T) {
	seq := busSeq(t)
	res := mustCheck(t, seq, "exists s in S [ inev(s, want(C) == 99) ]")
	if res.Holds {
		t.Error("inev of an impossible condition held")
	}
}

func TestTimeAndIndexFunctions(t *testing.T) {
	seq := busSeq(t)
	res := mustCheck(t, seq, "forall s in S [ time(s) >= 0 ]")
	if !res.Holds {
		t.Errorf("time >= 0: %+v", res)
	}
	res = mustCheck(t, seq, "exists s in S [ index(s) == 0 ]")
	if !res.Holds {
		t.Errorf("index == 0: %+v", res)
	}
	// Releases happen at t=4, 8, 12 — a state at time >= 12 exists.
	res = mustCheck(t, seq, "exists s in S [ time(s) >= 12 ]")
	if !res.Holds {
		t.Errorf("time >= 12: %+v", res)
	}
}

func TestDurFunction(t *testing.T) {
	seq := busSeq(t)
	// Zero-time take: the in-limbo state between its Start and End
	// records lasts 0 ticks; the settled awaiting-release states last 4.
	res := mustCheck(t, seq, "exists s in S [ Bus_busy(s) + Bus_free(s) == 0 && dur(s) > 0 ]")
	if res.Holds {
		t.Errorf("no broken state should persist in a correct model: %+v", res)
	}
	res = mustCheck(t, seq, "exists s in S [ dur(s) == 4 ]")
	if !res.Holds {
		t.Errorf("the 4-tick bus-hold states should exist: %+v", res)
	}
	// The last state's duration extends to the final time of the run.
	res = mustCheck(t, seq, "forall s in S [ dur(s) >= 0 ]")
	if !res.Holds {
		t.Errorf("negative duration: %+v", res)
	}
}

func TestSingleEqualsAccepted(t *testing.T) {
	seq := busSeq(t)
	// The paper writes single '=' for equality.
	res := mustCheck(t, seq, "forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]")
	if !res.Holds {
		t.Fatal("sanity")
	}
	res2 := mustCheck(t, seq, "exists s in S [ want(s) = 3 ]")
	if !res2.Holds {
		t.Errorf("single '=' form failed: %+v", res2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"some s in S [ 1 ]",
		"forall s S [ 1 ]",
		"forall s in T [ 1 ]",
		"forall s in S [ 1",
		"forall s in S 1 ]",
		"forall s in S [ foo ]",
		"forall s in S [ inev(s) ]",
		"forall s in (S - {0}) [ 1 ]",
		"forall s in S [ x(s) + ]",
		"forall s in S [ 1 ] trailing",
		"forall s in S [ @ ]",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	seq := busSeq(t)
	bad := []string{
		"forall s in S [ NoSuchPlace(s) > 0 ]",
		"forall s in S [ want(unbound) > 0 ]",
		"forall s in S [ 1 / 0 == 1 ]",
	}
	for _, src := range bad {
		if _, err := Check(seq, src); err == nil {
			t.Errorf("expected eval error for %q", src)
		}
	}
}

// TestPaperQueries runs all four Section 4.4 queries against a real
// trace of the full pipeline model.
func TestPaperQueries(t *testing.T) {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	qb := NewBuilder(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, qb, sim.Options{Horizon: 10_000, Seed: 1988}); err != nil {
		t.Fatal(err)
	}
	seq := qb.Seq()

	// 1. Bus invariant. In our semantics the handoff transitions are
	// zero-time and the sum is transiently 0 while a token is in limbo,
	// so the faithful check is <= 1 everywhere plus an inevitability
	// that it returns to 1.
	res := mustCheck(t, seq, "forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]")
	if !res.Holds {
		t.Errorf("bus invariant (<=1) failed at state %d", res.Witness)
	}
	res = mustCheck(t, seq,
		"forall s in S [ inev(s, Bus_busy(C) + Bus_free(C) == 1) ]")
	if !res.Holds {
		t.Errorf("bus invariant (settles to 1) failed at state %d", res.Witness)
	}

	// 2. Does the instruction buffer ever become empty again after the
	// initial state? (Empty_I_buffers == 6 means the buffer holds no
	// instructions.)
	res = mustCheck(t, seq, "exists s in (S - {#0}) [ Empty_I_buffers(s) == 6 ]")
	// Either verdict is legitimate model behaviour; the query must
	// simply execute. With the default parameters the prefetcher keeps
	// up, so we expect false.
	if res.Holds {
		t.Logf("buffer did empty again at state %d", res.Witness)
	}

	// 3. Did we ever execute a type-5 (50-cycle) instruction?
	res = mustCheck(t, seq, "exists s in S [ exec_type_5(s) > 0 ]")
	if !res.Holds {
		t.Error("no type-5 instruction executed in 10 000 cycles (expected some)")
	}

	// 4. The bus is always freed after being used. On a finite trace the
	// horizon can cut a transfer mid-flight, so the quantifier excludes
	// the last memory-access-worth of the run (as one would when reading
	// a logic-analyzer capture).
	res = mustCheck(t, seq,
		"forall s in {s2 in S | Bus_busy(s2) && time(s2) < 9950} [ inev(s, Bus_free(C), true) ]")
	if !res.Holds {
		t.Errorf("bus not always freed: witness state %d", res.Witness)
	}
}

func TestQueryStringRoundsTrip(t *testing.T) {
	src := "forall s in S [ Bus_busy(s) <= 1 ]"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != src {
		t.Errorf("String() = %q", q.String())
	}
	if q.Quant != Forall || q.Var != "s" {
		t.Errorf("parsed %v %q", q.Quant, q.Var)
	}
	if !strings.Contains(Exists.String(), "exists") {
		t.Errorf("Quant.String: %v", Exists)
	}
}

func TestBuilderErrors(t *testing.T) {
	h := trace.Header{Net: "x", Places: []string{"p"}, Trans: []string{"t"}}
	b := NewBuilder(h)
	if err := b.Record(&trace.Record{Kind: trace.Start, Trans: 0}); err == nil {
		t.Error("event before initial accepted")
	}
	if err := b.Record(&trace.Record{Kind: trace.Initial, Marking: petri.Marking{1, 2}}); err == nil {
		t.Error("wrong-size marking accepted")
	}
}
