package stats_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/stats"
)

// snapRun reuses merge_test's runOnce at the snapshot tests' horizon.
func snapRun(t *testing.T, seed int64) *stats.Stats {
	t.Helper()
	return runOnce(t, seed, 2_000)
}

func report(t *testing.T, s *stats.Stats) string {
	t.Helper()
	var b strings.Builder
	if err := s.Report(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSnapshotRoundTrip: restoring a snapshot — including through the
// JSON encoding a distributed worker ships it in — reproduces the
// original report byte for byte.
func TestSnapshotRoundTrip(t *testing.T) {
	s := snapRun(t, 1988)
	want := report(t, s)

	restored, err := stats.FromSnapshot(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := report(t, restored); got != want {
		t.Error("restored snapshot report differs from original")
	}

	raw, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var sn stats.Snapshot
	if err := json.Unmarshal(raw, &sn); err != nil {
		t.Fatal(err)
	}
	viaJSON, err := stats.FromSnapshot(sn)
	if err != nil {
		t.Fatal(err)
	}
	if got := report(t, viaJSON); got != want {
		t.Error("JSON round-tripped snapshot report differs from original")
	}
}

// TestSnapshotMergeExactness is the property the distributed sweep
// depends on: merging restored snapshots in replication order is
// bit-for-bit the same as merging the live accumulators.
func TestSnapshotMergeExactness(t *testing.T) {
	seeds := []int64{7, 8, 9, 10}

	live := make([]*stats.Stats, len(seeds))
	restored := make([]*stats.Stats, len(seeds))
	for i, seed := range seeds {
		live[i] = snapRun(t, seed)
		raw, err := json.Marshal(snapRun(t, seed).Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var sn stats.Snapshot
		if err := json.Unmarshal(raw, &sn); err != nil {
			t.Fatal(err)
		}
		restored[i], err = stats.FromSnapshot(sn)
		if err != nil {
			t.Fatal(err)
		}
	}

	for i := 1; i < len(seeds); i++ {
		if err := live[0].Merge(live[i]); err != nil {
			t.Fatal(err)
		}
		if err := restored[0].Merge(restored[i]); err != nil {
			t.Fatal(err)
		}
	}
	if report(t, live[0]) != report(t, restored[0]) {
		t.Error("pooled report over restored snapshots differs from live pool")
	}
}

// TestFromSnapshotValidation rejects snapshots whose series do not
// match their header.
func TestFromSnapshotValidation(t *testing.T) {
	sn := snapRun(t, 1).Snapshot()

	bad := sn
	bad.Places = sn.Places[:len(sn.Places)-1]
	if _, err := stats.FromSnapshot(bad); err == nil || !strings.Contains(err.Error(), "place") {
		t.Errorf("short places error = %v", err)
	}

	bad = sn
	bad.Trans = sn.Trans[:len(sn.Trans)-1]
	if _, err := stats.FromSnapshot(bad); err == nil || !strings.Contains(err.Error(), "transition") {
		t.Errorf("short trans error = %v", err)
	}

	bad = sn
	bad.Starts = sn.Starts[:len(sn.Starts)-1]
	if _, err := stats.FromSnapshot(bad); err == nil || !strings.Contains(err.Error(), "counters") {
		t.Errorf("short starts error = %v", err)
	}
}
