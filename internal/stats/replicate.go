package stats

import (
	"context"
	"fmt"
	"math"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Summary is the result of independent replications of one experiment:
// the classical way to attach confidence to simulation estimates (each
// replication uses a distinct seed).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation across replications
	CI95   float64 // half-width of the 95% confidence interval
	Min    float64
	Max    float64
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (95%% CI, n=%d, sd=%.4f, range [%.4f, %.4f])",
		s.Mean, s.CI95, s.N, s.StdDev, s.Min, s.Max)
}

// t975 holds two-sided 97.5% Student-t quantiles for small degrees of
// freedom; beyond the table the normal quantile 1.96 is used.
var t975 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// Replicate runs n independent replications of net under opt (seeds
// opt.Seed, opt.Seed+1, ...), applies metric to each run's statistics,
// and summarizes across replications.
func Replicate(net *petri.Net, opt sim.Options, n int, metric func(*Stats) (float64, error)) (Summary, error) {
	if n < 2 {
		return Summary{}, fmt.Errorf("stats: Replicate needs at least 2 replications, got %d", n)
	}
	vals := make([]float64, 0, n)
	h := trace.HeaderOf(net)
	for i := 0; i < n; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		s := New(h)
		if _, err := sim.Run(context.Background(), net, s, o); err != nil {
			return Summary{}, fmt.Errorf("stats: replication %d: %w", i, err)
		}
		v, err := metric(s)
		if err != nil {
			return Summary{}, fmt.Errorf("stats: replication %d metric: %w", i, err)
		}
		vals = append(vals, v)
	}
	return Summarize(vals), nil
}

// Summarize computes the replication summary of a sample.
func Summarize(vals []float64) Summary {
	s := Summary{N: len(vals)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = vals[0], vals[0]
	for _, v := range vals {
		s.Mean += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean /= float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(s.N-1))
	df := s.N - 1
	tq := 1.96
	if df < len(t975) {
		tq = t975[df]
	}
	s.CI95 = tq * s.StdDev / math.Sqrt(float64(s.N))
	return s
}
