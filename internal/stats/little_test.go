package stats

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/trace"
)

// delayLine: tokens enter a place every 4 ticks and leave after a
// 6-tick service — Little's law gives residence exactly 6.
func delayLine(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("line")
	b.Place("src", 1)
	b.Place("queue", 0)
	b.Place("sink", 0)
	b.Trans("arrive").In("src").Out("src").Out("queue").EnablingConst(4)
	b.Trans("serve").In("queue").Out("sink").EnablingConst(6).Servers(1)
	return b.MustBuild()
}

func TestResidenceLittlesLaw(t *testing.T) {
	// Stable station: arrivals every 8 ticks, service 6 ticks — each
	// token spends exactly the service time on the queue place.
	b := petri.NewBuilder("stable")
	b.Place("src", 1)
	b.Place("queue", 0)
	b.Place("sink", 0)
	b.Trans("arrive").In("src").Out("src").Out("queue").EnablingConst(8)
	b.Trans("serve").In("queue").Out("sink").EnablingConst(6)
	stable := b.MustBuild()
	s2 := New(trace.HeaderOf(stable))
	if _, err := sim.Run(context.Background(), stable, s2, sim.Options{Horizon: 100_000}); err != nil {
		t.Fatal(err)
	}
	row2, err := s2.Residence(stable, "queue")
	if err != nil {
		t.Fatal(err)
	}
	// Each token waits exactly the 6-tick service: W = 6.
	if math.Abs(row2.Residence-6) > 0.05 {
		t.Errorf("residence = %.4f, want 6 (L=%.4f λ=%.4f)", row2.Residence, row2.AvgTokens, row2.Throughput)
	}
	if math.Abs(row2.Throughput-0.125) > 0.001 {
		t.Errorf("throughput = %.4f, want 0.125", row2.Throughput)
	}
}

func TestResidenceNeverLeft(t *testing.T) {
	b := petri.NewBuilder("trap")
	b.Place("src", 1)
	b.Place("trap", 0)
	b.Trans("fill").In("src").Out("src").Out("trap").EnablingConst(5)
	net := b.MustBuild()
	s := New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 1_000}); err != nil {
		t.Fatal(err)
	}
	row, err := s.Residence(net, "trap")
	if err != nil {
		t.Fatal(err)
	}
	if row.Residence != -1 {
		t.Errorf("tokens never leave trap; residence = %v", row.Residence)
	}
}

func TestBottleneckOrdering(t *testing.T) {
	net := delayLine(t)
	s := New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000}); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Bottlenecks(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no bottleneck rows")
	}
	// sink never drains: it must sort first.
	if rows[0].Place != "sink" || rows[0].Residence != -1 {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	var b strings.Builder
	if err := s.BottleneckReport(net, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "never left") || !strings.Contains(b.String(), "queue") {
		t.Errorf("report:\n%s", b.String())
	}
}

func TestResidenceErrors(t *testing.T) {
	net := delayLine(t)
	s := New(trace.HeaderOf(net))
	if _, err := s.Residence(net, "ghost"); err == nil {
		t.Error("unknown place accepted")
	}
	other := New(trace.Header{Net: "x", Places: []string{"a"}, Trans: []string{"t"}})
	if _, err := other.Residence(net, "queue"); err == nil {
		t.Error("mismatched net accepted")
	}
}
