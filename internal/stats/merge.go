package stats

import "fmt"

// mergeSeries pools two time-weighted series: integrals add, extrema
// combine, and the merged "current" value is the second series' end
// value (the pooled series behaves like the runs played back to back).
func mergeSeries(a, b *series) {
	a.wsum += b.wsum
	a.wsumsq += b.wsumsq
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.cur = b.cur
}

// Runs returns the number of simulation runs pooled into s: 1 for a
// plain accumulator, more after Merge.
func (s *Stats) Runs() int {
	if s.runs == 0 {
		return 1
	}
	return s.runs
}

// Merge pools another run's statistics into s, as if the two
// experiments had been played back to back: durations and event counts
// add, time-weighted integrals add (so pooled averages weight each run
// by its length), and extrema combine. Both accumulators must observe
// the same net. A replication driver that folds per-run statistics in
// a fixed replication order obtains bit-for-bit identical pools no
// matter how the runs were scheduled, because the floating-point
// accumulation then happens in one fixed order.
//
// o is flushed but not otherwise modified; s becomes the pool.
func (s *Stats) Merge(o *Stats) error {
	if s.Header.Net != o.Header.Net ||
		len(s.places) != len(o.places) || len(s.trans) != len(o.trans) {
		return fmt.Errorf("stats: cannot merge %q (%d places, %d trans) into %q (%d places, %d trans)",
			o.Header.Net, len(o.places), len(o.trans), s.Header.Net, len(s.places), len(s.trans))
	}
	s.flush()
	o.flush()
	for i := range s.places {
		mergeSeries(&s.places[i], &o.places[i])
	}
	for i := range s.trans {
		mergeSeries(&s.trans[i], &o.trans[i])
	}
	for i := range s.starts {
		s.starts[i] += o.starts[i]
		s.ends[i] += o.ends[i]
	}
	s.totalStarts += o.totalStarts
	s.totalEnds += o.totalEnds
	s.runs = s.Runs() + o.Runs()

	// The pooled clock spans the concatenated runs; series stop
	// integrating at it (finished), so only the summed integrals matter.
	s.clock += o.Duration()
	for i := range s.places {
		s.places[i].last = s.clock
	}
	for i := range s.trans {
		s.trans[i].last = s.clock
	}
	s.finished = true
	return nil
}
