// Package stats is the P-NUT statistical analysis tool ("stat",
// Section 4.2): it extracts performance information from simulation
// traces in terms of places and transitions.
//
// For places it reports the time-weighted average (and standard
// deviation, minimum, maximum) of the token count — e.g. the average
// number of tokens on Bus_busy is the utilization of the bus, and the
// averages on pre_fetching, fetching and storing break that utilization
// down by activity.
//
// For transitions it reports the distribution of the number of
// concurrent firings — for a single-server transition this is its
// utilization; for a multi-server transition it is the queueing-network
// "number in service" — along with start/end counts and throughput
// (completions per unit time), from which instruction processing rates
// are read directly.
//
// Stats implements trace.Observer, so it can be plugged straight into
// the simulator or fed from a stored trace through trace.Copy.
package stats

import (
	"fmt"
	"math"

	"repro/internal/petri"
	"repro/internal/trace"
)

// series accumulates a time-weighted step function.
type series struct {
	cur    int
	last   petri.Time
	wsum   float64 // integral of value dt
	wsumsq float64 // integral of value^2 dt
	min    int
	max    int
	seeded bool
}

func (s *series) seed(v int, at petri.Time) {
	s.cur, s.last = v, at
	s.min, s.max = v, v
	s.seeded = true
}

func (s *series) advance(to petri.Time) {
	dt := float64(to - s.last)
	if dt > 0 {
		v := float64(s.cur)
		s.wsum += v * dt
		s.wsumsq += v * v * dt
		s.last = to
	}
}

func (s *series) set(v int, at petri.Time) {
	if !s.seeded {
		s.seed(v, at)
		return
	}
	s.advance(at)
	s.cur = v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *series) mean(total petri.Time) float64 {
	if total <= 0 {
		return float64(s.cur)
	}
	return s.wsum / float64(total)
}

func (s *series) stddev(total petri.Time) float64 {
	if total <= 0 {
		return 0
	}
	m := s.mean(total)
	v := s.wsumsq/float64(total) - m*m
	if v < 0 {
		v = 0 // guard rounding
	}
	return math.Sqrt(v)
}

// Stats accumulates a trace into place and transition statistics.
type Stats struct {
	Header    trace.Header
	RunNumber int

	places []series
	trans  []series // concurrent firings
	starts []int64
	ends   []int64

	initialClock petri.Time
	clock        petri.Time
	finished     bool
	totalStarts  int64
	totalEnds    int64
	runs         int // simulation runs pooled in (0 means a single run)
}

// New returns an empty accumulator for traces described by h.
func New(h trace.Header) *Stats {
	return &Stats{
		Header:    h,
		RunNumber: 1,
		places:    make([]series, len(h.Places)),
		trans:     make([]series, len(h.Trans)),
		starts:    make([]int64, len(h.Trans)),
		ends:      make([]int64, len(h.Trans)),
	}
}

// Clone returns an independent deep copy of the accumulator: mutating
// the clone (merging into it, recording more events) never touches the
// original. The Header's name slices are shared — they are immutable by
// contract.
func (s *Stats) Clone() *Stats {
	c := *s
	c.places = append([]series(nil), s.places...)
	c.trans = append([]series(nil), s.trans...)
	c.starts = append([]int64(nil), s.starts...)
	c.ends = append([]int64(nil), s.ends...)
	return &c
}

// Record implements trace.Observer.
func (s *Stats) Record(rec *trace.Record) error {
	switch rec.Kind {
	case trace.Initial:
		if len(rec.Marking) != len(s.places) {
			return fmt.Errorf("stats: initial marking has %d places, header has %d", len(rec.Marking), len(s.places))
		}
		s.initialClock = rec.Time
		s.clock = rec.Time
		for i, c := range rec.Marking {
			s.places[i].seed(c, rec.Time)
		}
		for i := range s.trans {
			s.trans[i].seed(0, rec.Time)
		}
	case trace.Start, trace.End:
		s.clock = rec.Time
		for _, d := range rec.Deltas {
			if int(d.Place) >= len(s.places) {
				return fmt.Errorf("stats: delta for unknown place %d", d.Place)
			}
			p := &s.places[d.Place]
			p.set(p.cur+d.Change, rec.Time)
		}
		if int(rec.Trans) >= len(s.trans) {
			return fmt.Errorf("stats: event for unknown transition %d", rec.Trans)
		}
		tr := &s.trans[rec.Trans]
		if rec.Kind == trace.Start {
			tr.set(tr.cur+1, rec.Time)
			s.starts[rec.Trans]++
			s.totalStarts++
		} else {
			tr.set(tr.cur-1, rec.Time)
			s.ends[rec.Trans]++
			s.totalEnds++
		}
	case trace.Final:
		s.clock = rec.Time
		for i := range s.places {
			s.places[i].advance(rec.Time)
		}
		for i := range s.trans {
			s.trans[i].advance(rec.Time)
		}
		s.finished = true
	default:
		return fmt.Errorf("stats: unknown record kind %q", rec.Kind)
	}
	return nil
}

// Duration returns the observed simulation length.
func (s *Stats) Duration() petri.Time { return s.clock - s.initialClock }

// flushed guards against reading statistics mid-stream: if no Final
// record has arrived yet, series are advanced to the latest clock so the
// numbers are still well-defined.
func (s *Stats) flush() {
	if s.finished {
		return
	}
	for i := range s.places {
		s.places[i].advance(s.clock)
	}
	for i := range s.trans {
		s.trans[i].advance(s.clock)
	}
}

// PlaceRow is one line of the PLACE STATISTICS table.
type PlaceRow struct {
	Name     string
	Min, Max int
	Avg      float64
	StdDev   float64
}

// EventRow is one line of the EVENT STATISTICS table.
type EventRow struct {
	Name       string
	Min, Max   int
	Avg        float64
	StdDev     float64
	Starts     int64
	Ends       int64
	Throughput float64 // Ends / Duration
}

// PlaceRowByName returns the statistics row for a named place.
func (s *Stats) PlaceRowByName(name string) (PlaceRow, bool) {
	id, ok := s.Header.PlaceID(name)
	if !ok {
		return PlaceRow{}, false
	}
	return s.placeRow(id), true
}

// EventRowByName returns the statistics row for a named transition.
func (s *Stats) EventRowByName(name string) (EventRow, bool) {
	id, ok := s.Header.TransID(name)
	if !ok {
		return EventRow{}, false
	}
	return s.eventRow(id), true
}

func (s *Stats) placeRow(id petri.PlaceID) PlaceRow {
	s.flush()
	d := s.Duration()
	p := &s.places[id]
	return PlaceRow{
		Name: s.Header.Places[id],
		Min:  p.min, Max: p.max,
		Avg: p.mean(d), StdDev: p.stddev(d),
	}
}

func (s *Stats) eventRow(id petri.TransID) EventRow {
	s.flush()
	d := s.Duration()
	tr := &s.trans[id]
	th := 0.0
	if d > 0 {
		th = float64(s.ends[id]) / float64(d)
	}
	return EventRow{
		Name: s.Header.Trans[id],
		Min:  tr.min, Max: tr.max,
		Avg: tr.mean(d), StdDev: tr.stddev(d),
		Starts: s.starts[id], Ends: s.ends[id],
		Throughput: th,
	}
}

// PlaceRows returns all place rows in header order.
func (s *Stats) PlaceRows() []PlaceRow {
	rows := make([]PlaceRow, len(s.places))
	for i := range s.places {
		rows[i] = s.placeRow(petri.PlaceID(i))
	}
	return rows
}

// EventRows returns all transition rows in header order.
func (s *Stats) EventRows() []EventRow {
	rows := make([]EventRow, len(s.trans))
	for i := range s.trans {
		rows[i] = s.eventRow(petri.TransID(i))
	}
	return rows
}

// TotalStarts returns the number of firings started.
func (s *Stats) TotalStarts() int64 { return s.totalStarts }

// TotalEnds returns the number of firings completed.
func (s *Stats) TotalEnds() int64 { return s.totalEnds }

// Utilization is a convenience for the common place-as-resource reading:
// the time-weighted mean token count of a named place.
func (s *Stats) Utilization(place string) (float64, error) {
	row, ok := s.PlaceRowByName(place)
	if !ok {
		return 0, fmt.Errorf("stats: unknown place %q", place)
	}
	return row.Avg, nil
}

// Throughput is a convenience: completions of a named transition per
// unit time (the paper reads instruction processing rate off transition
// Issue this way).
func (s *Stats) Throughput(transition string) (float64, error) {
	row, ok := s.EventRowByName(transition)
	if !ok {
		return 0, fmt.Errorf("stats: unknown transition %q", transition)
	}
	return row.Throughput, nil
}
