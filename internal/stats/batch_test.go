package stats

import (
	"context"
	"math"
	"testing"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestBatchMeansDeterministicWave(t *testing.T) {
	// A 10-tick square wave: on for 5, off for 5 -> every 10-tick batch
	// has mean exactly 0.5.
	b := petri.NewBuilder("wave")
	b.Place("on", 0)
	b.Place("off", 1)
	b.Trans("rise").In("off").Out("on").EnablingConst(5)
	b.Trans("fall").In("on").Out("off").EnablingConst(5)
	net := b.MustBuild()
	h := trace.HeaderOf(net)
	bm, err := NewPlaceBatches(h, "on", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), net, bm, sim.Options{Horizon: 100}); err != nil {
		t.Fatal(err)
	}
	batches := bm.Batches()
	if len(batches) != 10 {
		t.Fatalf("batches = %v", batches)
	}
	for i, v := range batches {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("batch %d = %v, want 0.5", i, v)
		}
	}
	sum := bm.Summary()
	if math.Abs(sum.Mean-0.5) > 1e-12 || sum.StdDev > 1e-12 {
		t.Errorf("summary: %+v", sum)
	}
}

func TestBatchMeansThroughput(t *testing.T) {
	b := petri.NewBuilder("tick")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").EnablingConst(2)
	net := b.MustBuild()
	h := trace.HeaderOf(net)
	bm, err := NewTransitionBatches(h, "t", 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), net, bm, sim.Options{Horizon: 200}); err != nil {
		t.Fatal(err)
	}
	// One completion every 2 ticks. A completion landing exactly on a
	// batch boundary belongs to the *next* batch, so the first batch
	// holds 9 events (t=2..18) and every later one holds 10 (t=20k..20k+18).
	batches := bm.Batches()
	if len(batches) != 10 {
		t.Fatalf("batches: %v", batches)
	}
	if math.Abs(batches[0]-0.45) > 1e-12 {
		t.Errorf("first batch = %v, want 0.45", batches[0])
	}
	for i, v := range batches[1:] {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("batch %d = %v, want 0.5", i+1, v)
		}
	}
}

func TestBatchMeansErrors(t *testing.T) {
	h := trace.Header{Net: "x", Places: []string{"p"}, Trans: []string{"t"}}
	if _, err := NewPlaceBatches(h, "ghost", 10); err == nil {
		t.Error("unknown place accepted")
	}
	if _, err := NewTransitionBatches(h, "ghost", 10); err == nil {
		t.Error("unknown transition accepted")
	}
	if _, err := NewPlaceBatches(h, "p", 0); err == nil {
		t.Error("zero batch length accepted")
	}
	bm, _ := NewPlaceBatches(h, "p", 10)
	if err := bm.Record(&trace.Record{Kind: trace.Start, Trans: 0}); err == nil {
		t.Error("event before initial accepted")
	}
}
