package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/sim"
)

func replNet(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("coin")
	b.Place("p", 1)
	b.Place("heads_won", 0)
	b.Place("tails_won", 0)
	b.Trans("flip_heads").In("p").Out("heads_won").Freq(1).EnablingConst(1)
	b.Trans("flip_tails").In("p").Out("tails_won").Freq(1).EnablingConst(1)
	b.Trans("again_h").In("heads_won").Out("p")
	b.Trans("again_t").In("tails_won").Out("p")
	return b.MustBuild()
}

func TestReplicateCoinFlip(t *testing.T) {
	net := replNet(t)
	sum, err := Replicate(net, sim.Options{Horizon: 2_000, Seed: 1}, 10,
		func(s *Stats) (float64, error) { return s.Throughput("flip_heads") })
	if err != nil {
		t.Fatal(err)
	}
	// Fair coin, one flip per tick: heads throughput ~0.5.
	if math.Abs(sum.Mean-0.5) > 0.05 {
		t.Errorf("mean = %v", sum)
	}
	if sum.N != 10 || sum.StdDev < 0 || sum.CI95 <= 0 {
		t.Errorf("summary malformed: %+v", sum)
	}
	if sum.Min > sum.Mean || sum.Max < sum.Mean {
		t.Errorf("range does not bracket mean: %+v", sum)
	}
	if !strings.Contains(sum.String(), "95% CI") {
		t.Errorf("String: %s", sum)
	}
}

func TestReplicateDistinctSeeds(t *testing.T) {
	net := replNet(t)
	sum, err := Replicate(net, sim.Options{Horizon: 500, Seed: 7}, 5,
		func(s *Stats) (float64, error) { return s.Throughput("flip_heads") })
	if err != nil {
		t.Fatal(err)
	}
	// With only 500 flips, replications differ: nonzero spread proves
	// the seeds were distinct.
	if sum.StdDev == 0 {
		t.Error("replications identical; seeds not varied")
	}
}

func TestReplicateErrors(t *testing.T) {
	net := replNet(t)
	if _, err := Replicate(net, sim.Options{Horizon: 100}, 1,
		func(s *Stats) (float64, error) { return 0, nil }); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Replicate(net, sim.Options{}, 3,
		func(s *Stats) (float64, error) { return 0, nil }); err == nil {
		t.Error("invalid sim options accepted")
	}
	if _, err := Replicate(net, sim.Options{Horizon: 100}, 3,
		func(s *Stats) (float64, error) { return s.Throughput("nope") }); err == nil {
		t.Error("metric error not propagated")
	}
}

func TestSummarizeSmallSamples(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := Summarize([]float64{4})
	if s.N != 1 || s.Mean != 4 || s.StdDev != 0 {
		t.Errorf("single: %+v", s)
	}
	s = Summarize([]float64{1, 3})
	if s.Mean != 2 || math.Abs(s.StdDev-math.Sqrt2) > 1e-12 {
		t.Errorf("pair: %+v", s)
	}
	// df=1 uses the heavy t quantile.
	if s.CI95 < 10 {
		t.Errorf("CI for df=1 should use t=12.7: %+v", s)
	}
	// Large sample approaches the normal quantile.
	large := make([]float64, 100)
	for i := range large {
		large[i] = float64(i % 2)
	}
	ls := Summarize(large)
	want := 1.96 * ls.StdDev / 10
	if math.Abs(ls.CI95-want) > 1e-9 {
		t.Errorf("large-sample CI = %v, want %v", ls.CI95, want)
	}
}
