package stats_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestBatchMeansAgreesWithStats lives in an external test package
// because it exercises batch means on the pipeline model, and package
// pipeline itself depends on stats for its Analyze helper.
func TestBatchMeansAgreesWithStats(t *testing.T) {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	h := trace.HeaderOf(net)
	s := stats.New(h)
	bm, err := stats.NewPlaceBatches(h, "Bus_busy", 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), net, trace.Tee{s, bm}, sim.Options{Horizon: 50_000, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	global, _ := s.Utilization("Bus_busy")
	sum := bm.Summary()
	if len(bm.Batches()) != 50 {
		t.Fatalf("expected 50 batches, got %d", len(bm.Batches()))
	}
	if math.Abs(sum.Mean-global) > 0.01 {
		t.Errorf("batch mean %.4f vs global %.4f", sum.Mean, global)
	}
	if sum.CI95 <= 0 || sum.CI95 > 0.1 {
		t.Errorf("CI half-width implausible: %+v", sum)
	}
	if math.Abs(sum.Mean-global) > 3*sum.CI95+1e-9 {
		t.Errorf("global value far outside CI: %+v vs %.4f", sum, global)
	}
}
