package stats_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func runOnce(t *testing.T, seed int64, horizon int64) *stats.Stats {
	t.Helper()
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: horizon, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMergePoolsRuns: merging two runs must add durations and event
// counts, combine extrema, and weight pooled averages by run length.
func TestMergePoolsRuns(t *testing.T) {
	a := runOnce(t, 1, 4_000)
	b := runOnce(t, 2, 1_000)
	// Independent copies for the expectation, since Merge mutates a.
	a2 := runOnce(t, 1, 4_000)
	b2 := runOnce(t, 2, 1_000)

	ua, _ := a2.Utilization("Bus_busy")
	ub, _ := b2.Utilization("Bus_busy")
	da, db := float64(a2.Duration()), float64(b2.Duration())
	wantUtil := (ua*da + ub*db) / (da + db)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Runs() != 2 {
		t.Errorf("Runs() = %d, want 2", a.Runs())
	}
	if got, want := a.Duration(), a2.Duration()+b2.Duration(); got != want {
		t.Errorf("pooled duration %d, want %d", got, want)
	}
	if got, want := a.TotalEnds(), a2.TotalEnds()+b2.TotalEnds(); got != want {
		t.Errorf("pooled ends %d, want %d", got, want)
	}
	got, _ := a.Utilization("Bus_busy")
	if math.Abs(got-wantUtil) > 1e-12 {
		t.Errorf("pooled Bus_busy utilization %.12f, want duration-weighted %.12f", got, wantUtil)
	}
	rowA, _ := a2.PlaceRowByName("Empty_I_buffers")
	rowB, _ := b2.PlaceRowByName("Empty_I_buffers")
	rowM, _ := a.PlaceRowByName("Empty_I_buffers")
	if rowM.Min != min(rowA.Min, rowB.Min) || rowM.Max != max(rowA.Max, rowB.Max) {
		t.Errorf("pooled extrema %d/%d, want %d/%d",
			rowM.Min, rowM.Max, min(rowA.Min, rowB.Min), max(rowA.Max, rowB.Max))
	}
	// Pooled throughput is total completions over total time.
	thM, _ := a.Throughput("Issue")
	wantTh := float64(a2.EventRows()[mustTransIdx(t, a2, "Issue")].Ends+
		b2.EventRows()[mustTransIdx(t, b2, "Issue")].Ends) / (da + db)
	if math.Abs(thM-wantTh) > 1e-12 {
		t.Errorf("pooled Issue throughput %.12f, want %.12f", thM, wantTh)
	}
}

func mustTransIdx(t *testing.T, s *stats.Stats, name string) int {
	t.Helper()
	id, ok := s.Header.TransID(name)
	if !ok {
		t.Fatalf("unknown transition %q", name)
	}
	return int(id)
}

// TestMergeFoldDeterministic: folding the same runs in the same order
// must reproduce the pooled report byte for byte — the property the
// parallel driver's replication-order fold relies on.
func TestMergeFoldDeterministic(t *testing.T) {
	fold := func() string {
		acc := runOnce(t, 1, 2_000)
		for _, seed := range []int64{2, 3, 4} {
			if err := acc.Merge(runOnce(t, seed, 2_000)); err != nil {
				t.Fatal(err)
			}
		}
		var b strings.Builder
		if err := acc.Report(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if fold() != fold() {
		t.Error("identical folds produced different pooled reports")
	}
}

// TestMergeRejectsMismatchedNets: pooling across different nets is an
// error, not silent corruption.
func TestMergeRejectsMismatchedNets(t *testing.T) {
	a := runOnce(t, 1, 500)
	net, err := pipeline.Prefetch(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, b, sim.Options{Horizon: 500, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Error("merging stats of different nets must fail")
	}
}
