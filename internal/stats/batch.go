package stats

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/trace"
)

// BatchMeans estimates a confidence interval from a *single* long run
// by the classical batch-means method: the run is cut into fixed-length
// batches, the metric is computed per batch, and the batches are
// treated as approximately independent samples. It implements
// trace.Observer and can be Tee'd alongside Stats.
//
// Two metrics are supported, matching what the stat tool reports:
// the time-weighted mean token count of a place (utilization) and the
// completion rate of a transition (throughput).
type BatchMeans struct {
	batchLen petri.Time
	place    petri.PlaceID // -1 if a transition metric
	trans    petri.TransID // -1 if a place metric

	started    bool
	cur        int   // current token count (place metric)
	ends       int64 // completions in the current batch (transition metric)
	lastT      petri.Time
	integral   float64
	batchStart petri.Time
	batches    []float64
}

// NewPlaceBatches builds a batch-means estimator of a place's
// time-weighted mean token count.
func NewPlaceBatches(h trace.Header, place string, batchLen petri.Time) (*BatchMeans, error) {
	id, ok := h.PlaceID(place)
	if !ok {
		return nil, fmt.Errorf("stats: unknown place %q", place)
	}
	if batchLen <= 0 {
		return nil, fmt.Errorf("stats: batch length must be positive, got %d", batchLen)
	}
	return &BatchMeans{batchLen: batchLen, place: id, trans: -1}, nil
}

// NewTransitionBatches builds a batch-means estimator of a transition's
// throughput (completions per tick).
func NewTransitionBatches(h trace.Header, transition string, batchLen petri.Time) (*BatchMeans, error) {
	id, ok := h.TransID(transition)
	if !ok {
		return nil, fmt.Errorf("stats: unknown transition %q", transition)
	}
	if batchLen <= 0 {
		return nil, fmt.Errorf("stats: batch length must be positive, got %d", batchLen)
	}
	return &BatchMeans{batchLen: batchLen, place: -1, trans: id}, nil
}

// advance integrates the current value up to time t, closing batches at
// every boundary crossed.
func (b *BatchMeans) advance(t petri.Time) {
	for t >= b.batchStart+b.batchLen {
		boundary := b.batchStart + b.batchLen
		if b.place >= 0 {
			b.integral += float64(b.cur) * float64(boundary-b.lastT)
			b.batches = append(b.batches, b.integral/float64(b.batchLen))
			b.integral = 0
		} else {
			b.batches = append(b.batches, float64(b.ends)/float64(b.batchLen))
			b.ends = 0
		}
		b.lastT = boundary
		b.batchStart = boundary
	}
	if b.place >= 0 {
		b.integral += float64(b.cur) * float64(t-b.lastT)
	}
	b.lastT = t
}

// Record implements trace.Observer.
func (b *BatchMeans) Record(rec *trace.Record) error {
	switch rec.Kind {
	case trace.Initial:
		b.started = true
		b.lastT = rec.Time
		b.batchStart = rec.Time
		if b.place >= 0 {
			if int(b.place) >= len(rec.Marking) {
				return fmt.Errorf("stats: batch place %d out of range", b.place)
			}
			b.cur = rec.Marking[b.place]
		}
	case trace.Start, trace.End:
		if !b.started {
			return fmt.Errorf("stats: batch event before initial state")
		}
		b.advance(rec.Time)
		if b.place >= 0 {
			for _, d := range rec.Deltas {
				if d.Place == b.place {
					b.cur += d.Change
				}
			}
		} else if rec.Kind == trace.End && rec.Trans == b.trans {
			b.ends++
		}
	case trace.Final:
		b.advance(rec.Time) // closes every full batch; the tail is discarded
	}
	return nil
}

// Batches returns the completed batch values.
func (b *BatchMeans) Batches() []float64 {
	return append([]float64(nil), b.batches...)
}

// Summary summarizes the batches (mean, stddev, 95% CI).
func (b *BatchMeans) Summary() Summary {
	return Summarize(b.batches)
}
