package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/petri"
)

// The paper's Section 4.3 closes with the P-NUT group "exploring ...
// giving users feedback about bottlenecks in the system". This file is
// that feature: token residence times by Little's law. For a place in
// steady state, the mean time a token spends on it is
//
//	W = L / λ
//
// where L is the time-weighted mean token count (which the stat tool
// already computes) and λ is the token departure rate (completions of
// consuming transitions weighted by their input-arc multiplicities).
// Places where W is large relative to the service times around them are
// the queues where work piles up — the bottlenecks.

// ResidenceRow describes one place's queueing behaviour.
type ResidenceRow struct {
	Place string
	// AvgTokens is L, the mean queue length.
	AvgTokens float64
	// Throughput is λ, tokens leaving per tick.
	Throughput float64
	// Residence is W = L/λ, mean ticks a token spends on the place;
	// infinite (reported as -1) if nothing ever left.
	Residence float64
}

// Residence computes the mean token residence time of one place. The
// net supplies the arc structure that the trace alone does not carry.
func (s *Stats) Residence(net *petri.Net, place string) (ResidenceRow, error) {
	id, ok := net.PlaceID(place)
	if !ok {
		return ResidenceRow{}, fmt.Errorf("stats: unknown place %q", place)
	}
	if len(s.places) != net.NumPlaces() || len(s.trans) != net.NumTrans() {
		return ResidenceRow{}, fmt.Errorf("stats: trace shape does not match net %q", net.Name)
	}
	row := ResidenceRow{Place: place}
	pr := s.placeRow(id)
	row.AvgTokens = pr.Avg
	d := s.Duration()
	if d <= 0 {
		return row, nil
	}
	var departed float64
	for ti := range net.Trans {
		for _, a := range net.Trans[ti].In {
			if a.Place == id {
				departed += float64(s.ends[ti]) * float64(a.Weight)
			}
		}
	}
	row.Throughput = departed / float64(d)
	if row.Throughput > 0 {
		row.Residence = row.AvgTokens / row.Throughput
	} else if row.AvgTokens > 0 {
		row.Residence = -1 // tokens present but none ever left
	}
	return row, nil
}

// Bottlenecks returns every place's residence row, sorted by residence
// time descending (unbounded-wait places first, then longest queues).
// Places that never held a token are omitted.
func (s *Stats) Bottlenecks(net *petri.Net) ([]ResidenceRow, error) {
	var rows []ResidenceRow
	for _, p := range net.Places {
		row, err := s.Residence(net, p.Name)
		if err != nil {
			return nil, err
		}
		if row.AvgTokens == 0 && row.Throughput == 0 {
			continue
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := rows[i].Residence, rows[j].Residence
		if (ri < 0) != (rj < 0) {
			return ri < 0 // unbounded waits first
		}
		if ri != rj {
			return ri > rj
		}
		return rows[i].Place < rows[j].Place
	})
	return rows, nil
}

// BottleneckReport writes the sorted residence table.
func (s *Stats) BottleneckReport(net *petri.Net, w io.Writer) error {
	rows, err := s.Bottlenecks(net)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "BOTTLENECK ANALYSIS (token residence by Little's law)\n")
	fmt.Fprintf(&b, "%-32s %12s %12s %12s\n", "place", "avg tokens", "departures", "residence")
	for _, r := range rows {
		res := fmt.Sprintf("%.2f", r.Residence)
		if r.Residence < 0 {
			res = "never left"
		}
		fmt.Fprintf(&b, "%-32s %12.4f %12.4f %12s\n", r.Place, r.AvgTokens, r.Throughput, res)
	}
	_, err = io.WriteString(w, b.String())
	return err
}
