package stats

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Report writes the three sections of the Figure 5 report — RUN
// STATISTICS, EVENT STATISTICS and PLACE STATISTICS — as aligned plain
// text (the paper emitted tbl/troff source; the information and row
// layout are the same).
func (s *Stats) Report(w io.Writer) error {
	s.flush()
	var b strings.Builder

	fmt.Fprintf(&b, "RUN STATISTICS\n")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Run number\t%d\n", s.RunNumber)
	if n := s.Runs(); n > 1 {
		fmt.Fprintf(tw, "Replications pooled\t%d\n", n)
	}
	fmt.Fprintf(tw, "Initial clock value\t%d\n", s.initialClock)
	fmt.Fprintf(tw, "Length of Simulation\t%d\n", s.Duration())
	fmt.Fprintf(tw, "Events started\t%d\n", s.totalStarts)
	fmt.Fprintf(tw, "Events finished\t%d\n", s.totalEnds)
	tw.Flush()

	fmt.Fprintf(&b, "\nEVENT STATISTICS\nRun number %d\n", s.RunNumber)
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "Transition\tMin/Max\tAvg\tStandard\tStarts\tThroughput\t\n")
	fmt.Fprintf(tw, "(name)\tConcurrent\tConcurrent\tDeviation\t/Ends\t\t\n")
	fmt.Fprintf(tw, "\tFirings\tFirings\t\t\t\t\n")
	for _, r := range s.EventRows() {
		fmt.Fprintf(tw, "%s\t%d/%d\t%s\t%s\t%d/%d\t%s\t\n",
			r.Name, r.Min, r.Max, trim(r.Avg), trim(r.StdDev), r.Starts, r.Ends, trim(r.Throughput))
	}
	tw.Flush()

	fmt.Fprintf(&b, "\nPLACE STATISTICS\nRun number %d\n", s.RunNumber)
	tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "Place\tMin/Max\tAvg\tStandard\t\n")
	fmt.Fprintf(tw, "(name)\tConcurrent\tConcurrent\tDeviation\t\n")
	fmt.Fprintf(tw, "\tTokens\tTokens\t\t\n")
	for _, r := range s.PlaceRows() {
		fmt.Fprintf(tw, "%s\t%d/%d\t%s\t%s\t\n",
			r.Name, r.Min, r.Max, trim(r.Avg), trim(r.StdDev))
	}
	tw.Flush()

	_, err := io.WriteString(w, b.String())
	return err
}

// trim renders a float the way Figure 5 does: up to six significant
// digits with trailing zeros removed, and integral zero as plain "0".
func trim(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	if strings.Contains(s, ".") && !strings.ContainsAny(s, "eE") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimSuffix(s, ".")
	}
	if s == "-0" {
		s = "0"
	}
	return s
}
