package stats

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/trace"
)

func header() trace.Header {
	return trace.Header{
		Net:    "t",
		Places: []string{"p", "q"},
		Trans:  []string{"a", "b"},
	}
}

func feed(t *testing.T, s *Stats, recs []trace.Record) {
	t.Helper()
	for i := range recs {
		if err := s.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTimeWeightedPlaceAverage(t *testing.T) {
	s := New(header())
	// p holds 2 tokens for 5 ticks, then 0 for 5 ticks: avg 1.0.
	feed(t, s, []trace.Record{
		{Kind: trace.Initial, Time: 0, Marking: petri.Marking{2, 0}},
		{Kind: trace.Start, Time: 5, Trans: 0, Deltas: []trace.Delta{{Place: 0, Change: -2}}},
		{Kind: trace.End, Time: 5, Trans: 0, Deltas: []trace.Delta{{Place: 1, Change: 1}}},
		{Kind: trace.Final, Time: 10, Starts: 1, Ends: 1},
	})
	row, ok := s.PlaceRowByName("p")
	if !ok {
		t.Fatal("no row for p")
	}
	if math.Abs(row.Avg-1.0) > 1e-9 {
		t.Errorf("avg = %g, want 1.0", row.Avg)
	}
	if row.Min != 0 || row.Max != 2 {
		t.Errorf("min/max = %d/%d", row.Min, row.Max)
	}
	// stddev: E[x^2] = (4*5)/10 = 2, mean 1, var 1 -> stddev 1.
	if math.Abs(row.StdDev-1.0) > 1e-9 {
		t.Errorf("stddev = %g, want 1.0", row.StdDev)
	}
	// q: 0 for 5 ticks then 1 for 5 ticks: avg .5.
	rq, _ := s.PlaceRowByName("q")
	if math.Abs(rq.Avg-0.5) > 1e-9 {
		t.Errorf("q avg = %g", rq.Avg)
	}
}

func TestConcurrentFiringsAndThroughput(t *testing.T) {
	s := New(header())
	// a fires twice, overlapping: active=1 on [0,2), 2 on [2,4), 1 on
	// [4,6), 0 on [6,10). Integral = 2+4+2 = 8, avg 0.8.
	feed(t, s, []trace.Record{
		{Kind: trace.Initial, Time: 0, Marking: petri.Marking{0, 0}},
		{Kind: trace.Start, Time: 0, Trans: 0},
		{Kind: trace.Start, Time: 2, Trans: 0},
		{Kind: trace.End, Time: 4, Trans: 0},
		{Kind: trace.End, Time: 6, Trans: 0},
		{Kind: trace.Final, Time: 10, Starts: 2, Ends: 2},
	})
	row, _ := s.EventRowByName("a")
	if math.Abs(row.Avg-0.8) > 1e-9 {
		t.Errorf("avg concurrent = %g, want 0.8", row.Avg)
	}
	if row.Min != 0 || row.Max != 2 {
		t.Errorf("min/max = %d/%d", row.Min, row.Max)
	}
	if row.Starts != 2 || row.Ends != 2 {
		t.Errorf("starts/ends = %d/%d", row.Starts, row.Ends)
	}
	if math.Abs(row.Throughput-0.2) > 1e-9 {
		t.Errorf("throughput = %g, want 0.2", row.Throughput)
	}
	if s.TotalStarts() != 2 || s.TotalEnds() != 2 {
		t.Errorf("totals: %d/%d", s.TotalStarts(), s.TotalEnds())
	}
}

func TestMidStreamReadsAreDefined(t *testing.T) {
	s := New(header())
	feed(t, s, []trace.Record{
		{Kind: trace.Initial, Time: 0, Marking: petri.Marking{1, 0}},
		{Kind: trace.Start, Time: 4, Trans: 0, Deltas: []trace.Delta{{Place: 0, Change: -1}}},
	})
	// No Final record yet: stats up to the latest event time.
	row, _ := s.PlaceRowByName("p")
	if math.Abs(row.Avg-1.0) > 1e-9 {
		t.Errorf("mid-stream avg = %g, want 1.0 (held 1 token for the whole observed window)", row.Avg)
	}
}

func TestErrorsOnMalformedStream(t *testing.T) {
	s := New(header())
	if err := s.Record(&trace.Record{Kind: trace.Initial, Marking: petri.Marking{1}}); err == nil {
		t.Error("short marking accepted")
	}
	if err := s.Record(&trace.Record{Kind: trace.Start, Trans: 99}); err == nil {
		t.Error("unknown transition accepted")
	}
	if err := s.Record(&trace.Record{Kind: trace.Start, Trans: 0, Deltas: []trace.Delta{{Place: 9, Change: 1}}}); err == nil {
		t.Error("unknown place accepted")
	}
	if err := s.Record(&trace.Record{Kind: trace.Kind('Z')}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestUtilizationAndThroughputHelpers(t *testing.T) {
	s := New(header())
	feed(t, s, []trace.Record{
		{Kind: trace.Initial, Time: 0, Marking: petri.Marking{1, 0}},
		{Kind: trace.Final, Time: 10, Starts: 0, Ends: 0},
	})
	u, err := s.Utilization("p")
	if err != nil || math.Abs(u-1.0) > 1e-9 {
		t.Errorf("Utilization = %g, %v", u, err)
	}
	if _, err := s.Utilization("zzz"); err == nil {
		t.Error("unknown place accepted")
	}
	th, err := s.Throughput("a")
	if err != nil || th != 0 {
		t.Errorf("Throughput = %g, %v", th, err)
	}
	if _, err := s.Throughput("zzz"); err == nil {
		t.Error("unknown transition accepted")
	}
}

func TestReportFormat(t *testing.T) {
	s := New(header())
	feed(t, s, []trace.Record{
		{Kind: trace.Initial, Time: 0, Marking: petri.Marking{2, 0}},
		{Kind: trace.Start, Time: 5, Trans: 0, Deltas: []trace.Delta{{Place: 0, Change: -2}}},
		{Kind: trace.End, Time: 7, Trans: 0, Deltas: []trace.Delta{{Place: 1, Change: 1}}},
		{Kind: trace.Final, Time: 10, Starts: 1, Ends: 1},
	})
	var b strings.Builder
	if err := s.Report(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"RUN STATISTICS", "EVENT STATISTICS", "PLACE STATISTICS",
		"Run number", "Length of Simulation", "Events started",
		"Throughput", "0/2", // min/max of place p
		"a", "p", "q",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// Integration: simulated M/D/1-ish station — arrivals every 4 ticks,
// service 2 ticks, utilization must come out near 0.5.
func TestIntegrationUtilizationHalf(t *testing.T) {
	b := petri.NewBuilder("station")
	b.Place("idle", 1)
	b.Place("busy", 0)
	b.Place("queue", 0)
	b.Place("src", 1)
	b.Place("served", 0)
	b.Trans("arrive").In("src").Out("src").Out("queue").EnablingConst(4)
	b.Trans("begin").In("queue").In("idle").Out("busy")
	b.Trans("finish").In("busy").Out("idle").Out("served").EnablingConst(2)
	net := b.MustBuild()
	s := New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000}); err != nil {
		t.Fatal(err)
	}
	u, err := s.Utilization("busy")
	if err != nil {
		t.Fatal(err)
	}
	if u < 0.45 || u > 0.55 {
		t.Errorf("utilization = %g, want about 0.5", u)
	}
	th, _ := s.Throughput("finish")
	if th < 0.24 || th > 0.26 {
		t.Errorf("throughput = %g, want about 0.25", th)
	}
}

// Property: filtering a trace does not change the statistics of kept
// places — the paper's justification for the filter tool.
func TestQuickFilterPreservesKeptStats(t *testing.T) {
	f := func(seed int64) bool {
		b := petri.NewBuilder("f")
		b.Place("p", 2)
		b.Place("q", 0)
		b.Place("r", 1)
		b.Trans("pq").In("p").Out("q").FiringConst(3)
		b.Trans("qp").In("q").Out("p").EnablingConst(2)
		b.Trans("rr").In("r").Out("r").EnablingConst(5)
		net, err := b.Build()
		if err != nil {
			return false
		}
		h := trace.HeaderOf(net)
		full := New(h)
		filtered := New(h)
		filt, err := trace.NewFilter(h, filtered, []string{"q"}, nil)
		if err != nil {
			return false
		}
		obs := trace.Tee{full, filt}
		if _, err := sim.Run(context.Background(), net, obs, sim.Options{Horizon: 500, Seed: seed}); err != nil {
			return false
		}
		a, _ := full.PlaceRowByName("q")
		bb, _ := filtered.PlaceRowByName("q")
		return math.Abs(a.Avg-bb.Avg) < 1e-12 && a.Min == bb.Min && a.Max == bb.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the time-weighted mean of any place lies within [min, max].
func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		b := petri.NewBuilder("m")
		b.Place("p", 3)
		b.Place("q", 0)
		b.Trans("t").In("p").Out("q").FiringConst(2)
		b.Trans("u").In("q").Out("p").EnablingConst(1)
		net, err := b.Build()
		if err != nil {
			return false
		}
		s := New(trace.HeaderOf(net))
		if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 300, Seed: seed}); err != nil {
			return false
		}
		for _, row := range s.PlaceRows() {
			if row.Avg < float64(row.Min)-1e-9 || row.Avg > float64(row.Max)+1e-9 {
				return false
			}
			if row.StdDev < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
