// Snapshots make a statistics accumulator serializable without giving
// up exactness: a distributed sweep worker snapshots each cell's Stats,
// ships it across a process boundary (package experiment encodes
// snapshots as JSON cell records), and the coordinator restores it and
// merges exactly as the in-process driver would. Every float crosses
// the boundary through Go's shortest round-trip decimal encoding, so a
// restored accumulator is bit-for-bit the original: merging restored
// snapshots in replication order yields the same pooled report as
// merging the live accumulators.

package stats

import (
	"fmt"

	"repro/internal/petri"
	"repro/internal/trace"
)

// SeriesSnapshot is the exported state of one time-weighted series.
type SeriesSnapshot struct {
	Cur    int        `json:"cur"`
	Last   petri.Time `json:"last"`
	WSum   float64    `json:"wsum"`
	WSumSq float64    `json:"wsumsq"`
	Min    int        `json:"min"`
	Max    int        `json:"max"`
	Seeded bool       `json:"seeded,omitempty"`
}

// Snapshot is the complete exported state of a Stats accumulator.
type Snapshot struct {
	Header       trace.Header     `json:"header"`
	RunNumber    int              `json:"runNumber"`
	Places       []SeriesSnapshot `json:"places"`
	Trans        []SeriesSnapshot `json:"trans"`
	Starts       []int64          `json:"starts"`
	Ends         []int64          `json:"ends"`
	InitialClock petri.Time       `json:"initialClock"`
	Clock        petri.Time       `json:"clock"`
	Finished     bool             `json:"finished,omitempty"`
	TotalStarts  int64            `json:"totalStarts"`
	TotalEnds    int64            `json:"totalEnds"`
	Runs         int              `json:"runs,omitempty"`
}

func snapSeries(s *series) SeriesSnapshot {
	return SeriesSnapshot{
		Cur: s.cur, Last: s.last,
		WSum: s.wsum, WSumSq: s.wsumsq,
		Min: s.min, Max: s.max,
		Seeded: s.seeded,
	}
}

func restoreSeries(s SeriesSnapshot) series {
	return series{
		cur: s.Cur, last: s.Last,
		wsum: s.WSum, wsumsq: s.WSumSq,
		min: s.Min, max: s.Max,
		seeded: s.Seeded,
	}
}

// Snapshot exports the accumulator's full state. The accumulator is not
// flushed or otherwise modified: a snapshot taken mid-stream restores
// to the same mid-stream state.
func (s *Stats) Snapshot() Snapshot {
	sn := Snapshot{
		Header:       s.Header,
		RunNumber:    s.RunNumber,
		Places:       make([]SeriesSnapshot, len(s.places)),
		Trans:        make([]SeriesSnapshot, len(s.trans)),
		Starts:       append([]int64(nil), s.starts...),
		Ends:         append([]int64(nil), s.ends...),
		InitialClock: s.initialClock,
		Clock:        s.clock,
		Finished:     s.finished,
		TotalStarts:  s.totalStarts,
		TotalEnds:    s.totalEnds,
		Runs:         s.runs,
	}
	for i := range s.places {
		sn.Places[i] = snapSeries(&s.places[i])
	}
	for i := range s.trans {
		sn.Trans[i] = snapSeries(&s.trans[i])
	}
	return sn
}

// FromSnapshot rebuilds an accumulator from an exported snapshot,
// validating that the per-place and per-transition state matches the
// snapshot's header.
func FromSnapshot(sn Snapshot) (*Stats, error) {
	if len(sn.Places) != len(sn.Header.Places) {
		return nil, fmt.Errorf("stats: snapshot has %d place series, header names %d places",
			len(sn.Places), len(sn.Header.Places))
	}
	if len(sn.Trans) != len(sn.Header.Trans) {
		return nil, fmt.Errorf("stats: snapshot has %d transition series, header names %d transitions",
			len(sn.Trans), len(sn.Header.Trans))
	}
	if len(sn.Starts) != len(sn.Trans) || len(sn.Ends) != len(sn.Trans) {
		return nil, fmt.Errorf("stats: snapshot start/end counters (%d/%d) do not match %d transitions",
			len(sn.Starts), len(sn.Ends), len(sn.Trans))
	}
	s := &Stats{
		Header:       sn.Header,
		RunNumber:    sn.RunNumber,
		places:       make([]series, len(sn.Places)),
		trans:        make([]series, len(sn.Trans)),
		starts:       append([]int64(nil), sn.Starts...),
		ends:         append([]int64(nil), sn.Ends...),
		initialClock: sn.InitialClock,
		clock:        sn.Clock,
		finished:     sn.Finished,
		totalStarts:  sn.TotalStarts,
		totalEnds:    sn.TotalEnds,
		runs:         sn.Runs,
	}
	for i := range sn.Places {
		s.places[i] = restoreSeries(sn.Places[i])
	}
	for i := range sn.Trans {
		s.trans[i] = restoreSeries(sn.Trans[i])
	}
	return s, nil
}
