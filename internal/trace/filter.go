package trace

import "fmt"

// Filter passes a reduced trace downstream: deltas are kept only for
// selected places, and Start/End records only for selected transitions
// (or when they still carry a kept delta, since a kept place's marking
// must stay reconstructible). Records left with no content are dropped.
// Initial and Final records always pass; the initial marking is zeroed
// for dropped places so that downstream marking arithmetic stays
// consistent with the filtered deltas.
//
// This is the P-NUT filtering tool of Section 4.1: "usually only a
// handful of places and transitions are of interest in performing a
// particular analysis".
type Filter struct {
	Next      Observer
	keepPlace []bool
	keepTrans []bool
}

// NewFilter builds a filter over traces described by h keeping the named
// places and transitions. Unknown names are reported as errors so that a
// typo cannot silently produce an empty analysis.
func NewFilter(h Header, next Observer, places, transitions []string) (*Filter, error) {
	f := &Filter{
		Next:      next,
		keepPlace: make([]bool, len(h.Places)),
		keepTrans: make([]bool, len(h.Trans)),
	}
	for _, name := range places {
		id, ok := h.PlaceID(name)
		if !ok {
			return nil, fmt.Errorf("trace: filter keeps unknown place %q", name)
		}
		f.keepPlace[id] = true
	}
	for _, name := range transitions {
		id, ok := h.TransID(name)
		if !ok {
			return nil, fmt.Errorf("trace: filter keeps unknown transition %q", name)
		}
		f.keepTrans[id] = true
	}
	return f, nil
}

// Keep returns the filter's keep sets, indexed by place and transition
// id. A ColReader feeding this filter can pass them to Skip so blocks
// the filter would fully drop are never decoded.
func (f *Filter) Keep() (places, transitions []bool) {
	return f.keepPlace, f.keepTrans
}

// Record implements Observer.
func (f *Filter) Record(rec *Record) error {
	switch rec.Kind {
	case Initial:
		m := rec.Marking.Clone()
		for i := range m {
			if !f.keepPlace[i] {
				m[i] = 0
			}
		}
		out := *rec
		out.Marking = m
		return f.Next.Record(&out)
	case Final:
		return f.Next.Record(rec)
	case Start, End:
		var deltas []Delta
		for _, d := range rec.Deltas {
			if f.keepPlace[d.Place] {
				deltas = append(deltas, d)
			}
		}
		if !f.keepTrans[rec.Trans] && len(deltas) == 0 {
			return nil
		}
		out := *rec
		out.Deltas = deltas
		return f.Next.Record(&out)
	}
	return fmt.Errorf("trace: filter saw unknown record kind %q", rec.Kind)
}
