package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/petri"
)

// collectAll drains a reader into cloned records (the reader's own
// records share block-arena storage).
func collectAll(t *testing.T, r RecordReader) (Header, []Record) {
	t.Helper()
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return h, out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec.Clone())
	}
}

func encodeCol(t *testing.T, h Header, recs []Record, flushEvery bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewColWriter(&buf, h, flushEvery)
	for i := range recs {
		if err := w.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeText(t *testing.T, h Header, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, h, false)
	for i := range recs {
		if err := w.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func recordsEqual(t *testing.T, want, got []Record) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("record count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i].Clone(), got[i].Clone()
		// Normalize nil-vs-empty deltas: both encode as "no deltas".
		if len(w.Deltas) == 0 {
			w.Deltas = nil
		}
		if len(g.Deltas) == 0 {
			g.Deltas = nil
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestColRoundTrip(t *testing.T) {
	for _, flushEvery := range []bool{false, true} {
		recs := sampleRecords()
		enc := encodeCol(t, header(), recs, flushEvery)
		h, got := collectAll(t, NewColReader(bytes.NewReader(enc)))
		if !reflect.DeepEqual(h, header()) {
			t.Errorf("flushEvery=%v: header = %+v", flushEvery, h)
		}
		recordsEqual(t, recs, got)
	}
}

// TestColSmallerThanText: on a realistic record mix the columnar
// encoding must be measurably smaller than the text encoding.
func TestColSmallerThanText(t *testing.T) {
	h, recs := genTrace(rand.New(rand.NewSource(7)), 20_000)
	text := encodeText(t, h, recs)
	col := encodeCol(t, h, recs, false)
	if len(col) >= len(text)/2 {
		t.Errorf("col = %d bytes, text = %d bytes; want col < text/2", len(col), len(text))
	}
}

// genTrace builds a random but structurally valid trace: an initial
// marking, matched start/end events with nondecreasing times, and a
// final record.
func genTrace(rng *rand.Rand, events int) (Header, []Record) {
	h := Header{
		Net:    "gen",
		Places: []string{"p0", "p1", "p2", "p3", "p4", "longer_place_name"},
		Trans:  []string{"t0", "t1", "t2", "fire_long_name"},
	}
	m := make(petri.Marking, len(h.Places))
	for i := range m {
		m[i] = rng.Intn(5)
	}
	recs := []Record{{Kind: Initial, Time: 0, Marking: m}}
	var now petri.Time
	var starts, ends int64
	for i := 0; i < events; i++ {
		now += petri.Time(rng.Intn(4))
		kind := Start
		if rng.Intn(2) == 0 {
			kind = End
		}
		nd := rng.Intn(4)
		var deltas []Delta
		for d := 0; d < nd; d++ {
			ch := rng.Intn(6) - 3
			if ch == 0 {
				ch = 1
			}
			deltas = append(deltas, Delta{
				Place:  petri.PlaceID(rng.Intn(len(h.Places))),
				Change: ch,
			})
		}
		if kind == Start {
			starts++
		} else {
			ends++
		}
		recs = append(recs, Record{
			Kind: kind, Time: now,
			Trans:  petri.TransID(rng.Intn(len(h.Trans))),
			Deltas: deltas,
		})
	}
	recs = append(recs, Record{Kind: Final, Time: now + 1, Starts: starts, Ends: ends})
	return h, recs
}

// TestColTextIdentityProperty is the convert-path property: for
// generated traces, text -> records -> col -> records -> text is
// byte-identical to the original text encoding. Sizes straddle the
// block thresholds so multi-block traces are covered.
func TestColTextIdentityProperty(t *testing.T) {
	for _, events := range []int{0, 1, 100, colBlockRecords - 2, colBlockRecords + 10, 3 * colBlockRecords} {
		rng := rand.New(rand.NewSource(int64(events) + 1))
		h, recs := genTrace(rng, events)
		t1 := encodeText(t, h, recs)

		r1, format, err := OpenReader(bytes.NewReader(t1), FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		if format != FormatText {
			t.Fatalf("sniffed %q for text input", format)
		}
		h1, recs1 := collectAll(t, r1)
		col := encodeCol(t, h1, recs1, false)

		r2, format, err := OpenReader(bytes.NewReader(col), FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		if format != FormatCol {
			t.Fatalf("sniffed %q for col input", format)
		}
		h2, recs2 := collectAll(t, r2)
		t2 := encodeText(t, h2, recs2)
		if !bytes.Equal(t1, t2) {
			t.Fatalf("events=%d: text->col->text not identity (%d vs %d bytes)", events, len(t1), len(t2))
		}
	}
}

// TestColSkipMatchesFilter: with block skipping configured from the
// filter's keep sets, the filtered output must be byte-identical to the
// unskipped path, and blocks must actually have been skipped.
func TestColSkipMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h, recs := genTrace(rng, 3*colBlockRecords)
	// flushEvery gives one block per record: maximal skip opportunity.
	enc := encodeCol(t, h, recs, true)

	run := func(skip bool) ([]byte, ColStats) {
		var out bytes.Buffer
		w := NewWriter(&out, h, false)
		f, err := NewFilter(h, w, []string{"p1"}, []string{"t2"})
		if err != nil {
			t.Fatal(err)
		}
		cr := NewColReader(bytes.NewReader(enc))
		if skip {
			keepP, keepT := f.Keep()
			cr.Skip(keepP, keepT)
		}
		if _, err := cr.Header(); err != nil {
			t.Fatal(err)
		}
		if _, err := Copy(cr, f); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), cr.Stats()
	}

	full, fullStats := run(false)
	skipped, skipStats := run(true)
	if !bytes.Equal(full, skipped) {
		t.Fatal("filtered output differs with block skipping enabled")
	}
	if skipStats.SkippedBlocks == 0 {
		t.Error("no blocks were skipped")
	}
	if fullStats.SkippedBlocks != 0 {
		t.Error("blocks skipped without Skip configured")
	}
	if skipStats.Records >= fullStats.Records {
		t.Errorf("skip decoded %d records, full decoded %d", skipStats.Records, fullStats.Records)
	}
}

// TestColTruncationNeverPanics: every prefix of a valid encoding must
// yield clean records then an error (or io.EOF exactly at a block
// boundary) — never a panic, never garbage records.
func TestColTruncationNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h, recs := genTrace(rng, 300)
	enc := encodeCol(t, h, recs, false)
	for cut := 0; cut < len(enc); cut++ {
		r := NewColReader(bytes.NewReader(enc[:cut]))
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
		}
	}
}

// TestColCorruptionErrors flips bytes in a valid encoding; the reader
// must error (or, rarely, still parse — a flipped varint payload can
// stay structurally valid) but never panic or loop forever.
func TestColCorruptionErrors(t *testing.T) {
	enc := encodeCol(t, header(), sampleRecords(), false)
	for pos := 0; pos < len(enc); pos++ {
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 0xff
		r := NewColReader(bytes.NewReader(mut))
		for n := 0; ; n++ {
			_, err := r.Next()
			if err != nil {
				break
			}
			if n > len(sampleRecords())+100 {
				t.Fatalf("flip at %d: reader produced runaway records", pos)
			}
		}
	}
}

func TestColWriterRejectsMalformedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewColWriter(&buf, header(), false)
	if err := w.Record(&Record{Kind: Initial, Marking: petri.Marking{1}}); err == nil {
		t.Error("short marking accepted")
	}
	if err := w.Record(&Record{Kind: Start, Trans: 99}); err == nil {
		t.Error("out-of-range transition accepted")
	}
	if err := w.Record(&Record{Kind: Start, Trans: 0, Deltas: []Delta{{Place: 99, Change: 1}}}); err == nil {
		t.Error("out-of-range delta place accepted")
	}
	if err := w.Record(&Record{Kind: Kind('Z')}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestColWriterRejectedRecordLeavesBlockConsistent: a record rejected
// mid-validation (bad delta place after a valid transition id) must not
// half-append to the column buffers — the records around it still
// encode to a decodable trace.
func TestColWriterRejectedRecordLeavesBlockConsistent(t *testing.T) {
	var buf bytes.Buffer
	w := NewColWriter(&buf, header(), false)
	recs := sampleRecords()
	for i := range recs[:3] {
		if err := w.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	bad := Record{Kind: Start, Time: 6, Trans: 1,
		Deltas: []Delta{{Place: 0, Change: -1}, {Place: 99, Change: 1}}}
	if err := w.Record(&bad); err == nil {
		t.Fatal("out-of-range delta place accepted")
	}
	for i := range recs[3:] {
		if err := w.Record(&recs[3+i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_, got := collectAll(t, NewColReader(bytes.NewReader(buf.Bytes())))
	recordsEqual(t, recs, got)
}

// TestColWriterErrorIsSticky mirrors the text writer's contract: after
// a downstream write error every later Record/Flush fails the same way
// and the unwritten bytes are retained.
func TestColWriterErrorIsSticky(t *testing.T) {
	fw := &failWriter{n: 0}
	w := NewColWriter(fw, header(), true)
	rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 2, 3}}
	err1 := w.Record(&rec)
	if err1 == nil {
		t.Fatal("first Record did not surface the write error")
	}
	if err2 := w.Record(&rec); err2 != err1 {
		t.Errorf("second Record = %v, want sticky %v", err2, err1)
	}
	if err3 := w.Flush(); err3 != err1 {
		t.Errorf("Flush = %v, want sticky %v", err3, err1)
	}
	if len(w.out) == 0 {
		t.Error("unwritten batch was dropped on error")
	}
}

// TestColFlushEveryIncremental: in flushEvery mode each record is a
// complete, immediately decodable block — the live-piping contract.
func TestColFlushEveryIncremental(t *testing.T) {
	var buf bytes.Buffer
	w := NewColWriter(&buf, header(), true)
	rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 0, 0}}
	if err := w.Record(&rec); err != nil {
		t.Fatal(err)
	}
	r := NewColReader(bytes.NewReader(buf.Bytes()))
	got, err := r.Next()
	if err != nil {
		t.Fatalf("record not decodable after flushEvery Record: %v", err)
	}
	if got.Kind != Initial || got.Marking[0] != 1 {
		t.Errorf("decoded %+v", got)
	}
}

func TestOpenReaderRejectsUnknownFormat(t *testing.T) {
	if _, _, err := OpenReader(bytes.NewReader(nil), "parquet"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewFormatWriter(io.Discard, header(), "parquet", false); err == nil {
		t.Error("unknown writer format accepted")
	}
}

func TestOpenReaderForcedFormatMismatch(t *testing.T) {
	enc := encodeCol(t, header(), sampleRecords(), false)
	r, _, err := OpenReader(bytes.NewReader(enc), FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Header(); err == nil {
		t.Error("text reader accepted a columnar trace")
	}
	txt := encodeText(t, header(), sampleRecords())
	r2, _, err := OpenReader(bytes.NewReader(txt), FormatCol)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Header(); err == nil {
		t.Error("col reader accepted a text trace")
	}
}

// TestWriterBatchedErrorSurfaces is the batched-path regression for the
// sticky-error contract: with flushEvery off, a downstream failure must
// surface from the flush a Final record forces (and from an explicit
// Flush), not vanish into the batch buffer.
func TestWriterBatchedErrorSurfaces(t *testing.T) {
	t.Run("final", func(t *testing.T) {
		fw := &failWriter{n: 0}
		w := NewWriter(fw, header(), false)
		rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 2, 3}}
		if err := w.Record(&rec); err != nil {
			t.Fatalf("batched Record hit the writer early: %v", err)
		}
		fin := Record{Kind: Final, Time: 9, Starts: 1, Ends: 1}
		if err := w.Record(&fin); err == nil {
			t.Fatal("write error silently dropped on the Final-record flush")
		}
	})
	t.Run("flush", func(t *testing.T) {
		fw := &failWriter{n: 0}
		w := NewWriter(fw, header(), false)
		rec := Record{Kind: Start, Time: 1, Trans: 0}
		if err := w.Record(&rec); err != nil {
			t.Fatalf("batched Record hit the writer early: %v", err)
		}
		if err := w.Flush(); err == nil {
			t.Fatal("write error silently dropped on explicit Flush")
		}
	})
	t.Run("batch-boundary", func(t *testing.T) {
		// Enough records to exceed writerBatchBytes mid-run: the error
		// must surface from Record itself, and stay sticky.
		fw := &failWriter{n: 0}
		w := NewWriter(fw, header(), false)
		rec := Record{Kind: Start, Time: 1, Trans: 0, Deltas: []Delta{{Place: 0, Change: -1}}}
		var firstErr error
		for i := 0; i < 100_000 && firstErr == nil; i++ {
			firstErr = w.Record(&rec)
		}
		if firstErr == nil {
			t.Fatal("no error surfaced before 100k batched records")
		}
		if err := w.Flush(); err != firstErr {
			t.Errorf("Flush = %v, want sticky %v", err, firstErr)
		}
	})
	t.Run("col-final", func(t *testing.T) {
		fw := &failWriter{n: 0}
		w := NewColWriter(fw, header(), false)
		rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 2, 3}}
		if err := w.Record(&rec); err != nil {
			t.Fatalf("batched Record hit the writer early: %v", err)
		}
		fin := Record{Kind: Final, Time: 9, Starts: 1, Ends: 1}
		if err := w.Record(&fin); err == nil {
			t.Fatal("col write error silently dropped on the Final-record flush")
		}
	})
}

// TestColReaderRetainContract documents that Next's records share
// block storage: Clone is required to retain, exactly like Observer.
func TestColReaderRetainContract(t *testing.T) {
	recs := sampleRecords()
	enc := encodeCol(t, header(), recs, false)
	r := NewColReader(bytes.NewReader(enc))
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	kept := first.Clone()
	for {
		if _, err := r.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			break
		}
	}
	if !reflect.DeepEqual(kept.Marking, recs[0].Marking) {
		t.Error("cloned record mutated by later reads")
	}
}

// benchTrace is the decode benchmark's shared input: a realistic
// sim-shaped record stream, large enough to span multiple blocks.
func benchTrace(tb testing.TB) (Header, []Record) {
	tb.Helper()
	rng := rand.New(rand.NewSource(1988))
	return genTrace(rng, 50_000)
}

// BenchmarkColWriter measures the columnar encode hot path, batched and
// flush-per-record, mirroring BenchmarkWriter for the text codec.
func BenchmarkColWriter(b *testing.B) {
	rec := Record{
		Kind: End, Time: 123456, Trans: 1,
		Deltas: []Delta{{Place: 0, Change: 1}, {Place: 2, Change: -3}},
	}
	for _, mode := range []struct {
		name       string
		flushEvery bool
	}{{"batched", false}, {"flushEvery", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := NewColWriter(io.Discard, header(), mode.flushEvery)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := w.Record(&rec); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkColReader decodes the shared benchmark trace in both
// codecs. Compare the two sub-benchmarks directly: bytes/op is the
// encoded size (col must be smaller) and ns/op the decode cost (col
// must be >=2x faster than text).
func BenchmarkColReader(b *testing.B) {
	h, recs := benchTrace(b)
	var textBuf, colBuf bytes.Buffer
	tw := NewWriter(&textBuf, h, false)
	cw := NewColWriter(&colBuf, h, false)
	for i := range recs {
		if err := tw.Record(&recs[i]); err != nil {
			b.Fatal(err)
		}
		if err := cw.Record(&recs[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		b.Fatal(err)
	}
	drain := func(b *testing.B, r RecordReader) {
		b.Helper()
		n := 0
		for {
			_, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("decoded %d records, want %d", n, len(recs))
		}
	}
	b.Run("col", func(b *testing.B) {
		enc := colBuf.Bytes()
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		b.ReportMetric(float64(len(enc)), "encoded_bytes")
		for i := 0; i < b.N; i++ {
			drain(b, NewColReader(bytes.NewReader(enc)))
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("text", func(b *testing.B) {
		enc := textBuf.Bytes()
		b.SetBytes(int64(len(enc)))
		b.ReportAllocs()
		b.ReportMetric(float64(len(enc)), "encoded_bytes")
		for i := 0; i < b.N; i++ {
			drain(b, NewReader(bytes.NewReader(enc)))
		}
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
