package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/petri"
)

// writerBatchBytes is the record-batching threshold: encoded records
// accumulate in the writer's own buffer and are handed to the
// underlying io.Writer only when the batch fills (or on Flush / a
// Final record). Batching keeps the encoder off the simulation hot
// path: one engine event costs an append into an in-memory buffer, not
// an io.Writer call.
const writerBatchBytes = 32 * 1024

// Writer streams trace records to an io.Writer in the text format. It
// implements Observer, so a simulator can drive it directly. Records
// are encoded with append-style integer formatting into one reusable
// batch buffer — no per-record allocation, one downstream write per
// writerBatchBytes of trace.
type Writer struct {
	w          io.Writer
	h          Header
	buf        []byte
	err        error // first downstream write error, sticky
	wroteHead  bool
	numPlaces  int
	numTrans   int
	flushEvery bool
}

// NewWriter returns a trace writer for traces described by h.
// If flushEvery is true each record is flushed immediately — the "pipe
// into a live analyzer" mode; otherwise records are batched and handed
// downstream writerBatchBytes at a time, so call Flush (or write a
// Final record) when done.
func NewWriter(w io.Writer, h Header, flushEvery bool) *Writer {
	return &Writer{
		w: w, h: h,
		numPlaces: len(h.Places), numTrans: len(h.Trans),
		flushEvery: flushEvery,
	}
}

func (tw *Writer) writeHeader() {
	if tw.wroteHead {
		return
	}
	tw.wroteHead = true
	tw.buf = append(tw.buf, "pnut-trace 1\nnet "...)
	tw.buf = append(tw.buf, tw.h.Net...)
	tw.buf = append(tw.buf, '\n')
	for i, p := range tw.h.Places {
		tw.buf = append(tw.buf, "place "...)
		tw.buf = strconv.AppendInt(tw.buf, int64(i), 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = append(tw.buf, p...)
		tw.buf = append(tw.buf, '\n')
	}
	for i, t := range tw.h.Trans {
		tw.buf = append(tw.buf, "trans "...)
		tw.buf = strconv.AppendInt(tw.buf, int64(i), 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = append(tw.buf, t...)
		tw.buf = append(tw.buf, '\n')
	}
}

func appendDeltas(buf []byte, deltas []Delta) []byte {
	for i, d := range deltas {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(d.Place), 10)
		buf = append(buf, ':')
		if d.Change >= 0 {
			buf = append(buf, '+')
		}
		buf = strconv.AppendInt(buf, int64(d.Change), 10)
	}
	if len(deltas) == 0 {
		buf = append(buf, '-')
	}
	return buf
}

// Record implements Observer.
func (tw *Writer) Record(rec *Record) error {
	if tw.err != nil {
		return tw.err
	}
	tw.writeHeader()
	switch rec.Kind {
	case Initial:
		if len(rec.Marking) != tw.numPlaces {
			return fmt.Errorf("trace: initial marking has %d places, header has %d", len(rec.Marking), tw.numPlaces)
		}
		tw.buf = append(tw.buf, 'I', ' ')
		tw.buf = strconv.AppendInt(tw.buf, int64(rec.Time), 10)
		tw.buf = append(tw.buf, ' ')
		for i, c := range rec.Marking {
			if i > 0 {
				tw.buf = append(tw.buf, ',')
			}
			tw.buf = strconv.AppendInt(tw.buf, int64(c), 10)
		}
	case Start, End:
		if int(rec.Trans) < 0 || int(rec.Trans) >= tw.numTrans {
			return fmt.Errorf("trace: transition id %d out of range", rec.Trans)
		}
		tw.buf = append(tw.buf, byte(rec.Kind), ' ')
		tw.buf = strconv.AppendInt(tw.buf, int64(rec.Time), 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = strconv.AppendInt(tw.buf, int64(rec.Trans), 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = appendDeltas(tw.buf, rec.Deltas)
	case Final:
		tw.buf = append(tw.buf, 'F', ' ')
		tw.buf = strconv.AppendInt(tw.buf, int64(rec.Time), 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = strconv.AppendInt(tw.buf, rec.Starts, 10)
		tw.buf = append(tw.buf, ' ')
		tw.buf = strconv.AppendInt(tw.buf, rec.Ends, 10)
	default:
		return fmt.Errorf("trace: unknown record kind %q", rec.Kind)
	}
	tw.buf = append(tw.buf, '\n')
	if tw.flushEvery || rec.Kind == Final || len(tw.buf) >= writerBatchBytes {
		return tw.Flush()
	}
	return nil
}

// Flush hands the batched records to the underlying writer. A
// downstream write error is sticky: the unwritten batch is retained
// (no records are silently dropped) and every later Record or Flush
// returns the same error, matching bufio.Writer's contract.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	tw.writeHeader()
	if len(tw.buf) == 0 {
		return nil
	}
	n, err := tw.w.Write(tw.buf)
	if err == nil && n < len(tw.buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		tw.err = err
		tw.buf = tw.buf[:copy(tw.buf, tw.buf[n:])]
		return err
	}
	tw.buf = tw.buf[:0]
	return nil
}

// Reader parses the text format as a stream.
type Reader struct {
	s      *bufio.Scanner
	h      Header
	gotHdr bool
	line   int
	// pending holds a record line consumed while scanning past the header.
	pending string
}

// NewReader wraps r. The header is parsed lazily by Header or the first
// Next call.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

func (tr *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("trace: line %d: %s", tr.line, fmt.Sprintf(format, args...))
}

func (tr *Reader) scan() (string, bool) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

// Header parses (if needed) and returns the trace header.
func (tr *Reader) Header() (Header, error) {
	if tr.gotHdr {
		return tr.h, nil
	}
	line, ok := tr.scan()
	if !ok {
		return Header{}, tr.errf("empty trace")
	}
	if line != "pnut-trace 1" {
		return Header{}, tr.errf("bad magic %q", line)
	}
	line, ok = tr.scan()
	if !ok || !strings.HasPrefix(line, "net ") {
		return Header{}, tr.errf("expected net line, got %q", line)
	}
	tr.h.Net = strings.TrimPrefix(line, "net ")
	for {
		line, ok = tr.scan()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && (fields[0] == "place" || fields[0] == "trans") {
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return Header{}, tr.errf("bad id in %q", line)
			}
			if fields[0] == "place" {
				if id != len(tr.h.Places) {
					return Header{}, tr.errf("place ids out of order at %q", line)
				}
				tr.h.Places = append(tr.h.Places, fields[2])
			} else {
				if id != len(tr.h.Trans) {
					return Header{}, tr.errf("trans ids out of order at %q", line)
				}
				tr.h.Trans = append(tr.h.Trans, fields[2])
			}
			continue
		}
		// First record line: stash it for Next.
		tr.pending = line
		break
	}
	tr.gotHdr = true
	return tr.h, nil
}

// Next returns the next record, or io.EOF after the last one.
func (tr *Reader) Next() (Record, error) {
	if !tr.gotHdr {
		if _, err := tr.Header(); err != nil {
			return Record{}, err
		}
	}
	line := tr.pending
	tr.pending = ""
	if line == "" {
		var ok bool
		line, ok = tr.scan()
		if !ok {
			if err := tr.s.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, tr.errf("short record %q", line)
	}
	t, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, tr.errf("bad time in %q", line)
	}
	switch fields[0] {
	case "I":
		if len(fields) != 3 {
			return Record{}, tr.errf("bad initial record %q", line)
		}
		m, err := petri.ParseMarking(fields[2])
		if err != nil {
			return Record{}, tr.errf("%v", err)
		}
		if len(m) != len(tr.h.Places) {
			return Record{}, tr.errf("initial marking has %d places, header has %d", len(m), len(tr.h.Places))
		}
		return Record{Kind: Initial, Time: t, Marking: m}, nil
	case "S", "E":
		if len(fields) != 4 {
			return Record{}, tr.errf("bad event record %q", line)
		}
		id, err := strconv.Atoi(fields[2])
		if err != nil || id < 0 || id >= len(tr.h.Trans) {
			return Record{}, tr.errf("bad transition id in %q", line)
		}
		deltas, err := parseDeltas(fields[3], len(tr.h.Places))
		if err != nil {
			return Record{}, tr.errf("%v", err)
		}
		k := Start
		if fields[0] == "E" {
			k = End
		}
		return Record{Kind: k, Time: t, Trans: petri.TransID(id), Deltas: deltas}, nil
	case "F":
		if len(fields) != 4 {
			return Record{}, tr.errf("bad final record %q", line)
		}
		starts, err1 := strconv.ParseInt(fields[2], 10, 64)
		ends, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return Record{}, tr.errf("bad counters in %q", line)
		}
		return Record{Kind: Final, Time: t, Starts: starts, Ends: ends}, nil
	}
	return Record{}, tr.errf("unknown record %q", line)
}

func parseDeltas(s string, numPlaces int) ([]Delta, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Delta, 0, len(parts))
	for _, p := range parts {
		i := strings.IndexByte(p, ':')
		if i < 0 {
			return nil, fmt.Errorf("bad delta %q", p)
		}
		place, err := strconv.Atoi(p[:i])
		if err != nil || place < 0 || place >= numPlaces {
			return nil, fmt.Errorf("bad place in delta %q", p)
		}
		change, err := strconv.Atoi(p[i+1:])
		if err != nil || change == 0 {
			return nil, fmt.Errorf("bad change in delta %q", p)
		}
		out = append(out, Delta{Place: petri.PlaceID(place), Change: change})
	}
	return out, nil
}

// Copy streams every record from r into obs, returning the record count.
func Copy(r RecordReader, obs Observer) (int, error) {
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := obs.Record(&rec); err != nil {
			return n, err
		}
		n++
	}
}
