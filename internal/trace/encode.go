package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/petri"
)

// Writer streams trace records to an io.Writer in the text format. It
// implements Observer, so a simulator can drive it directly.
type Writer struct {
	w          *bufio.Writer
	h          Header
	wroteHead  bool
	numPlaces  int
	numTrans   int
	flushEvery bool
}

// NewWriter returns a trace writer for traces described by h.
// If flushEvery is true each record is flushed immediately — the "pipe
// into a live analyzer" mode; otherwise call Flush (or write a Final
// record) when done.
func NewWriter(w io.Writer, h Header, flushEvery bool) *Writer {
	return &Writer{
		w: bufio.NewWriter(w), h: h,
		numPlaces: len(h.Places), numTrans: len(h.Trans),
		flushEvery: flushEvery,
	}
}

func (tw *Writer) writeHeader() error {
	if tw.wroteHead {
		return nil
	}
	tw.wroteHead = true
	if _, err := fmt.Fprintf(tw.w, "pnut-trace 1\nnet %s\n", tw.h.Net); err != nil {
		return err
	}
	for i, p := range tw.h.Places {
		if _, err := fmt.Fprintf(tw.w, "place %d %s\n", i, p); err != nil {
			return err
		}
	}
	for i, t := range tw.h.Trans {
		if _, err := fmt.Fprintf(tw.w, "trans %d %s\n", i, t); err != nil {
			return err
		}
	}
	return nil
}

func formatDeltas(b *strings.Builder, deltas []Delta) {
	for i, d := range deltas {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d:%+d", d.Place, d.Change)
	}
	if len(deltas) == 0 {
		b.WriteByte('-')
	}
}

// Record implements Observer.
func (tw *Writer) Record(rec *Record) error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	var b strings.Builder
	switch rec.Kind {
	case Initial:
		if len(rec.Marking) != tw.numPlaces {
			return fmt.Errorf("trace: initial marking has %d places, header has %d", len(rec.Marking), tw.numPlaces)
		}
		fmt.Fprintf(&b, "I %d %s", rec.Time, rec.Marking.Key())
	case Start, End:
		if int(rec.Trans) < 0 || int(rec.Trans) >= tw.numTrans {
			return fmt.Errorf("trace: transition id %d out of range", rec.Trans)
		}
		fmt.Fprintf(&b, "%c %d %d ", byte(rec.Kind), rec.Time, rec.Trans)
		formatDeltas(&b, rec.Deltas)
	case Final:
		fmt.Fprintf(&b, "F %d %d %d", rec.Time, rec.Starts, rec.Ends)
	default:
		return fmt.Errorf("trace: unknown record kind %q", rec.Kind)
	}
	b.WriteByte('\n')
	if _, err := tw.w.WriteString(b.String()); err != nil {
		return err
	}
	if tw.flushEvery || rec.Kind == Final {
		return tw.w.Flush()
	}
	return nil
}

// Flush drains buffered output.
func (tw *Writer) Flush() error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader parses the text format as a stream.
type Reader struct {
	s      *bufio.Scanner
	h      Header
	gotHdr bool
	line   int
	// pending holds a record line consumed while scanning past the header.
	pending string
}

// NewReader wraps r. The header is parsed lazily by Header or the first
// Next call.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

func (tr *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("trace: line %d: %s", tr.line, fmt.Sprintf(format, args...))
}

func (tr *Reader) scan() (string, bool) {
	for tr.s.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, true
	}
	return "", false
}

// Header parses (if needed) and returns the trace header.
func (tr *Reader) Header() (Header, error) {
	if tr.gotHdr {
		return tr.h, nil
	}
	line, ok := tr.scan()
	if !ok {
		return Header{}, tr.errf("empty trace")
	}
	if line != "pnut-trace 1" {
		return Header{}, tr.errf("bad magic %q", line)
	}
	line, ok = tr.scan()
	if !ok || !strings.HasPrefix(line, "net ") {
		return Header{}, tr.errf("expected net line, got %q", line)
	}
	tr.h.Net = strings.TrimPrefix(line, "net ")
	for {
		line, ok = tr.scan()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && (fields[0] == "place" || fields[0] == "trans") {
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return Header{}, tr.errf("bad id in %q", line)
			}
			if fields[0] == "place" {
				if id != len(tr.h.Places) {
					return Header{}, tr.errf("place ids out of order at %q", line)
				}
				tr.h.Places = append(tr.h.Places, fields[2])
			} else {
				if id != len(tr.h.Trans) {
					return Header{}, tr.errf("trans ids out of order at %q", line)
				}
				tr.h.Trans = append(tr.h.Trans, fields[2])
			}
			continue
		}
		// First record line: stash it for Next.
		tr.pending = line
		break
	}
	tr.gotHdr = true
	return tr.h, nil
}

// Next returns the next record, or io.EOF after the last one.
func (tr *Reader) Next() (Record, error) {
	if !tr.gotHdr {
		if _, err := tr.Header(); err != nil {
			return Record{}, err
		}
	}
	line := tr.pending
	tr.pending = ""
	if line == "" {
		var ok bool
		line, ok = tr.scan()
		if !ok {
			if err := tr.s.Err(); err != nil {
				return Record{}, err
			}
			return Record{}, io.EOF
		}
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Record{}, tr.errf("short record %q", line)
	}
	t, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, tr.errf("bad time in %q", line)
	}
	switch fields[0] {
	case "I":
		if len(fields) != 3 {
			return Record{}, tr.errf("bad initial record %q", line)
		}
		m, err := petri.ParseMarking(fields[2])
		if err != nil {
			return Record{}, tr.errf("%v", err)
		}
		if len(m) != len(tr.h.Places) {
			return Record{}, tr.errf("initial marking has %d places, header has %d", len(m), len(tr.h.Places))
		}
		return Record{Kind: Initial, Time: t, Marking: m}, nil
	case "S", "E":
		if len(fields) != 4 {
			return Record{}, tr.errf("bad event record %q", line)
		}
		id, err := strconv.Atoi(fields[2])
		if err != nil || id < 0 || id >= len(tr.h.Trans) {
			return Record{}, tr.errf("bad transition id in %q", line)
		}
		deltas, err := parseDeltas(fields[3], len(tr.h.Places))
		if err != nil {
			return Record{}, tr.errf("%v", err)
		}
		k := Start
		if fields[0] == "E" {
			k = End
		}
		return Record{Kind: k, Time: t, Trans: petri.TransID(id), Deltas: deltas}, nil
	case "F":
		if len(fields) != 4 {
			return Record{}, tr.errf("bad final record %q", line)
		}
		starts, err1 := strconv.ParseInt(fields[2], 10, 64)
		ends, err2 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil {
			return Record{}, tr.errf("bad counters in %q", line)
		}
		return Record{Kind: Final, Time: t, Starts: starts, Ends: ends}, nil
	}
	return Record{}, tr.errf("unknown record %q", line)
}

func parseDeltas(s string, numPlaces int) ([]Delta, error) {
	if s == "-" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Delta, 0, len(parts))
	for _, p := range parts {
		i := strings.IndexByte(p, ':')
		if i < 0 {
			return nil, fmt.Errorf("bad delta %q", p)
		}
		place, err := strconv.Atoi(p[:i])
		if err != nil || place < 0 || place >= numPlaces {
			return nil, fmt.Errorf("bad place in delta %q", p)
		}
		change, err := strconv.Atoi(p[i+1:])
		if err != nil || change == 0 {
			return nil, fmt.Errorf("bad change in delta %q", p)
		}
		out = append(out, Delta{Place: petri.PlaceID(place), Change: change})
	}
	return out, nil
}

// Copy streams every record from r into obs, returning the record count.
func Copy(r *Reader, obs Observer) (int, error) {
	n := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := obs.Record(&rec); err != nil {
			return n, err
		}
		n++
	}
}
