// Package trace defines the simulation trace: "the description of the
// initial state of the system, followed by a series of state deltas
// describing how the state of the system changes over time" (Section 4.1).
//
// The P-NUT simulator deliberately knows nothing about analysis; it only
// generates a trace, and the analysis tools (stat, tracertool, the
// animator) consume traces. Because long experiment traces are unwieldy,
// the package also provides a Filter that keeps only selected places and
// transitions, and the stream interfaces let a simulator's output be
// "plugged" directly into an analyzer with no intermediate file.
//
// Traces have two interchangeable encodings behind the same
// Observer/RecordReader interfaces: the line-oriented text format below
// (Writer/Reader — the debuggable interchange) and the columnar binary
// format of col.go (ColWriter/ColReader — the compact store for
// full-trace analysis at production sweep sizes). OpenReader sniffs the
// magic bytes and returns whichever reader matches.
//
// The text encoding is line oriented:
//
//	pnut-trace 1
//	net <name>
//	place <id> <name>
//	trans <id> <name>
//	I <time> <m0,m1,...>             initial marking
//	S <time> <trans> <p:+d,p:-d,...> firing started (tokens removed)
//	E <time> <trans> <p:+d,...>      firing ended (tokens added)
//	F <time> <starts> <ends>         end of run
package trace

import (
	"fmt"
	"strings"

	"repro/internal/petri"
)

// Kind discriminates trace records.
type Kind byte

// Record kinds.
const (
	Initial Kind = 'I' // initial marking
	Start   Kind = 'S' // a firing started; Deltas are token removals
	End     Kind = 'E' // a firing completed; Deltas are token additions
	Final   Kind = 'F' // end of run, with start/end counters
)

func (k Kind) String() string {
	switch k {
	case Initial:
		return "initial"
	case Start:
		return "start"
	case End:
		return "end"
	case Final:
		return "final"
	}
	return fmt.Sprintf("Kind(%c)", byte(k))
}

// Delta is a change to one place's token count.
type Delta struct {
	Place  petri.PlaceID
	Change int
}

// Record is one trace entry. The Deltas slice of a Start record holds the
// (negative) input-token removals; an End record holds the (positive)
// output-token additions. Observers must not retain the record or its
// slices past the call; the simulator reuses the backing storage.
type Record struct {
	Kind    Kind
	Time    petri.Time
	Trans   petri.TransID // Start and End records
	Deltas  []Delta       // Start and End records
	Marking petri.Marking // Initial records
	Starts  int64         // Final records: firings started
	Ends    int64         // Final records: firings completed
}

// Clone returns a deep copy safe to retain.
func (r *Record) Clone() Record {
	c := *r
	c.Deltas = append([]Delta(nil), r.Deltas...)
	c.Marking = r.Marking.Clone()
	return c
}

// Header names the net and its places and transitions so that analyzers
// can be run far from the net definition (or on traces produced by other
// engines, as the paper notes for SIMSCRIPT).
type Header struct {
	Net    string
	Places []string
	Trans  []string
}

// HeaderOf extracts a Header from a net.
func HeaderOf(n *petri.Net) Header {
	h := Header{Net: n.Name}
	h.Places = make([]string, len(n.Places))
	for i, p := range n.Places {
		h.Places[i] = p.Name
	}
	h.Trans = make([]string, len(n.Trans))
	for i := range n.Trans {
		h.Trans[i] = n.Trans[i].Name
	}
	return h
}

// PlaceID resolves a place name in the header.
func (h *Header) PlaceID(name string) (petri.PlaceID, bool) {
	for i, p := range h.Places {
		if p == name {
			return petri.PlaceID(i), true
		}
	}
	return 0, false
}

// TransID resolves a transition name in the header.
func (h *Header) TransID(name string) (petri.TransID, bool) {
	for i, t := range h.Trans {
		if t == name {
			return petri.TransID(i), true
		}
	}
	return 0, false
}

// Observer consumes a stream of trace records. The simulator drives
// observers directly, which is the paper's "plug the simulator output
// into the input of analysis tools" mode.
//
// Observers are thread-confined: an Observer instance belongs to the
// single simulation run feeding it, and implementations are free to be
// unsynchronized. Parallel experiment drivers (package experiment) must
// give every concurrent replication its own Observer and only combine
// the results after the runs have finished.
type Observer interface {
	Record(rec *Record) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(rec *Record) error

// Record implements Observer.
func (f ObserverFunc) Record(rec *Record) error { return f(rec) }

// Discard is an Observer that drops every record. It is stateless, so
// unlike other observers it is safe to share between concurrent runs.
var Discard Observer = ObserverFunc(func(*Record) error { return nil })

// Tee fans a record stream out to several observers.
type Tee []Observer

// Record implements Observer, stopping at the first error.
func (t Tee) Record(rec *Record) error {
	for _, o := range t {
		if err := o.Record(rec); err != nil {
			return err
		}
	}
	return nil
}

// Collect buffers an entire trace in memory. Analysis tests use it; real
// experiments stream instead.
type Collect struct {
	Header  Header
	Records []Record
}

// NewCollect returns a collector for traces of net h.
func NewCollect(h Header) *Collect { return &Collect{Header: h} }

// Record implements Observer.
func (c *Collect) Record(rec *Record) error {
	c.Records = append(c.Records, rec.Clone())
	return nil
}

// String renders a compact textual dump (tests and debugging).
func (c *Collect) String() string {
	var b strings.Builder
	for i := range c.Records {
		r := &c.Records[i]
		switch r.Kind {
		case Initial:
			fmt.Fprintf(&b, "t=%d initial %v\n", r.Time, r.Marking)
		case Start:
			fmt.Fprintf(&b, "t=%d start %s\n", r.Time, c.Header.Trans[r.Trans])
		case End:
			fmt.Fprintf(&b, "t=%d end %s\n", r.Time, c.Header.Trans[r.Trans])
		case Final:
			fmt.Fprintf(&b, "t=%d final starts=%d ends=%d\n", r.Time, r.Starts, r.Ends)
		}
	}
	return b.String()
}
