package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/petri"
)

func header() Header {
	return Header{
		Net:    "test",
		Places: []string{"a", "b", "c"},
		Trans:  []string{"t0", "t1"},
	}
}

func sampleRecords() []Record {
	return []Record{
		{Kind: Initial, Time: 0, Marking: petri.Marking{2, 0, 1}},
		{Kind: Start, Time: 3, Trans: 0, Deltas: []Delta{{Place: 0, Change: -2}}},
		{Kind: End, Time: 5, Trans: 0, Deltas: []Delta{{Place: 1, Change: 1}, {Place: 2, Change: 2}}},
		{Kind: Start, Time: 5, Trans: 1, Deltas: nil},
		{Kind: End, Time: 9, Trans: 1, Deltas: []Delta{{Place: 0, Change: 1}}},
		{Kind: Final, Time: 10, Starts: 2, Ends: 2},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, header(), false)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.Net != "test" || len(h.Places) != 3 || len(h.Trans) != 2 {
		t.Fatalf("header mismatch: %+v", h)
	}
	for i := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want := recs[i]
		if got.Kind != want.Kind || got.Time != want.Time || got.Trans != want.Trans {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		if len(got.Deltas) != len(want.Deltas) {
			t.Fatalf("record %d deltas: got %v want %v", i, got.Deltas, want.Deltas)
		}
		for j := range got.Deltas {
			if got.Deltas[j] != want.Deltas[j] {
				t.Fatalf("record %d delta %d: got %v want %v", i, j, got.Deltas[j], want.Deltas[j])
			}
		}
		if want.Kind == Initial && !got.Marking.Equal(want.Marking) {
			t.Fatalf("initial marking: got %v want %v", got.Marking, want.Marking)
		}
		if want.Kind == Final && (got.Starts != want.Starts || got.Ends != want.Ends) {
			t.Fatalf("final counters: got %+v", got)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestHeaderLookups(t *testing.T) {
	h := header()
	if id, ok := h.PlaceID("b"); !ok || id != 1 {
		t.Errorf("PlaceID(b) = %d, %v", id, ok)
	}
	if _, ok := h.PlaceID("zz"); ok {
		t.Error("unknown place resolved")
	}
	if id, ok := h.TransID("t1"); !ok || id != 1 {
		t.Errorf("TransID(t1) = %d, %v", id, ok)
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"bad magic", "not-a-trace\n"},
		{"missing net", "pnut-trace 1\nplace 0 a\n"},
		{"bad record", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nZ 0 0 -\n"},
		{"bad time", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nS x 0 -\n"},
		{"bad trans id", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nS 0 7 -\n"},
		{"bad delta place", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nS 0 0 9:+1\n"},
		{"zero delta", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nS 0 0 0:+0\n"},
		{"marking len", "pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\nI 0 1,2\n"},
		{"place order", "pnut-trace 1\nnet x\nplace 1 a\n"},
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c.text))
		_, err := r.Next()
		if err == nil || err == io.EOF {
			t.Errorf("%s: expected parse error, got %v", c.name, err)
		}
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	text := "# a comment\npnut-trace 1\nnet x\n\nplace 0 a\ntrans 0 t\n# mid\nI 0 3\nF 5 0 0\n"
	r := NewReader(strings.NewReader(text))
	rec, err := r.Next()
	if err != nil || rec.Kind != Initial || rec.Marking[0] != 3 {
		t.Fatalf("got %+v, %v", rec, err)
	}
	rec, err = r.Next()
	if err != nil || rec.Kind != Final {
		t.Fatalf("got %+v, %v", rec, err)
	}
}

func TestFilterKeepsSelected(t *testing.T) {
	h := header()
	sink := NewCollect(h)
	f, err := NewFilter(h, sink, []string{"b"}, []string{"t1"})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i := range recs {
		if err := f.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Kept: Initial (masked), End t0 (carries delta on b), Start t1,
	// End t1 (kept transition, deltas on a dropped), Final.
	if len(sink.Records) != 5 {
		t.Fatalf("got %d records: %s", len(sink.Records), sink)
	}
	init := sink.Records[0]
	if !init.Marking.Equal(petri.Marking{0, 0, 0}) {
		t.Errorf("masked initial marking = %v", init.Marking)
	}
	endT0 := sink.Records[1]
	if endT0.Kind != End || endT0.Trans != 0 || len(endT0.Deltas) != 1 || endT0.Deltas[0].Place != 1 {
		t.Errorf("kept t0 end wrong: %+v", endT0)
	}
	endT1 := sink.Records[3]
	if endT1.Trans != 1 || len(endT1.Deltas) != 0 {
		t.Errorf("t1 end should have dropped its deltas: %+v", endT1)
	}
}

func TestFilterUnknownNames(t *testing.T) {
	h := header()
	if _, err := NewFilter(h, NewCollect(h), []string{"nope"}, nil); err == nil {
		t.Error("unknown place accepted")
	}
	if _, err := NewFilter(h, NewCollect(h), nil, []string{"nope"}); err == nil {
		t.Error("unknown transition accepted")
	}
}

func TestCopy(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, header(), false)
	recs := sampleRecords()
	for i := range recs {
		if err := w.Record(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sink := NewCollect(header())
	n, err := Copy(NewReader(&buf), sink)
	if err != nil || n != len(recs) {
		t.Fatalf("Copy: %d, %v", n, err)
	}
}

// Property: any record with random deltas round-trips through the text
// encoding unchanged.
func TestQuickRecordRoundTrip(t *testing.T) {
	h := header()
	f := func(time uint16, trans uint8, places [4]uint8, changes [4]int8) bool {
		rec := Record{Kind: Start, Time: petri.Time(time), Trans: petri.TransID(trans % 2)}
		for i := range places {
			ch := int(changes[i])
			if ch == 0 {
				continue
			}
			rec.Deltas = append(rec.Deltas, Delta{Place: petri.PlaceID(places[i] % 3), Change: ch})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, h, false)
		if err := w.Record(&rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		got, err := r.Next()
		if err != nil {
			return false
		}
		if got.Kind != rec.Kind || got.Time != rec.Time || got.Trans != rec.Trans || len(got.Deltas) != len(rec.Deltas) {
			return false
		}
		for i := range got.Deltas {
			if got.Deltas[i] != rec.Deltas[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: filtering is idempotent — filtering a filtered stream with
// the same keep sets changes nothing.
func TestQuickFilterIdempotent(t *testing.T) {
	h := header()
	f := func(seedDeltas [6]int8) bool {
		recs := sampleRecords()
		once := NewCollect(h)
		f1, _ := NewFilter(h, once, []string{"a"}, []string{"t0"})
		for i := range recs {
			if f1.Record(&recs[i]) != nil {
				return false
			}
		}
		twice := NewCollect(h)
		f2, _ := NewFilter(h, twice, []string{"a"}, []string{"t0"})
		for i := range once.Records {
			if f2.Record(&once.Records[i]) != nil {
				return false
			}
		}
		return once.String() == twice.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
