package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/petri"
)

// failWriter fails after n bytes to exercise write-error paths.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterRejectsMalformedRecords(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, header(), false)
	if err := w.Record(&Record{Kind: Initial, Marking: petri.Marking{1}}); err == nil {
		t.Error("short marking accepted")
	}
	if err := w.Record(&Record{Kind: Start, Trans: 99}); err == nil {
		t.Error("out-of-range transition accepted")
	}
	if err := w.Record(&Record{Kind: Kind('Z')}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	fw := &failWriter{n: 10}
	w := NewWriter(fw, header(), true) // flushEvery forces the error out
	rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 2, 3}}
	err1 := w.Record(&rec)
	err2 := w.Flush()
	if err1 == nil && err2 == nil {
		t.Error("io error swallowed")
	}
}

func TestFlushEveryProducesIncrementalOutput(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, header(), true)
	rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 0, 0}}
	if err := w.Record(&rec); err != nil {
		t.Fatal(err)
	}
	// Without an explicit Flush the record must already be visible.
	if !strings.Contains(buf.String(), "I 0 ") {
		t.Error("flushEvery did not flush")
	}
}

func TestReaderHugeLineRejectedGracefully(t *testing.T) {
	// Construct a trace with an over-long bogus line; the scanner must
	// fail with an error, not hang or panic.
	var b strings.Builder
	b.WriteString("pnut-trace 1\nnet x\nplace 0 a\ntrans 0 t\n")
	b.WriteString("S 0 0 ")
	for i := 0; i < 100_000; i++ {
		b.WriteString("0:+1,")
	}
	b.WriteString("0:+1\n")
	r := NewReader(strings.NewReader(b.String()))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	// The long delta list parses (it is within buffer limits) — all
	// deltas target place 0.
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("long line should still parse: %v", err)
	}
	if len(rec.Deltas) != 100_001 {
		t.Errorf("deltas = %d", len(rec.Deltas))
	}
}

func TestCollectCloneIndependence(t *testing.T) {
	c := NewCollect(header())
	m := petri.Marking{1, 2, 3}
	rec := Record{Kind: Initial, Marking: m}
	if err := c.Record(&rec); err != nil {
		t.Fatal(err)
	}
	m[0] = 99 // mutate the caller's marking
	if c.Records[0].Marking[0] != 1 {
		t.Error("Collect aliased the record marking")
	}
	deltas := []Delta{{Place: 0, Change: 1}}
	rec2 := Record{Kind: End, Trans: 0, Deltas: deltas}
	if err := c.Record(&rec2); err != nil {
		t.Fatal(err)
	}
	deltas[0].Change = -5
	if c.Records[1].Deltas[0].Change != 1 {
		t.Error("Collect aliased the record deltas")
	}
}

func TestTeeStopsAtFirstError(t *testing.T) {
	boom := errors.New("x")
	calls := 0
	bad := ObserverFunc(func(*Record) error { calls++; return boom })
	never := ObserverFunc(func(*Record) error { t.Error("second observer reached"); return nil })
	tee := Tee{bad, never}
	rec := Record{Kind: Final}
	if err := tee.Record(&rec); !errors.Is(err, boom) {
		t.Errorf("tee error: %v", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d", calls)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Initial: "initial", Start: "start", End: "end", Final: "final",
		Kind('?'): "Kind(?)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%v = %q, want %q", byte(k), got, want)
		}
	}
}

// BenchmarkWriter measures the encode hot path the simulator drives:
// batched records (the default) versus flush-per-record streaming.
func BenchmarkWriter(b *testing.B) {
	rec := Record{
		Kind: End, Time: 123456, Trans: 1,
		Deltas: []Delta{{Place: 0, Change: 1}, {Place: 2, Change: -3}},
	}
	for _, mode := range []struct {
		name       string
		flushEvery bool
	}{{"batched", false}, {"flushEvery", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w := NewWriter(io.Discard, header(), mode.flushEvery)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := w.Record(&rec); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// TestWriterErrorIsSticky: after a downstream write error the writer
// must keep failing (no silent gap in the trace) and must not drop the
// unwritten batch.
func TestWriterErrorIsSticky(t *testing.T) {
	fw := &failWriter{n: 0} // fails immediately
	w := NewWriter(fw, header(), true)
	rec := Record{Kind: Initial, Time: 0, Marking: petri.Marking{1, 2, 3}}
	err1 := w.Record(&rec)
	if err1 == nil {
		t.Fatal("first Record did not surface the write error")
	}
	if err2 := w.Record(&rec); err2 != err1 {
		t.Errorf("second Record = %v, want sticky %v", err2, err1)
	}
	if err3 := w.Flush(); err3 != err1 {
		t.Errorf("Flush = %v, want sticky %v", err3, err1)
	}
	if len(w.buf) == 0 {
		t.Error("unwritten batch was dropped on error")
	}
}
