package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/petri"
)

// The columnar binary trace format. Where the text codec optimizes for
// debuggability (one record per line, greppable), the columnar codec
// optimizes for full-trace analysis at production sweep sizes: records
// are split into per-field column streams (kinds, time deltas,
// transition ids, delta place/change streams, ...) so that each stream
// is a run of small, similar integers that delta+varint encoding
// shrinks hard, and the streams are grouped into length-prefixed,
// self-contained blocks so that a reader can skip a whole block —
// without decoding it — when its header proves the block holds nothing
// of interest.
//
// Layout:
//
//	magic   "PNUTCOL1" (8 bytes)
//	header  net name, places, transitions (uvarint-length-prefixed strings)
//	block*  uvarint bodyLen, then the body:
//	          uvarint recordCount
//	          byte    kindsMask           (bit set per Kind present)
//	          []byte  place bitmap        (places touched by any delta)
//	          []byte  trans bitmap        (transitions of any S/E record)
//	          stream* uvarint byteLen + bytes, in fixed order:
//	            kinds        one byte per record
//	            times        zigzag varint deltas (first record absolute,
//	                         later records relative to the previous one
//	                         in the same block)
//	            trans        uvarint transition id per S/E record
//	            deltaCounts  uvarint delta count per S/E record
//	            dplaces      uvarint place id per delta
//	            dchanges     zigzag varint change per delta
//	            markings     numPlaces uvarints per I record
//	            finals       zigzag varint starts, ends per F record
//
// The stream ends at a block boundary; there is no trailer (the Final
// record carries the end-of-run semantics, exactly as in the text
// format). Every block decodes independently of every other block,
// which is what makes both skipping and flush-per-record live piping
// work.

// colMagic distinguishes columnar traces; the text format starts with
// "pnut-trace 1" instead, so the first byte alone tells them apart.
const colMagic = "PNUTCOL1"

const (
	// colBlockRecords caps records per block: small enough that a
	// skipping reader has useful granularity, large enough that the
	// per-block header (bitmaps + stream lengths) amortizes away.
	colBlockRecords = 4096
	// colBlockBytes flushes a block early when its column buffers grow
	// past this size, bounding reader memory for delta-heavy traces.
	colBlockBytes = 256 * 1024
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// bitmapLen is the byte length of an n-bit bitmap.
func bitmapLen(n int) int { return (n + 7) / 8 }

func setBit(bm []byte, i int)      { bm[i>>3] |= 1 << (i & 7) }
func hasBit(bm []byte, i int) bool { return bm[i>>3]&(1<<(i&7)) != 0 }
func clearBitmap(bm []byte)        { clear(bm) }

func anyOverlap(bm []byte, keep []bool) bool {
	n := len(keep)
	if max := len(bm) * 8; n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		if keep[i] && hasBit(bm, i) {
			return true
		}
	}
	return false
}

// ColWriter streams trace records to an io.Writer in the columnar
// binary format. It implements Observer, so a simulator can drive it
// directly, and it follows the text Writer's batching contract: records
// accumulate in column buffers, blocks accumulate in one output buffer,
// and a downstream write error is sticky with the unwritten bytes
// retained.
type ColWriter struct {
	w          io.Writer
	h          Header
	numPlaces  int
	numTrans   int
	flushEvery bool
	err        error // first downstream write error, sticky
	wroteHead  bool

	// Column buffers for the block under construction.
	n           int
	lastTime    petri.Time
	kindsMask   byte
	kinds       []byte
	times       []byte
	trans       []byte
	deltaCounts []byte
	dplaces     []byte
	dchanges    []byte
	markings    []byte
	finals      []byte
	placeBits   []byte
	transBits   []byte

	out []byte // assembled magic/header/blocks awaiting the downstream write
}

// NewColWriter returns a columnar trace writer for traces described by
// h. If flushEvery is true every record becomes its own block and is
// handed downstream immediately — the "pipe into a live analyzer" mode;
// otherwise blocks are cut at colBlockRecords/colBlockBytes and batched,
// so call Flush (or write a Final record) when done.
func NewColWriter(w io.Writer, h Header, flushEvery bool) *ColWriter {
	return &ColWriter{
		w: w, h: h,
		numPlaces: len(h.Places), numTrans: len(h.Trans),
		flushEvery: flushEvery,
		placeBits:  make([]byte, bitmapLen(len(h.Places))),
		transBits:  make([]byte, bitmapLen(len(h.Trans))),
	}
}

func (cw *ColWriter) writeHeader() {
	if cw.wroteHead {
		return
	}
	cw.wroteHead = true
	cw.out = append(cw.out, colMagic...)
	cw.out = appendString(cw.out, cw.h.Net)
	cw.out = binary.AppendUvarint(cw.out, uint64(cw.numPlaces))
	for _, p := range cw.h.Places {
		cw.out = appendString(cw.out, p)
	}
	cw.out = binary.AppendUvarint(cw.out, uint64(cw.numTrans))
	for _, t := range cw.h.Trans {
		cw.out = appendString(cw.out, t)
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Record implements Observer. The record is validated in full before
// any column buffer is touched, so a rejected record never leaves the
// block in a half-appended, undecodable state.
func (cw *ColWriter) Record(rec *Record) error {
	if cw.err != nil {
		return cw.err
	}
	switch rec.Kind {
	case Initial:
		if len(rec.Marking) != cw.numPlaces {
			return fmt.Errorf("trace: initial marking has %d places, header has %d", len(rec.Marking), cw.numPlaces)
		}
		for _, c := range rec.Marking {
			cw.markings = binary.AppendUvarint(cw.markings, uint64(c))
		}
	case Start, End:
		if int(rec.Trans) < 0 || int(rec.Trans) >= cw.numTrans {
			return fmt.Errorf("trace: transition id %d out of range", rec.Trans)
		}
		for _, d := range rec.Deltas {
			if int(d.Place) < 0 || int(d.Place) >= cw.numPlaces {
				return fmt.Errorf("trace: delta place id %d out of range", d.Place)
			}
		}
		cw.trans = binary.AppendUvarint(cw.trans, uint64(rec.Trans))
		setBit(cw.transBits, int(rec.Trans))
		cw.deltaCounts = binary.AppendUvarint(cw.deltaCounts, uint64(len(rec.Deltas)))
		for _, d := range rec.Deltas {
			cw.dplaces = binary.AppendUvarint(cw.dplaces, uint64(d.Place))
			setBit(cw.placeBits, int(d.Place))
			cw.dchanges = binary.AppendUvarint(cw.dchanges, zigzag(int64(d.Change)))
		}
	case Final:
		cw.finals = binary.AppendUvarint(cw.finals, zigzag(rec.Starts))
		cw.finals = binary.AppendUvarint(cw.finals, zigzag(rec.Ends))
	default:
		return fmt.Errorf("trace: unknown record kind %q", rec.Kind)
	}
	cw.kinds = append(cw.kinds, byte(rec.Kind))
	cw.kindsMask |= kindBit(rec.Kind)
	cw.times = binary.AppendUvarint(cw.times, zigzag(rec.Time-cw.lastTime))
	cw.lastTime = rec.Time
	cw.n++
	if cw.flushEvery || rec.Kind == Final || cw.n >= colBlockRecords || cw.blockBytes() >= colBlockBytes {
		cw.cutBlock()
		if cw.flushEvery || rec.Kind == Final {
			return cw.Flush()
		}
	}
	return nil
}

func kindBit(k Kind) byte {
	switch k {
	case Initial:
		return 1
	case Start:
		return 2
	case End:
		return 4
	case Final:
		return 8
	}
	return 0
}

func (cw *ColWriter) blockBytes() int {
	return len(cw.kinds) + len(cw.times) + len(cw.trans) + len(cw.deltaCounts) +
		len(cw.dplaces) + len(cw.dchanges) + len(cw.markings) + len(cw.finals)
}

// cutBlock assembles the buffered columns into one length-prefixed
// block appended to the output buffer, and resets the column state.
func (cw *ColWriter) cutBlock() {
	if cw.n == 0 {
		return
	}
	cw.writeHeader()
	streams := [...][]byte{
		cw.kinds, cw.times, cw.trans, cw.deltaCounts,
		cw.dplaces, cw.dchanges, cw.markings, cw.finals,
	}
	bodyLen := uvarintLen(uint64(cw.n)) + 1 + len(cw.placeBits) + len(cw.transBits)
	for _, s := range streams {
		bodyLen += uvarintLen(uint64(len(s))) + len(s)
	}
	cw.out = binary.AppendUvarint(cw.out, uint64(bodyLen))
	cw.out = binary.AppendUvarint(cw.out, uint64(cw.n))
	cw.out = append(cw.out, cw.kindsMask)
	cw.out = append(cw.out, cw.placeBits...)
	cw.out = append(cw.out, cw.transBits...)
	for _, s := range streams {
		cw.out = binary.AppendUvarint(cw.out, uint64(len(s)))
		cw.out = append(cw.out, s...)
	}
	cw.n = 0
	cw.lastTime = 0
	cw.kindsMask = 0
	cw.kinds = cw.kinds[:0]
	cw.times = cw.times[:0]
	cw.trans = cw.trans[:0]
	cw.deltaCounts = cw.deltaCounts[:0]
	cw.dplaces = cw.dplaces[:0]
	cw.dchanges = cw.dchanges[:0]
	cw.markings = cw.markings[:0]
	cw.finals = cw.finals[:0]
	clearBitmap(cw.placeBits)
	clearBitmap(cw.transBits)
}

// Flush cuts the pending block (if any) and hands all buffered bytes to
// the underlying writer. A downstream write error is sticky and the
// unwritten bytes are retained, matching the text Writer's contract.
func (cw *ColWriter) Flush() error {
	if cw.err != nil {
		return cw.err
	}
	cw.cutBlock()
	cw.writeHeader()
	if len(cw.out) == 0 {
		return nil
	}
	n, err := cw.w.Write(cw.out)
	if err == nil && n < len(cw.out) {
		err = io.ErrShortWrite
	}
	if err != nil {
		cw.err = err
		cw.out = cw.out[:copy(cw.out, cw.out[n:])]
		return err
	}
	cw.out = cw.out[:0]
	return nil
}

// ColStats counts what a ColReader did, for `pnut-trace inspect` and
// for verifying that block skipping actually skipped.
type ColStats struct {
	Blocks        int64 // blocks decoded
	SkippedBlocks int64 // blocks discarded without decoding
	SkippedBytes  int64 // body bytes of the skipped blocks
	Records       int64 // records decoded (skipped blocks excluded)
}

// ColReader decodes the columnar binary format as a stream with the
// same Header/Next surface as the text Reader. Records returned by Next
// share per-block backing storage for their delta slices; like
// Observer, callers must not retain them past the next call (Clone to
// keep one).
type ColReader struct {
	br     *bufio.Reader
	h      Header
	gotHdr bool
	err    error // sticky decode error

	keepPlaces []bool
	keepTrans  []bool
	skipping   bool

	stats ColStats

	// Decoded current block, served one record per Next call.
	recs []Record
	next int

	body  []byte // reusable block body buffer
	arena []Delta
}

// NewColReader wraps r. The header is parsed lazily by Header or the
// first Next call.
func NewColReader(r io.Reader) *ColReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	return &ColReader{br: br}
}

// Skip configures block skipping: a block whose records are all
// Start/End events, none of which involves a kept transition or touches
// a kept place, is discarded from the stream without being decoded.
// This mirrors exactly the records a Filter over the same keep sets
// would drop, so Filter output is identical with or without skipping —
// the skipped blocks just never cost a decode. Slices shorter than the
// header are treated as all-false beyond their length; nil keeps
// nothing of that dimension.
func (cr *ColReader) Skip(keepPlaces, keepTrans []bool) {
	cr.keepPlaces = keepPlaces
	cr.keepTrans = keepTrans
	cr.skipping = true
}

// Stats reports block-level reader activity so far.
func (cr *ColReader) Stats() ColStats { return cr.stats }

func (cr *ColReader) errf(format string, args ...any) error {
	err := fmt.Errorf("trace: col: "+format, args...)
	cr.err = err
	return err
}

// readUvarint reads one uvarint from the underlying stream. An EOF on
// the very first byte is reported as io.EOF (clean boundary); anything
// partial is an unexpected EOF.
func (cr *ColReader) readUvarint() (uint64, error) {
	v, err := binary.ReadUvarint(cr.br)
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, err
	}
	return v, nil
}

func (cr *ColReader) readString(what string, maxLen uint64) (string, error) {
	n, err := cr.readUvarint()
	if err != nil {
		return "", cr.errf("reading %s length: %w", what, noEOF(err))
	}
	if n > maxLen {
		return "", cr.errf("%s length %d exceeds limit %d", what, n, maxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.br, buf); err != nil {
		return "", cr.errf("reading %s: %w", what, noEOF(err))
	}
	return string(buf), nil
}

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside the
// header or a block, running out of bytes is truncation, not a clean
// end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

const colMaxNames = 1 << 20 // sanity cap on place/transition counts

// Header parses (if needed) and returns the trace header.
func (cr *ColReader) Header() (Header, error) {
	if cr.gotHdr {
		return cr.h, nil
	}
	if cr.err != nil {
		return Header{}, cr.err
	}
	magic := make([]byte, len(colMagic))
	if _, err := io.ReadFull(cr.br, magic); err != nil {
		return Header{}, cr.errf("reading magic: %w", noEOF(err))
	}
	if string(magic) != colMagic {
		return Header{}, cr.errf("bad magic %q", magic)
	}
	net, err := cr.readString("net name", 1<<20)
	if err != nil {
		return Header{}, err
	}
	cr.h.Net = net
	for _, dim := range []struct {
		what  string
		names *[]string
	}{{"place", &cr.h.Places}, {"trans", &cr.h.Trans}} {
		n, err := cr.readUvarint()
		if err != nil {
			return Header{}, cr.errf("reading %s count: %w", dim.what, noEOF(err))
		}
		if n > colMaxNames {
			return Header{}, cr.errf("%s count %d exceeds limit", dim.what, n)
		}
		*dim.names = make([]string, n)
		for i := range *dim.names {
			s, err := cr.readString(dim.what+" name", 1<<16)
			if err != nil {
				return Header{}, err
			}
			(*dim.names)[i] = s
		}
	}
	cr.gotHdr = true
	return cr.h, nil
}

// Next returns the next record, or io.EOF after the last one.
func (cr *ColReader) Next() (Record, error) {
	if !cr.gotHdr {
		if _, err := cr.Header(); err != nil {
			return Record{}, err
		}
	}
	if cr.err != nil {
		return Record{}, cr.err
	}
	for cr.next >= len(cr.recs) {
		if err := cr.readBlock(); err != nil {
			return Record{}, err
		}
	}
	rec := cr.recs[cr.next]
	cr.next++
	return rec, nil
}

// readBlock reads the next block: either discarding it via the skip
// path or decoding it into cr.recs.
func (cr *ColReader) readBlock() error {
	bodyLen, err := cr.readUvarint()
	if err == io.EOF {
		return io.EOF // clean end of stream at a block boundary
	}
	if err != nil {
		return cr.errf("reading block length: %w", err)
	}
	const maxBlock = 1 << 26 // far above any block the writer cuts
	if bodyLen == 0 || bodyLen > maxBlock {
		return cr.errf("implausible block length %d", bodyLen)
	}
	// Block prelude: record count, kinds mask, bitmaps. Read it off the
	// stream directly so a skippable block's streams are never even
	// copied out of the bufio buffer.
	n, err := cr.readUvarint()
	if err != nil {
		return cr.errf("reading record count: %w", noEOF(err))
	}
	preludeLen := uvarintLen(n) + 1 + bitmapLen(len(cr.h.Places)) + bitmapLen(len(cr.h.Trans))
	if uint64(preludeLen) > bodyLen {
		return cr.errf("block length %d too short for its prelude", bodyLen)
	}
	// Each record costs at least one kinds byte plus one times byte.
	if n > bodyLen/2+1 {
		return cr.errf("implausible record count %d in %d-byte block", n, bodyLen)
	}
	kindsMask, err := cr.br.ReadByte()
	if err != nil {
		return cr.errf("reading kinds mask: %w", noEOF(err))
	}
	pb := bitmapLen(len(cr.h.Places))
	tb := bitmapLen(len(cr.h.Trans))
	if cap(cr.body) < pb+tb {
		sz := 64 * 1024
		if pb+tb > sz {
			sz = pb + tb
		}
		cr.body = make([]byte, 0, sz)
	}
	bitmaps := cr.body[:pb+tb]
	if _, err := io.ReadFull(cr.br, bitmaps); err != nil {
		return cr.errf("reading bitmaps: %w", noEOF(err))
	}
	placeBits, transBits := bitmaps[:pb], bitmaps[pb:]
	rest := int(bodyLen) - preludeLen

	if cr.skipping && kindsMask&^(kindBit(Start)|kindBit(End)) == 0 &&
		!anyOverlap(placeBits, cr.keepPlaces) && !anyOverlap(transBits, cr.keepTrans) {
		if _, err := cr.br.Discard(rest); err != nil {
			return cr.errf("skipping block: %w", noEOF(err))
		}
		cr.stats.SkippedBlocks++
		cr.stats.SkippedBytes += int64(bodyLen)
		return nil
	}

	if cap(cr.body) < rest {
		cr.body = make([]byte, rest)
	}
	body := cr.body[:rest]
	if _, err := io.ReadFull(cr.br, body); err != nil {
		return cr.errf("reading block body: %w", noEOF(err))
	}
	cr.stats.Blocks++
	cr.stats.Records += int64(n)
	return cr.decodeBlock(int(n), body)
}

// colStreams indexes the fixed stream order of a block body.
const (
	streamKinds = iota
	streamTimes
	streamTrans
	streamDeltaCounts
	streamDPlaces
	streamDChanges
	streamMarkings
	streamFinals
	numStreams
)

// splitStreams slices the length-prefixed streams out of a block body.
func splitStreams(body []byte) ([numStreams][]byte, error) {
	var streams [numStreams][]byte
	for i := 0; i < numStreams; i++ {
		n, sz := binary.Uvarint(body)
		if sz <= 0 || n > uint64(len(body)-sz) {
			return streams, fmt.Errorf("stream %d length corrupt", i)
		}
		streams[i] = body[sz : sz+int(n)]
		body = body[sz+int(n):]
	}
	if len(body) != 0 {
		return streams, fmt.Errorf("%d trailing bytes after streams", len(body))
	}
	return streams, nil
}

// cursor decodes varints sequentially from one stream.
type cursor struct {
	buf []byte
	pos int
}

func (c *cursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		return 0, false
	}
	c.pos += n
	return v, true
}

func (c *cursor) done() bool { return c.pos == len(c.buf) }

func (cr *ColReader) decodeBlock(n int, body []byte) error {
	streams, err := splitStreams(body)
	if err != nil {
		return cr.errf("%v", err)
	}
	kinds := streams[streamKinds]
	if len(kinds) != n {
		return cr.errf("kinds stream has %d bytes for %d records", len(kinds), n)
	}
	times := cursor{buf: streams[streamTimes]}
	trans := cursor{buf: streams[streamTrans]}
	deltaCounts := cursor{buf: streams[streamDeltaCounts]}
	dplaces := cursor{buf: streams[streamDPlaces]}
	dchanges := cursor{buf: streams[streamDChanges]}
	markings := cursor{buf: streams[streamMarkings]}
	finals := cursor{buf: streams[streamFinals]}

	if cap(cr.recs) < n {
		cr.recs = make([]Record, n)
	}
	cr.recs = cr.recs[:n]
	// Records sub-slice the delta arena, so it must not reallocate
	// mid-block: size it to the delta count up front (one varint per
	// delta in the dplaces stream — count the terminator bytes).
	totalDeltas := 0
	for _, b := range streams[streamDPlaces] {
		if b < 0x80 {
			totalDeltas++
		}
	}
	if cap(cr.arena) < totalDeltas {
		cr.arena = make([]Delta, 0, totalDeltas)
	}
	cr.arena = cr.arena[:0]
	cr.next = 0
	var t petri.Time
	for i := 0; i < n; i++ {
		dt, ok := times.uvarint()
		if !ok {
			return cr.errf("times stream truncated at record %d", i)
		}
		t += unzigzag(dt)
		rec := Record{Kind: Kind(kinds[i]), Time: t}
		switch rec.Kind {
		case Initial:
			m := make(petri.Marking, len(cr.h.Places))
			for p := range m {
				c, ok := markings.uvarint()
				if !ok {
					return cr.errf("markings stream truncated at record %d", i)
				}
				m[p] = int(c)
			}
			rec.Marking = m
		case Start, End:
			id, ok := trans.uvarint()
			if !ok {
				return cr.errf("trans stream truncated at record %d", i)
			}
			if id >= uint64(len(cr.h.Trans)) {
				return cr.errf("transition id %d out of range at record %d", id, i)
			}
			rec.Trans = petri.TransID(id)
			nd, ok := deltaCounts.uvarint()
			if !ok {
				return cr.errf("delta-count stream truncated at record %d", i)
			}
			if nd > uint64(len(streams[streamDPlaces])-dplaces.pos) {
				return cr.errf("implausible delta count %d at record %d", nd, i)
			}
			lo := len(cr.arena)
			for d := uint64(0); d < nd; d++ {
				p, ok1 := dplaces.uvarint()
				ch, ok2 := dchanges.uvarint()
				if !ok1 || !ok2 {
					return cr.errf("delta streams truncated at record %d", i)
				}
				if p >= uint64(len(cr.h.Places)) {
					return cr.errf("delta place id %d out of range at record %d", p, i)
				}
				change := unzigzag(ch)
				if change == 0 {
					return cr.errf("zero delta change at record %d", i)
				}
				cr.arena = append(cr.arena, Delta{Place: petri.PlaceID(p), Change: int(change)})
			}
			if len(cr.arena) > lo {
				rec.Deltas = cr.arena[lo:len(cr.arena):len(cr.arena)]
			}
		case Final:
			s, ok1 := finals.uvarint()
			e, ok2 := finals.uvarint()
			if !ok1 || !ok2 {
				return cr.errf("finals stream truncated at record %d", i)
			}
			rec.Starts = unzigzag(s)
			rec.Ends = unzigzag(e)
		default:
			return cr.errf("unknown record kind %q at record %d", byte(rec.Kind), i)
		}
		cr.recs[i] = rec
	}
	for _, s := range [...]struct {
		name string
		c    *cursor
	}{
		{"times", &times}, {"trans", &trans}, {"delta-count", &deltaCounts},
		{"dplaces", &dplaces}, {"dchanges", &dchanges}, {"markings", &markings}, {"finals", &finals},
	} {
		if !s.c.done() {
			return cr.errf("%s stream has %d trailing bytes", s.name, len(s.c.buf)-s.c.pos)
		}
	}
	return nil
}
