package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// FuzzColReader hardens the columnar decoder: arbitrary input must
// either decode to records or fail with an error — never panic, never
// loop forever, never produce out-of-range ids. The seed corpus holds
// valid encodings (several shapes), truncations, and byte flips; go
// fuzzing mutates from there.
func FuzzColReader(f *testing.F) {
	seed := func(events int, flushEvery bool, rngSeed int64) []byte {
		rng := rand.New(rand.NewSource(rngSeed))
		h, recs := genTrace(rng, events)
		var buf bytes.Buffer
		w := NewColWriter(&buf, h, flushEvery)
		for i := range recs {
			if err := w.Record(&recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := seed(50, false, 1)
	f.Add(valid)
	f.Add(seed(0, false, 2))
	f.Add(seed(200, true, 3))
	// Truncated blocks: a corrupt block must error, never panic.
	for _, cut := range []int{1, len(colMagic), len(valid) / 2, len(valid) - 1} {
		f.Add(valid[:cut])
	}
	// Flipped bytes in the header and in a block.
	for _, pos := range []int{0, len(colMagic) + 1, len(valid) - 5} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte(colMagic))
	f.Add([]byte("pnut-trace 1\nnet x\n")) // text magic: must be rejected

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewColReader(bytes.NewReader(data))
		h, err := r.Header()
		if err != nil {
			return
		}
		for n := 0; ; n++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			// Decoded records must respect the header's id spaces.
			switch rec.Kind {
			case Initial:
				if len(rec.Marking) != len(h.Places) {
					t.Fatalf("initial marking has %d places, header %d", len(rec.Marking), len(h.Places))
				}
			case Start, End:
				if int(rec.Trans) < 0 || int(rec.Trans) >= len(h.Trans) {
					t.Fatalf("transition id %d out of range", rec.Trans)
				}
				for _, d := range rec.Deltas {
					if int(d.Place) < 0 || int(d.Place) >= len(h.Places) {
						t.Fatalf("delta place %d out of range", d.Place)
					}
					if d.Change == 0 {
						t.Fatal("zero delta change decoded")
					}
				}
			case Final:
			default:
				t.Fatalf("unknown kind %q decoded", byte(rec.Kind))
			}
			if n > 1<<22 {
				t.Fatal("runaway record stream")
			}
		}
	})
}

// FuzzColRoundTrip mutates text traces: any text trace the text reader
// accepts must survive text -> col -> text byte-identically.
func FuzzColRoundTrip(f *testing.F) {
	for _, events := range []int{0, 5, 80} {
		rng := rand.New(rand.NewSource(int64(events)))
		h, recs := genTrace(rng, events)
		var buf bytes.Buffer
		w := NewWriter(&buf, h, false)
		for i := range recs {
			if err := w.Record(&recs[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Fuzz(func(t *testing.T, src string) {
		r := NewReader(bytes.NewReader([]byte(src)))
		h, err := r.Header()
		if err != nil {
			return
		}
		var recs []Record
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // text trace invalid: nothing to round trip
			}
			recs = append(recs, rec.Clone())
		}
		// Canonical text form of what the reader understood.
		reEncode := func(recs []Record) []byte {
			var buf bytes.Buffer
			w := NewWriter(&buf, h, false)
			for i := range recs {
				if err := w.Record(&recs[i]); err != nil {
					t.Fatalf("re-encoding accepted record: %v", err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		t1 := reEncode(recs)
		var colBuf bytes.Buffer
		cw := NewColWriter(&colBuf, h, false)
		for i := range recs {
			if err := cw.Record(&recs[i]); err != nil {
				t.Fatalf("col rejected record the text reader produced: %v", err)
			}
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
		cr := NewColReader(bytes.NewReader(colBuf.Bytes()))
		if _, err := cr.Header(); err != nil {
			t.Fatalf("col round trip: header: %v", err)
		}
		var back []Record
		for {
			rec, err := cr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("col round trip: %v", err)
			}
			back = append(back, rec.Clone())
		}
		if t2 := reEncode(back); !bytes.Equal(t1, t2) {
			t.Fatalf("text->col->text not identity:\n%q\nvs\n%q", t1, t2)
		}
	})
}
