package trace

import (
	"bufio"
	"fmt"
	"io"
)

// RecordReader is the decode side shared by both trace codecs: the text
// Reader and the columnar ColReader. Analyzers consume this interface
// so a stored trace's encoding is an implementation detail.
type RecordReader interface {
	// Header parses (if needed) and returns the trace header.
	Header() (Header, error)
	// Next returns the next record, or io.EOF after the last one.
	Next() (Record, error)
}

// StreamWriter is the encode side shared by both codecs: an Observer
// whose batched records can be forced downstream.
type StreamWriter interface {
	Observer
	Flush() error
}

// Trace format names, as accepted by the CLIs' -trace-format flag.
const (
	FormatAuto = "auto" // readers: sniff the magic bytes
	FormatText = "text" // the line-oriented debuggable interchange
	FormatCol  = "col"  // the columnar binary format
)

// OpenReader wraps r in the reader for the requested format and reports
// which format was chosen. Format FormatAuto (or "") sniffs the magic
// bytes: columnar traces start with "PNUTCOL1", text traces with
// "pnut-trace". Forcing FormatText or FormatCol skips the sniff, so a
// mismatched input fails with that codec's own magic error.
func OpenReader(r io.Reader, format string) (RecordReader, string, error) {
	switch format {
	case FormatText:
		return NewReader(r), FormatText, nil
	case FormatCol:
		return NewColReader(r), FormatCol, nil
	case FormatAuto, "":
	default:
		return nil, "", fmt.Errorf("trace: unknown format %q (want %s, %s or %s)", format, FormatAuto, FormatText, FormatCol)
	}
	br := bufio.NewReaderSize(r, 64*1024)
	magic, err := br.Peek(len(colMagic))
	if err != nil && err != io.EOF {
		return nil, "", fmt.Errorf("trace: sniffing format: %w", err)
	}
	if string(magic) == colMagic {
		return NewColReader(br), FormatCol, nil
	}
	return NewReader(br), FormatText, nil
}

// NewFormatWriter returns the writer for the requested format
// (FormatText or FormatCol), with the same flushEvery semantics both
// codecs share.
func NewFormatWriter(w io.Writer, h Header, format string, flushEvery bool) (StreamWriter, error) {
	switch format {
	case FormatText, "":
		return NewWriter(w, h, flushEvery), nil
	case FormatCol:
		return NewColWriter(w, h, flushEvery), nil
	}
	return nil, fmt.Errorf("trace: unknown format %q (want %s or %s)", format, FormatText, FormatCol)
}
