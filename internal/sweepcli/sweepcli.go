// Package sweepcli holds the sweep-shape flag surface shared by the
// pnut-sweep worker and the pnut-grid coordinator. Keeping flag
// registration, option expansion and worker-argv reconstruction in one
// place guarantees the coordinator launches workers whose grid — axes,
// seed schedule, metrics — is exactly its own: WorkerArgs is the
// inverse of Register.
package sweepcli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/ptl"
	"repro/internal/sim"
)

// Repeated is a repeatable string flag.
type Repeated []string

func (r *Repeated) String() string { return strings.Join(*r, ", ") }

// Set appends one occurrence.
func (r *Repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// Config is the sweep shape both CLIs share: model source, grid axes,
// replication/seed schedule and metrics.
type Config struct {
	Model     string
	Net       string
	Horizon   int64
	MaxStarts int64
	Seed      int64
	Reps      int
	Parallel  int

	// Adaptive replication (CI-targeted stopping): Adaptive is the
	// "metric:relci" spec, empty for fixed -reps sweeps.
	Adaptive string
	MinReps  int
	MaxReps  int
	Batch    int

	Axes         Repeated
	Throughputs  Repeated
	Utilizations Repeated
}

// Register installs the shared flags on fs.
func (c *Config) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Model, "model", "pipeline", "built-in model: pipeline or cache; axis names are parameters\n"+
		strings.Join(pipeline.ParamNames(), ", "))
	fs.StringVar(&c.Net, "net", "", "path to a .pn net (overrides -model; axis names are net vars)")
	fs.Int64Var(&c.Horizon, "horizon", 10_000, "simulation length in clock ticks per replication")
	fs.Int64Var(&c.MaxStarts, "max-starts", 0, "stop each replication after this many firings (0 = horizon only)")
	fs.Int64Var(&c.Seed, "seed", 1, "base seed; cell (point p, rep r) uses seed + p*reps + r\n(with -adaptive the stride is -max-reps: seed + p*max-reps + r)")
	fs.IntVar(&c.Reps, "reps", 5, "independent replications per grid point (fixed; see -adaptive)")
	fs.IntVar(&c.Parallel, "parallel", 0, "worker goroutines (0 = GOMAXPROCS; never affects results)")
	fs.StringVar(&c.Adaptive, "adaptive", "", "adaptive replication as metric:relci, e.g. 'throughput(Issue):0.05':\n"+
		"run -min-reps per point, then batches of -batch more until the metric's\n"+
		"95% CI half-width is within relci of |mean| or -max-reps is hit; overrides -reps")
	fs.IntVar(&c.MinReps, "min-reps", 4, "with -adaptive: first-round replications per point (>= 2)")
	fs.IntVar(&c.MaxReps, "max-reps", 64, "with -adaptive: replication cap per point; also fixes the seed layout")
	fs.IntVar(&c.Batch, "batch", 0, "with -adaptive: extra replications per round for unconverged points (0 = min-reps)")
	fs.Var(&c.Axes, "axis", "swept parameter as Name=v1,v2,... or Name=lo:hi:step (repeatable; product of axes is the grid)")
	fs.Var(&c.Throughputs, "throughput", "transition whose completion rate to summarize (repeatable)")
	fs.Var(&c.Utilizations, "utilization", "place whose mean token count to summarize (repeatable)")
}

// Options expands the config into sweep options plus the model name.
// At least one metric is required.
func (c *Config) Options() (experiment.SweepOptions, string, error) {
	var parsed []experiment.Axis
	for _, a := range c.Axes {
		ax, err := experiment.ParseAxis(a)
		if err != nil {
			return experiment.SweepOptions{}, "", err
		}
		parsed = append(parsed, ax)
	}
	var metrics []experiment.Metric
	for _, tr := range c.Throughputs {
		metrics = append(metrics, experiment.Throughput(tr))
	}
	for _, p := range c.Utilizations {
		metrics = append(metrics, experiment.Utilization(p))
	}
	if len(metrics) == 0 {
		return experiment.SweepOptions{}, "", fmt.Errorf("at least one -throughput or -utilization metric is required")
	}
	var adaptive *experiment.AdaptiveOptions
	if c.Adaptive != "" {
		var err error
		if adaptive, err = c.adaptiveOptions(); err != nil {
			return experiment.SweepOptions{}, "", err
		}
	}
	build, name, err := buildHook(c.Net, c.Model)
	if err != nil {
		return experiment.SweepOptions{}, "", err
	}
	return experiment.SweepOptions{
		Axes:     parsed,
		Reps:     c.Reps,
		Adaptive: adaptive,
		Workers:  c.Parallel,
		BaseSeed: c.Seed,
		Sim: sim.Options{
			Horizon:   c.Horizon,
			MaxStarts: c.MaxStarts,
		},
		Metrics: metrics,
		Build:   build,
	}, name, nil
}

// adaptiveOptions parses the -adaptive "metric:relci" spec and folds in
// the -min-reps/-max-reps/-batch shape (a zero -batch defaults to
// -min-reps). Metric names contain no colons, so the split is at the
// last one.
func (c *Config) adaptiveOptions() (*experiment.AdaptiveOptions, error) {
	i := strings.LastIndex(c.Adaptive, ":")
	if i < 0 {
		return nil, fmt.Errorf("-adaptive %q is not metric:relci (e.g. 'throughput(Issue):0.05')", c.Adaptive)
	}
	metric := strings.TrimSpace(c.Adaptive[:i])
	relCI, err := strconv.ParseFloat(strings.TrimSpace(c.Adaptive[i+1:]), 64)
	if err != nil || metric == "" {
		return nil, fmt.Errorf("-adaptive %q is not metric:relci (e.g. 'throughput(Issue):0.05')", c.Adaptive)
	}
	batch := c.Batch
	if batch == 0 {
		batch = c.MinReps
	}
	return &experiment.AdaptiveOptions{
		Metric:  metric,
		RelCI:   relCI,
		MinReps: c.MinReps,
		MaxReps: c.MaxReps,
		Batch:   batch,
	}, nil
}

// WorkerArgs reconstructs the flag list that reproduces this sweep
// shape in a worker pnut-sweep process, with the worker's goroutine
// count overridden to parallel. It is the inverse of Register, so the
// coordinator and its workers cannot drift apart.
func (c *Config) WorkerArgs(parallel int) []string {
	var args []string
	if c.Net != "" {
		args = append(args, "-net", c.Net)
	} else {
		args = append(args, "-model", c.Model)
	}
	args = append(args,
		"-horizon", strconv.FormatInt(c.Horizon, 10),
		"-max-starts", strconv.FormatInt(c.MaxStarts, 10),
		"-seed", strconv.FormatInt(c.Seed, 10),
		"-reps", strconv.Itoa(c.Reps),
		"-parallel", strconv.Itoa(parallel),
	)
	if c.Adaptive != "" {
		args = append(args,
			"-adaptive", c.Adaptive,
			"-min-reps", strconv.Itoa(c.MinReps),
			"-max-reps", strconv.Itoa(c.MaxReps),
			"-batch", strconv.Itoa(c.Batch),
		)
	}
	for _, a := range c.Axes {
		args = append(args, "-axis", a)
	}
	for _, tr := range c.Throughputs {
		args = append(args, "-throughput", tr)
	}
	for _, u := range c.Utilizations {
		args = append(args, "-utilization", u)
	}
	return args
}

// buildHook returns the per-point net builder: either the built-in
// pipeline models parameterized by name, or a .pn net with per-point
// var overrides.
func buildHook(netPath, model string) (func(experiment.Point) (*petri.Net, error), string, error) {
	if netPath != "" {
		src, err := os.ReadFile(netPath)
		if err != nil {
			return nil, "", err
		}
		base, err := ptl.Parse(string(src))
		if err != nil {
			return nil, "", err
		}
		return func(pt experiment.Point) (*petri.Net, error) {
			over := make(map[string]int64, len(pt.Names))
			for i, n := range pt.Names {
				v := pt.Values[i]
				if v != float64(int64(v)) {
					return nil, fmt.Errorf("net var %s wants an integer, got %g", n, v)
				}
				over[n] = int64(v)
			}
			return base.WithVars(over)
		}, base.Name, nil
	}
	switch model {
	case "pipeline", "cache":
		cached := model == "cache"
		name := "pipeline"
		if cached {
			name = "pipeline_cached"
		}
		return func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(cached, pt.Names, pt.Values)
		}, name, nil
	}
	return nil, "", fmt.Errorf("unknown -model %q (want pipeline or cache)", model)
}
