// Package sweepcli holds the flag surface shared by the simulating
// CLIs. The per-run shape (-horizon, -max-starts, -seed), the adaptive
// replication flags and the metric selectors are each one flag group —
// registered by pnut-sim, pnut-exp, pnut-sweep and pnut-grid from the
// same definitions, so the tools cannot drift apart in spelling,
// defaults or help text. Config composes the groups into the full sweep
// shape the pnut-sweep worker and the pnut-grid coordinator share;
// WorkerArgs is the inverse of Config.Register, which guarantees the
// coordinator launches workers whose grid — axes, seed schedule,
// metrics — is exactly its own.
package sweepcli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/experiment"
	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/ptl"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Repeated is a repeatable string flag.
type Repeated []string

func (r *Repeated) String() string { return strings.Join(*r, ", ") }

// Set appends one occurrence.
func (r *Repeated) Set(v string) error {
	*r = append(*r, v)
	return nil
}

// RunFlags is the per-run shape every simulating tool takes: how long
// to run and which seed to start from.
type RunFlags struct {
	Horizon   int64
	MaxStarts int64
	Seed      int64
}

// Register installs -horizon, -max-starts and -seed on fs with the
// shared defaults. seedUsage overrides the -seed help text for tools
// whose seed schedule needs explaining (the sweep grid); empty keeps
// the generic text.
func (f *RunFlags) Register(fs *flag.FlagSet, seedUsage string) {
	if seedUsage == "" {
		seedUsage = "base random seed (equal seeds give equal results)"
	}
	fs.Int64Var(&f.Horizon, "horizon", 10_000, "simulation length in clock ticks per run")
	fs.Int64Var(&f.MaxStarts, "max-starts", 0, "stop a run after this many firings (0 = horizon only)")
	fs.Int64Var(&f.Seed, "seed", 1, seedUsage)
}

// SimOptions expands the group into per-run simulation options.
func (f *RunFlags) SimOptions() sim.Options {
	return sim.Options{Horizon: f.Horizon, MaxStarts: f.MaxStarts, Seed: f.Seed}
}

// Args reconstructs the flag list that reproduces the group.
func (f *RunFlags) Args() []string {
	return []string{
		"-horizon", strconv.FormatInt(f.Horizon, 10),
		"-max-starts", strconv.FormatInt(f.MaxStarts, 10),
		"-seed", strconv.FormatInt(f.Seed, 10),
	}
}

// AdaptiveFlags is the CI-targeted stopping group: Adaptive is the
// "metric:relci" spec, empty for fixed-replication runs.
type AdaptiveFlags struct {
	Adaptive string
	MinReps  int
	MaxReps  int
	Batch    int
}

// Register installs the -adaptive flag family on fs.
func (f *AdaptiveFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Adaptive, "adaptive", "", "adaptive replication as metric:relci, e.g. 'throughput(Issue):0.05':\n"+
		"run -min-reps per point, then batches of -batch more until the metric's\n"+
		"95% CI half-width is within relci of |mean| or -max-reps is hit; overrides -reps")
	fs.IntVar(&f.MinReps, "min-reps", 4, "with -adaptive: first-round replications per point (>= 2)")
	fs.IntVar(&f.MaxReps, "max-reps", 64, "with -adaptive: replication cap per point; also fixes the seed layout")
	fs.IntVar(&f.Batch, "batch", 0, "with -adaptive: extra replications per round for unconverged points (0 = min-reps)")
}

// Options parses the "metric:relci" spec and folds in the round shape
// (a zero Batch defaults to MinReps). It returns nil when -adaptive is
// unset. Metric names contain no colons, so the split is at the last
// one.
func (f *AdaptiveFlags) Options() (*experiment.AdaptiveOptions, error) {
	if f.Adaptive == "" {
		return nil, nil
	}
	i := strings.LastIndex(f.Adaptive, ":")
	if i < 0 {
		return nil, fmt.Errorf("-adaptive %q is not metric:relci (e.g. 'throughput(Issue):0.05')", f.Adaptive)
	}
	metric := strings.TrimSpace(f.Adaptive[:i])
	relCI, err := strconv.ParseFloat(strings.TrimSpace(f.Adaptive[i+1:]), 64)
	if err != nil || metric == "" {
		return nil, fmt.Errorf("-adaptive %q is not metric:relci (e.g. 'throughput(Issue):0.05')", f.Adaptive)
	}
	batch := f.Batch
	if batch == 0 {
		batch = f.MinReps
	}
	return &experiment.AdaptiveOptions{
		Metric:  metric,
		RelCI:   relCI,
		MinReps: f.MinReps,
		MaxReps: f.MaxReps,
		Batch:   batch,
	}, nil
}

// Args reconstructs the flag list that reproduces the group; empty when
// -adaptive is unset.
func (f *AdaptiveFlags) Args() []string {
	if f.Adaptive == "" {
		return nil
	}
	return []string{
		"-adaptive", f.Adaptive,
		"-min-reps", strconv.Itoa(f.MinReps),
		"-max-reps", strconv.Itoa(f.MaxReps),
		"-batch", strconv.Itoa(f.Batch),
	}
}

// MetricFlags is the repeatable metric-selector group.
type MetricFlags struct {
	Throughputs  Repeated
	Utilizations Repeated
}

// Register installs -throughput and -utilization on fs.
func (f *MetricFlags) Register(fs *flag.FlagSet) {
	fs.Var(&f.Throughputs, "throughput", "transition whose completion rate to summarize (repeatable)")
	fs.Var(&f.Utilizations, "utilization", "place whose mean token count to summarize (repeatable)")
}

// Metrics expands the selectors, throughputs first.
func (f *MetricFlags) Metrics() []experiment.Metric {
	var metrics []experiment.Metric
	for _, tr := range f.Throughputs {
		metrics = append(metrics, experiment.Throughput(tr))
	}
	for _, p := range f.Utilizations {
		metrics = append(metrics, experiment.Utilization(p))
	}
	return metrics
}

// Args reconstructs the flag list that reproduces the group.
func (f *MetricFlags) Args() []string {
	var args []string
	for _, tr := range f.Throughputs {
		args = append(args, "-throughput", tr)
	}
	for _, u := range f.Utilizations {
		args = append(args, "-utilization", u)
	}
	return args
}

// FaultFlags is the coordinator's fault-tolerance group: how hard a
// round fights for its spans before the run fails. Coordinator-only —
// these flags shape dispatch, never the grid, so WorkerArgs does not
// ship them and they cannot change an output byte.
type FaultFlags struct {
	Retries   int
	Backoff   time.Duration
	Speculate bool
}

// Register installs -retries, -backoff and -speculate on fs.
func (f *FaultFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Retries, "retries", 0, "re-dispatches per failed shard span: only the undelivered cells are\n"+
		"re-planned and retried, this many times, before the run fails\n"+
		"(0 = fail on the first worker death)")
	fs.DurationVar(&f.Backoff, "backoff", 250*time.Millisecond,
		"base delay before retrying a failed span; doubles per attempt")
	fs.BoolVar(&f.Speculate, "speculate", false, "re-dispatch the longest-running span on idle workers (straggler\n"+
		"mitigation); duplicate deliveries are byte-identical and deduplicated")
}

// Apply copies the group into the coordinator options.
func (f *FaultFlags) Apply(o *dist.Options) {
	o.Retries = f.Retries
	o.Backoff = f.Backoff
	o.Speculate = f.Speculate
}

// TraceFormat installs the shared -trace-format flag on fs with the
// given default (text for tools whose trace goes to a terminal, col for
// bulk writers) and returns its value destination.
func TraceFormat(fs *flag.FlagSet, def string) *string {
	return fs.String("trace-format", def, "trace encoding: "+trace.FormatText+" (debuggable) or "+trace.FormatCol+" (compact columnar binary)")
}

// Config is the sweep shape the worker and coordinator CLIs share:
// model source, grid axes, replication/seed schedule and metrics. The
// embedded groups promote their fields, so cfg.Seed, cfg.Adaptive and
// cfg.Throughputs read as before the groups were factored out.
type Config struct {
	Model    string
	Net      string
	Reps     int
	Parallel int

	RunFlags
	AdaptiveFlags
	MetricFlags
	EngineFlags

	Axes Repeated
}

// Register installs the shared flags on fs.
func (c *Config) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Model, "model", "pipeline", "built-in model: pipeline or cache; axis names are parameters\n"+
		strings.Join(pipeline.ParamNames(), ", "))
	fs.StringVar(&c.Net, "net", "", "path to a .pn net (overrides -model; axis names are net vars)")
	c.RunFlags.Register(fs, "base seed; cell (point p, rep r) uses seed + p*reps + r\n(with -adaptive the stride is -max-reps: seed + p*max-reps + r)")
	fs.IntVar(&c.Reps, "reps", 5, "independent replications per grid point (fixed; see -adaptive)")
	fs.IntVar(&c.Parallel, "parallel", 0, "worker goroutines (0 = GOMAXPROCS; never affects results)")
	c.AdaptiveFlags.Register(fs)
	fs.Var(&c.Axes, "axis", "swept parameter as Name=v1,v2,... or Name=lo:hi:step (repeatable; product of axes is the grid)")
	c.MetricFlags.Register(fs)
	c.EngineFlags.Register(fs)
}

// Options expands the config into sweep options plus the model name.
// The sim and analytic engines require at least one metric; the reach
// engine derives its metric set from -bound/-ctl on top of a fixed
// structural core.
func (c *Config) Options() (experiment.SweepOptions, string, error) {
	build, name, err := buildHook(c.Net, c.Model)
	if err != nil {
		return experiment.SweepOptions{}, "", err
	}
	opt, err := c.optionsWith(build)
	return opt, name, err
}

// optionsWith expands the grid/replication/metric shape around an
// already-resolved build hook — the shared tail of Config.Options and
// Spec.Resolve, so the CLI and HTTP surfaces assemble sweeps through
// one code path.
func (c *Config) optionsWith(build func(experiment.Point) (*petri.Net, error)) (experiment.SweepOptions, error) {
	var parsed []experiment.Axis
	for _, a := range c.Axes {
		ax, err := experiment.ParseAxis(a)
		if err != nil {
			return experiment.SweepOptions{}, err
		}
		parsed = append(parsed, ax)
	}
	adaptive, err := c.AdaptiveFlags.Options()
	if err != nil {
		return experiment.SweepOptions{}, err
	}
	so := c.SimOptions()
	so.Seed = 0 // the sweep seeds each cell from BaseSeed
	opt := experiment.SweepOptions{
		Axes:     parsed,
		Reps:     c.Reps,
		Adaptive: adaptive,
		Workers:  c.Parallel,
		BaseSeed: c.Seed,
		Sim:      so,
		Build:    build,
	}
	// The engine choice supplies the metrics, the backend and — for the
	// deterministic engines — the collapsed replication shape.
	if err := c.applyEngine(&opt); err != nil {
		return experiment.SweepOptions{}, err
	}
	return opt, nil
}

// WorkerArgs reconstructs the flag list that reproduces this sweep
// shape in a worker pnut-sweep process, with the worker's goroutine
// count overridden to parallel. It is the inverse of Register, so the
// coordinator and its workers cannot drift apart.
func (c *Config) WorkerArgs(parallel int) []string {
	var args []string
	if c.Net != "" {
		args = append(args, "-net", c.Net)
	} else {
		args = append(args, "-model", c.Model)
	}
	args = append(args, c.RunFlags.Args()...)
	args = append(args,
		"-reps", strconv.Itoa(c.Reps),
		"-parallel", strconv.Itoa(parallel),
	)
	args = append(args, c.AdaptiveFlags.Args()...)
	for _, a := range c.Axes {
		args = append(args, "-axis", a)
	}
	args = append(args, c.MetricFlags.Args()...)
	args = append(args, c.EngineFlags.Args()...)
	return args
}

// buildHook returns the per-point net builder: either the built-in
// pipeline models parameterized by name, or a .pn net with per-point
// var overrides.
func buildHook(netPath, model string) (func(experiment.Point) (*petri.Net, error), string, error) {
	if netPath != "" {
		src, err := os.ReadFile(netPath)
		if err != nil {
			return nil, "", err
		}
		build, base, err := netBuildHook(string(src))
		if err != nil {
			return nil, "", err
		}
		return build, base.Name, nil
	}
	switch model {
	case "pipeline", "cache":
		cached := model == "cache"
		name := "pipeline"
		if cached {
			name = "pipeline_cached"
		}
		return func(pt experiment.Point) (*petri.Net, error) {
			return pipeline.SweepProcessor(cached, pt.Names, pt.Values)
		}, name, nil
	}
	return nil, "", fmt.Errorf("unknown -model %q (want pipeline or cache)", model)
}

// netBuildHook parses .pn source and returns the per-point builder
// (axis names override the net's vars) plus the parsed base net —
// which the simulation server hashes for its content-addressed cache.
func netBuildHook(src string) (func(experiment.Point) (*petri.Net, error), *petri.Net, error) {
	base, err := ptl.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return func(pt experiment.Point) (*petri.Net, error) {
		over := make(map[string]int64, len(pt.Names))
		for i, n := range pt.Names {
			v := pt.Values[i]
			if v != float64(int64(v)) {
				return nil, fmt.Errorf("net var %s wants an integer, got %g", n, v)
			}
			over[n] = int64(v)
		}
		return base.WithVars(over)
	}, base, nil
}
