// Engine selection for the shared sweep surface. The sweep grid —
// axes, points, the cell-record stream, the dist journal, the server
// cache — is engine-neutral; what differs per engine is how one cell is
// computed: stochastic simulation (sim), exhaustive state-space
// analysis (reach) or the exact steady-state solution (analytic). The
// EngineFlags group holds that choice plus the engine-specific knobs,
// and Config.applyEngine resolves it into the sweep's metrics, backend
// and replication shape — one code path shared by pnut-sweep,
// pnut-grid and the server's Spec surface, so an engine behaves
// identically no matter which tool drives it.
package sweepcli

import (
	"flag"
	"fmt"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/reach"
)

// EngineFlags selects the grid engine and its knobs. The zero value is
// the simulation engine with the reach package's state-space defaults.
type EngineFlags struct {
	// Engine is sim, reach, analytic — or sim+analytic, pnut-sweep's
	// cross-validation mode (rejected everywhere else).
	Engine string
	// MaxStates and BoundCap bound each cell's state space for the
	// exhaustive engines (0 = the reach package defaults). They pin the
	// grid: truncating differently changes results.
	MaxStates int
	BoundCap  int
	// Explore is the per-cell exploration parallelism of the exhaustive
	// engines (0 = GOMAXPROCS). Like -parallel it never affects results.
	Explore int
	// Store selects the reach engine's marking store ("mem" or
	// "spill"); SpillBudget/SpillDir shape the spill store. Graphs are
	// bit-identical across stores, but Store is pinned in cell metadata
	// so cached results record how they were produced.
	Store       string
	SpillBudget int64
	SpillDir    string
	// Bounds and Checks are the reach engine's repeatable metric
	// selectors: observed token bounds and CTL verdicts.
	Bounds Repeated
	Checks Repeated
}

// Register installs the -engine flag family on fs.
func (f *EngineFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Engine, "engine", "sim", "grid engine: sim (stochastic simulation), reach (exhaustive\n"+
		"state-space analysis; deterministic, one rep per point), analytic\n"+
		"(exact steady-state solution) or sim+analytic (pnut-sweep only:\n"+
		"run both and cross-validate)")
	f.RegisterState(fs)
	fs.Var(&f.Bounds, "bound", "with -engine reach: report the observed token bound of this place (repeatable)")
	fs.Var(&f.Checks, "ctl", "with -engine reach: check this CTL formula per grid point, 1 = holds (repeatable)")
}

// RegisterState installs just the state-space flags — the subset
// shared with pnut-reach, which explores one net rather than a grid.
func (f *EngineFlags) RegisterState(fs *flag.FlagSet) {
	fs.IntVar(&f.MaxStates, "max-states", 0, "state-space cap per exploration (0 = 100000)")
	fs.IntVar(&f.BoundCap, "bound-cap", 0, "flag a place as potentially unbounded past this token count (0 = 4096)")
	fs.IntVar(&f.Explore, "explore-shards", 0, "exploration goroutines per state-space build (0 = GOMAXPROCS;\nnever affects results)")
	fs.StringVar(&f.Store, "store", "", "marking store: mem (in-memory delta store, the default) or spill\n(columnar blocks spilling to a temp file; implied by -spill-budget\nor -spill-dir). Results are bit-identical either way")
	fs.Int64Var(&f.SpillBudget, "spill-budget", 0, "with the spill store: in-memory byte budget for sealed marking\nblocks before they spill to disk (0 with -store spill = spill\nevery sealed block)")
	fs.StringVar(&f.SpillDir, "spill-dir", "", "directory for spill temp files (empty = the system temp dir)")
}

// ReachOptions is the single constructor of reach.Options from the
// flag group: CLIs, the engine backends and the server's Spec surface
// all build their options here, so the mapping cannot drift between
// surfaces.
func (f *EngineFlags) ReachOptions() reach.Options {
	return reach.Options{
		MaxStates:   f.MaxStates,
		BoundCap:    f.BoundCap,
		Shards:      f.Explore,
		Store:       f.Store,
		SpillBudget: f.SpillBudget,
		SpillDir:    f.SpillDir,
	}
}

// Args reconstructs the flag list that reproduces the group; empty for
// the default simulation engine.
func (f *EngineFlags) Args() []string {
	var args []string
	if f.Engine != "" && f.Engine != "sim" {
		args = append(args, "-engine", f.Engine)
	}
	if f.MaxStates != 0 {
		args = append(args, "-max-states", strconv.Itoa(f.MaxStates))
	}
	if f.BoundCap != 0 {
		args = append(args, "-bound-cap", strconv.Itoa(f.BoundCap))
	}
	if f.Explore != 0 {
		args = append(args, "-explore-shards", strconv.Itoa(f.Explore))
	}
	if f.Store != "" {
		args = append(args, "-store", f.Store)
	}
	if f.SpillBudget != 0 {
		args = append(args, "-spill-budget", strconv.FormatInt(f.SpillBudget, 10))
	}
	if f.SpillDir != "" {
		args = append(args, "-spill-dir", f.SpillDir)
	}
	for _, p := range f.Bounds {
		args = append(args, "-bound", p)
	}
	for _, c := range f.Checks {
		args = append(args, "-ctl", c)
	}
	return args
}

// applyEngine resolves the engine choice into opt's metrics, backend
// and replication shape. opt arrives with the engine-neutral grid
// already in place (axes, seed schedule, adaptive rule, build hook).
func (c *Config) applyEngine(opt *experiment.SweepOptions) error {
	if err := c.EngineFlags.ReachOptions().CheckStore(); err != nil {
		return fmt.Errorf("-store: %w", err)
	}
	switch c.Engine {
	case "", "sim":
		if len(c.Bounds)+len(c.Checks) > 0 {
			return fmt.Errorf("-bound and -ctl are state-space metrics and need -engine reach")
		}
		if c.Store != "" || c.SpillBudget != 0 || c.SpillDir != "" {
			return fmt.Errorf("-store, -spill-budget and -spill-dir shape the reach marking store and\nneed -engine reach")
		}
		metrics := c.Metrics()
		if len(metrics) == 0 {
			return fmt.Errorf("at least one -throughput or -utilization metric is required")
		}
		opt.Metrics = metrics
	case "reach":
		if len(c.Throughputs)+len(c.Utilizations) > 0 {
			return fmt.Errorf("-throughput and -utilization are timed metrics; -engine reach reports states,\ndeadlocks, deadtrans, truncated plus -bound and -ctl selections")
		}
		if opt.Adaptive != nil {
			return fmt.Errorf("-adaptive needs a stochastic engine; -engine reach is deterministic (one rep per point)")
		}
		metrics := []experiment.Metric{
			experiment.NamedMetric("states"),
			experiment.NamedMetric("deadlocks"),
			experiment.NamedMetric("deadtrans"),
			experiment.NamedMetric("truncated"),
		}
		for _, p := range c.Bounds {
			metrics = append(metrics, experiment.NamedMetric("bound("+p+")"))
		}
		for _, f := range c.Checks {
			metrics = append(metrics, experiment.NamedMetric("ctl("+f+")"))
		}
		opt.Metrics = metrics
		// Deterministic cells: replications would be byte-identical
		// copies, so the grid collapses to one rep per point.
		opt.Reps = 1
		opt.Backend = experiment.ReachBackend{Opt: c.EngineFlags.ReachOptions()}
	case "analytic":
		if len(c.Bounds)+len(c.Checks) > 0 {
			return fmt.Errorf("-bound and -ctl are state-space metrics and need -engine reach")
		}
		if c.Store != "" || c.SpillBudget != 0 || c.SpillDir != "" {
			// The timed graph interns whole states, not markings; the
			// marking store (and so the spill machinery) never runs here.
			return fmt.Errorf("-store, -spill-budget and -spill-dir shape the reach marking store and\nneed -engine reach")
		}
		if opt.Adaptive != nil {
			return fmt.Errorf("-adaptive needs a stochastic engine; -engine analytic is exact (one rep per point)")
		}
		metrics := c.Metrics()
		if len(metrics) == 0 {
			return fmt.Errorf("at least one -throughput or -utilization metric is required")
		}
		opt.Metrics = metrics
		opt.Reps = 1
		opt.Backend = experiment.AnalyticBackend{Opt: c.EngineFlags.ReachOptions()}
	case "sim+analytic":
		return fmt.Errorf("-engine sim+analytic is pnut-sweep's cross-validation mode and cannot run as a single grid")
	default:
		return fmt.Errorf("unknown -engine %q (want sim, reach, analytic or sim+analytic)", c.Engine)
	}
	return nil
}

// CrossOptions expands a -engine sim+analytic config into its two
// halves: the stochastic sweep and the exact sweep over the same grid.
// The metrics align column for column (the analytic engine accepts the
// simulation metric names), so CrossValidate can diff the results
// point by point. The analytic half drops the adaptive rule — exact
// cells have no CI to converge — and collapses to one rep per point.
func (c *Config) CrossOptions() (simOpt, anaOpt experiment.SweepOptions, name string, err error) {
	if c.Engine != "sim+analytic" {
		return simOpt, anaOpt, "", fmt.Errorf("cross-validation needs -engine sim+analytic, have %q", c.Engine)
	}
	sc := *c
	sc.Engine = "sim"
	simOpt, name, err = sc.Options()
	if err != nil {
		return simOpt, anaOpt, "", err
	}
	ac := *c
	ac.Engine = "analytic"
	ac.AdaptiveFlags = AdaptiveFlags{}
	anaOpt, _, err = ac.Options()
	if err != nil {
		return simOpt, anaOpt, "", err
	}
	return simOpt, anaOpt, name, nil
}
