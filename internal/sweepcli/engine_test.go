package sweepcli

import (
	"context"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/reach"
)

// TestEngineOptions: the engine switch shapes the sweep — metric set,
// backend, collapsed replication — and rejects cross-engine flag
// combinations with named errors.
func TestEngineOptions(t *testing.T) {
	c := parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-bound", "Bus_busy", "-ctl", "EF(deadlock)")
	opt, _, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Reps != 1 {
		t.Errorf("reach Reps = %d, want 1 (deterministic cells collapse)", opt.Reps)
	}
	if opt.Backend == nil || opt.Backend.Engine() != "reach" {
		t.Errorf("backend = %v, want the reach engine", opt.Backend)
	}
	want := []string{"states", "deadlocks", "deadtrans", "truncated", "bound(Bus_busy)", "ctl(EF(deadlock))"}
	for i, m := range opt.Metrics {
		if i >= len(want) || m.Name != want[i] {
			t.Fatalf("reach metrics = %v, want %v", opt.Metrics, want)
		}
	}

	c = parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1", "-engine", "analytic", "-throughput", "Issue")
	opt, _, err = c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Reps != 1 || opt.Backend == nil || opt.Backend.Engine() != "analytic" {
		t.Errorf("analytic options wrong: reps=%d backend=%v", opt.Reps, opt.Backend)
	}

	for _, bad := range [][]string{
		{"-engine", "reach", "-throughput", "Issue"},
		{"-engine", "reach", "-adaptive", "states:0.05"},
		{"-engine", "analytic"},
		{"-engine", "analytic", "-throughput", "Issue", "-adaptive", "throughput(Issue):0.05"},
		{"-engine", "analytic", "-throughput", "Issue", "-bound", "p"},
		{"-engine", "frob", "-throughput", "Issue"},
		{"-bound", "p", "-throughput", "Issue"},
		{"-engine", "sim+analytic", "-throughput", "Issue"},
	} {
		args := append([]string{"-model", "cache", "-axis", "DHitRatio=0,1"}, bad...)
		if _, _, err := parseConfig(t, args...).Options(); err == nil {
			t.Errorf("flags %v produced options", bad)
		}
	}
}

// TestSpecEngines: the declarative surface resolves engine specs to
// the same grid the flags do, and rejects the CLI-only mode.
func TestSpecEngines(t *testing.T) {
	spec := Spec{
		Model: "cache", Axes: []string{"DHitRatio=0,1"},
		Engine: "reach", MaxStates: 5000, BoundCap: 64,
		Bound: []string{"Bus_busy"}, Ctl: []string{"EF(deadlock)"},
	}
	got, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-max-states", "5000", "-bound-cap", "64",
		"-bound", "Bus_busy", "-ctl", "EF(deadlock)").Options()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrid(t, got, want) {
		t.Fatalf("spec engine grid differs from flag grid:\nspec: %+v\ncli:  %+v",
			experiment.MetaOf(got, ""), experiment.MetaOf(want, ""))
	}
	gm := experiment.MetaOf(got, "")
	if gm.Engine != "reach" || gm.MaxStates != 5000 || gm.BoundCap != 64 {
		t.Errorf("resolved meta does not pin the engine: %+v", gm)
	}

	bad := Spec{Model: "cache", Engine: "sim+analytic", Throughput: []string{"Issue"}}
	if _, _, err := bad.Resolve(); err == nil {
		t.Error("spec accepted the CLI-only sim+analytic mode")
	}
}

// TestSpecFromConfigEngine: the projection carries the engine group,
// and a sim config stays clean of engine fields.
func TestSpecFromConfigEngine(t *testing.T) {
	c := parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-max-states", "5000", "-bound", "Bus_busy")
	s := SpecFromConfig(c)
	if s.Engine != "reach" || s.MaxStates != 5000 || len(s.Bound) != 1 {
		t.Errorf("projected spec lost the engine group: %+v", s)
	}
	c = parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1", "-throughput", "Issue")
	s = SpecFromConfig(c)
	if s.Engine != "" || s.MaxStates != 0 || s.Bound != nil || s.Ctl != nil {
		t.Errorf("sim projection carries engine fields: %+v", s)
	}
}

// TestCrossOptionsAndValidate: the sim+analytic mode derives two
// aligned sweeps from one config and the diff agrees on a net whose
// exact solution the simulator tracks.
func TestCrossOptionsAndValidate(t *testing.T) {
	c := parseConfig(t, "-net", "../../testdata/mutex.pn", "-engine", "sim+analytic",
		"-throughput", "enter_a", "-utilization", "crit_a",
		"-reps", "4", "-horizon", "5000", "-seed", "3")
	simOpt, anaOpt, name, err := c.CrossOptions()
	if err != nil {
		t.Fatal(err)
	}
	if name != "mutex" {
		t.Errorf("model name = %q, want mutex", name)
	}
	if simOpt.Backend != nil {
		t.Errorf("sim half carries backend %v", simOpt.Backend)
	}
	if anaOpt.Backend == nil || anaOpt.Backend.Engine() != "analytic" || anaOpt.Reps != 1 {
		t.Errorf("analytic half wrong: backend=%v reps=%d", anaOpt.Backend, anaOpt.Reps)
	}
	simRes, err := experiment.Sweep(context.Background(), simOpt)
	if err != nil {
		t.Fatal(err)
	}
	anaRes, err := experiment.Sweep(context.Background(), anaOpt)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CrossValidate(simRes, anaRes, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Disagreements != 0 {
		var b strings.Builder
		rep.WriteTable(&b)
		t.Errorf("mutex sim strays from exact values beyond 5%%:\n%s", b.String())
	}
	// A zero tolerance flags every cell with any sampling error at all.
	tight, err := CrossValidate(simRes, anaRes, 0)
	if err != nil {
		t.Fatal(err)
	}
	anyErr := false
	for _, row := range tight.Rows {
		for _, col := range row.Cols {
			if col.RelErr > 1e-9 {
				anyErr = true
			}
		}
	}
	if anyErr && tight.Disagreements == 0 {
		t.Error("zero tolerance flagged nothing despite nonzero relative error")
	}

	// The CSV encoding is deterministic: equal reports, equal bytes.
	var a, b strings.Builder
	if err := rep.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("cross-validation CSV is not deterministic")
	}

	// An adaptive config keeps its stopping rule on the sim half only.
	c = parseConfig(t, "-net", "../../testdata/mutex.pn", "-engine", "sim+analytic",
		"-throughput", "enter_a", "-adaptive", "throughput(enter_a):0.05", "-horizon", "2000")
	simOpt, anaOpt, _, err = c.CrossOptions()
	if err != nil {
		t.Fatal(err)
	}
	if simOpt.Adaptive == nil {
		t.Error("sim half lost the adaptive rule")
	}
	if anaOpt.Adaptive != nil {
		t.Error("analytic half kept the adaptive rule")
	}
}

// TestEngineStoreFlags: the state-store group flows flags -> options ->
// backend -> grid meta, rejects cross-engine combinations, and fails a
// bad store name at parse time on both surfaces.
func TestEngineStoreFlags(t *testing.T) {
	c := parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-store", "spill", "-spill-budget", "4096", "-spill-dir", "/tmp/x")
	opt, _, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	rb, ok := opt.Backend.(experiment.ReachBackend)
	if !ok {
		t.Fatalf("backend = %T, want ReachBackend", opt.Backend)
	}
	if rb.Opt.Store != reach.StoreSpill || rb.Opt.SpillBudget != 4096 || rb.Opt.SpillDir != "/tmp/x" {
		t.Errorf("backend options lost the store group: %+v", rb.Opt)
	}
	if m := experiment.MetaOf(opt, ""); m.Store != "spill" {
		t.Errorf("grid meta store pin = %q, want spill", m.Store)
	}

	// -spill-budget alone implies the spill store.
	c = parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-spill-budget", "512")
	opt, _, err = c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if m := experiment.MetaOf(opt, ""); m.Store != "spill" {
		t.Errorf("implied spill store pinned as %q", m.Store)
	}

	for _, bad := range [][]string{
		{"-throughput", "Issue", "-store", "spill"},      // sim engine
		{"-throughput", "Issue", "-spill-budget", "512"}, // sim engine
		{"-engine", "reach", "-store", "fancy"},          // unknown store
		// The timed build interns whole states: the marking store never
		// runs under the analytic engine.
		{"-engine", "analytic", "-throughput", "Issue", "-store", "spill"},
		{"-engine", "analytic", "-throughput", "Issue", "-spill-budget", "512"},
	} {
		args := append([]string{"-model", "cache", "-axis", "DHitRatio=0,1"}, bad...)
		if _, _, err := parseConfig(t, args...).Options(); err == nil {
			t.Errorf("flags %v produced options", bad)
		}
	}

	// The declarative surface carries the same group: spec -> flags ->
	// options agrees with the CLI, and the projection keeps it.
	spec := Spec{
		Model: "cache", Axes: []string{"DHitRatio=0,1"},
		Engine: "reach", Store: "spill", SpillBudget: 4096, SpillDir: "/tmp/x",
	}
	got, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-store", "spill", "-spill-budget", "4096", "-spill-dir", "/tmp/x").Options()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrid(t, got, want) {
		t.Fatalf("spec store grid differs from flag grid:\nspec: %+v\ncli:  %+v",
			experiment.MetaOf(got, ""), experiment.MetaOf(want, ""))
	}
	c = parseConfig(t, "-model", "cache", "-axis", "DHitRatio=0,1",
		"-engine", "reach", "-store", "spill", "-spill-budget", "4096", "-spill-dir", "/tmp/x")
	if s := SpecFromConfig(c); s.Store != "spill" || s.SpillBudget != 4096 || s.SpillDir != "/tmp/x" {
		t.Errorf("projected spec lost the store group: %+v", s)
	}
	badSpec := Spec{Model: "cache", Engine: "reach", Store: "fancy"}
	if _, _, err := badSpec.Resolve(); err == nil {
		t.Error("spec accepted an unknown store name")
	}
}
