package sweepcli

import (
	"flag"
	"reflect"
	"testing"
	"time"

	"repro/internal/dist"
)

// TestWorkerArgsRoundTrip pins the lockstep contract: parsing
// WorkerArgs through Register reproduces the originating config, so a
// coordinator's workers always see its exact sweep shape.
func TestWorkerArgsRoundTrip(t *testing.T) {
	cfgs := []Config{
		{
			Model: "cache", RunFlags: RunFlags{Horizon: 1234, MaxStarts: 9, Seed: 42}, Reps: 7,
			Axes: Repeated{"DHitRatio=0:1:0.25", "MemoryCycles=1,5,12"},
			MetricFlags: MetricFlags{
				Throughputs:  Repeated{"Issue"},
				Utilizations: Repeated{"Bus_busy", "storing"},
			},
		},
		{
			Net: "testdata/pipeline.pn", Model: "pipeline", RunFlags: RunFlags{Horizon: 10_000, Seed: 1}, Reps: 5,
			Axes:        Repeated{"max_type=4,6"},
			MetricFlags: MetricFlags{Throughputs: Repeated{"Issue"}},
		},
		{
			Model: "cache", RunFlags: RunFlags{Horizon: 1234, Seed: 42}, Reps: 7,
			AdaptiveFlags: AdaptiveFlags{Adaptive: "throughput(Issue):0.05", MinReps: 3, MaxReps: 24, Batch: 3},
			Axes:          Repeated{"DHitRatio=0:1:0.25"},
			MetricFlags:   MetricFlags{Throughputs: Repeated{"Issue"}},
		},
		{
			Net: "testdata/pipeline.pn", Model: "pipeline", RunFlags: RunFlags{Horizon: 10_000, Seed: 1}, Reps: 1,
			Axes: Repeated{"max_type=4,6"},
			EngineFlags: EngineFlags{
				Engine: "reach", MaxStates: 5000, BoundCap: 64, Explore: 2,
				Bounds: Repeated{"p1", "p2"}, Checks: Repeated{"AG !deadlock"},
			},
		},
		{
			Net: "testdata/pipeline.pn", Model: "pipeline", RunFlags: RunFlags{Horizon: 10_000, Seed: 1}, Reps: 1,
			Axes: Repeated{"max_type=4,6"},
			EngineFlags: EngineFlags{
				Engine: "reach", MaxStates: 5000,
				Store: "spill", SpillBudget: 1 << 20, SpillDir: "/tmp/spill",
			},
		},
	}
	for _, want := range cfgs {
		var got Config
		fs := flag.NewFlagSet("worker", flag.ContinueOnError)
		got.Register(fs)
		if err := fs.Parse(want.WorkerArgs(3)); err != nil {
			t.Fatalf("worker args do not parse: %v", err)
		}
		want.Parallel = 3 // WorkerArgs overrides the goroutine count
		if want.Adaptive == "" {
			// The adaptive shape flags are only shipped (and only
			// meaningful) with -adaptive; a fixed-rep worker parses their
			// defaults.
			want.MinReps, want.MaxReps = 4, 64
		}
		if want.Engine == "" {
			// -engine is only shipped when it differs from the default;
			// a sim worker parses the registered default back.
			want.Engine = "sim"
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestOptionsValidation: metrics are required, unknown models rejected.
func TestOptionsValidation(t *testing.T) {
	c := Config{Model: "cache", Reps: 2, RunFlags: RunFlags{Horizon: 100}}
	if _, _, err := c.Options(); err == nil {
		t.Error("no metrics accepted")
	}
	c.Throughputs = Repeated{"Issue"}
	if opt, name, err := c.Options(); err != nil || name != "pipeline_cached" || opt.Reps != 2 {
		t.Errorf("Options() = %v, %q, %v", opt.Reps, name, err)
	}
	c.Model = "nope"
	if _, _, err := c.Options(); err == nil {
		t.Error("unknown model accepted")
	}
	c.Model = "cache"
	c.Axes = Repeated{"bad axis"}
	if _, _, err := c.Options(); err == nil {
		t.Error("bad axis accepted")
	}
}

// TestFaultFlags: the coordinator's fault-tolerance group parses and
// applies onto dist.Options without touching the grid shape.
func TestFaultFlags(t *testing.T) {
	var f FaultFlags
	fs := flag.NewFlagSet("grid", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse([]string{"-retries", "3", "-backoff", "1500ms", "-speculate"}); err != nil {
		t.Fatal(err)
	}
	var o dist.Options
	f.Apply(&o)
	if o.Retries != 3 || o.Backoff != 1500*time.Millisecond || !o.Speculate {
		t.Errorf("applied options = %+v", o)
	}

	// Defaults: fail-fast, no speculation — the coordinator behaves
	// exactly as before the fault-tolerance layer existed.
	var def FaultFlags
	fs = flag.NewFlagSet("grid", flag.ContinueOnError)
	def.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var od dist.Options
	def.Apply(&od)
	if od.Retries != 0 || od.Speculate {
		t.Errorf("default fault options = %+v", od)
	}
}
