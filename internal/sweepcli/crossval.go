// Sim-vs-analytic cross-validation: the diff of a stochastic sweep
// against the exact steady-state solution of the same grid. The paper's
// workflow runs both kinds of analysis on the same net; putting the
// diff in the toolkit turns "the simulator looks right" into a checked
// property — every grid point's simulated mean must land within a
// relative tolerance of the exact value, or the run fails.
package sweepcli

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"text/tabwriter"

	"repro/internal/experiment"
)

// CrossCol is one metric's comparison at one grid point.
type CrossCol struct {
	// Metric is the shared metric name, e.g. "throughput(Issue)".
	Metric string
	// Sim and CI95 summarize the stochastic sweep: the replication mean
	// and its 95% confidence half-width.
	Sim  float64
	CI95 float64
	// Analytic is the exact steady-state value.
	Analytic float64
	// RelErr is |Sim-Analytic| / |Analytic| (0 when both are 0, +Inf
	// when only the exact value is).
	RelErr float64
	// OK reports agreement: |Sim-Analytic| <= tol*|Analytic| + 1e-9.
	OK bool
}

// CrossRow is one grid point's comparison.
type CrossRow struct {
	Point experiment.Point
	// Reps is the simulation replication count behind the means.
	Reps int
	Cols []CrossCol
}

// CrossReport is the full sim-vs-analytic diff of one grid.
type CrossReport struct {
	Axes []experiment.Axis
	Tol  float64
	Rows []CrossRow
	// Disagreements counts the (point, metric) cells outside tolerance.
	Disagreements int
}

// CrossValidate diffs a simulation sweep against the analytic sweep of
// the same grid. The two results must align: same points in the same
// order, same metric names column for column — which CrossOptions
// guarantees by deriving both halves from one config.
func CrossValidate(simRes, anaRes *experiment.SweepResult, tol float64) (*CrossReport, error) {
	if len(simRes.Points) != len(anaRes.Points) {
		return nil, fmt.Errorf("cross-validation: sim has %d points, analytic %d", len(simRes.Points), len(anaRes.Points))
	}
	names, anaNames := simRes.MetricNames(), anaRes.MetricNames()
	if len(names) != len(anaNames) {
		return nil, fmt.Errorf("cross-validation: sim has %d metrics, analytic %d", len(names), len(anaNames))
	}
	for i := range names {
		if names[i] != anaNames[i] {
			return nil, fmt.Errorf("cross-validation: metric %d is %q in sim, %q in analytic", i, names[i], anaNames[i])
		}
	}
	rep := &CrossReport{Axes: simRes.Axes, Tol: tol, Rows: make([]CrossRow, len(simRes.Points))}
	for p := range simRes.Points {
		sp, ap := &simRes.Points[p], &anaRes.Points[p]
		for i, v := range sp.Point.Values {
			if ap.Point.Values[i] != v {
				return nil, fmt.Errorf("cross-validation: point %d is %s in sim, %s in analytic", p, sp.Point.String(), ap.Point.String())
			}
		}
		row := CrossRow{Point: sp.Point, Reps: sp.Reps, Cols: make([]CrossCol, len(names))}
		for m := range names {
			s := sp.Summaries[m]
			exact := ap.Values[m][0]
			diff := math.Abs(s.Mean - exact)
			col := CrossCol{
				Metric:   names[m],
				Sim:      s.Mean,
				CI95:     s.CI95,
				Analytic: exact,
				OK:       diff <= tol*math.Abs(exact)+1e-9,
			}
			switch {
			case exact != 0:
				col.RelErr = diff / math.Abs(exact)
			case diff != 0:
				col.RelErr = math.Inf(1)
			}
			if !col.OK {
				rep.Disagreements++
			}
			row.Cols[m] = col
		}
		rep.Rows[p] = row
	}
	return rep, nil
}

// WriteTable renders the report as an aligned text table: one row per
// grid point, one column per axis, then "sim ±ci95 / exact (relerr)"
// per metric, with disagreeing cells marked "!".
func (r *CrossReport) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ax := range r.Axes {
		fmt.Fprintf(tw, "%s\t", ax.Name)
	}
	for _, c := range r.Rows[0].Cols {
		fmt.Fprintf(tw, "%s\t", c.Metric)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		for _, v := range row.Point.Values {
			fmt.Fprintf(tw, "%s\t", formatG(v))
		}
		for _, c := range row.Cols {
			mark := ""
			if !c.OK {
				mark = " !"
			}
			fmt.Fprintf(tw, "%.4f ±%.4f / %.4f (%.2f%%)%s\t", c.Sim, c.CI95, c.Analytic, 100*c.RelErr, mark)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders the report as CSV: one row per grid point, one
// column per axis, then sim/ci95/exact/relerr/ok columns per metric.
// Floats print with full precision, so equal reports encode to equal
// bytes.
func (r *CrossReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := make([]string, 0, len(r.Axes)+5*len(r.Rows[0].Cols))
	for _, ax := range r.Axes {
		head = append(head, ax.Name)
	}
	for _, c := range r.Rows[0].Cols {
		head = append(head, c.Metric+" sim", c.Metric+" ci95", c.Metric+" exact", c.Metric+" relerr", c.Metric+" ok")
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	row := make([]string, 0, cap(head))
	for _, cr := range r.Rows {
		row = row[:0]
		for _, v := range cr.Point.Values {
			row = append(row, formatG(v))
		}
		for _, c := range cr.Cols {
			ok := "0"
			if c.OK {
				ok = "1"
			}
			row = append(row, formatG(c.Sim), formatG(c.CI95), formatG(c.Analytic), formatG(c.RelErr), ok)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
