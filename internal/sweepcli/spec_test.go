package sweepcli

import (
	"flag"
	"io"
	"testing"

	"repro/internal/experiment"
)

// parseConfig runs a flag list through the real Register surface.
func parseConfig(t *testing.T, args ...string) *Config {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var c Config
	c.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &c
}

func sameGrid(t *testing.T, a, b experiment.SweepOptions) bool {
	t.Helper()
	ma, mb := experiment.MetaOf(a, ""), experiment.MetaOf(b, "")
	return ma.SameGrid(&mb)
}

// TestSpecDefaultsMatchFlagDefaults pins the one-surface guarantee in
// the empty direction: a spec that sets nothing but a metric resolves
// to exactly the grid `pnut-sweep -throughput Issue` runs.
func TestSpecDefaultsMatchFlagDefaults(t *testing.T) {
	spec := Spec{Throughput: []string{"Issue"}}
	got, info, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := parseConfig(t, "-throughput", "Issue").Options()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrid(t, got, want) {
		t.Fatalf("empty spec grid differs from CLI default grid:\nspec: %+v\ncli:  %+v",
			experiment.MetaOf(got, ""), experiment.MetaOf(want, ""))
	}
	if info.Digest != "builtin:pipeline" {
		t.Fatalf("default model digest %q, want builtin:pipeline", info.Digest)
	}
}

// TestSpecMatchesEquivalentFlags drives both surfaces with the same
// fully-specified sweep, adaptive rule included, and requires the
// identical grid.
func TestSpecMatchesEquivalentFlags(t *testing.T) {
	spec := Spec{
		Model:       "cache",
		Axes:        []string{"DHitRatio=0:1:0.5", "MemoryCycles=1,5"},
		Seed:        42,
		Horizon:     2500,
		MaxStarts:   900,
		Adaptive:    "throughput(Issue):0.05",
		MinReps:     3,
		MaxReps:     16,
		Batch:       2,
		Throughput:  []string{"Issue"},
		Utilization: []string{"Bus_busy"},
	}
	got, info, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want, name, err := parseConfig(t,
		"-model", "cache",
		"-axis", "DHitRatio=0:1:0.5", "-axis", "MemoryCycles=1,5",
		"-seed", "42", "-horizon", "2500", "-max-starts", "900",
		"-adaptive", "throughput(Issue):0.05", "-min-reps", "3", "-max-reps", "16", "-batch", "2",
		"-throughput", "Issue", "-utilization", "Bus_busy",
	).Options()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrid(t, got, want) {
		t.Fatalf("spec grid differs from flag grid:\nspec: %+v\ncli:  %+v",
			experiment.MetaOf(got, ""), experiment.MetaOf(want, ""))
	}
	if info.Name != name {
		t.Fatalf("spec model name %q, flags resolved %q", info.Name, name)
	}
	if info.Digest != "builtin:cache" {
		t.Fatalf("model digest %q, want builtin:cache", info.Digest)
	}
}

// TestSpecInlineNet resolves inline .pn source: the build hook applies
// axis overrides to net vars, and the model digest is the canonical
// hash — invariant under declaration order of the same model.
func TestSpecInlineNet(t *testing.T) {
	const src = `
net two_phase
var delay 3
place ready init 1
place busy
trans start
  in ready
  out busy
  enabling expr{ delay }
trans finish
  in busy
  out ready
  firing 2
`
	spec := Spec{
		Net:        src,
		Axes:       []string{"delay=1,2"},
		Reps:       2,
		Horizon:    200,
		Throughput: []string{"finish"},
	}
	opt, info, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "two_phase" {
		t.Fatalf("net name %q", info.Name)
	}
	if len(info.Digest) != len("net:")+64 || info.Digest[:4] != "net:" {
		t.Fatalf("digest %q is not net:<sha256>", info.Digest)
	}
	net, err := opt.Build(experiment.Point{Names: []string{"delay"}, Values: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if net.Vars["delay"] != 2 {
		t.Fatalf("axis override not applied: delay = %d", net.Vars["delay"])
	}

	// Reordered declarations of the same model: same digest.
	const reordered = `
net two_phase
place busy
place ready init 1
var delay 3
trans finish
  in busy
  out ready
  firing 2
trans start
  in ready
  out busy
  enabling expr{ delay }
`
	spec2 := spec
	spec2.Net = reordered
	_, info2, err := spec2.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Digest != info.Digest {
		t.Fatalf("reordered source digests differ: %s vs %s", info2.Digest, info.Digest)
	}

	// A semantic edit changes it.
	spec3 := spec
	spec3.Net = "net two_phase\nvar delay 4\nplace ready init 1\nplace busy\ntrans start\n  in ready\n  out busy\n  enabling expr{ delay }\ntrans finish\n  in busy\n  out ready\n  firing 2\n"
	_, info3, err := spec3.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if info3.Digest == info.Digest {
		t.Fatal("semantic edit kept the same digest")
	}
}

// TestSpecFromConfigRoundTrip pins the inverse direction: a parsed CLI
// config projected to a spec resolves back to the identical grid.
func TestSpecFromConfigRoundTrip(t *testing.T) {
	c := parseConfig(t,
		"-model", "cache",
		"-axis", "DHitRatio=0.5,0.9",
		"-reps", "7", "-seed", "3", "-horizon", "1200",
		"-throughput", "Issue",
	)
	want, _, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecFromConfig(c)
	got, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !sameGrid(t, got, want) {
		t.Fatalf("round-tripped grid differs:\nspec: %+v\ncli:  %+v",
			experiment.MetaOf(got, ""), experiment.MetaOf(want, ""))
	}
}

// TestSpecErrors surfaces the flag layer's own validation.
func TestSpecErrors(t *testing.T) {
	cases := map[string]Spec{
		"no metrics":    {Model: "cache"},
		"bad model":     {Model: "nope", Throughput: []string{"Issue"}},
		"bad axis":      {Model: "cache", Axes: []string{"DHitRatio"}, Throughput: []string{"Issue"}},
		"bad adaptive":  {Model: "cache", Adaptive: "nope", Throughput: []string{"Issue"}},
		"bad net":       {Net: "not a net", Throughput: []string{"Issue"}},
		"negative reps": {Model: "cache", Reps: -1, Throughput: []string{"Issue"}},
	}
	for name, spec := range cases {
		if _, _, err := spec.Resolve(); err == nil {
			t.Errorf("%s: Resolve accepted an invalid spec", name)
		}
	}
}
