// Spec is the declarative (JSON) face of the shared sweep surface: the
// job body the simulation server accepts over HTTP describes exactly
// the grid the CLIs describe with flags. To guarantee the two surfaces
// cannot drift apart — in defaults, spellings or validation — a spec is
// not interpreted directly: Resolve renders it to its pnut-sweep flag
// list and parses that through Config.Register on a fresh FlagSet, so
// an omitted spec field inherits the flag's default and a bad value
// fails with the flag's own error.
package sweepcli

import (
	"flag"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiment"
	"repro/internal/petri"
)

// Spec is one sweep job: model source, grid axes, replication/seed
// schedule and metric set. Zero values mean "the shared CLI default"
// (reps 5, horizon 10000, seed 1, ...); in particular a zero Seed
// resolves to the default base seed 1, exactly as omitting -seed does.
type Spec struct {
	// Model selects a built-in model (pipeline or cache); Net carries
	// inline .pn source and overrides Model, exactly as -net overrides
	// -model on the CLIs.
	Model string `json:"model,omitempty"`
	Net   string `json:"net,omitempty"`

	// Axes are swept parameters in the CLI's textual axis form:
	// "Name=v1,v2,..." or "Name=lo:hi:step" (forms mix freely).
	Axes []string `json:"axes,omitempty"`

	Reps      int   `json:"reps,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	Horizon   int64 `json:"horizon,omitempty"`
	MaxStarts int64 `json:"maxStarts,omitempty"`

	// Adaptive is the CI-targeted stopping rule as "metric:relci";
	// MinReps/MaxReps/Batch shape its rounds (zero = flag default).
	Adaptive string `json:"adaptive,omitempty"`
	MinReps  int    `json:"minReps,omitempty"`
	MaxReps  int    `json:"maxReps,omitempty"`
	Batch    int    `json:"batch,omitempty"`

	Throughput  []string `json:"throughput,omitempty"`
	Utilization []string `json:"utilization,omitempty"`

	// Engine selects the grid engine: sim (the default), reach or
	// analytic. The cross-validation mode sim+analytic is CLI-only and
	// rejected here, exactly as pnut-grid rejects it.
	Engine string `json:"engine,omitempty"`
	// MaxStates/BoundCap bound the exhaustive engines' state space per
	// grid point (0 = the reach defaults); ExploreShards is the reach
	// engine's per-cell parallelism (never affects results). Bound and
	// Ctl are the reach engine's metric selectors.
	MaxStates     int      `json:"maxStates,omitempty"`
	BoundCap      int      `json:"boundCap,omitempty"`
	ExploreShards int      `json:"exploreShards,omitempty"`
	Bound         []string `json:"bound,omitempty"`
	Ctl           []string `json:"ctl,omitempty"`
	// Store selects the reach engine's marking store (mem or spill);
	// SpillBudget/SpillDir shape the spill store, letting jobs whose
	// state space exceeds RAM complete by spilling. Results are
	// bit-identical across stores.
	Store       string `json:"store,omitempty"`
	SpillBudget int64  `json:"spillBudget,omitempty"`
	SpillDir    string `json:"spillDir,omitempty"`

	// Parallel caps the job's worker goroutines (0 = server default;
	// never affects results). Format selects the result rendering:
	// csv (default), table or json. Neither enters the sweep grid.
	Parallel int    `json:"parallel,omitempty"`
	Format   string `json:"format,omitempty"`
}

// ModelInfo identifies the job's model for content addressing. Digest
// is "net:<canonical sha256>" for inline nets — two formatting or
// declaration-order variants of the same model digest equal — and
// "builtin:<model>" for the built-in families.
type ModelInfo struct {
	Name   string
	Digest string
}

// Flags renders the spec as its pnut-sweep flag list, omitting flags
// for zero-valued fields so they keep the registered defaults. The
// model source is included as -model only; inline Net source has no
// flag form and is resolved separately by Resolve.
func (s *Spec) Flags() []string {
	var args []string
	if s.Net == "" && s.Model != "" {
		args = append(args, "-model", s.Model)
	}
	for _, a := range s.Axes {
		args = append(args, "-axis", a)
	}
	if s.Reps != 0 {
		args = append(args, "-reps", strconv.Itoa(s.Reps))
	}
	if s.Seed != 0 {
		args = append(args, "-seed", strconv.FormatInt(s.Seed, 10))
	}
	if s.Horizon != 0 {
		args = append(args, "-horizon", strconv.FormatInt(s.Horizon, 10))
	}
	if s.MaxStarts != 0 {
		args = append(args, "-max-starts", strconv.FormatInt(s.MaxStarts, 10))
	}
	if s.Adaptive != "" {
		args = append(args, "-adaptive", s.Adaptive)
		if s.MinReps != 0 {
			args = append(args, "-min-reps", strconv.Itoa(s.MinReps))
		}
		if s.MaxReps != 0 {
			args = append(args, "-max-reps", strconv.Itoa(s.MaxReps))
		}
		if s.Batch != 0 {
			args = append(args, "-batch", strconv.Itoa(s.Batch))
		}
	}
	for _, tr := range s.Throughput {
		args = append(args, "-throughput", tr)
	}
	for _, u := range s.Utilization {
		args = append(args, "-utilization", u)
	}
	if s.Engine != "" {
		args = append(args, "-engine", s.Engine)
	}
	if s.MaxStates != 0 {
		args = append(args, "-max-states", strconv.Itoa(s.MaxStates))
	}
	if s.BoundCap != 0 {
		args = append(args, "-bound-cap", strconv.Itoa(s.BoundCap))
	}
	if s.ExploreShards != 0 {
		args = append(args, "-explore-shards", strconv.Itoa(s.ExploreShards))
	}
	if s.Store != "" {
		args = append(args, "-store", s.Store)
	}
	if s.SpillBudget != 0 {
		args = append(args, "-spill-budget", strconv.FormatInt(s.SpillBudget, 10))
	}
	if s.SpillDir != "" {
		args = append(args, "-spill-dir", s.SpillDir)
	}
	for _, p := range s.Bound {
		args = append(args, "-bound", p)
	}
	for _, f := range s.Ctl {
		args = append(args, "-ctl", f)
	}
	if s.Parallel != 0 {
		args = append(args, "-parallel", strconv.Itoa(s.Parallel))
	}
	return args
}

// Resolve expands the spec into sweep options plus the model identity,
// by round-tripping through the real CLI flag surface (see the package
// comment of this file). The returned options are validated the same
// way pnut-sweep validates its command line.
func (s *Spec) Resolve() (experiment.SweepOptions, ModelInfo, error) {
	fs := flag.NewFlagSet("spec", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var c Config
	c.Register(fs)
	if err := fs.Parse(s.Flags()); err != nil {
		return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec: %w", err)
	}
	if args := fs.Args(); len(args) > 0 {
		return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec: unexpected arguments %q", args)
	}

	var (
		build func(experiment.Point) (*petri.Net, error)
		info  ModelInfo
	)
	if s.Net != "" {
		hook, base, err := netBuildHook(s.Net)
		if err != nil {
			return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec net: %w", err)
		}
		build = hook
		info = ModelInfo{Name: base.Name, Digest: "net:" + base.CanonicalHashString()}
	} else {
		hook, name, err := buildHook("", c.Model)
		if err != nil {
			return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec: %w", err)
		}
		build = hook
		info = ModelInfo{Name: name, Digest: "builtin:" + c.Model}
	}

	opt, err := c.optionsWith(build)
	if err != nil {
		return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec: %w", err)
	}
	if err := opt.Validate(); err != nil {
		return experiment.SweepOptions{}, ModelInfo{}, fmt.Errorf("spec: %w", err)
	}
	return opt, info, nil
}

// SpecFromConfig projects a parsed CLI config back into the spec form
// (minus the model source when -net pointed at a file): the inverse
// direction of Resolve, used to keep tooling that submits CLI-shaped
// sweeps to the server on the one shared surface.
func SpecFromConfig(c *Config) Spec {
	s := Spec{
		Model:       c.Model,
		Axes:        append([]string(nil), c.Axes...),
		Reps:        c.Reps,
		Seed:        c.Seed,
		Horizon:     c.Horizon,
		MaxStarts:   c.MaxStarts,
		Adaptive:    c.Adaptive,
		Throughput:  append([]string(nil), c.Throughputs...),
		Utilization: append([]string(nil), c.Utilizations...),
		Parallel:    c.Parallel,
	}
	if c.Adaptive != "" {
		s.MinReps, s.MaxReps, s.Batch = c.MinReps, c.MaxReps, c.Batch
	}
	if c.Engine != "" && c.Engine != "sim" {
		s.Engine = c.Engine
		s.MaxStates = c.EngineFlags.MaxStates
		s.BoundCap = c.BoundCap
		s.ExploreShards = c.Explore
		s.Store = c.Store
		s.SpillBudget = c.SpillBudget
		s.SpillDir = c.SpillDir
		s.Bound = append([]string(nil), c.Bounds...)
		s.Ctl = append([]string(nil), c.Checks...)
	}
	return s
}
