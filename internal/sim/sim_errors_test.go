package sim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/petri"
	"repro/internal/trace"
)

func TestObserverErrorAborts(t *testing.T) {
	b := petri.NewBuilder("o")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").EnablingConst(1)
	net := b.MustBuild()
	boom := errors.New("observer boom")
	count := 0
	obs := trace.ObserverFunc(func(rec *trace.Record) error {
		count++
		if count >= 3 {
			return boom
		}
		return nil
	})
	_, err := Run(context.Background(), net, obs, Options{Horizon: 100})
	if !errors.Is(err, boom) {
		t.Errorf("observer error not propagated: %v", err)
	}
	if count != 3 {
		t.Errorf("records after abort: %d", count)
	}
}

func TestActionRuntimeErrorSurfaces(t *testing.T) {
	b := petri.NewBuilder("a")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").EnablingConst(1).Action("x = 1 / 0")
	net := b.MustBuild()
	_, err := Run(context.Background(), net, nil, Options{Horizon: 10})
	if err == nil || !strings.Contains(err.Error(), "action") {
		t.Errorf("action error not surfaced: %v", err)
	}
}

func TestPredicateRuntimeErrorSurfaces(t *testing.T) {
	b := petri.NewBuilder("p")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").Pred("undefined_variable > 0").EnablingConst(1)
	net := b.MustBuild()
	_, err := Run(context.Background(), net, nil, Options{Horizon: 10})
	if err == nil || !strings.Contains(err.Error(), "predicate") {
		t.Errorf("predicate error not surfaced: %v", err)
	}
}

func TestExprDelayErrorSurfaces(t *testing.T) {
	b := petri.NewBuilder("d")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").
		Firing(petri.ExprDelay{E: expr.MustParseExpr("nosuch_table[0]")})
	net := b.MustBuild()
	_, err := Run(context.Background(), net, nil, Options{Horizon: 10})
	if err == nil || !strings.Contains(err.Error(), "firing time") {
		t.Errorf("delay error not surfaced: %v", err)
	}
}

func TestNegativeExprDelayRejected(t *testing.T) {
	b := petri.NewBuilder("n")
	b.Place("p", 1)
	b.Var("d", -3)
	b.Trans("t").In("p").Out("p").Enabling(petri.ExprDelay{E: expr.MustParseExpr("d")})
	net := b.MustBuild()
	_, err := Run(context.Background(), net, nil, Options{Horizon: 10})
	if err == nil {
		t.Error("negative enabling delay accepted")
	}
}

func TestHorizonAndMaxStartsTogether(t *testing.T) {
	b := petri.NewBuilder("hs")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").EnablingConst(1)
	net := b.MustBuild()
	// MaxStarts binds first.
	res, err := Run(context.Background(), net, nil, Options{Horizon: 1_000, MaxStarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts != 5 {
		t.Errorf("starts = %d", res.Starts)
	}
	if res.Clock >= 1_000 {
		t.Errorf("clock = %d, should stop well before horizon", res.Clock)
	}
	// Horizon binds first.
	res, err = Run(context.Background(), net, nil, Options{Horizon: 3, MaxStarts: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clock != 3 {
		t.Errorf("clock = %d", res.Clock)
	}
	if res.Starts >= 1_000 {
		t.Errorf("starts = %d", res.Starts)
	}
}

func TestFreqZeroNeverFires(t *testing.T) {
	b := petri.NewBuilder("z")
	b.Place("p", 1)
	b.Place("a", 0)
	b.Place("bb", 0)
	b.Trans("never").In("p").Out("a").Freq(0)
	b.Trans("always").In("p").Out("bb").EnablingConst(2)
	net := b.MustBuild()
	c := trace.NewCollect(trace.HeaderOf(net))
	res, err := Run(context.Background(), net, c, Options{Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[net.MustPlace("a")] != 0 {
		t.Error("freq-0 transition fired")
	}
	if res.Final[net.MustPlace("bb")] != 1 {
		t.Error("competing transition should have won")
	}
	// A net whose only enabled transition has freq 0 is quiescent.
	b2 := petri.NewBuilder("z2")
	b2.Place("p", 1)
	b2.Place("q", 0)
	b2.Trans("never").In("p").Out("q").Freq(0)
	res2, err := Run(context.Background(), b2.MustBuild(), nil, Options{Horizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Quiescent || res2.Starts != 0 {
		t.Errorf("freq-0-only net: %+v", res2)
	}
}

func TestUniformEnablingDelaysVary(t *testing.T) {
	b := petri.NewBuilder("u")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").Enabling(petri.Uniform{Lo: 1, Hi: 6})
	net := b.MustBuild()
	c := trace.NewCollect(trace.HeaderOf(net))
	if _, err := Run(context.Background(), net, c, Options{Horizon: 5_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// Inter-firing gaps must take several distinct values in [1,6].
	var prev petri.Time
	gaps := make(map[petri.Time]bool)
	for i := range c.Records {
		r := &c.Records[i]
		if r.Kind == trace.Start {
			if r.Time > 0 {
				gaps[r.Time-prev] = true
			}
			prev = r.Time
		}
	}
	if len(gaps) < 4 {
		t.Errorf("gaps not varied: %v", gaps)
	}
	for g := range gaps {
		if g < 1 || g > 6 {
			t.Errorf("gap %d outside [1,6]", g)
		}
	}
}

func TestSourceTransitionWithDelay(t *testing.T) {
	// A transition with no inputs is always enabled; with an enabling
	// time it acts as a periodic source.
	b := petri.NewBuilder("src")
	b.Place("out", 0)
	b.Trans("tick").Out("out").EnablingConst(4)
	net := b.MustBuild()
	res, err := Run(context.Background(), net, nil, Options{Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[net.MustPlace("out")] != 10 {
		t.Errorf("source produced %d tokens, want 10", res.Final[net.MustPlace("out")])
	}
}

func TestCompletionOrderDeterministic(t *testing.T) {
	// Two firings completing at the same instant must complete in start
	// order (FIFO by sequence), keeping traces deterministic.
	b := petri.NewBuilder("fifo")
	b.Place("a", 2)
	b.Place("out", 0)
	b.Trans("t").In("a").Out("out").FiringConst(5)
	net := b.MustBuild()
	run := func() string {
		c := trace.NewCollect(trace.HeaderOf(net))
		if _, err := Run(context.Background(), net, c, Options{Horizon: 10, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return c.String()
	}
	if run() != run() {
		t.Error("same-instant completions non-deterministic")
	}
}
