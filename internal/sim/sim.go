// Package sim is the P-NUT simulation engine: "a simple simulation
// engine which pushes tokens around a Timed Petri Net" (Section 4.1).
//
// The engine implements the paper's extended-TPN semantics:
//
//   - A transition is enabled when its input places hold the arc weights,
//     its inhibitor places do not, and its predicate (if any) is true.
//   - A transition with an enabling time must be continuously enabled for
//     that long before it may fire; losing enablement resets the timer.
//     After each firing the timer restarts.
//   - When a transition fires, input tokens are removed immediately; if
//     it has a firing time the output tokens appear that much later
//     (during the firing the tokens are "neither on the inputs nor on the
//     outputs"). Actions run when the firing completes.
//   - When several transitions are ready at the same instant, one is
//     chosen with probability proportional to its relative firing
//     frequency [WPS86]; selection repeats until no transition is ready,
//     then the clock advances to the next completion or ripening.
//
// The engine knows nothing about analysis: it emits trace records to an
// Observer (package trace), which may be a file writer, a statistics
// accumulator, a tracer, an animator, or any Tee of those.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/petri"
	"repro/internal/trace"
)

// Options control one simulation experiment.
type Options struct {
	// Seed seeds the run's private random source. Equal seeds give equal
	// traces.
	Seed int64
	// Horizon stops the run when the clock would pass it. The run ends
	// exactly at Horizon (pending firings are not completed), matching a
	// fixed-length experiment such as the paper's 10 000-cycle run.
	Horizon petri.Time
	// MaxStarts, if positive, stops the run after that many firings have
	// started. Either Horizon or MaxStarts must be set.
	MaxStarts int64
	// MaxStepsPerInstant guards against zero-time livelock (a loop of
	// timeless transitions). Default 1 000 000.
	MaxStepsPerInstant int
}

// Result summarizes a run.
type Result struct {
	Clock     petri.Time
	Starts    int64
	Ends      int64
	Quiescent bool          // the net ran out of events before the horizon
	Final     petri.Marking // marking when the run stopped
	Vars      map[string]int64
}

// ErrLivelock is returned when more than MaxStepsPerInstant firings start
// at a single instant.
var ErrLivelock = errors.New("sim: livelock: too many firings at one instant")

type completion struct {
	at    petri.Time
	seq   int64
	trans petri.TransID
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type transState struct {
	enabled bool
	ripeAt  petri.Time // valid while enabled
	active  int        // concurrent firings in progress
}

// Engine is a reusable simulator for one immutable net. A fresh Engine
// is cheap — the net's Affected/Predicated indexes are precomputed at
// Build time — but replication drivers (package experiment) run many
// short experiments back to back, so Run resets and reuses the engine's
// state vectors and scratch buffers instead of reallocating them.
//
// An Engine is not safe for concurrent use; give each goroutine its
// own (see NewEngine).
type Engine struct {
	net   *petri.Net
	opt   Options
	rng   *rand.Rand
	src   rand.Source
	env   *expr.Env
	obs   trace.Observer
	clock petri.Time
	m     petri.Marking
	ts    []transState
	pend  completionHeap
	seq   int64

	starts, ends int64

	// scratch buffers reused across records
	deltas []trace.Delta
	ripe   []petri.TransID
}

// NewEngine returns an engine for net with all per-run state allocated
// up front, sized to the net.
func NewEngine(net *petri.Net) *Engine {
	src := rand.NewSource(0)
	e := &Engine{
		net: net,
		src: src,
		rng: rand.New(src),
		m:   make(petri.Marking, net.NumPlaces()),
		ts:  make([]transState, net.NumTrans()),
	}
	e.env = net.NewEnv(e.rng)
	return e
}

// reset rewinds the engine to the net's initial state for a run under
// opt, reseeding the random source. No per-place or per-transition
// storage is reallocated.
func (e *Engine) reset(opt Options) {
	e.opt = opt
	e.src.Seed(opt.Seed)
	e.m = e.net.InitialMarkingInto(e.m)
	for i := range e.ts {
		e.ts[i] = transState{}
	}
	e.pend = e.pend[:0]
	e.clock, e.seq, e.starts, e.ends = 0, 0, 0, 0
	e.env = e.net.NewEnv(e.rng)
}

// Run simulates the engine's net once under opt, streaming the trace to
// obs (nil discards it), and returns the run summary. The engine may be
// Run again with fresh Options; equal seeds give equal traces.
func (e *Engine) Run(obs trace.Observer, opt Options) (Result, error) {
	if opt.Horizon <= 0 && opt.MaxStarts <= 0 {
		return Result{}, errors.New("sim: Options must set Horizon or MaxStarts")
	}
	if opt.MaxStepsPerInstant <= 0 {
		opt.MaxStepsPerInstant = 1_000_000
	}
	if obs == nil {
		obs = trace.Discard
	}
	e.obs = obs
	e.reset(opt)
	if err := e.run(); err != nil {
		return Result{}, err
	}
	return Result{
		Clock:     e.clock,
		Starts:    e.starts,
		Ends:      e.ends,
		Quiescent: e.quiescent(),
		Final:     e.m.Clone(),
		Vars:      e.env.Snapshot(),
	}, nil
}

// Run simulates net, streaming the trace to obs (which may be nil to
// discard it), and returns the run summary. It is the one-shot form of
// NewEngine(net).Run(obs, opt).
func Run(net *petri.Net, obs trace.Observer, opt Options) (Result, error) {
	return NewEngine(net).Run(obs, opt)
}

func (e *Engine) quiescent() bool {
	if len(e.pend) > 0 {
		return false
	}
	for i := range e.ts {
		if e.ts[i].enabled && e.net.Trans[i].EffFreq() != 0 {
			return false
		}
	}
	return true
}

func (e *Engine) emit(rec *trace.Record) error { return e.obs.Record(rec) }

func (e *Engine) run() error {
	init := trace.Record{Kind: trace.Initial, Time: 0, Marking: e.m.Clone()}
	if err := e.emit(&init); err != nil {
		return err
	}
	if err := e.refreshAll(); err != nil {
		return err
	}
	if err := e.settle(); err != nil {
		return err
	}
	for !e.done() {
		next, any := e.nextEventTime()
		if !any {
			break // quiescent
		}
		if e.opt.Horizon > 0 && next > e.opt.Horizon {
			e.clock = e.opt.Horizon
			break
		}
		e.clock = next
		if err := e.completeDue(); err != nil {
			return err
		}
		if err := e.settle(); err != nil {
			return err
		}
	}
	if e.opt.Horizon > 0 && e.clock < e.opt.Horizon && e.quiescent() {
		// A quiescent net simply idles until the end of the experiment.
		e.clock = e.opt.Horizon
	}
	fin := trace.Record{Kind: trace.Final, Time: e.clock, Starts: e.starts, Ends: e.ends}
	return e.emit(&fin)
}

func (e *Engine) done() bool {
	return e.opt.MaxStarts > 0 && e.starts >= e.opt.MaxStarts
}

// nextEventTime returns the earliest pending completion or ripening.
func (e *Engine) nextEventTime() (petri.Time, bool) {
	var next petri.Time
	any := false
	if len(e.pend) > 0 {
		next = e.pend[0].at
		any = true
	}
	for i := range e.ts {
		st := &e.ts[i]
		if !st.enabled || e.capped(petri.TransID(i)) || e.net.Trans[i].EffFreq() == 0 {
			continue
		}
		if !any || st.ripeAt < next {
			next = st.ripeAt
			any = true
		}
	}
	return next, any
}

func (e *Engine) capped(t petri.TransID) bool {
	s := e.net.Trans[t].Servers
	return s > 0 && e.ts[t].active >= s
}

// refresh recomputes the enabled state of transition t, starting or
// clearing its enabling timer as needed.
func (e *Engine) refresh(t petri.TransID) error {
	now, err := e.net.Enabled(t, e.m, e.env)
	if err != nil {
		return err
	}
	st := &e.ts[t]
	switch {
	case now && !st.enabled:
		st.enabled = true
		if err := e.startTimer(t); err != nil {
			return err
		}
	case !now && st.enabled:
		st.enabled = false
	}
	return nil
}

// startTimer samples the enabling delay for t and sets its ripening time.
func (e *Engine) startTimer(t petri.TransID) error {
	st := &e.ts[t]
	var d petri.Time
	if del := e.net.Trans[t].Enabling; del != nil {
		var err error
		d, err = del.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: enabling time of %q: %w", e.net.Trans[t].Name, err)
		}
		if d < 0 {
			return fmt.Errorf("sim: negative enabling time %d for %q", d, e.net.Trans[t].Name)
		}
	}
	st.ripeAt = e.clock + d
	return nil
}

func (e *Engine) refreshAll() error {
	for i := range e.ts {
		if err := e.refresh(petri.TransID(i)); err != nil {
			return err
		}
	}
	return nil
}

// refreshAffected rechecks the transitions whose enablement can have
// changed after the marking of the given places changed, plus (if env
// might have changed) all predicated transitions.
func (e *Engine) refreshAffected(places []trace.Delta, envChanged bool) error {
	for _, d := range places {
		for _, t := range e.net.Affected(d.Place) {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	if envChanged {
		for _, t := range e.net.Predicated() {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// settle starts every firing that can start at the current instant.
func (e *Engine) settle() error {
	for step := 0; ; step++ {
		if step > e.opt.MaxStepsPerInstant {
			return fmt.Errorf("%w (t=%d)", ErrLivelock, e.clock)
		}
		if e.done() {
			return nil
		}
		e.ripe = e.ripe[:0]
		for i := range e.ts {
			t := petri.TransID(i)
			st := &e.ts[i]
			if st.enabled && !e.capped(t) && st.ripeAt <= e.clock && e.net.Trans[i].EffFreq() != 0 {
				e.ripe = append(e.ripe, t)
			}
		}
		if len(e.ripe) == 0 {
			return nil
		}
		pick := e.choose(e.ripe)
		if err := e.fire(pick); err != nil {
			return err
		}
	}
}

// choose selects among simultaneously ready transitions with probability
// proportional to relative firing frequency.
func (e *Engine) choose(ripe []petri.TransID) petri.TransID {
	if len(ripe) == 1 {
		return ripe[0]
	}
	total := 0.0
	for _, t := range ripe {
		total += e.net.Trans[t].EffFreq()
	}
	x := e.rng.Float64() * total
	for _, t := range ripe {
		x -= e.net.Trans[t].EffFreq()
		if x < 0 {
			return t
		}
	}
	return ripe[len(ripe)-1]
}

// fire starts one firing of t: consume inputs, emit the Start record, and
// either complete immediately (zero firing time) or schedule completion.
func (e *Engine) fire(t petri.TransID) error {
	tr := &e.net.Trans[t]
	var dur petri.Time
	if tr.Firing != nil {
		var err error
		dur, err = tr.Firing.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: firing time of %q: %w", tr.Name, err)
		}
		if dur < 0 {
			return fmt.Errorf("sim: negative firing time %d for %q", dur, tr.Name)
		}
	}
	e.deltas = e.deltas[:0]
	for _, a := range tr.In {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: -a.Weight})
	}
	e.net.Consume(t, e.m)
	e.starts++
	rec := trace.Record{Kind: trace.Start, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&rec); err != nil {
		return err
	}
	if err := e.refreshAffected(e.deltas, false); err != nil {
		return err
	}
	// The enabling timer restarts for the next firing if t is still
	// enabled (continuous enablement is counted per firing).
	if e.ts[t].enabled {
		if err := e.startTimer(t); err != nil {
			return err
		}
	}
	if dur == 0 {
		return e.complete(t)
	}
	e.ts[t].active++
	e.seq++
	heap.Push(&e.pend, completion{at: e.clock + dur, seq: e.seq, trans: t})
	return nil
}

// complete finishes one firing of t: produce outputs, run the action,
// emit the End record.
func (e *Engine) complete(t petri.TransID) error {
	tr := &e.net.Trans[t]
	e.deltas = e.deltas[:0]
	for _, a := range tr.Out {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: a.Weight})
	}
	e.net.Produce(t, e.m)
	e.ends++
	envChanged := false
	if tr.Action != nil {
		if err := tr.Action.Exec(e.env); err != nil {
			return fmt.Errorf("sim: action of %q: %w", tr.Name, err)
		}
		envChanged = true
	}
	rec := trace.Record{Kind: trace.End, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&rec); err != nil {
		return err
	}
	return e.refreshAffected(e.deltas, envChanged)
}

// completeDue finishes every firing scheduled for the current clock.
func (e *Engine) completeDue() error {
	for len(e.pend) > 0 && e.pend[0].at == e.clock {
		c := heap.Pop(&e.pend).(completion)
		e.ts[c.trans].active--
		if err := e.complete(c.trans); err != nil {
			return err
		}
	}
	return nil
}
