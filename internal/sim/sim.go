// Package sim is the P-NUT simulation engine: "a simple simulation
// engine which pushes tokens around a Timed Petri Net" (Section 4.1).
//
// The engine implements the paper's extended-TPN semantics:
//
//   - A transition is enabled when its input places hold the arc weights,
//     its inhibitor places do not, and its predicate (if any) is true.
//   - A transition with an enabling time must be continuously enabled for
//     that long before it may fire; losing enablement resets the timer.
//     After each firing the timer restarts.
//   - When a transition fires, input tokens are removed immediately; if
//     it has a firing time the output tokens appear that much later
//     (during the firing the tokens are "neither on the inputs nor on the
//     outputs"). Actions run when the firing completes.
//   - When several transitions are ready at the same instant, one is
//     chosen with probability proportional to its relative firing
//     frequency [WPS86]; selection repeats until no transition is ready,
//     then the clock advances to the next completion or ripening.
//
// # Event scheduling
//
// The hot loop is indexed rather than scanned. One binary heap holds
// every future event — firing completions and enabling-timer ripenings
// — ordered by (time, insertion sequence), with lazy invalidation:
// a ripening entry carries the generation of the timer that scheduled
// it, and entries whose generation no longer matches are discarded when
// they surface. The set of transitions ready to fire *now* (the ripe
// set) is maintained incrementally from enablement refreshes instead of
// being rebuilt by a full transition scan per firing, kept in ascending
// transition-id order so conflict resolution consumes random numbers in
// exactly the order of the original scanning engine. Per event the
// engine does O(log E) heap work plus O(neighborhood) refresh work,
// instead of O(T) scans — and the firing path allocates nothing once
// the engine's buffers are warm.
//
// Determinism contract: for equal seeds the engine produces bit-equal
// traces — equal-time completions complete in firing-start order,
// equal-time ripenings join the ripe set before conflict resolution,
// and the ripe set is always iterated in ascending transition id. The
// frozen linear-scan engine in oracle_test.go pins this contract.
//
// The engine knows nothing about analysis: it emits trace records to an
// Observer (package trace), which may be a file writer, a statistics
// accumulator, a tracer, an animator, or any Tee of those.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/petri"
	"repro/internal/trace"
)

// Options control one simulation experiment.
type Options struct {
	// Seed seeds the run's private random source. Equal seeds give equal
	// traces.
	Seed int64
	// Horizon stops the run when the clock would pass it. The run ends
	// exactly at Horizon (pending firings are not completed), matching a
	// fixed-length experiment such as the paper's 10 000-cycle run.
	Horizon petri.Time
	// MaxStarts, if positive, stops the run after that many firings have
	// started. Either Horizon or MaxStarts must be set.
	MaxStarts int64
	// MaxStepsPerInstant guards against zero-time livelock (a loop of
	// timeless transitions). Default 1 000 000.
	MaxStepsPerInstant int
}

// Result summarizes a run.
type Result struct {
	Clock     petri.Time
	Starts    int64
	Ends      int64
	Quiescent bool          // the net ran out of events before the horizon
	Final     petri.Marking // marking when the run stopped
	Vars      map[string]int64
}

// ErrLivelock is returned when more than MaxStepsPerInstant firings start
// at a single instant.
var ErrLivelock = errors.New("sim: livelock: too many firings at one instant")

// Event kinds in the unified scheduler heap.
const (
	evComplete = uint8(iota) // a started firing finishes at ev.at
	evRipen                  // an enabling timer expires at ev.at
)

// event is one scheduled occurrence. Events order by (at, seq); seq is
// a global insertion counter, so equal-time completions pop in the
// order their firings started — the tie-break the determinism contract
// pins. Ripening entries are invalidated lazily: gen snapshots the
// transition's timer generation at push time and a mismatch at pop time
// means the timer was since reset or cleared.
type event struct {
	at    petri.Time
	seq   int64
	trans petri.TransID
	gen   uint32
	kind  uint8
}

// transState is the per-transition simulation state.
type transState struct {
	enabled bool
	// deferred marks an enabled, timed transition that is at its server
	// cap: its ripening is not an event (the original engine's scan
	// skipped capped transitions), so no heap entry exists, and the
	// completion that uncaps it re-arms the stored ripeAt.
	deferred bool
	// hasEntry tracks whether a live ripening entry for gen is in the
	// heap, so invalidation can count stale entries for compaction.
	hasEntry bool
	gen      uint32
	ripeAt   petri.Time // valid while enabled
	active   int        // concurrent firings in progress
}

// ctxCheckBatch is how many scheduler steps run between context-
// cancellation checks: cancellation latency is a few thousand events
// while the per-event overhead stays one counter increment.
const ctxCheckBatch = 4096

// Engine is a reusable simulator for one immutable net. A fresh Engine
// is cheap — the net's Affected/Predicated indexes are precomputed at
// Build time — but replication drivers (package experiment) run many
// short experiments back to back, so Run resets and reuses the engine's
// state vectors, event heap and scratch buffers instead of reallocating
// them.
//
// An Engine is not safe for concurrent use; give each goroutine its
// own (see NewEngine).
type Engine struct {
	net   *petri.Net
	opt   Options
	rng   *rand.Rand
	src   rand.Source
	env   *expr.Env
	obs   trace.Observer
	ctx   context.Context
	clock petri.Time
	m     petri.Marking
	ts    []transState

	// evq is the unified event heap; stale counts invalidated ripening
	// entries still buried in it (compacted away when they dominate).
	evq   []event
	stale int
	seq   int64

	// ripeList is the current ripe set in ascending transition id;
	// ripePos[t] is t's index in it, -1 when absent.
	ripeList []petri.TransID
	ripePos  []int32

	// effFreq caches EffFreq per transition: the hot loop reads it as a
	// dense slice instead of chasing into the Transition structs.
	effFreq []float64

	starts, ends int64
	ctxTick      uint32

	// scratch buffers reused across records
	deltas []trace.Delta
	// rec is the scratch record reused for every emitted event, so the
	// firing path allocates nothing per event (observers must not retain
	// records, see trace.Observer).
	rec trace.Record
}

// NewEngine returns an engine for net with all per-run state allocated
// up front, sized to the net.
func NewEngine(net *petri.Net) *Engine {
	src := rand.NewSource(0)
	e := &Engine{
		net:      net,
		src:      src,
		rng:      rand.New(src),
		m:        make(petri.Marking, net.NumPlaces()),
		ts:       make([]transState, net.NumTrans()),
		ripeList: make([]petri.TransID, 0, net.NumTrans()),
		ripePos:  make([]int32, net.NumTrans()),
		effFreq:  make([]float64, net.NumTrans()),
	}
	for i := range e.effFreq {
		e.effFreq[i] = net.Trans[i].EffFreq()
	}
	e.env = net.NewEnv(e.rng)
	return e
}

// reset rewinds the engine to the net's initial state for a run under
// opt, reseeding the random source. No per-place or per-transition
// storage is reallocated.
func (e *Engine) reset(opt Options) {
	e.opt = opt
	e.src.Seed(opt.Seed)
	e.m = e.net.InitialMarkingInto(e.m)
	for i := range e.ts {
		e.ts[i] = transState{}
	}
	e.evq = e.evq[:0]
	e.stale = 0
	e.ripeList = e.ripeList[:0]
	for i := range e.ripePos {
		e.ripePos[i] = -1
	}
	e.clock, e.seq, e.starts, e.ends = 0, 0, 0, 0
	e.ctxTick = 0
	e.env = e.net.NewEnv(e.rng)
}

// Run simulates the engine's net once under opt, streaming the trace to
// obs (nil discards it), and returns the run summary. The engine may be
// Run again with fresh Options; equal seeds give equal traces.
//
// ctx cancels a run in progress: it is checked every few thousand
// scheduler steps (never per event), and a cancelled run returns ctx's
// error. A nil ctx means context.Background().
func (e *Engine) Run(ctx context.Context, obs trace.Observer, opt Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if opt.Horizon <= 0 && opt.MaxStarts <= 0 {
		return Result{}, errors.New("sim: Options must set Horizon or MaxStarts")
	}
	if opt.MaxStepsPerInstant <= 0 {
		opt.MaxStepsPerInstant = 1_000_000
	}
	if obs == nil {
		obs = trace.Discard
	}
	e.obs = obs
	e.ctx = ctx
	e.reset(opt)
	err := e.run()
	e.ctx = nil
	if err != nil {
		return Result{}, err
	}
	return Result{
		Clock:     e.clock,
		Starts:    e.starts,
		Ends:      e.ends,
		Quiescent: e.quiescent(),
		Final:     e.m.Clone(),
		Vars:      e.env.Snapshot(),
	}, nil
}

// Run simulates net, streaming the trace to obs (which may be nil to
// discard it), and returns the run summary. It is the one-shot form of
// NewEngine(net).Run(ctx, obs, opt).
func Run(ctx context.Context, net *petri.Net, obs trace.Observer, opt Options) (Result, error) {
	return NewEngine(net).Run(ctx, obs, opt)
}

func (e *Engine) quiescent() bool {
	if e.starts > e.ends {
		return false // firings in progress: completions are pending
	}
	for i := range e.ts {
		if e.ts[i].enabled && e.effFreq[i] != 0 {
			return false
		}
	}
	return true
}

func (e *Engine) emit(rec *trace.Record) error { return e.obs.Record(rec) }

// checkCtx reports the context's error once per ctxCheckBatch calls.
func (e *Engine) checkCtx() error {
	if e.ctxTick++; e.ctxTick&(ctxCheckBatch-1) != 0 {
		return nil
	}
	return e.ctx.Err()
}

func (e *Engine) run() error {
	e.rec = trace.Record{Kind: trace.Initial, Time: 0, Marking: e.m.Clone()}
	if err := e.emit(&e.rec); err != nil {
		return err
	}
	if err := e.refreshAll(); err != nil {
		return err
	}
	if err := e.settle(); err != nil {
		return err
	}
	for !e.done() {
		if err := e.checkCtx(); err != nil {
			return err
		}
		next, any := e.nextEventTime()
		if !any {
			break // quiescent
		}
		if e.opt.Horizon > 0 && next > e.opt.Horizon {
			e.clock = e.opt.Horizon
			break
		}
		e.clock = next
		if err := e.completeDue(); err != nil {
			return err
		}
		if err := e.settle(); err != nil {
			return err
		}
	}
	if e.opt.Horizon > 0 && e.clock < e.opt.Horizon && e.quiescent() {
		// A quiescent net simply idles until the end of the experiment.
		e.clock = e.opt.Horizon
	}
	e.rec = trace.Record{Kind: trace.Final, Time: e.clock, Starts: e.starts, Ends: e.ends}
	return e.emit(&e.rec)
}

func (e *Engine) done() bool {
	return e.opt.MaxStarts > 0 && e.starts >= e.opt.MaxStarts
}

// nextEventTime peeks the earliest live event, discarding stale
// ripening entries that surface at the top of the heap. By the arm
// invariant a live ripening always belongs to an enabled, uncapped,
// nonzero-frequency transition, so no further checks are needed.
func (e *Engine) nextEventTime() (petri.Time, bool) {
	for len(e.evq) > 0 {
		top := &e.evq[0]
		if top.kind == evComplete || top.gen == e.ts[top.trans].gen {
			return top.at, true
		}
		e.popEvent()
		e.stale--
	}
	return 0, false
}

func (e *Engine) capped(t petri.TransID) bool {
	s := e.net.Trans[t].Servers
	return s > 0 && e.ts[t].active >= s
}

// arm re-derives transition t's scheduling state after anything that
// could change it: enablement flips, timer restarts, or reaching the
// server cap. Any previous heap entry is invalidated (generation bump);
// then t is either ripe now (joins the ripe set), ripening later (a new
// heap entry), deferred (capped: the uncapping completion re-arms it),
// or unscheduled (disabled or frequency 0).
func (e *Engine) arm(t petri.TransID) {
	st := &e.ts[t]
	if st.hasEntry {
		e.stale++
		st.hasEntry = false
	}
	st.gen++
	st.deferred = false
	e.clearRipe(t)
	if !st.enabled || e.effFreq[t] == 0 {
		return
	}
	if e.capped(t) {
		st.deferred = true
		return
	}
	if st.ripeAt <= e.clock {
		e.setRipe(t)
	} else {
		e.pushRipen(t)
	}
}

// pushRipen schedules t's current timer as a heap event.
func (e *Engine) pushRipen(t petri.TransID) {
	st := &e.ts[t]
	e.seq++
	e.pushEvent(event{at: st.ripeAt, seq: e.seq, trans: t, gen: st.gen, kind: evRipen})
	st.hasEntry = true
}

// refresh recomputes the enabled state of transition t, starting or
// clearing its enabling timer as needed.
func (e *Engine) refresh(t petri.TransID) error {
	now, err := e.net.Enabled(t, e.m, e.env)
	if err != nil {
		return err
	}
	st := &e.ts[t]
	switch {
	case now && !st.enabled:
		st.enabled = true
		if err := e.startTimer(t); err != nil {
			return err
		}
	case !now && st.enabled:
		st.enabled = false
		e.arm(t)
	}
	return nil
}

// startTimer samples the enabling delay for t, sets its ripening time
// and re-arms its scheduling state.
func (e *Engine) startTimer(t petri.TransID) error {
	st := &e.ts[t]
	var d petri.Time
	if del := e.net.Trans[t].Enabling; del != nil {
		var err error
		d, err = del.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: enabling time of %q: %w", e.net.Trans[t].Name, err)
		}
		if d < 0 {
			return fmt.Errorf("sim: negative enabling time %d for %q", d, e.net.Trans[t].Name)
		}
	}
	st.ripeAt = e.clock + d
	e.arm(t)
	return nil
}

func (e *Engine) refreshAll() error {
	for i := range e.ts {
		if err := e.refresh(petri.TransID(i)); err != nil {
			return err
		}
	}
	return nil
}

// refreshAffected rechecks the transitions whose enablement can have
// changed after the marking of the given places changed, plus (if env
// might have changed) all predicated transitions.
func (e *Engine) refreshAffected(places []trace.Delta, envChanged bool) error {
	for _, d := range places {
		for _, t := range e.net.Affected(d.Place) {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	if envChanged {
		for _, t := range e.net.Predicated() {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// settle starts every firing that can start at the current instant. The
// ripe set is already current — refresh/arm maintain it incrementally —
// so each step is a conflict-resolution draw plus one firing, with no
// per-transition scan.
func (e *Engine) settle() error {
	for step := 0; ; step++ {
		if step > e.opt.MaxStepsPerInstant {
			return fmt.Errorf("%w (t=%d)", ErrLivelock, e.clock)
		}
		if e.done() {
			return nil
		}
		if len(e.ripeList) == 0 {
			return nil
		}
		if err := e.checkCtx(); err != nil {
			return err
		}
		pick := e.choose(e.ripeList)
		if err := e.fire(pick); err != nil {
			return err
		}
	}
}

// choose selects among simultaneously ready transitions with probability
// proportional to relative firing frequency.
func (e *Engine) choose(ripe []petri.TransID) petri.TransID {
	if len(ripe) == 1 {
		return ripe[0]
	}
	total := 0.0
	for _, t := range ripe {
		total += e.effFreq[t]
	}
	x := e.rng.Float64() * total
	for _, t := range ripe {
		x -= e.effFreq[t]
		if x < 0 {
			return t
		}
	}
	return ripe[len(ripe)-1]
}

// fire starts one firing of t: consume inputs, emit the Start record, and
// either complete immediately (zero firing time) or schedule completion.
func (e *Engine) fire(t petri.TransID) error {
	tr := &e.net.Trans[t]
	var dur petri.Time
	if tr.Firing != nil {
		var err error
		dur, err = tr.Firing.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: firing time of %q: %w", tr.Name, err)
		}
		if dur < 0 {
			return fmt.Errorf("sim: negative firing time %d for %q", dur, tr.Name)
		}
	}
	e.deltas = e.deltas[:0]
	for _, a := range tr.In {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: -a.Weight})
	}
	e.net.Consume(t, e.m)
	e.starts++
	e.rec = trace.Record{Kind: trace.Start, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&e.rec); err != nil {
		return err
	}
	if err := e.refreshAffected(e.deltas, false); err != nil {
		return err
	}
	// Count the in-flight firing before re-arming, so the timer restart
	// below sees the server cap this firing may have just filled.
	if dur > 0 {
		e.ts[t].active++
		e.seq++
		e.pushEvent(event{at: e.clock + dur, seq: e.seq, trans: t, kind: evComplete})
	}
	// The enabling timer restarts for the next firing if t is still
	// enabled (continuous enablement is counted per firing).
	if e.ts[t].enabled {
		if err := e.startTimer(t); err != nil {
			return err
		}
	}
	if dur == 0 {
		return e.complete(t)
	}
	return nil
}

// complete finishes one firing of t: produce outputs, run the action,
// emit the End record.
func (e *Engine) complete(t petri.TransID) error {
	tr := &e.net.Trans[t]
	e.deltas = e.deltas[:0]
	for _, a := range tr.Out {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: a.Weight})
	}
	e.net.Produce(t, e.m)
	e.ends++
	envChanged := false
	if tr.Action != nil {
		if err := tr.Action.Exec(e.env); err != nil {
			return fmt.Errorf("sim: action of %q: %w", tr.Name, err)
		}
		envChanged = true
	}
	e.rec = trace.Record{Kind: trace.End, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&e.rec); err != nil {
		return err
	}
	return e.refreshAffected(e.deltas, envChanged)
}

// completeDue drains every event scheduled for the current clock:
// completions finish their firing (in firing-start order, preserving
// the trace tie-break), live ripenings move their transition into the
// ripe set, and stale ripenings are discarded.
func (e *Engine) completeDue() error {
	for len(e.evq) > 0 && e.evq[0].at == e.clock {
		ev := e.popEvent()
		st := &e.ts[ev.trans]
		if ev.kind == evRipen {
			if ev.gen != st.gen {
				e.stale--
				continue
			}
			st.hasEntry = false
			e.setRipe(ev.trans)
			continue
		}
		st.active--
		if st.deferred && st.enabled && !e.capped(ev.trans) {
			// The cap lifted: the stored timer becomes schedulable again,
			// exactly as the scanning engine's recheck would observe it.
			st.deferred = false
			if st.ripeAt <= e.clock {
				e.setRipe(ev.trans)
			} else {
				e.pushRipen(ev.trans)
			}
		}
		if err := e.complete(ev.trans); err != nil {
			return err
		}
	}
	return nil
}

// setRipe inserts t into the ripe set, keeping ascending id order.
func (e *Engine) setRipe(t petri.TransID) {
	if e.ripePos[t] >= 0 {
		return
	}
	lo, hi := 0, len(e.ripeList)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.ripeList[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.ripeList = append(e.ripeList, 0)
	copy(e.ripeList[lo+1:], e.ripeList[lo:])
	e.ripeList[lo] = t
	for i := lo; i < len(e.ripeList); i++ {
		e.ripePos[e.ripeList[i]] = int32(i)
	}
}

// clearRipe removes t from the ripe set if present.
func (e *Engine) clearRipe(t petri.TransID) {
	i := e.ripePos[t]
	if i < 0 {
		return
	}
	copy(e.ripeList[i:], e.ripeList[i+1:])
	e.ripeList = e.ripeList[:len(e.ripeList)-1]
	e.ripePos[t] = -1
	for j := int(i); j < len(e.ripeList); j++ {
		e.ripePos[e.ripeList[j]] = int32(j)
	}
}

// evLess orders events by (time, insertion sequence).
func (e *Engine) evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEvent sifts ev into the heap, compacting first when stale entries
// dominate, so lazy invalidation cannot grow the heap unboundedly.
func (e *Engine) pushEvent(ev event) {
	if e.stale > 64 && e.stale > len(e.evq)/2 {
		e.compact()
	}
	e.evq = append(e.evq, ev)
	i := len(e.evq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.evLess(&e.evq[i], &e.evq[parent]) {
			break
		}
		e.evq[i], e.evq[parent] = e.evq[parent], e.evq[i]
		i = parent
	}
}

// popEvent removes and returns the heap minimum.
func (e *Engine) popEvent() event {
	top := e.evq[0]
	n := len(e.evq) - 1
	e.evq[0] = e.evq[n]
	e.evq = e.evq[:n]
	e.siftDown(0)
	return top
}

func (e *Engine) siftDown(i int) {
	n := len(e.evq)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && e.evLess(&e.evq[r], &e.evq[l]) {
			small = r
		}
		if !e.evLess(&e.evq[small], &e.evq[i]) {
			return
		}
		e.evq[i], e.evq[small] = e.evq[small], e.evq[i]
		i = small
	}
}

// compact drops stale ripening entries in place and re-heapifies:
// O(live + stale), amortized against the pushes that created them.
func (e *Engine) compact() {
	keep := e.evq[:0]
	for _, ev := range e.evq {
		if ev.kind == evComplete || ev.gen == e.ts[ev.trans].gen {
			keep = append(keep, ev)
		}
	}
	e.evq = keep
	e.stale = 0
	for i := len(e.evq)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}
