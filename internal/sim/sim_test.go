package sim

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/petri"
	"repro/internal/trace"
)

// collect runs net and returns the collected trace and result.
func collect(t *testing.T, net *petri.Net, opt Options) (*trace.Collect, Result) {
	t.Helper()
	c := trace.NewCollect(trace.HeaderOf(net))
	res, err := Run(context.Background(), net, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

// eventTimes extracts the times of records of the given kind for a named
// transition.
func eventTimes(c *trace.Collect, kind trace.Kind, name string) []petri.Time {
	id, ok := c.Header.TransID(name)
	if !ok {
		return nil
	}
	var out []petri.Time
	for i := range c.Records {
		r := &c.Records[i]
		if r.Kind == kind && r.Trans == id {
			out = append(out, r.Time)
		}
	}
	return out
}

func TestFiringTimeDelaysOutputs(t *testing.T) {
	b := petri.NewBuilder("chain")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("t").In("a").Out("b").FiringConst(7)
	net := b.MustBuild()
	c, res := collect(t, net, Options{Horizon: 100})
	starts := eventTimes(c, trace.Start, "t")
	ends := eventTimes(c, trace.End, "t")
	if len(starts) != 1 || starts[0] != 0 {
		t.Fatalf("starts = %v", starts)
	}
	if len(ends) != 1 || ends[0] != 7 {
		t.Fatalf("ends = %v", ends)
	}
	if res.Final[net.MustPlace("b")] != 1 {
		t.Errorf("final marking: %v", res.Final)
	}
	if !res.Quiescent {
		t.Error("net should be quiescent")
	}
}

func TestEnablingTimeDelaysFiring(t *testing.T) {
	b := petri.NewBuilder("en")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("t").In("a").Out("b").EnablingConst(5)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 100})
	starts := eventTimes(c, trace.Start, "t")
	ends := eventTimes(c, trace.End, "t")
	// Enabled at 0, ripe at 5, firing is instantaneous.
	if len(starts) != 1 || starts[0] != 5 || len(ends) != 1 || ends[0] != 5 {
		t.Fatalf("starts=%v ends=%v", starts, ends)
	}
}

func TestEnablingTimerResetsOnDisable(t *testing.T) {
	// thief takes the shared token at t=2 and returns it at t=4; the
	// enabling timer of slow (delay 5) must restart at 4, so slow fires
	// at 9, not at 5.
	b := petri.NewBuilder("reset")
	b.Place("shared", 1)
	b.Place("trigger", 1)
	b.Place("out", 0)
	b.Trans("thief").In("trigger").In("shared").Out("shared_back").FiringConst(0).EnablingConst(2)
	b.Place("shared_back", 0)
	b.Trans("return").In("shared_back").Out("shared").EnablingConst(2)
	b.Trans("slow").In("shared").Out("out").EnablingConst(5)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 100})
	// thief is ripe at 2 and competes with nothing (slow ripens at 5).
	starts := eventTimes(c, trace.Start, "slow")
	if len(starts) != 1 || starts[0] != 9 {
		t.Fatalf("slow starts = %v, want [9]", starts)
	}
}

func TestInhibitorBlocksFiring(t *testing.T) {
	b := petri.NewBuilder("inhib")
	b.Place("go", 1)
	b.Place("blocker", 1)
	b.Place("out", 0)
	b.Place("cleared", 0)
	b.Trans("t").In("go").Out("out").Inhib("blocker")
	b.Trans("clear").In("blocker").Out("cleared").EnablingConst(10)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 100})
	starts := eventTimes(c, trace.Start, "t")
	// t can only fire once clear removed the blocker token at t=10.
	if len(starts) != 1 || starts[0] != 10 {
		t.Fatalf("starts = %v, want [10]", starts)
	}
}

func TestFrequencyRatios(t *testing.T) {
	// Three competing instruction types at 70-20-10, the paper's mix.
	b := petri.NewBuilder("mix")
	b.Place("instr", 1)
	b.Place("done", 0)
	b.Trans("Type_1").In("instr").Out("done").Freq(70)
	b.Trans("Type_2").In("instr").Out("done").Freq(20)
	b.Trans("Type_3").In("instr").Out("done").Freq(10)
	b.Trans("recycle").In("done").Out("instr").EnablingConst(1)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 30_000, Seed: 42})
	n1 := len(eventTimes(c, trace.Start, "Type_1"))
	n2 := len(eventTimes(c, trace.Start, "Type_2"))
	n3 := len(eventTimes(c, trace.Start, "Type_3"))
	total := n1 + n2 + n3
	if total < 25_000 {
		t.Fatalf("too few selections: %d", total)
	}
	f1 := float64(n1) / float64(total)
	f2 := float64(n2) / float64(total)
	f3 := float64(n3) / float64(total)
	if f1 < 0.67 || f1 > 0.73 || f2 < 0.17 || f2 > 0.23 || f3 < 0.08 || f3 > 0.12 {
		t.Errorf("mix = %.3f/%.3f/%.3f, want about .70/.20/.10", f1, f2, f3)
	}
}

func TestDeterminism(t *testing.T) {
	net := mixNet(t)
	run := func() string {
		c := trace.NewCollect(trace.HeaderOf(net))
		if _, err := Run(context.Background(), net, c, Options{Horizon: 1000, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		return c.String()
	}
	if run() != run() {
		t.Error("equal seeds produced different traces")
	}
	c2 := trace.NewCollect(trace.HeaderOf(net))
	if _, err := Run(context.Background(), net, c2, Options{Horizon: 1000, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if run() == c2.String() {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

func mixNet(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("mix")
	b.Place("instr", 1)
	b.Place("done", 0)
	b.Trans("a").In("instr").Out("done").Freq(1).FiringConst(2)
	b.Trans("b").In("instr").Out("done").Freq(1).FiringConst(3)
	b.Trans("recycle").In("done").Out("instr").EnablingConst(1)
	return b.MustBuild()
}

func TestHorizonStopsRun(t *testing.T) {
	net := mixNet(t)
	_, res := collect(t, net, Options{Horizon: 500})
	if res.Clock != 500 {
		t.Errorf("clock = %d, want 500", res.Clock)
	}
	if res.Quiescent {
		t.Error("run should not be quiescent")
	}
}

func TestMaxStartsStopsRun(t *testing.T) {
	net := mixNet(t)
	_, res := collect(t, net, Options{MaxStarts: 10})
	if res.Starts != 10 {
		t.Errorf("starts = %d, want 10", res.Starts)
	}
}

func TestQuiescentIdlesToHorizon(t *testing.T) {
	b := petri.NewBuilder("oneshot")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("t").In("a").Out("b").FiringConst(3)
	net := b.MustBuild()
	_, res := collect(t, net, Options{Horizon: 100})
	if !res.Quiescent || res.Clock != 100 {
		t.Errorf("quiescent=%v clock=%d", res.Quiescent, res.Clock)
	}
}

func TestLivelockDetected(t *testing.T) {
	b := petri.NewBuilder("live")
	b.Place("a", 1)
	b.Trans("spin").In("a").Out("a")
	net := b.MustBuild()
	_, err := Run(context.Background(), net, nil, Options{Horizon: 10, MaxStepsPerInstant: 100})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Errorf("expected livelock error, got %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	net := mixNet(t)
	if _, err := Run(context.Background(), net, nil, Options{}); err == nil {
		t.Error("options without stop condition accepted")
	}
}

func TestTokensInLimboDuringFiring(t *testing.T) {
	// While t fires (duration 10), the token must be on neither a nor b:
	// watcher has both a and b as inhibitors plus a private trigger, and
	// can only fire while the token is in limbo.
	b := petri.NewBuilder("limbo")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Place("trigger", 1)
	b.Place("seen", 0)
	b.Trans("t").In("a").Out("b").FiringConst(10)
	b.Trans("watcher").In("trigger").Out("seen").Inhib("a").Inhib("b").EnablingConst(5)
	net := b.MustBuild()
	c, res := collect(t, net, Options{Horizon: 100})
	starts := eventTimes(c, trace.Start, "watcher")
	if len(starts) != 1 || starts[0] != 5 {
		t.Fatalf("watcher starts = %v, want [5]", starts)
	}
	if res.Final[net.MustPlace("seen")] != 1 {
		t.Error("watcher never fired")
	}
}

func TestServersCap(t *testing.T) {
	// Five input tokens, service 10 ticks each, 2 servers: completions
	// at 10,10,20,20,30.
	b := petri.NewBuilder("srv")
	b.Place("q", 5)
	b.Place("done", 0)
	b.Trans("serve").In("q").Out("done").FiringConst(10).Servers(2)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 100})
	ends := eventTimes(c, trace.End, "serve")
	want := []petri.Time{10, 10, 20, 20, 30}
	if len(ends) != len(want) {
		t.Fatalf("ends = %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestUnlimitedServers(t *testing.T) {
	b := petri.NewBuilder("pool")
	b.Place("q", 5)
	b.Place("done", 0)
	b.Trans("serve").In("q").Out("done").FiringConst(10)
	net := b.MustBuild()
	c, _ := collect(t, net, Options{Horizon: 100})
	ends := eventTimes(c, trace.End, "serve")
	if len(ends) != 5 {
		t.Fatalf("ends = %v", ends)
	}
	for _, e := range ends {
		if e != 10 {
			t.Fatalf("all five firings should end at 10: %v", ends)
		}
	}
}

func TestInterpretedOperandFetchLoop(t *testing.T) {
	// Figure 4: a table-driven operand fetch loop. The Decode action
	// fixes the type deterministically here (irand(3,3)) so the loop
	// count is known: type 3 needs 2 operands.
	b := petri.NewBuilder("fig4")
	b.Var("max_type", 3)
	b.Var("number_of_operands_needed", 0)
	b.Table("operands", 0, 0, 1, 2) // index 0 unused
	b.Place("Full_I_buffers", 1)
	b.Place("Decoder_ready", 1)
	b.Place("Decoded_instruction", 0)
	b.Place("fetching", 0)
	b.Place("ready_to_issue", 0)
	b.Trans("Decode").
		In("Full_I_buffers").In("Decoder_ready").
		Out("Decoded_instruction").
		FiringConst(1).
		Action("type = irand(3, 3); number_of_operands_needed = operands[type];")
	b.Trans("fetch_operand").
		In("Decoded_instruction").Out("fetching").
		Pred("number_of_operands_needed > 0")
	b.Trans("end_fetch").
		In("fetching").Out("Decoded_instruction").
		EnablingConst(5).
		Action("number_of_operands_needed = number_of_operands_needed - 1")
	b.Trans("operand_fetching_done").
		In("Decoded_instruction").Out("ready_to_issue").
		Pred("number_of_operands_needed == 0")
	net := b.MustBuild()
	c, res := collect(t, net, Options{Horizon: 1000})
	if got := len(eventTimes(c, trace.Start, "fetch_operand")); got != 2 {
		t.Errorf("fetch_operand fired %d times, want 2", got)
	}
	if res.Final[net.MustPlace("ready_to_issue")] != 1 {
		t.Error("instruction never became ready to issue")
	}
	if res.Vars["number_of_operands_needed"] != 0 {
		t.Errorf("loop variable = %d", res.Vars["number_of_operands_needed"])
	}
	// Done at decode(1) + 2 fetches (5 each) = 11.
	done := eventTimes(c, trace.Start, "operand_fetching_done")
	if len(done) != 1 || done[0] != 11 {
		t.Errorf("operand_fetching_done at %v, want [11]", done)
	}
}

func TestEncodingEquivalenceSingleServer(t *testing.T) {
	// For a deterministic single-server chain, the firing-as-enabling
	// encoding must preserve all completion times of the original
	// transitions.
	b := petri.NewBuilder("chain")
	b.Place("a", 3)
	b.Place("b", 0)
	b.Place("c", 0)
	b.Trans("first").In("a").Out("b").FiringConst(4).Servers(1)
	b.Trans("second").In("b").Out("c").FiringConst(3).Servers(1)
	net := b.MustBuild()
	enc, err := petri.EncodeFiringAsEnabling(net)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := collect(t, net, Options{Horizon: 200})
	c2, _ := collect(t, enc, Options{Horizon: 200})
	orig := eventTimes(c1, trace.End, "second")
	encd := eventTimes(c2, trace.End, "second__end")
	if len(orig) != 3 || len(encd) != 3 {
		t.Fatalf("orig=%v enc=%v", orig, encd)
	}
	for i := range orig {
		if orig[i] != encd[i] {
			t.Fatalf("completion times differ: orig=%v enc=%v", orig, encd)
		}
	}
}

func TestBusMutualExclusionInvariant(t *testing.T) {
	// The paper's correctness concern: Bus_busy + Bus_free must always
	// equal 1 as long as bus transfers are modeled with instantaneous
	// handoffs. Check every intermediate marking of a contended run.
	b := petri.NewBuilder("bus")
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("want_a", 3)
	b.Place("want_b", 3)
	b.Place("using_a", 0)
	b.Place("using_b", 0)
	b.Place("done_a", 0)
	b.Place("done_b", 0)
	b.Trans("start_a").In("want_a").In("Bus_free").Out("using_a").Out("Bus_busy")
	b.Trans("end_a").In("using_a").In("Bus_busy").Out("done_a").Out("Bus_free").EnablingConst(5)
	b.Trans("start_b").In("want_b").In("Bus_free").Out("using_b").Out("Bus_busy")
	b.Trans("end_b").In("using_b").In("Bus_busy").Out("done_b").Out("Bus_free").EnablingConst(3)
	net := b.MustBuild()

	// The sum Bus_free+Bus_busy is transiently 0 between the Start and
	// the zero-time End of a handoff transition (the token is in limbo),
	// so the invariant is asserted at End records, where the state is
	// settled.
	free := net.MustPlace("Bus_free")
	busy := net.MustPlace("Bus_busy")
	m2 := net.InitialMarking()
	bad2 := 0
	obs2 := trace.ObserverFunc(func(rec *trace.Record) error {
		switch rec.Kind {
		case trace.Initial:
			m2 = rec.Marking.Clone()
		case trace.Start, trace.End:
			for _, d := range rec.Deltas {
				m2[d.Place] += d.Change
			}
			if rec.Kind == trace.End && m2[free]+m2[busy] != 1 {
				bad2++
			}
		}
		return nil
	})
	if _, err := Run(context.Background(), net, obs2, Options{Horizon: 1000}); err != nil {
		t.Fatal(err)
	}
	if bad2 != 0 {
		t.Errorf("bus invariant violated %d times at End records", bad2)
	}
}

// Property: over random two-place nets with a conservative transition,
// total token count never changes.
func TestQuickTokenConservation(t *testing.T) {
	f := func(init uint8, w uint8, dur uint8) bool {
		weight := int(w%3) + 1
		b := petri.NewBuilder("q")
		b.Place("a", int(init%20)+weight)
		b.Place("b", 0)
		b.Trans("ab").In("a", weight).Out("b", weight).FiringConst(petri.Time(dur % 5))
		b.Trans("ba").In("b", weight).Out("a", weight).EnablingConst(petri.Time(dur%3) + 1)
		net, err := b.Build()
		if err != nil {
			return false
		}
		total := net.InitialMarking().Total()
		m := net.InitialMarking()
		inLimbo := 0
		ok := true
		obs := trace.ObserverFunc(func(rec *trace.Record) error {
			switch rec.Kind {
			case trace.Start:
				for _, d := range rec.Deltas {
					m[d.Place] += d.Change
					inLimbo -= d.Change
				}
			case trace.End:
				for _, d := range rec.Deltas {
					m[d.Place] += d.Change
					inLimbo -= d.Change
				}
			}
			if m.Total()+inLimbo != total {
				ok = false
			}
			return nil
		})
		if _, err := Run(context.Background(), net, obs, Options{Horizon: 200, MaxStarts: 500}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
