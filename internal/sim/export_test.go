package sim

import (
	"repro/internal/petri"
	"repro/internal/trace"
)

// Oracle exposes the frozen linear-scan engine (see oracle_test.go) to
// the external test package, which compares it against the indexed
// scheduler but also needs packages (stats) that import sim and so
// cannot be imported from package-internal tests.
type Oracle struct{ e *oracleEngine }

// NewOracle builds a fresh oracle engine for net.
func NewOracle(net *petri.Net) Oracle { return Oracle{newOracleEngine(net)} }

// Run runs the oracle once; the engine may be reused like the real one.
func (o Oracle) Run(obs trace.Observer, opt Options) (Result, error) { return o.e.Run(obs, opt) }
