package sim_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestEngineReuseMatchesFreshRuns: a reused engine must produce exactly
// the trace a one-shot Run produces, for every seed, including after
// runs with different options.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	h := trace.HeaderOf(net)
	eng := sim.NewEngine(net)
	// Interleave horizons so any state leak between runs is visible.
	opts := []sim.Options{
		{Horizon: 2_000, Seed: 1},
		{Horizon: 500, Seed: 2},
		{Horizon: 2_000, Seed: 1}, // repeat of run 0: must be identical
		{MaxStarts: 300, Horizon: 100_000, Seed: 3},
	}
	var reports []string
	for i, o := range opts {
		reused := stats.New(h)
		resReused, err := eng.Run(context.Background(), reused, o)
		if err != nil {
			t.Fatalf("run %d (reused): %v", i, err)
		}
		fresh := stats.New(h)
		resFresh, err := sim.Run(context.Background(), net, fresh, o)
		if err != nil {
			t.Fatalf("run %d (fresh): %v", i, err)
		}
		if !resReused.Final.Equal(resFresh.Final) {
			t.Errorf("run %d: reused engine final marking %v != fresh %v", i, resReused.Final, resFresh.Final)
		}
		if resReused.Clock != resFresh.Clock || resReused.Starts != resFresh.Starts ||
			resReused.Ends != resFresh.Ends || resReused.Quiescent != resFresh.Quiescent {
			t.Errorf("run %d: summaries differ: %+v vs %+v", i, resReused, resFresh)
		}
		a, b := report(t, reused), report(t, fresh)
		if a != b {
			t.Errorf("run %d: reused engine statistics differ from fresh run", i)
		}
		reports = append(reports, a)
	}
	if reports[0] != reports[2] {
		t.Error("repeating a seed on a reused engine changed the outcome")
	}
}

func report(t *testing.T, s *stats.Stats) string {
	t.Helper()
	var b strings.Builder
	if err := s.Report(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestEngineReuseInterpreted: interpreted nets carry a mutable variable
// environment; reset must rebuild it from the net's declarations.
func TestEngineReuseInterpreted(t *testing.T) {
	net, err := pipeline.InterpretedProcessor(pipeline.DefaultParams(), pipeline.DefaultInstructionSet())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(net)
	first, err := eng.Run(context.Background(), nil, sim.Options{Horizon: 1_000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), nil, sim.Options{Horizon: 1_000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Final.Equal(second.Final) || first.Ends != second.Ends {
		t.Errorf("environment leaked across resets: %+v vs %+v", first, second)
	}
	for k, v := range first.Vars {
		if second.Vars[k] != v {
			t.Errorf("var %s: %d vs %d", k, v, second.Vars[k])
		}
	}
}
