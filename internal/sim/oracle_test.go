package sim

// This file freezes the pre-scheduler engine — the straightforward
// O(T)-scan-per-event implementation the paper describes — as a
// test-only oracle. The production engine (sim.go) replaced its linear
// scans with an indexed event scheduler; the contract is that for equal
// seeds the two produce byte-identical traces on every net. The
// property tests in sched_test.go and the benchmarks in
// sched_bench_test.go compare against this reference, so it must keep
// the original semantics verbatim:
//
//   - nextEventTime: linear scan over every transition per event;
//   - settle: rebuild the ripe set by scanning every transition per
//     firing, choose by relative frequency in ascending id order;
//   - completions: a container/heap ordered by (time, insertion seq).
//
// Do not "improve" this file; it is the semantics baseline.

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/petri"
	"repro/internal/trace"
)

type oracleCompletion struct {
	at    petri.Time
	seq   int64
	trans petri.TransID
}

type oracleCompletionHeap []oracleCompletion

func (h oracleCompletionHeap) Len() int { return len(h) }
func (h oracleCompletionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleCompletionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleCompletionHeap) Push(x any)   { *h = append(*h, x.(oracleCompletion)) }
func (h *oracleCompletionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type oracleTransState struct {
	enabled bool
	ripeAt  petri.Time // valid while enabled
	active  int        // concurrent firings in progress
}

// oracleEngine is the frozen linear-scan engine.
type oracleEngine struct {
	net   *petri.Net
	opt   Options
	rng   *rand.Rand
	src   rand.Source
	env   *expr.Env
	obs   trace.Observer
	clock petri.Time
	m     petri.Marking
	ts    []oracleTransState
	pend  oracleCompletionHeap
	seq   int64

	starts, ends int64

	deltas []trace.Delta
	ripe   []petri.TransID
}

func newOracleEngine(net *petri.Net) *oracleEngine {
	src := rand.NewSource(0)
	e := &oracleEngine{
		net: net,
		src: src,
		rng: rand.New(src),
		m:   make(petri.Marking, net.NumPlaces()),
		ts:  make([]oracleTransState, net.NumTrans()),
	}
	e.env = net.NewEnv(e.rng)
	return e
}

func (e *oracleEngine) reset(opt Options) {
	e.opt = opt
	e.src.Seed(opt.Seed)
	e.m = e.net.InitialMarkingInto(e.m)
	for i := range e.ts {
		e.ts[i] = oracleTransState{}
	}
	e.pend = e.pend[:0]
	e.clock, e.seq, e.starts, e.ends = 0, 0, 0, 0
	e.env = e.net.NewEnv(e.rng)
}

// Run simulates exactly like the original engine's Run.
func (e *oracleEngine) Run(obs trace.Observer, opt Options) (Result, error) {
	if opt.Horizon <= 0 && opt.MaxStarts <= 0 {
		return Result{}, errors.New("sim: Options must set Horizon or MaxStarts")
	}
	if opt.MaxStepsPerInstant <= 0 {
		opt.MaxStepsPerInstant = 1_000_000
	}
	if obs == nil {
		obs = trace.Discard
	}
	e.obs = obs
	e.reset(opt)
	if err := e.run(); err != nil {
		return Result{}, err
	}
	return Result{
		Clock:     e.clock,
		Starts:    e.starts,
		Ends:      e.ends,
		Quiescent: e.quiescent(),
		Final:     e.m.Clone(),
		Vars:      e.env.Snapshot(),
	}, nil
}

func (e *oracleEngine) quiescent() bool {
	if len(e.pend) > 0 {
		return false
	}
	for i := range e.ts {
		if e.ts[i].enabled && e.net.Trans[i].EffFreq() != 0 {
			return false
		}
	}
	return true
}

func (e *oracleEngine) emit(rec *trace.Record) error { return e.obs.Record(rec) }

func (e *oracleEngine) run() error {
	init := trace.Record{Kind: trace.Initial, Time: 0, Marking: e.m.Clone()}
	if err := e.emit(&init); err != nil {
		return err
	}
	if err := e.refreshAll(); err != nil {
		return err
	}
	if err := e.settle(); err != nil {
		return err
	}
	for !e.done() {
		next, any := e.nextEventTime()
		if !any {
			break // quiescent
		}
		if e.opt.Horizon > 0 && next > e.opt.Horizon {
			e.clock = e.opt.Horizon
			break
		}
		e.clock = next
		if err := e.completeDue(); err != nil {
			return err
		}
		if err := e.settle(); err != nil {
			return err
		}
	}
	if e.opt.Horizon > 0 && e.clock < e.opt.Horizon && e.quiescent() {
		e.clock = e.opt.Horizon
	}
	fin := trace.Record{Kind: trace.Final, Time: e.clock, Starts: e.starts, Ends: e.ends}
	return e.emit(&fin)
}

func (e *oracleEngine) done() bool {
	return e.opt.MaxStarts > 0 && e.starts >= e.opt.MaxStarts
}

// nextEventTime is the O(T) linear scan the scheduler replaced.
func (e *oracleEngine) nextEventTime() (petri.Time, bool) {
	var next petri.Time
	any := false
	if len(e.pend) > 0 {
		next = e.pend[0].at
		any = true
	}
	for i := range e.ts {
		st := &e.ts[i]
		if !st.enabled || e.capped(petri.TransID(i)) || e.net.Trans[i].EffFreq() == 0 {
			continue
		}
		if !any || st.ripeAt < next {
			next = st.ripeAt
			any = true
		}
	}
	return next, any
}

func (e *oracleEngine) capped(t petri.TransID) bool {
	s := e.net.Trans[t].Servers
	return s > 0 && e.ts[t].active >= s
}

func (e *oracleEngine) refresh(t petri.TransID) error {
	now, err := e.net.Enabled(t, e.m, e.env)
	if err != nil {
		return err
	}
	st := &e.ts[t]
	switch {
	case now && !st.enabled:
		st.enabled = true
		if err := e.startTimer(t); err != nil {
			return err
		}
	case !now && st.enabled:
		st.enabled = false
	}
	return nil
}

func (e *oracleEngine) startTimer(t petri.TransID) error {
	st := &e.ts[t]
	var d petri.Time
	if del := e.net.Trans[t].Enabling; del != nil {
		var err error
		d, err = del.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: enabling time of %q: %w", e.net.Trans[t].Name, err)
		}
		if d < 0 {
			return fmt.Errorf("sim: negative enabling time %d for %q", d, e.net.Trans[t].Name)
		}
	}
	st.ripeAt = e.clock + d
	return nil
}

func (e *oracleEngine) refreshAll() error {
	for i := range e.ts {
		if err := e.refresh(petri.TransID(i)); err != nil {
			return err
		}
	}
	return nil
}

func (e *oracleEngine) refreshAffected(places []trace.Delta, envChanged bool) error {
	for _, d := range places {
		for _, t := range e.net.Affected(d.Place) {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	if envChanged {
		for _, t := range e.net.Predicated() {
			if err := e.refresh(t); err != nil {
				return err
			}
		}
	}
	return nil
}

// settle rebuilds the ripe set with a full scan per firing.
func (e *oracleEngine) settle() error {
	for step := 0; ; step++ {
		if step > e.opt.MaxStepsPerInstant {
			return fmt.Errorf("%w (t=%d)", ErrLivelock, e.clock)
		}
		if e.done() {
			return nil
		}
		e.ripe = e.ripe[:0]
		for i := range e.ts {
			t := petri.TransID(i)
			st := &e.ts[i]
			if st.enabled && !e.capped(t) && st.ripeAt <= e.clock && e.net.Trans[i].EffFreq() != 0 {
				e.ripe = append(e.ripe, t)
			}
		}
		if len(e.ripe) == 0 {
			return nil
		}
		pick := e.choose(e.ripe)
		if err := e.fire(pick); err != nil {
			return err
		}
	}
}

func (e *oracleEngine) choose(ripe []petri.TransID) petri.TransID {
	if len(ripe) == 1 {
		return ripe[0]
	}
	total := 0.0
	for _, t := range ripe {
		total += e.net.Trans[t].EffFreq()
	}
	x := e.rng.Float64() * total
	for _, t := range ripe {
		x -= e.net.Trans[t].EffFreq()
		if x < 0 {
			return t
		}
	}
	return ripe[len(ripe)-1]
}

func (e *oracleEngine) fire(t petri.TransID) error {
	tr := &e.net.Trans[t]
	var dur petri.Time
	if tr.Firing != nil {
		var err error
		dur, err = tr.Firing.Sample(e.rng, e.env)
		if err != nil {
			return fmt.Errorf("sim: firing time of %q: %w", tr.Name, err)
		}
		if dur < 0 {
			return fmt.Errorf("sim: negative firing time %d for %q", dur, tr.Name)
		}
	}
	e.deltas = e.deltas[:0]
	for _, a := range tr.In {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: -a.Weight})
	}
	e.net.Consume(t, e.m)
	e.starts++
	rec := trace.Record{Kind: trace.Start, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&rec); err != nil {
		return err
	}
	if err := e.refreshAffected(e.deltas, false); err != nil {
		return err
	}
	if e.ts[t].enabled {
		if err := e.startTimer(t); err != nil {
			return err
		}
	}
	if dur == 0 {
		return e.complete(t)
	}
	e.ts[t].active++
	e.seq++
	heap.Push(&e.pend, oracleCompletion{at: e.clock + dur, seq: e.seq, trans: t})
	return nil
}

func (e *oracleEngine) complete(t petri.TransID) error {
	tr := &e.net.Trans[t]
	e.deltas = e.deltas[:0]
	for _, a := range tr.Out {
		e.deltas = append(e.deltas, trace.Delta{Place: a.Place, Change: a.Weight})
	}
	e.net.Produce(t, e.m)
	e.ends++
	envChanged := false
	if tr.Action != nil {
		if err := tr.Action.Exec(e.env); err != nil {
			return fmt.Errorf("sim: action of %q: %w", tr.Name, err)
		}
		envChanged = true
	}
	rec := trace.Record{Kind: trace.End, Time: e.clock, Trans: t, Deltas: e.deltas}
	if err := e.emit(&rec); err != nil {
		return err
	}
	return e.refreshAffected(e.deltas, envChanged)
}

func (e *oracleEngine) completeDue() error {
	for len(e.pend) > 0 && e.pend[0].at == e.clock {
		c := heap.Pop(&e.pend).(oracleCompletion)
		e.ts[c.trans].active--
		if err := e.complete(c.trans); err != nil {
			return err
		}
	}
	return nil
}
