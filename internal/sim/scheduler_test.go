package sim_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/modelgen"
	"repro/internal/petri"
	"repro/internal/ptl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// propertyNets collects the nets the indexed scheduler must reproduce
// the linear-scan oracle on: every checked-in .pn fixture plus freshly
// generated members of both modelgen families.
func propertyNets(t testing.TB) map[string]*petri.Net {
	t.Helper()
	nets := make(map[string]*petri.Net)
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.pn"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		net, err := ptl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		nets[filepath.Base(p)] = net
	}
	if len(nets) == 0 {
		t.Fatal("no .pn fixtures found under testdata")
	}
	for gseed := int64(1); gseed <= 4; gseed++ {
		net := modelgen.DeepPipeline(40, 5, gseed)
		nets[net.Name] = net
		net = modelgen.ForkJoin(5, 4, gseed)
		nets[net.Name] = net
	}
	return nets
}

// textTrace runs the run function and returns the run's text-encoded
// trace bytes together with its statistics snapshot and summary.
func textTrace(t *testing.T, net *petri.Net, run func(trace.Observer, sim.Options) (sim.Result, error), opt sim.Options) ([]byte, stats.Snapshot, sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewFormatWriter(&buf, trace.HeaderOf(net), trace.FormatText, false)
	if err != nil {
		t.Fatal(err)
	}
	acc := stats.New(trace.HeaderOf(net))
	res, err := run(trace.Tee{w, acc}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), acc.Snapshot(), res
}

// TestSchedulerMatchesOracle is the determinism contract of the indexed
// event scheduler: for every fixture and generated net, and several
// seeds each, the new engine and the frozen linear-scan oracle produce
// byte-identical text traces, equal statistics snapshots and equal run
// summaries.
func TestSchedulerMatchesOracle(t *testing.T) {
	for name, net := range propertyNets(t) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				opt := sim.Options{Seed: seed, Horizon: 2_000}
				eng := sim.NewEngine(net)
				gotTrace, gotStats, gotRes := textTrace(t, net, func(obs trace.Observer, o sim.Options) (sim.Result, error) {
					return eng.Run(context.Background(), obs, o)
				}, opt)
				oracle := sim.NewOracle(net)
				wantTrace, wantStats, wantRes := textTrace(t, net, oracle.Run, opt)
				if !bytes.Equal(gotTrace, wantTrace) {
					t.Fatalf("seed %d: traces differ\n--- indexed (%d bytes)\n%s\n--- oracle (%d bytes)\n%s",
						seed, len(gotTrace), firstDiffContext(gotTrace, wantTrace), len(wantTrace), firstDiffContext(wantTrace, gotTrace))
				}
				if !reflect.DeepEqual(gotStats, wantStats) {
					t.Fatalf("seed %d: statistics snapshots differ", seed)
				}
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("seed %d: run summaries differ:\nindexed %+v\noracle  %+v", seed, gotRes, wantRes)
				}
			}
		})
	}
}

// firstDiffContext returns a few lines around the first difference, so
// a failure shows where the traces fork rather than two full dumps.
func firstDiffContext(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("...%s...", a[lo:hi])
}

// TestEngineReuseMatchesOracle pins that a reused engine (the
// experiment drivers' hot path) replays the oracle exactly on its
// second and later runs too — reset must leave no scheduler state
// behind.
func TestEngineReuseMatchesOracle(t *testing.T) {
	net := modelgen.DeepPipeline(24, 4, 9)
	eng := sim.NewEngine(net)
	for seed := int64(7); seed >= 3; seed-- { // descending: reuse out of order
		opt := sim.Options{Seed: seed, Horizon: 1_500}
		gotTrace, _, _ := textTrace(t, net, func(obs trace.Observer, o sim.Options) (sim.Result, error) {
			return eng.Run(context.Background(), obs, o)
		}, opt)
		oracle := sim.NewOracle(net)
		wantTrace, _, _ := textTrace(t, net, oracle.Run, opt)
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Fatalf("seed %d (reused engine): traces differ", seed)
		}
	}
}

// TestRunAllocsPerEvent is the firing-path allocation budget: zero
// allocations per event. Per-run setup (environment, result marking)
// does allocate, so the test measures the same warm engine over a short
// and a 16x longer horizon — any per-event allocation would make the
// long run's figure strictly larger.
func TestRunAllocsPerEvent(t *testing.T) {
	net := modelgen.DeepPipeline(48, 6, 2)
	eng := sim.NewEngine(net)
	runWith := func(h petri.Time) func() {
		opt := sim.Options{Seed: 1, Horizon: h}
		return func() {
			if _, err := eng.Run(context.Background(), nil, opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	short, long := petri.Time(500), petri.Time(8_000)
	// Warm the engine so buffers (event queue, ripe list) are grown.
	runWith(long)()
	allocsShort := testing.AllocsPerRun(10, runWith(short))
	allocsLong := testing.AllocsPerRun(10, runWith(long))
	if allocsLong > allocsShort {
		t.Fatalf("per-event allocations on the firing path: short horizon %v allocs/run, long horizon %v allocs/run (want equal: 0 allocs/event)",
			allocsShort, allocsLong)
	}
}

// TestRunContextCancel covers both context paths: an already-cancelled
// context fails before any event, and a context cancelled mid-run stops
// the run at a later batch boundary with the context's error.
func TestRunContextCancel(t *testing.T) {
	net := modelgen.DeepPipeline(32, 4, 5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Run(ctx, net, nil, sim.Options{Seed: 1, Horizon: 100}); err != context.Canceled {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	events := 0
	obs := trace.ObserverFunc(func(rec *trace.Record) error {
		if events++; events == 100 {
			cancel()
		}
		return nil
	})
	// A horizon far beyond the cancellation point: the run must stop on
	// the context well before simulating all of it.
	_, err := sim.Run(ctx, net, obs, sim.Options{Seed: 1, Horizon: 50_000_000})
	if err != context.Canceled {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
}

// benchNet is the benchmark workload: a deep pipeline large enough that
// the ripe set and event queue stay busy.
func benchNet() *petri.Net { return modelgen.DeepPipeline(256, 32, 1) }

const benchHorizon = 20_000

// BenchmarkEngineIndexed measures the indexed-scheduler engine;
// compare with BenchmarkEngineLinearOracle for the rearchitecture's
// speedup. Metrics are events (completed firings) per second.
func BenchmarkEngineIndexed(b *testing.B) {
	net := benchNet()
	eng := sim.NewEngine(net)
	opt := sim.Options{Seed: 1, Horizon: benchHorizon}
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(context.Background(), nil, opt)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Ends
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineLinearOracle measures the frozen linear-scan engine on
// the same workload.
func BenchmarkEngineLinearOracle(b *testing.B) {
	net := benchNet()
	opt := sim.Options{Seed: 1, Horizon: benchHorizon}
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.NewOracle(net).Run(nil, opt)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Ends
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
