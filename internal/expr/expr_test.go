package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func env(t *testing.T) *Env {
	t.Helper()
	return NewEnv(rand.New(rand.NewSource(1)))
}

func eval(t *testing.T, src string, e *Env) int64 {
	t.Helper()
	ex, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ex.Eval(e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 4 - 3", 3},
		{"7 / 2", 3},
		{"7 % 3", 1},
		{"-5 + 2", -3},
		{"- -5", 5},
		{"2 * -3", -6},
		{"100 / 10 / 5", 2},
	}
	for _, c := range cases {
		if got := eval(t, c.src, env(t)); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 == 1", 1},
		{"1 != 1", 0},
		{"2 < 3", 1},
		{"3 <= 3", 1},
		{"3 > 3", 0},
		{"4 >= 3", 1},
		{"1 && 0", 0},
		{"1 && 2", 1},
		{"0 || 0", 0},
		{"0 || 5", 1},
		{"!0", 1},
		{"!7", 0},
		{"1 < 2 && 2 < 3", 1},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"1 ? 0 ? 1 : 2 : 3", 2},
	}
	for _, c := range cases {
		if got := eval(t, c.src, env(t)); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right must not be reached.
	e := env(t)
	if got := eval(t, "0 && (1 / 0)", e); got != 0 {
		t.Errorf("short-circuit &&: got %d", got)
	}
	if got := eval(t, "1 || (1 / 0)", e); got != 1 {
		t.Errorf("short-circuit ||: got %d", got)
	}
}

func TestVariablesAndTables(t *testing.T) {
	e := env(t)
	e.Set("x", 42)
	e.SetTable("operands", []int64{0, 1, 2})
	if got := eval(t, "x + 1", e); got != 43 {
		t.Errorf("x + 1 = %d", got)
	}
	if got := eval(t, "operands[2]", e); got != 2 {
		t.Errorf("operands[2] = %d", got)
	}
	if got := eval(t, "operands[x - 41]", e); got != 1 {
		t.Errorf("operands[x-41] = %d", got)
	}
	if got := eval(t, "len(operands)", e); got != 3 {
		t.Errorf("len = %d", got)
	}
}

func TestBuiltins(t *testing.T) {
	e := env(t)
	if got := eval(t, "abs(-7)", e); got != 7 {
		t.Errorf("abs = %d", got)
	}
	if got := eval(t, "min(3, 1, 2)", e); got != 1 {
		t.Errorf("min = %d", got)
	}
	if got := eval(t, "max(3, 9, 2)", e); got != 9 {
		t.Errorf("max = %d", got)
	}
	if got := eval(t, "sum(1, 2, 3, 4)", e); got != 10 {
		t.Errorf("sum = %d", got)
	}
}

func TestIrandRange(t *testing.T) {
	e := env(t)
	ex := MustParseExpr("irand(1, 3)")
	seen := make(map[int64]int)
	for i := 0; i < 3000; i++ {
		v, err := ex.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		if v < 1 || v > 3 {
			t.Fatalf("irand out of range: %d", v)
		}
		seen[v]++
	}
	for v := int64(1); v <= 3; v++ {
		if seen[v] < 500 {
			t.Errorf("irand value %d seen only %d times in 3000", v, seen[v])
		}
	}
}

func TestIrandWithoutRand(t *testing.T) {
	e := NewEnv(nil)
	ex := MustParseExpr("irand(1, 3)")
	if _, err := ex.Eval(e); err == nil {
		t.Error("irand without random source should fail")
	}
}

func TestProgramExec(t *testing.T) {
	// The paper's Decode action, modulo syntax.
	e := env(t)
	e.Set("max_type", 3)
	e.SetTable("operands", []int64{0, 0, 1, 2}) // index 0 unused
	prog, err := Parse(`
		type = irand(1, max_type);
		number_of_operands_needed = operands[type];
	`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := prog.Exec(e); err != nil {
			t.Fatal(err)
		}
		ty, _ := e.Get("type")
		n, _ := e.Get("number_of_operands_needed")
		if ty < 1 || ty > 3 {
			t.Fatalf("type out of range: %d", ty)
		}
		if n != ty-1 {
			t.Fatalf("operands[%d] = %d, want %d", ty, n, ty-1)
		}
	}
}

func TestProgramTableAssign(t *testing.T) {
	e := env(t)
	e.SetTable("t", []int64{1, 2, 3})
	prog := MustParse("t[1] = 42; x = t[1];")
	if err := prog.Exec(e); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Get("x"); v != 42 {
		t.Errorf("x = %d, want 42", v)
	}
}

func TestDecrementAction(t *testing.T) {
	// The paper's end-fetch action.
	e := env(t)
	e.Set("number_of_operands_needed", 2)
	prog := MustParse("number_of_operands_needed = number_of_operands_needed - 1")
	for want := int64(1); want >= 0; want-- {
		if err := prog.Exec(e); err != nil {
			t.Fatal(err)
		}
		if v, _ := e.Get("number_of_operands_needed"); v != want {
			t.Fatalf("after decrement: %d, want %d", v, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 +",
		"(1 + 2",
		"foo(",
		"x = ",
		"1 ? 2",
		"t[",
		"@",
		"nosuchfn(1)",
		"1 2",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			if _, err2 := Parse(src); err2 == nil {
				t.Errorf("expected error parsing %q", src)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	e := env(t)
	e.SetTable("t", []int64{1})
	bad := []string{
		"undefined_var",
		"1 / 0",
		"1 % 0",
		"t[5]",
		"t[-1]",
		"nosuchtable[0]",
		"irand(3, 1)",
	}
	for _, src := range bad {
		ex, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := ex.Eval(e); err == nil {
			t.Errorf("expected eval error for %q", src)
		}
	}
}

func TestExternalLookup(t *testing.T) {
	e := env(t)
	e.External = func(name string) (int64, bool) {
		if name == "Bus_busy" {
			return 1, true
		}
		return 0, false
	}
	if got := eval(t, "Bus_busy + 1", e); got != 2 {
		t.Errorf("external lookup: %d", got)
	}
	// Bound variables shadow external names.
	e.Set("Bus_busy", 10)
	if got := eval(t, "Bus_busy", e); got != 10 {
		t.Errorf("shadowing: %d", got)
	}
}

func TestNames(t *testing.T) {
	ex := MustParseExpr("a + b * tbl[c] + a")
	got := Names(ex)
	want := []string{"a", "b", "tbl", "c"}
	if len(got) != len(want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"1 + 2 * 3",
		"a && b || !c",
		"min(1, x)",
		"t[i + 1]",
		"(a < b ? a : b)",
	}
	for _, src := range srcs {
		ex, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		re, err := ParseExpr(ex.String())
		if err != nil {
			t.Fatalf("reparse of %q (%q): %v", src, ex.String(), err)
		}
		if re.String() != ex.String() {
			t.Errorf("round trip %q: %q != %q", src, re.String(), ex.String())
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	e := env(t)
	e.Set("x", 1)
	e.SetTable("t", []int64{1, 2})
	c := e.Clone()
	c.Set("x", 2)
	MustParse("t[0] = 99").Exec(c)
	if v, _ := e.Get("x"); v != 1 {
		t.Errorf("clone mutated parent var: %d", v)
	}
	if tbl, _ := e.Table("t"); tbl[0] != 1 {
		t.Errorf("clone mutated parent table: %d", tbl[0])
	}
}

func TestKindAndTokenStrings(t *testing.T) {
	if EOF.String() != "end of input" || PLUS.String() != "'+'" {
		t.Errorf("Kind strings: %s %s", EOF, PLUS)
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind should still render")
	}
	toks, err := lexAll("x 5 +")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].String() != "x" || toks[1].String() != "5" || toks[2].String() != "'+'" {
		t.Errorf("token strings: %v", toks)
	}
}

func TestCommentsInSource(t *testing.T) {
	e := env(t)
	prog, err := Parse("x = 1; # set x\ny = x + 1; # and y\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Exec(e); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Get("y"); v != 2 {
		t.Errorf("y = %d", v)
	}
}

func TestBuiltinArgCountErrors(t *testing.T) {
	for _, src := range []string{"irand(1)", "abs(1, 2)", "min(1)", "len(1)", "len(t, u)"} {
		ex, err := ParseExpr(src)
		if err != nil {
			continue // some fail at parse, which is fine too
		}
		if _, err := ex.Eval(env(t)); err == nil {
			t.Errorf("%q should fail to evaluate", src)
		}
	}
}

func TestProgramStringAndStmtString(t *testing.T) {
	p := MustParse("x = 1; t[0] = 2;")
	if p.String() == "" {
		t.Error("empty program string")
	}
	if !strings.Contains(p.Stmts[1].String(), "t[0] = 2") {
		t.Errorf("stmt string: %s", p.Stmts[1].String())
	}
	// A synthesized program (no source) renders from its statements.
	p2 := &Program{Stmts: p.Stmts}
	if !strings.Contains(p2.String(), "x = 1;") {
		t.Errorf("synthesized program string: %s", p2)
	}
}

func TestVarNamesSorted(t *testing.T) {
	e := env(t)
	e.Set("zz", 1)
	e.Set("aa", 2)
	names := e.VarNames()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Errorf("VarNames = %v", names)
	}
	if e.Fingerprint() != "aa=2;zz=1;" {
		t.Errorf("Fingerprint = %q", e.Fingerprint())
	}
}

// Property: for random integers, the parser/evaluator agrees with Go on a
// sampled arithmetic expression shape.
func TestQuickArithmeticAgree(t *testing.T) {
	f := func(a, b, c int32) bool {
		e := env(t)
		e.Set("a", int64(a))
		e.Set("b", int64(b))
		e.Set("c", int64(c))
		got := eval(t, "a * b + c - a", e)
		want := int64(a)*int64(b) + int64(c) - int64(a)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String() of a parsed expression reparses to an equal tree
// (checked via String equality) for a corpus of generated expressions.
func TestQuickStringStable(t *testing.T) {
	f := func(x, y uint8) bool {
		src := strings.Join([]string{
			"(", "1", "+", "2", "*", "3", ")", "%", "7",
		}, " ")
		_ = x
		_ = y
		ex, err := ParseExpr(src)
		if err != nil {
			return false
		}
		re, err := ParseExpr(ex.String())
		return err == nil && re.String() == ex.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
