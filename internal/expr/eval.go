package expr

import "fmt"

// An EvalError reports a runtime evaluation failure (undefined name,
// division by zero, bad table index, ...).
type EvalError struct {
	Node string
	Msg  string
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: eval %s: %s", e.Node, e.Msg)
}

func evalErr(node Expr, format string, args ...any) error {
	return &EvalError{Node: node.String(), Msg: fmt.Sprintf(format, args...)}
}

var builtins = map[string]struct{ min, max int }{
	"irand": {2, 2}, // irand(lo, hi): uniform integer in [lo, hi]
	"abs":   {1, 1},
	"min":   {2, -1},
	"max":   {2, -1},
	"len":   {1, 1}, // len(table) — argument must be a bare table name
	"sum":   {1, -1},
}

func isBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func (e *IntLit) Eval(env *Env) (int64, error) { return e.Val, nil }

func (e *VarRef) Eval(env *Env) (int64, error) {
	if v, ok := env.Get(e.Name); ok {
		return v, nil
	}
	return 0, evalErr(e, "undefined name %q", e.Name)
}

func (e *Index) Eval(env *Env) (int64, error) {
	tbl, ok := env.Table(e.Name)
	if !ok {
		return 0, evalErr(e, "undefined table %q", e.Name)
	}
	i, err := e.Idx.Eval(env)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= int64(len(tbl)) {
		return 0, evalErr(e, "index %d out of range for table %q (len %d)", i, e.Name, len(tbl))
	}
	return tbl[i], nil
}

func (e *Call) Eval(env *Env) (int64, error) {
	sig, ok := builtins[e.Name]
	if !ok {
		return 0, evalErr(e, "unknown function %q", e.Name)
	}
	if len(e.Args) < sig.min || (sig.max >= 0 && len(e.Args) > sig.max) {
		return 0, evalErr(e, "wrong argument count %d for %s", len(e.Args), e.Name)
	}
	// len(table) takes a table name rather than a value.
	if e.Name == "len" {
		ref, ok := e.Args[0].(*VarRef)
		if !ok {
			return 0, evalErr(e, "len requires a table name")
		}
		tbl, ok := env.Table(ref.Name)
		if !ok {
			return 0, evalErr(e, "undefined table %q", ref.Name)
		}
		return int64(len(tbl)), nil
	}
	args := make([]int64, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	switch e.Name {
	case "irand":
		lo, hi := args[0], args[1]
		if lo > hi {
			return 0, evalErr(e, "irand(%d, %d): empty range", lo, hi)
		}
		if env.Rand == nil {
			return 0, evalErr(e, "irand used without a random source")
		}
		return lo + env.Rand.Int63n(hi-lo+1), nil
	case "abs":
		if args[0] < 0 {
			return -args[0], nil
		}
		return args[0], nil
	case "min":
		m := args[0]
		for _, v := range args[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case "max":
		m := args[0]
		for _, v := range args[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case "sum":
		var s int64
		for _, v := range args {
			s += v
		}
		return s, nil
	}
	return 0, evalErr(e, "unimplemented builtin %q", e.Name)
}

func (e *Unary) Eval(env *Env) (int64, error) {
	v, err := e.X.Eval(env)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case MINUS:
		return -v, nil
	case NOT:
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 0, evalErr(e, "bad unary operator")
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (e *Binary) Eval(env *Env) (int64, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit logical operators.
	switch e.Op {
	case AND:
		if l == 0 {
			return 0, nil
		}
		r, err := e.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	case OR:
		if l != 0 {
			return 1, nil
		}
		r, err := e.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(r != 0), nil
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch e.Op {
	case PLUS:
		return l + r, nil
	case MINUS:
		return l - r, nil
	case STAR:
		return l * r, nil
	case SLASH:
		if r == 0 {
			return 0, evalErr(e, "division by zero")
		}
		return l / r, nil
	case PCT:
		if r == 0 {
			return 0, evalErr(e, "modulo by zero")
		}
		return l % r, nil
	case EQ:
		return boolVal(l == r), nil
	case NE:
		return boolVal(l != r), nil
	case LT:
		return boolVal(l < r), nil
	case LE:
		return boolVal(l <= r), nil
	case GT:
		return boolVal(l > r), nil
	case GE:
		return boolVal(l >= r), nil
	}
	return 0, evalErr(e, "bad binary operator")
}

func (e *Cond) Eval(env *Env) (int64, error) {
	c, err := e.If.Eval(env)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return e.Then.Eval(env)
	}
	return e.Else.Eval(env)
}

// EvalBool evaluates e and interprets the result as a boolean
// (nonzero = true). Transition predicates are evaluated this way.
func EvalBool(e Expr, env *Env) (bool, error) {
	v, err := e.Eval(env)
	return v != 0, err
}

// Exec runs every statement of the program in order. Assigning to an
// unbound variable creates it; assigning to a table element requires the
// table to exist and the index to be in range.
func (p *Program) Exec(env *Env) error {
	for i := range p.Stmts {
		s := &p.Stmts[i]
		v, err := s.RHS.Eval(env)
		if err != nil {
			return err
		}
		if s.Idx == nil {
			env.Set(s.Name, v)
			continue
		}
		tbl, ok := env.Table(s.Name)
		if !ok {
			return &EvalError{Node: s.String(), Msg: fmt.Sprintf("undefined table %q", s.Name)}
		}
		idx, err := s.Idx.Eval(env)
		if err != nil {
			return err
		}
		if idx < 0 || idx >= int64(len(tbl)) {
			return &EvalError{Node: s.String(), Msg: fmt.Sprintf("index %d out of range for table %q", idx, s.Name)}
		}
		// Table returned a copy-on-write view? No: SetTable copies in, and
		// Table returns the live slice, so write through it.
		env.tables[s.Name][idx] = v
	}
	return nil
}

// MustParseExpr is ParseExpr that panics on error; for statically known
// model source (the pipeline models).
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}
