// Package expr implements the small expression/statement language used by
// interpreted Petri nets (transition predicates and actions, Section 3 of
// the paper) and by Tracertool user-defined functions (Section 4.4).
//
// The language operates on 64-bit integers. It supports variables, integer
// tables (arrays), arithmetic, comparisons, boolean connectives, a
// conditional operator, assignment statements and a handful of builtins —
// most importantly irand(lo, hi), the paper's random instruction-type
// selector.
//
// The paper writes actions in a bracketed form such as
//
//	[[][type]  type = irand[1, max-type]; ... ]
//
// We use a conventional C-like surface syntax instead:
//
//	type = irand(1, max_type); number_of_operands_needed = operands[type];
//
// Identifiers use underscores where the paper uses hyphens (hyphens would
// be ambiguous with subtraction).
package expr

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	INT
	IDENT
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	PCT    // %
	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	COMMA  // ,
	SEMI   // ;
	ASSIGN // =
	EQ     // ==
	NE     // !=
	LT     // <
	LE     // <=
	GT     // >
	GE     // >=
	AND    // &&
	OR     // ||
	NOT    // !
	QUEST  // ?
	COLON  // :
)

var kindNames = map[Kind]string{
	EOF: "end of input", INT: "integer", IDENT: "identifier",
	PLUS: "'+'", MINUS: "'-'", STAR: "'*'", SLASH: "'/'", PCT: "'%'",
	LPAREN: "'('", RPAREN: "')'", LBRACK: "'['", RBRACK: "']'",
	COMMA: "','", SEMI: "';'", ASSIGN: "'='", EQ: "'=='", NE: "'!='",
	LT: "'<'", LE: "'<='", GT: "'>'", GE: "'>='",
	AND: "'&&'", OR: "'||'", NOT: "'!'", QUEST: "'?'", COLON: "':'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical token with its source position (byte offset).
type Token struct {
	Kind Kind
	Text string // for INT and IDENT
	Val  int64  // for INT
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case INT, IDENT:
		return t.Text
	default:
		return t.Kind.String()
	}
}
