package expr

import (
	"fmt"
	"math/rand"
	"sort"
)

// Env holds the variable and table state an expression evaluates against:
// the "data" part of an interpreted net. An Env also carries the random
// source used by irand and an optional External lookup through which
// Tracertool resolves place and transition names in user-defined
// functions.
type Env struct {
	vars   map[string]int64
	tables map[string][]int64

	// Rand is the random source for irand. It may be nil, in which case
	// irand reports an error (useful for side-effect-free analysis such as
	// reachability, where randomness must be rejected).
	Rand *rand.Rand

	// External, if non-nil, resolves names not bound as variables. Lookups
	// fall back to it before reporting an undefined-variable error.
	External func(name string) (int64, bool)
}

// NewEnv returns an empty environment using r for irand.
func NewEnv(r *rand.Rand) *Env {
	return &Env{
		vars:   make(map[string]int64),
		tables: make(map[string][]int64),
		Rand:   r,
	}
}

// Set binds variable name to v.
func (e *Env) Set(name string, v int64) { e.vars[name] = v }

// Get reads variable name, consulting External for unbound names.
func (e *Env) Get(name string) (int64, bool) {
	if v, ok := e.vars[name]; ok {
		return v, true
	}
	if e.External != nil {
		return e.External(name)
	}
	return 0, false
}

// SetTable binds a table. Tables are indexed zero-based by the language.
func (e *Env) SetTable(name string, vals []int64) {
	e.tables[name] = append([]int64(nil), vals...)
}

// Table returns the table bound to name.
func (e *Env) Table(name string) ([]int64, bool) {
	t, ok := e.tables[name]
	return t, ok
}

// VarNames returns the bound variable names in sorted order.
func (e *Env) VarNames() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the variable and table state. The random
// source and External hook are shared.
func (e *Env) Clone() *Env {
	c := NewEnv(e.Rand)
	c.External = e.External
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.tables {
		c.tables[k] = append([]int64(nil), v...)
	}
	return c
}

// Snapshot returns the variable state as a plain map (for traces and
// debugging).
func (e *Env) Snapshot() map[string]int64 {
	m := make(map[string]int64, len(e.vars))
	for k, v := range e.vars {
		m[k] = v
	}
	return m
}

// Fingerprint returns a deterministic string encoding of the variable
// state; the reachability analyzer uses it to hash interpreted-net states.
func (e *Env) Fingerprint() string {
	names := e.VarNames()
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%d;", n, e.vars[n])
	}
	return s
}
