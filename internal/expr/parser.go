package expr

// Recursive-descent parser. Precedence (loosest to tightest):
//
//	?:   conditional
//	||
//	&&
//	== != < <= > >=
//	+ -
//	* / %
//	unary - !
//	literals, names, table[index], builtin(args), (expr)

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return Token{}, errAt(t.Pos, "expected %s, found %s", k, t)
	}
	return p.advance(), nil
}

// ParseExpr parses a single expression, e.g. a transition predicate.
func ParseExpr(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != EOF {
		return nil, errAt(t.Pos, "unexpected %s after expression", t)
	}
	return e, nil
}

// Parse parses a statement sequence, e.g. a transition action. Trailing
// semicolons are optional after the final statement.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{src: src}
	for p.peek().Kind != EOF {
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, st)
		// Consume statement separators.
		for p.peek().Kind == SEMI {
			p.advance()
		}
	}
	return prog, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return Stmt{}, err
	}
	var idx Expr
	if p.peek().Kind == LBRACK {
		p.advance()
		idx, err = p.parseCond()
		if err != nil {
			return Stmt{}, err
		}
		if _, err := p.expect(RBRACK); err != nil {
			return Stmt{}, err
		}
	}
	if _, err := p.expect(ASSIGN); err != nil {
		return Stmt{}, err
	}
	rhs, err := p.parseCond()
	if err != nil {
		return Stmt{}, err
	}
	return Stmt{Name: name.Text, Idx: idx, RHS: rhs}, nil
}

func (p *parser) parseCond() (Expr, error) {
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != QUEST {
		return cond, nil
	}
	p.advance()
	then, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	els, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return &Cond{If: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == OR {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OR, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == AND {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: AND, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	switch k := p.peek().Kind; k {
	case EQ, NE, LT, LE, GT, GE:
		p.advance()
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: k, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseSum() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		if k != PLUS && k != MINUS {
			return l, nil
		}
		p.advance()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: k, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		if k != STAR && k != SLASH && k != PCT {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: k, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch k := p.peek().Kind; k {
	case MINUS, NOT:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: k, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case INT:
		p.advance()
		return &IntLit{Val: t.Val}, nil
	case LPAREN:
		p.advance()
		e, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT:
		p.advance()
		switch p.peek().Kind {
		case LPAREN:
			p.advance()
			var args []Expr
			if p.peek().Kind != RPAREN {
				for {
					a, err := p.parseCond()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind != COMMA {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			if !isBuiltin(t.Text) {
				return nil, errAt(t.Pos, "unknown function %q", t.Text)
			}
			return &Call{Name: t.Text, Args: args}, nil
		case LBRACK:
			p.advance()
			idx, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			return &Index{Name: t.Text, Idx: idx}, nil
		}
		return &VarRef{Name: t.Text}, nil
	}
	return nil, errAt(t.Pos, "expected expression, found %s", t)
}
