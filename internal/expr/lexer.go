package expr

import (
	"fmt"
	"strconv"
)

// A SyntaxError reports a lexical or parse error with its byte offset in
// the source text.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lexer scans a source string into tokens on demand.
type lexer struct {
	src string
	pos int
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch c := l.src[l.pos]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isDigit(c):
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, errAt(start, "bad integer literal %q", text)
		}
		return Token{Kind: INT, Text: text, Val: v, Pos: start}, nil
	case isLetter(c):
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: IDENT, Text: l.src[start:l.pos], Pos: start}, nil
	}
	l.pos++
	two := func(k Kind) (Token, error) {
		l.pos++
		return Token{Kind: k, Pos: start}, nil
	}
	peek := byte(0)
	if l.pos < len(l.src) {
		peek = l.src[l.pos]
	}
	switch c {
	case '+':
		return Token{Kind: PLUS, Pos: start}, nil
	case '-':
		return Token{Kind: MINUS, Pos: start}, nil
	case '*':
		return Token{Kind: STAR, Pos: start}, nil
	case '/':
		return Token{Kind: SLASH, Pos: start}, nil
	case '%':
		return Token{Kind: PCT, Pos: start}, nil
	case '(':
		return Token{Kind: LPAREN, Pos: start}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: start}, nil
	case '[':
		return Token{Kind: LBRACK, Pos: start}, nil
	case ']':
		return Token{Kind: RBRACK, Pos: start}, nil
	case ',':
		return Token{Kind: COMMA, Pos: start}, nil
	case ';':
		return Token{Kind: SEMI, Pos: start}, nil
	case '?':
		return Token{Kind: QUEST, Pos: start}, nil
	case ':':
		return Token{Kind: COLON, Pos: start}, nil
	case '=':
		if peek == '=' {
			return two(EQ)
		}
		return Token{Kind: ASSIGN, Pos: start}, nil
	case '!':
		if peek == '=' {
			return two(NE)
		}
		return Token{Kind: NOT, Pos: start}, nil
	case '<':
		if peek == '=' {
			return two(LE)
		}
		return Token{Kind: LT, Pos: start}, nil
	case '>':
		if peek == '=' {
			return two(GE)
		}
		return Token{Kind: GT, Pos: start}, nil
	case '&':
		if peek == '&' {
			return two(AND)
		}
	case '|':
		if peek == '|' {
			return two(OR)
		}
	}
	return Token{}, errAt(start, "unexpected character %q", string(c))
}

// lexAll scans the entire source, returning all tokens including the
// trailing EOF.
func lexAll(src string) ([]Token, error) {
	l := &lexer{src: src}
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
