package expr

import "testing"

// FuzzParseExpr hardens the expression parser used for .pn delay
// expressions and transition predicates: arbitrary input must either
// error or produce an AST whose String form re-parses to the same
// String (the printer and parser agree on precedence and syntax).
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"1", "x", "a + b * 2", "-(x)", "!(a < b)", "tb[i + 1]",
		"a ? b : c", "min(a, max(b, 3))", "rand(10)",
		"(a && b) || !(c == d)", "x % (y - 1)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		s := e.String()
		e2, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\ninput: %q\nprinted: %q", err, src, s)
		}
		if s2 := e2.String(); s2 != s {
			t.Fatalf("String is not stable:\nfirst:  %q\nsecond: %q", s, s2)
		}
	})
}

// FuzzParseProgram does the same for action bodies (statement lists).
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		"x = 1;", "x = x + 1; y = tb[x];", "", "x = a ? 1 : 0;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\ninput: %q\nprinted: %q", err, src, s)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String is not stable:\nfirst:  %q\nsecond: %q", s, s2)
		}
	})
}
