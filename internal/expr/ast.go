package expr

import (
	"fmt"
	"strings"
)

// Expr is a node of the expression tree. Expressions evaluate to int64;
// boolean contexts treat nonzero as true.
type Expr interface {
	// Eval evaluates the expression in env.
	Eval(env *Env) (int64, error)
	// String renders the expression back to source form.
	String() string
	// walk visits this node and its children.
	walk(fn func(Expr))
}

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// VarRef reads a variable (or an external name such as a place; see
// Env.External).
type VarRef struct{ Name string }

// Index reads element [Idx] of table Name (zero-based).
type Index struct {
	Name string
	Idx  Expr
}

// Call invokes a builtin function: irand, abs, min, max, len, sum.
type Call struct {
	Name string
	Args []Expr
}

// Unary is -X or !X.
type Unary struct {
	Op Kind // MINUS or NOT
	X  Expr
}

// Binary is a binary operation (arithmetic, comparison, && / ||).
// && and || short-circuit.
type Binary struct {
	Op   Kind
	L, R Expr
}

// Cond is the ternary conditional If ? Then : Else.
type Cond struct {
	If, Then, Else Expr
}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Val) }
func (e *VarRef) String() string { return e.Name }
func (e *Index) String() string  { return fmt.Sprintf("%s[%s]", e.Name, e.Idx) }

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

var opText = map[Kind]string{
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PCT: "%",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	AND: "&&", OR: "||", NOT: "!",
}

func (e *Unary) String() string {
	return fmt.Sprintf("%s%s", opText[e.Op], e.X)
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, opText[e.Op], e.R)
}

func (e *Cond) String() string {
	return fmt.Sprintf("(%s ? %s : %s)", e.If, e.Then, e.Else)
}

func (e *IntLit) walk(fn func(Expr)) { fn(e) }
func (e *VarRef) walk(fn func(Expr)) { fn(e) }
func (e *Index) walk(fn func(Expr))  { fn(e); e.Idx.walk(fn) }
func (e *Call) walk(fn func(Expr)) {
	fn(e)
	for _, a := range e.Args {
		a.walk(fn)
	}
}
func (e *Unary) walk(fn func(Expr))  { fn(e); e.X.walk(fn) }
func (e *Binary) walk(fn func(Expr)) { fn(e); e.L.walk(fn); e.R.walk(fn) }
func (e *Cond) walk(fn func(Expr)) {
	fn(e)
	e.If.walk(fn)
	e.Then.walk(fn)
	e.Else.walk(fn)
}

// Stmt is a statement: an assignment to a variable or a table element.
type Stmt struct {
	Name string
	Idx  Expr // nil for plain variable assignment
	RHS  Expr
}

func (s *Stmt) String() string {
	if s.Idx != nil {
		return fmt.Sprintf("%s[%s] = %s;", s.Name, s.Idx, s.RHS)
	}
	return fmt.Sprintf("%s = %s;", s.Name, s.RHS)
}

// Program is a sequence of statements — the body of a transition action.
type Program struct {
	Stmts []Stmt
	src   string
}

func (p *Program) String() string {
	if p.src != "" {
		return p.src
	}
	parts := make([]string, len(p.Stmts))
	for i := range p.Stmts {
		parts[i] = p.Stmts[i].String()
	}
	return strings.Join(parts, " ")
}

// Names returns every variable, table and call name referenced by e, in
// first-appearance order. Tracertool uses this to resolve which places and
// transitions a user-defined function observes.
func Names(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	e.walk(func(n Expr) {
		switch x := n.(type) {
		case *VarRef:
			add(x.Name)
		case *Index:
			add(x.Name)
		}
	})
	return out
}
