package ptl

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse hardens the .pn parser: arbitrary input must either fail
// with a ParseError-style error or yield a net that round-trips —
// Format output re-parses, and re-formatting is a fixed point. The
// seed corpus is every checked-in .pn model plus hand-picked edge
// cases; regression entries live in testdata/fuzz/FuzzParse.
func FuzzParse(f *testing.F) {
	pns, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.pn"))
	if err != nil {
		f.Fatal(err)
	}
	for _, pn := range pns {
		src, err := os.ReadFile(pn)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("net x\nplace p init 3\ntrans t\n  in p*2\n  out p\n  firing uniform(1, 3)\n")
	f.Add("net x\ntrans t\n  firing choice(1:0.5, 2:0.3, 50:0.2)\n  freq 2\n  servers 3\n")
	f.Add("net x\nvar v 1\ntable tb 0 1 2\ntrans t\n  pred { v > 0 }\n  action { v = v - 1; }\n  enabling expr{ tb[v] }\n")
	f.Add("net x\nplace p\ntrans t\n  in p\n  out { unbalanced\n")
	f.Add("# only a comment\n")
	f.Add("net x\nplace p init -1\n")

	f.Fuzz(func(t *testing.T, src string) {
		net, err := Parse(src)
		if err != nil {
			if net != nil {
				t.Fatalf("Parse returned both a net and error %v", err)
			}
			return
		}
		// Round-trip: the formatter must emit source the parser accepts...
		out := Format(net)
		net2, err := Parse(out)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		// ...and formatting must be a fixed point after one round.
		if out2 := Format(net2); out2 != out {
			t.Fatalf("Format is not stable:\nfirst:  %q\nsecond: %q", out, out2)
		}
	})
}
