package ptl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/petri"
)

func parseExprBody(src string) (petri.Delay, error) {
	e, err := expr.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return petri.ExprDelay{E: e}, nil
}

// Format renders a net as .pn source that Parse accepts (round-trip
// safe). Places print in declaration order, transitions likewise;
// variables and tables print sorted by name.
func Format(n *petri.Net) string {
	var b strings.Builder
	fmt.Fprintf(&b, "net %s\n", n.Name)
	var vars []string
	for k := range n.Vars {
		vars = append(vars, k)
	}
	sort.Strings(vars)
	for _, k := range vars {
		fmt.Fprintf(&b, "var %s %d\n", k, n.Vars[k])
	}
	var tables []string
	for k := range n.Tables {
		tables = append(tables, k)
	}
	sort.Strings(tables)
	for _, k := range tables {
		fmt.Fprintf(&b, "table %s", k)
		for _, v := range n.Tables[k] {
			fmt.Fprintf(&b, " %d", v)
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, p := range n.Places {
		if p.Initial != 0 {
			fmt.Fprintf(&b, "place %s init %d\n", p.Name, p.Initial)
		} else {
			fmt.Fprintf(&b, "place %s\n", p.Name)
		}
	}
	arcList := func(arcs []petri.Arc) string {
		parts := make([]string, len(arcs))
		for i, a := range arcs {
			if a.Weight != 1 {
				parts[i] = fmt.Sprintf("%s*%d", n.Places[a.Place].Name, a.Weight)
			} else {
				parts[i] = n.Places[a.Place].Name
			}
		}
		return strings.Join(parts, ", ")
	}
	for i := range n.Trans {
		tr := &n.Trans[i]
		fmt.Fprintf(&b, "trans %s\n", tr.Name)
		if len(tr.In) > 0 {
			fmt.Fprintf(&b, "  in %s\n", arcList(tr.In))
		}
		if len(tr.Out) > 0 {
			fmt.Fprintf(&b, "  out %s\n", arcList(tr.Out))
		}
		if len(tr.Inhib) > 0 {
			fmt.Fprintf(&b, "  inhib %s\n", arcList(tr.Inhib))
		}
		if tr.Firing != nil {
			fmt.Fprintf(&b, "  firing %s\n", formatDelay(tr.Firing))
		}
		if tr.Enabling != nil {
			fmt.Fprintf(&b, "  enabling %s\n", formatDelay(tr.Enabling))
		}
		if tr.Freq != 1 {
			fmt.Fprintf(&b, "  freq %g\n", tr.Freq)
		}
		if tr.Servers > 0 {
			fmt.Fprintf(&b, "  servers %d\n", tr.Servers)
		}
		if tr.Predicate != nil {
			fmt.Fprintf(&b, "  pred { %s }\n", tr.Predicate)
		}
		if tr.Action != nil {
			fmt.Fprintf(&b, "  action { %s }\n", strings.TrimSpace(tr.Action.String()))
		}
	}
	return b.String()
}

func formatDelay(d petri.Delay) string {
	switch d := d.(type) {
	case petri.Constant:
		return fmt.Sprintf("%d", petri.Time(d))
	case petri.Uniform:
		return fmt.Sprintf("uniform(%d, %d)", d.Lo, d.Hi)
	case petri.Choice:
		parts := make([]string, len(d.Durations))
		for i := range d.Durations {
			parts[i] = fmt.Sprintf("%d:%g", d.Durations[i], d.Weights[i])
		}
		return "choice(" + strings.Join(parts, ", ") + ")"
	case petri.ExprDelay:
		return "expr{" + d.E.String() + "}"
	}
	return d.String()
}
