package ptl

import (
	"context"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// pipelinePN is the paper's complete pipeline model in the textual form
// — the paper says "roughly 25 lines"; this compact transcription of
// Figures 1-3 (one attribute list per transition) is the same order of
// magnitude.
const pipelinePN = `
net pipeline
place Empty_I_buffers init 6
place Full_I_buffers
place Bus_free init 1
place Bus_busy
place pre_fetching
place fetching
place storing
place Operand_fetch_pending
place Result_store_pending
place Decoder_ready init 1
place Decoded_instruction
place EA_needed
place Mem_instr_in_decode
place ready_to_issue_instruction
place Execution_unit init 1
place Issued_instruction
place Exec_complete
trans Start_prefetch
  in Empty_I_buffers*2, Bus_free
  inhib Operand_fetch_pending, Result_store_pending
  out pre_fetching, Bus_busy
trans End_prefetch
  in pre_fetching, Bus_busy
  out Full_I_buffers*2, Bus_free
  enabling 5
trans Decode
  in Full_I_buffers, Decoder_ready
  out Decoded_instruction, Empty_I_buffers
  firing 1
trans Type_1
  in Decoded_instruction
  out ready_to_issue_instruction
  freq 70
trans Type_2
  in Decoded_instruction
  out EA_needed, Mem_instr_in_decode
  freq 20
trans Type_3
  in Decoded_instruction
  out EA_needed*2, Mem_instr_in_decode
  freq 10
trans calc_eaddr
  in EA_needed
  out Operand_fetch_pending
  enabling 2
trans Start_operand_fetch
  in Operand_fetch_pending, Bus_free
  out fetching, Bus_busy
trans End_operand_fetch
  in fetching, Bus_busy
  out Bus_free
  enabling 5
trans operands_done
  in Mem_instr_in_decode
  inhib EA_needed, Operand_fetch_pending, fetching
  out ready_to_issue_instruction
trans Issue
  in ready_to_issue_instruction, Execution_unit
  out Issued_instruction, Decoder_ready
trans exec_type_1
  in Issued_instruction
  out Exec_complete
  firing 1
  freq 0.5
trans exec_type_2
  in Issued_instruction
  out Exec_complete
  firing 2
  freq 0.3
trans exec_type_3
  in Issued_instruction
  out Exec_complete
  firing 5
  freq 0.1
trans exec_type_4
  in Issued_instruction
  out Exec_complete
  firing 10
  freq 0.05
trans exec_type_5
  in Issued_instruction
  out Exec_complete
  firing 50
  freq 0.05
trans no_store
  in Exec_complete
  out Execution_unit
  freq 0.8
trans store_result
  in Exec_complete
  out Result_store_pending
  freq 0.2
trans Start_store
  in Result_store_pending, Bus_free
  out storing, Bus_busy
trans End_store
  in storing, Bus_busy
  out Bus_free, Execution_unit
  enabling 5
`

func TestParsePipelineMatchesProgrammatic(t *testing.T) {
	parsed, err := Parse(pipelinePN)
	if err != nil {
		t.Fatal(err)
	}
	built, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumPlaces() != built.NumPlaces() || parsed.NumTrans() != built.NumTrans() {
		t.Fatalf("parsed %d/%d, built %d/%d",
			parsed.NumPlaces(), parsed.NumTrans(), built.NumPlaces(), built.NumTrans())
	}
	// Both nets must produce identical traces for identical seeds
	// (transition order matches).
	run := func(n *petri.Net) string {
		c := trace.NewCollect(trace.HeaderOf(n))
		if _, err := sim.Run(context.Background(), n, c, sim.Options{Horizon: 2_000, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		return c.String()
	}
	if run(parsed) != run(built) {
		t.Error("textual and programmatic pipeline models diverge")
	}
}

func TestRoundTripFormatParse(t *testing.T) {
	nets := []*petri.Net{}
	base, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, base)
	interp, err := pipeline.InterpretedProcessor(pipeline.DefaultParams(), pipeline.DefaultInstructionSet())
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, interp)
	for _, n := range nets {
		text := Format(n)
		re, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", n.Name, err, text)
		}
		if Format(re) != text {
			t.Errorf("%s: Format/Parse not idempotent", n.Name)
		}
		if re.NumPlaces() != n.NumPlaces() || re.NumTrans() != n.NumTrans() {
			t.Errorf("%s: size changed in round trip", n.Name)
		}
	}
}

func TestInterpretedRoundTripBehaviour(t *testing.T) {
	interp, err := pipeline.InterpretedProcessor(pipeline.DefaultParams(), pipeline.DefaultInstructionSet())
	if err != nil {
		t.Fatal(err)
	}
	re, err := Parse(Format(interp))
	if err != nil {
		t.Fatal(err)
	}
	runStats := func(n *petri.Net) float64 {
		s := stats.New(trace.HeaderOf(n))
		if _, err := sim.Run(context.Background(), n, s, sim.Options{Horizon: 5_000, Seed: 7}); err != nil {
			t.Fatal(err)
		}
		th, _ := s.Throughput("Issue")
		return th
	}
	a, b := runStats(interp), runStats(re)
	if a != b {
		t.Errorf("interpreted round trip diverges: %g vs %g", a, b)
	}
}

func TestDelayForms(t *testing.T) {
	src := `
net delays
var base 3
place p init 1
place q
trans a
  in p
  out q
  firing uniform(1, 4)
trans b
  in q
  out p
  enabling choice(1:0.5, 10:0.5)
trans c
  in p
  out p
  firing expr{ base * 2 }
  freq 0.01
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := n.Trans[n.MustTrans("a")]
	if _, ok := a.Firing.(petri.Uniform); !ok {
		t.Errorf("a.Firing = %T", a.Firing)
	}
	bb := n.Trans[n.MustTrans("b")]
	if _, ok := bb.Enabling.(petri.Choice); !ok {
		t.Errorf("b.Enabling = %T", bb.Enabling)
	}
	c := n.Trans[n.MustTrans("c")]
	if _, ok := c.Firing.(petri.ExprDelay); !ok {
		t.Errorf("c.Firing = %T", c.Firing)
	}
	// And the whole thing simulates.
	if _, err := sim.Run(context.Background(), n, nil, sim.Options{Horizon: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiLineAction(t *testing.T) {
	src := `
net ml
place p init 1
trans t
  in p
  out p
  firing 1
  action {
    x = 1;
    y = x + 1;
  }
`
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), n, nil, sim.Options{MaxStarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vars["y"] != 2 {
		t.Errorf("y = %d", res.Vars["y"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no net", "place p\n"},
		{"bad keyword", "net x\nzorp p\n"},
		{"bad place", "net x\nplace p frob 3\n"},
		{"bad init", "net x\nplace p init qq\n"},
		{"two names", "net x y\n"},
		{"attr outside trans", "net x\nplace p\nin p\n"},
		{"bad weight", "net x\nplace p\ntrans t\nin p*z\n"},
		{"bad delay", "net x\nplace p\ntrans t\nin p\nfiring soon\n"},
		{"bad uniform", "net x\nplace p\ntrans t\nin p\nfiring uniform(3)\n"},
		{"bad choice", "net x\nplace p\ntrans t\nin p\nenabling choice(1)\n"},
		{"bad expr delay", "net x\nplace p\ntrans t\nin p\nfiring expr{1 +}\n"},
		{"bad freq", "net x\nplace p\ntrans t\nin p\nfreq fast\n"},
		{"bad servers", "net x\nplace p\ntrans t\nin p\nservers -2\n"},
		{"bad pred", "net x\nplace p\ntrans t\nin p\npred nops > 0\n"},
		{"bad var", "net x\nvar v\n"},
		{"bad table", "net x\ntable t\n"},
		{"unknown place in arc", "net x\nplace p\ntrans t\nin ghost\n"},
		{"empty arc name", "net x\nplace p\ntrans t\nin p,,p\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Parse("net x\nplace p\nzorp\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := "# header comment\nnet x\n\nplace p init 1\n# about t\ntrans t\n  in p\n  out p\n  enabling 2\n"
	n, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "x" || n.NumPlaces() != 1 || n.NumTrans() != 1 {
		t.Errorf("parsed: %s", n)
	}
}
