// Package ptl implements the textual Petri-net language (.pn files) of
// the P-NUT tools. The paper notes the complete pipeline model "can be
// expressed ... textually (for some of our textually based tools) in
// roughly 25 lines"; this package defines that text form.
//
// The format is line oriented:
//
//	# comment
//	net pipeline
//	var max_type 3
//	table operands 0 0 1 2
//	place Empty_I_buffers init 6
//	place Full_I_buffers
//	trans Start_prefetch
//	  in Empty_I_buffers*2, Bus_free
//	  inhib Operand_fetch_pending, Result_store_pending
//	  out pre_fetching, Bus_busy
//	trans End_prefetch
//	  in pre_fetching, Bus_busy
//	  out Full_I_buffers*2, Bus_free
//	  enabling 5
//	trans Decode
//	  in Full_I_buffers, Decoder_ready
//	  out Decoded_instruction, Empty_I_buffers
//	  firing 1
//	  freq 1
//	  servers 1
//	  pred { nops > 0 }
//	  action { nops = nops - 1; }
//
// Delays accept four forms: a constant ("firing 5"), a uniform range
// ("firing uniform(1, 3)"), a weighted choice
// ("firing choice(1:0.5, 2:0.3, 50:0.2)") and a data-dependent
// expression ("firing expr{ exec_cycles[type] }").
package ptl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/petri"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ptl: line %d: %s", e.Line, e.Msg)
}

// Parse compiles .pn source into a net.
func Parse(src string) (*petri.Net, error) {
	p := &parser{}
	return p.parse(src)
}

type parser struct {
	b     *petri.Builder
	tb    *petri.TransBuilder
	line  int
	named bool
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// logicalLines joins brace continuations: a line whose '{' is not closed
// swallows following lines until braces balance.
func logicalLines(src string) []struct {
	text string
	line int
} {
	var out []struct {
		text string
		line int
	}
	raw := strings.Split(src, "\n")
	i := 0
	for i < len(raw) {
		start := i
		text := raw[i]
		depth := strings.Count(text, "{") - strings.Count(text, "}")
		for depth > 0 && i+1 < len(raw) {
			i++
			text += "\n" + raw[i]
			depth += strings.Count(raw[i], "{") - strings.Count(raw[i], "}")
		}
		out = append(out, struct {
			text string
			line int
		}{text, start + 1})
		i++
	}
	return out
}

func (p *parser) parse(src string) (*petri.Net, error) {
	p.b = petri.NewBuilder("")
	for _, ll := range logicalLines(src) {
		p.line = ll.line
		line := strings.TrimSpace(ll.text)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kw, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		var err error
		switch kw {
		case "net":
			err = p.parseNet(rest)
		case "var":
			err = p.parseVar(rest)
		case "table":
			err = p.parseTable(rest)
		case "place":
			err = p.parsePlace(rest)
		case "trans":
			err = p.parseTrans(rest)
		case "in", "out", "inhib":
			err = p.parseArcs(kw, rest)
		case "firing", "enabling":
			err = p.parseDelay(kw, rest)
		case "freq":
			err = p.parseFreq(rest)
		case "servers":
			err = p.parseServers(rest)
		case "pred":
			err = p.parseBody(rest, func(body string) { p.tb.Pred(body) })
		case "action":
			err = p.parseBody(rest, func(body string) { p.tb.Action(body) })
		default:
			err = p.errf("unknown keyword %q", kw)
		}
		if err != nil {
			return nil, err
		}
	}
	if !p.named {
		return nil, &ParseError{Line: 1, Msg: "missing 'net <name>' line"}
	}
	net, err := p.b.Build()
	if err != nil {
		return nil, fmt.Errorf("ptl: %w", err)
	}
	return net, nil
}

func (p *parser) parseNet(rest string) error {
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return p.errf("net wants exactly one name, got %q", rest)
	}
	p.named = true
	p.b = petri.NewBuilder(rest)
	return nil
}

func (p *parser) parseVar(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return p.errf("var wants a name and a value, got %q", rest)
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return p.errf("bad var value %q", fields[1])
	}
	p.b.Var(fields[0], v)
	return nil
}

func (p *parser) parseTable(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return p.errf("table wants a name and at least one value, got %q", rest)
	}
	vals := make([]int64, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return p.errf("bad table value %q", f)
		}
		vals[i] = v
	}
	p.b.Table(fields[0], vals...)
	return nil
}

func (p *parser) parsePlace(rest string) error {
	fields := strings.Fields(rest)
	switch len(fields) {
	case 1:
		p.b.Place(fields[0], 0)
		return nil
	case 3:
		if fields[1] != "init" {
			return p.errf("expected 'init', got %q", fields[1])
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return p.errf("bad initial marking %q", fields[2])
		}
		p.b.Place(fields[0], n)
		return nil
	}
	return p.errf("place wants 'place <name> [init <n>]', got %q", rest)
}

func (p *parser) parseTrans(rest string) error {
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return p.errf("trans wants exactly one name, got %q", rest)
	}
	p.tb = p.b.Trans(rest)
	return nil
}

func (p *parser) needTrans() error {
	if p.tb == nil {
		return p.errf("attribute line outside a transition")
	}
	return nil
}

func (p *parser) parseArcs(kind, rest string) error {
	if err := p.needTrans(); err != nil {
		return err
	}
	if rest == "" {
		return p.errf("%s wants at least one place", kind)
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		name, weight := part, 1
		if i := strings.IndexByte(part, '*'); i >= 0 {
			name = strings.TrimSpace(part[:i])
			w, err := strconv.Atoi(strings.TrimSpace(part[i+1:]))
			if err != nil {
				return p.errf("bad arc weight in %q", part)
			}
			weight = w
		}
		if name == "" {
			return p.errf("empty place name in %s list", kind)
		}
		switch kind {
		case "in":
			p.tb.In(name, weight)
		case "out":
			p.tb.Out(name, weight)
		case "inhib":
			p.tb.Inhib(name, weight)
		}
	}
	return nil
}

func (p *parser) parseDelay(kind, rest string) error {
	if err := p.needTrans(); err != nil {
		return err
	}
	d, err := p.parseDelaySpec(rest)
	if err != nil {
		return err
	}
	if kind == "firing" {
		p.tb.Firing(d)
	} else {
		p.tb.Enabling(d)
	}
	return nil
}

func (p *parser) parseDelaySpec(rest string) (petri.Delay, error) {
	rest = strings.TrimSpace(rest)
	switch {
	case strings.HasPrefix(rest, "uniform(") && strings.HasSuffix(rest, ")"):
		body := rest[len("uniform(") : len(rest)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 2 {
			return nil, p.errf("uniform wants two bounds, got %q", rest)
		}
		lo, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		hi, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return nil, p.errf("bad uniform bounds %q", rest)
		}
		return petri.Uniform{Lo: lo, Hi: hi}, nil
	case strings.HasPrefix(rest, "choice(") && strings.HasSuffix(rest, ")"):
		body := rest[len("choice(") : len(rest)-1]
		var ch petri.Choice
		for _, part := range strings.Split(body, ",") {
			dur, weight, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return nil, p.errf("choice entries are duration:weight, got %q", part)
			}
			d, err1 := strconv.ParseInt(strings.TrimSpace(dur), 10, 64)
			w, err2 := strconv.ParseFloat(strings.TrimSpace(weight), 64)
			if err1 != nil || err2 != nil || d < 0 || w < 0 {
				return nil, p.errf("bad choice entry %q", part)
			}
			ch.Durations = append(ch.Durations, d)
			ch.Weights = append(ch.Weights, w)
		}
		if len(ch.Durations) == 0 {
			return nil, p.errf("empty choice")
		}
		return ch, nil
	case strings.HasPrefix(rest, "expr{") && strings.HasSuffix(rest, "}"):
		body := rest[len("expr{") : len(rest)-1]
		e, err := parseExprBody(body)
		if err != nil {
			return nil, p.errf("bad delay expression: %v", err)
		}
		return e, nil
	default:
		v, err := strconv.ParseInt(rest, 10, 64)
		if err != nil || v < 0 {
			return nil, p.errf("bad delay %q", rest)
		}
		return petri.Constant(v), nil
	}
}

func (p *parser) parseFreq(rest string) error {
	if err := p.needTrans(); err != nil {
		return err
	}
	f, err := strconv.ParseFloat(rest, 64)
	if err != nil || f < 0 {
		return p.errf("bad frequency %q", rest)
	}
	p.tb.Freq(f)
	return nil
}

func (p *parser) parseServers(rest string) error {
	if err := p.needTrans(); err != nil {
		return err
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return p.errf("bad server count %q", rest)
	}
	p.tb.Servers(n)
	return nil
}

// parseBody extracts "{ ... }" and hands the body to sink.
func (p *parser) parseBody(rest string, sink func(string)) error {
	if err := p.needTrans(); err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
		return p.errf("expected '{ ... }', got %q", rest)
	}
	sink(strings.TrimSpace(rest[1 : len(rest)-1]))
	return nil
}
