package reach

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/petri"
)

// StateGraph is the adjacency view the CTL checker needs; both Graph
// (untimed) and TimedGraph (timed) implement it.
type StateGraph interface {
	NumNodes() int
	Succ(id int) []int
	MarkingAt(id int) petri.Marking
	PlaceByName(name string) (petri.PlaceID, bool)
}

// markingRanger is the optional bulk face of StateGraph: a sequential
// whole-graph marking scan with a reused buffer. Atom evaluation
// prefers it over per-node MarkingAt, which for the compact-store
// Graph would decode (and allocate) one marking per call.
type markingRanger interface {
	EachMarking(fn func(id int, m petri.Marking) bool)
}

// NumNodes implements StateGraph.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// Succ implements StateGraph.
func (g *Graph) Succ(id int) []int {
	out := make([]int, len(g.Nodes[id].Out))
	for i, e := range g.Nodes[id].Out {
		out[i] = e.To
	}
	return out
}

// MarkingAt implements StateGraph by decoding from the compact store;
// it allocates per call, so bulk scans go through EachMarking.
func (g *Graph) MarkingAt(id int) petri.Marking { return g.MarkingOf(id) }

// PlaceByName implements StateGraph.
func (g *Graph) PlaceByName(name string) (petri.PlaceID, bool) { return g.Net.PlaceID(name) }

// NumNodes implements StateGraph.
func (g *TimedGraph) NumNodes() int { return len(g.Nodes) }

// Succ implements StateGraph.
func (g *TimedGraph) Succ(id int) []int {
	out := make([]int, len(g.Nodes[id].Out))
	for i, e := range g.Nodes[id].Out {
		out[i] = e.To
	}
	return out
}

// MarkingAt implements StateGraph.
func (g *TimedGraph) MarkingAt(id int) petri.Marking { return g.Nodes[id].Marking }

// PlaceByName implements StateGraph.
func (g *TimedGraph) PlaceByName(name string) (petri.PlaceID, bool) { return g.Net.PlaceID(name) }

// EachMarking implements markingRanger over the timed graph's boxed
// nodes, so the CTL atom scan takes the same bulk path on both graphs.
func (g *TimedGraph) EachMarking(fn func(id int, m petri.Marking) bool) {
	for i := range g.Nodes {
		if !fn(i, g.Nodes[i].Marking) {
			return
		}
	}
}

// Formula is a branching-time temporal-logic formula in the style of
// the [MR87] analyzer. Atoms are integer expressions over place names
// (nonzero = true) or the special proposition deadlock. Path operators:
//
//	EX f, AX f     — some / every successor satisfies f
//	EF f, AF f     — some / every path eventually reaches f
//	EG f, AG f     — some / every path satisfies f globally
//	EU(f,g), AU(f,g) — until
//
// Maximal-path semantics: a deadlock state's only path is itself, so
// AF f and EG f reduce to f there and AX f holds vacuously. The paper's
// "inev" is AF.
type Formula interface {
	// String renders the formula in the surface syntax.
	String() string
	check(g StateGraph, c *checker) []bool
}

type checker struct {
	succ [][]int
}

// Check evaluates f on every node of g and returns the satisfaction
// vector (indexed by node ID).
func Check(g StateGraph, f Formula) []bool {
	c := &checker{succ: make([][]int, g.NumNodes())}
	for i := 0; i < g.NumNodes(); i++ {
		c.succ[i] = g.Succ(i)
	}
	return f.check(g, c)
}

// Holds evaluates f at the initial state (node 0).
func Holds(g StateGraph, f Formula) bool {
	if g.NumNodes() == 0 {
		return true
	}
	return Check(g, f)[0]
}

// --- atoms -------------------------------------------------------------

type atomExpr struct {
	src string
	e   expr.Expr
}

// Atom parses an integer expression over place names, e.g.
// "Bus_free + Bus_busy == 1".
func Atom(src string) (Formula, error) {
	e, err := expr.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("reach: atom %q: %w", src, err)
	}
	return &atomExpr{src: src, e: e}, nil
}

// MustAtom is Atom that panics on error (static formulas in models and
// tests).
func MustAtom(src string) Formula {
	f, err := Atom(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (a *atomExpr) String() string { return "{" + a.src + "}" }

func (a *atomExpr) check(g StateGraph, c *checker) []bool {
	out := make([]bool, g.NumNodes())
	env := expr.NewEnv(nil)
	var cur petri.Marking
	env.External = func(name string) (int64, bool) {
		id, ok := g.PlaceByName(name)
		if !ok {
			return 0, false
		}
		return int64(cur[id]), true
	}
	evalAt := func(i int, m petri.Marking) {
		cur = m
		v, err := a.e.Eval(env)
		if err != nil {
			// Unknown names or arithmetic faults make the atom false
			// everywhere rather than panicking mid-fixpoint; Validate
			// formulas with Atom() for eager errors.
			out[i] = false
			return
		}
		out[i] = v != 0
	}
	if mr, ok := g.(markingRanger); ok {
		mr.EachMarking(func(i int, m petri.Marking) bool {
			evalAt(i, m)
			return true
		})
		return out
	}
	for i := range out {
		evalAt(i, g.MarkingAt(i))
	}
	return out
}

type deadlockAtom struct{}

// Deadlock is the proposition "no transition can ever fire again".
func Deadlock() Formula { return deadlockAtom{} }

func (deadlockAtom) String() string { return "deadlock" }

func (deadlockAtom) check(g StateGraph, c *checker) []bool {
	out := make([]bool, g.NumNodes())
	for i := range out {
		out[i] = len(c.succ[i]) == 0
	}
	return out
}

// --- boolean connectives ------------------------------------------------

type notF struct{ x Formula }
type andF struct{ l, r Formula }
type orF struct{ l, r Formula }

// Not negates a formula.
func Not(x Formula) Formula { return notF{x} }

// And conjoins formulas.
func And(l, r Formula) Formula { return andF{l, r} }

// Or disjoins formulas.
func Or(l, r Formula) Formula { return orF{l, r} }

func (f notF) String() string { return "!" + f.x.String() }
func (f andF) String() string { return "(" + f.l.String() + " && " + f.r.String() + ")" }
func (f orF) String() string  { return "(" + f.l.String() + " || " + f.r.String() + ")" }

func (f notF) check(g StateGraph, c *checker) []bool {
	v := f.x.check(g, c)
	out := make([]bool, len(v))
	for i := range v {
		out[i] = !v[i]
	}
	return out
}

func (f andF) check(g StateGraph, c *checker) []bool {
	l, r := f.l.check(g, c), f.r.check(g, c)
	out := make([]bool, len(l))
	for i := range l {
		out[i] = l[i] && r[i]
	}
	return out
}

func (f orF) check(g StateGraph, c *checker) []bool {
	l, r := f.l.check(g, c), f.r.check(g, c)
	out := make([]bool, len(l))
	for i := range l {
		out[i] = l[i] || r[i]
	}
	return out
}

// --- temporal operators --------------------------------------------------

type exF struct{ x Formula }
type axF struct{ x Formula }
type efF struct{ x Formula }
type afF struct{ x Formula }
type egF struct{ x Formula }
type agF struct{ x Formula }
type euF struct{ l, r Formula }
type auF struct{ l, r Formula }

// EX: some successor satisfies x.
func EX(x Formula) Formula { return exF{x} }

// AX: every successor satisfies x (vacuously true at deadlocks).
func AX(x Formula) Formula { return axF{x} }

// EF: x is reachable.
func EF(x Formula) Formula { return efF{x} }

// AF: x is inevitable — the paper's inev.
func AF(x Formula) Formula { return afF{x} }

// EG: some maximal path satisfies x globally.
func EG(x Formula) Formula { return egF{x} }

// AG: x holds in every reachable state.
func AG(x Formula) Formula { return agF{x} }

// EU: some path satisfies l until r.
func EU(l, r Formula) Formula { return euF{l, r} }

// AU: every path satisfies l until r.
func AU(l, r Formula) Formula { return auF{l, r} }

func (f exF) String() string { return "EX(" + f.x.String() + ")" }
func (f axF) String() string { return "AX(" + f.x.String() + ")" }
func (f efF) String() string { return "EF(" + f.x.String() + ")" }
func (f afF) String() string { return "AF(" + f.x.String() + ")" }
func (f egF) String() string { return "EG(" + f.x.String() + ")" }
func (f agF) String() string { return "AG(" + f.x.String() + ")" }
func (f euF) String() string { return "EU(" + f.l.String() + ", " + f.r.String() + ")" }
func (f auF) String() string { return "AU(" + f.l.String() + ", " + f.r.String() + ")" }

func (f exF) check(g StateGraph, c *checker) []bool {
	x := f.x.check(g, c)
	out := make([]bool, len(x))
	for i := range out {
		for _, s := range c.succ[i] {
			if x[s] {
				out[i] = true
				break
			}
		}
	}
	return out
}

func (f axF) check(g StateGraph, c *checker) []bool {
	x := f.x.check(g, c)
	out := make([]bool, len(x))
	for i := range out {
		out[i] = true
		for _, s := range c.succ[i] {
			if !x[s] {
				out[i] = false
				break
			}
		}
	}
	return out
}

// lfp iterates a monotone step function to its least fixed point.
func lfp(init []bool, step func(cur []bool) bool) []bool {
	cur := init
	for step(cur) {
	}
	return cur
}

func (f efF) check(g StateGraph, c *checker) []bool {
	cur := f.x.check(g, c)
	return lfp(cur, func(cur []bool) bool {
		changed := false
		for i := range cur {
			if cur[i] {
				continue
			}
			for _, s := range c.succ[i] {
				if cur[s] {
					cur[i] = true
					changed = true
					break
				}
			}
		}
		return changed
	})
}

func (f afF) check(g StateGraph, c *checker) []bool {
	cur := f.x.check(g, c)
	return lfp(cur, func(cur []bool) bool {
		changed := false
		for i := range cur {
			if cur[i] || len(c.succ[i]) == 0 {
				continue
			}
			all := true
			for _, s := range c.succ[i] {
				if !cur[s] {
					all = false
					break
				}
			}
			if all {
				cur[i] = true
				changed = true
			}
		}
		return changed
	})
}

func (f egF) check(g StateGraph, c *checker) []bool {
	// Greatest fixed point: start from x, remove states with no
	// satisfying continuation (deadlocks keep x: their maximal path ends
	// there).
	cur := f.x.check(g, c)
	for {
		changed := false
		for i := range cur {
			if !cur[i] || len(c.succ[i]) == 0 {
				continue
			}
			any := false
			for _, s := range c.succ[i] {
				if cur[s] {
					any = true
					break
				}
			}
			if !any {
				cur[i] = false
				changed = true
			}
		}
		if !changed {
			return cur
		}
	}
}

func (f agF) check(g StateGraph, c *checker) []bool {
	// AG x == !EF !x
	return notF{efF{notF{f.x}}}.check(g, c)
}

func (f euF) check(g StateGraph, c *checker) []bool {
	l := f.l.check(g, c)
	cur := f.r.check(g, c)
	return lfp(cur, func(cur []bool) bool {
		changed := false
		for i := range cur {
			if cur[i] || !l[i] {
				continue
			}
			for _, s := range c.succ[i] {
				if cur[s] {
					cur[i] = true
					changed = true
					break
				}
			}
		}
		return changed
	})
}

func (f auF) check(g StateGraph, c *checker) []bool {
	l := f.l.check(g, c)
	cur := f.r.check(g, c)
	return lfp(cur, func(cur []bool) bool {
		changed := false
		for i := range cur {
			if cur[i] || !l[i] || len(c.succ[i]) == 0 {
				continue
			}
			all := true
			for _, s := range c.succ[i] {
				if !cur[s] {
					all = false
					break
				}
			}
			if all {
				cur[i] = true
				changed = true
			}
		}
		return changed
	})
}

// --- formula parser ------------------------------------------------------

// ParseFormula parses the surface syntax:
//
//	formula := or
//	or      := and ('||' and)*
//	and     := unary ('&&' unary)*
//	unary   := '!' unary | OP '(' formula [',' formula] ')'
//	         | '(' formula ')' | '{' expr '}' | 'deadlock'
//	OP      := AG AF AX EG EF EX EU AU inev
//
// Atoms are expr-language expressions over place names in braces, e.g.
//
//	AG({Bus_free + Bus_busy == 1})
//	AG(EF({Empty_I_buffers == 6}))
//	inev({Bus_free}) — the paper's operator, an alias for AF
func ParseFormula(src string) (Formula, error) {
	p := &fparser{src: src}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("reach: trailing input %q in formula", p.src[p.pos:])
	}
	return f, nil
}

// MustParseFormula panics on error.
func MustParseFormula(src string) Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

type fparser struct {
	src string
	pos int
}

func (p *fparser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *fparser) lit(s string) bool {
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *fparser) parseOr() (Formula, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lit("||") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or(l, r)
	}
	return l, nil
}

func (p *fparser) parseAnd() (Formula, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.lit("&&") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And(l, r)
	}
	return l, nil
}

func (p *fparser) parseUnary() (Formula, error) {
	p.skip()
	if p.lit("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(x), nil
	}
	unary := map[string]func(Formula) Formula{
		"AG": AG, "AF": AF, "AX": AX, "EG": EG, "EF": EF, "EX": EX, "inev": AF,
	}
	binary := map[string]func(Formula, Formula) Formula{
		"EU": EU, "AU": AU,
	}
	for kw, mk := range binary {
		if p.peekKeyword(kw) {
			p.lit(kw)
			if !p.lit("(") {
				return nil, fmt.Errorf("reach: expected '(' after %s", kw)
			}
			l, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.lit(",") {
				return nil, fmt.Errorf("reach: expected ',' in %s", kw)
			}
			r, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.lit(")") {
				return nil, fmt.Errorf("reach: expected ')' to close %s", kw)
			}
			return mk(l, r), nil
		}
	}
	for kw, mk := range unary {
		if p.peekKeyword(kw) {
			p.lit(kw)
			if !p.lit("(") {
				return nil, fmt.Errorf("reach: expected '(' after %s", kw)
			}
			x, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if !p.lit(")") {
				return nil, fmt.Errorf("reach: expected ')' to close %s", kw)
			}
			return mk(x), nil
		}
	}
	if p.peekKeyword("deadlock") {
		p.lit("deadlock")
		return Deadlock(), nil
	}
	if p.lit("{") {
		end := strings.IndexByte(p.src[p.pos:], '}')
		if end < 0 {
			return nil, fmt.Errorf("reach: unterminated atom")
		}
		atomSrc := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		return Atom(atomSrc)
	}
	if p.lit("(") {
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.lit(")") {
			return nil, fmt.Errorf("reach: expected ')'")
		}
		return f, nil
	}
	return nil, fmt.Errorf("reach: expected a formula at %q", p.src[p.pos:])
}

// peekKeyword reports whether the next token is exactly kw followed by a
// non-identifier character.
func (p *fparser) peekKeyword(kw string) bool {
	p.skip()
	rest := p.src[p.pos:]
	if !strings.HasPrefix(rest, kw) {
		return false
	}
	after := rest[len(kw):]
	if after == "" {
		return true
	}
	c := after[0]
	return !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9')
}
