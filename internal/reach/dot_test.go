package reach

import (
	"context"
	"strings"
	"testing"

	"repro/internal/petri"
)

func TestGraphDOT(t *testing.T) {
	g, err := Build(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0", "enter_a", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("graph DOT missing %q:\n%s", want, dot)
		}
	}
	// Deadlock nodes draw doubled.
	b := petri.NewBuilder("dead")
	b.Place("a", 1)
	b.Place("bb", 0)
	b.Trans("t").In("a").Out("bb")
	dg, err := Build(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dg.DOT(), "doublecircle") {
		t.Error("deadlock node not marked in DOT")
	}
}

func TestTimedGraphDOT(t *testing.T) {
	b := petri.NewBuilder("fly")
	b.Place("a", 1)
	b.Place("bb", 0)
	b.Trans("t").In("a").Out("bb").FiringConst(4)
	g, err := BuildTimed(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "style=dashed", "+4"} {
		if !strings.Contains(dot, want) {
			t.Errorf("timed DOT missing %q:\n%s", want, dot)
		}
	}
}
