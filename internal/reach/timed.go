package reach

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/petri"
)

// TimeAdvance labels edges of the timed graph that advance the clock to
// the next event (completing any firings that become due) rather than
// starting a transition.
const TimeAdvance petri.TransID = -1

// TimedEdge is one edge of a timed reachability graph: either the start
// of a firing (Trans >= 0, Delta == 0) or a time advance (Trans ==
// TimeAdvance, Delta > 0).
type TimedEdge struct {
	Trans petri.TransID
	Delta petri.Time
	To    int
}

// TimedNode is one state of the timed graph [RP84]: a marking plus the
// remaining firing times of in-progress transitions and the remaining
// enabling times of enabled transitions. Only relative times appear, so
// behaviourally identical states merge regardless of absolute clock.
type TimedNode struct {
	ID      int
	Marking petri.Marking
	// Pending holds (transition, remaining firing time), sorted.
	Pending []Remaining
	// Enab holds (transition, remaining enabling time) for enabled
	// transitions, sorted by transition.
	Enab []Remaining
	Out  []TimedEdge
}

// Remaining pairs a transition with a remaining duration.
type Remaining struct {
	Trans petri.TransID
	Left  petri.Time
}

// Ripe reports whether some transition may start firing immediately.
func (n *TimedNode) Ripe() bool {
	for _, e := range n.Enab {
		if e.Left == 0 {
			return true
		}
	}
	return false
}

func (n *TimedNode) key() string {
	var b strings.Builder
	b.WriteString(n.Marking.Key())
	b.WriteByte('|')
	for _, p := range n.Pending {
		fmt.Fprintf(&b, "%d:%d,", p.Trans, p.Left)
	}
	b.WriteByte('|')
	for _, e := range n.Enab {
		fmt.Fprintf(&b, "%d:%d,", e.Trans, e.Left)
	}
	return b.String()
}

// TimedGraph is the timed reachability graph of a net whose delays are
// all constant.
type TimedGraph struct {
	Net       *petri.Net
	Nodes     []*TimedNode
	Truncated bool
}

// constDelay extracts a constant delay, rejecting distributions.
func constDelay(d petri.Delay, kind, trans string) (petri.Time, error) {
	if d == nil {
		return 0, nil
	}
	v, ok := d.Const()
	if !ok {
		return 0, fmt.Errorf("reach: %s time of %q is not constant; the timed graph requires deterministic delays", kind, trans)
	}
	return v, nil
}

// timedValidate rejects nets the timed construction cannot handle:
// interpreted nets and non-constant delays.
func timedValidate(net *petri.Net) error {
	if net.Interpreted() {
		return fmt.Errorf("reach: net %q is interpreted; the timed graph requires a plain net", net.Name)
	}
	for i := range net.Trans {
		if _, err := constDelay(net.Trans[i].Firing, "firing", net.Trans[i].Name); err != nil {
			return err
		}
		if _, err := constDelay(net.Trans[i].Enabling, "enabling", net.Trans[i].Name); err != nil {
			return err
		}
	}
	return nil
}

// timedRoot builds and interns node 0.
func timedRoot(net *petri.Net) (*TimedNode, error) {
	root := &TimedNode{Marking: net.InitialMarking()}
	if err := refreshEnab(net, root, nil); err != nil {
		return nil, err
	}
	return root, nil
}

// BuildTimed constructs the timed reachability graph. The construction
// follows the simulator's semantics exactly, but branches over every
// ripe transition where the simulator draws one at random; firing
// frequencies are therefore irrelevant here (except that frequency-0
// transitions never fire). Nets with non-constant delays, predicates or
// actions are rejected.
//
// Like Build, the search is a level-synchronized parallel BFS over
// opt.Shards goroutines: successor states are expanded in parallel,
// deduplicated in per-shard key maps, and committed sequentially in
// the exact (node, successor) order the serial FIFO construction
// visits them, so the graph is bit-identical to BuildTimedSerial for
// any shard count — including after truncation, where both keep
// draining the frontier to add edges between already-interned states.
// ctx is checked at every level barrier.
func BuildTimed(ctx context.Context, net *petri.Net, opt Options) (*TimedGraph, error) {
	opt.defaults()
	if err := timedValidate(net); err != nil {
		return nil, err
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	g := &TimedGraph{Net: net}
	root, err := timedRoot(net)
	if err != nil {
		return nil, err
	}
	root.ID = 0
	g.Nodes = append(g.Nodes, root)

	// Per-shard dedup, keyed by the full state key. A state is owned by
	// shard hash(key)%shards.
	seen := make([]map[string]int32, shards)
	for i := range seen {
		seen[i] = make(map[string]int32)
	}
	k0 := root.key()
	seen[hashString(k0)%uint64(shards)][k0] = 0

	// cand is one successor produced during frontier expansion; id/dup
	// are the dedup resolution, as in the untimed build.
	type cand struct {
		node  *TimedNode
		key   string
		hash  uint64
		label petri.TransID
		delta petri.Time
		id    int32
		dup   int32
	}

	errs := make([]error, shards)
	lo, hi := 0, 1
	for lo < hi {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Phase A — expand each frontier node in parallel. The node
		// slice is read-only here; edges are attached in Phase C.
		perNode := make([][]cand, hi-lo)
		chunk := (hi - lo + shards - 1) / shards
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			a, b := lo+w*chunk, lo+(w+1)*chunk
			if a >= hi {
				break
			}
			if b > hi {
				b = hi
			}
			wg.Add(1)
			go func(w, a, b int) {
				defer wg.Done()
				for id := a; id < b; id++ {
					succs, err := timedSuccessors(net, g.Nodes[id])
					if err != nil {
						errs[w] = err
						return
					}
					out := make([]cand, len(succs))
					for i, s := range succs {
						k := s.node.key()
						out[i] = cand{node: s.node, key: k, hash: hashString(k), label: s.label, delta: s.delta}
					}
					perNode[id-lo] = out
				}
			}(w, a, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Flatten to the global candidate order — (node asc, successor
		// asc), the order the serial construction interns states in.
		var flat []cand
		for _, out := range perNode {
			flat = append(flat, out...)
		}
		byShard := make([][]int32, shards)
		for seq := range flat {
			s := flat[seq].hash % uint64(shards)
			byShard[s] = append(byShard[s], int32(seq))
		}

		// Phase B — dedup against committed states and earlier
		// candidates of this round, per shard, in global order.
		for w := 0; w < shards; w++ {
			if len(byShard[w]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var pend map[string]int32
				for _, seq := range byShard[w] {
					c := &flat[seq]
					c.id, c.dup = -1, -1
					if id, ok := seen[w][c.key]; ok {
						c.id = id
						continue
					}
					if ps, ok := pend[c.key]; ok {
						c.dup = ps
						continue
					}
					if pend == nil {
						pend = make(map[string]int32)
					}
					pend[c.key] = int32(seq)
				}
			}(w)
		}
		wg.Wait()

		// Phase C — commit sequentially in global candidate order. Past
		// MaxStates no state is interned (Truncated is set, the
		// candidate resolves to -1 and adds no edge) but the drain
		// continues: later levels still attach edges between committed
		// states, exactly like the serial FIFO queue does.
		assigned := make([]int32, len(flat))
		lvlLo := len(g.Nodes)
		seq := 0
		for i, out := range perNode {
			src := lo + i
			for range out {
				c := &flat[seq]
				var nid int32
				switch {
				case c.id >= 0:
					nid = c.id
				case c.dup >= 0:
					nid = assigned[c.dup]
				default:
					if len(g.Nodes) >= opt.MaxStates {
						g.Truncated = true
						nid = -1
					} else {
						nid = int32(len(g.Nodes))
						c.node.ID = int(nid)
						g.Nodes = append(g.Nodes, c.node)
						seen[c.hash%uint64(shards)][c.key] = nid
					}
				}
				assigned[seq] = nid
				if nid >= 0 {
					g.Nodes[src].Out = append(g.Nodes[src].Out, TimedEdge{Trans: c.label, Delta: c.delta, To: int(nid)})
				}
				seq++
			}
		}
		lo, hi = lvlLo, len(g.Nodes)
	}
	return g, nil
}

// BuildTimedSerial is the plain serial FIFO construction — the
// algorithm BuildTimed had before the sharded search, kept as the
// bit-identity oracle the parallel build is tested against. ctx is
// checked every serialCheckEvery processed nodes.
func BuildTimedSerial(ctx context.Context, net *petri.Net, opt Options) (*TimedGraph, error) {
	opt.defaults()
	if err := timedValidate(net); err != nil {
		return nil, err
	}
	g := &TimedGraph{Net: net}
	index := make(map[string]int)

	intern := func(n *TimedNode) (int, bool) {
		k := n.key()
		if id, ok := index[k]; ok {
			return id, false
		}
		if len(g.Nodes) >= opt.MaxStates {
			g.Truncated = true
			return -1, false
		}
		n.ID = len(g.Nodes)
		index[k] = n.ID
		g.Nodes = append(g.Nodes, n)
		return n.ID, true
	}

	root, err := timedRoot(net)
	if err != nil {
		return nil, err
	}
	if _, ok := intern(root); !ok && len(g.Nodes) == 0 {
		return nil, fmt.Errorf("reach: could not intern initial state")
	}
	processed := 0
	for work := []int{0}; len(work) > 0; {
		if processed%serialCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		processed++
		id := work[0]
		work = work[1:]
		node := g.Nodes[id]
		succs, err := timedSuccessors(net, node)
		if err != nil {
			return nil, err
		}
		for _, s := range succs {
			nid, fresh := intern(s.node)
			if nid < 0 {
				continue
			}
			node.Out = append(node.Out, TimedEdge{Trans: s.label, Delta: s.delta, To: nid})
			if fresh {
				work = append(work, nid)
			}
		}
	}
	return g, nil
}

type timedSucc struct {
	node  *TimedNode
	label petri.TransID
	delta petri.Time
}

// refreshEnab recomputes the enabled set of n, keeping existing timers
// for transitions of prev that stay enabled and starting fresh timers
// for newly enabled ones. restart forces a fresh timer for one
// transition (the one that just fired).
func refreshEnab(net *petri.Net, n *TimedNode, prev []Remaining, restart ...petri.TransID) error {
	active := make(map[petri.TransID]int)
	for _, p := range n.Pending {
		active[p.Trans]++
	}
	old := make(map[petri.TransID]petri.Time, len(prev))
	for _, e := range prev {
		old[e.Trans] = e.Left
	}
	forceRestart := make(map[petri.TransID]bool, len(restart))
	for _, t := range restart {
		forceRestart[t] = true
	}
	n.Enab = n.Enab[:0]
	for ti := range net.Trans {
		t := petri.TransID(ti)
		tr := &net.Trans[ti]
		if tr.EffFreq() == 0 {
			continue
		}
		if tr.Servers > 0 && active[t] >= tr.Servers {
			continue
		}
		ok, err := net.Enabled(t, n.Marking, nil)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		left, had := old[t]
		if !had || forceRestart[t] {
			if tr.Enabling != nil {
				left, _ = tr.Enabling.Const()
			} else {
				left = 0
			}
		}
		n.Enab = append(n.Enab, Remaining{Trans: t, Left: left})
	}
	sort.Slice(n.Enab, func(i, j int) bool { return n.Enab[i].Trans < n.Enab[j].Trans })
	return nil
}

// timedSuccessors expands one node.
func timedSuccessors(net *petri.Net, node *TimedNode) ([]timedSucc, error) {
	var succs []timedSucc
	// Start events: one successor per ripe transition.
	for _, e := range node.Enab {
		if e.Left != 0 {
			continue
		}
		t := e.Trans
		next := &TimedNode{
			Marking: node.Marking.Clone(),
			Pending: append([]Remaining(nil), node.Pending...),
		}
		net.Consume(t, next.Marking)
		f, _ := constOf(net.Trans[t].Firing)
		if f == 0 {
			net.Produce(t, next.Marking)
		} else {
			next.Pending = append(next.Pending, Remaining{Trans: t, Left: f})
			sortPending(next.Pending)
		}
		if err := refreshEnab(net, next, node.Enab, t); err != nil {
			return nil, err
		}
		succs = append(succs, timedSucc{node: next, label: t})
	}
	if len(succs) > 0 {
		return succs, nil
	}
	// No ripe transition: advance time to the next completion or
	// ripening.
	var delta petri.Time
	has := false
	for _, p := range node.Pending {
		if !has || p.Left < delta {
			delta, has = p.Left, true
		}
	}
	for _, e := range node.Enab {
		if e.Left > 0 && (!has || e.Left < delta) {
			delta, has = e.Left, true
		}
	}
	if !has {
		return nil, nil // deadlock
	}
	next := &TimedNode{Marking: node.Marking.Clone()}
	for _, p := range node.Pending {
		if p.Left-delta == 0 {
			net.Produce(p.Trans, next.Marking)
		} else {
			next.Pending = append(next.Pending, Remaining{Trans: p.Trans, Left: p.Left - delta})
		}
	}
	sortPending(next.Pending)
	aged := make([]Remaining, len(node.Enab))
	for i, e := range node.Enab {
		left := e.Left - delta
		if left < 0 {
			left = 0
		}
		aged[i] = Remaining{Trans: e.Trans, Left: left}
	}
	if err := refreshEnab(net, next, aged); err != nil {
		return nil, err
	}
	return []timedSucc{{node: next, label: TimeAdvance, delta: delta}}, nil
}

func sortPending(p []Remaining) {
	sort.Slice(p, func(i, j int) bool {
		if p[i].Left != p[j].Left {
			return p[i].Left < p[j].Left
		}
		return p[i].Trans < p[j].Trans
	})
}

func constOf(d petri.Delay) (petri.Time, bool) {
	if d == nil {
		return 0, true
	}
	return d.Const()
}

// Deadlocks returns nodes with no outgoing edges.
func (g *TimedGraph) Deadlocks() []int {
	var out []int
	for _, n := range g.Nodes {
		if len(n.Out) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// MaxTokens returns the largest token count place reaches in the timed
// graph (the timed bound can be much tighter than the untimed one,
// which is the point of timed analysis).
func (g *TimedGraph) MaxTokens(place string) (int, error) {
	id, ok := g.Net.PlaceID(place)
	if !ok {
		return 0, fmt.Errorf("reach: unknown place %q", place)
	}
	max := 0
	for _, n := range g.Nodes {
		if n.Marking[id] > max {
			max = n.Marking[id]
		}
	}
	return max, nil
}
