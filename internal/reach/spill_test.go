package reach

import (
	"context"
	"math/rand"
	"os"
	"testing"

	"repro/internal/modelgen"
	"repro/internal/petri"
)

// TestSpillStoreRoundTrip drives the framed-block codec across sealed,
// spilled and open blocks with random BFS-like walks and checks every
// access path, exactly like TestMarkingStoreRoundTrip does for the
// in-memory store.
func TestSpillStoreRoundTrip(t *testing.T) {
	const places, n = 7, 5*spillBlockEntries + 11
	r := rand.New(rand.NewSource(42))
	s := NewSpillStore(places, 0, t.TempDir()) // budget 0: every sealed block spills
	defer s.Close()
	ref := make([]petri.Marking, 0, n)
	cur := make(petri.Marking, places)
	for i := 0; i < n; i++ {
		for k := 0; k < 1+r.Intn(3); k++ {
			p := r.Intn(places)
			cur[p] += r.Intn(5) - 2
			if cur[p] < 0 {
				cur[p] = 0
			}
		}
		if id := s.Add(cur); id != i {
			t.Fatalf("Add returned id %d, want %d", id, i)
		}
		ref = append(ref, cur.Clone())
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("budget-0 spill store never spilled")
	}
	var buf petri.Marking
	for _, id := range r.Perm(n) {
		if got := s.At(id, nil); !got.Equal(ref[id]) {
			t.Fatalf("At(%d) = %v, want %v", id, got, ref[id])
		}
		buf = s.At(id, buf)
		if !buf.Equal(ref[id]) {
			t.Fatalf("At(%d, buf) = %v, want %v", id, buf, ref[id])
		}
	}
	for _, span := range [][2]int{{0, n}, {spillBlockEntries - 1, spillBlockEntries + 2}, {17, 17}, {n - 1, n}} {
		next := span[0]
		s.Span(span[0], span[1], func(id int, m petri.Marking) bool {
			if id != next {
				t.Fatalf("span %v: got id %d, want %d", span, id, next)
			}
			if !m.Equal(ref[id]) {
				t.Fatalf("span %v: id %d = %v, want %v", span, id, m, ref[id])
			}
			next++
			return true
		})
		if next != span[1] && span[0] < span[1] {
			t.Fatalf("span %v stopped at %d", span, next)
		}
	}
	var scratch petri.Marking
	for i := 0; i < 50; i++ {
		id := r.Intn(n)
		var eq bool
		eq, scratch = s.Equal(id, ref[id], scratch)
		if !eq {
			t.Fatalf("Equal(%d, ref[%d]) = false", id, id)
		}
		other := ref[id].Clone()
		other[r.Intn(places)]++
		eq, scratch = s.Equal(id, other, scratch)
		if eq {
			t.Fatalf("Equal(%d, mutated) = true", id)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("store error: %v", err)
	}
}

// TestSpillStoreCloseRemovesTempFile: the spill temp file must not
// outlive the store — Close removes it, and Close is idempotent.
func TestSpillStoreCloseRemovesTempFile(t *testing.T) {
	dir := t.TempDir()
	s := NewSpillStore(3, 0, dir)
	m := petri.Marking{1, 2, 3}
	for i := 0; i < 3*spillBlockEntries; i++ {
		m[0] = i
		s.Add(m)
	}
	if s.SpilledBytes() == 0 {
		t.Fatal("store never spilled")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("spill dir holds %d files, want 1", len(ents))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir still holds %d files after Close", len(ents))
	}
}

// TestBuildSpillMatchesMem is the cross-store identity property test:
// for in-memory budgets {0, tiny, huge} the spill-store graph must be
// bit-identical to the in-memory oracle — for the serial builder and
// every shard count — and the temp files must be gone afterwards.
func TestBuildSpillMatchesMem(t *testing.T) {
	nets := []struct {
		name string
		net  *petri.Net
		opt  Options
	}{
		{"mutex", mutexNet(t), Options{}},
		{"pipeline_8x3", modelgen.DeepPipeline(8, 3, 1), Options{}},
		{"forkjoin_4x3", modelgen.ForkJoin(4, 3, 3), Options{}},
		{"truncated", unboundedBranchNet(), Options{MaxStates: 500}},
	}
	budgets := []int64{0, 256, 1 << 30}
	for _, tc := range nets {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildSerial(context.Background(), tc.net, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, budget := range budgets {
				dir := t.TempDir()
				opt := tc.opt
				opt.Store, opt.SpillBudget, opt.SpillDir = StoreSpill, budget, dir

				got, err := BuildSerial(context.Background(), tc.net, opt)
				if err != nil {
					t.Fatalf("serial budget=%d: %v", budget, err)
				}
				graphsIdentical(t, want, got)
				if budget == 0 && want.StoreBytes() > spillBlockEntries*len(tc.net.Places) {
					if got.SpilledBytes() == 0 {
						t.Errorf("serial budget=0: nothing spilled for a %d-byte store", got.StoreBytes())
					}
				}
				if err := got.Close(); err != nil {
					t.Fatal(err)
				}

				for _, shards := range []int{1, 2, 8} {
					opt.Shards = shards
					got, err := Build(context.Background(), tc.net, opt)
					if err != nil {
						t.Fatalf("shards=%d budget=%d: %v", shards, budget, err)
					}
					graphsIdentical(t, want, got)
					if err := got.Close(); err != nil {
						t.Fatal(err)
					}
				}
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Fatalf("budget=%d: %d spill files left after Close", budget, len(ents))
				}
			}
		})
	}
}

// TestBuildSpillExceedsBudget is the headline property: an exploration
// whose marking store is far larger than the in-memory budget completes
// by spilling — MaxStates is no longer bounded by RAM.
func TestBuildSpillExceedsBudget(t *testing.T) {
	const budget = 1024
	net := modelgen.DeepPipeline(10, 4, 2)
	g, err := Build(context.Background(), net, Options{
		Store: StoreSpill, SpillBudget: budget, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Truncated {
		t.Fatal("exploration truncated")
	}
	if g.StoreBytes() <= 4*budget {
		t.Fatalf("store too small to prove anything: %d bytes", g.StoreBytes())
	}
	if g.SpilledBytes() == 0 {
		t.Fatal("nothing spilled despite exceeding the budget")
	}
	// The graph stays fully analyzable off the spilled store.
	want, err := BuildSerial(context.Background(), net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, want, g)
}

// TestBuildCancelled: a cancelled context aborts every construction
// entry point with ctx.Err() — and a cancelled spill build leaves no
// temp file behind.
func TestBuildCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net := mutexNet(t)
	if _, err := Build(ctx, net, Options{}); err != context.Canceled {
		t.Errorf("Build: err = %v, want context.Canceled", err)
	}
	if _, err := BuildSerial(ctx, net, Options{}); err != context.Canceled {
		t.Errorf("BuildSerial: err = %v, want context.Canceled", err)
	}
	if _, err := BuildTimed(ctx, net, Options{}); err != context.Canceled {
		t.Errorf("BuildTimed: err = %v, want context.Canceled", err)
	}
	if _, err := BuildTimedSerial(ctx, net, Options{}); err != context.Canceled {
		t.Errorf("BuildTimedSerial: err = %v, want context.Canceled", err)
	}
	if _, err := Coverability(ctx, net, Options{}); err != context.Canceled {
		t.Errorf("Coverability: err = %v, want context.Canceled", err)
	}
	dir := t.TempDir()
	if _, err := Build(ctx, net, Options{Store: StoreSpill, SpillDir: dir}); err != context.Canceled {
		t.Errorf("Build(spill): err = %v, want context.Canceled", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("cancelled spill build left %d temp files", len(ents))
	}
}

// TestCheckStore validates the store-name gate the flag and spec layers
// rely on.
func TestCheckStore(t *testing.T) {
	for _, ok := range []Options{
		{}, {Store: StoreMem}, {Store: StoreSpill},
		{SpillBudget: 4096}, {SpillDir: "/tmp"},
	} {
		if err := ok.CheckStore(); err != nil {
			t.Errorf("CheckStore(%+v) = %v", ok, err)
		}
	}
	bad := Options{Store: "fancy"}
	if err := bad.CheckStore(); err == nil {
		t.Error("unknown store name validated")
	}
	if got := (Options{SpillBudget: 1}).StoreName(); got != StoreSpill {
		t.Errorf("SpillBudget alone resolves to %q, want spill", got)
	}
	if got := (Options{}).StoreName(); got != StoreMem {
		t.Errorf("zero Options resolve to %q, want mem", got)
	}
}
