package reach

import "testing"

// FuzzParseFormula hardens the CTL formula parser the same way the
// expr/ptl/marking fuzz targets harden theirs: arbitrary input must
// either error or produce a formula whose String form re-parses to the
// same String. Malformed formulas must never panic — the parser sits
// on the pnut-reach command line and, via the reach sweep engine, on
// the simulation server's HTTP surface.
func FuzzParseFormula(f *testing.F) {
	for _, seed := range []string{
		"AG({a == 1})",
		"EF({a + b == 2}) && !deadlock",
		"AU({a}, {b})",
		"EU({a}, AG({b}))",
		"inev({a})",
		"( {a} || {b} )",
		"AG(EF({a}))",
		"EX(AX({p}))",
		"!( deadlock )",
		"AG({Bus_free + Bus_busy == 1})",
		"EG({x} )",
		"AF({a} && {b})",
		"AG({a)",
		"EU({a})",
		"XX({a})",
		"{a +}",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fm, err := ParseFormula(src)
		if err != nil {
			return
		}
		s := fm.String()
		fm2, err := ParseFormula(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\ninput: %q\nprinted: %q", err, src, s)
		}
		if s2 := fm2.String(); s2 != s {
			t.Fatalf("String is not stable:\nfirst:  %q\nsecond: %q", s, s2)
		}
	})
}
