package reach

import (
	"os"
	"testing"

	"repro/internal/petri"
)

// FuzzParseFormula hardens the CTL formula parser the same way the
// expr/ptl/marking fuzz targets harden theirs: arbitrary input must
// either error or produce a formula whose String form re-parses to the
// same String. Malformed formulas must never panic — the parser sits
// on the pnut-reach command line and, via the reach sweep engine, on
// the simulation server's HTTP surface.
func FuzzParseFormula(f *testing.F) {
	for _, seed := range []string{
		"AG({a == 1})",
		"EF({a + b == 2}) && !deadlock",
		"AU({a}, {b})",
		"EU({a}, AG({b}))",
		"inev({a})",
		"( {a} || {b} )",
		"AG(EF({a}))",
		"EX(AX({p}))",
		"!( deadlock )",
		"AG({Bus_free + Bus_busy == 1})",
		"EG({x} )",
		"AF({a} && {b})",
		"AG({a)",
		"EU({a})",
		"XX({a})",
		"{a +}",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fm, err := ParseFormula(src)
		if err != nil {
			return
		}
		s := fm.String()
		fm2, err := ParseFormula(s)
		if err != nil {
			t.Fatalf("String output does not re-parse: %v\ninput: %q\nprinted: %q", err, src, s)
		}
		if s2 := fm2.String(); s2 != s {
			t.Fatalf("String is not stable:\nfirst:  %q\nsecond: %q", s, s2)
		}
	})
}

// FuzzSpillBlock hardens the spill store's block decoders the same way
// FuzzColReader hardens the columnar trace codec: a corrupt or
// truncated spill frame (bit rot in the temp file) must error, never
// panic, never loop forever, and every decoded entry must carry
// in-range indices and non-negative counts. The seed corpus holds a
// frame written by the real encoder plus truncations and byte flips.
func FuzzSpillBlock(f *testing.F) {
	const places = 5
	// A genuine frame: fill one block through the production encoder
	// with budget 0 so it seals and spills, then read the file back.
	s := NewSpillStore(places, 0, f.TempDir())
	m := make(petri.Marking, places)
	for i := 0; i < spillBlockEntries; i++ {
		m[i%places] = i * 3 % 17
		s.Add(m)
	}
	if s.SpilledBytes() == 0 {
		f.Fatal("seed store never spilled")
	}
	valid, err := os.ReadFile(s.f.Name())
	if err != nil {
		f.Fatal(err)
	}
	valid = valid[:s.SpilledBytes()]
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{0, 1, 2, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	for _, pos := range []int{0, 1, 2, len(valid) / 2, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{0x00})                                // zero-length body
	f.Add([]byte{0x01, 0x00})                          // body with count 0
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})        // implausible body length
	f.Add(append([]byte(nil), append(valid, 0x00)...)) // trailing byte

	f.Fuzz(func(t *testing.T, frame []byte) {
		body, err := decodeSpillFrame(frame)
		if err != nil {
			return
		}
		last := -1
		n, err := decodeSpillBody(body, places, func(i int, m petri.Marking) bool {
			if i != last+1 {
				t.Fatalf("entry index %d after %d", i, last)
			}
			last = i
			if len(m) != places {
				t.Fatalf("entry %d has %d places, want %d", i, len(m), places)
			}
			for p, c := range m {
				if c < 0 {
					t.Fatalf("entry %d place %d decoded negative count %d", i, p, c)
				}
			}
			return true
		})
		if err != nil {
			return
		}
		if n != last+1 {
			t.Fatalf("count %d but %d entries decoded", n, last+1)
		}
		if n < 1 || n > spillBlockEntries {
			t.Fatalf("entry count %d out of range", n)
		}
	})
}
