package reach

import (
	"fmt"
	"strings"

	"repro/internal/petri"
)

// DOT renders the reachability graph in Graphviz dot syntax, with node
// labels showing the non-empty places of each marking and edges labeled
// by the firing transition. Deadlock nodes are drawn doubled.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Net.Name+"_reach")
	g.EachMarking(func(id int, m petri.Marking) bool {
		n := &g.Nodes[id]
		shape := "ellipse"
		if len(n.Out) == 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [shape=%s label=\"#%d\\n%s\"];\n",
			n.ID, shape, n.ID, strings.ReplaceAll(m.Format(g.Net), " ", "\\n"))
		for _, e := range n.Out {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", n.ID, e.To, g.Net.Trans[e.Trans].Name)
		}
		return true
	})
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the timed graph; time-advance edges are labeled with
// their delta and drawn dashed.
func (g *TimedGraph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Net.Name+"_treach")
	for _, n := range g.Nodes {
		shape := "ellipse"
		if len(n.Out) == 0 {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [shape=%s label=\"#%d\\n%s\"];\n",
			n.ID, shape, n.ID, strings.ReplaceAll(n.Marking.Format(g.Net), " ", "\\n"))
		for _, e := range n.Out {
			if e.Trans == TimeAdvance {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed label=\"+%d\"];\n", n.ID, e.To, e.Delta)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", n.ID, e.To, g.Net.Trans[e.Trans].Name)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
