package reach

import (
	"math/rand"
	"testing"

	"repro/internal/petri"
)

// TestMarkingStoreRoundTrip drives the delta/keyframe codec across
// block boundaries with random BFS-like walks (small per-step deltas)
// and checks every access path: random at, sequential span, equal.
func TestMarkingStoreRoundTrip(t *testing.T) {
	const places, n = 7, 5*storeBlock + 11
	r := rand.New(rand.NewSource(42))
	s := NewMemStore(places)
	ref := make([]petri.Marking, 0, n)
	cur := make(petri.Marking, places)
	for i := 0; i < n; i++ {
		// Mutate a few places, like firing a transition would.
		for k := 0; k < 1+r.Intn(3); k++ {
			p := r.Intn(places)
			cur[p] += r.Intn(5) - 2
			if cur[p] < 0 {
				cur[p] = 0
			}
		}
		if id := s.Add(cur); id != i {
			t.Fatalf("add returned id %d, want %d", id, i)
		}
		ref = append(ref, cur.Clone())
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Random access, out of order, with and without a reused buffer.
	var buf petri.Marking
	for _, id := range r.Perm(n) {
		if got := s.At(id, nil); !got.Equal(ref[id]) {
			t.Fatalf("at(%d) = %v, want %v", id, got, ref[id])
		}
		buf = s.At(id, buf)
		if !buf.Equal(ref[id]) {
			t.Fatalf("at(%d, buf) = %v, want %v", id, buf, ref[id])
		}
	}
	// Sequential spans, including ones that start mid-block.
	for _, span := range [][2]int{{0, n}, {storeBlock - 1, storeBlock + 2}, {17, 17}, {n - 1, n}} {
		next := span[0]
		s.Span(span[0], span[1], func(id int, m petri.Marking) bool {
			if id != next {
				t.Fatalf("span %v: got id %d, want %d", span, id, next)
			}
			if !m.Equal(ref[id]) {
				t.Fatalf("span %v: id %d = %v, want %v", span, id, m, ref[id])
			}
			next++
			return true
		})
		if next != span[1] && span[0] < span[1] {
			t.Fatalf("span %v stopped at %d", span, next)
		}
	}
	// equal: positive and negative.
	var scratch petri.Marking
	for i := 0; i < 50; i++ {
		id := r.Intn(n)
		var eq bool
		eq, scratch = s.Equal(id, ref[id], scratch)
		if !eq {
			t.Fatalf("equal(%d, ref[%d]) = false", id, id)
		}
		other := ref[id].Clone()
		other[r.Intn(places)] += 1
		eq, scratch = s.Equal(id, other, scratch)
		if eq {
			t.Fatalf("equal(%d, mutated) = true", id)
		}
	}
}

// TestHashMarkingDistinguishes sanity-checks the dedup hash: equal
// markings hash equal, and small perturbations change the hash (not a
// collision guarantee — dedup always verifies bytes — just a smoke
// check that the mixing isn't degenerate).
func TestHashMarkingDistinguishes(t *testing.T) {
	m := petri.Marking{3, 0, 200, 1, 0}
	if hashMarking(m) != hashMarking(m.Clone()) {
		t.Fatal("equal markings hash differently")
	}
	seen := map[uint64]bool{hashMarking(m): true}
	for i := range m {
		p := m.Clone()
		p[i]++
		h := hashMarking(p)
		if seen[h] {
			t.Fatalf("perturbing place %d collides", i)
		}
		seen[h] = true
	}
	// The swap of two unequal counts must change the hash (a pure sum
	// would not).
	sw := petri.Marking{0, 3, 200, 1, 0}
	if hashMarking(sw) == hashMarking(m) {
		t.Fatal("position-swapped marking collides")
	}
}
