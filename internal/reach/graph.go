// Package reach implements the P-NUT reachability graph analyzer: the
// untimed and timed state-space constructions referenced in Section 4
// ([MR87] for untimed interactive state-space analysis, [RP84] for the
// timed reachability graphs), together with the branching-time
// temporal-logic checker used to verify "high-level specification of
// the expected behavior of a system".
//
// Where Tracertool (package tracer) tests a property on one simulation
// trace, the reachability analyzer proves it over all possible
// behaviours — the paper contrasts exactly these two modes.
package reach

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/petri"
)

// Options control graph construction.
type Options struct {
	// MaxStates caps the number of nodes explored (default 100 000).
	MaxStates int
	// BoundCap flags a place as potentially unbounded when its token
	// count exceeds this value (default 4096). Use Coverability for a
	// definite answer on nets without inhibitor arcs.
	BoundCap int
}

func (o *Options) defaults() {
	if o.MaxStates <= 0 {
		o.MaxStates = 100_000
	}
	if o.BoundCap <= 0 {
		o.BoundCap = 4096
	}
}

// Edge is one graph transition.
type Edge struct {
	Trans petri.TransID
	To    int
}

// Node is one reachable marking.
type Node struct {
	ID      int
	Marking petri.Marking
	Out     []Edge
}

// Graph is a reachability graph. Node 0 is the initial marking.
type Graph struct {
	Net   *petri.Net
	Nodes []*Node
	// Truncated is true if MaxStates was hit; analyses are then lower
	// bounds only.
	Truncated bool
	// CapExceeded names a place whose token count exceeded BoundCap
	// (empty if none): a strong hint of unboundedness.
	CapExceeded string
}

// Build constructs the untimed reachability graph: firing times and
// enabling times are ignored and every enabled transition can fire
// atomically. Interpreted nets (predicates or actions) are rejected —
// their state includes program variables, which the graph cannot
// enumerate faithfully.
func Build(net *petri.Net, opt Options) (*Graph, error) {
	opt.defaults()
	if net.Interpreted() {
		return nil, fmt.Errorf("reach: net %q is interpreted (predicates/actions); reachability requires a plain net", net.Name)
	}
	g := &Graph{Net: net}
	index := make(map[string]int)
	m0 := net.InitialMarking()
	g.Nodes = append(g.Nodes, &Node{ID: 0, Marking: m0})
	index[m0.Key()] = 0
	work := []int{0}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		node := g.Nodes[id]
		for ti := range net.Trans {
			t := petri.TransID(ti)
			ok, err := net.Enabled(t, node.Marking, nil)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			next := node.Marking.Clone()
			net.Consume(t, next)
			net.Produce(t, next)
			for pi, c := range next {
				if c > opt.BoundCap && g.CapExceeded == "" {
					g.CapExceeded = net.Places[pi].Name
				}
			}
			key := next.Key()
			nid, seen := index[key]
			if !seen {
				if len(g.Nodes) >= opt.MaxStates {
					g.Truncated = true
					continue
				}
				nid = len(g.Nodes)
				g.Nodes = append(g.Nodes, &Node{ID: nid, Marking: next})
				index[key] = nid
				work = append(work, nid)
			}
			node.Out = append(node.Out, Edge{Trans: t, To: nid})
		}
	}
	return g, nil
}

// Deadlocks returns the IDs of nodes with no outgoing edges.
func (g *Graph) Deadlocks() []int {
	var out []int
	for _, n := range g.Nodes {
		if len(n.Out) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Bound returns the maximum token count place reaches across the graph.
func (g *Graph) Bound(place string) (int, error) {
	id, ok := g.Net.PlaceID(place)
	if !ok {
		return 0, fmt.Errorf("reach: unknown place %q", place)
	}
	max := 0
	for _, n := range g.Nodes {
		if n.Marking[id] > max {
			max = n.Marking[id]
		}
	}
	return max, nil
}

// DeadTransitions returns the transitions that fire on no edge of the
// graph (L0-dead in the classical liveness hierarchy).
func (g *Graph) DeadTransitions() []string {
	fired := make([]bool, g.Net.NumTrans())
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			fired[e.Trans] = true
		}
	}
	var out []string
	for i, f := range fired {
		if !f {
			out = append(out, g.Net.Trans[i].Name)
		}
	}
	return out
}

// CheckInvariant verifies that the weighted token sum over the named
// places is the same in every reachable marking (a P-invariant, e.g.
// Bus_free + Bus_busy = 1). It returns the invariant value, or an error
// naming the first violating node.
func (g *Graph) CheckInvariant(weights map[string]int) (int, error) {
	ids := make(map[petri.PlaceID]int, len(weights))
	for name, w := range weights {
		id, ok := g.Net.PlaceID(name)
		if !ok {
			return 0, fmt.Errorf("reach: unknown place %q in invariant", name)
		}
		ids[id] = w
	}
	sum := func(m petri.Marking) int {
		s := 0
		for id, w := range ids {
			s += w * m[id]
		}
		return s
	}
	want := sum(g.Nodes[0].Marking)
	for _, n := range g.Nodes[1:] {
		if got := sum(n.Marking); got != want {
			return 0, fmt.Errorf("reach: invariant violated at node %d (%s): %d != %d",
				n.ID, n.Marking.Format(g.Net), got, want)
		}
	}
	return want, nil
}

// Summary renders a human-readable analysis overview.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reachability graph of %q: %d states", g.Net.Name, len(g.Nodes))
	if g.Truncated {
		fmt.Fprintf(&b, " (truncated)")
	}
	fmt.Fprintf(&b, "\n")
	if g.CapExceeded != "" {
		fmt.Fprintf(&b, "  place %q exceeded the bound cap (likely unbounded)\n", g.CapExceeded)
	}
	dl := g.Deadlocks()
	fmt.Fprintf(&b, "  deadlocks: %d\n", len(dl))
	for i, id := range dl {
		if i == 5 {
			fmt.Fprintf(&b, "    ...\n")
			break
		}
		fmt.Fprintf(&b, "    #%d %s\n", id, g.Nodes[id].Marking.Format(g.Net))
	}
	if dead := g.DeadTransitions(); len(dead) > 0 {
		fmt.Fprintf(&b, "  dead transitions: %s\n", strings.Join(dead, ", "))
	}
	return b.String()
}

// --- coverability (Karp-Miller) ---------------------------------------

// Omega is the unbounded-place pseudo-count in coverability markings.
const Omega = int(^uint(0) >> 1) // max int

// CoverNode is a node of the Karp-Miller coverability tree, with Omega
// marking components for unbounded places.
type CoverNode struct {
	Marking petri.Marking
}

// Coverability runs the Karp-Miller construction and returns the set of
// places that are unbounded. Nets with inhibitor arcs are rejected: the
// construction is not sound for them (and reachability itself is
// undecidable).
func Coverability(net *petri.Net, opt Options) (unbounded []string, err error) {
	opt.defaults()
	if net.Interpreted() {
		return nil, fmt.Errorf("reach: interpreted nets are not supported by coverability")
	}
	for i := range net.Trans {
		if len(net.Trans[i].Inhib) > 0 {
			return nil, fmt.Errorf("reach: net %q has inhibitor arcs; Karp-Miller coverability is unsound for them", net.Name)
		}
	}
	type node struct {
		m      petri.Marking
		parent *node
	}
	enabled := func(t petri.TransID, m petri.Marking) bool {
		for _, a := range net.Trans[t].In {
			if m[a.Place] != Omega && m[a.Place] < a.Weight {
				return false
			}
		}
		return true
	}
	fire := func(t petri.TransID, m petri.Marking) petri.Marking {
		next := m.Clone()
		for _, a := range net.Trans[t].In {
			if next[a.Place] != Omega {
				next[a.Place] -= a.Weight
			}
		}
		for _, a := range net.Trans[t].Out {
			if next[a.Place] != Omega {
				next[a.Place] += a.Weight
			}
		}
		return next
	}
	covers := func(big, small petri.Marking) bool {
		for i := range big {
			if small[i] == Omega && big[i] != Omega {
				return false
			}
			if big[i] != Omega && big[i] < small[i] {
				return false
			}
		}
		return true
	}
	isOmega := make([]bool, net.NumPlaces())
	seen := make(map[string]bool)
	root := &node{m: net.InitialMarking()}
	work := []*node{root}
	seen[root.m.Key()] = true
	count := 0
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		count++
		if count > opt.MaxStates {
			return nil, fmt.Errorf("reach: coverability exceeded %d states", opt.MaxStates)
		}
		for ti := range net.Trans {
			t := petri.TransID(ti)
			if !enabled(t, n.m) {
				continue
			}
			next := fire(t, n.m)
			// Accelerate: if an ancestor is strictly covered, pump the
			// strictly larger places to Omega.
			for a := n; a != nil; a = a.parent {
				if covers(next, a.m) && !next.Equal(a.m) {
					for i := range next {
						if a.m[i] != Omega && next[i] != Omega && next[i] > a.m[i] {
							next[i] = Omega
							isOmega[i] = true
						}
					}
				}
			}
			key := next.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			work = append(work, &node{m: next, parent: n})
		}
	}
	for i, u := range isOmega {
		if u {
			unbounded = append(unbounded, net.Places[i].Name)
		}
	}
	sort.Strings(unbounded)
	return unbounded, nil
}
