// Package reach implements the P-NUT reachability graph analyzer: the
// untimed and timed state-space constructions referenced in Section 4
// ([MR87] for untimed interactive state-space analysis, [RP84] for the
// timed reachability graphs), together with the branching-time
// temporal-logic checker used to verify "high-level specification of
// the expected behavior of a system".
//
// Where Tracertool (package tracer) tests a property on one simulation
// trace, the reachability analyzer proves it over all possible
// behaviours — the paper contrasts exactly these two modes.
//
// The untimed construction is a sharded-frontier parallel BFS with a
// canonical numbering contract: node ids, edge order, markings and
// truncation flags are bit-identical to the serial FIFO build
// (BuildSerial, kept as the test oracle) for every shard count.
// Markings live in a compact delta-encoded store (see store.go)
// instead of one []int plus an interning string per node.
package reach

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/petri"
)

// State store names for Options.Store.
const (
	StoreMem   = "mem"
	StoreSpill = "spill"
)

// Options control graph construction.
type Options struct {
	// MaxStates caps the number of nodes explored (default 100 000).
	MaxStates int
	// BoundCap flags a place as potentially unbounded when its token
	// count exceeds this value (default 4096). Use Coverability for a
	// definite answer on nets without inhibitor arcs.
	BoundCap int
	// Shards is the number of exploration goroutines Build and
	// BuildTimed fan each frontier level across (0 or less =
	// GOMAXPROCS). The graph — node numbering, edge order, flags — is
	// bit-identical for every value; shards only change wall-clock
	// time.
	Shards int
	// Store selects the marking store: StoreMem (the in-memory delta
	// store) or StoreSpill (framed blocks spilling to a temp file past
	// SpillBudget bytes). Empty resolves to StoreSpill when SpillBudget
	// or SpillDir is set, else StoreMem. Graphs are bit-identical
	// across stores; the store only changes where the bytes live.
	Store string
	// SpillBudget is the spill store's in-memory byte allowance for
	// sealed marking blocks (0 with the spill store = spill every
	// sealed block to disk).
	SpillBudget int64
	// SpillDir is the directory for spill temp files ("" = the system
	// temp dir).
	SpillDir string
}

func (o *Options) defaults() {
	if o.MaxStates <= 0 {
		o.MaxStates = 100_000
	}
	if o.BoundCap <= 0 {
		o.BoundCap = 4096
	}
}

// StoreName resolves the effective store selection: an explicit Store
// wins; otherwise setting SpillBudget or SpillDir implies the spill
// store, and the default is the in-memory store.
func (o Options) StoreName() string {
	if o.Store != "" {
		return o.Store
	}
	if o.SpillBudget > 0 || o.SpillDir != "" {
		return StoreSpill
	}
	return StoreMem
}

// CheckStore validates the store selection without building anything —
// the flag/spec layers call it so a typo fails at parse time, not
// mid-job.
func (o Options) CheckStore() error {
	switch o.StoreName() {
	case StoreMem, StoreSpill:
		return nil
	}
	return fmt.Errorf("reach: unknown state store %q (want %q or %q)", o.Store, StoreMem, StoreSpill)
}

// newStateStore builds the store Options select.
func newStateStore(opt Options, places int) (StateStore, error) {
	switch opt.StoreName() {
	case StoreMem:
		return NewMemStore(places), nil
	case StoreSpill:
		return NewSpillStore(places, opt.SpillBudget, opt.SpillDir), nil
	}
	return nil, opt.CheckStore()
}

// Edge is one graph transition.
type Edge struct {
	Trans petri.TransID
	To    int
}

// Node is one reachable marking: its id and outgoing edges. The
// marking itself lives in the graph's compact store — see MarkingOf
// and EachMarking.
type Node struct {
	ID  int
	Out []Edge
}

// Graph is a reachability graph. Node 0 is the initial marking. Close
// the graph when done: the spill store holds a temp file.
type Graph struct {
	Net   *petri.Net
	Nodes []Node
	store StateStore
	// Truncated is true if MaxStates was hit; construction stops at
	// that point, so analyses are lower bounds only.
	Truncated bool
	// CapExceeded names a place whose token count exceeded BoundCap
	// (empty if none): a strong hint of unboundedness.
	CapExceeded string
}

// MarkingOf decodes and returns the marking of one node. Each call
// allocates; prefer EachMarking for whole-graph scans.
func (g *Graph) MarkingOf(id int) petri.Marking { return g.store.At(id, nil) }

// EachMarking calls fn for every node in id order with a decode buffer
// that is reused between calls — fn must not retain m. Returning false
// stops the scan. A full scan decodes the store once, sequentially,
// which is how Bound, CheckInvariant and the CTL atom evaluation walk
// million-state graphs without per-node allocation.
func (g *Graph) EachMarking(fn func(id int, m petri.Marking) bool) {
	g.store.Span(0, g.store.Len(), fn)
}

// StoreBytes returns the encoded size of the marking store — the
// space the state space itself occupies (memory plus spill file),
// excluding adjacency.
func (g *Graph) StoreBytes() int { return g.store.Bytes() }

// SpilledBytes returns how many encoded marking bytes currently live
// on disk rather than in memory (0 for the in-memory store).
func (g *Graph) SpilledBytes() int64 {
	if s, ok := g.store.(*SpillStore); ok {
		return s.SpilledBytes()
	}
	return 0
}

// Close releases the marking store's resources (the spill store's temp
// file). The graph must not be used afterwards. Safe on a nil-store
// graph and idempotent.
func (g *Graph) Close() error {
	if g == nil || g.store == nil {
		return nil
	}
	return g.store.Close()
}

// Build constructs the untimed reachability graph: firing times and
// enabling times are ignored and every enabled transition can fire
// atomically. Interpreted nets (predicates or actions) are rejected —
// their state includes program variables, which the graph cannot
// enumerate faithfully.
//
// The search is a level-synchronized parallel BFS: each frontier level
// is expanded by opt.Shards goroutines, successor markings are
// deduplicated in per-shard hash maps, and new nodes are then
// committed sequentially in the exact (node, transition) order the
// serial FIFO build visits them — so the result is bit-identical to
// BuildSerial for any shard count. Construction stops the moment a
// new state would exceed MaxStates (Truncated is set and the graph
// holds exactly MaxStates nodes).
//
// ctx is checked at every level barrier (and the spill store's I/O
// errors surface there too); on cancellation the partial graph is
// discarded, its store closed, and ctx.Err() returned.
func Build(ctx context.Context, net *petri.Net, opt Options) (*Graph, error) {
	opt.defaults()
	if net.Interpreted() {
		return nil, fmt.Errorf("reach: net %q is interpreted (predicates/actions); reachability requires a plain net", net.Name)
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	store, err := newStateStore(opt, net.NumPlaces())
	if err != nil {
		return nil, err
	}
	g := &Graph{Net: net, store: store}
	done := false
	defer func() {
		if !done {
			g.Close()
		}
	}()
	m0 := net.InitialMarking()
	g.Nodes = append(g.Nodes, Node{ID: 0})
	g.store.Add(m0)

	// Per-shard dedup: a marking is owned by shard hash%shards; the
	// map holds the committed node ids carrying that hash (collisions
	// resolved by comparing against the store).
	seen := make([]map[uint64][]int32, shards)
	for i := range seen {
		seen[i] = make(map[uint64][]int32)
	}
	h0 := hashMarking(m0)
	seen[h0%uint64(shards)][h0] = append(seen[h0%uint64(shards)][h0], 0)

	// cand is one successor produced during frontier expansion. Its
	// resolution is filled in by the dedup phase: node >= 0 is a
	// committed node id; dup >= 0 says "same new marking as the
	// earlier candidate with that global sequence number"; both -1
	// means a genuinely new marking.
	type cand struct {
		m    petri.Marking
		hash uint64
		t    petri.TransID
		node int32
		dup  int32
	}

	var (
		scratch = make([]petri.Marking, shards) // per-shard store decode buffers
		errs    = make([]error, shards)
	)
	// Frontier levels are contiguous id ranges: [lo, hi) was assigned
	// last round, in order, exactly like the serial FIFO queue.
	lo, hi := 0, 1
	for lo < hi && !g.Truncated {
		// Level barrier: cancellation and store errors (spill I/O) are
		// checked here, between rounds, where no goroutine is in flight.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := g.store.Err(); err != nil {
			return nil, err
		}
		// Phase A — expand: decode each frontier marking and fire every
		// enabled transition, in parallel over contiguous chunks. Only
		// reads the store (no adds are in flight).
		perNode := make([][]cand, hi-lo)
		chunk := (hi - lo + shards - 1) / shards
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			a, b := lo+w*chunk, lo+(w+1)*chunk
			if a >= hi {
				break
			}
			if b > hi {
				b = hi
			}
			wg.Add(1)
			go func(w, a, b int) {
				defer wg.Done()
				g.store.Span(a, b, func(id int, m petri.Marking) bool {
					var out []cand
					for ti := range net.Trans {
						t := petri.TransID(ti)
						ok, err := net.Enabled(t, m, nil)
						if err != nil {
							errs[w] = err
							return false
						}
						if !ok {
							continue
						}
						next := m.Clone()
						net.Consume(t, next)
						net.Produce(t, next)
						out = append(out, cand{m: next, hash: hashMarking(next), t: t})
					}
					perNode[id-lo] = out
					return true
				})
			}(w, a, b)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Flatten to the global candidate order — (node asc, transition
		// asc), the order the serial build visits successors — and
		// bucket each candidate's sequence number to its owning shard.
		var flat []cand
		for _, out := range perNode {
			flat = append(flat, out...)
		}
		byShard := make([][]int32, shards)
		for seq := range flat {
			s := flat[seq].hash % uint64(shards)
			byShard[s] = append(byShard[s], int32(seq))
		}

		// Phase B — dedup: each shard resolves its candidates against
		// its committed ids and against earlier candidates of this
		// round, in global order. Shards touch disjoint maps and
		// disjoint candidates; the store is again read-only.
		for w := 0; w < shards; w++ {
			if len(byShard[w]) == 0 {
				continue
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var pend map[uint64][]int32 // hash -> seqs of new markings this round
				for _, seq := range byShard[w] {
					c := &flat[seq]
					c.node, c.dup = -1, -1
					match := false
					for _, id := range seen[w][c.hash] {
						var eq bool
						eq, scratch[w] = g.store.Equal(int(id), c.m, scratch[w])
						if eq {
							c.node = id
							match = true
							break
						}
					}
					if match {
						continue
					}
					for _, ps := range pend[c.hash] {
						if flat[ps].m.Equal(c.m) {
							c.dup = ps
							match = true
							break
						}
					}
					if match {
						continue
					}
					if pend == nil {
						pend = make(map[uint64][]int32)
					}
					pend[c.hash] = append(pend[c.hash], int32(seq))
				}
			}(w)
		}
		wg.Wait()

		// Phase C — commit, sequentially in global candidate order:
		// bound-cap detection, id assignment, store appends, edges and
		// truncation all happen exactly as in the serial build.
		assigned := make([]int32, len(flat))
		lvlLo := len(g.Nodes)
		seq := 0
	commit:
		for i, out := range perNode {
			src := lo + i
			for range out {
				c := &flat[seq]
				if g.CapExceeded == "" {
					for pi, cnt := range c.m {
						if cnt > opt.BoundCap {
							g.CapExceeded = net.Places[pi].Name
							break
						}
					}
				}
				var nid int32
				switch {
				case c.node >= 0:
					nid = c.node
				case c.dup >= 0:
					nid = assigned[c.dup]
				default:
					if len(g.Nodes) >= opt.MaxStates {
						g.Truncated = true
						break commit
					}
					nid = int32(len(g.Nodes))
					g.Nodes = append(g.Nodes, Node{ID: int(nid)})
					g.store.Add(c.m)
					seen[c.hash%uint64(shards)][c.hash] = append(seen[c.hash%uint64(shards)][c.hash], nid)
				}
				assigned[seq] = nid
				g.Nodes[src].Out = append(g.Nodes[src].Out, Edge{Trans: c.t, To: int(nid)})
				seq++
			}
		}
		lo, hi = lvlLo, len(g.Nodes)
	}
	if err := g.store.Err(); err != nil {
		return nil, err
	}
	done = true
	return g, nil
}

// BuildSerial is the plain serial BFS construction — the algorithm
// Build had before the sharded search, kept as the bit-identity oracle
// the parallel build is tested against. Markings are interned through
// Marking.Key() strings; nodes are processed with an index cursor (no
// queue-head reslicing, so the visited prefix can be collected) and
// construction stops the moment MaxStates is hit, exactly like Build.
// ctx is checked every serialCheckEvery nodes.
func BuildSerial(ctx context.Context, net *petri.Net, opt Options) (*Graph, error) {
	opt.defaults()
	if net.Interpreted() {
		return nil, fmt.Errorf("reach: net %q is interpreted (predicates/actions); reachability requires a plain net", net.Name)
	}
	store, err := newStateStore(opt, net.NumPlaces())
	if err != nil {
		return nil, err
	}
	g := &Graph{Net: net, store: store}
	done := false
	defer func() {
		if !done {
			g.Close()
		}
	}()
	index := make(map[string]int)
	m0 := net.InitialMarking()
	g.Nodes = append(g.Nodes, Node{ID: 0})
	g.store.Add(m0)
	index[m0.Key()] = 0
	var cur petri.Marking
	for id := 0; id < len(g.Nodes) && !g.Truncated; id++ {
		if id%serialCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := g.store.Err(); err != nil {
				return nil, err
			}
		}
		cur = g.store.At(id, cur)
		m := cur
		for ti := range net.Trans {
			t := petri.TransID(ti)
			ok, err := net.Enabled(t, m, nil)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			next := m.Clone()
			net.Consume(t, next)
			net.Produce(t, next)
			if g.CapExceeded == "" {
				for pi, c := range next {
					if c > opt.BoundCap {
						g.CapExceeded = net.Places[pi].Name
						break
					}
				}
			}
			key := next.Key()
			nid, seen := index[key]
			if !seen {
				if len(g.Nodes) >= opt.MaxStates {
					g.Truncated = true
					break
				}
				nid = len(g.Nodes)
				g.Nodes = append(g.Nodes, Node{ID: nid})
				g.store.Add(next)
				index[key] = nid
			}
			g.Nodes[id].Out = append(g.Nodes[id].Out, Edge{Trans: t, To: nid})
		}
	}
	if err := g.store.Err(); err != nil {
		return nil, err
	}
	done = true
	return g, nil
}

// serialCheckEvery is how often (in processed nodes) the serial
// builders poll ctx and the store's sticky error.
const serialCheckEvery = 1024

// Deadlocks returns the IDs of nodes with no outgoing edges.
func (g *Graph) Deadlocks() []int {
	var out []int
	for i := range g.Nodes {
		if len(g.Nodes[i].Out) == 0 {
			out = append(out, g.Nodes[i].ID)
		}
	}
	return out
}

// Bound returns the maximum token count place reaches across the graph.
func (g *Graph) Bound(place string) (int, error) {
	id, ok := g.Net.PlaceID(place)
	if !ok {
		return 0, fmt.Errorf("reach: unknown place %q", place)
	}
	max := 0
	g.EachMarking(func(_ int, m petri.Marking) bool {
		if m[id] > max {
			max = m[id]
		}
		return true
	})
	return max, nil
}

// DeadTransitions returns the transitions that fire on no edge of the
// graph (L0-dead in the classical liveness hierarchy).
func (g *Graph) DeadTransitions() []string {
	fired := make([]bool, g.Net.NumTrans())
	for i := range g.Nodes {
		for _, e := range g.Nodes[i].Out {
			fired[e.Trans] = true
		}
	}
	var out []string
	for i, f := range fired {
		if !f {
			out = append(out, g.Net.Trans[i].Name)
		}
	}
	return out
}

// CheckInvariant verifies that the weighted token sum over the named
// places is the same in every reachable marking (a P-invariant, e.g.
// Bus_free + Bus_busy = 1). It returns the invariant value, or an error
// naming the first violating node.
func (g *Graph) CheckInvariant(weights map[string]int) (int, error) {
	ids := make(map[petri.PlaceID]int, len(weights))
	for name, w := range weights {
		id, ok := g.Net.PlaceID(name)
		if !ok {
			return 0, fmt.Errorf("reach: unknown place %q in invariant", name)
		}
		ids[id] = w
	}
	sum := func(m petri.Marking) int {
		s := 0
		for id, w := range ids {
			s += w * m[id]
		}
		return s
	}
	want, violated := 0, -1
	g.EachMarking(func(id int, m petri.Marking) bool {
		got := sum(m)
		if id == 0 {
			want = got
			return true
		}
		if got != want {
			violated = id
			return false
		}
		return true
	})
	if violated >= 0 {
		m := g.MarkingOf(violated)
		return 0, fmt.Errorf("reach: invariant violated at node %d (%s): %d != %d",
			violated, m.Format(g.Net), sum(m), want)
	}
	return want, nil
}

// Summary renders a human-readable analysis overview.
func (g *Graph) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reachability graph of %q: %d states", g.Net.Name, len(g.Nodes))
	if g.Truncated {
		fmt.Fprintf(&b, " (truncated)")
	}
	fmt.Fprintf(&b, "\n")
	if g.CapExceeded != "" {
		fmt.Fprintf(&b, "  place %q exceeded the bound cap (likely unbounded)\n", g.CapExceeded)
	}
	dl := g.Deadlocks()
	fmt.Fprintf(&b, "  deadlocks: %d\n", len(dl))
	for i, id := range dl {
		if i == 5 {
			fmt.Fprintf(&b, "    ...\n")
			break
		}
		fmt.Fprintf(&b, "    #%d %s\n", id, g.MarkingOf(id).Format(g.Net))
	}
	if dead := g.DeadTransitions(); len(dead) > 0 {
		fmt.Fprintf(&b, "  dead transitions: %s\n", strings.Join(dead, ", "))
	}
	return b.String()
}

// --- coverability (Karp-Miller) ---------------------------------------

// Omega is the unbounded-place pseudo-count in coverability markings.
const Omega = int(^uint(0) >> 1) // max int

// CoverNode is a node of the Karp-Miller coverability tree, with Omega
// marking components for unbounded places.
type CoverNode struct {
	Marking petri.Marking
}

// Coverability runs the Karp-Miller construction and returns the set of
// places that are unbounded. Nets with inhibitor arcs are rejected: the
// construction is not sound for them (and reachability itself is
// undecidable). ctx is checked every serialCheckEvery expanded nodes.
func Coverability(ctx context.Context, net *petri.Net, opt Options) (unbounded []string, err error) {
	opt.defaults()
	if net.Interpreted() {
		return nil, fmt.Errorf("reach: interpreted nets are not supported by coverability")
	}
	for i := range net.Trans {
		if len(net.Trans[i].Inhib) > 0 {
			return nil, fmt.Errorf("reach: net %q has inhibitor arcs; Karp-Miller coverability is unsound for them", net.Name)
		}
	}
	type node struct {
		m      petri.Marking
		parent *node
	}
	enabled := func(t petri.TransID, m petri.Marking) bool {
		for _, a := range net.Trans[t].In {
			if m[a.Place] != Omega && m[a.Place] < a.Weight {
				return false
			}
		}
		return true
	}
	fire := func(t petri.TransID, m petri.Marking) petri.Marking {
		next := m.Clone()
		for _, a := range net.Trans[t].In {
			if next[a.Place] != Omega {
				next[a.Place] -= a.Weight
			}
		}
		for _, a := range net.Trans[t].Out {
			if next[a.Place] != Omega {
				next[a.Place] += a.Weight
			}
		}
		return next
	}
	covers := func(big, small petri.Marking) bool {
		for i := range big {
			if small[i] == Omega && big[i] != Omega {
				return false
			}
			if big[i] != Omega && big[i] < small[i] {
				return false
			}
		}
		return true
	}
	isOmega := make([]bool, net.NumPlaces())
	seen := make(map[string]bool)
	root := &node{m: net.InitialMarking()}
	work := []*node{root}
	seen[root.m.Key()] = true
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	count := 0
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		count++
		if count > opt.MaxStates {
			return nil, fmt.Errorf("reach: coverability exceeded %d states", opt.MaxStates)
		}
		if count%serialCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for ti := range net.Trans {
			t := petri.TransID(ti)
			if !enabled(t, n.m) {
				continue
			}
			next := fire(t, n.m)
			// Accelerate: if an ancestor is strictly covered, pump the
			// strictly larger places to Omega.
			for a := n; a != nil; a = a.parent {
				if covers(next, a.m) && !next.Equal(a.m) {
					for i := range next {
						if a.m[i] != Omega && next[i] != Omega && next[i] > a.m[i] {
							next[i] = Omega
							isOmega[i] = true
						}
					}
				}
			}
			key := next.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			work = append(work, &node{m: next, parent: n})
		}
	}
	for i, u := range isOmega {
		if u {
			unbounded = append(unbounded, net.Places[i].Name)
		}
	}
	sort.Strings(unbounded)
	return unbounded, nil
}
