// SpillStore is the disk-spillable StateStore: markings are sealed
// into self-contained, length-prefixed varint-delta blocks (the same
// techniques as the columnar trace codec in internal/trace/col.go),
// and once the sealed blocks held in memory exceed a byte budget the
// oldest spill to a temp file. A block index keeps random access at
// one block decode whether the block is in memory or on disk, and
// frontier expansion (Span) streams blocks sequentially — so MaxStates
// can exceed what RAM would hold.
package reach

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"

	"repro/internal/petri"
)

const (
	// spillBlockEntries is the number of markings per sealed block: the
	// first entry is a keyframe (uvarint counts), the rest zigzag-varint
	// deltas against the previous entry. Worst-case random access
	// decodes one block.
	spillBlockEntries = 64
	// maxSpillBody bounds a plausible block body; larger length prefixes
	// are rejected as corruption before any allocation.
	maxSpillBody = 1 << 26
	// maxSpillCount bounds a plausible token count; decoded counts
	// outside [0, maxSpillCount] are rejected as corruption.
	maxSpillCount = 1 << 40
)

// spillBlock is one sealed block: held in memory (body != nil) or
// spilled to the temp file at [off, off+len).
type spillBlock struct {
	body []byte
	off  int64
	len  int
}

// SpillStore implements StateStore with a bounded in-memory footprint.
// Appends seal every spillBlockEntries markings into a framed block;
// sealed blocks spill to a temp file, oldest first, whenever their
// total size exceeds the budget (budget 0 spills every sealed block).
// Reads of spilled blocks go through ReadAt, so they are safe
// concurrently, matching the StateStore contract.
type SpillStore struct {
	places int
	budget int64
	dir    string

	blocks []spillBlock
	cur    []byte // open block: encoded entries, no count prefix yet
	curN   int
	prev   petri.Marking
	n      int

	memBytes  int64 // sealed bodies still in memory
	spilled   int64 // bytes written to the temp file
	nextSpill int   // first sealed block not yet spilled
	f         *os.File
	fileOff   int64
	closed    bool

	pool  sync.Pool // *[]byte frame read buffers
	errMu sync.Mutex
	err   error
}

// NewSpillStore returns an empty spillable store. budget is the
// in-memory byte allowance for sealed blocks (0 = spill every sealed
// block); dir is the temp-file directory ("" = the system temp dir).
// The temp file is created lazily on first spill and removed by Close.
func NewSpillStore(places int, budget int64, dir string) *SpillStore {
	if budget < 0 {
		budget = 0
	}
	return &SpillStore{places: places, budget: budget, dir: dir}
}

// Len returns the number of stored markings.
func (s *SpillStore) Len() int { return s.n }

// Bytes returns the encoded size in bytes, in memory plus on disk.
func (s *SpillStore) Bytes() int { return int(s.memBytes+s.spilled) + len(s.cur) }

// SpilledBytes returns how many encoded bytes currently live in the
// temp file rather than memory.
func (s *SpillStore) SpilledBytes() int64 { return s.spilled }

// Err returns the first I/O or decode error the store hit.
func (s *SpillStore) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

func (s *SpillStore) setErr(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Close removes the temp file. It is idempotent; reads after Close are
// undefined.
func (s *SpillStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.f == nil {
		return nil
	}
	name := s.f.Name()
	err := s.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// Add appends m (which is not retained) and returns its id.
func (s *SpillStore) Add(m petri.Marking) int {
	id := s.n
	if s.curN == 0 {
		for _, c := range m {
			s.cur = binary.AppendUvarint(s.cur, uint64(c))
		}
	} else {
		for i, c := range m {
			s.cur = binary.AppendVarint(s.cur, int64(c-s.prev[i]))
		}
	}
	s.prev = append(s.prev[:0], m...)
	s.curN++
	s.n = id + 1
	if s.curN == spillBlockEntries {
		s.seal()
	}
	return id
}

// seal closes the open block: the body (count prefix + entries) joins
// the sealed set, and the oldest sealed blocks spill while the
// in-memory total exceeds the budget.
func (s *SpillStore) seal() {
	body := make([]byte, 0, len(s.cur)+2)
	body = binary.AppendUvarint(body, uint64(s.curN))
	body = append(body, s.cur...)
	s.blocks = append(s.blocks, spillBlock{body: body})
	s.memBytes += int64(len(body))
	s.cur = s.cur[:0]
	s.curN = 0
	for s.memBytes > s.budget && s.nextSpill < len(s.blocks) {
		if !s.spillOne() {
			return
		}
	}
}

// spillOne writes the oldest in-memory sealed block to the temp file.
func (s *SpillStore) spillOne() bool {
	if s.Err() != nil {
		return false
	}
	if s.f == nil {
		f, err := os.CreateTemp(s.dir, "pnut-reach-spill-*.bin")
		if err != nil {
			s.setErr(fmt.Errorf("reach: spill store: %w", err))
			return false
		}
		s.f = f
	}
	b := &s.blocks[s.nextSpill]
	frame := make([]byte, 0, len(b.body)+binary.MaxVarintLen64)
	frame = binary.AppendUvarint(frame, uint64(len(b.body)))
	frame = append(frame, b.body...)
	if _, err := s.f.WriteAt(frame, s.fileOff); err != nil {
		s.setErr(fmt.Errorf("reach: spill store: %w", err))
		return false
	}
	s.memBytes -= int64(len(b.body))
	s.spilled += int64(len(frame))
	b.off, b.len, b.body = s.fileOff, len(frame), nil
	s.fileOff += int64(len(frame))
	s.nextSpill++
	return true
}

// withBody fetches block b's body (from memory or the temp file) and
// runs fn over it. Safe for concurrent readers: spilled blocks are read
// with ReadAt into pooled buffers.
func (s *SpillStore) withBody(b int, fn func(body []byte) error) error {
	blk := &s.blocks[b]
	if blk.body != nil {
		return fn(blk.body)
	}
	bufp, _ := s.pool.Get().(*[]byte)
	var buf []byte
	if bufp != nil {
		buf = *bufp
	}
	if cap(buf) < blk.len {
		buf = make([]byte, blk.len)
	}
	buf = buf[:blk.len]
	defer s.pool.Put(&buf)
	if _, err := s.f.ReadAt(buf, blk.off); err != nil {
		return fmt.Errorf("reach: spill store: %w", err)
	}
	body, err := decodeSpillFrame(buf)
	if err != nil {
		return err
	}
	return fn(body)
}

// At decodes the marking with the given id into dst (grown if needed)
// and returns it. On a read error dst is zeroed and the error sticks
// (see Err).
func (s *SpillStore) At(id int, dst petri.Marking) petri.Marking {
	if cap(dst) < s.places {
		dst = make(petri.Marking, s.places)
	}
	dst = dst[:s.places]
	b, target := id/spillBlockEntries, id%spillBlockEntries
	var err error
	if b == len(s.blocks) {
		// Open block: entries live in cur without a count prefix.
		_, err = decodeSpillEntries(s.cur, s.places, s.curN, func(i int, m petri.Marking) bool {
			if i == target {
				copy(dst, m)
				return false
			}
			return true
		})
	} else {
		err = s.withBody(b, func(body []byte) error {
			_, err := decodeSpillBody(body, s.places, func(i int, m petri.Marking) bool {
				if i == target {
					copy(dst, m)
					return false
				}
				return true
			})
			return err
		})
	}
	if err != nil {
		s.setErr(err)
		for i := range dst {
			dst[i] = 0
		}
	}
	return dst
}

// Equal reports whether the stored marking id equals m, using scratch
// as the decode buffer; it returns the (possibly grown) scratch for
// reuse.
func (s *SpillStore) Equal(id int, m petri.Marking, scratch petri.Marking) (bool, petri.Marking) {
	scratch = s.At(id, scratch)
	return scratch.Equal(m), scratch
}

// Span calls fn for each id in [lo, hi) in order, streaming whole
// blocks sequentially — this is the frontier-expansion read path, so a
// spilled graph is walked with one block fetch per spillBlockEntries
// markings.
func (s *SpillStore) Span(lo, hi int, fn func(id int, m petri.Marking) bool) {
	if lo >= hi {
		return
	}
	stopped := false
	for b := lo / spillBlockEntries; b <= (hi-1)/spillBlockEntries && !stopped; b++ {
		base := b * spillBlockEntries
		visit := func(i int, m petri.Marking) bool {
			id := base + i
			if id < lo {
				return true
			}
			if id >= hi || !fn(id, m) {
				stopped = true
				return false
			}
			return true
		}
		var err error
		if b == len(s.blocks) {
			_, err = decodeSpillEntries(s.cur, s.places, s.curN, visit)
		} else {
			err = s.withBody(b, func(body []byte) error {
				_, err := decodeSpillBody(body, s.places, visit)
				return err
			})
		}
		if err != nil {
			s.setErr(err)
			return
		}
	}
}

// --- block decoding ---------------------------------------------------
//
// The decoders below validate framing and contents so that corrupt or
// truncated blocks (bit rot in a spill file) error out rather than
// panic or return garbage — the same contract FuzzColReader enforces
// for the trace codec, enforced here by FuzzSpillBlock.

// decodeSpillFrame splits one framed block (uvarint body length + body)
// into its body, rejecting implausible or mismatched lengths.
func decodeSpillFrame(frame []byte) ([]byte, error) {
	bl, k := binary.Uvarint(frame)
	if k <= 0 {
		return nil, fmt.Errorf("reach: spill block: truncated frame header")
	}
	if bl > maxSpillBody {
		return nil, fmt.Errorf("reach: spill block: implausible body length %d", bl)
	}
	if int(bl) != len(frame)-k {
		return nil, fmt.Errorf("reach: spill block: body length %d does not match frame (%d bytes)", bl, len(frame)-k)
	}
	return frame[k:], nil
}

// decodeSpillBody parses a block body — uvarint entry count, then the
// entries — calling fn for each decoded marking (fn may stop early by
// returning false). It returns the entry count. Every failure mode of
// a corrupt block (bad count, truncated varints, counts out of range,
// trailing bytes) is an error, never a panic.
func decodeSpillBody(body []byte, places int, fn func(i int, m petri.Marking) bool) (int, error) {
	count, k := binary.Uvarint(body)
	if k <= 0 {
		return 0, fmt.Errorf("reach: spill block: truncated entry count")
	}
	if count == 0 || count > spillBlockEntries {
		return 0, fmt.Errorf("reach: spill block: implausible entry count %d", count)
	}
	if int(count)*places > len(body)-k {
		return 0, fmt.Errorf("reach: spill block: %d entries cannot fit %d bytes", count, len(body)-k)
	}
	stopped := false
	off, err := decodeSpillEntries(body[k:], places, int(count), func(i int, m petri.Marking) bool {
		if fn != nil && !fn(i, m) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if !stopped && off != len(body)-k {
		return 0, fmt.Errorf("reach: spill block: %d trailing bytes", len(body)-k-off)
	}
	return int(count), nil
}

// decodeSpillEntries walks count encoded entries (entry 0 keyframe,
// rest deltas) calling fn with a reused decode buffer. fn may stop
// early by returning false. It returns the bytes consumed.
func decodeSpillEntries(data []byte, places, count int, fn func(i int, m petri.Marking) bool) (int, error) {
	cur := make(petri.Marking, places)
	off := 0
	for i := 0; i < count; i++ {
		for p := 0; p < places; p++ {
			if i == 0 {
				v, n := binary.Uvarint(data[off:])
				if n <= 0 {
					return off, fmt.Errorf("reach: spill block: truncated keyframe")
				}
				if v > maxSpillCount {
					return off, fmt.Errorf("reach: spill block: count %d out of range", v)
				}
				cur[p] = int(v)
				off += n
			} else {
				d, n := binary.Varint(data[off:])
				if n <= 0 {
					return off, fmt.Errorf("reach: spill block: truncated delta entry")
				}
				nv := int64(cur[p]) + d
				if nv < 0 || nv > maxSpillCount {
					return off, fmt.Errorf("reach: spill block: count %d out of range", nv)
				}
				cur[p] = int(nv)
				off += n
			}
		}
		if fn != nil && !fn(i, cur) {
			return off, nil
		}
	}
	return off, nil
}
