package reach

import (
	"context"
	"testing"

	"repro/internal/petri"
)

// timedGraphsIdentical asserts bit-identity between two timed graphs:
// same node ids, markings, timer vectors, edge order and flags.
func timedGraphsIdentical(t *testing.T, want, got *TimedGraph) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("nodes: %d != %d", len(got.Nodes), len(want.Nodes))
	}
	if want.Truncated != got.Truncated {
		t.Fatalf("truncated: %v != %v", got.Truncated, want.Truncated)
	}
	for i := range want.Nodes {
		w, g := want.Nodes[i], got.Nodes[i]
		if w.ID != g.ID || !w.Marking.Equal(g.Marking) {
			t.Fatalf("node %d: id/marking mismatch: %v != %v", i, g.Marking, w.Marking)
		}
		if w.key() != g.key() {
			t.Fatalf("node %d: state key %q != %q", i, g.key(), w.key())
		}
		if len(w.Out) != len(g.Out) {
			t.Fatalf("node %d: %d edges, want %d", i, len(g.Out), len(w.Out))
		}
		for j := range w.Out {
			if w.Out[j] != g.Out[j] {
				t.Fatalf("node %d edge %d: %+v != %+v", i, j, g.Out[j], w.Out[j])
			}
		}
	}
}

// timedTestNets are hand-built constant-delay nets covering the timed
// semantics: firing durations, enabling races, server caps, conflict
// over shared tokens, and (for the truncation case) unbounded growth.
func timedTestNets(t *testing.T) []struct {
	name string
	net  *petri.Net
	opt  Options
} {
	ring := func() *petri.Net {
		b := petri.NewBuilder("const_ring")
		b.Place("pa", 2)
		b.Place("pb", 0)
		b.Trans("ab").In("pa").Out("pb").FiringConst(2)
		b.Trans("ba").In("pb").Out("pa").FiringConst(3).EnablingConst(1)
		return b.MustBuild()
	}
	race := func() *petri.Net {
		b := petri.NewBuilder("enab_race")
		b.Place("p", 2)
		b.Place("won_fast", 0)
		b.Place("won_slow", 0)
		b.Place("back", 0)
		b.Trans("fast").In("p").Out("won_fast").EnablingConst(2)
		b.Trans("slow").In("p").Out("won_slow").EnablingConst(5)
		b.Trans("rf").In("won_fast").Out("back").FiringConst(1)
		b.Trans("rs").In("won_slow").Out("back").FiringConst(2)
		b.Trans("home").In("back").Out("p").FiringConst(3)
		return b.MustBuild()
	}
	servers := func() *petri.Net {
		b := petri.NewBuilder("single_server")
		b.Place("q", 3)
		b.Place("d", 0)
		b.Trans("serve").In("q").Out("d").FiringConst(4).Servers(1)
		b.Trans("recycle").In("d").Out("q").FiringConst(1)
		return b.MustBuild()
	}
	grow := func() *petri.Net {
		b := petri.NewBuilder("timed_unbounded")
		b.Place("src", 1)
		b.Place("a", 0)
		b.Place("b", 0)
		b.Trans("grow_a").In("src").Out("src").Out("a").FiringConst(1)
		b.Trans("grow_b").In("src").Out("src").Out("b").FiringConst(2)
		return b.MustBuild()
	}
	return []struct {
		name string
		net  *petri.Net
		opt  Options
	}{
		{"const_ring", ring(), Options{}},
		{"enab_race", race(), Options{}},
		{"single_server", servers(), Options{}},
		{"untimed_mutex", mutexNet(t), Options{}},
		{"truncated", grow(), Options{MaxStates: 200}},
	}
}

// TestParallelBuildTimedMatchesSerial is the timed canonical-numbering
// property test: for every shard count the parallel BuildTimed must
// reproduce the serial FIFO oracle bit for bit — including after
// truncation, where both keep attaching edges between already-interned
// states.
func TestParallelBuildTimedMatchesSerial(t *testing.T) {
	for _, tc := range timedTestNets(t) {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildTimedSerial(context.Background(), tc.net, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d states, truncated=%v", tc.name, len(want.Nodes), want.Truncated)
			for _, shards := range []int{1, 2, 8} {
				opt := tc.opt
				opt.Shards = shards
				got, err := BuildTimed(context.Background(), tc.net, opt)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				timedGraphsIdentical(t, want, got)
			}
		})
	}
}
