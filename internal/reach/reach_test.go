package reach

import (
	"context"
	"strings"
	"testing"

	"repro/internal/petri"
)

// mutexNet: two processes competing for one lock.
func mutexNet(t *testing.T) *petri.Net {
	t.Helper()
	b := petri.NewBuilder("mutex")
	b.Place("lock", 1)
	b.Place("idle_a", 1)
	b.Place("crit_a", 0)
	b.Place("idle_b", 1)
	b.Place("crit_b", 0)
	b.Trans("enter_a").In("idle_a").In("lock").Out("crit_a")
	b.Trans("exit_a").In("crit_a").Out("idle_a").Out("lock")
	b.Trans("enter_b").In("idle_b").In("lock").Out("crit_b")
	b.Trans("exit_b").In("crit_b").Out("idle_b").Out("lock")
	return b.MustBuild()
}

func TestBuildMutexGraph(t *testing.T) {
	g, err := Build(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// States: free, A critical, B critical.
	if len(g.Nodes) != 3 {
		t.Fatalf("states = %d, want 3", len(g.Nodes))
	}
	if g.Truncated || g.CapExceeded != "" {
		t.Errorf("unexpected flags: %+v", g)
	}
	if dl := g.Deadlocks(); len(dl) != 0 {
		t.Errorf("deadlocks: %v", dl)
	}
	if dead := g.DeadTransitions(); len(dead) != 0 {
		t.Errorf("dead transitions: %v", dead)
	}
}

func TestMutualExclusionViaInvariantAndCTL(t *testing.T) {
	g, err := Build(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// P-invariant: lock + crit_a + crit_b == 1.
	v, err := g.CheckInvariant(map[string]int{"lock": 1, "crit_a": 1, "crit_b": 1})
	if err != nil || v != 1 {
		t.Errorf("invariant: %d, %v", v, err)
	}
	// Never both critical.
	if !Holds(g, MustParseFormula("AG({crit_a + crit_b <= 1})")) {
		t.Error("mutual exclusion violated")
	}
	// Each process can reach its critical section.
	if !Holds(g, MustParseFormula("EF({crit_a == 1}) && EF({crit_b == 1})")) {
		t.Error("critical sections unreachable")
	}
	// From anywhere, A can eventually get in (EF under AG).
	if !Holds(g, MustParseFormula("AG(EF({crit_a == 1}))")) {
		t.Error("A can be locked out permanently")
	}
	// But it is not inevitable (B may hog forever): AF must fail.
	if Holds(g, AF(MustAtom("crit_a == 1"))) {
		t.Error("AF(crit_a) should not hold")
	}
}

func TestInvariantViolationReported(t *testing.T) {
	g, err := Build(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.CheckInvariant(map[string]int{"lock": 1}); err == nil {
		t.Error("bogus invariant accepted")
	}
	if _, err := g.CheckInvariant(map[string]int{"nosuch": 1}); err == nil {
		t.Error("unknown place accepted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := petri.NewBuilder("dead")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Trans("t").In("a").Out("b")
	g, err := Build(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dl := g.Deadlocks()
	if len(dl) != 1 {
		t.Fatalf("deadlocks: %v", dl)
	}
	if !Holds(g, EF(Deadlock())) {
		t.Error("EF(deadlock) should hold")
	}
	if !Holds(g, AF(Deadlock())) {
		t.Error("AF(deadlock) should hold (single path)")
	}
	if !strings.Contains(g.Summary(), "deadlocks: 1") {
		t.Errorf("summary: %s", g.Summary())
	}
}

func TestInterpretedRejected(t *testing.T) {
	b := petri.NewBuilder("interp")
	b.Place("p", 1)
	b.Var("x", 0)
	b.Trans("t").In("p").Out("p").Pred("x == 0")
	net := b.MustBuild()
	if _, err := Build(context.Background(), net, Options{}); err == nil {
		t.Error("interpreted net accepted by Build")
	}
	if _, err := BuildTimed(context.Background(), net, Options{}); err == nil {
		t.Error("interpreted net accepted by BuildTimed")
	}
	if _, err := Coverability(context.Background(), net, Options{}); err == nil {
		t.Error("interpreted net accepted by Coverability")
	}
}

func TestTruncation(t *testing.T) {
	// An unbounded producer: each firing adds a token.
	b := petri.NewBuilder("unbounded")
	b.Place("src", 1)
	b.Place("sink", 0)
	b.Trans("make").In("src").Out("src").Out("sink")
	net := b.MustBuild()
	g, err := Build(context.Background(), net, Options{MaxStates: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Truncated {
		t.Error("graph should be truncated")
	}
	if len(g.Nodes) != 50 {
		t.Errorf("nodes = %d", len(g.Nodes))
	}
	// With a small BoundCap the growing place is flagged.
	g2, err := Build(context.Background(), net, Options{MaxStates: 100, BoundCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g2.CapExceeded != "sink" {
		t.Errorf("CapExceeded = %q, want sink", g2.CapExceeded)
	}
}

func TestCoverabilityFindsUnbounded(t *testing.T) {
	b := petri.NewBuilder("grow")
	b.Place("src", 1)
	b.Place("sink", 0)
	b.Trans("make").In("src").Out("src").Out("sink")
	unb, err := Coverability(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unb) != 1 || unb[0] != "sink" {
		t.Errorf("unbounded = %v, want [sink]", unb)
	}
	// A bounded net reports nothing.
	unb2, err := Coverability(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(unb2) != 0 {
		t.Errorf("mutex reported unbounded: %v", unb2)
	}
}

func TestCoverabilityRejectsInhibitors(t *testing.T) {
	b := petri.NewBuilder("inhib")
	b.Place("p", 1)
	b.Place("q", 0)
	b.Trans("t").In("p").Inhib("q").Out("q")
	if _, err := Coverability(context.Background(), b.MustBuild(), Options{}); err == nil {
		t.Error("inhibitor net accepted")
	}
}

func TestBound(t *testing.T) {
	g, err := Build(context.Background(), mutexNet(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := g.Bound("lock")
	if err != nil || bd != 1 {
		t.Errorf("Bound(lock) = %d, %v", bd, err)
	}
	if _, err := g.Bound("zzz"); err == nil {
		t.Error("unknown place accepted")
	}
}

func TestCTLOperatorsOnChain(t *testing.T) {
	// a -> b -> c (deadlock at c).
	b := petri.NewBuilder("chain")
	b.Place("a", 1)
	b.Place("b", 0)
	b.Place("c", 0)
	b.Trans("ab").In("a").Out("b")
	b.Trans("bc").In("b").Out("c")
	g, err := Build(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	atC := MustAtom("c == 1")
	atA := MustAtom("a == 1")
	notC := MustAtom("c == 0")
	cases := []struct {
		f    Formula
		want bool
	}{
		{EF(atC), true},
		{AF(atC), true},
		{AG(atC), false},
		{EG(notC), false}, // every maximal path ends at c
		{EX(MustAtom("b == 1")), true},
		{AX(MustAtom("b == 1")), true},
		{EU(notC, atC), true},
		{AU(notC, atC), true},
		{atA, true},
		{Not(atC), true},
		{And(atA, Not(atC)), true},
		{Or(atC, atA), true},
		{AG(EF(atC)), true},
	}
	for _, c := range cases {
		if got := Holds(g, c.f); got != c.want {
			t.Errorf("%s = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestFormulaParser(t *testing.T) {
	good := []string{
		"AG({a == 1})",
		"EF({a + b == 2}) && !deadlock",
		"AU({a}, {b})",
		"EU({a}, AG({b}))",
		"inev({a})",
		"( {a} || {b} )",
		"AG(EF({a}))",
	}
	for _, src := range good {
		if _, err := ParseFormula(src); err != nil {
			t.Errorf("parse %q: %v", src, err)
		}
	}
	bad := []string{
		"",
		"AG({a)",
		"AG(a})",
		"EU({a})",
		"XX({a})",
		"AG({a}) trailing",
		"{a +}",
	}
	for _, src := range bad {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// inev parses to AF.
	f := MustParseFormula("inev({a})")
	if f.String() != "AF({a})" {
		t.Errorf("inev: %s", f)
	}
}

func TestTimedGraphBasics(t *testing.T) {
	// Two competing transitions with different enabling delays: fast (2)
	// always beats slow (5) in the timed semantics, so slow never fires.
	b := petri.NewBuilder("race")
	b.Place("p", 1)
	b.Place("won_fast", 0)
	b.Place("won_slow", 0)
	b.Trans("fast").In("p").Out("won_fast").EnablingConst(2)
	b.Trans("slow").In("p").Out("won_slow").EnablingConst(5)
	g, err := BuildTimed(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Holds(g, EF(MustAtom("won_fast == 1"))) {
		t.Error("fast should win")
	}
	if Holds(g, EF(MustAtom("won_slow == 1"))) {
		t.Error("slow should never win in the timed graph")
	}
	// The untimed graph, by contrast, allows both.
	ug, err := Build(context.Background(), g.Net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Holds(ug, EF(MustAtom("won_slow == 1"))) {
		t.Error("untimed graph should allow slow")
	}
}

func TestTimedGraphBranchesOnTies(t *testing.T) {
	// Equal delays: both outcomes reachable.
	b := petri.NewBuilder("tie")
	b.Place("p", 1)
	b.Place("a", 0)
	b.Place("bb", 0)
	b.Trans("ta").In("p").Out("a").EnablingConst(3)
	b.Trans("tb").In("p").Out("bb").EnablingConst(3)
	g, err := BuildTimed(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Holds(g, EF(MustAtom("a == 1"))) || !Holds(g, EF(MustAtom("bb == 1"))) {
		t.Error("both tie outcomes should be reachable")
	}
}

func TestTimedGraphFiringTimes(t *testing.T) {
	// A firing time hides the token mid-flight; the timed graph contains
	// the in-limbo state.
	b := petri.NewBuilder("fly")
	b.Place("a", 1)
	b.Place("bb", 0)
	b.Trans("t").In("a").Out("bb").FiringConst(4)
	g, err := BuildTimed(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Holds(g, EF(MustAtom("a == 0 && bb == 0"))) {
		t.Error("in-limbo state missing from timed graph")
	}
	if !Holds(g, AF(MustAtom("bb == 1"))) {
		t.Error("completion inevitable")
	}
	// Time-advance edges carry deltas.
	sawDelta := false
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Trans == TimeAdvance && e.Delta > 0 {
				sawDelta = true
			}
		}
	}
	if !sawDelta {
		t.Error("no time-advance edge found")
	}
}

func TestTimedRejectsRandomDelays(t *testing.T) {
	b := petri.NewBuilder("rand")
	b.Place("p", 1)
	b.Trans("t").In("p").Out("p").Enabling(petri.Uniform{Lo: 1, Hi: 3})
	if _, err := BuildTimed(context.Background(), b.MustBuild(), Options{}); err == nil {
		t.Error("random delay accepted by BuildTimed")
	}
}

func TestTimedEnablingTimerResetSemantics(t *testing.T) {
	// Mirror of the simulator test: thief steals the token at 2, returns
	// it at 4, so slow (delay 5) cannot complete before 9. In the timed
	// graph, won must not be reachable before the thief cycle completes:
	// simply check the graph agrees slow eventually wins (AF) since the
	// thief only fires once.
	b := petri.NewBuilder("reset")
	b.Place("shared", 1)
	b.Place("trigger", 1)
	b.Place("out", 0)
	b.Place("shared_back", 0)
	b.Trans("thief").In("trigger").In("shared").Out("shared_back").EnablingConst(2)
	b.Trans("return").In("shared_back").Out("shared").EnablingConst(2)
	b.Trans("slow").In("shared").Out("out").EnablingConst(5)
	g, err := BuildTimed(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Holds(g, AF(MustAtom("out == 1"))) {
		t.Error("slow should inevitably fire after the steal-return cycle")
	}
	// The state where the thief holds the token is on the way.
	if !Holds(g, EF(MustAtom("shared_back == 1"))) {
		t.Error("thief state unreachable")
	}
}

func TestGraphSummaryMentionsDeadTransitions(t *testing.T) {
	b := petri.NewBuilder("deadt")
	b.Place("p", 1)
	b.Place("q", 0)
	b.Place("never", 0)
	b.Trans("ok").In("p").Out("q")
	b.Trans("starved").In("never").Out("q")
	g, err := Build(context.Background(), b.MustBuild(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Summary(), "starved") {
		t.Errorf("summary should name dead transition:\n%s", g.Summary())
	}
}
