// The marking store is the compact state backbone of the reachability
// graph: an append-only, delta-encoded log of markings indexed by node
// id. A million-state graph used to hold one boxed []int per node plus
// a map keyed by Marking.Key() strings; the store keeps the same
// information as varint bytes, borrowing the keyframe+delta block
// layout of the columnar trace codec (internal/trace/col.go): BFS
// neighbours differ in a handful of places, so consecutive markings
// delta-encode to a few bytes each.
//
// Two implementations exist behind the StateStore interface: MemStore
// (below) keeps every block in one in-memory buffer; SpillStore
// (spill.go) seals markings into self-contained framed blocks that
// spill to a temp file past a byte budget, so MaxStates can exceed RAM.
//
// Concurrency: Add must be single-threaded and must not overlap any
// read; reads (At, Equal, Span) are safe concurrently with each other.
// The parallel builder respects this by construction — markings are
// only appended in the sequential commit phase of a round, and only
// read during the parallel expand/dedup phases.
package reach

import (
	"encoding/binary"

	"repro/internal/petri"
)

// StateStore is the marking container behind a reachability graph.
// Markings are appended in node-id order and ids are dense from 0.
// Implementations must make reads safe concurrently with each other;
// Add is always called single-threaded with no read in flight.
type StateStore interface {
	// Add appends m (which is not retained) and returns its id.
	Add(m petri.Marking) int
	// Len returns the number of stored markings.
	Len() int
	// Bytes returns the encoded size in bytes, in memory plus on disk.
	Bytes() int
	// At decodes the marking with the given id into dst (grown if
	// needed) and returns it.
	At(id int, dst petri.Marking) petri.Marking
	// Equal reports whether the stored marking id equals m, using
	// scratch as the decode buffer; it returns the (possibly grown)
	// scratch for reuse.
	Equal(id int, m petri.Marking, scratch petri.Marking) (bool, petri.Marking)
	// Span calls fn for each id in [lo, hi) in order, with a decode
	// buffer that is reused between calls — fn must not retain m.
	// Returning false stops the iteration.
	Span(lo, hi int, fn func(id int, m petri.Marking) bool)
	// Err returns the first I/O or decode error the store hit; once
	// non-nil the store's contents must not be trusted. The builders
	// check it at every level barrier.
	Err() error
	// Close releases any resources (temp files) the store holds. It is
	// idempotent; reads after Close are undefined.
	Close() error
}

// storeBlock is the keyframe interval of MemStore: worst-case random
// access decodes storeBlock entries.
const storeBlock = 32

// MemStore is the in-memory StateStore: one contiguous buffer of
// varint-encoded markings. Every storeBlock-th entry is a keyframe
// (each place count as a uvarint); the entries after it encode
// zigzag-varint deltas against the previous entry. blocks[] records
// each keyframe's byte offset, so random access decodes at most one
// block.
type MemStore struct {
	places int
	buf    []byte
	blocks []int // byte offset of each block's keyframe
	n      int
	prev   petri.Marking // last appended marking (delta base for Add)
}

// NewMemStore returns an empty in-memory store for markings over the
// given number of places.
func NewMemStore(places int) *MemStore {
	return &MemStore{places: places}
}

// Len returns the number of stored markings.
func (s *MemStore) Len() int { return s.n }

// Bytes returns the encoded size in bytes.
func (s *MemStore) Bytes() int { return len(s.buf) }

// Err always returns nil: the in-memory store cannot fail.
func (s *MemStore) Err() error { return nil }

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// Add appends m (which is not retained) and returns its id.
func (s *MemStore) Add(m petri.Marking) int {
	id := s.n
	if id%storeBlock == 0 {
		s.blocks = append(s.blocks, len(s.buf))
		for _, c := range m {
			s.buf = binary.AppendUvarint(s.buf, uint64(c))
		}
	} else {
		for i, c := range m {
			s.buf = binary.AppendVarint(s.buf, int64(c-s.prev[i]))
		}
	}
	s.prev = append(s.prev[:0], m...)
	s.n = id + 1
	return id
}

// decodeInto decodes the entry at byte offset off into dst: a keyframe
// if key, otherwise deltas applied to dst's current contents. It
// returns the offset past the entry.
func (s *MemStore) decodeInto(off int, dst petri.Marking, key bool) int {
	if key {
		for i := 0; i < s.places; i++ {
			v, n := binary.Uvarint(s.buf[off:])
			dst[i] = int(v)
			off += n
		}
		return off
	}
	for i := 0; i < s.places; i++ {
		d, n := binary.Varint(s.buf[off:])
		dst[i] += int(d)
		off += n
	}
	return off
}

// At decodes the marking with the given id into dst (grown if needed)
// and returns it.
func (s *MemStore) At(id int, dst petri.Marking) petri.Marking {
	if cap(dst) < s.places {
		dst = make(petri.Marking, s.places)
	}
	dst = dst[:s.places]
	off := s.blocks[id/storeBlock]
	off = s.decodeInto(off, dst, true)
	for k := (id/storeBlock)*storeBlock + 1; k <= id; k++ {
		off = s.decodeInto(off, dst, false)
	}
	return dst
}

// Equal reports whether the stored marking id equals m, using scratch
// as the decode buffer; it returns the (possibly grown) scratch for
// reuse.
func (s *MemStore) Equal(id int, m petri.Marking, scratch petri.Marking) (bool, petri.Marking) {
	scratch = s.At(id, scratch)
	return scratch.Equal(m), scratch
}

// Span calls fn for each id in [lo, hi) in order, with a decode buffer
// that is reused between calls — fn must not retain m. Returning false
// stops the iteration.
func (s *MemStore) Span(lo, hi int, fn func(id int, m petri.Marking) bool) {
	if lo >= hi {
		return
	}
	cur := make(petri.Marking, s.places)
	block := lo / storeBlock
	off := s.decodeInto(s.blocks[block], cur, true)
	for k := block*storeBlock + 1; k <= lo; k++ {
		off = s.decodeInto(off, cur, false)
	}
	for id := lo; ; {
		if !fn(id, cur) {
			return
		}
		if id++; id >= hi {
			return
		}
		if id%storeBlock == 0 {
			off = s.decodeInto(s.blocks[id/storeBlock], cur, true)
		} else {
			off = s.decodeInto(off, cur, false)
		}
	}
}

// hashMarking is the binary marking hash the sharded dedup is keyed by:
// FNV-1a over the varint encoding of the counts. It replaces the
// Marking.Key() strings of the serial build — no allocation, and the
// low bits pick the owning shard.
func hashMarking(m petri.Marking) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range m {
		v := uint64(c)
		for v >= 0x80 {
			h ^= v&0x7f | 0x80
			h *= fnvPrime64
			v >>= 7
		}
		h ^= v
		h *= fnvPrime64
	}
	return h
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashString is FNV-1a over a string — the shard key of the timed
// build, whose dedup is keyed by TimedNode.key() strings.
func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}
