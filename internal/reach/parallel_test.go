package reach

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/modelgen"
	"repro/internal/petri"
)

// graphsIdentical asserts bit-identity between two graphs: same nodes,
// same edges in the same order, the same marking at every id (which
// pins both the markings and their id order, regardless of which
// StateStore holds them) and same flags.
func graphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("nodes: %d != %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		w, g := &want.Nodes[i], &got.Nodes[i]
		if w.ID != g.ID || len(w.Out) != len(g.Out) {
			t.Fatalf("node %d: id/out mismatch (%d edges vs %d)", i, len(g.Out), len(w.Out))
		}
		for j := range w.Out {
			if w.Out[j] != g.Out[j] {
				t.Fatalf("node %d edge %d: %+v != %+v", i, j, g.Out[j], w.Out[j])
			}
		}
	}
	marks := make([]petri.Marking, len(got.Nodes))
	got.EachMarking(func(id int, m petri.Marking) bool {
		marks[id] = append(petri.Marking(nil), m...)
		return true
	})
	want.EachMarking(func(id int, m petri.Marking) bool {
		if !m.Equal(marks[id]) {
			t.Fatalf("node %d marking: %v != %v", id, marks[id], m)
		}
		return true
	})
	if want.Truncated != got.Truncated || want.CapExceeded != got.CapExceeded {
		t.Fatalf("flags: truncated %v/%v capExceeded %q/%q",
			got.Truncated, want.Truncated, got.CapExceeded, want.CapExceeded)
	}
}

// unboundedBranchNet grows without bound in two competing directions —
// exercises truncation and bound-cap detection under sharding.
func unboundedBranchNet() *petri.Net {
	b := petri.NewBuilder("unbounded_branch")
	b.Place("src", 1)
	b.Place("a", 0)
	b.Place("b", 0)
	b.Trans("grow_a").In("src").Out("src").Out("a")
	b.Trans("grow_b").In("src").Out("src").Out("b")
	return b.MustBuild()
}

// TestParallelBuildMatchesSerial is the canonical-numbering property
// test: for every shard count the parallel Build must reproduce the
// serial oracle bit for bit — node ids, edge order, store bytes and
// flags — across the modelgen families and the hand-written nets.
func TestParallelBuildMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		net  *petri.Net
		opt  Options
	}{
		{"mutex", mutexNet(t), Options{}},
		{"pipeline_8x3", modelgen.DeepPipeline(8, 3, 1), Options{}},
		{"pipeline_12x4", modelgen.DeepPipeline(12, 4, 2), Options{}},
		{"forkjoin_3x2", modelgen.ForkJoin(3, 2, 1), Options{}},
		{"forkjoin_4x3", modelgen.ForkJoin(4, 3, 3), Options{}},
		{"truncated", unboundedBranchNet(), Options{MaxStates: 500}},
		{"capped", unboundedBranchNet(), Options{MaxStates: 2000, BoundCap: 16}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := BuildSerial(context.Background(), tc.net, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %d states, %d store bytes", tc.name, len(want.Nodes), want.StoreBytes())
			for _, shards := range []int{1, 2, 8} {
				opt := tc.opt
				opt.Shards = shards
				got, err := Build(context.Background(), tc.net, opt)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				graphsIdentical(t, want, got)
			}
		})
	}
}

// TestTruncationNeverExceedsMaxStates is the regression test for the
// truncation short-circuit: construction stops the moment MaxStates is
// hit, so the node count can never exceed the cap — for either builder
// and any shard count.
func TestTruncationNeverExceedsMaxStates(t *testing.T) {
	net := unboundedBranchNet()
	for _, max := range []int{1, 2, 7, 50, 333} {
		opt := Options{MaxStates: max}
		for _, build := range []struct {
			name string
			fn   func(context.Context, *petri.Net, Options) (*Graph, error)
		}{
			{"serial", BuildSerial},
			{"parallel", func(ctx context.Context, n *petri.Net, o Options) (*Graph, error) {
				o.Shards = 4
				return Build(ctx, n, o)
			}},
		} {
			g, err := build.fn(context.Background(), net, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !g.Truncated {
				t.Errorf("%s max=%d: not truncated", build.name, max)
			}
			if len(g.Nodes) > max {
				t.Errorf("%s max=%d: %d nodes exceed the cap", build.name, max, len(g.Nodes))
			}
		}
	}
}

// TestBuildMatchesSerialWithHashCollisions forces every marking into
// one dedup bucket (and one shard) by stubbing nothing — instead it
// runs a net large enough that 64-bit FNV buckets see real chains, and
// double-checks MarkingOf round-trips through the store.
func TestStoreRoundTripThroughGraph(t *testing.T) {
	net := modelgen.DeepPipeline(9, 3, 7)
	g, err := Build(context.Background(), net, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int, len(g.Nodes))
	g.EachMarking(func(id int, m petri.Marking) bool {
		key := m.Key()
		if prev, dup := seen[key]; dup {
			t.Fatalf("marking of node %d duplicates node %d: %s", id, prev, key)
		}
		seen[key] = id
		if one := g.MarkingOf(id); !one.Equal(m) {
			t.Fatalf("node %d: MarkingOf %v != EachMarking %v", id, one, m)
		}
		return true
	})
	if len(seen) != len(g.Nodes) {
		t.Fatalf("scanned %d markings for %d nodes", len(seen), len(g.Nodes))
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	net := modelgen.DeepPipeline(12, 5, 1)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				g, err := Build(context.Background(), net, Options{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				states = len(g.Nodes)
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}
