package pipeline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/petri"
)

// ErrUnknownParam marks a Set/ApplyParam failure caused by the name
// not existing (as opposed to a bad value for a known name).
var ErrUnknownParam = errors.New("unknown parameter")

// This file is the parameter-mutation surface used by sweep drivers
// (package experiment, cmd/pnut-sweep, the benchmark harness): Clone
// gives every grid point its own parameter struct, Set mutates one
// named scalar, and ApplyParam routes a name to whichever struct
// defines it.

// Clone returns a deep copy of p: the ExecCycles/ExecFreqs slices are
// unshared, so a sweep point can mutate its parameters without
// affecting any other point's.
func (p Params) Clone() Params {
	p.ExecCycles = append([]petri.Time(nil), p.ExecCycles...)
	p.ExecFreqs = append([]float64(nil), p.ExecFreqs...)
	return p
}

// Clone returns a copy of c. CacheParams holds no reference types, so
// the value copy is already deep; the method exists for symmetry with
// Params.Clone in generic sweep code.
func (c CacheParams) Clone() CacheParams { return c }

func asInt(name string, v float64) (int64, error) {
	if v != math.Trunc(v) || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("pipeline: %s wants an integer, got %g", name, v)
	}
	return int64(v), nil
}

// Set assigns the named scalar parameter. Recognized names are the
// scalar Params fields: BufferWords, PrefetchWords, MemoryCycles,
// DecodeCycles, EACyclesPerOperand, StoreProb. Validation of the new
// value is left to Validate, so a sweep reports range errors with the
// builder's usual messages.
func (p *Params) Set(name string, v float64) error {
	switch name {
	case "BufferWords", "PrefetchWords":
		n, err := asInt(name, v)
		if err != nil {
			return err
		}
		if name == "BufferWords" {
			p.BufferWords = int(n)
		} else {
			p.PrefetchWords = int(n)
		}
	case "MemoryCycles", "DecodeCycles", "EACyclesPerOperand":
		n, err := asInt(name, v)
		if err != nil {
			return err
		}
		switch name {
		case "MemoryCycles":
			p.MemoryCycles = petri.Time(n)
		case "DecodeCycles":
			p.DecodeCycles = petri.Time(n)
		default:
			p.EACyclesPerOperand = petri.Time(n)
		}
	case "StoreProb":
		p.StoreProb = v
	default:
		return fmt.Errorf("pipeline: %w: no Params field %q", ErrUnknownParam, name)
	}
	return nil
}

// Set assigns the named scalar cache parameter: IHitRatio, DHitRatio
// or HitCycles.
func (c *CacheParams) Set(name string, v float64) error {
	switch name {
	case "IHitRatio":
		c.IHitRatio = v
	case "DHitRatio":
		c.DHitRatio = v
	case "HitCycles":
		n, err := asInt(name, v)
		if err != nil {
			return err
		}
		c.HitCycles = petri.Time(n)
	default:
		return fmt.Errorf("pipeline: %w: no CacheParams field %q", ErrUnknownParam, name)
	}
	return nil
}

// ParamNames lists every name ApplyParam accepts, for CLI usage text.
func ParamNames() []string {
	return []string{
		"BufferWords", "PrefetchWords", "MemoryCycles", "DecodeCycles",
		"EACyclesPerOperand", "StoreProb",
		"IHitRatio", "DHitRatio", "HitCycles",
	}
}

// ApplyParam sets a named parameter on whichever of p or c defines it.
// c may be nil for cacheless models, in which case cache names are
// rejected. A bad value for a known name is reported as-is; only a name
// neither struct defines falls through to the unknown-parameter error.
func ApplyParam(p *Params, c *CacheParams, name string, v float64) error {
	err := p.Set(name, v)
	if !errors.Is(err, ErrUnknownParam) {
		return err
	}
	if c != nil {
		err = c.Set(name, v)
		if !errors.Is(err, ErrUnknownParam) {
			return err
		}
	}
	return fmt.Errorf("pipeline: %w %q (known: %v)", ErrUnknownParam, name, ParamNames())
}

// SweepProcessor is the shared sweep Build-hook body: it builds the
// processor (cached=false) or the cache-extended processor
// (cached=true) from the default parameters with the named overrides
// applied, names[i] set to values[i]. Sweep drivers wrap it in a
// one-line closure over their grid point.
func SweepProcessor(cached bool, names []string, values []float64) (*petri.Net, error) {
	if len(names) != len(values) {
		return nil, fmt.Errorf("pipeline: %d names vs %d values", len(names), len(values))
	}
	p := DefaultParams().Clone()
	var c *CacheParams
	if cached {
		cc := DefaultCacheParams().Clone()
		c = &cc
	}
	for i, n := range names {
		if err := ApplyParam(&p, c, n, values[i]); err != nil {
			return nil, err
		}
	}
	if cached {
		return CacheProcessor(p, *c)
	}
	return Processor(p)
}
