package pipeline

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// randomParams maps arbitrary bytes onto a valid parameter set within
// sane modeling ranges.
func randomParams(buf, pre, mem, dec, ea, store uint8) Params {
	p := DefaultParams()
	p.BufferWords = int(buf%8) + 2
	p.PrefetchWords = int(pre%uint8(p.BufferWords)) + 1
	p.MemoryCycles = int64(mem%10) + 1
	p.DecodeCycles = int64(dec % 4)
	p.EACyclesPerOperand = int64(ea % 4)
	p.StoreProb = float64(store%10) / 10
	return p
}

// Property: across random parameter sets, the model builds, runs, makes
// progress, and preserves the structural identities the paper reads off
// Figure 5.
func TestQuickParameterSpace(t *testing.T) {
	f := func(buf, pre, mem, dec, ea, store uint8, seed int64) bool {
		p := randomParams(buf, pre, mem, dec, ea, store)
		if err := p.Validate(); err != nil {
			return false
		}
		net, err := Processor(p)
		if err != nil {
			return false
		}
		s := stats.New(trace.HeaderOf(net))
		if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 4_000, Seed: seed}); err != nil {
			return false
		}
		issue, _ := s.Throughput("Issue")
		if issue <= 0 {
			return false // the pipeline must always make progress
		}
		// Exec throughputs sum to the issue rate.
		var execSum float64
		for _, name := range []string{"exec_type_1", "exec_type_2", "exec_type_3", "exec_type_4", "exec_type_5"} {
			th, err := s.Throughput(name)
			if err != nil {
				return false
			}
			execSum += th
		}
		if math.Abs(execSum-issue) > 0.02 {
			return false
		}
		// Bus decomposition.
		bus, _ := s.Utilization("Bus_busy")
		pre1, _ := s.Utilization("pre_fetching")
		fet, _ := s.Utilization("fetching")
		sto, _ := s.Utilization("storing")
		return math.Abs(pre1+fet+sto-bus) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the bus mutual-exclusion invariant holds at every settled
// state for random parameters and seeds.
func TestQuickBusInvariantAcrossParams(t *testing.T) {
	f := func(mem, buf uint8, seed int64) bool {
		p := DefaultParams()
		p.MemoryCycles = int64(mem%12) + 1
		p.BufferWords = int(buf%6) + 2
		if p.PrefetchWords > p.BufferWords {
			p.PrefetchWords = p.BufferWords
		}
		net, err := Processor(p)
		if err != nil {
			return false
		}
		free := net.MustPlace("Bus_free")
		busy := net.MustPlace("Bus_busy")
		m := net.InitialMarking()
		ok := true
		obs := trace.ObserverFunc(func(rec *trace.Record) error {
			switch rec.Kind {
			case trace.Initial:
				m = rec.Marking.Clone()
			case trace.Start, trace.End:
				for _, d := range rec.Deltas {
					m[d.Place] += d.Change
				}
				if rec.Kind == trace.End && m[free]+m[busy] != 1 {
					ok = false
				}
			}
			return nil
		})
		if _, err := sim.Run(context.Background(), net, obs, sim.Options{Horizon: 2_000, Seed: seed}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDeadlockFreedomSmallConfigs proves (not samples) deadlock freedom
// for small configurations via the untimed reachability graph.
func TestDeadlockFreedomSmallConfigs(t *testing.T) {
	for _, cfg := range []struct{ buf, pre int }{{2, 1}, {2, 2}, {4, 2}, {6, 2}, {6, 3}} {
		p := DefaultParams()
		p.BufferWords = cfg.buf
		p.PrefetchWords = cfg.pre
		net, err := Processor(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := reach.Build(context.Background(), net, reach.Options{MaxStates: 500_000})
		if err != nil {
			t.Fatal(err)
		}
		if g.Truncated {
			t.Fatalf("buf=%d pre=%d: graph truncated at %d states", cfg.buf, cfg.pre, len(g.Nodes))
		}
		if dl := g.Deadlocks(); len(dl) != 0 {
			t.Errorf("buf=%d pre=%d: %d deadlock states, e.g. %s",
				cfg.buf, cfg.pre, len(dl), g.MarkingOf(dl[0]).Format(net))
		}
		if dead := g.DeadTransitions(); len(dead) != 0 {
			t.Errorf("buf=%d pre=%d: dead transitions %v", cfg.buf, cfg.pre, dead)
		}
		// The paper's invariants, proven over the whole state space.
		if _, err := g.CheckInvariant(map[string]int{"Bus_free": 1, "Bus_busy": 1}); err != nil {
			// Bus_free+Bus_busy is 1 only in settled states; the untimed
			// graph fires atomically, so it holds in *every* node here.
			t.Errorf("buf=%d pre=%d: bus invariant: %v", cfg.buf, cfg.pre, err)
		}
		if !reach.Holds(g, reach.MustParseFormula("AG(EF({Decoder_ready == 1}))")) {
			t.Errorf("buf=%d pre=%d: decoder can be lost forever", cfg.buf, cfg.pre)
		}
	}
}

// TestSequentialNeverOverlaps: in the baseline model at most one
// activity place is ever marked (no pipelining by construction).
func TestSequentialNeverOverlaps(t *testing.T) {
	net, err := SequentialProcessor(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	activity := []string{"ifetching", "fetching", "storing"}
	ids := make([]int, len(activity))
	for i, name := range activity {
		ids[i] = int(net.MustPlace(name))
	}
	m := net.InitialMarking()
	overlaps := 0
	obs := trace.ObserverFunc(func(rec *trace.Record) error {
		switch rec.Kind {
		case trace.Initial:
			m = rec.Marking.Clone()
		case trace.Start, trace.End:
			for _, d := range rec.Deltas {
				m[d.Place] += d.Change
			}
			busy := 0
			for _, id := range ids {
				if m[id] > 0 {
					busy++
				}
			}
			if busy > 1 {
				overlaps++
			}
		}
		return nil
	})
	if _, err := sim.Run(context.Background(), net, obs, sim.Options{Horizon: 20_000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if overlaps > 0 {
		t.Errorf("sequential model overlapped bus activities %d times", overlaps)
	}
}
