package pipeline

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/petri"
)

// InstructionSet is the table-driven description of Section 3: instead
// of one subnet per instruction type, a single Decode transition selects
// the type at random and tables give the per-type operand count, the
// extra instruction words to pull from the buffer (variable-length
// instructions), and the execution time. "The Petri net itself would be
// used to model what Petri nets model best: the contention for the bus
// and the synchronization between different portions of the pipeline."
type InstructionSet struct {
	// Operands[t] is the number of memory operands of type t (1-based;
	// index 0 is unused).
	Operands []int64
	// ExtraWords[t] is the number of instruction words beyond the first
	// (variable-length instructions; 1-based, index 0 unused).
	ExtraWords []int64
	// ExecCycles[t] is the execution time of type t (1-based, index 0
	// unused).
	ExecCycles []int64
}

// DefaultInstructionSet returns a small CISC-flavoured set of 6 types:
// register-register, immediate (1 extra word), load, store-address
// (1 extra word), memory-memory (2 operands), and a long-running
// multiply-accumulate with 2 operands and 2 extra words.
func DefaultInstructionSet() InstructionSet {
	return InstructionSet{
		Operands:   []int64{0, 0, 0, 1, 1, 2, 2},
		ExtraWords: []int64{0, 0, 1, 0, 1, 0, 2},
		ExecCycles: []int64{0, 1, 1, 2, 2, 5, 20},
	}
}

// Validate checks table shape.
func (s *InstructionSet) Validate() error {
	n := len(s.Operands)
	if n < 2 {
		return fmt.Errorf("pipeline: instruction set needs at least one type")
	}
	if len(s.ExtraWords) != n || len(s.ExecCycles) != n {
		return fmt.Errorf("pipeline: instruction-set tables have unequal lengths %d/%d/%d",
			len(s.Operands), len(s.ExtraWords), len(s.ExecCycles))
	}
	for t := 1; t < n; t++ {
		if s.Operands[t] < 0 || s.ExtraWords[t] < 0 || s.ExecCycles[t] < 0 {
			return fmt.Errorf("pipeline: negative table entry for type %d", t)
		}
	}
	return nil
}

// MaxType returns the largest valid type index.
func (s *InstructionSet) MaxType() int64 { return int64(len(s.Operands) - 1) }

// InterpretedProcessor builds the Figure 4 style model: the full 3-stage
// pipeline in which instruction variety lives in tables and predicates
// rather than in net structure. The net has one decode path, one operand
// fetch loop and one execution transition regardless of how many
// instruction types the set defines.
//
// Global variables are safe here for the same reason the paper's
// skeleton is: stage 2 processes one instruction at a time, and the
// execution parameters are latched into exec_* variables by the Issue
// action before the decoder can begin the next instruction.
func InterpretedProcessor(p Params, is InstructionSet) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := is.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("pipeline_interpreted")
	stagePlaces(b, p)
	b.Place("Decoding_instruction", 0)
	b.Place("Operand_phase", 0)
	b.Place("Fetch_wait", 0)

	b.Var("type", 1)
	b.Var("number_of_operands_needed", 0)
	b.Var("words_needed", 0)
	b.Var("exec_cycles_needed", 0)
	b.Var("max_type", is.MaxType())
	b.Table("operands", is.Operands...)
	b.Table("extra_words", is.ExtraWords...)
	b.Table("exec_cycles", is.ExecCycles...)

	addPrefetch(b, p)

	// Decode selects the type and loads the control variables — the
	// paper's action "type = irand[1, max-type]; number-of-operands-
	// needed = operands[type];" extended with the word count.
	b.Trans("Decode").
		In("Full_I_buffers").
		In("Decoder_ready").
		Out("Decoding_instruction").
		Out("Empty_I_buffers").
		FiringConst(p.DecodeCycles).
		Action(`type = irand(1, max_type);
		        number_of_operands_needed = operands[type];
		        words_needed = extra_words[type];`)

	// Variable-length instructions: pull extra words one at a time.
	b.Trans("consume_word").
		In("Decoding_instruction").
		In("Full_I_buffers").
		Out("Decoding_instruction").
		Out("Empty_I_buffers").
		Pred("words_needed > 0").
		Action("words_needed = words_needed - 1")
	b.Trans("words_done").
		In("Decoding_instruction").
		Out("Operand_phase").
		Pred("words_needed == 0")

	// Operand fetch loop (Figure 4): fetch-operand while operands remain,
	// operand-fetching-done when the counter reaches zero.
	b.Trans("fetch_operand").
		In("Operand_phase").
		Out("Fetch_wait").
		Pred("number_of_operands_needed > 0").
		EnablingConst(p.EACyclesPerOperand) // effective-address calculation
	b.Trans("Start_operand_fetch").
		In("Fetch_wait").
		In("Bus_free").
		Out("fetching").
		Out("Bus_busy")
	b.Trans("end_fetch").
		In("fetching").
		In("Bus_busy").
		Out("Operand_phase").
		Out("Bus_free").
		EnablingConst(p.MemoryCycles).
		Action("number_of_operands_needed = number_of_operands_needed - 1")
	b.Trans("operand_fetching_done").
		In("Operand_phase").
		Out("ready_to_issue_instruction").
		Pred("number_of_operands_needed == 0")

	// Issue latches the execution time before the decoder moves on.
	b.Trans("Issue").
		In("ready_to_issue_instruction").
		In("Execution_unit").
		Out("Issued_instruction").
		Out("Decoder_ready").
		Action("exec_cycles_needed = exec_cycles[type]")
	b.Trans("execute").
		In("Issued_instruction").
		Out("Exec_complete").
		Firing(petri.ExprDelay{E: expr.MustParseExpr("exec_cycles_needed")})
	b.Trans("no_store").
		In("Exec_complete").
		Out("Execution_unit").
		Freq(1 - p.StoreProb)
	b.Trans("store_result").
		In("Exec_complete").
		Out("Result_store_pending").
		Freq(p.StoreProb)
	b.Trans("Start_store").
		In("Result_store_pending").
		In("Bus_free").
		Out("storing").
		Out("Bus_busy")
	b.Trans("End_store").
		In("storing").
		In("Bus_busy").
		Out("Bus_free").
		Out("Execution_unit").
		EnablingConst(p.MemoryCycles)
	return b.Build()
}
