// Package pipeline contains the paper's example models (Section 2,
// Figures 1-3): a 3-stage pipelined microprocessor whose first stage
// pre-fetches instructions, whose second stage decodes, calculates
// effective addresses and fetches operands, and whose third stage
// executes instructions and stores results.
//
// The package also provides the interpreted (table-driven) variant of
// Section 3 / Figure 4, the probabilistic cache extension sketched in
// Section 3, and a non-pipelined baseline processor used by the
// benchmark harness to quantify what the pipeline buys.
//
// Place and transition names follow Figure 5 of the paper
// (Full_I_buffers, pre_fetching, Bus_busy, Issue, exec_type_1, ...), so
// statistics reports line up with the published table.
package pipeline

import (
	"fmt"

	"repro/internal/petri"
)

// Params are the model parameters of Section 2. The defaults
// (DefaultParams) are the paper's:
//
//  1. 6-word instruction buffer, prefetched two words at a time;
//  2. memory access of 5 processor cycles;
//  3. instruction mix 70-20-10 over zero/one/two-memory-operand types;
//  4. decode 1 cycle, effective-address calculation 2 cycles per operand;
//  5. execution 1-2-5-10-50 cycles with probabilities .5-.3-.1-.05-.05;
//  6. store probability .2.
type Params struct {
	BufferWords        int        // instruction buffer capacity (words)
	PrefetchWords      int        // words fetched per bus transaction
	MemoryCycles       petri.Time // one memory access, in processor cycles
	DecodeCycles       petri.Time // decode time
	EACyclesPerOperand petri.Time // effective-address calculation per operand
	TypeFreqs          [3]float64 // relative frequencies of 0/1/2-operand types
	StoreProb          float64    // probability an instruction stores a result
	ExecCycles         []petri.Time
	ExecFreqs          []float64
}

// DefaultParams returns the Section 2 parameters.
func DefaultParams() Params {
	return Params{
		BufferWords:        6,
		PrefetchWords:      2,
		MemoryCycles:       5,
		DecodeCycles:       1,
		EACyclesPerOperand: 2,
		TypeFreqs:          [3]float64{70, 20, 10},
		StoreProb:          0.2,
		ExecCycles:         []petri.Time{1, 2, 5, 10, 50},
		ExecFreqs:          []float64{0.5, 0.3, 0.1, 0.05, 0.05},
	}
}

// Validate checks parameter sanity.
func (p *Params) Validate() error {
	switch {
	case p.BufferWords < 1:
		return fmt.Errorf("pipeline: BufferWords = %d", p.BufferWords)
	case p.PrefetchWords < 1 || p.PrefetchWords > p.BufferWords:
		return fmt.Errorf("pipeline: PrefetchWords = %d with %d buffer words", p.PrefetchWords, p.BufferWords)
	case p.MemoryCycles < 1:
		return fmt.Errorf("pipeline: MemoryCycles = %d", p.MemoryCycles)
	case p.DecodeCycles < 0:
		return fmt.Errorf("pipeline: DecodeCycles = %d", p.DecodeCycles)
	case p.EACyclesPerOperand < 0:
		return fmt.Errorf("pipeline: EACyclesPerOperand = %d", p.EACyclesPerOperand)
	case p.StoreProb < 0 || p.StoreProb > 1:
		return fmt.Errorf("pipeline: StoreProb = %g", p.StoreProb)
	case len(p.ExecCycles) == 0 || len(p.ExecCycles) != len(p.ExecFreqs):
		return fmt.Errorf("pipeline: %d exec cycles vs %d frequencies", len(p.ExecCycles), len(p.ExecFreqs))
	}
	for i, f := range p.TypeFreqs {
		if f < 0 {
			return fmt.Errorf("pipeline: TypeFreqs[%d] = %g", i, f)
		}
	}
	for i, f := range p.ExecFreqs {
		if f < 0 {
			return fmt.Errorf("pipeline: ExecFreqs[%d] = %g", i, f)
		}
	}
	return nil
}

// stagePlaces declares the places shared by the pipeline stages.
func stagePlaces(b *petri.Builder, p Params) {
	b.Place("Empty_I_buffers", p.BufferWords)
	b.Place("Full_I_buffers", 0)
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("pre_fetching", 0)
	b.Place("fetching", 0)
	b.Place("storing", 0)
	b.Place("Operand_fetch_pending", 0)
	b.Place("Result_store_pending", 0)
	b.Place("Decoder_ready", 1)
	b.Place("Decoded_instruction", 0)
	b.Place("EA_needed", 0)
	b.Place("Mem_instr_in_decode", 0)
	b.Place("ready_to_issue_instruction", 0)
	b.Place("Execution_unit", 1)
	b.Place("Issued_instruction", 0)
	b.Place("Exec_complete", 0)
}

// addPrefetch adds the Figure 1 transitions: pre-fetching is initiated
// whenever the bus is free, there is room for PrefetchWords in the
// instruction buffer, and no operand fetch or result store is pending
// (the inhibitor arcs give those bus customers priority).
func addPrefetch(b *petri.Builder, p Params) {
	b.Trans("Start_prefetch").
		In("Empty_I_buffers", p.PrefetchWords).
		In("Bus_free").
		Inhib("Operand_fetch_pending").
		Inhib("Result_store_pending").
		Out("pre_fetching").
		Out("Bus_busy")
	b.Trans("End_prefetch").
		In("pre_fetching").
		In("Bus_busy").
		Out("Full_I_buffers", p.PrefetchWords).
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)
}

// addDecode adds the Figure 2 transitions: decode, instruction-type
// selection at the 70-20-10 mix, effective-address calculation and
// operand fetching. Stage 2 holds one instruction at a time
// (Decoder_ready is returned at Issue), so the completion condition
// "all operands fetched" is expressed with inhibitor arcs over the
// operand-progress places.
func addDecode(b *petri.Builder, p Params) {
	b.Trans("Decode").
		In("Full_I_buffers").
		In("Decoder_ready").
		Out("Decoded_instruction").
		Out("Empty_I_buffers").
		FiringConst(p.DecodeCycles)
	b.Trans("Type_1").
		In("Decoded_instruction").
		Out("ready_to_issue_instruction").
		Freq(p.TypeFreqs[0])
	b.Trans("Type_2").
		In("Decoded_instruction").
		Out("EA_needed").
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[1])
	b.Trans("Type_3").
		In("Decoded_instruction").
		Out("EA_needed", 2).
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[2])
	// Effective-address calculation uses an enabling time so that the
	// EA_needed token stays visible during the calculation; the
	// operands_done inhibitor test depends on it.
	b.Trans("calc_eaddr").
		In("EA_needed").
		Out("Operand_fetch_pending").
		EnablingConst(p.EACyclesPerOperand)
	b.Trans("Start_operand_fetch").
		In("Operand_fetch_pending").
		In("Bus_free").
		Out("fetching").
		Out("Bus_busy")
	b.Trans("End_operand_fetch").
		In("fetching").
		In("Bus_busy").
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)
	b.Trans("operands_done").
		In("Mem_instr_in_decode").
		Inhib("EA_needed").
		Inhib("Operand_fetch_pending").
		Inhib("fetching").
		Out("ready_to_issue_instruction")
}

// addExecute adds the Figure 3 transitions: issue to the execution unit,
// five competing execution transitions with the paper's firing
// frequencies and firing times, and result storing which contends for
// the bus while holding the execution unit.
func addExecute(b *petri.Builder, p Params) {
	b.Trans("Issue").
		In("ready_to_issue_instruction").
		In("Execution_unit").
		Out("Issued_instruction").
		Out("Decoder_ready")
	for i := range p.ExecCycles {
		b.Trans(fmt.Sprintf("exec_type_%d", i+1)).
			In("Issued_instruction").
			Out("Exec_complete").
			FiringConst(p.ExecCycles[i]).
			Freq(p.ExecFreqs[i])
	}
	b.Trans("no_store").
		In("Exec_complete").
		Out("Execution_unit").
		Freq(1 - p.StoreProb)
	b.Trans("store_result").
		In("Exec_complete").
		Out("Result_store_pending").
		Freq(p.StoreProb)
	b.Trans("Start_store").
		In("Result_store_pending").
		In("Bus_free").
		Out("storing").
		Out("Bus_busy")
	b.Trans("End_store").
		In("storing").
		In("Bus_busy").
		Out("Bus_free").
		Out("Execution_unit").
		EnablingConst(p.MemoryCycles)
}

// Processor builds the complete 3-stage pipelined processor model of
// Section 2 (Figures 1-3 combined).
func Processor(p Params) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("pipeline")
	stagePlaces(b, p)
	addPrefetch(b, p)
	addDecode(b, p)
	addExecute(b, p)
	return b.Build()
}

// Prefetch builds the Figure 1 subnet in isolation: instruction
// pre-fetching plus the Decode consumer. The operand-fetch and
// result-store places exist (they carry the inhibitor arcs) but nothing
// feeds them, so the subnet studies pure prefetch behaviour.
func Prefetch(p Params) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("prefetching")
	stagePlaces(b, p)
	addPrefetch(b, p)
	b.Trans("Decode").
		In("Full_I_buffers").
		In("Decoder_ready").
		Out("Decoded_instruction").
		Out("Empty_I_buffers").
		FiringConst(p.DecodeCycles)
	// The decoded instruction is consumed immediately so that the buffer
	// drains at decode speed.
	b.Trans("consume").
		In("Decoded_instruction").
		Out("Decoder_ready")
	return b.Build()
}

// Decoder builds the Figure 2 subnet in isolation: decode, address
// calculation and operand fetching, with the issue stage stubbed by an
// always-ready consumer.
func Decoder(p Params) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("decoder")
	stagePlaces(b, p)
	addDecode(b, p)
	// Keep the buffer supplied: an infinite instruction source refills a
	// word every cycle (stage 1 abstracted away).
	b.Trans("refill").
		In("Empty_I_buffers").
		Out("Full_I_buffers").
		EnablingConst(1)
	// Issue is always possible (stage 3 abstracted away).
	b.Trans("Issue").
		In("ready_to_issue_instruction").
		Out("Decoder_ready")
	return b.Build()
}

// Execution builds the Figure 3 subnet in isolation: an instruction
// source issues into the execution unit as fast as it will accept them.
func Execution(p Params) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("execution_unit")
	stagePlaces(b, p)
	addExecute(b, p)
	// Stage 2 abstracted: a new instruction is ready to issue every
	// DecodeCycles (at least 1 cycle).
	d := p.DecodeCycles
	if d < 1 {
		d = 1
	}
	b.Trans("next_instruction").
		In("Decoder_ready").
		Out("ready_to_issue_instruction").
		EnablingConst(d)
	return b.Build()
}
