package pipeline

import (
	"fmt"

	"repro/internal/petri"
)

// SequentialProcessor builds a non-pipelined baseline with the same
// instruction mix, memory speed and execution-time distribution as
// Processor, but in which fetch, decode, operand access, execution and
// store proceed strictly one after another for one instruction at a
// time (no prefetch buffer, no stage overlap). The paper's motivation —
// that pipelining's benefit under bus contention is hard to predict —
// is quantified by comparing the Issue throughput of the two models.
func SequentialProcessor(p Params) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("sequential")
	b.Place("CPU_ready", 1)
	b.Place("Bus_free", 1)
	b.Place("Bus_busy", 0)
	b.Place("ifetching", 0)
	b.Place("Fetched", 0)
	b.Place("Decoded_instruction", 0)
	b.Place("EA_needed", 0)
	b.Place("Mem_instr_in_decode", 0)
	b.Place("Operand_fetch_pending", 0)
	b.Place("fetching", 0)
	b.Place("ready_to_issue_instruction", 0)
	b.Place("Issued_instruction", 0)
	b.Place("Exec_complete", 0)
	b.Place("Result_store_pending", 0)
	b.Place("storing", 0)

	// Instruction fetch: one word per instruction, full memory latency,
	// no overlap with anything else.
	b.Trans("Start_ifetch").
		In("CPU_ready").
		In("Bus_free").
		Out("ifetching").
		Out("Bus_busy")
	b.Trans("End_ifetch").
		In("ifetching").
		In("Bus_busy").
		Out("Fetched").
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)
	b.Trans("Decode").
		In("Fetched").
		Out("Decoded_instruction").
		FiringConst(p.DecodeCycles)
	b.Trans("Type_1").
		In("Decoded_instruction").
		Out("ready_to_issue_instruction").
		Freq(p.TypeFreqs[0])
	b.Trans("Type_2").
		In("Decoded_instruction").
		Out("EA_needed").
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[1])
	b.Trans("Type_3").
		In("Decoded_instruction").
		Out("EA_needed", 2).
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[2])
	b.Trans("calc_eaddr").
		In("EA_needed").
		Out("Operand_fetch_pending").
		EnablingConst(p.EACyclesPerOperand)
	b.Trans("Start_operand_fetch").
		In("Operand_fetch_pending").
		In("Bus_free").
		Out("fetching").
		Out("Bus_busy")
	b.Trans("End_operand_fetch").
		In("fetching").
		In("Bus_busy").
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)
	b.Trans("operands_done").
		In("Mem_instr_in_decode").
		Inhib("EA_needed").
		Inhib("Operand_fetch_pending").
		Inhib("fetching").
		Out("ready_to_issue_instruction")
	// Issue is immediate: the "execution unit" is the CPU itself, which
	// is by construction idle here.
	b.Trans("Issue").
		In("ready_to_issue_instruction").
		Out("Issued_instruction")
	for i := range p.ExecCycles {
		b.Trans(fmt.Sprintf("exec_type_%d", i+1)).
			In("Issued_instruction").
			Out("Exec_complete").
			FiringConst(p.ExecCycles[i]).
			Freq(p.ExecFreqs[i])
	}
	// After execution the CPU either stores the result (taking the bus
	// again) or moves straight to the next instruction.
	b.Trans("no_store").
		In("Exec_complete").
		Out("CPU_ready").
		Freq(1 - p.StoreProb)
	b.Trans("store_result").
		In("Exec_complete").
		Out("Result_store_pending").
		Freq(p.StoreProb)
	b.Trans("Start_store").
		In("Result_store_pending").
		In("Bus_free").
		Out("storing").
		Out("Bus_busy")
	b.Trans("End_store").
		In("storing").
		In("Bus_busy").
		Out("Bus_free").
		Out("CPU_ready").
		EnablingConst(p.MemoryCycles)
	return b.Build()
}
