package pipeline

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestAnalyzePipeline(t *testing.T) {
	net, err := Processor(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1988}); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.InstructionRate <= 0 || a.BusUtilization <= 0 {
		t.Fatalf("analysis empty: %+v", a)
	}
	if math.Abs(a.BusPrefetch+a.BusOperand+a.BusStore-a.BusUtilization) > 0.02 {
		t.Errorf("bus breakdown inconsistent: %+v", a)
	}
	if len(a.ExecShare) != 5 {
		t.Errorf("exec classes = %d, want 5", len(a.ExecShare))
	}
	// Type-5 dominates busy time.
	if a.ExecShare[4] <= a.ExecShare[0] {
		t.Errorf("exec share ordering: %v", a.ExecShare)
	}
	var b strings.Builder
	if err := a.Report(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instruction rate", "bus utilization", "prefetching", "executing class 5"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("report missing %q:\n%s", want, b.String())
		}
	}
}

func TestAnalyzeRejectsForeignTrace(t *testing.T) {
	h := trace.Header{Net: "other", Places: []string{"x"}, Trans: []string{"y"}}
	s := stats.New(h)
	if _, err := Analyze(s); err == nil {
		t.Error("non-pipeline trace accepted")
	}
}
