package pipeline

import (
	"context"
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamValidation(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.BufferWords = 0 },
		func(p *Params) { p.PrefetchWords = 0 },
		func(p *Params) { p.PrefetchWords = 99 },
		func(p *Params) { p.MemoryCycles = 0 },
		func(p *Params) { p.DecodeCycles = -1 },
		func(p *Params) { p.EACyclesPerOperand = -1 },
		func(p *Params) { p.StoreProb = 1.5 },
		func(p *Params) { p.ExecCycles = nil },
		func(p *Params) { p.ExecFreqs = p.ExecFreqs[:2] },
		func(p *Params) { p.TypeFreqs[0] = -1 },
		func(p *Params) { p.ExecFreqs[0] = -1 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestProcessorBuilds(t *testing.T) {
	net, err := Processor(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 5 names must all be present.
	for _, name := range []string{
		"Full_I_buffers", "Empty_I_buffers", "pre_fetching", "fetching",
		"storing", "Bus_busy", "Bus_free", "Decoder_ready", "Execution_unit",
		"ready_to_issue_instruction",
	} {
		if _, ok := net.PlaceID(name); !ok {
			t.Errorf("missing place %q", name)
		}
	}
	for _, name := range []string{
		"Issue", "Type_1", "Type_2", "Type_3",
		"exec_type_1", "exec_type_2", "exec_type_3", "exec_type_4", "exec_type_5",
		"Start_prefetch", "End_prefetch", "Decode", "calc_eaddr",
		"Start_operand_fetch", "End_operand_fetch", "operands_done",
		"no_store", "store_result", "Start_store", "End_store",
	} {
		if _, ok := net.TransIDByName(name); !ok {
			t.Errorf("missing transition %q", name)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	// The headline reproduction: simulate the Section 2 model for 10 000
	// cycles and compare the key Figure 5 statistics. Absolute agreement
	// with a 1987 run is not expected (different RNG, reconstructed net
	// topology), but every structural relationship the paper reads off
	// the table must hold, and the headline numbers should land close.
	net, err := Processor(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1988}); err != nil {
		t.Fatal(err)
	}

	issue, _ := s.Throughput("Issue")
	if issue < 0.09 || issue > 0.16 {
		t.Errorf("Issue throughput = %.4f, paper reports 0.1238", issue)
	}

	busBusy, _ := s.Utilization("Bus_busy")
	if busBusy < 0.5 || busBusy > 0.85 {
		t.Errorf("bus utilization = %.4f, paper reports 0.6582", busBusy)
	}

	// Bus activity decomposes into the three activities.
	pre, _ := s.Utilization("pre_fetching")
	fet, _ := s.Utilization("fetching")
	sto, _ := s.Utilization("storing")
	if math.Abs(pre+fet+sto-busBusy) > 0.02 {
		t.Errorf("bus breakdown %0.4f+%0.4f+%0.4f != %0.4f", pre, fet, sto, busBusy)
	}
	// Prefetching dominates, storing is smallest (paper: .31/.23/.12).
	if !(pre > fet && fet > sto) {
		t.Errorf("bus breakdown ordering wrong: pre=%.4f fetch=%.4f store=%.4f", pre, fet, sto)
	}

	// Type selection respects the 70-20-10 mix.
	t1, _ := s.EventRowByName("Type_1")
	t2, _ := s.EventRowByName("Type_2")
	t3, _ := s.EventRowByName("Type_3")
	total := float64(t1.Ends + t2.Ends + t3.Ends)
	if total == 0 {
		t.Fatal("no instructions decoded")
	}
	if f := float64(t1.Ends) / total; f < 0.65 || f > 0.75 {
		t.Errorf("Type_1 fraction = %.3f, want about .70", f)
	}
	if f := float64(t2.Ends) / total; f < 0.15 || f > 0.25 {
		t.Errorf("Type_2 fraction = %.3f, want about .20", f)
	}
	if f := float64(t3.Ends) / total; f < 0.06 || f > 0.14 {
		t.Errorf("Type_3 fraction = %.3f, want about .10", f)
	}

	// The instruction processing rate equals the sum of the execution
	// transition throughputs (the paper reads the rate this way too).
	var execSum float64
	for _, name := range []string{"exec_type_1", "exec_type_2", "exec_type_3", "exec_type_4", "exec_type_5"} {
		th, err := s.Throughput(name)
		if err != nil {
			t.Fatal(err)
		}
		execSum += th
	}
	if math.Abs(execSum-issue) > 0.01 {
		t.Errorf("sum of exec throughputs %.4f != Issue throughput %.4f", execSum, issue)
	}

	// exec_type_5 is rare but dominates busy time (paper: avg 0.29
	// concurrent vs 0.0618 for type 1).
	e1, _ := s.EventRowByName("exec_type_1")
	e5, _ := s.EventRowByName("exec_type_5")
	if e5.Ends >= e1.Ends {
		t.Errorf("type-5 executions (%d) should be far rarer than type-1 (%d)", e5.Ends, e1.Ends)
	}
	if e5.Avg <= e1.Avg {
		t.Errorf("type-5 busy fraction (%.4f) should exceed type-1 (%.4f)", e5.Avg, e1.Avg)
	}

	// Decoder_ready is almost never marked (paper: 0.0014): stage 2 is
	// the pipeline's congestion point.
	dr, _ := s.Utilization("Decoder_ready")
	if dr > 0.1 {
		t.Errorf("Decoder_ready avg = %.4f, paper reports 0.0014", dr)
	}

	// The instruction buffer runs nearly full (paper: 4.621 of 6).
	full, _ := s.Utilization("Full_I_buffers")
	if full < 3.0 {
		t.Errorf("Full_I_buffers avg = %.4f, paper reports 4.621", full)
	}

	// Stores happen on roughly 20% of instructions.
	st, _ := s.EventRowByName("store_result")
	ns, _ := s.EventRowByName("no_store")
	frac := float64(st.Ends) / float64(st.Ends+ns.Ends)
	if frac < 0.15 || frac > 0.25 {
		t.Errorf("store fraction = %.3f, want about .20", frac)
	}
}

func TestBusInvariantHoldsInFullModel(t *testing.T) {
	net, err := Processor(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	free := net.MustPlace("Bus_free")
	busy := net.MustPlace("Bus_busy")
	var m []int
	violations := 0
	obs := trace.ObserverFunc(func(rec *trace.Record) error {
		switch rec.Kind {
		case trace.Initial:
			m = append([]int(nil), rec.Marking...)
		case trace.Start, trace.End:
			for _, d := range rec.Deltas {
				m[d.Place] += d.Change
			}
			if rec.Kind == trace.End && m[free]+m[busy] != 1 {
				violations++
			}
		}
		return nil
	})
	if _, err := sim.Run(context.Background(), net, obs, sim.Options{Horizon: 20_000, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Errorf("bus invariant violated %d times", violations)
	}
}

func TestPrefetchSubnet(t *testing.T) {
	net, err := Prefetch(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// With no operand/store competition the decode stage is limited by
	// prefetch bandwidth: 2 words per 5 cycles = 0.4 words/cycle max,
	// decode consumes 1/cycle, so prefetch saturates the bus.
	pre, _ := s.Utilization("pre_fetching")
	if pre < 0.8 {
		t.Errorf("prefetch-only bus usage = %.4f, expected near 1", pre)
	}
	dec, _ := s.Throughput("Decode")
	if dec < 0.3 || dec > 0.45 {
		t.Errorf("decode throughput = %.4f, want near 0.4 (prefetch-limited)", dec)
	}
}

func TestDecoderSubnet(t *testing.T) {
	net, err := Decoder(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	th, _ := s.Throughput("Issue")
	if th <= 0 {
		t.Error("decoder subnet issued nothing")
	}
	// Type mix still honoured in isolation.
	t1, _ := s.EventRowByName("Type_1")
	t3, _ := s.EventRowByName("Type_3")
	if t1.Ends <= t3.Ends {
		t.Errorf("type mix wrong in decoder subnet: %d vs %d", t1.Ends, t3.Ends)
	}
}

func TestExecutionSubnet(t *testing.T) {
	net, err := Execution(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Execution-only throughput: mean service = 4.6 cycles + store
	// traffic; rate should be near 1/5.7.
	th, _ := s.Throughput("Issue")
	if th < 0.12 || th > 0.22 {
		t.Errorf("execution subnet throughput = %.4f", th)
	}
}

func TestInterpretedProcessorRuns(t *testing.T) {
	net, err := InterpretedProcessor(DefaultParams(), DefaultInstructionSet())
	if err != nil {
		t.Fatal(err)
	}
	if !net.Interpreted() {
		t.Fatal("interpreted net not marked interpreted")
	}
	s := stats.New(trace.HeaderOf(net))
	res, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Starts == 0 {
		t.Fatal("nothing fired")
	}
	th, _ := s.Throughput("Issue")
	if th <= 0.01 {
		t.Errorf("interpreted model throughput = %.4f", th)
	}
	exec, _ := s.Throughput("execute")
	if math.Abs(exec-th) > 0.01 {
		t.Errorf("execute throughput %.4f != issue throughput %.4f", exec, th)
	}
	// The loop variables must be non-negative throughout; spot-check the
	// final environment.
	if res.Vars["number_of_operands_needed"] < 0 || res.Vars["words_needed"] < 0 {
		t.Errorf("loop variables went negative: %v", res.Vars)
	}
}

func TestInterpretedNetIsSmallerThanExplicit(t *testing.T) {
	// Section 3's point: the interpreted model's size does not grow with
	// the instruction set. A 6-type interpreted net must stay smaller
	// than a hypothetical per-type expansion (one decode path per type,
	// roughly 4 transitions each).
	net, err := InterpretedProcessor(DefaultParams(), DefaultInstructionSet())
	if err != nil {
		t.Fatal(err)
	}
	big := DefaultInstructionSet()
	// Triple the instruction set.
	for i := 0; i < 2; i++ {
		big.Operands = append(big.Operands, big.Operands[1:]...)
		big.ExtraWords = append(big.ExtraWords, big.ExtraWords[1:]...)
		big.ExecCycles = append(big.ExecCycles, big.ExecCycles[1:]...)
	}
	netBig, err := InterpretedProcessor(DefaultParams(), big)
	if err != nil {
		t.Fatal(err)
	}
	if netBig.NumTrans() != net.NumTrans() || netBig.NumPlaces() != net.NumPlaces() {
		t.Errorf("interpreted net grew with instruction set: %d/%d vs %d/%d",
			netBig.NumTrans(), netBig.NumPlaces(), net.NumTrans(), net.NumPlaces())
	}
}

func TestCacheProcessorRelievesBus(t *testing.T) {
	p := DefaultParams()
	base, err := Processor(p)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := CacheProcessor(p, DefaultCacheParams())
	if err != nil {
		t.Fatal(err)
	}
	sBase := stats.New(trace.HeaderOf(base))
	if _, err := sim.Run(context.Background(), base, sBase, sim.Options{Horizon: 20_000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	sCached := stats.New(trace.HeaderOf(cached))
	if _, err := sim.Run(context.Background(), cached, sCached, sim.Options{Horizon: 20_000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	busBase, _ := sBase.Utilization("Bus_busy")
	busCached, _ := sCached.Utilization("Bus_busy")
	if busCached >= busBase {
		t.Errorf("caches should relieve the bus: %.4f (cached) vs %.4f (base)", busCached, busBase)
	}
	thBase, _ := sBase.Throughput("Issue")
	thCached, _ := sCached.Throughput("Issue")
	if thCached <= thBase {
		t.Errorf("caches should raise throughput: %.4f vs %.4f", thCached, thBase)
	}
}

func TestCacheExtremes(t *testing.T) {
	p := DefaultParams()
	// Hit ratio 1: the bus is used by nothing in stage 1/2 except
	// never-firing miss paths.
	all := CacheParams{IHitRatio: 1, DHitRatio: 1, HitCycles: 1}
	net, err := CacheProcessor(p, all)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 10_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	bus, _ := s.Utilization("Bus_busy")
	if bus > 0.001 {
		t.Errorf("with perfect caches the bus should be idle, got %.4f", bus)
	}
	th, _ := s.Throughput("Issue")
	if th < 0.15 {
		t.Errorf("perfect-cache throughput = %.4f, should beat the base model's ~0.12", th)
	}
	// Hit ratio 0 must behave like an uncached machine (all misses).
	none := CacheParams{IHitRatio: 0, DHitRatio: 0, HitCycles: 1}
	net0, err := CacheProcessor(p, none)
	if err != nil {
		t.Fatal(err)
	}
	s0 := stats.New(trace.HeaderOf(net0))
	if _, err := sim.Run(context.Background(), net0, s0, sim.Options{Horizon: 10_000, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	hits, _ := s0.EventRowByName("icache_hit")
	if hits.Ends != 0 {
		t.Errorf("zero hit ratio produced %d hits", hits.Ends)
	}
}

func TestSequentialBaselineSlower(t *testing.T) {
	p := DefaultParams()
	pipe, err := Processor(p)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SequentialProcessor(p)
	if err != nil {
		t.Fatal(err)
	}
	sp := stats.New(trace.HeaderOf(pipe))
	if _, err := sim.Run(context.Background(), pipe, sp, sim.Options{Horizon: 30_000, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	ss := stats.New(trace.HeaderOf(seq))
	if _, err := sim.Run(context.Background(), seq, ss, sim.Options{Horizon: 30_000, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	thPipe, _ := sp.Throughput("Issue")
	thSeq, _ := ss.Throughput("Issue")
	if thSeq <= 0 {
		t.Fatal("sequential model issued nothing")
	}
	speedup := thPipe / thSeq
	if speedup < 1.3 {
		t.Errorf("pipeline speedup = %.2fx over sequential; expected clearly > 1", speedup)
	}
	if speedup > 3.5 {
		t.Errorf("pipeline speedup = %.2fx is implausibly high for a 3-stage pipeline", speedup)
	}
}

func TestMemorySpeedSensitivity(t *testing.T) {
	// The introduction's claim: memory speed has a strong impact.
	rate := func(mem int64) float64 {
		p := DefaultParams()
		p.MemoryCycles = mem
		net, err := Processor(p)
		if err != nil {
			t.Fatal(err)
		}
		s := stats.New(trace.HeaderOf(net))
		if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 20_000, Seed: 4}); err != nil {
			t.Fatal(err)
		}
		th, _ := s.Throughput("Issue")
		return th
	}
	fast, slow := rate(1), rate(10)
	if fast <= slow {
		t.Errorf("faster memory should raise throughput: mem=1 gives %.4f, mem=10 gives %.4f", fast, slow)
	}
	if fast/slow < 1.3 {
		t.Errorf("memory speed impact too weak: %.4f vs %.4f", fast, slow)
	}
}
