package pipeline

import (
	"errors"
	"testing"
)

// TestParamsCloneIsDeep: a sweep point mutating its cloned ExecCycles
// must not leak into the base parameters.
func TestParamsCloneIsDeep(t *testing.T) {
	base := DefaultParams()
	c := base.Clone()
	c.ExecCycles[0] = 99
	c.ExecFreqs[0] = 0.99
	if base.ExecCycles[0] == 99 || base.ExecFreqs[0] == 0.99 {
		t.Error("Clone shares slices with the original")
	}
}

func TestParamsSet(t *testing.T) {
	p := DefaultParams()
	if err := p.Set("MemoryCycles", 12); err != nil || p.MemoryCycles != 12 {
		t.Errorf("Set(MemoryCycles, 12): %v, got %d", err, p.MemoryCycles)
	}
	if err := p.Set("StoreProb", 0.4); err != nil || p.StoreProb != 0.4 {
		t.Errorf("Set(StoreProb, 0.4): %v, got %g", err, p.StoreProb)
	}
	if err := p.Set("BufferWords", 2.5); err == nil {
		t.Error("fractional BufferWords accepted")
	}
	err := p.Set("NoSuchField", 1)
	if !errors.Is(err, ErrUnknownParam) {
		t.Errorf("unknown field error = %v, want ErrUnknownParam", err)
	}
}

func TestApplyParamRouting(t *testing.T) {
	p := DefaultParams()
	c := DefaultCacheParams()
	if err := ApplyParam(&p, &c, "DHitRatio", 0.7); err != nil || c.DHitRatio != 0.7 {
		t.Errorf("ApplyParam(DHitRatio): %v, got %g", err, c.DHitRatio)
	}
	if err := ApplyParam(&p, &c, "DecodeCycles", 3); err != nil || p.DecodeCycles != 3 {
		t.Errorf("ApplyParam(DecodeCycles): %v, got %d", err, p.DecodeCycles)
	}
	// A bad value for a known name reports the value error, not
	// unknown-parameter.
	if err := ApplyParam(&p, &c, "HitCycles", 1.5); err == nil || errors.Is(err, ErrUnknownParam) {
		t.Errorf("bad HitCycles value error = %v", err)
	}
	// Cacheless models reject cache names.
	if err := ApplyParam(&p, nil, "DHitRatio", 0.5); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("cacheless DHitRatio error = %v, want ErrUnknownParam", err)
	}
}
