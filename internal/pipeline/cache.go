package pipeline

import (
	"fmt"

	"repro/internal/petri"
)

// CacheParams model the probabilistic caches sketched in Section 3:
// "Instruction and data caches are quite common and can be easily
// modeled probabilistically, assuming some given hit ratio." A hit is
// served from the cache in HitCycles without touching the bus; a miss
// pays the full memory access on the bus.
type CacheParams struct {
	IHitRatio float64    // instruction-cache hit ratio (applies to prefetch)
	DHitRatio float64    // data-cache hit ratio (applies to operand fetch and store)
	HitCycles petri.Time // cache access time
}

// DefaultCacheParams returns a 90%/85% cache with single-cycle access.
func DefaultCacheParams() CacheParams {
	return CacheParams{IHitRatio: 0.9, DHitRatio: 0.85, HitCycles: 1}
}

// Validate checks parameter sanity.
func (c *CacheParams) Validate() error {
	if c.IHitRatio < 0 || c.IHitRatio > 1 || c.DHitRatio < 0 || c.DHitRatio > 1 {
		return fmt.Errorf("pipeline: hit ratios must be in [0,1]: %g, %g", c.IHitRatio, c.DHitRatio)
	}
	if c.HitCycles < 0 {
		return fmt.Errorf("pipeline: HitCycles = %d", c.HitCycles)
	}
	return nil
}

// CacheProcessor builds the 3-stage pipeline extended with probabilistic
// instruction and data caches. The hit/miss decision is made by a pair of
// instantaneous competing transitions *before* any bus requirement, so
// the effective hit ratio is exactly the configured one regardless of bus
// contention; only misses then claim the bus. Cache hits bypass the bus
// entirely, so raising the hit ratios relieves exactly the contention the
// base model measures on Bus_busy.
func CacheProcessor(p Params, c CacheParams) (*petri.Net, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := petri.NewBuilder("pipeline_cached")
	stagePlaces(b, p)
	b.Place("prefetch_wanted", 0)
	b.Place("prefetch_miss", 0)
	b.Place("icache_serving", 0)
	b.Place("operand_miss", 0)
	b.Place("dcache_serving", 0)
	b.Place("store_miss", 0)
	b.Place("store_cache_serving", 0)

	// --- Stage 1 with an instruction cache ----------------------------
	// want_prefetch inhibits on its own downstream places so exactly one
	// prefetch transaction is outstanding, as in the base model where the
	// bus token provided that exclusion.
	b.Trans("want_prefetch").
		In("Empty_I_buffers", p.PrefetchWords).
		Inhib("Operand_fetch_pending").
		Inhib("operand_miss").
		Inhib("Result_store_pending").
		Inhib("store_miss").
		Inhib("prefetch_wanted").
		Inhib("prefetch_miss").
		Inhib("pre_fetching").
		Inhib("icache_serving").
		Out("prefetch_wanted")
	b.Trans("icache_hit").
		In("prefetch_wanted").
		Out("icache_serving").
		Freq(c.IHitRatio)
	b.Trans("icache_miss").
		In("prefetch_wanted").
		Out("prefetch_miss").
		Freq(1 - c.IHitRatio)
	b.Trans("icache_hit_done").
		In("icache_serving").
		Out("Full_I_buffers", p.PrefetchWords).
		EnablingConst(c.HitCycles)
	b.Trans("Start_prefetch").
		In("prefetch_miss").
		In("Bus_free").
		Out("pre_fetching").
		Out("Bus_busy")
	b.Trans("End_prefetch").
		In("pre_fetching").
		In("Bus_busy").
		Out("Full_I_buffers", p.PrefetchWords).
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)

	// --- Stage 2 with a data cache -------------------------------------
	b.Trans("Decode").
		In("Full_I_buffers").
		In("Decoder_ready").
		Out("Decoded_instruction").
		Out("Empty_I_buffers").
		FiringConst(p.DecodeCycles)
	b.Trans("Type_1").
		In("Decoded_instruction").
		Out("ready_to_issue_instruction").
		Freq(p.TypeFreqs[0])
	b.Trans("Type_2").
		In("Decoded_instruction").
		Out("EA_needed").
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[1])
	b.Trans("Type_3").
		In("Decoded_instruction").
		Out("EA_needed", 2).
		Out("Mem_instr_in_decode").
		Freq(p.TypeFreqs[2])
	b.Trans("calc_eaddr").
		In("EA_needed").
		Out("Operand_fetch_pending").
		EnablingConst(p.EACyclesPerOperand)
	b.Trans("dcache_hit").
		In("Operand_fetch_pending").
		Out("dcache_serving").
		Freq(c.DHitRatio)
	b.Trans("dcache_miss").
		In("Operand_fetch_pending").
		Out("operand_miss").
		Freq(1 - c.DHitRatio)
	b.Trans("dcache_hit_done").
		In("dcache_serving").
		EnablingConst(c.HitCycles)
	b.Trans("Start_operand_fetch").
		In("operand_miss").
		In("Bus_free").
		Out("fetching").
		Out("Bus_busy")
	b.Trans("End_operand_fetch").
		In("fetching").
		In("Bus_busy").
		Out("Bus_free").
		EnablingConst(p.MemoryCycles)
	b.Trans("operands_done").
		In("Mem_instr_in_decode").
		Inhib("EA_needed").
		Inhib("Operand_fetch_pending").
		Inhib("operand_miss").
		Inhib("fetching").
		Inhib("dcache_serving").
		Out("ready_to_issue_instruction")

	// --- Stage 3 with write-through-cache stores ------------------------
	b.Trans("Issue").
		In("ready_to_issue_instruction").
		In("Execution_unit").
		Out("Issued_instruction").
		Out("Decoder_ready")
	for i := range p.ExecCycles {
		b.Trans(fmt.Sprintf("exec_type_%d", i+1)).
			In("Issued_instruction").
			Out("Exec_complete").
			FiringConst(p.ExecCycles[i]).
			Freq(p.ExecFreqs[i])
	}
	b.Trans("no_store").
		In("Exec_complete").
		Out("Execution_unit").
		Freq(1 - p.StoreProb)
	b.Trans("store_result").
		In("Exec_complete").
		Out("Result_store_pending").
		Freq(p.StoreProb)
	b.Trans("store_cache_hit").
		In("Result_store_pending").
		Out("store_cache_serving").
		Freq(c.DHitRatio)
	b.Trans("store_cache_miss").
		In("Result_store_pending").
		Out("store_miss").
		Freq(1 - c.DHitRatio)
	b.Trans("store_cache_done").
		In("store_cache_serving").
		Out("Execution_unit").
		EnablingConst(c.HitCycles)
	b.Trans("Start_store").
		In("store_miss").
		In("Bus_free").
		Out("storing").
		Out("Bus_busy")
	b.Trans("End_store").
		In("storing").
		In("Bus_busy").
		Out("Bus_free").
		Out("Execution_unit").
		EnablingConst(p.MemoryCycles)
	return b.Build()
}
