package pipeline

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Analysis is the Section 4.2 exercise made executable: "a careful
// mapping must be done from the modeling primitives back to some higher
// level concept". It reads processor-level quantities off the place and
// transition statistics of a pipeline run.
type Analysis struct {
	// InstructionRate is instructions per processor cycle (throughput of
	// Issue).
	InstructionRate float64
	// BusUtilization is the average token count of Bus_busy.
	BusUtilization float64
	// BusPrefetch, BusOperand, BusStore break the bus activity down by
	// customer (the pre_fetching / fetching / storing places).
	BusPrefetch, BusOperand, BusStore float64
	// BufferFill is the average number of full instruction-buffer words.
	BufferFill float64
	// DecoderIdle and ExecIdle are the fractions of time the stage-2 and
	// stage-3 resources sit unclaimed.
	DecoderIdle, ExecIdle float64
	// IssueWait is the average number of instructions waiting to issue.
	IssueWait float64
	// ExecShare[i] is the fraction of time spent executing class-i+1
	// instructions (average concurrent firings of exec_type_(i+1));
	// empty for models without per-class transitions.
	ExecShare []float64
}

// Analyze extracts the processor-level view from a statistics
// accumulator fed by a pipeline-model trace.
func Analyze(s *stats.Stats) (*Analysis, error) {
	a := &Analysis{}
	var err error
	grab := func(dst *float64, f func() (float64, error)) {
		if err != nil {
			return
		}
		var v float64
		v, err = f()
		*dst = v
	}
	grab(&a.InstructionRate, func() (float64, error) { return s.Throughput("Issue") })
	grab(&a.BusUtilization, func() (float64, error) { return s.Utilization("Bus_busy") })
	grab(&a.BusPrefetch, func() (float64, error) { return s.Utilization("pre_fetching") })
	grab(&a.BusOperand, func() (float64, error) { return s.Utilization("fetching") })
	grab(&a.BusStore, func() (float64, error) { return s.Utilization("storing") })
	grab(&a.BufferFill, func() (float64, error) { return s.Utilization("Full_I_buffers") })
	grab(&a.DecoderIdle, func() (float64, error) { return s.Utilization("Decoder_ready") })
	grab(&a.ExecIdle, func() (float64, error) { return s.Utilization("Execution_unit") })
	grab(&a.IssueWait, func() (float64, error) { return s.Utilization("ready_to_issue_instruction") })
	if err != nil {
		return nil, fmt.Errorf("pipeline: trace is not of a pipeline model: %w", err)
	}
	for i := 1; ; i++ {
		row, ok := s.EventRowByName(fmt.Sprintf("exec_type_%d", i))
		if !ok {
			break
		}
		a.ExecShare = append(a.ExecShare, row.Avg)
	}
	return a, nil
}

// Report writes the higher-level reading of the statistics.
func (a *Analysis) Report(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "PROCESSOR-LEVEL ANALYSIS (derived per Section 4.2)\n")
	fmt.Fprintf(&b, "  instruction rate     %.4f instructions/cycle\n", a.InstructionRate)
	fmt.Fprintf(&b, "  bus utilization      %.4f\n", a.BusUtilization)
	fmt.Fprintf(&b, "    prefetching        %.4f\n", a.BusPrefetch)
	fmt.Fprintf(&b, "    operand fetching   %.4f\n", a.BusOperand)
	fmt.Fprintf(&b, "    result storing     %.4f\n", a.BusStore)
	fmt.Fprintf(&b, "  buffer fill          %.4f words\n", a.BufferFill)
	fmt.Fprintf(&b, "  decoder idle         %.4f\n", a.DecoderIdle)
	fmt.Fprintf(&b, "  execution unit idle  %.4f\n", a.ExecIdle)
	fmt.Fprintf(&b, "  issue queue          %.4f instructions\n", a.IssueWait)
	for i, share := range a.ExecShare {
		fmt.Fprintf(&b, "  executing class %d    %.4f of time\n", i+1, share)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
