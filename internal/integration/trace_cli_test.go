package integration_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestCLITraceConvertRoundTrip is the CI round-trip gate as a test:
// pnut-sim's text trace converted text -> col -> text must be
// byte-identical, pnut-sim -trace-format col must produce exactly the
// converted columnar bytes, and pnut-stat must report identically over
// both encodings.
func TestCLITraceConvertRoundTrip(t *testing.T) {
	bins := buildTools(t, "pnut-sim", "pnut-trace", "pnut-stat", "pnut-filter")
	simArgs := []string{"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000", "-seed", "3"}

	text, err := exec.Command(bins["pnut-sim"], simArgs...).Output()
	if err != nil {
		t.Fatalf("pnut-sim: %v", err)
	}
	direct, err := exec.Command(bins["pnut-sim"], append(simArgs, "-trace-format", "col")...).Output()
	if err != nil {
		t.Fatalf("pnut-sim -trace-format col: %v", err)
	}
	if len(direct) >= len(text) {
		t.Errorf("columnar trace is not smaller: %d vs %d bytes", len(direct), len(text))
	}

	col := runPipe(t, bins["pnut-trace"], text, "convert", "-to", "col")
	if !bytes.Equal(col, direct) {
		t.Error("converted columnar trace differs from pnut-sim's direct columnar output")
	}
	back := runPipe(t, bins["pnut-trace"], col, "convert", "-to", "text")
	if !bytes.Equal(back, text) {
		t.Error("text -> col -> text is not byte-identical")
	}

	statText := runPipe(t, bins["pnut-stat"], text)
	statCol := runPipe(t, bins["pnut-stat"], col)
	if !bytes.Equal(statText, statCol) {
		t.Error("pnut-stat reports differ between text and col input")
	}

	// Filtering columnar input emits columnar output (auto matches the
	// input format) identical, after conversion, to the text filter.
	filtText := runPipe(t, bins["pnut-filter"], text, "-places", "Bus_busy,Bus_free")
	filtCol := runPipe(t, bins["pnut-filter"], col, "-places", "Bus_busy,Bus_free")
	if !bytes.HasPrefix(filtCol, []byte("PNUTCOL1")) {
		t.Error("filter on columnar input did not emit columnar output")
	}
	if got := runPipe(t, bins["pnut-trace"], filtCol, "convert", "-to", "text"); !bytes.Equal(got, filtText) {
		t.Error("filtered trace differs between text and col paths")
	}

	// inspect summarizes both encodings the same way (minus the format
	// and block lines).
	inspText := runPipe(t, bins["pnut-trace"], text, "inspect")
	inspCol := runPipe(t, bins["pnut-trace"], col, "inspect")
	strip := func(b []byte) string {
		var keep []string
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "format:") || strings.HasPrefix(line, "blocks:") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(inspText) != strip(inspCol) {
		t.Errorf("inspect summaries differ:\n%s\nvs\n%s", inspText, inspCol)
	}
}

// TestCLIExpTraceDir: pnut-exp -trace-dir writes one decodable trace
// per replication, identical to the single-run traces of the same
// seeds.
func TestCLIExpTraceDir(t *testing.T) {
	bins := buildTools(t, "pnut-exp", "pnut-sim", "pnut-trace")
	dir := filepath.Join(t.TempDir(), "traces")
	out, err := exec.Command(bins["pnut-exp"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "500", "-reps", "3", "-seed", "9",
		"-throughput", "Issue", "-trace-dir", dir, "-trace-format", "col").CombinedOutput()
	if err != nil {
		t.Fatalf("pnut-exp: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("wrote %d traces, want 3", len(entries))
	}
	for rep := 0; rep < 3; rep++ {
		name := filepath.Join(dir, fmt.Sprintf("rep-%04d.trace", rep))
		enc, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		// Replication rep ran with seed 9+rep: its trace must equal the
		// equivalent single-run columnar trace.
		want, err := exec.Command(bins["pnut-sim"],
			"-net", testdataPath(t, "pipeline.pn"), "-horizon", "500",
			"-seed", strconv.Itoa(9+rep), "-trace-format", "col").Output()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, want) {
			t.Errorf("rep %d trace differs from pnut-sim -seed %d output", rep, 9+rep)
		}
	}
}

// runPipe runs bin with args feeding stdin, failing the test on error.
func runPipe(t *testing.T, bin string, stdin []byte, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = bytes.NewReader(stdin)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, stderr.Bytes())
	}
	return out
}
