package integration_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the cmd/ binaries once into a temp dir.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI build in -short mode")
	}
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, n := range names {
		bin := filepath.Join(dir, n)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+n)
		cmd.Dir = repoRoot(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", n, err, b)
		}
		out[n] = bin
	}
	return out
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func testdataPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(repoRoot(t), "testdata", name)
}

// TestCLISimStatPipe runs pnut-sim | pnut-stat exactly as the paper
// pipes its tools.
func TestCLISimStatPipe(t *testing.T) {
	bins := buildTools(t, "pnut-sim", "pnut-stat", "pnut-filter")
	simOut, err := exec.Command(bins["pnut-sim"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000", "-seed", "3").Output()
	if err != nil {
		t.Fatalf("pnut-sim: %v", err)
	}
	stat := exec.Command(bins["pnut-stat"])
	stat.Stdin = bytes.NewReader(simOut)
	report, err := stat.Output()
	if err != nil {
		t.Fatalf("pnut-stat: %v", err)
	}
	for _, want := range []string{"RUN STATISTICS", "EVENT STATISTICS", "PLACE STATISTICS", "Issue", "Bus_busy"} {
		if !strings.Contains(string(report), want) {
			t.Errorf("report missing %q", want)
		}
	}
	// And through the filter.
	filt := exec.Command(bins["pnut-filter"], "-places", "Bus_busy,Bus_free")
	filt.Stdin = bytes.NewReader(simOut)
	filtered, err := filt.Output()
	if err != nil {
		t.Fatalf("pnut-filter: %v", err)
	}
	if len(filtered) >= len(simOut) {
		t.Errorf("filter did not shrink the trace: %d -> %d bytes", len(simOut), len(filtered))
	}
	stat2 := exec.Command(bins["pnut-stat"])
	stat2.Stdin = bytes.NewReader(filtered)
	if _, err := stat2.Output(); err != nil {
		t.Fatalf("pnut-stat on filtered trace: %v", err)
	}
}

// TestCLITracerAndQueries drives pnut-tracer with the Figure 7 probes
// and a verification query; a failing query must exit nonzero.
func TestCLITracerAndQueries(t *testing.T) {
	bins := buildTools(t, "pnut-sim", "pnut-tracer")
	simOut, err := exec.Command(bins["pnut-sim"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000", "-seed", "3").Output()
	if err != nil {
		t.Fatal(err)
	}
	vcdPath := filepath.Join(t.TempDir(), "out.vcd")
	tr := exec.Command(bins["pnut-tracer"], "-figure7", "-to", "400",
		"-check", "forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]",
		"-vcd", vcdPath)
	tr.Stdin = bytes.NewReader(simOut)
	out, err := tr.Output()
	if err != nil {
		t.Fatalf("pnut-tracer: %v", err)
	}
	if !strings.Contains(string(out), "Bus_busy") || !strings.Contains(string(out), "HOLDS") {
		t.Errorf("tracer output unexpected:\n%s", out)
	}
	vcd, err := os.ReadFile(vcdPath)
	if err != nil || !strings.Contains(string(vcd), "$enddefinitions") {
		t.Errorf("VCD not written: %v", err)
	}
	// A query that fails makes the tool exit 1.
	bad := exec.Command(bins["pnut-tracer"], "-check", "forall s in S [ Bus_busy(s) == 0 ]")
	bad.Stdin = bytes.NewReader(simOut)
	if err := bad.Run(); err == nil {
		t.Error("failing query should exit nonzero")
	}
}

// TestCLIReachAndAnalytic checks the state-space tools end to end.
func TestCLIReachAndAnalytic(t *testing.T) {
	bins := buildTools(t, "pnut-reach", "pnut-analytic", "pnut-dot")
	out, err := exec.Command(bins["pnut-reach"],
		"-net", testdataPath(t, "mutex.pn"),
		"-check", "AG({crit_a + crit_b <= 1})",
		"-invariant", "lock=1,crit_a=1,crit_b=1").Output()
	if err != nil {
		t.Fatalf("pnut-reach: %v", err)
	}
	if !strings.Contains(string(out), "HOLDS") || !strings.Contains(string(out), "INVARIANT HOLDS") {
		t.Errorf("reach output:\n%s", out)
	}
	out, err = exec.Command(bins["pnut-analytic"],
		"-net", testdataPath(t, "mutex.pn"), "-place", "crit_a", "-trans", "enter_a").Output()
	if err != nil {
		t.Fatalf("pnut-analytic: %v", err)
	}
	if !strings.Contains(string(out), "avg tokens") || !strings.Contains(string(out), "throughput") {
		t.Errorf("analytic output:\n%s", out)
	}
	out, err = exec.Command(bins["pnut-dot"], "-net", testdataPath(t, "mutex.pn")).Output()
	if err != nil || !strings.Contains(string(out), "digraph") {
		t.Errorf("pnut-dot: %v\n%s", err, out)
	}
	out, err = exec.Command(bins["pnut-dot"], "-net", testdataPath(t, "mutex.pn"), "-reach", "-timed").Output()
	if err != nil || !strings.Contains(string(out), "style=dashed") {
		t.Errorf("pnut-dot -reach -timed: %v\n%s", err, out)
	}
}

// TestCLIAnimator renders a short animation from a stored trace file.
func TestCLIAnimator(t *testing.T) {
	bins := buildTools(t, "pnut-sim", "pnut-anim")
	simOut, err := exec.Command(bins["pnut-sim"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "30").Output()
	if err != nil {
		t.Fatal(err)
	}
	an := exec.Command(bins["pnut-anim"], "-net", testdataPath(t, "pipeline.pn"), "-hide-idle", "-max-frames", "40")
	an.Stdin = bytes.NewReader(simOut)
	out, err := an.Output()
	if err != nil {
		t.Fatalf("pnut-anim: %v", err)
	}
	if !strings.Contains(string(out), "frame 1") || !strings.Contains(string(out), "Start_prefetch") {
		t.Errorf("animation output:\n%.400s", out)
	}
}

// TestCLIExperiment drives the replication mode end to end: pnut-exp
// summarizes metrics across replications, and the pooled report of
// pnut-sim -reps must be byte-identical for every -parallel value.
func TestCLIExperiment(t *testing.T) {
	bins := buildTools(t, "pnut-sim", "pnut-exp")
	out, err := exec.Command(bins["pnut-exp"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000", "-reps", "6",
		"-throughput", "Issue", "-utilization", "Bus_busy", "-report").Output()
	if err != nil {
		t.Fatalf("pnut-exp: %v", err)
	}
	for _, want := range []string{"6 replications", "throughput(Issue)", "utilization(Bus_busy)", "95% CI", "PLACE STATISTICS"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("pnut-exp output missing %q:\n%s", want, out)
		}
	}
	var reports [][]byte
	for _, workers := range []string{"1", "5"} {
		rep, err := exec.Command(bins["pnut-sim"],
			"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000",
			"-seed", "42", "-reps", "6", "-parallel", workers).Output()
		if err != nil {
			t.Fatalf("pnut-sim -reps -parallel %s: %v", workers, err)
		}
		reports = append(reports, rep)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("pnut-sim -reps report differs between -parallel 1 and -parallel 5")
	}
	if !strings.Contains(string(reports[0]), "RUN STATISTICS") {
		t.Errorf("pooled report malformed:\n%.300s", reports[0])
	}
}
