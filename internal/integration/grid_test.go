package integration_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// gridArgs is the reference sweep the golden fixtures pin (see
// TestGoldenSweep), minus the tool-specific flags.
func gridArgs(format string) []string {
	return []string{
		"-model", "cache",
		"-axis", "DHitRatio=0.5,0.9", "-axis", "MemoryCycles=1,5",
		"-horizon", "1000", "-seed", "11", "-reps", "3",
		"-format", format,
		"-throughput", "Issue", "-utilization", "Bus_busy",
	}
}

// TestGoldenGrid holds the distributed driver to the in-process golden
// files: pnut-grid across 1, 2 and 4 worker processes must reproduce
// pnut-sweep's stdout byte for byte, in both output formats.
func TestGoldenGrid(t *testing.T) {
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	for _, procs := range []string{"1", "2", "4"} {
		csv := mustOutput(t, bins["pnut-grid"], append(gridArgs("csv"),
			"-worker-cmd", bins["pnut-sweep"], "-procs", procs)...)
		goldenCompare(t, "pnut-sweep.csv", csv)
	}
	table := mustOutput(t, bins["pnut-grid"], append(gridArgs("table"),
		"-worker-cmd", bins["pnut-sweep"], "-procs", "2")...)
	goldenCompare(t, "pnut-sweep.txt", table)
}

// TestGridKillWorkerResume is the process-level resume contract: a
// worker that dies mid-shard fails the run but leaves its completed
// cells in the journal; re-running with a healthy worker re-dispatches
// only the missing cells and reproduces the golden output exactly.
func TestGridKillWorkerResume(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("flaky-worker shim is a shell script")
	}
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	dir := t.TempDir()
	journal := filepath.Join(dir, "run.jsonl")

	// A worker that, when handed shard 6:12, silently runs only 6:9 and
	// then dies — three journaled cells, three lost.
	shim := filepath.Join(dir, "flaky-worker.sh")
	script := fmt.Sprintf(`#!/bin/sh
args=""
die=0
for a in "$@"; do
  if [ "$a" = "6:12" ]; then a="6:9"; die=7; fi
  args="$args $a"
done
%q $args
exit $die
`, bins["pnut-sweep"])
	if err := os.WriteFile(shim, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}

	run := func(worker string) (string, string, error) {
		cmd := exec.Command(bins["pnut-grid"], append(gridArgs("csv"),
			"-worker-cmd", worker, "-procs", "2", "-journal", journal, "-v")...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.String(), stderr.String(), err
	}

	if _, stderr, err := run(shim); err == nil {
		t.Fatalf("sabotaged run succeeded:\n%s", stderr)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("failed run left no journal: %v", err)
	}

	stdout, stderr, err := run(bins["pnut-sweep"])
	if err != nil {
		t.Fatalf("resume failed: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "resumed 9/12 cells") {
		t.Errorf("resume did not pick up the journaled cells:\n%s", stderr)
	}
	if !strings.Contains(stderr, "dispatching 3 cells") {
		t.Errorf("resume did not restrict dispatch to the missing cells:\n%s", stderr)
	}
	goldenCompare(t, "pnut-sweep.csv", []byte(stdout))

	// A third run has a complete journal: nothing dispatches, output holds.
	stdout, stderr, err = run(bins["pnut-sweep"])
	if err != nil {
		t.Fatalf("replay failed: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "nothing to dispatch") {
		t.Errorf("complete journal still dispatched work:\n%s", stderr)
	}
	goldenCompare(t, "pnut-sweep.csv", []byte(stdout))
}

// adaptiveArgs is the reference adaptive sweep for the process-level
// identity tests: a mixed-variance cache grid with a 5% relative-CI
// target, so points stop at different replication counts.
func adaptiveArgs() []string {
	return []string{
		"-model", "cache",
		"-axis", "DHitRatio=0,0.5,0.9,1",
		"-horizon", "2000", "-seed", "7",
		"-adaptive", "throughput(Issue):0.05",
		"-min-reps", "3", "-max-reps", "32", "-batch", "2",
		"-format", "csv", "-throughput", "Issue",
	}
}

// TestAdaptiveGridMatchesSweep is the adaptive identity at process
// level: the CSV (including the per-point "n" column) of a 1-worker
// in-process pnut-sweep, a GOMAXPROCS pnut-sweep, and pnut-grid across
// 2 and 3 worker processes must all be byte-identical — the stopping
// decisions replay identically everywhere. A journaled re-run replays
// the rounds without dispatching and still matches.
func TestAdaptiveGridMatchesSweep(t *testing.T) {
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	want := mustOutput(t, bins["pnut-sweep"], append(adaptiveArgs(), "-parallel", "1")...)
	if !strings.Contains(strings.SplitN(string(want), "\n", 2)[0], ",n,") {
		t.Fatalf("adaptive CSV header lacks the n column:\n%s", want)
	}
	if got := mustOutput(t, bins["pnut-sweep"], adaptiveArgs()...); !bytes.Equal(got, want) {
		t.Errorf("parallel pnut-sweep differs from 1-worker run:\n%s", got)
	}
	journal := filepath.Join(t.TempDir(), "adaptive.jsonl")
	for _, procs := range []string{"2", "3"} {
		got := mustOutput(t, bins["pnut-grid"], append(adaptiveArgs(),
			"-worker-cmd", bins["pnut-sweep"], "-procs", procs, "-journal", journal)...)
		if !bytes.Equal(got, want) {
			t.Errorf("pnut-grid -procs %s differs from pnut-sweep:\n%s", procs, got)
		}
	}
	// The journal is complete after the first grid run; a worker command
	// that always fails proves the replay dispatches nothing.
	if runtime.GOOS != "windows" {
		got := mustOutput(t, bins["pnut-grid"], append(adaptiveArgs(),
			"-worker-cmd", "/bin/false", "-procs", "2", "-journal", journal)...)
		if !bytes.Equal(got, want) {
			t.Errorf("adaptive journal replay differs from pnut-sweep:\n%s", got)
		}
	}
}

// TestGridRejectsDriftedJournal: changing the sweep under a journal is
// an error, not silent corruption.
func TestGridRejectsDriftedJournal(t *testing.T) {
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	mustOutput(t, bins["pnut-grid"], append(gridArgs("csv"),
		"-worker-cmd", bins["pnut-sweep"], "-procs", "2", "-journal", journal)...)

	drifted := append(gridArgs("csv"), "-worker-cmd", bins["pnut-sweep"], "-procs", "2", "-journal", journal)
	drifted[9] = "999" // a different base seed
	cmd := exec.Command(bins["pnut-grid"], drifted...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil || !strings.Contains(stderr.String(), "different sweep") {
		t.Errorf("drifted journal: err=%v stderr=%s", err, stderr.String())
	}
}

// TestGridRetrySurvivesWorkerDeath is the process-level retry
// contract: with a retry budget, the same mid-shard worker death that
// TestGridKillWorkerResume needs two runs to absorb completes in a
// single pnut-grid invocation — the salvaged cells are re-dispatched
// in-run and the output still matches the golden file byte for byte.
func TestGridRetrySurvivesWorkerDeath(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("flaky-worker shim is a shell script")
	}
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	dir := t.TempDir()

	// Same sabotage as the resume test: shard 6:12 silently runs only
	// 6:9 and dies. The salvaged retry span 9:12 passes through intact.
	shim := filepath.Join(dir, "flaky-worker.sh")
	script := fmt.Sprintf(`#!/bin/sh
args=""
die=0
for a in "$@"; do
  if [ "$a" = "6:12" ]; then a="6:9"; die=7; fi
  args="$args $a"
done
%q $args
exit $die
`, bins["pnut-sweep"])
	if err := os.WriteFile(shim, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bins["pnut-grid"], append(gridArgs("csv"),
		"-worker-cmd", shim, "-procs", "2", "-retries", "1", "-backoff", "10ms", "-v")...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("run with retry budget failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "retrying") {
		t.Errorf("retry never happened (shim did not die?):\n%s", stderr.String())
	}
	goldenCompare(t, "pnut-sweep.csv", stdout.Bytes())
}

// TestAdaptiveGridRetryMatchesSweep extends the retry contract to
// adaptive sweeps: a worker whose first exec dies outright is absorbed
// by the round's retry budget, and the single-invocation output is
// byte-identical to the in-process pnut-sweep.
func TestAdaptiveGridRetryMatchesSweep(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("flaky-worker shim is a shell script")
	}
	bins := buildTools(t, "pnut-sweep", "pnut-grid")
	want := mustOutput(t, bins["pnut-sweep"], append(adaptiveArgs(), "-parallel", "1")...)

	dir := t.TempDir()
	marker := filepath.Join(dir, "died-once")
	shim := filepath.Join(dir, "flaky-worker.sh")
	script := fmt.Sprintf(`#!/bin/sh
if [ ! -f %q ]; then : > %q; exit 3; fi
exec %q "$@"
`, marker, marker, bins["pnut-sweep"])
	if err := os.WriteFile(shim, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bins["pnut-grid"], append(adaptiveArgs(),
		"-worker-cmd", shim, "-procs", "2", "-retries", "2", "-backoff", "10ms", "-v")...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("adaptive run with retry budget failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "retrying") {
		t.Errorf("retry never happened (shim did not die?):\n%s", stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("retried adaptive pnut-grid differs from pnut-sweep:\n%s", stdout.String())
	}
}
