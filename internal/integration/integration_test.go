// Package integration_test exercises the P-NUT tools exactly as the
// paper composes them: the simulator emits a trace, the trace travels
// through the text codec (as it would through a Unix pipe), and each
// analysis tool consumes it — verifying that the decoupling loses
// nothing.
package integration_test

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/anim"
	"repro/internal/pipeline"
	"repro/internal/ptl"
	"repro/internal/query"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracer"
)

// runPipelineTrace simulates the paper model and returns the encoded
// trace bytes plus the statistics computed live (streamed).
func runPipelineTrace(t *testing.T, cycles int64) ([]byte, *stats.Stats) {
	t.Helper()
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	h := trace.HeaderOf(net)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, h, false)
	live := stats.New(h)
	if _, err := sim.Run(context.Background(), net, trace.Tee{w, live}, sim.Options{Horizon: cycles, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), live
}

// TestStreamedEqualsReplayed: statistics computed live during the run
// must equal statistics computed from the stored trace, bit for bit.
func TestStreamedEqualsReplayed(t *testing.T) {
	raw, live := runPipelineTrace(t, 5_000)
	r := trace.NewReader(bytes.NewReader(raw))
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	replayed := stats.New(h)
	if _, err := trace.Copy(r, replayed); err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := live.Report(&a); err != nil {
		t.Fatal(err)
	}
	if err := replayed.Report(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("live and replayed statistics reports differ")
	}
}

// TestFilterThenStat: filtering down to the bus places must preserve
// their statistics exactly (the paper's justification for the filter).
func TestFilterThenStat(t *testing.T) {
	raw, live := runPipelineTrace(t, 5_000)
	r := trace.NewReader(bytes.NewReader(raw))
	h, err := r.Header()
	if err != nil {
		t.Fatal(err)
	}
	var filteredBuf bytes.Buffer
	fw := trace.NewWriter(&filteredBuf, h, false)
	filter, err := trace.NewFilter(h, fw, []string{"Bus_busy", "Bus_free"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n1, err := trace.Copy(r, filter)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if filteredBuf.Len() >= len(raw) {
		t.Errorf("filtered trace (%d bytes) not smaller than full trace (%d bytes)",
			filteredBuf.Len(), len(raw))
	}
	fr := trace.NewReader(bytes.NewReader(filteredBuf.Bytes()))
	if _, err := fr.Header(); err != nil {
		t.Fatal(err)
	}
	fs := stats.New(h)
	n2, err := trace.Copy(fr, fs)
	if err != nil {
		t.Fatal(err)
	}
	if n2 >= n1 {
		t.Errorf("filtered record count %d not below full %d", n2, n1)
	}
	for _, place := range []string{"Bus_busy", "Bus_free"} {
		want, _ := live.Utilization(place)
		got, _ := fs.Utilization(place)
		if math.Abs(want-got) > 1e-12 {
			t.Errorf("%s: filtered stat %.9f != full stat %.9f", place, got, want)
		}
	}
}

// TestQueriesFromStoredTrace: the verification front end works off a
// stored trace just as off a live one.
func TestQueriesFromStoredTrace(t *testing.T) {
	raw, _ := runPipelineTrace(t, 5_000)
	seq, err := query.SeqFromReader(trace.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := query.Check(seq, "forall s in S [ Bus_busy(s) + Bus_free(s) <= 1 ]")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("bus invariant failed at state %d", res.Witness)
	}
	tr := tracer.New(seq)
	if err := tr.AddPlace("Bus_busy"); err != nil {
		t.Fatal(err)
	}
	out := tr.Render(tracer.RenderOptions{From: 0, To: 200, Width: 50})
	if !strings.Contains(out, "Bus_busy") {
		t.Error("tracer failed on stored trace")
	}
}

// TestAnimatorFromStoredTrace: the animator consumes the same stored
// trace (it needs the net for arc layout, as pnut-anim does).
func TestAnimatorFromStoredTrace(t *testing.T) {
	raw, _ := runPipelineTrace(t, 60)
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	a := anim.New(net, &out, anim.Options{FlowSteps: 1, HideIdle: true})
	r := trace.NewReader(bytes.NewReader(raw))
	if _, err := r.Header(); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Copy(r, a); err != nil {
		t.Fatal(err)
	}
	if a.Frames() < 10 {
		t.Errorf("only %d frames", a.Frames())
	}
	if !strings.Contains(out.String(), "Start_prefetch") {
		t.Error("animation content missing")
	}
}

// TestPnFileRoundTripThroughTools: the .pn files shipped in testdata
// parse, simulate and agree with the programmatic models.
func TestPnFileRoundTripThroughTools(t *testing.T) {
	for _, path := range []string{"pipeline", "pipeline_interpreted"} {
		src, err := readTestdata(t, path+".pn")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		net, err := ptl.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		s := stats.New(trace.HeaderOf(net))
		if _, err := sim.Run(context.Background(), net, s, sim.Options{Horizon: 2_000, Seed: 5}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		th, err := s.Throughput("Issue")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if th <= 0 {
			t.Errorf("%s: zero throughput", path)
		}
	}
}

func readTestdata(t *testing.T, name string) (string, error) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	return string(b), err
}

// TestVCDFromStoredTrace closes the loop to external EDA tooling.
func TestVCDFromStoredTrace(t *testing.T) {
	raw, _ := runPipelineTrace(t, 500)
	seq, err := query.SeqFromReader(trace.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracer.Figure7(seq)
	if err != nil {
		t.Fatal(err)
	}
	var vcd strings.Builder
	if err := tr.WriteVCD(&vcd, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"$enddefinitions", "Bus_busy", "sum_exec", "#0"} {
		if !strings.Contains(vcd.String(), want) {
			t.Errorf("VCD missing %q", want)
		}
	}
}
