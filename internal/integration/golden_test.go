package integration_test

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// update regenerates the golden fixtures instead of comparing:
//
//	go test ./internal/integration -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCompare checks stdout against testdata/golden/<name>, or
// rewrites the fixture under -update. Golden runs pin every source of
// nondeterminism (seeds, -parallel) and the tools keep timing on
// stderr, so the bytes are stable across machines and worker counts.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join(repoRoot(t), "testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update after intended changes)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// mustOutput runs bin and returns stdout, failing with stderr attached.
func mustOutput(t *testing.T, bin string, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, stderr.String())
	}
	return out
}

// TestGoldenExp pins the pnut-exp output format: the metric summary
// block and the pooled Figure-5 report for a fixed seed schedule.
func TestGoldenExp(t *testing.T) {
	bins := buildTools(t, "pnut-exp")
	out := mustOutput(t, bins["pnut-exp"],
		"-net", testdataPath(t, "pipeline.pn"), "-horizon", "2000",
		"-seed", "7", "-reps", "4", "-parallel", "2",
		"-throughput", "Issue", "-utilization", "Bus_busy", "-report")
	goldenCompare(t, "pnut-exp.txt", out)
}

// TestGoldenSweep pins both pnut-sweep output formats over a 2x2 cache
// grid, and re-runs the table at a different worker count to hold the
// determinism guarantee at the CLI boundary.
func TestGoldenSweep(t *testing.T) {
	bins := buildTools(t, "pnut-sweep")
	args := func(format, workers string) []string {
		return []string{
			"-model", "cache",
			"-axis", "DHitRatio=0.5,0.9", "-axis", "MemoryCycles=1,5",
			"-horizon", "1000", "-seed", "11", "-reps", "3",
			"-format", format, "-parallel", workers,
			"-throughput", "Issue", "-utilization", "Bus_busy",
		}
	}
	table := mustOutput(t, bins["pnut-sweep"], args("table", "2")...)
	goldenCompare(t, "pnut-sweep.txt", table)
	csv := mustOutput(t, bins["pnut-sweep"], args("csv", "2")...)
	goldenCompare(t, "pnut-sweep.csv", csv)

	// The CSV fixture also holds the determinism guarantee at the CLI
	// boundary: any worker count must reproduce it byte for byte.
	for _, workers := range []string{"1", "4"} {
		rerun := mustOutput(t, bins["pnut-sweep"], args("csv", workers)...)
		if !bytes.Equal(rerun, csv) {
			t.Errorf("-parallel %s changed the CSV output", workers)
		}
	}
}

// TestGoldenSweepEngines pins the exhaustive engines at the CLI
// boundary: the reach and analytic grid tables on the mutex net, plus
// the sim-vs-analytic cross-validation report. The reach CSV is also
// re-run across exploration shard counts, holding the parallel-build
// bit-identity guarantee end to end.
func TestGoldenSweepEngines(t *testing.T) {
	bins := buildTools(t, "pnut-sweep")
	net := testdataPath(t, "mutex.pn")

	reachArgs := func(shards string) []string {
		return []string{
			"-net", net, "-engine", "reach",
			"-bound", "lock", "-ctl", "AG(EF({crit_a == 1}))",
			"-explore-shards", shards, "-format", "csv",
		}
	}
	reach := mustOutput(t, bins["pnut-sweep"], reachArgs("1")...)
	goldenCompare(t, "pnut-sweep-reach.csv", reach)
	for _, shards := range []string{"2", "8"} {
		if rerun := mustOutput(t, bins["pnut-sweep"], reachArgs(shards)...); !bytes.Equal(rerun, reach) {
			t.Errorf("-explore-shards %s changed the reach CSV", shards)
		}
	}

	analytic := mustOutput(t, bins["pnut-sweep"],
		"-net", net, "-engine", "analytic",
		"-throughput", "enter_a", "-utilization", "crit_a", "-format", "csv")
	goldenCompare(t, "pnut-sweep-analytic.csv", analytic)

	cross := mustOutput(t, bins["pnut-sweep"],
		"-net", net, "-engine", "sim+analytic",
		"-throughput", "enter_a", "-utilization", "crit_a",
		"-reps", "3", "-horizon", "5000", "-seed", "11", "-parallel", "2", "-format", "csv")
	goldenCompare(t, "pnut-sweep-cross.csv", cross)
}

// TestGoldenSweepNetVars pins the .pn var-override mode.
func TestGoldenSweepNetVars(t *testing.T) {
	bins := buildTools(t, "pnut-sweep")
	out := mustOutput(t, bins["pnut-sweep"],
		"-net", testdataPath(t, "pipeline_interpreted.pn"),
		"-axis", "max_type=4,6",
		"-horizon", "1000", "-seed", "3", "-reps", "2", "-parallel", "2",
		"-throughput", "Issue")
	goldenCompare(t, "pnut-sweep-vars.txt", out)
}
