// Package experiment is the parallel replication driver for the P-NUT
// simulator: it fans N independent replications of one experiment out
// across a pool of workers, one sim.Engine and one statistics
// accumulator per worker, and merges the results deterministically.
//
// The paper's workflow is "run many simulation experiments and pipe
// them through analysis tools"; replications of a stochastic experiment
// are embarrassingly parallel, so the driver scales the hot path with
// cores while keeping the result exactly reproducible:
//
//   - Seeds are sharded from a base seed: replication i always runs
//     with seed BaseSeed+i, no matter which worker executes it.
//   - Every worker owns its engine, RNG and accumulators outright
//     (observers are thread-confined, see trace.Observer), so runs
//     share nothing but the immutable petri.Net.
//   - Per-replication results are collected into a slice indexed by
//     replication number and folded in that order, so merged statistics
//     are bit-for-bit identical for any worker count.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Metric is a named per-replication scalar extracted from a run's
// statistics, summarized across replications with a 95% CI.
type Metric struct {
	Name string
	Eval func(*stats.Stats) (float64, error)
}

// Throughput returns a metric measuring a transition's completions per
// tick (the paper reads instruction rate off transition Issue this way).
func Throughput(transition string) Metric {
	return Metric{
		Name: "throughput(" + transition + ")",
		Eval: func(s *stats.Stats) (float64, error) { return s.Throughput(transition) },
	}
}

// Utilization returns a metric measuring a place's time-weighted mean
// token count (e.g. bus utilization off place Bus_busy).
func Utilization(place string) Metric {
	return Metric{
		Name: "utilization(" + place + ")",
		Eval: func(s *stats.Stats) (float64, error) { return s.Utilization(place) },
	}
}

// Options configure one replicated experiment.
type Options struct {
	// Reps is the number of independent replications (at least 1).
	Reps int
	// Workers caps the worker pool; 0 or less means GOMAXPROCS. The
	// worker count never affects results, only wall-clock time.
	Workers int
	// BaseSeed seeds replication i with BaseSeed+i. The Seed field of
	// Sim is ignored.
	BaseSeed int64
	// Sim holds the per-run simulation options (Horizon or MaxStarts
	// must be set, exactly as for sim.Run).
	Sim sim.Options
	// Metrics are evaluated against each replication's statistics and
	// summarized across replications.
	Metrics []Metric
	// Observe, if non-nil, supplies one extra observer per replication
	// (Tee'd with the statistics accumulator). Each call must return a
	// fresh observer: it is confined to that replication's goroutine.
	Observe func(rep int) trace.Observer
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (o *Options) workers() int {
	w := o.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	if w > o.Reps {
		w = o.Reps
	}
	return w
}

// Result is the outcome of a replicated experiment.
type Result struct {
	// Reps and Workers echo the effective experiment shape.
	Reps    int
	Workers int
	// Pooled holds the statistics of all replications merged in
	// replication order (deterministic for any worker count).
	Pooled *stats.Stats
	// Summaries holds one cross-replication summary per metric, in
	// Options.Metrics order.
	Summaries []stats.Summary
	// Values holds the per-replication metric values, Values[m][i]
	// being metric m of replication i.
	Values [][]float64
	// Runs holds each replication's run summary, indexed by replication.
	Runs []sim.Result
	// Elapsed is the wall-clock time of the whole experiment; Events is
	// the total number of firings completed across replications.
	Elapsed time.Duration
	Events  int64

	names []string // metric names, parallel to Summaries
}

// Summary returns the cross-replication summary of a named metric.
func (r *Result) Summary(name string) (stats.Summary, bool) {
	for i, n := range r.names {
		if n == name {
			return r.Summaries[i], true
		}
	}
	return stats.Summary{}, false
}

// cellError carries the first failure out of the pool.
type cellError struct {
	cell int
	err  error
}

// runPool fans cells 0..cells-1 out across a pool of worker goroutines.
// Cells are claimed off a shared atomic counter, so scheduling is
// dynamic; do is called with the claiming worker's index so callers can
// keep worker-confined state (engines, scratch buffers) in a slice
// indexed by worker. The first cell error stops the pool and is
// returned together with its cell index. Cancelling ctx stops the pool
// at the next cell boundary (in-flight cells finish first) and returns
// ctx's error with cell index -1.
func runPool(ctx context.Context, workers, cells int, do func(worker, cell int) error) (int, error) {
	var (
		next    atomic.Int64 // next cell to claim
		failed  atomic.Bool
		errOnce sync.Once
		firstE  cellError
		wg      sync.WaitGroup
	)
	fail := func(cell int, err error) {
		errOnce.Do(func() { firstE = cellError{cell, err} })
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					fail(-1, err)
					return
				}
				cell := int(next.Add(1)) - 1
				if cell >= cells {
					return
				}
				if err := do(worker, cell); err != nil {
					fail(cell, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() {
		return firstE.cell, firstE.err
	}
	return 0, nil
}

// Run executes opt.Reps independent replications of net across a
// worker pool and merges the results. The merged statistics and every
// metric summary are bit-for-bit independent of the worker count.
//
// ctx cancels the experiment: the pool stops claiming replications,
// in-flight runs stop at their next scheduler batch (the context is
// threaded into sim.Engine.Run), and ctx's error is returned. Pass
// context.Background() when cancellation is not needed.
func Run(ctx context.Context, net *petri.Net, opt Options) (*Result, error) {
	if opt.Reps < 1 {
		return nil, fmt.Errorf("experiment: Reps must be at least 1, got %d", opt.Reps)
	}
	workers := opt.workers()
	h := trace.HeaderOf(net)
	start := time.Now()

	perRep := make([]*stats.Stats, opt.Reps)
	runs := make([]sim.Result, opt.Reps)
	vals := make([][]float64, len(opt.Metrics))
	for m := range vals {
		vals[m] = make([]float64, opt.Reps)
	}

	engs := make([]*sim.Engine, workers)
	if rep, err := runPool(ctx, workers, opt.Reps, func(worker, rep int) error {
		if engs[worker] == nil {
			engs[worker] = sim.NewEngine(net)
		}
		so := opt.Sim
		so.Seed = opt.BaseSeed + int64(rep)
		acc := stats.New(h)
		var obs trace.Observer = acc
		if opt.Observe != nil {
			if extra := opt.Observe(rep); extra != nil {
				obs = trace.Tee{acc, extra}
			}
		}
		res, err := engs[worker].Run(ctx, obs, so)
		if err != nil {
			return err
		}
		for m := range opt.Metrics {
			v, err := opt.Metrics[m].Eval(acc)
			if err != nil {
				return err
			}
			vals[m][rep] = v
		}
		perRep[rep] = acc
		runs[rep] = res
		return nil
	}); err != nil {
		if rep < 0 {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		return nil, fmt.Errorf("experiment: replication %d: %w", rep, err)
	}

	// Fold in replication order: floating-point sums then associate the
	// same way no matter how the replications were scheduled.
	pooled := perRep[0]
	for i := 1; i < opt.Reps; i++ {
		if err := pooled.Merge(perRep[i]); err != nil {
			return nil, fmt.Errorf("experiment: merging replication %d: %w", i, err)
		}
	}

	r := &Result{
		Reps:      opt.Reps,
		Workers:   workers,
		Pooled:    pooled,
		Summaries: make([]stats.Summary, len(opt.Metrics)),
		Values:    vals,
		Runs:      runs,
		Elapsed:   time.Since(start),
		names:     make([]string, len(opt.Metrics)),
	}
	for m := range opt.Metrics {
		r.Summaries[m] = stats.Summarize(vals[m])
		r.names[m] = opt.Metrics[m].Name
	}
	for i := range runs {
		r.Events += runs[i].Ends
	}
	return r, nil
}
