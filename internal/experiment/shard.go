// The shard runner is the distributed face of the sweep driver: a
// sweep's (point, replication) cells form one flat grid, any contiguous
// span of which can run in any OS process and be reassembled exactly.
//
// The contract mirrors the in-process pool cell for cell:
//
//   - Cell c = point*Reps + rep always runs with seed BaseSeed + c, in
//     any process, on any worker goroutine.
//   - A shard builds only the points its span touches, serially and in
//     point order, before its pool starts.
//   - AssembleSweep merges complete cell sets in cell order, so a grid
//     split across 1, 2 or 40 processes produces bit-for-bit the result
//     of the single-process Sweep. Package dist builds the shard plan,
//     worker processes and resume journal on top of this contract.
package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CellSpan is a contiguous range [Lo, Hi) of flat grid cells — the unit
// a shard plan partitions and an adaptive round re-dispatches. Package
// dist aliases it as dist.Span.
type CellSpan struct {
	Lo, Hi int
}

// Size returns the number of cells in the span.
func (s CellSpan) Size() int { return s.Hi - s.Lo }

func (s CellSpan) String() string { return fmt.Sprintf("%d:%d", s.Lo, s.Hi) }

// MissingCellSpans collects the maximal contiguous spans of cells for
// which have reports false — the re-dispatch set of a resumed run and
// the pending set of an adaptive round.
func MissingCellSpans(cells int, have func(cell int) bool) []CellSpan {
	var spans []CellSpan
	for c := 0; c < cells; {
		if have(c) {
			c++
			continue
		}
		lo := c
		for c < cells && !have(c) {
			c++
		}
		spans = append(spans, CellSpan{Lo: lo, Hi: c})
	}
	return spans
}

// CellRecord is the complete outcome of one grid cell: everything a
// coordinator needs to reassemble the exact in-process SweepResult.
type CellRecord struct {
	// Cell is the absolute grid index Point*RepStride + Rep.
	Cell  int
	Point int
	Rep   int
	// Seed echoes the cell's effective seed, BaseSeed + Cell.
	Seed int64
	// Values holds the cell's metric values in SweepOptions.Metrics
	// order.
	Values []float64
	// Stats is the cell's full statistics accumulator.
	Stats *stats.Stats
	// Run is the cell's simulation summary.
	Run sim.Result
}

// RunCellsContext executes cells [lo, hi) of opt's grid through a
// worker pool and returns their records in cell order. If emit is
// non-nil it is additionally called once per record, serialized and in
// cell order, as soon as every earlier cell of the span has finished —
// a worker process streams records out while later cells still run. An
// emit error stops the pool.
//
// Cancelling ctx stops the pool at the next cell boundary and returns
// ctx's error.
func RunCellsContext(ctx context.Context, opt SweepOptions, lo, hi int, emit func(CellRecord) error) ([]CellRecord, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	cells := opt.NumCells()
	if lo < 0 || hi > cells || lo >= hi {
		return nil, fmt.Errorf("experiment: cell span %d:%d outside grid of %d cells", lo, hi, cells)
	}
	return RunCellSpansContext(ctx, opt, []CellSpan{{Lo: lo, Hi: hi}}, emit)
}

// RunCellSpansContext executes several disjoint, ascending spans of
// opt's grid through one worker pool and returns their records in cell
// order — the workhorse of an adaptive round, whose pending set is one
// short span per unconverged point. Cells keep their absolute identity:
// seed, point and rep depend only on the cell index, never on which
// spans ran together. emit (optional) is called serialized and in cell
// order, exactly as for RunCellsContext.
func RunCellSpansContext(ctx context.Context, opt SweepOptions, spans []CellSpan, emit func(CellRecord) error) ([]CellRecord, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	cells := opt.NumCells()
	total := 0
	for i, s := range spans {
		if s.Lo < 0 || s.Hi > cells || s.Lo >= s.Hi {
			return nil, fmt.Errorf("experiment: cell span %s outside grid of %d cells", s, cells)
		}
		if i > 0 && s.Lo < spans[i-1].Hi {
			return nil, fmt.Errorf("experiment: cell spans %s and %s are not ascending and disjoint", spans[i-1], s)
		}
		total += s.Size()
	}
	if total == 0 {
		return nil, nil
	}

	// Flatten the spans: pool index idx <-> absolute cell cellOf[idx],
	// ascending, so the pool claims cells in point-major order and
	// engine reuse works exactly as for one contiguous span.
	stride := opt.RepStride()
	cellOf := make([]int, 0, total)
	for _, s := range spans {
		for c := s.Lo; c < s.Hi; c++ {
			cellOf = append(cellOf, c)
		}
	}

	// Build only the points the spans touch, serially and in point
	// order: parameter mutation in Build hooks stays single-threaded and
	// workers only ever read.
	slot := make(map[int]int) // point -> index into nets/headers/pts
	var (
		nets    []*petri.Net
		headers []trace.Header
		pts     []Point
	)
	for _, c := range cellOf {
		p := c / stride
		if _, ok := slot[p]; ok {
			continue
		}
		pt := opt.point(p)
		net, err := opt.Build(pt)
		if err != nil {
			return nil, fmt.Errorf("experiment: building point %d (%s): %w", p, pt.String(), err)
		}
		slot[p] = len(nets)
		nets = append(nets, net)
		headers = append(headers, trace.HeaderOf(net))
		pts = append(pts, pt)
	}

	workers := opt.workers(total)
	recs := make([]CellRecord, total)

	// Worker-confined backend state: each pool worker lazily mints its
	// own BackendWorker (for the sim backend that keeps the old
	// engine-reuse-per-point behaviour; exhaustive backends keep their
	// resolved metric evaluators).
	backend := opt.backend()
	ws := make([]BackendWorker, workers)

	// In-order streaming: when cell k lands, flush every consecutive
	// finished record from the emit cursor. The OnCell progress hook
	// rides the same cursor, so it too observes cells in grid order.
	var (
		emitMu   sync.Mutex
		emitNext int
		done     []bool
	)
	if emit != nil || opt.OnCell != nil {
		done = make([]bool, total)
	}

	if idx, err := runPool(ctx, workers, total, func(worker, idx int) error {
		cell := cellOf[idx]
		p, rep := cell/stride, cell%stride
		if ws[worker] == nil {
			w, err := backend.NewWorker(&opt)
			if err != nil {
				return err
			}
			ws[worker] = w
		}
		out, err := ws[worker].RunCell(ctx, CellInput{
			Point:  p,
			Net:    nets[slot[p]],
			Header: headers[slot[p]],
			Seed:   opt.BaseSeed + int64(cell),
		})
		if err != nil {
			return err
		}
		recs[idx] = CellRecord{
			Cell: cell, Point: p, Rep: rep,
			Seed:   opt.BaseSeed + int64(cell),
			Values: out.Values,
			Stats:  out.Stats,
			Run:    out.Run,
		}
		if emit == nil && opt.OnCell == nil {
			return nil
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		done[idx] = true
		for emitNext < total && done[emitNext] {
			r := &recs[emitNext]
			if emit != nil {
				if err := emit(*r); err != nil {
					return fmt.Errorf("emitting cell %d: %w", cellOf[emitNext], err)
				}
			}
			if opt.OnCell != nil {
				opt.OnCell(pts[slot[r.Point]], r.Rep)
			}
			emitNext++
		}
		return nil
	}); err != nil {
		if idx < 0 {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		cell := cellOf[idx]
		p, rep := cell/stride, cell%stride
		return nil, fmt.Errorf("experiment: point %d (%s) replication %d: %w", p, pts[slot[p]].String(), rep, err)
	}
	return recs, nil
}

// AssembleSweep reassembles a complete set of cell records — in any
// order, from any number of shards or processes — into the exact
// SweepResult the in-process Sweep produces: per-point statistics merge
// in replication order and metric values summarize in replication
// order, so the floating-point arithmetic associates identically.
//
// A fixed sweep requires every cell of the grid. An adaptive sweep
// tolerates variable per-point replication counts: each point must hold
// a gap-free replication prefix of at least Adaptive.MinReps records,
// and the point is assembled from exactly that prefix.
//
// The input records are not modified: each point's pool starts from a
// clone of its first accumulator, so a coordinator may re-journal or
// re-assemble the same records afterwards. Workers and Elapsed are left
// for the caller: they describe the run, not the result.
func AssembleSweep(opt SweepOptions, recs []CellRecord) (*SweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	points, stride, cells := opt.NumPoints(), opt.RepStride(), opt.NumCells()
	byCell := make([]*CellRecord, cells)
	for i := range recs {
		rec := &recs[i]
		if rec.Cell < 0 || rec.Cell >= cells {
			return nil, fmt.Errorf("experiment: cell record %d outside grid of %d cells", rec.Cell, cells)
		}
		if byCell[rec.Cell] != nil {
			return nil, fmt.Errorf("experiment: duplicate record for cell %d", rec.Cell)
		}
		if len(rec.Values) != len(opt.Metrics) {
			return nil, fmt.Errorf("experiment: cell %d has %d metric values, sweep has %d metrics",
				rec.Cell, len(rec.Values), len(opt.Metrics))
		}
		if rec.Stats == nil {
			return nil, fmt.Errorf("experiment: cell %d has no statistics", rec.Cell)
		}
		byCell[rec.Cell] = rec
	}

	// Per-point replication counts: the fixed Reps, or — adaptively —
	// each point's gap-free record prefix.
	nreps := make([]int, points)
	for p := 0; p < points; p++ {
		if opt.Adaptive == nil {
			nreps[p] = opt.Reps
		} else {
			n := 0
			for n < stride && byCell[p*stride+n] != nil {
				n++
			}
			if n < opt.Adaptive.MinReps {
				return nil, fmt.Errorf("experiment: incomplete grid: point %d has %d replications, adaptive minimum is %d",
					p, n, opt.Adaptive.MinReps)
			}
			nreps[p] = n
		}
		for rep := 0; rep < nreps[p]; rep++ {
			if byCell[p*stride+rep] == nil {
				return nil, fmt.Errorf("experiment: incomplete grid: missing cell %d (point %d replication %d)",
					p*stride+rep, p, rep)
			}
		}
		for rep := nreps[p]; rep < stride; rep++ {
			if byCell[p*stride+rep] != nil {
				return nil, fmt.Errorf("experiment: point %d has replication %d but not %d: replication prefix has a gap",
					p, rep, nreps[p])
			}
		}
	}

	r := &SweepResult{
		Axes:     opt.Axes,
		Points:   make([]PointResult, points),
		Reps:     stride, // fixed Reps, or the adaptive per-point cap
		Adaptive: opt.Adaptive,
		names:    make([]string, len(opt.Metrics)),
	}
	for m := range opt.Metrics {
		r.names[m] = opt.Metrics[m].Name
	}
	for p := 0; p < points; p++ {
		n := nreps[p]
		// Fold each point in replication order: floating-point sums then
		// associate the same way no matter how cells were scheduled. The
		// fold starts from a clone so the caller's records stay intact.
		pooled := byCell[p*stride].Stats.Clone()
		for rep := 1; rep < n; rep++ {
			if err := pooled.Merge(byCell[p*stride+rep].Stats); err != nil {
				return nil, fmt.Errorf("experiment: merging point %d replication %d: %w", p, rep, err)
			}
		}
		pr := PointResult{
			Point:     opt.point(p),
			Reps:      n,
			Pooled:    pooled,
			Summaries: make([]stats.Summary, len(opt.Metrics)),
			Values:    make([][]float64, len(opt.Metrics)),
			Runs:      make([]sim.Result, n),
		}
		for m := range opt.Metrics {
			pr.Values[m] = make([]float64, n)
		}
		for rep := 0; rep < n; rep++ {
			rec := byCell[p*stride+rep]
			pr.Runs[rep] = rec.Run
			for m := range rec.Values {
				pr.Values[m][rep] = rec.Values[m]
			}
			r.Events += rec.Run.Ends
		}
		for m := range opt.Metrics {
			pr.Summaries[m] = stats.Summarize(pr.Values[m])
		}
		r.TotalReps += n
		r.Points[p] = pr
	}
	return r, nil
}
