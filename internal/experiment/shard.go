// The shard runner is the distributed face of the sweep driver: a
// sweep's (point, replication) cells form one flat grid, any contiguous
// span of which can run in any OS process and be reassembled exactly.
//
// The contract mirrors the in-process pool cell for cell:
//
//   - Cell c = point*Reps + rep always runs with seed BaseSeed + c, in
//     any process, on any worker goroutine.
//   - A shard builds only the points its span touches, serially and in
//     point order, before its pool starts.
//   - AssembleSweep merges complete cell sets in cell order, so a grid
//     split across 1, 2 or 40 processes produces bit-for-bit the result
//     of the single-process Sweep. Package dist builds the shard plan,
//     worker processes and resume journal on top of this contract.
package experiment

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CellRecord is the complete outcome of one grid cell: everything a
// coordinator needs to reassemble the exact in-process SweepResult.
type CellRecord struct {
	// Cell is the absolute grid index Point*Reps + Rep.
	Cell  int
	Point int
	Rep   int
	// Seed echoes the cell's effective seed, BaseSeed + Cell.
	Seed int64
	// Values holds the cell's metric values in SweepOptions.Metrics
	// order.
	Values []float64
	// Stats is the cell's full statistics accumulator.
	Stats *stats.Stats
	// Run is the cell's simulation summary.
	Run sim.Result
}

// RunCellsContext executes cells [lo, hi) of opt's grid through a
// worker pool and returns their records in cell order. If emit is
// non-nil it is additionally called once per record, serialized and in
// cell order, as soon as every earlier cell of the span has finished —
// a worker process streams records out while later cells still run. An
// emit error stops the pool.
//
// Cancelling ctx stops the pool at the next cell boundary and returns
// ctx's error.
func RunCellsContext(ctx context.Context, opt SweepOptions, lo, hi int, emit func(CellRecord) error) ([]CellRecord, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	cells := opt.NumCells()
	if lo < 0 || hi > cells || lo >= hi {
		return nil, fmt.Errorf("experiment: cell span %d:%d outside grid of %d cells", lo, hi, cells)
	}

	// Build only the points the span touches, serially and in point
	// order: parameter mutation in Build hooks stays single-threaded and
	// workers only ever read.
	p0, p1 := lo/opt.Reps, (hi-1)/opt.Reps
	nets := make([]*petri.Net, p1-p0+1)
	headers := make([]trace.Header, p1-p0+1)
	pts := make([]Point, p1-p0+1)
	for p := p0; p <= p1; p++ {
		pts[p-p0] = opt.point(p)
		net, err := opt.Build(pts[p-p0])
		if err != nil {
			return nil, fmt.Errorf("experiment: building point %d (%s): %w", p, pts[p-p0].String(), err)
		}
		nets[p-p0] = net
		headers[p-p0] = trace.HeaderOf(net)
	}

	span := hi - lo
	workers := opt.workers(span)
	recs := make([]CellRecord, span)

	// Worker-confined engine state: engines are rebuilt only on point
	// boundaries, so consecutive cells of one point reuse the engine.
	type workerState struct {
		point int
		eng   *sim.Engine
	}
	ws := make([]workerState, workers)
	for i := range ws {
		ws[i].point = -1
	}

	// In-order streaming: when cell k lands, flush every consecutive
	// finished record from the emit cursor.
	var (
		emitMu   sync.Mutex
		emitNext int
		done     []bool
	)
	if emit != nil {
		done = make([]bool, span)
	}

	if idx, err := runPool(ctx, workers, span, func(worker, idx int) error {
		cell := lo + idx
		p, rep := cell/opt.Reps, cell%opt.Reps
		w := &ws[worker]
		if w.point != p {
			w.eng = sim.NewEngine(nets[p-p0])
			w.point = p
		}
		so := opt.Sim
		so.Seed = opt.BaseSeed + int64(cell)
		acc := stats.New(headers[p-p0])
		res, err := w.eng.Run(acc, so)
		if err != nil {
			return err
		}
		rec := CellRecord{
			Cell: cell, Point: p, Rep: rep,
			Seed:   so.Seed,
			Values: make([]float64, len(opt.Metrics)),
			Stats:  acc,
			Run:    res,
		}
		for m := range opt.Metrics {
			v, err := opt.Metrics[m].Eval(acc)
			if err != nil {
				return err
			}
			rec.Values[m] = v
		}
		recs[idx] = rec
		if emit == nil {
			return nil
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		done[idx] = true
		for emitNext < span && done[emitNext] {
			if err := emit(recs[emitNext]); err != nil {
				return fmt.Errorf("emitting cell %d: %w", lo+emitNext, err)
			}
			emitNext++
		}
		return nil
	}); err != nil {
		if idx < 0 {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		cell := lo + idx
		p, rep := cell/opt.Reps, cell%opt.Reps
		return nil, fmt.Errorf("experiment: point %d (%s) replication %d: %w", p, pts[p-p0].String(), rep, err)
	}
	return recs, nil
}

// AssembleSweep reassembles a complete set of cell records — in any
// order, from any number of shards or processes — into the exact
// SweepResult the in-process Sweep produces: per-point statistics merge
// in replication order and metric values summarize in replication
// order, so the floating-point arithmetic associates identically.
//
// Records' Stats are merged in place (the first record of each point
// becomes the pool), exactly as the in-process driver treats its
// per-cell accumulators. Workers and Elapsed are left for the caller:
// they describe the run, not the result.
func AssembleSweep(opt SweepOptions, recs []CellRecord) (*SweepResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	points, cells := opt.NumPoints(), opt.NumCells()
	byCell := make([]*CellRecord, cells)
	for i := range recs {
		rec := &recs[i]
		if rec.Cell < 0 || rec.Cell >= cells {
			return nil, fmt.Errorf("experiment: cell record %d outside grid of %d cells", rec.Cell, cells)
		}
		if byCell[rec.Cell] != nil {
			return nil, fmt.Errorf("experiment: duplicate record for cell %d", rec.Cell)
		}
		if len(rec.Values) != len(opt.Metrics) {
			return nil, fmt.Errorf("experiment: cell %d has %d metric values, sweep has %d metrics",
				rec.Cell, len(rec.Values), len(opt.Metrics))
		}
		if rec.Stats == nil {
			return nil, fmt.Errorf("experiment: cell %d has no statistics", rec.Cell)
		}
		byCell[rec.Cell] = rec
	}
	for c, rec := range byCell {
		if rec == nil {
			return nil, fmt.Errorf("experiment: incomplete grid: missing cell %d of %d", c, cells)
		}
	}

	r := &SweepResult{
		Axes:   opt.Axes,
		Points: make([]PointResult, points),
		Reps:   opt.Reps,
		names:  make([]string, len(opt.Metrics)),
	}
	for m := range opt.Metrics {
		r.names[m] = opt.Metrics[m].Name
	}
	for p := 0; p < points; p++ {
		// Fold each point in replication order: floating-point sums then
		// associate the same way no matter how cells were scheduled.
		pooled := byCell[p*opt.Reps].Stats
		for rep := 1; rep < opt.Reps; rep++ {
			if err := pooled.Merge(byCell[p*opt.Reps+rep].Stats); err != nil {
				return nil, fmt.Errorf("experiment: merging point %d replication %d: %w", p, rep, err)
			}
		}
		pr := PointResult{
			Point:     opt.point(p),
			Pooled:    pooled,
			Summaries: make([]stats.Summary, len(opt.Metrics)),
			Values:    make([][]float64, len(opt.Metrics)),
			Runs:      make([]sim.Result, opt.Reps),
		}
		for m := range opt.Metrics {
			pr.Values[m] = make([]float64, opt.Reps)
		}
		for rep := 0; rep < opt.Reps; rep++ {
			rec := byCell[p*opt.Reps+rep]
			pr.Runs[rep] = rec.Run
			for m := range rec.Values {
				pr.Values[m][rep] = rec.Values[m]
			}
			r.Events += rec.Run.Ends
		}
		for m := range opt.Metrics {
			pr.Summaries[m] = stats.Summarize(pr.Values[m])
		}
		r.Points[p] = pr
	}
	return r, nil
}
