package experiment

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
)

// cacheBuild is the standard sweep hook used across these tests: axis
// names resolve to pipeline/cache parameters on cloned param structs.
func cacheBuild(pt Point) (*petri.Net, error) {
	return pipeline.SweepProcessor(true, pt.Names, pt.Values)
}

func gridOptions(reps, workers int) SweepOptions {
	return SweepOptions{
		Axes: []Axis{
			{Name: "DHitRatio", Values: []float64{0.5, 0.9}},
			{Name: "MemoryCycles", Values: []float64{1, 5}},
		},
		Reps:     reps,
		Workers:  workers,
		BaseSeed: 1988,
		Sim:      sim.Options{Horizon: 1_500},
		Metrics:  []Metric{Throughput("Issue"), Utilization("Bus_busy")},
		Build:    cacheBuild,
	}
}

// encode renders every deterministic artifact of a sweep — the CSV
// (full-precision floats) and each point's pooled Figure-5 report — so
// byte-comparison covers both the summaries and the merged statistics.
func encode(t *testing.T, r *SweepResult) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		if err := pt.Pooled.Report(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestSweepDeterministicAcrossWorkerCounts extends the PR-1 guarantee
// from replications to whole grids: a sweep's merged results are
// byte-identical for workers = 1, 2 and GOMAXPROCS.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, reps := range []int{1, 3} {
		var want string
		for i, w := range workerCounts {
			r, err := Sweep(context.Background(), gridOptions(reps, w))
			if err != nil {
				t.Fatalf("reps=%d workers=%d: %v", reps, w, err)
			}
			if r.Reps != reps {
				t.Fatalf("reps=%d: result echoes Reps=%d", reps, r.Reps)
			}
			got := encode(t, r)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("reps=%d: workers=%d changed the results vs workers=%d", reps, w, workerCounts[0])
			}
		}
	}
}

// TestSweepSinglePointMatchesRun pins the seed-sharding contract: a
// sweep of zero axes is one point whose cell seeds are BaseSeed+rep,
// exactly the replication driver's schedule, so the pooled statistics
// must be byte-identical to Run's.
func TestSweepSinglePointMatchesRun(t *testing.T) {
	net := testNet(t)
	simOpt := sim.Options{Horizon: 2_000}
	metrics := []Metric{Throughput("Issue")}

	sw, err := Sweep(context.Background(), SweepOptions{
		Reps:     5,
		BaseSeed: 400,
		Sim:      simOpt,
		Metrics:  metrics,
		Build:    func(Point) (*petri.Net, error) { return net, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 1 {
		t.Fatalf("zero-axis sweep has %d points", len(sw.Points))
	}
	run, err := Run(context.Background(), net, Options{Reps: 5, BaseSeed: 400, Sim: simOpt, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}

	var a, b strings.Builder
	if err := sw.Points[0].Pooled.Report(&a); err != nil {
		t.Fatal(err)
	}
	if err := run.Pooled.Report(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("zero-axis sweep and Run produce different pooled statistics")
	}
	if sw.Points[0].Summaries[0] != run.Summaries[0] {
		t.Errorf("summaries differ: sweep %+v vs run %+v", sw.Points[0].Summaries[0], run.Summaries[0])
	}
}

// TestSweepReplicationEdgeCases covers the replication-count edges: 0
// is a clean error, 1 runs and summarizes with N=1 (no CI).
func TestSweepReplicationEdgeCases(t *testing.T) {
	opt := gridOptions(0, 1)
	if _, err := Sweep(context.Background(), opt); err == nil || !strings.Contains(err.Error(), "Reps") {
		t.Errorf("Reps=0 error = %v, want a Reps complaint", err)
	}

	opt.Reps = 1
	r, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points {
		for _, s := range pt.Summaries {
			if s.N != 1 {
				t.Errorf("point %s: summary N = %d, want 1", pt.Point.String(), s.N)
			}
			if s.CI95 != 0 || s.StdDev != 0 {
				t.Errorf("point %s: single replication has CI %g sd %g", pt.Point.String(), s.CI95, s.StdDev)
			}
			if s.Mean != s.Min || s.Mean != s.Max {
				t.Errorf("point %s: single-rep mean/min/max disagree: %+v", pt.Point.String(), s)
			}
		}
	}
}

// TestSweepValidation covers the remaining option errors.
func TestSweepValidation(t *testing.T) {
	base := gridOptions(2, 1)

	noBuild := base
	noBuild.Build = nil
	if _, err := Sweep(context.Background(), noBuild); err == nil || !strings.Contains(err.Error(), "Build") {
		t.Errorf("nil Build error = %v", err)
	}

	emptyAxis := base
	emptyAxis.Axes = []Axis{{Name: "DHitRatio"}}
	if _, err := Sweep(context.Background(), emptyAxis); err == nil || !strings.Contains(err.Error(), "no values") {
		t.Errorf("empty axis error = %v", err)
	}

	dupAxis := base
	dupAxis.Axes = []Axis{
		{Name: "DHitRatio", Values: []float64{0.5}},
		{Name: "DHitRatio", Values: []float64{0.9}},
	}
	if _, err := Sweep(context.Background(), dupAxis); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate axis error = %v", err)
	}

	unnamed := base
	unnamed.Axes = []Axis{{Values: []float64{1}}}
	if _, err := Sweep(context.Background(), unnamed); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("unnamed axis error = %v", err)
	}

	badParam := base
	badParam.Axes = []Axis{{Name: "NoSuchParam", Values: []float64{1}}}
	if _, err := Sweep(context.Background(), badParam); err == nil || !strings.Contains(err.Error(), "NoSuchParam") {
		t.Errorf("unknown parameter error = %v", err)
	}
}

// TestSweepGridExpansion pins the row-major point order (last axis
// fastest) that both the seed schedule and the output tables rely on.
func TestSweepGridExpansion(t *testing.T) {
	opt := SweepOptions{
		Axes: []Axis{
			{Name: "a", Values: []float64{1, 2}},
			{Name: "b", Values: []float64{10, 20, 30}},
		},
		Reps: 1,
	}
	want := [][2]float64{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	if got := opt.NumPoints(); got != len(want) {
		t.Fatalf("numPoints = %d, want %d", got, len(want))
	}
	for i, w := range want {
		pt := opt.point(i)
		if pt.Index != i || pt.Values[0] != w[0] || pt.Values[1] != w[1] {
			t.Errorf("point %d = %+v, want values %v", i, pt, w)
		}
		if v, ok := pt.Value("b"); !ok || v != w[1] {
			t.Errorf("point %d Value(b) = %g, %v", i, v, ok)
		}
	}
}

// TestParseAxis covers the CLI axis syntax.
func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("MemoryCycles=1, 5,12")
	if err != nil {
		t.Fatal(err)
	}
	if ax.Name != "MemoryCycles" || len(ax.Values) != 3 || ax.Values[2] != 12 {
		t.Errorf("parsed axis %+v", ax)
	}
	for _, bad := range []string{"", "NoValues", "=1,2", "X=1,huh"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

// TestSweepBuildErrorNamesThePoint checks error context: a Build
// failure reports which grid point could not be constructed.
func TestSweepBuildErrorNamesThePoint(t *testing.T) {
	opt := gridOptions(2, 1)
	opt.Axes = []Axis{{Name: "DHitRatio", Values: []float64{0.5, 7}}} // 7 is out of range
	_, err := Sweep(context.Background(), opt)
	if err == nil || !strings.Contains(err.Error(), "DHitRatio=7") {
		t.Errorf("build error does not name the point: %v", err)
	}
}
