// ReachBackend drives exhaustive state-space analysis through the
// sweep grid: every grid point's net is explored to its full untimed
// reachability graph and the sweep metrics read structural facts off
// it — graph size, deadlock count, boundedness, CTL verdicts. The
// paper runs these analyses one net at a time; as a sweep backend they
// run over whole parameter grids, sharing the pool, the cell-record
// stream, the dist journal and the server cache with simulation.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/reach"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ReachBackend is the exhaustive reachability engine. The zero value
// uses the reach package defaults (100k states, bound cap 4096,
// in-memory store, GOMAXPROCS exploration).
type ReachBackend struct {
	// Opt carries the full state-space controls. MaxStates, BoundCap
	// and the store selection pin the grid and enter the cell-stream
	// meta; Shards/SpillBudget/SpillDir only shape execution (graphs
	// are bit-identical for any value).
	Opt reach.Options
}

// Engine implements Backend.
func (ReachBackend) Engine() string { return "reach" }

// Deterministic implements Backend.
func (ReachBackend) Deterministic() bool { return true }

// StatePins reports the state-space controls that pin the grid meta.
func (b ReachBackend) StatePins() (maxStates, boundCap int) { return b.Opt.MaxStates, b.Opt.BoundCap }

// StorePin reports the marking-store selection for the grid meta ("" =
// the default in-memory store).
func (b ReachBackend) StorePin() string {
	if n := b.Opt.StoreName(); n != reach.StoreMem {
		return n
	}
	return ""
}

// NewWorker implements Backend, resolving every metric name eagerly —
// a misspelled metric or malformed CTL formula fails validation, not a
// worker mid-sweep.
func (b ReachBackend) NewWorker(opt *SweepOptions) (BackendWorker, error) {
	if err := b.Opt.CheckStore(); err != nil {
		return nil, err
	}
	evals := make([]func(*reach.Graph) (float64, error), len(opt.Metrics))
	for i := range opt.Metrics {
		eval, err := reachEval(opt.Metrics[i].Name)
		if err != nil {
			return nil, err
		}
		evals[i] = eval
	}
	return &reachWorker{b: b, evals: evals}, nil
}

// reachEval resolves one reach metric name. Supported names: states,
// deadlocks, deadtrans, truncated, bound(place), ctl(formula).
func reachEval(name string) (func(*reach.Graph) (float64, error), error) {
	switch name {
	case "states":
		return func(g *reach.Graph) (float64, error) { return float64(len(g.Nodes)), nil }, nil
	case "deadlocks":
		return func(g *reach.Graph) (float64, error) { return float64(len(g.Deadlocks())), nil }, nil
	case "deadtrans":
		return func(g *reach.Graph) (float64, error) { return float64(len(g.DeadTransitions())), nil }, nil
	case "truncated":
		return func(g *reach.Graph) (float64, error) { return bool01(g.Truncated), nil }, nil
	}
	fn, arg, ok := parseCall(name)
	if ok {
		switch fn {
		case "bound":
			place := arg
			return func(g *reach.Graph) (float64, error) {
				b, err := g.Bound(place)
				return float64(b), err
			}, nil
		case "ctl":
			f, err := reach.ParseFormula(arg)
			if err != nil {
				return nil, fmt.Errorf("experiment: reach metric %q: %w", name, err)
			}
			return func(g *reach.Graph) (float64, error) { return bool01(reach.Holds(g, f)), nil }, nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown reach metric %q (want states, deadlocks, deadtrans, truncated, bound(place) or ctl(formula))", name)
}

func bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

type reachWorker struct {
	b     ReachBackend
	evals []func(*reach.Graph) (float64, error)
}

// RunCell implements BackendWorker. ctx threads into reach.Build, so
// cancelling a sweep interrupts a cell mid-exploration at the next
// level barrier.
func (w *reachWorker) RunCell(ctx context.Context, in CellInput) (CellOutcome, error) {
	if err := ctx.Err(); err != nil {
		return CellOutcome{}, err
	}
	g, err := reach.Build(ctx, in.Net, w.b.Opt)
	if err != nil {
		return CellOutcome{}, err
	}
	defer g.Close()
	out := CellOutcome{
		Values: make([]float64, len(w.evals)),
		// Deterministic cells carry an empty accumulator: records then
		// encode, journal, merge and assemble exactly like simulation
		// cells, with every statistic zero.
		Stats: stats.New(in.Header),
		Run:   sim.Result{},
	}
	for i, eval := range w.evals {
		v, err := eval(g)
		if err != nil {
			return CellOutcome{}, err
		}
		out.Values[i] = v
	}
	return out, nil
}
