package experiment

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// adaptiveGridOptions is the mixed-variance reference grid for the
// adaptive tests: at horizon 2000 with a 5% relative-CI target, the
// cache points converge at visibly different replication counts (some
// near MinReps, some far above), which is exactly the situation the
// sequential-stopping rule exists for.
func adaptiveGridOptions(workers int) SweepOptions {
	return SweepOptions{
		Axes: []Axis{{Name: "DHitRatio", Values: []float64{0, 0.5, 0.9, 1}}},
		Adaptive: &AdaptiveOptions{
			Metric:  "throughput(Issue)",
			RelCI:   0.05,
			MinReps: 3,
			MaxReps: 32,
			Batch:   2,
		},
		Workers:  workers,
		BaseSeed: 7,
		Sim:      sim.Options{Horizon: 2_000},
		Metrics:  []Metric{Throughput("Issue"), Utilization("Bus_busy")},
		Build:    cacheBuild,
	}
}

// TestAdaptiveStoppingCriterion is the stopping-rule property: every
// point either satisfies CI95 <= RelCI * |mean| of the target metric
// over its replications, or ran to MaxReps; counts stay within
// [MinReps, MaxReps]; and the bookkeeping (PointResult.Reps, Values
// lengths, TotalReps) is consistent.
func TestAdaptiveStoppingCriterion(t *testing.T) {
	opt := adaptiveGridOptions(0)
	a := opt.Adaptive
	r, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pt := range r.Points {
		n := pt.Reps
		if n < a.MinReps || n > a.MaxReps {
			t.Errorf("point %s: %d reps outside [%d, %d]", pt.Point.String(), n, a.MinReps, a.MaxReps)
		}
		for m := range pt.Values {
			if len(pt.Values[m]) != n || pt.Summaries[m].N != n {
				t.Errorf("point %s: metric %d has %d values / N=%d, want %d",
					pt.Point.String(), m, len(pt.Values[m]), pt.Summaries[m].N, n)
			}
		}
		if len(pt.Runs) != n {
			t.Errorf("point %s: %d run summaries, want %d", pt.Point.String(), len(pt.Runs), n)
		}
		s := stats.Summarize(pt.Values[0]) // metric 0 is the stopping metric
		if n < a.MaxReps && s.CI95 > a.RelCI*math.Abs(s.Mean) {
			t.Errorf("point %s: stopped at %d reps with CI95/|mean| = %g > %g",
				pt.Point.String(), n, s.CI95/math.Abs(s.Mean), a.RelCI)
		}
		total += n
	}
	if r.TotalReps != total {
		t.Errorf("TotalReps = %d, want %d", r.TotalReps, total)
	}
	if r.Adaptive == nil || *r.Adaptive != *a {
		t.Errorf("result does not echo the adaptive options: %+v", r.Adaptive)
	}
}

// TestAdaptiveSavesReplications: on the mixed-variance grid, adaptive
// stopping must use strictly fewer total replications than a fixed
// sweep at MaxReps — and the counts must actually differ across points
// (otherwise the grid does not exercise the mechanism).
func TestAdaptiveSavesReplications(t *testing.T) {
	opt := adaptiveGridOptions(0)
	r, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if fixed := len(r.Points) * opt.Adaptive.MaxReps; r.TotalReps >= fixed {
		t.Errorf("adaptive used %d replications, fixed MaxReps would use %d", r.TotalReps, fixed)
	}
	counts := make(map[int]bool)
	for _, pt := range r.Points {
		counts[pt.Reps] = true
	}
	if len(counts) < 2 {
		t.Errorf("all points stopped at the same count %v; grid is not mixed-variance", counts)
	}
}

// TestAdaptiveDeterministicAcrossWorkerCounts extends the sweep
// determinism guarantee to adaptive stopping: the round decisions are
// taken only from replication-order summaries, so workers 1, 2 and
// GOMAXPROCS produce byte-identical tables, CSVs and pooled reports.
func TestAdaptiveDeterministicAcrossWorkerCounts(t *testing.T) {
	var want string
	for i, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		r, err := Sweep(context.Background(), adaptiveGridOptions(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := encode(t, r)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d changed the adaptive results", w)
		}
	}
}

// TestAdaptiveMinEqualsMaxMatchesFixed: with MinReps == MaxReps the
// stopping rule never fires, the seed layout equals the fixed sweep's
// (stride == Reps), and per-point results must match a fixed sweep at
// that count exactly.
func TestAdaptiveMinEqualsMaxMatchesFixed(t *testing.T) {
	fixed := gridOptions(4, 0)
	adaptive := fixed
	adaptive.Reps = 0
	adaptive.Adaptive = &AdaptiveOptions{
		Metric: "throughput(Issue)", RelCI: 1e-12, MinReps: 4, MaxReps: 4, Batch: 1,
	}
	fr, err := Sweep(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Sweep(context.Background(), adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Points) != len(ar.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(fr.Points), len(ar.Points))
	}
	for p := range fr.Points {
		if ar.Points[p].Reps != 4 {
			t.Errorf("point %d: adaptive ran %d reps, want 4", p, ar.Points[p].Reps)
		}
		for m := range fr.Points[p].Summaries {
			if fr.Points[p].Summaries[m] != ar.Points[p].Summaries[m] {
				t.Errorf("point %d metric %d: summaries differ: %+v vs %+v",
					p, m, fr.Points[p].Summaries[m], ar.Points[p].Summaries[m])
			}
		}
		var fb, ab strings.Builder
		if err := fr.Points[p].Pooled.Report(&fb); err != nil {
			t.Fatal(err)
		}
		if err := ar.Points[p].Pooled.Report(&ab); err != nil {
			t.Fatal(err)
		}
		if fb.String() != ab.String() {
			t.Errorf("point %d: pooled reports differ", p)
		}
	}
}

// TestAdaptiveValidation covers the adaptive option errors.
func TestAdaptiveValidation(t *testing.T) {
	base := adaptiveGridOptions(1)
	cases := map[string]struct {
		mutate func(*AdaptiveOptions)
		want   string
	}{
		"min below 2":    {func(a *AdaptiveOptions) { a.MinReps = 1 }, "MinReps"},
		"max below min":  {func(a *AdaptiveOptions) { a.MaxReps = 2 }, "MaxReps"},
		"batch zero":     {func(a *AdaptiveOptions) { a.Batch = 0 }, "Batch"},
		"relci zero":     {func(a *AdaptiveOptions) { a.RelCI = 0 }, "RelCI"},
		"relci negative": {func(a *AdaptiveOptions) { a.RelCI = -0.1 }, "RelCI"},
		"unknown metric": {func(a *AdaptiveOptions) { a.Metric = "nope" }, "metric"},
		"empty metric":   {func(a *AdaptiveOptions) { a.Metric = "" }, "metric"},
	}
	for name, c := range cases {
		opt := base
		a := *base.Adaptive
		c.mutate(&a)
		opt.Adaptive = &a
		if _, err := Sweep(context.Background(), opt); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", name, err, c.want)
		}
	}
	// An adaptive sweep ignores Reps entirely — even an invalid one.
	ok := base
	ok.Reps = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("adaptive sweep with Reps=0 rejected: %v", err)
	}
}

// TestRunCellSpansMatchesWholeGrid: cells run via scattered spans are
// byte-identical to the same cells from a whole-grid run — cell
// identity (seed, point, rep) depends only on the index, never on
// which spans ran together or with how many workers.
func TestRunCellSpansMatchesWholeGrid(t *testing.T) {
	opt := gridOptions(3, 0) // 4 points x 3 reps = 12 cells
	whole, err := RunCellsContext(context.Background(), opt, 0, opt.NumCells(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wholeEnc := make(map[int]string, len(whole))
	for i := range whole {
		b, err := EncodeCell(whole[i])
		if err != nil {
			t.Fatal(err)
		}
		wholeEnc[whole[i].Cell] = string(b)
	}

	spans := []CellSpan{{Lo: 1, Hi: 3}, {Lo: 4, Hi: 5}, {Lo: 7, Hi: 11}}
	for _, workers := range []int{1, 3} {
		sopt := opt
		sopt.Workers = workers
		recs, err := RunCellSpansContext(context.Background(), sopt, spans, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 7 {
			t.Fatalf("workers=%d: got %d records, want 7", workers, len(recs))
		}
		next := 0
		for i := range recs {
			b, err := EncodeCell(recs[i])
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != wholeEnc[recs[i].Cell] {
				t.Errorf("workers=%d: cell %d differs from whole-grid run", workers, recs[i].Cell)
			}
			if recs[i].Cell < next {
				t.Errorf("workers=%d: records out of cell order at %d", workers, recs[i].Cell)
			}
			next = recs[i].Cell
		}
	}

	// Bad span lists are rejected.
	for _, bad := range [][]CellSpan{
		{{Lo: -1, Hi: 2}},
		{{Lo: 0, Hi: 99}},
		{{Lo: 3, Hi: 3}},
		{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 6}}, // overlapping
		{{Lo: 4, Hi: 6}, {Lo: 0, Hi: 2}}, // descending
	} {
		if _, err := RunCellSpansContext(context.Background(), opt, bad, nil); err == nil {
			t.Errorf("span list %v accepted", bad)
		}
	}
	// An empty list is a no-op, not an error.
	if recs, err := RunCellSpansContext(context.Background(), opt, nil, nil); err != nil || len(recs) != 0 {
		t.Errorf("empty span list: recs=%v err=%v", recs, err)
	}
}

// TestAdaptiveControllerReplay: feeding a completed record set back
// through a fresh controller replays the same rounds without any
// pending dispatch — the property journal resume relies on.
func TestAdaptiveControllerReplay(t *testing.T) {
	opt := adaptiveGridOptions(0)
	recs, err := runAdaptiveCells(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[int]*CellRecord, len(recs))
	for i := range recs {
		byCell[recs[i].Cell] = &recs[i]
	}

	ctrl, err := NewAdaptiveController(&opt)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	err = AdaptiveRounds(ctrl,
		func(cell int) bool { return byCell[cell] != nil },
		func(cell int) float64 { return byCell[cell].Values[ctrl.MetricIndex()] },
		func(spans []CellSpan) error {
			rounds++
			t.Errorf("replay dispatched spans %v", spans)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Errorf("replay ran %d dispatch rounds, want 0", rounds)
	}
	if got := ctrl.TargetCells(); got != len(recs) {
		t.Errorf("replayed target set has %d cells, records have %d", got, len(recs))
	}
}
