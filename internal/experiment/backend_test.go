package experiment

import (
	"context"
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/modelgen"
	"repro/internal/petri"
	"repro/internal/reach"
)

// TestSimBackendExplicitMatchesDefault: naming the sim backend
// explicitly is the identity refactor — every artifact of the sweep is
// byte-identical to leaving Backend nil.
func TestSimBackendExplicitMatchesDefault(t *testing.T) {
	base := gridOptions(3, 2)
	want, err := Sweep(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	explicit := gridOptions(3, 2)
	explicit.Backend = SimBackend{}
	got, err := Sweep(context.Background(), explicit)
	if err != nil {
		t.Fatal(err)
	}
	if encode(t, got) != encode(t, want) {
		t.Error("explicit SimBackend changed the sweep output")
	}
}

// deepBuild parameterizes the DeepPipeline family: the axis values
// select the stage and token counts, so different grid points explore
// genuinely different state spaces.
func deepBuild(pt Point) (*petri.Net, error) {
	stages, tokens := 4, 2
	for i, n := range pt.Names {
		switch n {
		case "Stages":
			stages = int(pt.Values[i])
		case "Tokens":
			tokens = int(pt.Values[i])
		}
	}
	return modelgen.DeepPipeline(stages, tokens, 1), nil
}

func reachOptions(workers int) SweepOptions {
	return SweepOptions{
		Axes:     []Axis{{Name: "Stages", Values: []float64{3, 5}}, {Name: "Tokens", Values: []float64{2, 3}}},
		Reps:     1,
		Workers:  workers,
		BaseSeed: 1,
		Metrics: []Metric{
			NamedMetric("states"),
			NamedMetric("deadlocks"),
			NamedMetric("truncated"),
		},
		Build:   deepBuild,
		Backend: ReachBackend{},
	}
}

// TestReachBackendDeterministicAndCorrect: the reach engine's grid
// tables are byte-identical across worker counts and repeated runs,
// and each point's values equal a direct reach.Build of that net.
func TestReachBackendDeterministicAndCorrect(t *testing.T) {
	var prev string
	for _, workers := range []int{1, 2, 4} {
		r, err := Sweep(context.Background(), reachOptions(workers))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := r.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if prev != "" && b.String() != prev {
			t.Errorf("reach sweep differs at %d workers:\n%s\nvs\n%s", workers, b.String(), prev)
		}
		prev = b.String()

		for _, pt := range r.Points {
			net, err := deepBuild(pt.Point)
			if err != nil {
				t.Fatal(err)
			}
			g, err := reach.Build(context.Background(), net, reach.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := pt.Values[0][0], float64(len(g.Nodes)); got != want {
				t.Errorf("%s: states = %g, want %g", pt.Point.String(), got, want)
			}
			if got, want := pt.Values[1][0], float64(len(g.Deadlocks())); got != want {
				t.Errorf("%s: deadlocks = %g, want %g", pt.Point.String(), got, want)
			}
		}
	}
}

// TestReachBackendMetricNames: bound and ctl metrics resolve by name;
// misspellings and malformed formulas fail Validate, before any pool
// or planner starts.
func TestReachBackendMetricNames(t *testing.T) {
	opt := reachOptions(1)
	opt.Metrics = []Metric{NamedMetric("bound(s0)"), NamedMetric("ctl(EF(deadlock))")}
	if err := opt.Validate(); err != nil {
		t.Fatalf("valid reach metrics rejected: %v", err)
	}
	for _, bad := range []string{"throughput(x)", "frobnicate", "ctl(AG !!)", "bound"} {
		opt.Metrics = []Metric{NamedMetric(bad)}
		if err := opt.Validate(); err == nil {
			t.Errorf("metric %q validated", bad)
		}
	}
}

// TestDeterministicBackendShape: deterministic engines reject
// replication and adaptive stopping at validation time.
func TestDeterministicBackendShape(t *testing.T) {
	opt := reachOptions(1)
	opt.Reps = 3
	if err := opt.Validate(); err == nil || !strings.Contains(err.Error(), "Reps must be 1") {
		t.Errorf("Reps=3 under reach: err = %v", err)
	}
	opt = reachOptions(1)
	opt.Adaptive = &AdaptiveOptions{Metric: "states", RelCI: 0.05, MinReps: 2, MaxReps: 4, Batch: 2}
	if err := opt.Validate(); err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Errorf("adaptive under reach: err = %v", err)
	}
}

// TestAnalyticBackendMatchesEvaluate: the analytic engine's cell
// values are exactly analytic.Evaluate's.
func TestAnalyticBackendMatchesEvaluate(t *testing.T) {
	// A two-state cycle with constant delays: the timed graph is exact
	// and tiny.
	ring := func() *petri.Net {
		b := petri.NewBuilder("const_ring")
		b.Place("pa", 1)
		b.Place("pb", 0)
		b.Trans("ab").In("pa").Out("pb").FiringConst(2)
		b.Trans("ba").In("pb").Out("pa").FiringConst(3)
		return b.MustBuild()
	}
	build := func(Point) (*petri.Net, error) { return ring(), nil }
	opt := SweepOptions{
		Reps:    1,
		Metrics: []Metric{NamedMetric("throughput(ab)"), NamedMetric("utilization(pa)")},
		Build:   build,
		Backend: AnalyticBackend{},
	}
	r, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analytic.Evaluate(context.Background(), ring(), reach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := res.Throughput("ab")
	if err != nil {
		t.Fatal(err)
	}
	util, err := res.Utilization("pa")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Points[0].Values[0][0]; got != tr {
		t.Errorf("throughput(ab) = %g, want %g", got, tr)
	}
	if got := r.Points[0].Values[1][0]; got != util {
		t.Errorf("utilization(pa) = %g, want %g", got, util)
	}

	opt.Metrics = []Metric{NamedMetric("states")}
	if err := opt.Validate(); err == nil {
		t.Error("reach metric validated under the analytic engine")
	}
}

// TestCellMetaEngine: the stream meta pins the engine and its
// state-space controls, and SameGrid keeps engines apart while
// treating an absent engine as sim (pre-v3 streams).
func TestCellMetaEngine(t *testing.T) {
	simMeta := MetaOf(gridOptions(1, 1), "m")
	if simMeta.Engine != "" || simMeta.MaxStates != 0 {
		t.Errorf("sim meta carries engine pins: %+v", simMeta)
	}
	legacy := simMeta
	legacy.Engine = "sim" // a hypothetical explicit tag must equal the absent one
	if !simMeta.SameGrid(&legacy) {
		t.Error("absent engine != explicit sim")
	}

	opt := reachOptions(1)
	opt.Backend = ReachBackend{Opt: reach.Options{MaxStates: 777, BoundCap: 33, Shards: 4}}
	m := MetaOf(opt, "m")
	if m.Engine != "reach" || m.MaxStates != 777 || m.BoundCap != 33 {
		t.Errorf("reach meta pins wrong: %+v", m)
	}
	if m.Store != "" {
		t.Errorf("default store pinned as %q, want absent", m.Store)
	}
	other := m
	other.MaxStates = 778
	if m.SameGrid(&other) {
		t.Error("differing MaxStates compared equal")
	}
	if m.SameGrid(&simMeta) {
		t.Error("reach grid compared equal to sim grid")
	}

	// The store selection pins the grid too: an absent store equals an
	// explicit "mem" (pre-spill streams), but "spill" differs.
	opt.Backend = ReachBackend{Opt: reach.Options{MaxStates: 777, BoundCap: 33, Store: reach.StoreSpill}}
	spillMeta := MetaOf(opt, "m")
	if spillMeta.Store != "spill" {
		t.Errorf("spill store pinned as %q", spillMeta.Store)
	}
	if m.SameGrid(&spillMeta) {
		t.Error("mem and spill store metas compared equal")
	}
	explicitMem := m
	explicitMem.Store = "mem"
	if !m.SameGrid(&explicitMem) {
		t.Error("absent store != explicit mem")
	}
}

// TestReachBackendThroughCellStream: reach cells survive the encode/
// decode/assemble path the dist coordinator uses.
func TestReachBackendThroughCellStream(t *testing.T) {
	opt := reachOptions(1)
	recs, err := RunCellsContext(context.Background(), opt, 0, opt.NumCells(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		line, err := EncodeCell(recs[i])
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeCell(line)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = dec
	}
	r, err := AssembleSweep(opt, recs)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Sweep(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := r.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("round-tripped reach cells differ from the direct sweep")
	}
	// Deterministic cells carry zero-valued run summaries by contract.
	for _, rec := range recs {
		if rec.Run.Clock != 0 || rec.Run.Starts != 0 || rec.Run.Ends != 0 || rec.Run.Final != nil {
			t.Errorf("cell %d carries a non-zero run summary: %+v", rec.Cell, rec.Run)
		}
	}
}
