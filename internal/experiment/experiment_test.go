package experiment

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/petri"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func testNet(t testing.TB) *petri.Net {
	t.Helper()
	net, err := pipeline.Processor(pipeline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func run(t *testing.T, net *petri.Net, workers int) *Result {
	t.Helper()
	r, err := Run(context.Background(), net, Options{
		Reps:     12,
		Workers:  workers,
		BaseSeed: 400,
		Sim:      sim.Options{Horizon: 2_000},
		Metrics:  []Metric{Throughput("Issue"), Utilization("Bus_busy")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestDeterministicAcrossWorkerCounts is the core contract: the same
// base seed must give bit-for-bit identical merged statistics and
// metric summaries whether the replications run serially or spread
// over any number of workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	net := testNet(t)
	ref := run(t, net, 1)
	var refReport strings.Builder
	if err := ref.Pooled.Report(&refReport); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		r := run(t, net, workers)
		if !reflect.DeepEqual(r.Summaries, ref.Summaries) {
			t.Errorf("workers=%d: summaries differ from serial run:\n%v\nvs\n%v",
				workers, r.Summaries, ref.Summaries)
		}
		if !reflect.DeepEqual(r.Values, ref.Values) {
			t.Errorf("workers=%d: per-replication values differ from serial run", workers)
		}
		var rep strings.Builder
		if err := r.Pooled.Report(&rep); err != nil {
			t.Fatal(err)
		}
		if rep.String() != refReport.String() {
			t.Errorf("workers=%d: pooled statistics report not byte-identical to serial run", workers)
		}
	}
}

// TestMatchesReplicate: the parallel driver must agree with the
// sequential stats.Replicate helper on the same seeds.
func TestMatchesReplicate(t *testing.T) {
	net := testNet(t)
	r := run(t, net, 4)
	want, err := stats.Replicate(net, sim.Options{Horizon: 2_000, Seed: 400}, 12,
		func(s *stats.Stats) (float64, error) { return s.Throughput("Issue") })
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Summary("throughput(Issue)")
	if !ok {
		t.Fatal("throughput(Issue) summary missing")
	}
	if got != want {
		t.Errorf("parallel summary %v != sequential Replicate %v", got, want)
	}
}

// TestPooledAggregates: pooled statistics must total the per-run event
// counts, and the pooled duration must be the sum of run lengths.
func TestPooledAggregates(t *testing.T) {
	net := testNet(t)
	r := run(t, net, 4)
	var ends int64
	var dur petri.Time
	for _, res := range r.Runs {
		ends += res.Ends
		dur += res.Clock
	}
	if r.Pooled.TotalEnds() != ends {
		t.Errorf("pooled ends %d != summed run ends %d", r.Pooled.TotalEnds(), ends)
	}
	if r.Events != ends {
		t.Errorf("Result.Events %d != summed run ends %d", r.Events, ends)
	}
	if r.Pooled.Duration() != dur {
		t.Errorf("pooled duration %d != summed run clocks %d", r.Pooled.Duration(), dur)
	}
	if r.Pooled.Runs() != len(r.Runs) {
		t.Errorf("pooled run count %d != %d", r.Pooled.Runs(), len(r.Runs))
	}
}

// TestObserverPerReplication: the Observe hook must be called once per
// replication and see that replication's whole trace.
func TestObserverPerReplication(t *testing.T) {
	net := testNet(t)
	const reps = 6
	var calls atomic.Int64
	finals := make([]atomic.Int64, reps)
	_, err := Run(context.Background(), net, Options{
		Reps:     reps,
		Workers:  3,
		BaseSeed: 7,
		Sim:      sim.Options{Horizon: 500},
		Observe: func(rep int) trace.Observer {
			calls.Add(1)
			return trace.ObserverFunc(func(rec *trace.Record) error {
				if rec.Kind == trace.Final {
					finals[rep].Add(1)
				}
				return nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != reps {
		t.Errorf("Observe called %d times, want %d", calls.Load(), reps)
	}
	for i := range finals {
		if finals[i].Load() != 1 {
			t.Errorf("replication %d saw %d Final records, want 1", i, finals[i].Load())
		}
	}
}

// TestErrorPropagation: a failing replication aborts the experiment
// and surfaces the error.
func TestErrorPropagation(t *testing.T) {
	net := testNet(t)
	sentinel := errors.New("boom")
	_, err := Run(context.Background(), net, Options{
		Reps:    8,
		Workers: 4,
		Sim:     sim.Options{Horizon: 500},
		Observe: func(rep int) trace.Observer {
			return trace.ObserverFunc(func(rec *trace.Record) error {
				if rep == 5 {
					return sentinel
				}
				return nil
			})
		},
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("error %v does not wrap the observer failure", err)
	}

	if _, err := Run(context.Background(), net, Options{Reps: 0, Sim: sim.Options{Horizon: 1}}); err == nil {
		t.Error("Reps=0 must be rejected")
	}
	if _, err := Run(context.Background(), net, Options{Reps: 2}); err == nil {
		t.Error("missing Horizon/MaxStarts must be rejected")
	}
}

// TestSingleRep: the driver degrades to a plain run.
func TestSingleRep(t *testing.T) {
	net := testNet(t)
	r, err := Run(context.Background(), net, Options{
		Reps:     1,
		BaseSeed: 99,
		Sim:      sim.Options{Horizon: 5_000},
		Metrics:  []Metric{Throughput("Issue")},
	})
	if err != nil {
		t.Fatal(err)
	}
	direct := stats.New(trace.HeaderOf(net))
	if _, err := sim.Run(context.Background(), net, direct, sim.Options{Horizon: 5_000, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	want, _ := direct.Throughput("Issue")
	if got := r.Values[0][0]; got != want {
		t.Errorf("single replication throughput %v != direct run %v", got, want)
	}
	if r.Workers != 1 {
		t.Errorf("worker pool not clamped to rep count: %d", r.Workers)
	}
}

// TestUnknownMetric: metric errors surface with the replication index.
func TestUnknownMetric(t *testing.T) {
	net := testNet(t)
	_, err := Run(context.Background(), net, Options{
		Reps:    3,
		Sim:     sim.Options{Horizon: 100},
		Metrics: []Metric{Throughput("no_such_transition")},
	})
	if err == nil || !strings.Contains(err.Error(), "no_such_transition") {
		t.Errorf("unknown metric error not surfaced: %v", err)
	}
}
