// The cell-record stream is the interchange format of the distributed
// sweep: a self-describing, versioned JSONL stream — one meta line, then
// one line per (point, replication) cell — that a worker process writes
// on stdout and the coordinator journals and reassembles. JSON keeps the
// compose-small-tools-over-streams property of the suite's textual
// trace format (greppable, ssh-able, diffable), and Go's shortest
// round-trip float encoding makes the stream exact: decoding restores
// every statistic bit for bit (see stats.Snapshot).
package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/stats"
)

// CellFormat and CellVersion identify the cell-record stream format.
// Readers reject other formats and newer versions. Version 2 added the
// meta's adaptive stopping-rule fields; version 3 added the engine tag
// and state-space pins for the exhaustive backends (later extended
// with the optional marking-store pin — absent means the in-memory
// store, so older v3 streams still compare correctly). Cell lines are
// unchanged (cells are self-identifying, so the format tolerates a
// dynamically growing grid), and v1/v2 streams still decode — an
// absent engine means "sim".
const (
	CellFormat  = "pnut-cells"
	CellVersion = 3
)

// CellMeta is the stream's first line: it pins the grid the records
// belong to, so a coordinator can reject records from a different sweep
// (and a resumed journal from changed options).
type CellMeta struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Net names the swept model (informational).
	Net string `json:"net,omitempty"`
	// Axes, Reps and BaseSeed pin the grid shape and seed schedule;
	// Horizon and MaxStarts pin the per-cell simulation length. For an
	// adaptive sweep Reps is the per-point capacity (Adaptive.MaxReps),
	// i.e. the grid's rep stride.
	Axes      []Axis `json:"axes"`
	Reps      int    `json:"reps"`
	BaseSeed  int64  `json:"baseSeed"`
	Horizon   int64  `json:"horizon"`
	MaxStarts int64  `json:"maxStarts,omitempty"`
	// Metrics names the per-cell metric values, in order.
	Metrics []string `json:"metrics"`
	// Cells is the grid's total cell capacity (points x rep stride). An
	// adaptive run completes with fewer records than Cells.
	Cells int `json:"cells"`
	// Adaptive pins the CI-targeted stopping rule of an adaptive sweep
	// (cell-record v2); nil for fixed-replication sweeps. Resuming a
	// journal under a changed stopping rule would silently reshape the
	// grid, so SameGrid compares it.
	Adaptive *AdaptiveOptions `json:"adaptive,omitempty"`
	// Engine names the backend that computed the cells (cell-record
	// v3); empty means "sim". Cells from different engines are never
	// interchangeable, so SameGrid compares it — which also keys the
	// server's content-addressed cache per engine.
	Engine string `json:"engine,omitempty"`
	// MaxStates and BoundCap pin the state-space controls of the
	// exhaustive engines (zero for sim): a reach cell's values depend
	// on where exploration truncates.
	MaxStates int `json:"maxStates,omitempty"`
	BoundCap  int `json:"boundCap,omitempty"`
	// Store pins the reach engine's marking-store selection (empty =
	// the in-memory store, so pre-spill streams compare correctly).
	// Stores are bit-identical by contract; the pin records how cached
	// or journaled cells were produced, so a store-semantics drift is
	// rejected instead of silently mixed.
	Store string `json:"store,omitempty"`
}

// MetaOf derives the stream meta for a sweep. netName may be empty.
func MetaOf(opt SweepOptions, netName string) CellMeta {
	m := CellMeta{
		Format:    CellFormat,
		Version:   CellVersion,
		Net:       netName,
		Axes:      opt.Axes,
		Reps:      opt.RepStride(),
		BaseSeed:  opt.BaseSeed,
		Horizon:   opt.Sim.Horizon,
		MaxStarts: opt.Sim.MaxStarts,
		Cells:     opt.NumCells(),
		Adaptive:  opt.Adaptive,
		Metrics:   make([]string, len(opt.Metrics)),
	}
	for i := range opt.Metrics {
		m.Metrics[i] = opt.Metrics[i].Name
	}
	if b := opt.backend(); b.Engine() != "sim" {
		m.Engine = b.Engine()
		if sp, ok := b.(interface{ StatePins() (int, int) }); ok {
			m.MaxStates, m.BoundCap = sp.StatePins()
		}
		if sp, ok := b.(interface{ StorePin() string }); ok {
			m.Store = sp.StorePin()
		}
	}
	return m
}

// Check validates the meta's format tag and version.
func (m *CellMeta) Check() error {
	if m.Format != CellFormat {
		return fmt.Errorf("experiment: stream format %q is not %q", m.Format, CellFormat)
	}
	if m.Version < 1 || m.Version > CellVersion {
		return fmt.Errorf("experiment: cell stream version %d not supported (have %d)", m.Version, CellVersion)
	}
	return nil
}

// SameGrid reports whether two metas describe the same sweep: equal
// engine, axes, replication count, seed schedule, simulation length or
// state-space pins, metric set and adaptive stopping rule. Net names
// are informational and not compared; an empty engine equals "sim", so
// pre-v3 streams compare correctly.
func (m *CellMeta) SameGrid(o *CellMeta) bool {
	eng, oeng := m.Engine, o.Engine
	if eng == "" {
		eng = "sim"
	}
	if oeng == "" {
		oeng = "sim"
	}
	if eng != oeng || m.MaxStates != o.MaxStates || m.BoundCap != o.BoundCap {
		return false
	}
	st, ost := m.Store, o.Store
	if st == "" {
		st = "mem"
	}
	if ost == "" {
		ost = "mem"
	}
	if st != ost {
		return false
	}
	if m.Reps != o.Reps || m.BaseSeed != o.BaseSeed || m.Cells != o.Cells ||
		m.Horizon != o.Horizon || m.MaxStarts != o.MaxStarts ||
		len(m.Axes) != len(o.Axes) || len(m.Metrics) != len(o.Metrics) {
		return false
	}
	if (m.Adaptive == nil) != (o.Adaptive == nil) {
		return false
	}
	if m.Adaptive != nil && *m.Adaptive != *o.Adaptive {
		return false
	}
	for i := range m.Axes {
		if m.Axes[i].Name != o.Axes[i].Name || len(m.Axes[i].Values) != len(o.Axes[i].Values) {
			return false
		}
		for j := range m.Axes[i].Values {
			if m.Axes[i].Values[j] != o.Axes[i].Values[j] {
				return false
			}
		}
	}
	for i := range m.Metrics {
		if m.Metrics[i] != o.Metrics[i] {
			return false
		}
	}
	return true
}

// cellJSON is the wire form of one CellRecord line.
type cellJSON struct {
	Cell   int            `json:"cell"`
	Point  int            `json:"point"`
	Rep    int            `json:"rep"`
	Seed   int64          `json:"seed"`
	Values []float64      `json:"values"`
	Stats  stats.Snapshot `json:"stats"`
	Run    sim.Result     `json:"run"`
}

// EncodeCell renders one record as a single JSON line (no trailing
// newline).
func EncodeCell(rec CellRecord) ([]byte, error) {
	if rec.Stats == nil {
		return nil, fmt.Errorf("experiment: cell %d has no statistics to encode", rec.Cell)
	}
	return json.Marshal(cellJSON{
		Cell: rec.Cell, Point: rec.Point, Rep: rec.Rep, Seed: rec.Seed,
		Values: rec.Values,
		Stats:  rec.Stats.Snapshot(),
		Run:    rec.Run,
	})
}

// DecodeCell parses one JSON cell line back into a record, restoring
// the statistics accumulator exactly.
func DecodeCell(line []byte) (CellRecord, error) {
	var cj cellJSON
	if err := json.Unmarshal(line, &cj); err != nil {
		return CellRecord{}, fmt.Errorf("experiment: bad cell record: %w", err)
	}
	st, err := stats.FromSnapshot(cj.Stats)
	if err != nil {
		return CellRecord{}, fmt.Errorf("experiment: cell %d: %w", cj.Cell, err)
	}
	return CellRecord{
		Cell: cj.Cell, Point: cj.Point, Rep: cj.Rep, Seed: cj.Seed,
		Values: cj.Values,
		Stats:  st,
		Run:    cj.Run,
	}, nil
}

// CellWriter streams a meta line then cell records to w as JSONL.
type CellWriter struct {
	w *bufio.Writer
}

// NewCellWriter writes the meta line (normalizing Format/Version) and
// returns a writer for the records.
func NewCellWriter(w io.Writer, meta CellMeta) (*CellWriter, error) {
	meta.Format, meta.Version = CellFormat, CellVersion
	bw := bufio.NewWriter(w)
	line, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	if _, err := bw.Write(append(line, '\n')); err != nil {
		return nil, err
	}
	return &CellWriter{w: bw}, nil
}

// Write appends one record line. The line is flushed immediately: a
// coordinator tailing the stream sees each cell as it completes, and a
// killed worker leaves only whole lines (plus at most one truncated
// tail) behind.
func (cw *CellWriter) Write(rec CellRecord) error {
	line, err := EncodeCell(rec)
	if err != nil {
		return err
	}
	if _, err := cw.w.Write(append(line, '\n')); err != nil {
		return err
	}
	return cw.w.Flush()
}

// Flush flushes buffered output.
func (cw *CellWriter) Flush() error { return cw.w.Flush() }

// maxCellLine bounds one JSONL line (a cell's full statistics snapshot);
// 64 MiB is far above any real net.
const maxCellLine = 64 << 20

// CellReader decodes a cell-record stream: the meta line, then one
// record per Read.
type CellReader struct {
	sc   *bufio.Scanner
	meta CellMeta
}

// NewCellReader reads and validates the stream's meta line.
func NewCellReader(r io.Reader) (*CellReader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxCellLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("experiment: empty cell stream (no meta line)")
	}
	var meta CellMeta
	if err := json.Unmarshal(bytes.TrimSpace(sc.Bytes()), &meta); err != nil {
		return nil, fmt.Errorf("experiment: bad cell stream meta: %w", err)
	}
	if err := meta.Check(); err != nil {
		return nil, err
	}
	return &CellReader{sc: sc, meta: meta}, nil
}

// Meta returns the stream's meta line.
func (cr *CellReader) Meta() CellMeta { return cr.meta }

// Read returns the next record, or io.EOF at end of stream. Blank
// lines are skipped.
func (cr *CellReader) Read() (CellRecord, error) {
	for cr.sc.Scan() {
		line := bytes.TrimSpace(cr.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		return DecodeCell(line)
	}
	if err := cr.sc.Err(); err != nil {
		return CellRecord{}, err
	}
	return CellRecord{}, io.EOF
}
