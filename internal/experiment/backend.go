// The backend abstraction makes the sweep grid engine-agnostic: the
// paper's point is that exhaustive analysis (reachability, temporal
// logic) and stochastic simulation are complementary modes over the
// same net, so the sweep/dist/server machinery — grids, seeds, cell
// records, journals, caches — must not care which mode computes a
// cell. A Backend supplies the per-cell computation; everything else
// (grid expansion, worker pools, in-order emit, assembly) is shared.
//
// SimBackend is the default and reproduces the pre-abstraction
// simulation path byte for byte. The exhaustive backends (ReachBackend,
// AnalyticBackend) are deterministic: a cell's value depends only on
// the point's net, never on the seed, so replications collapse to 1
// and tables carry exact values with zero-width confidence intervals.
package experiment

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Backend selects the engine that computes one grid cell. Backends are
// stateless descriptions; per-worker state (engines, scratch) lives in
// the BackendWorker they mint.
type Backend interface {
	// Engine is the backend's wire name ("sim", "reach", "analytic"):
	// the -engine flag value, the Spec.Engine field and the cell
	// stream's meta tag.
	Engine() string
	// Deterministic reports whether a cell's outcome is independent of
	// its seed. Deterministic backends require Reps == 1 and reject
	// adaptive replication (Validate enforces both).
	Deterministic() bool
	// NewWorker mints one worker's cell runner. It is called lazily,
	// once per pool worker, and must validate the sweep's metric names
	// eagerly — Validate calls it with a scratch options copy so a bad
	// metric fails before any work is scheduled.
	NewWorker(opt *SweepOptions) (BackendWorker, error)
}

// CellInput is everything a backend needs to compute one cell. Cells
// of one point share the immutable Net; Seed is BaseSeed + cell
// (deterministic backends ignore it).
type CellInput struct {
	Point  int
	Net    *petri.Net
	Header trace.Header
	Seed   int64
}

// CellOutcome is a backend's cell result: one value per sweep metric
// (in Metrics order), the cell's statistics accumulator (never nil —
// deterministic backends return an empty one so records encode,
// journal and merge uniformly), and the run summary (zero for
// non-simulating backends).
type CellOutcome struct {
	Values []float64
	Stats  *stats.Stats
	Run    sim.Result
}

// BackendWorker computes cells for one pool worker. Workers are
// goroutine-confined: RunCell is never called concurrently on the same
// worker, and cells arrive in claim order (point-major), so a worker
// may cache per-point state across calls.
type BackendWorker interface {
	RunCell(ctx context.Context, in CellInput) (CellOutcome, error)
}

// backend returns the effective backend: the configured one, or the
// simulation default.
func (o *SweepOptions) backend() Backend {
	if o.Backend == nil {
		return SimBackend{}
	}
	return o.Backend
}

// SimBackend is the stochastic simulation engine — the sweep's default
// and the only backend whose cells depend on their seed.
type SimBackend struct{}

// Engine implements Backend.
func (SimBackend) Engine() string { return "sim" }

// Deterministic implements Backend.
func (SimBackend) Deterministic() bool { return false }

// NewWorker implements Backend.
func (SimBackend) NewWorker(opt *SweepOptions) (BackendWorker, error) {
	for i := range opt.Metrics {
		if opt.Metrics[i].Eval == nil {
			return nil, fmt.Errorf("experiment: metric %q has no Eval hook (name-only metrics belong to the exhaustive engines)", opt.Metrics[i].Name)
		}
	}
	return &simWorker{opt: opt}, nil
}

// simWorker keeps the worker-confined engine state the pre-backend
// pool kept inline: the engine is rebuilt only on point boundaries, so
// consecutive cells of one point reuse it.
type simWorker struct {
	opt   *SweepOptions
	point int
	eng   *sim.Engine
}

func (w *simWorker) RunCell(ctx context.Context, in CellInput) (CellOutcome, error) {
	if w.eng == nil || w.point != in.Point {
		w.eng = sim.NewEngine(in.Net)
		w.point = in.Point
	}
	so := w.opt.Sim
	so.Seed = in.Seed
	acc := stats.New(in.Header)
	res, err := w.eng.Run(ctx, acc, so)
	if err != nil {
		return CellOutcome{}, err
	}
	out := CellOutcome{
		Values: make([]float64, len(w.opt.Metrics)),
		Stats:  acc,
		Run:    res,
	}
	for m := range w.opt.Metrics {
		v, err := w.opt.Metrics[m].Eval(acc)
		if err != nil {
			return CellOutcome{}, err
		}
		out.Values[m] = v
	}
	return out, nil
}

// NamedMetric is a name-only metric for the exhaustive engines, whose
// values are resolved from the name by the backend (e.g. "states",
// "bound(Buf)", "ctl(AG({p <= 1}))", "throughput(Issue)") rather than
// evaluated against simulation statistics.
func NamedMetric(name string) Metric { return Metric{Name: name} }

// parseCall splits a metric name of the form "fn(arg)" and reports
// whether it had that shape. The arg is returned verbatim — CTL
// formulas contain nested parentheses, so everything between the first
// "(" and the final ")" is the argument.
func parseCall(name string) (fn, arg string, ok bool) {
	open := strings.IndexByte(name, '(')
	if open <= 0 || !strings.HasSuffix(name, ")") {
		return "", "", false
	}
	return name[:open], name[open+1 : len(name)-1], true
}
