// Sweep generalizes the replication driver from one experiment to a
// whole parameter study: the paper's workflow of sweeping design
// parameters (cache hit ratio, memory speed, ...) across many
// simulation experiments and comparing the resulting performance
// curves.
//
// A sweep expands named parameter axes into a cartesian grid of points.
// Each point is an experiment of R replications; every (point,
// replication) cell fans through one shared worker pool, so a wide
// grid with few replications parallelizes as well as a narrow grid
// with many. Determinism extends the PR-1 guarantee from replications
// to grids:
//
//   - Cell (p, r) always runs with seed BaseSeed + p*Reps + r, no
//     matter which worker executes it. For a single point this
//     degenerates to the replication driver's BaseSeed+r.
//   - Nets are built once per point, before the pool starts, in point
//     order — parameter mutation never races with simulation.
//   - Workers own their engines and rebuild them only when they cross
//     a point boundary; cells are claimed in point-major order, so an
//     engine is typically reused for a whole point's replications.
//   - Per-cell results land in a slice indexed by cell and are merged
//     per point in replication order, so merged statistics and metric
//     summaries are bit-for-bit identical for any worker count.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/petri"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Axis is one swept parameter: a name plus the values it takes. The
// name is interpreted by the sweep's Build hook (a model parameter, a
// net variable, ...); the driver only expands the grid.
type Axis struct {
	Name   string
	Values []float64
}

// Point identifies one cell of the expanded parameter grid.
type Point struct {
	// Index is the point's row-major position in the grid (the last
	// axis varies fastest).
	Index int
	// Names and Values give the point's coordinates, parallel to the
	// sweep's Axes.
	Names  []string
	Values []float64
}

// Value returns the point's value on the named axis.
func (p *Point) Value(name string) (float64, bool) {
	for i, n := range p.Names {
		if n == name {
			return p.Values[i], true
		}
	}
	return 0, false
}

// String renders the point as "axis=value, ..." for error messages and
// table headers.
func (p *Point) String() string {
	if len(p.Names) == 0 {
		return "(origin)"
	}
	parts := make([]string, len(p.Names))
	for i := range p.Names {
		parts[i] = p.Names[i] + "=" + strconv.FormatFloat(p.Values[i], 'g', -1, 64)
	}
	return strings.Join(parts, ", ")
}

// SweepOptions configure one parameter sweep.
type SweepOptions struct {
	// Axes are the swept parameters; their cartesian product is the
	// grid. An empty Axes runs a single point (the origin), which makes
	// a sweep of zero axes exactly equivalent to Run.
	Axes []Axis
	// Reps is the number of independent replications per point (at
	// least 1).
	Reps int
	// Workers caps the shared worker pool; 0 or less means GOMAXPROCS.
	// The worker count never affects results, only wall-clock time.
	Workers int
	// BaseSeed seeds cell (point, rep) with BaseSeed + point*Reps + rep.
	// The Seed field of Sim is ignored.
	BaseSeed int64
	// Sim holds the per-run simulation options (Horizon or MaxStarts
	// must be set, exactly as for sim.Run).
	Sim sim.Options
	// Metrics are evaluated against each cell's statistics and
	// summarized per point across its replications.
	Metrics []Metric
	// Build constructs the net for one grid point. It is called once
	// per point, serially and in point order, before any simulation
	// starts; the returned net must be immutable for the sweep's
	// lifetime (workers share it).
	Build func(Point) (*petri.Net, error)
}

func (o *SweepOptions) numPoints() int {
	n := 1
	for _, ax := range o.Axes {
		n *= len(ax.Values)
	}
	return n
}

func (o *SweepOptions) workers(cells int) int {
	w := o.Workers
	if w <= 0 {
		w = defaultWorkers()
	}
	if w > cells {
		w = cells
	}
	return w
}

// point expands grid index idx (row-major, last axis fastest) into a
// Point with its own backing arrays.
func (o *SweepOptions) point(idx int) Point {
	pt := Point{
		Index:  idx,
		Names:  make([]string, len(o.Axes)),
		Values: make([]float64, len(o.Axes)),
	}
	rem := idx
	for i := len(o.Axes) - 1; i >= 0; i-- {
		ax := o.Axes[i]
		pt.Names[i] = ax.Name
		pt.Values[i] = ax.Values[rem%len(ax.Values)]
		rem /= len(ax.Values)
	}
	return pt
}

func (o *SweepOptions) validate() error {
	if o.Reps < 1 {
		return fmt.Errorf("experiment: sweep Reps must be at least 1, got %d", o.Reps)
	}
	if o.Build == nil {
		return fmt.Errorf("experiment: sweep needs a Build hook")
	}
	seen := make(map[string]bool, len(o.Axes))
	for i, ax := range o.Axes {
		if ax.Name == "" {
			return fmt.Errorf("experiment: axis %d has no name", i)
		}
		if seen[ax.Name] {
			return fmt.Errorf("experiment: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("experiment: axis %q has no values", ax.Name)
		}
	}
	return nil
}

// PointResult is the outcome of one grid point: an R-replication
// experiment, merged deterministically.
type PointResult struct {
	Point Point
	// Pooled holds the point's statistics merged in replication order.
	Pooled *stats.Stats
	// Summaries holds one cross-replication summary per metric, in
	// SweepOptions.Metrics order.
	Summaries []stats.Summary
	// Values holds per-replication metric values, Values[m][r] being
	// metric m of replication r.
	Values [][]float64
	// Runs holds each replication's run summary.
	Runs []sim.Result
}

// SweepResult is the outcome of a whole sweep.
type SweepResult struct {
	// Axes echoes the grid shape; Points holds one result per grid
	// point in row-major order (the last axis varies fastest).
	Axes   []Axis
	Points []PointResult
	// Reps and Workers echo the effective sweep shape.
	Reps    int
	Workers int
	// Elapsed is the wall-clock time of the whole sweep; Events is the
	// total number of firings completed across all cells.
	Elapsed time.Duration
	Events  int64

	names []string // metric names, parallel to each point's Summaries
}

// MetricNames returns the metric names, in SweepOptions.Metrics order.
func (r *SweepResult) MetricNames() []string {
	return append([]string(nil), r.names...)
}

// ParseAxis parses the textual "Name=v1,v2,..." axis form used by the
// sweep CLIs.
func ParseAxis(s string) (Axis, error) {
	name, list, ok := strings.Cut(s, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" {
		return Axis{}, fmt.Errorf("experiment: axis %q is not name=v1,v2,...", s)
	}
	ax := Axis{Name: name}
	for _, part := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return Axis{}, fmt.Errorf("experiment: axis %q: bad value %q", name, part)
		}
		ax.Values = append(ax.Values, v)
	}
	return ax, nil
}

// Sweep expands opt.Axes into a grid, runs Reps replications of every
// point through one shared worker pool, and merges per-point results.
// Every number in the result is bit-for-bit independent of the worker
// count.
func Sweep(opt SweepOptions) (*SweepResult, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	points := opt.numPoints()
	cells := points * opt.Reps
	workers := opt.workers(cells)
	start := time.Now()

	// Build every point's net up front, serially: parameter mutation in
	// Build hooks stays single-threaded, and workers only ever read.
	nets := make([]*petri.Net, points)
	headers := make([]trace.Header, points)
	pts := make([]Point, points)
	for p := 0; p < points; p++ {
		pts[p] = opt.point(p)
		net, err := opt.Build(pts[p])
		if err != nil {
			return nil, fmt.Errorf("experiment: building point %d (%s): %w", p, pts[p].String(), err)
		}
		nets[p] = net
		headers[p] = trace.HeaderOf(net)
	}

	perCell := make([]*stats.Stats, cells)
	runs := make([]sim.Result, cells)
	vals := make([][][]float64, points) // [point][metric][rep]
	for p := range vals {
		vals[p] = make([][]float64, len(opt.Metrics))
		for m := range vals[p] {
			vals[p][m] = make([]float64, opt.Reps)
		}
	}

	// Worker-confined engine state: engines are rebuilt only on point
	// boundaries, so consecutive cells of one point reuse the engine.
	type workerState struct {
		point int
		eng   *sim.Engine
	}
	ws := make([]workerState, workers)
	for i := range ws {
		ws[i].point = -1
	}

	if cell, err := runPool(workers, cells, func(worker, cell int) error {
		p, rep := cell/opt.Reps, cell%opt.Reps
		w := &ws[worker]
		if w.point != p {
			w.eng = sim.NewEngine(nets[p])
			w.point = p
		}
		so := opt.Sim
		so.Seed = opt.BaseSeed + int64(cell)
		acc := stats.New(headers[p])
		res, err := w.eng.Run(acc, so)
		if err != nil {
			return err
		}
		for m := range opt.Metrics {
			v, err := opt.Metrics[m].Eval(acc)
			if err != nil {
				return err
			}
			vals[p][m][rep] = v
		}
		perCell[cell] = acc
		runs[cell] = res
		return nil
	}); err != nil {
		p, rep := cell/opt.Reps, cell%opt.Reps
		return nil, fmt.Errorf("experiment: point %d (%s) replication %d: %w", p, pts[p].String(), rep, err)
	}

	r := &SweepResult{
		Axes:    opt.Axes,
		Points:  make([]PointResult, points),
		Reps:    opt.Reps,
		Workers: workers,
		names:   make([]string, len(opt.Metrics)),
	}
	for m := range opt.Metrics {
		r.names[m] = opt.Metrics[m].Name
	}
	for p := 0; p < points; p++ {
		// Fold each point in replication order: floating-point sums then
		// associate the same way no matter how cells were scheduled.
		pooled := perCell[p*opt.Reps]
		for rep := 1; rep < opt.Reps; rep++ {
			if err := pooled.Merge(perCell[p*opt.Reps+rep]); err != nil {
				return nil, fmt.Errorf("experiment: merging point %d replication %d: %w", p, rep, err)
			}
		}
		pr := PointResult{
			Point:     pts[p],
			Pooled:    pooled,
			Summaries: make([]stats.Summary, len(opt.Metrics)),
			Values:    vals[p],
			Runs:      runs[p*opt.Reps : (p+1)*opt.Reps],
		}
		for m := range opt.Metrics {
			pr.Summaries[m] = stats.Summarize(vals[p][m])
		}
		r.Points[p] = pr
		for _, run := range pr.Runs {
			r.Events += run.Ends
		}
	}
	r.Elapsed = time.Since(start)
	return r, nil
}

func formatG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteTable renders the sweep as an aligned text table: one row per
// grid point, one column per axis, then "mean ±ci95" per metric.
func (r *SweepResult) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, ax := range r.Axes {
		fmt.Fprintf(tw, "%s\t", ax.Name)
	}
	for _, n := range r.names {
		fmt.Fprintf(tw, "%s\t", n)
	}
	fmt.Fprintln(tw)
	for _, pt := range r.Points {
		for _, v := range pt.Point.Values {
			fmt.Fprintf(tw, "%s\t", formatG(v))
		}
		for _, s := range pt.Summaries {
			fmt.Fprintf(tw, "%.4f ±%.4f\t", s.Mean, s.CI95)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteCSV renders the sweep as CSV: one row per grid point, one
// column per axis, then mean/ci95/stddev columns per metric. Floats
// print with full precision, so equal results encode to equal bytes —
// the determinism tests compare sweeps through this encoding.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := make([]string, 0, len(r.Axes)+3*len(r.names))
	for _, ax := range r.Axes {
		head = append(head, ax.Name)
	}
	for _, n := range r.names {
		head = append(head, n+" mean", n+" ci95", n+" sd")
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	row := make([]string, 0, cap(head))
	for _, pt := range r.Points {
		row = row[:0]
		for _, v := range pt.Point.Values {
			row = append(row, formatG(v))
		}
		for _, s := range pt.Summaries {
			row = append(row, formatG(s.Mean), formatG(s.CI95), formatG(s.StdDev))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
